// Tests for the batched trace pipeline's three contract points: the
// steady-state hot path allocates nothing, batch size never changes
// results, and the batch-buffer lifetime rules are real (and violations
// observable).
package dynloop_test

import (
	"context"
	"testing"

	"dynloop"
	"dynloop/internal/expt"
	"dynloop/internal/harness"
	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/loopstats"
	"dynloop/internal/program"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
)

// steadyPipeline builds a long-running single-loop program with the full
// consumer stack attached (detector, Table-1 stats, 4-TU STR engine) and
// warms every lazily-allocated structure: the batch buffer, the CLS
// entry, the engine's thread queue, the table entries.
func steadyPipeline(t testing.TB) (*interp.CPU, *loopdet.Detector) {
	t.Helper()
	p := &program.Program{Name: "steady", Code: []isa.Instr{
		isa.MovI(1, 1<<40),
		isa.AddI(1, 1, -1),
		isa.Branch(isa.CondNEZ, 1, 1),
		isa.Halt(),
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cpu := interp.New(p)
	det := loopdet.New(loopdet.Config{Capacity: 16})
	det.AddObserver(loopstats.NewCollector())
	det.AddObserver(spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()}))
	if _, err := cpu.Run(100_000, det); err != nil {
		t.Fatal(err)
	}
	return cpu, det
}

// TestSteadyStateZeroAllocs pins the pipeline's hot path at zero heap
// allocations per instruction: once warm, retiring instructions through
// the batch buffer, the detector, the statistics collector and the
// speculation engine must not allocate at all.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cpu, det := steadyPipeline(t)
	avg := testing.AllocsPerRun(20, func() {
		if _, err := cpu.Run(10_000, det); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state allocs per 10k-instruction run = %v, want 0", avg)
	}
}

// TestCtlSteadyStateZeroAllocs pins the control-plane hot path the same
// way: an observer-free detector negotiates compact CtlEvent delivery
// (trace.PlanesOf == PlaneCtl), and once the ctl batch buffer is warm,
// retiring instructions through it must not allocate at all.
func TestCtlSteadyStateZeroAllocs(t *testing.T) {
	p := &program.Program{Name: "steady-ctl", Code: []isa.Instr{
		isa.MovI(1, 1<<40),
		isa.AddI(1, 1, -1),
		isa.Branch(isa.CondNEZ, 1, 1),
		isa.Halt(),
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cpu := interp.New(p)
	det := loopdet.New(loopdet.Config{Capacity: 16})
	if got := trace.PlanesOf(det); got != trace.PlaneCtl {
		t.Fatalf("bare detector planes = %v, want ctl-only", got)
	}
	if _, err := cpu.Run(100_000, det); err != nil { // warm the ctl batch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := cpu.Run(10_000, det); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("ctl steady-state allocs per 10k-instruction run = %v, want 0", avg)
	}
}

// TestBatchSizeHarnessDeterminism runs one benchmark through the harness
// at several batch sizes — including 1, the degenerate per-instruction
// delivery — and requires identical stream hashes, detector stats, loop
// statistics and engine metrics.
func TestBatchSizeHarnessDeterminism(t *testing.T) {
	type outcome struct {
		res   harness.Result
		hash  uint64
		stats loopdet.Stats
		ls    loopstats.Summary
		m     spec.Metrics
	}
	run := func(batch int) outcome {
		bm, err := dynloop.BenchmarkByName("compress")
		if err != nil {
			t.Fatal(err)
		}
		u, err := bm.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		h := trace.NewHash()
		ls := loopstats.NewCollector()
		e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
		res, err := harness.Run(u, harness.Config{
			Budget:      150_000,
			BatchSize:   batch,
			PreDetector: []trace.Consumer{h},
		}, ls, e)
		if err != nil {
			t.Fatal(err)
		}
		stats := res.Detector.Stats()
		res.Detector = nil // pointers differ between runs
		return outcome{res, h.Sum, stats, ls.Summary(), e.Metrics()}
	}
	ref := run(1)
	for _, batch := range []int{3, 100, 4096, 1 << 20} {
		if got := run(batch); got != ref {
			t.Fatalf("batch=%d: outcome diverged\ngot:  %+v\nwant: %+v", batch, got, ref)
		}
	}
}

// TestBatchSizeFullReportDeterminism regenerates a slice of the full
// evaluation report at batch sizes 1 and 4096 and requires the rendered
// output to be byte-identical — the acceptance criterion of the batch
// refactor.
func TestBatchSizeFullReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full report regeneration is seconds-long")
	}
	run := func(batch int) string {
		out, err := expt.All(context.Background(), expt.Config{
			Budget:     100_000,
			Benchmarks: []string{"compress", "li"},
			BatchSize:  batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(4096)
	if a != b {
		t.Fatalf("full report differs between batch=1 and batch=4096:\n--- batch=1 ---\n%s\n--- batch=4096 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

// TestBatchBufferIsReused catches the batch-lifetime footgun in the act:
// a consumer that retains the slice passed to ConsumeBatch observes its
// contents change when the producer reuses the buffer for the next
// batch. (A consumer that additionally reads the retained slice from
// another goroutine is a data race; the -race CI job would flag it.)
func TestBatchBufferIsReused(t *testing.T) {
	cpu, _ := steadyPipeline(t)
	var retained []trace.Event
	var snapshot []trace.Event
	batches := 0
	sink := trace.BatchConsumerFunc(func(evs []trace.Event) {
		if batches == 0 {
			retained = evs // the footgun: keeping the producer's buffer
			snapshot = append([]trace.Event(nil), evs...)
		}
		batches++
	})
	if _, err := cpu.Run(3*interp.DefaultBatchSize, sink); err != nil {
		t.Fatal(err)
	}
	if batches < 2 {
		t.Fatalf("only %d batches delivered; need at least 2 to observe reuse", batches)
	}
	if retained[0] == snapshot[0] {
		t.Fatal("retained batch still holds first-batch data: producer stopped reusing the buffer, update the lifetime docs")
	}
}

// TestBatchCopyIsRaceFree exercises the documented safe pattern — copy
// the batch, then hand it to another goroutine — under the race
// detector, and checks the asynchronous copy observed the same stream.
func TestBatchCopyIsRaceFree(t *testing.T) {
	cpu, _ := steadyPipeline(t)

	ch := make(chan []trace.Event, 8)
	sum := make(chan uint64)
	go func() {
		h := trace.NewHash()
		for evs := range ch {
			h.ConsumeBatch(evs)
		}
		sum <- h.Sum
	}()

	ref := trace.NewHash()
	sink := trace.BatchConsumerFunc(func(evs []trace.Event) {
		ref.ConsumeBatch(evs)
		cp := make([]trace.Event, len(evs))
		copy(cp, evs)
		ch <- cp
	})
	if _, err := cpu.Run(50_000, sink); err != nil {
		t.Fatal(err)
	}
	close(ch)
	if got := <-sum; got != ref.Sum {
		t.Fatalf("async hash %x != sync hash %x", got, ref.Sum)
	}
}
