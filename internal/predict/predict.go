// Package predict provides the small predictors the paper's tables are
// built from: two-bit saturating confidence counters and stride
// predictors over last values. The LET uses them for iteration counts
// (§2.3, §3.1.2) and the LIT for live-in register and memory values (§4).
package predict

// TwoBit is the classic two-bit saturating confidence counter used by the
// STR policy to decide whether a stride is "reliable". The zero value
// starts at weakly-not-confident.
type TwoBit struct {
	state uint8 // 0..3; >=2 means confident
}

// Up strengthens confidence.
func (c *TwoBit) Up() {
	if c.state < 3 {
		c.state++
	}
}

// Down weakens confidence.
func (c *TwoBit) Down() {
	if c.state > 0 {
		c.state--
	}
}

// Confident reports whether the counter is in a confident state.
func (c *TwoBit) Confident() bool { return c.state >= 2 }

// State returns the raw state (0..3), for tests.
func (c *TwoBit) State() uint8 { return c.state }

// Stride predicts the next value of a series as last + (last - previous),
// with a TwoBit confidence tracking whether the stride has been stable.
// The zero value is an empty predictor.
type Stride struct {
	last    int64
	stride  int64
	conf    TwoBit
	samples int
}

// Observe feeds the next actual value of the series.
func (s *Stride) Observe(v int64) {
	switch s.samples {
	case 0:
		s.last = v
		s.samples = 1
	default:
		d := v - s.last
		if s.samples >= 2 {
			if d == s.stride {
				s.conf.Up()
			} else {
				s.conf.Down()
			}
		}
		s.stride = d
		s.last = v
		if s.samples < 2 {
			s.samples = 2
		}
	}
}

// Samples returns how many values have been observed.
func (s *Stride) Samples() int { return s.samples }

// HaveLast reports whether at least one value has been observed, and
// returns it.
func (s *Stride) HaveLast() (int64, bool) { return s.last, s.samples >= 1 }

// HaveStride reports whether at least two values have been observed, and
// returns the last stride.
func (s *Stride) HaveStride() (int64, bool) { return s.stride, s.samples >= 2 }

// Reliable reports whether the stride's confidence counter is saturated
// enough to act on (the STR policy's reliability test).
func (s *Stride) Reliable() bool { return s.samples >= 2 && s.conf.Confident() }

// Predict returns the predicted next value: last + stride once a stride
// exists, the last value after a single observation. ok is false before
// any observation.
func (s *Stride) Predict() (v int64, ok bool) {
	switch {
	case s.samples >= 2:
		return s.last + s.stride, true
	case s.samples == 1:
		return s.last, true
	default:
		return 0, false
	}
}
