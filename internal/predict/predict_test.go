package predict

import (
	"testing"
	"testing/quick"
)

// TestTwoBitSaturation walks the counter through its full state machine.
func TestTwoBitSaturation(t *testing.T) {
	var c TwoBit
	if c.Confident() {
		t.Fatal("zero value must not be confident")
	}
	c.Up()
	if c.Confident() {
		t.Fatal("one Up must not reach confidence")
	}
	c.Up()
	if !c.Confident() {
		t.Fatal("two Ups must reach confidence")
	}
	c.Up()
	c.Up() // saturate at 3
	if c.State() != 3 {
		t.Fatalf("state = %d, want 3", c.State())
	}
	c.Down()
	if !c.Confident() {
		t.Fatal("one Down from saturation must stay confident")
	}
	c.Down()
	c.Down()
	c.Down()
	c.Down() // saturate at 0
	if c.State() != 0 || c.Confident() {
		t.Fatalf("state = %d, want 0", c.State())
	}
}

// TestStrideConstantSeries checks lock-on to an arithmetic series.
func TestStrideConstantSeries(t *testing.T) {
	var s Stride
	if _, ok := s.Predict(); ok {
		t.Fatal("empty predictor must not predict")
	}
	s.Observe(10)
	if v, ok := s.Predict(); !ok || v != 10 {
		t.Fatalf("after one sample: %d %v, want last value", v, ok)
	}
	s.Observe(13)
	if v, ok := s.Predict(); !ok || v != 16 {
		t.Fatalf("after two samples: %d, want 16", v)
	}
	if s.Reliable() {
		t.Fatal("one stride must not be reliable yet")
	}
	s.Observe(16)
	s.Observe(19)
	if !s.Reliable() {
		t.Fatal("repeated stride must become reliable")
	}
	if v, _ := s.Predict(); v != 22 {
		t.Fatalf("prediction = %d, want 22", v)
	}
}

// TestStrideAlternatingDefeats checks that a 2-cycle keeps confidence
// low: the stride flips sign every observation.
func TestStrideAlternatingDefeats(t *testing.T) {
	var s Stride
	vals := []int64{5, 9, 5, 9, 5, 9, 5, 9}
	for _, v := range vals {
		s.Observe(v)
	}
	if s.Reliable() {
		t.Fatal("alternating series must not be reliable")
	}
}

// TestStrideQuick property: for any start and stride, after three
// observations every further value is predicted exactly.
func TestStrideQuick(t *testing.T) {
	f := func(start int64, stride int16) bool {
		var s Stride
		v := start
		st := int64(stride)
		for i := 0; i < 3; i++ {
			s.Observe(v)
			v += st
		}
		for i := 0; i < 5; i++ {
			p, ok := s.Predict()
			if !ok || p != v {
				return false
			}
			s.Observe(v)
			v += st
		}
		return s.Reliable()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStrideAccessors covers HaveLast/HaveStride transitions.
func TestStrideAccessors(t *testing.T) {
	var s Stride
	if _, ok := s.HaveLast(); ok {
		t.Fatal("HaveLast on empty")
	}
	if _, ok := s.HaveStride(); ok {
		t.Fatal("HaveStride on empty")
	}
	s.Observe(4)
	if v, ok := s.HaveLast(); !ok || v != 4 {
		t.Fatal("HaveLast after one")
	}
	if _, ok := s.HaveStride(); ok {
		t.Fatal("HaveStride after one")
	}
	s.Observe(7)
	if d, ok := s.HaveStride(); !ok || d != 3 {
		t.Fatalf("stride = %d, want 3", d)
	}
	if s.Samples() < 2 {
		t.Fatal("samples")
	}
}
