package loopstats

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
)

// runStats executes a unit with a collector attached.
func runStats(t *testing.T, u *builder.Unit) Summary {
	t.Helper()
	c := NewCollector()
	res, err := harness.Run(u, harness.Config{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return c.Summary()
}

// TestSingleLoopRow checks every Table-1 column on one known loop.
func TestSingleLoopRow(t *testing.T) {
	b := builder.New("t", 1)
	b.CountedLoop(builder.TripImm(6), builder.LoopOpt{}, func() { b.Work(10) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runStats(t, u)
	if s.StaticLoops != 1 {
		t.Fatalf("loops = %d, want 1", s.StaticLoops)
	}
	if s.Execs != 1 || s.Iters != 6 {
		t.Fatalf("execs=%d iters=%d, want 1/6", s.Execs, s.Iters)
	}
	if s.ItersPerExec != 6 {
		t.Fatalf("iters/exec = %v", s.ItersPerExec)
	}
	// Each detected iteration is body(10) + latch(4) = 14 instructions.
	if s.InstrPerIter != 14 {
		t.Fatalf("instr/iter = %v, want 14", s.InstrPerIter)
	}
	if s.MaxNesting != 1 || s.AvgNesting != 1 {
		t.Fatalf("nesting avg=%v max=%d, want 1/1", s.AvgNesting, s.MaxNesting)
	}
}

// TestNestingDepths checks avg/max nesting on a 3-deep nest.
func TestNestingDepths(t *testing.T) {
	b := builder.New("t", 1)
	b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
			b.CountedLoop(builder.TripImm(20), builder.LoopOpt{}, func() { b.Work(10) })
		})
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runStats(t, u)
	if s.MaxNesting != 3 {
		t.Fatalf("max nesting = %d, want 3", s.MaxNesting)
	}
	// Most instructions run in the innermost loop, but every loop is only
	// *detected* from its second iteration, so first-iteration work
	// counts at a lower depth and the average sits noticeably below 3.
	if s.AvgNesting < 2.0 || s.AvgNesting > 3.0 {
		t.Fatalf("avg nesting = %v, want between 2 and 3", s.AvgNesting)
	}
	if s.StaticLoops != 3 {
		t.Fatalf("static loops = %d", s.StaticLoops)
	}
}

// TestOneShotCounting checks the CountOneShots switch (the Table-1
// ablation).
func TestOneShotCounting(t *testing.T) {
	build := func() *builder.Unit {
		b := builder.New("t", 1)
		b.CountedLoop(builder.TripImm(1), builder.LoopOpt{}, func() { b.Work(3) })
		b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() { b.Work(3) })
		u, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	withS := runStats(t, build())
	if withS.Execs != 2 || withS.Iters != 5 {
		t.Fatalf("with one-shots: execs=%d iters=%d, want 2/5", withS.Execs, withS.Iters)
	}
	c := NewCollector()
	c.CountOneShots = false
	if _, err := harness.Run(build(), harness.Config{}, c); err != nil {
		t.Fatal(err)
	}
	without := c.Summary()
	if without.Execs != 1 || without.Iters != 4 {
		t.Fatalf("without one-shots: execs=%d iters=%d, want 1/4", without.Execs, without.Iters)
	}
	// Static loop identity counts one-shots either way.
	if without.StaticLoops != 2 {
		t.Fatalf("static loops = %d, want 2", without.StaticLoops)
	}
}

// TestFlushedExecDropped checks that a budget-truncated execution does
// not pollute the averages.
func TestFlushedExecDropped(t *testing.T) {
	b := builder.New("t", 1)
	b.CountedLoop(builder.TripImm(1000), builder.LoopOpt{}, func() { b.Work(5) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	if _, err := harness.Run(u, harness.Config{Budget: 200}, c); err != nil {
		t.Fatal(err)
	}
	s := c.Summary()
	if s.Execs != 0 {
		t.Fatalf("flushed execution counted: %+v", s)
	}
	if s.StaticLoops != 1 {
		t.Fatalf("loop identity lost: %+v", s)
	}
	if s.Instrs != 200 {
		t.Fatalf("instrs = %d, want 200", s.Instrs)
	}
}

// TestInLoopFraction checks the in-loop instruction fraction on a
// program that is half straight-line.
func TestInLoopFraction(t *testing.T) {
	b := builder.New("t", 1)
	b.Work(200)
	b.CountedLoop(builder.TripImm(20), builder.LoopOpt{}, func() { b.Work(10) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runStats(t, u)
	if s.InLoopFrac <= 0.4 || s.InLoopFrac >= 0.8 {
		t.Fatalf("in-loop fraction = %v", s.InLoopFrac)
	}
}
