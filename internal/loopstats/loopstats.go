// Package loopstats collects the per-program loop statistics of the
// paper's Table 1: dynamic instruction count, static loop count, average
// iterations per execution, average instructions per iteration, and
// average / maximum nesting level.
package loopstats

import (
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

// Collector accumulates Table-1 statistics as a detector observer. Attach
// it with Detector.AddObserver (or bundle it into one pass of a fused
// multi-pass traversal with harness.NewObserverPass) and read Summary
// after Flush.
type Collector struct {
	// CountOneShots includes single-iteration executions in the execution
	// and iteration totals (the default; see the AblationOneShots
	// experiment).
	CountOneShots bool

	instrs    uint64
	loopIDs   map[isa.Addr]struct{}
	execs     uint64
	iters     uint64
	iterLen   uint64
	iterCount uint64

	depth       int
	inLoop      uint64
	depthWeight uint64
	maxDepth    int
	// stack mirrors the CLS; instructions are attributed to the current
	// iteration of the INNERMOST active loop (as the paper's per-loop
	// iteration sizes are: swim's 279 instr/iter is its inner stencil
	// body, not the whole outer iteration). acc runs parallel to stack —
	// acc[i] counts the instructions of stack[i]'s current iteration —
	// so the per-instruction hot path is a slice increment, not a map
	// operation.
	stack []uint64 // exec IDs, innermost last
	acc   []uint64
}

// NewCollector returns a collector; one-shot executions are counted.
func NewCollector() *Collector {
	return &Collector{
		CountOneShots: true,
		loopIDs:       make(map[isa.Addr]struct{}),
	}
}

// find returns the stack position of exec id (almost always the top), or
// -1.
func (c *Collector) find(id uint64) int {
	for i := len(c.stack) - 1; i >= 0; i-- {
		if c.stack[i] == id {
			return i
		}
	}
	return -1
}

// Instr implements loopdet.StreamObserver: nesting statistics are
// instruction-weighted over in-loop instructions and iteration sizes use
// innermost attribution.
func (c *Collector) Instr(ev *trace.Event) {
	c.instrs++
	if c.depth > 0 {
		c.inLoop++
		c.depthWeight += uint64(c.depth)
		c.acc[len(c.acc)-1]++
	}
}

// InstrBatch implements loopdet.BatchStreamObserver. The CLS state is
// constant across a run (loop events only occur at run boundaries), so
// the whole run collapses into a handful of additions, including a
// single increment of the innermost loop's iteration counter.
func (c *Collector) InstrBatch(evs []trace.Event) {
	n := uint64(len(evs))
	c.instrs += n
	if c.depth > 0 {
		c.inLoop += n
		c.depthWeight += uint64(c.depth) * n
		c.acc[len(c.acc)-1] += n
	}
}

// ExecStart implements loopdet.Observer.
func (c *Collector) ExecStart(x *loopdet.Exec) {
	c.loopIDs[x.T] = struct{}{}
	c.depth++
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
	c.stack = append(c.stack, x.ID)
	c.acc = append(c.acc, 0)
}

// IterStart implements loopdet.Observer: the previous iteration of x just
// ended with the closing branch at index.
func (c *Collector) IterStart(x *loopdet.Exec, index uint64) {
	i := c.find(x.ID)
	if i < 0 {
		return
	}
	// The event for iteration 2 is the detection point: the iteration it
	// closes (iteration 1) was never tracked, so only later boundaries
	// close a measured iteration.
	if x.Iters > 2 {
		c.iterLen += c.acc[i]
		c.iterCount++
	}
	c.acc[i] = 0
}

// ExecEnd implements loopdet.Observer.
func (c *Collector) ExecEnd(x *loopdet.Exec, reason loopdet.EndReason, index uint64) {
	c.depth--
	var n uint64
	ok := false
	if i := c.find(x.ID); i >= 0 {
		n, ok = c.acc[i], true
		copy(c.stack[i:], c.stack[i+1:])
		c.stack = c.stack[:len(c.stack)-1]
		copy(c.acc[i:], c.acc[i+1:])
		c.acc = c.acc[:len(c.acc)-1]
	}
	switch reason {
	case loopdet.EndEvicted, loopdet.EndFlush:
		// The execution did not really finish; drop it from the averages.
		return
	}
	if ok && n > 0 {
		c.iterLen += n
		c.iterCount++
	}
	c.execs++
	c.iters += uint64(x.Iters)
}

// OneShot implements loopdet.Observer.
func (c *Collector) OneShot(t, b isa.Addr, index uint64) {
	c.loopIDs[t] = struct{}{}
	if c.CountOneShots {
		c.execs++
		c.iters++
	}
}

// Summary is one Table-1 row.
type Summary struct {
	// Instrs is the dynamic instruction count.
	Instrs uint64
	// StaticLoops is the number of distinct loop identities observed.
	StaticLoops int
	// Execs and Iters are totals over finished executions (including
	// one-shots when configured).
	Execs, Iters uint64
	// ItersPerExec is Iters/Execs.
	ItersPerExec float64
	// InstrPerIter averages the sizes of detected iterations (iterations
	// 2..last; the first iteration's start is not observable, §2.2),
	// attributing each instruction to the innermost active loop.
	InstrPerIter float64
	// AvgNesting is the average CLS depth over in-loop instructions.
	AvgNesting float64
	// MaxNesting is the deepest CLS occupancy seen.
	MaxNesting int
	// InLoopFrac is the fraction of instructions executed inside at least
	// one loop.
	InLoopFrac float64
}

// Summary returns the accumulated statistics.
func (c *Collector) Summary() Summary {
	s := Summary{
		Instrs:      c.instrs,
		StaticLoops: len(c.loopIDs),
		Execs:       c.execs,
		Iters:       c.iters,
		MaxNesting:  c.maxDepth,
	}
	if c.execs > 0 {
		s.ItersPerExec = float64(c.iters) / float64(c.execs)
	}
	if c.iterCount > 0 {
		s.InstrPerIter = float64(c.iterLen) / float64(c.iterCount)
	}
	if c.inLoop > 0 {
		s.AvgNesting = float64(c.depthWeight) / float64(c.inLoop)
	}
	if c.instrs > 0 {
		s.InLoopFrac = float64(c.inLoop) / float64(c.instrs)
	}
	return s
}
