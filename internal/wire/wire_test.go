package wire

import (
	"errors"
	"reflect"
	"testing"

	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/spec"
)

func sampleRows() []expt.SweepRow {
	return []expt.SweepRow{
		{Bench: "swim", Policy: "STR", TUs: 2, M: spec.Metrics{Instrs: 100, Cycles: 50, SpecEvents: 3}},
		{Bench: "perl", Policy: "STR(3)", TUs: 16, M: spec.Metrics{Instrs: 999, Cycles: 400, ThreadsSpawned: 12}},
		{Bench: "", Policy: "", TUs: 0, M: spec.Metrics{}},
	}
}

func TestGridRoundTrip(t *testing.T) {
	b, err := AppendGrid(nil, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeGrid(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, sampleRows()) {
		t.Fatalf("round trip:\n got  %+v\n want %+v", rows, sampleRows())
	}
}

func TestGridEmpty(t *testing.T) {
	b, err := AppendGrid(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DecodeGrid(b)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty grid: %v %v", rows, err)
	}
}

func TestGridCorrupt(t *testing.T) {
	b, err := AppendGrid(nil, sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][]byte{
		{},
		[]byte("NOTAGRID\n"),
		b[:len(b)-1],
		append(append([]byte{}, b...), 7),
	} {
		if _, err := DecodeGrid(c); err == nil {
			t.Errorf("corrupt grid %q... decoded cleanly", c[:min(len(c), 12)])
		}
	}
	// Truncation at every byte must error, never return partial rows
	// silently.
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeGrid(b[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestGridErrorsWrapErrCorrupt(t *testing.T) {
	if _, err := DecodeGrid([]byte("DLGRID1\n\xff")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v", err)
	}
}

func sampleValues() []any {
	return []any{
		spec.Metrics{Instrs: 100, Cycles: 50, SpecEvents: 3},
		grid.Table1Row{Bench: "swim"},
		grid.Fig4Cell{LET: 0.5, LIT: 0.25},
		grid.OracleRow{Bench: "perl", STRTPC: 1.5},
	}
}

func TestCellsRoundTrip(t *testing.T) {
	b, err := AppendCells(nil, sampleValues())
	if err != nil {
		t.Fatal(err)
	}
	values, err := DecodeCells(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(values, sampleValues()) {
		t.Fatalf("round trip:\n got  %+v\n want %+v", values, sampleValues())
	}
	// Empty payloads round-trip too.
	eb, err := AppendCells(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if vs, err := DecodeCells(eb); err != nil || len(vs) != 0 {
		t.Fatalf("empty cells: %v %v", vs, err)
	}
}

func TestCellsCorrupt(t *testing.T) {
	b, err := AppendCells(nil, sampleValues())
	if err != nil {
		t.Fatal(err)
	}
	// Truncation at every byte must error, never return partial values.
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeCells(b[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeCells(append(append([]byte{}, b...), 7)); err == nil {
		t.Fatal("trailing bytes decoded cleanly")
	}
	if _, err := DecodeCells([]byte("NOTCELLS\n")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad magic accepted")
	}
	// An unencodable value fails the append, not the wire.
	if _, err := AppendCells(nil, []any{struct{ X int }{1}}); err == nil {
		t.Fatal("unregistered value encoded")
	}
}
