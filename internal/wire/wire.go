// Package wire is the grid-serving protocol shared by the HTTP daemon
// (internal/server) and its Go client (internal/client): JSON request
// envelopes, and a binary grid format whose cell payloads are the exact
// codec frames the on-disk store persists — a cell crosses the network
// in the same bytes it lives on disk in, so remote and local results
// cannot drift.
//
// Grid format (little-endian, varint-based, after tracefile/store):
//
//	magic "DLGRID1\n"
//	uvarint row count
//	rows:   uvarint benchLen, bench, uvarint policyLen, policy,
//	        uvarint TUs, uvarint frameLen, frame (a codec frame of
//	        the cell's spec.Metrics)
//
// Cells format (the POST /v1/grid response — one codec frame per cell
// of a declarative grid, in the spec's canonical cell order; the
// coordinates never cross the wire because the spec expansion is
// deterministic on both ends):
//
//	magic "DLCELL1\n"
//	uvarint cell count
//	cells:  uvarint frameLen, frame
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dynloop/internal/codec"
	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/spec"
)

const (
	gridMagic  = "DLGRID1\n"
	cellsMagic = "DLCELL1\n"
)

// maxGridRows bounds a single grid allocation when decoding untrusted
// responses.
const maxGridRows = 1 << 22

// ErrCorrupt reports a malformed grid payload.
var ErrCorrupt = errors.New("wire: corrupt grid payload")

// GridRequest asks the daemon to execute one declarative grid: either a
// registered spec by name ("table1", "fig7", "ablation/cls", ...) or an
// inline ad-hoc grid.Spec. Budget, Seed, Benchmarks and BatchSize are
// the config-level defaults the spec's zero-valued axes resolve to —
// the same knobs the local CLI passes — so a remote grid reproduces
// `dynloop grid` byte for byte.
type GridRequest struct {
	Name       string     `json:"name,omitempty"`
	Spec       *grid.Spec `json:"spec,omitempty"`
	Benchmarks []string   `json:"benchmarks,omitempty"`
	Budget     uint64     `json:"budget,omitempty"`
	Seed       uint64     `json:"seed,omitempty"`
	BatchSize  int        `json:"batch_size,omitempty"`
}

// GridInfo is one registry entry in the daemon's GET /v1/grids listing.
// The full canonical Spec rides along so a client can fetch it, modify
// an axis, and POST it back as an ad-hoc grid.
type GridInfo struct {
	Name  string    `json:"name"`
	Title string    `json:"title,omitempty"`
	Kind  string    `json:"kind"`
	Cells int       `json:"cells"`
	Spec  grid.Spec `json:"spec"`
}

// AppendCells encodes grid cell values onto b in the cells format:
// magic, a count, then one codec frame per cell in the grid's canonical
// cell order. The spec itself does not cross the wire — its expansion
// is deterministic, so the receiver rebuilds the cells locally
// (grid.ResultFrom) and pairs them with these values.
func AppendCells(b []byte, values []any) ([]byte, error) {
	b = append(b, cellsMagic...)
	b = binary.AppendUvarint(b, uint64(len(values)))
	for i, v := range values {
		frame, err := codec.Encode(v)
		if err != nil {
			return nil, fmt.Errorf("wire: cell %d: %w", i, err)
		}
		b = binary.AppendUvarint(b, uint64(len(frame)))
		b = append(b, frame...)
	}
	return b, nil
}

// DecodeCells parses a cells payload occupying all of b.
func DecodeCells(b []byte) ([]any, error) {
	if len(b) < len(cellsMagic) || string(b[:len(cellsMagic)]) != cellsMagic {
		return nil, fmt.Errorf("%w: bad cells magic", ErrCorrupt)
	}
	pos := len(cellsMagic)
	count, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad cell count", ErrCorrupt)
	}
	pos += n
	if count > maxGridRows {
		return nil, fmt.Errorf("%w: cell count %d", ErrCorrupt, count)
	}
	values := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		flen, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad frame length at cell %d", ErrCorrupt, i)
		}
		pos += n
		if flen > uint64(len(b)-pos) {
			return nil, fmt.Errorf("%w: frame length %d exceeds payload at cell %d", ErrCorrupt, flen, i)
		}
		v, err := codec.Decode(b[pos : pos+int(flen)])
		if err != nil {
			return nil, fmt.Errorf("wire: cell %d: %w", i, err)
		}
		pos += int(flen)
		values = append(values, v)
	}
	if pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-pos)
	}
	return values, nil
}

// SweepRequest asks the daemon for one benchmark × policy × TUs grid.
// Zero values select the same defaults as the local CLI path (all
// benchmarks, the paper's five policies, 2–16 TUs, DefaultBudget,
// seed 1), so a remote sweep reproduces `dynloop sweep` byte for byte.
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"`
	Policies   []string `json:"policies,omitempty"`
	TUs        []int    `json:"tus,omitempty"`
	Budget     uint64   `json:"budget,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	BatchSize  int      `json:"batch_size,omitempty"`
}

// Event mirrors runner.Event for the SSE progress stream.
type Event struct {
	Kind      string `json:"kind"`
	Key       string `json:"key,omitempty"`
	Label     string `json:"label,omitempty"`
	Err       string `json:"err,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Completed uint64 `json:"completed"`
}

// RunnerStats mirrors runner.Stats for the stats endpoint.
type RunnerStats struct {
	Submitted  uint64 `json:"submitted"`
	Executed   uint64 `json:"executed"`
	CacheHits  uint64 `json:"cache_hits"`
	Coalesced  uint64 `json:"coalesced"`
	Failures   uint64 `json:"failures"`
	GroupRuns  uint64 `json:"group_runs"`
	DiskHits   uint64 `json:"disk_hits"`
	DiskPuts   uint64 `json:"disk_puts"`
	TierErrors uint64 `json:"tier_errors"`
	ReplayRuns uint64 `json:"replay_runs"`
	RecordRuns uint64 `json:"record_runs"`
}

// StoreStats mirrors store.Stats for the stats endpoint.
type StoreStats struct {
	Records          int    `json:"records"`
	Segments         int    `json:"segments"`
	Bytes            int64  `json:"bytes"`
	DeadBytes        int64  `json:"dead_bytes"`
	Puts             uint64 `json:"puts"`
	Gets             uint64 `json:"gets"`
	Hits             uint64 `json:"hits"`
	TruncatedTail    int64  `json:"truncated_tail"`
	SidecarHits      uint64 `json:"sidecar_hits"`
	SidecarRebuilds  uint64 `json:"sidecar_rebuilds"`
	Compactions      uint64 `json:"compactions"`
	ReclaimedBytes   uint64 `json:"reclaimed_bytes"`
	LastCompactError string `json:"last_compact_error,omitempty"`
}

// WarmerStats mirrors server.WarmerStats for the stats endpoint.
type WarmerStats struct {
	Units     int    `json:"units"`
	UnitsDone int    `json:"units_done"`
	Cells     uint64 `json:"cells"`
	Pauses    uint64 `json:"pauses"`
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	Running   bool   `json:"running"`
}

// PlaneStats counts interpreter runs and archive replays by the event
// facet the run negotiated with its sink: control-plane-only delivery
// vs full events (see trace.PlanesOf).
type PlaneStats struct {
	InterpCtl  uint64 `json:"interp_ctl"`
	InterpFull uint64 `json:"interp_full"`
	ReplayCtl  uint64 `json:"replay_ctl"`
	ReplayFull uint64 `json:"replay_full"`
}

// TraceStats mirrors harness.TracesStats for the stats endpoint.
type TraceStats struct {
	Replays   uint64 `json:"replays"`
	Records   uint64 `json:"records"`
	Fallbacks uint64 `json:"fallbacks"`
}

// ArchiveStats mirrors tracefile.ArchiveStats for the stats endpoint.
type ArchiveStats struct {
	Recordings    int    `json:"recordings"`
	Records       uint64 `json:"records"`
	Invalidated   uint64 `json:"invalidated"`
	SchemaSkips   uint64 `json:"schema_skips"`
	TruncatedTail uint64 `json:"truncated_tail"`
}

// ServerStats reports the daemon's own HTTP-layer counters: totals
// across endpoints (the per-endpoint breakdown and latency histograms
// live on GET /metrics).
type ServerStats struct {
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
	InFlight int64  `json:"in_flight"`
}

// Stats is the daemon's stats response.
type Stats struct {
	Workers    uint64        `json:"workers"`
	Traversals uint64        `json:"traversals"`
	Replays    uint64        `json:"replays"`
	Runner     RunnerStats   `json:"runner"`
	Planes     PlaneStats    `json:"planes"`
	Server     ServerStats   `json:"server"`
	Store      *StoreStats   `json:"store,omitempty"`
	Warmer     *WarmerStats  `json:"warmer,omitempty"`
	Traces     *TraceStats   `json:"traces,omitempty"`
	Archive    *ArchiveStats `json:"archive,omitempty"`
}

// AppendGrid encodes sweep rows onto b in the grid format.
func AppendGrid(b []byte, rows []expt.SweepRow) ([]byte, error) {
	b = append(b, gridMagic...)
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for i := range rows {
		r := &rows[i]
		b = binary.AppendUvarint(b, uint64(len(r.Bench)))
		b = append(b, r.Bench...)
		b = binary.AppendUvarint(b, uint64(len(r.Policy)))
		b = append(b, r.Policy...)
		b = binary.AppendUvarint(b, uint64(r.TUs))
		frame, err := codec.Encode(r.M)
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		b = binary.AppendUvarint(b, uint64(len(frame)))
		b = append(b, frame...)
	}
	return b, nil
}

// DecodeGrid parses a grid payload occupying all of b.
func DecodeGrid(b []byte) ([]expt.SweepRow, error) {
	if len(b) < len(gridMagic) || string(b[:len(gridMagic)]) != gridMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	pos := len(gridMagic)
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad %s at %d", ErrCorrupt, what, pos)
		}
		pos += n
		return v, nil
	}
	str := func(what string) (string, error) {
		n, err := uv(what + " length")
		if err != nil {
			return "", err
		}
		if n > uint64(len(b)-pos) {
			return "", fmt.Errorf("%w: %s length %d exceeds payload", ErrCorrupt, what, n)
		}
		s := string(b[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	count, err := uv("row count")
	if err != nil {
		return nil, err
	}
	if count > maxGridRows {
		return nil, fmt.Errorf("%w: row count %d", ErrCorrupt, count)
	}
	rows := make([]expt.SweepRow, 0, count)
	for i := uint64(0); i < count; i++ {
		bench, err := str("bench")
		if err != nil {
			return nil, err
		}
		policy, err := str("policy")
		if err != nil {
			return nil, err
		}
		tus, err := uv("TUs")
		if err != nil {
			return nil, err
		}
		frame, err := str("frame")
		if err != nil {
			return nil, err
		}
		v, err := codec.Decode([]byte(frame))
		if err != nil {
			return nil, fmt.Errorf("wire: row %d: %w", i, err)
		}
		m, ok := v.(spec.Metrics)
		if !ok {
			return nil, fmt.Errorf("%w: row %d carries %T, not spec.Metrics", ErrCorrupt, i, v)
		}
		rows = append(rows, expt.SweepRow{Bench: bench, Policy: policy, TUs: int(tus), M: m})
	}
	if pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-pos)
	}
	return rows, nil
}
