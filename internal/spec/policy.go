// Package spec implements the paper's thread-level control speculation
// (§3): a multithreaded machine model whose thread units (TUs) execute
// speculative future loop iterations discovered by the dynamic loop
// detector, under the IDLE, STR and STR(i) policies, with the paper's
// abstract timing (each TU retires one instruction per cycle).
//
// The headline metric is TPC — the average number of active, correctly
// speculated threads per cycle — which under this timing model equals
// retired instructions divided by total cycles, because every retired
// instruction is executed usefully exactly once (either by the
// non-speculative TU or inside a speculative thread that is later
// confirmed).
package spec

import "fmt"

// PolicyKind selects the thread-count decision rule of §3.1.2.
type PolicyKind uint8

const (
	// PolicyIdle speculates on every idle TU.
	PolicyIdle PolicyKind = iota
	// PolicyStride bounds speculation by the LET's iteration-count
	// prediction (stride if reliable, else last count, else unlimited).
	PolicyStride
)

// Policy is a speculation policy: IDLE, STR (NestLimit 0) or STR(i)
// (NestLimit i > 0).
type Policy struct {
	// Kind is the thread-count rule.
	Kind PolicyKind
	// NestLimit, when positive, is the STR(i) parameter: the maximum
	// number of non-speculated loops that may nest inside a speculated
	// loop before its threads are squashed to free TUs for inner loops.
	NestLimit int
}

// Idle returns the IDLE policy.
func Idle() Policy { return Policy{Kind: PolicyIdle} }

// STR returns the stride policy without a nesting limit.
func STR() Policy { return Policy{Kind: PolicyStride} }

// STRn returns the STR(i) policy.
func STRn(i int) Policy { return Policy{Kind: PolicyStride, NestLimit: i} }

// String names the policy as in the paper's figures.
func (p Policy) String() string {
	switch p.Kind {
	case PolicyIdle:
		return "IDLE"
	case PolicyStride:
		if p.NestLimit > 0 {
			return fmt.Sprintf("STR(%d)", p.NestLimit)
		}
		return "STR"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p.Kind))
	}
}
