package spec

import (
	"fmt"

	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/looptab"
	"dynloop/internal/trace"
)

// NestRule selects how STR(i) counts the "non-speculated loops nested
// into a loop that is being speculated" — the paper's wording admits two
// readings (see DESIGN.md).
type NestRule uint8

const (
	// NestRuleStarvation (the default) counts distinct nested loops that
	// asked for speculative threads and found no idle TU; the count
	// resets when the outermost thread owner spawns again. This reading
	// is consistent with the paper's Table 2 (fpppp's coarse threads
	// survive above predicted-and-covered tiny nests).
	NestRuleStarvation NestRule = iota
	// NestRuleStatic counts the non-speculated loops currently nested
	// above the outermost thread owner on the CLS, evaluated whenever a
	// new loop execution starts. It is the literal structural reading.
	NestRuleStatic
)

// Config parametrises an Engine.
type Config struct {
	// TUs is the number of thread units; 0 models the infinite machine of
	// Figure 5 (the policy is then coerced to IDLE-with-all-iterations).
	TUs int
	// Policy is the speculation policy (§3.1.2).
	Policy Policy
	// LETCapacity bounds the engine's iteration-count LET
	// (0 = unbounded, the default).
	LETCapacity int
	// NestRule selects the STR(i) interpretation (see NestRule).
	NestRule NestRule

	// Exclude enables the §2.3.2 exclusion table: "those loops with a
	// poor prediction rate may be good candidates to store in this
	// table", denying them further speculation so better-predicted loops
	// keep the TUs and the table entries.
	Exclude bool
	// ExcludeThreshold is the accuracy below which a loop is excluded
	// (promoted/(promoted+squashed); default 0.5).
	ExcludeThreshold float64
	// ExcludeMinResolved is the number of resolved threads required
	// before a loop can be judged (default 8).
	ExcludeMinResolved int
	// ExcludeCapacity bounds the exclusion table (default 16, LRU).
	ExcludeCapacity int

	// OracleIters, when non-nil, replaces the LET prediction with the
	// true iteration count of each execution, consumed in execution
	// birth order (record one with RecordOracle). It bounds how much TPC
	// control misprediction costs: with it, threads are only lost to
	// STR(i) squashes and budget flushes.
	OracleIters []int
}

func (c *Config) excludeDefaults() {
	if c.ExcludeThreshold == 0 {
		c.ExcludeThreshold = 0.5
	}
	if c.ExcludeMinResolved == 0 {
		c.ExcludeMinResolved = 8
	}
	if c.ExcludeCapacity == 0 {
		c.ExcludeCapacity = 16
	}
}

// Metrics are the engine's aggregate results; Table 2 and Figures 5–7 are
// built from them.
type Metrics struct {
	// Instrs is the number of retired instructions.
	Instrs uint64
	// Cycles is the total cycle count of the run under the 1-instruction
	// per TU per cycle model.
	Cycles uint64
	// SpecEvents counts control speculations (iteration starts at which
	// at least one new thread was spawned; in infinite mode, one per
	// execution).
	SpecEvents uint64
	// ThreadsSpawned, ThreadsPromoted, ThreadsSquashed, ThreadsFlushed
	// count speculative-thread outcomes. Flushed threads (pending when
	// the stream ends) are excluded from the hit ratio.
	ThreadsSpawned  uint64
	ThreadsPromoted uint64
	ThreadsSquashed uint64
	ThreadsFlushed  uint64
	// OutstandingSum accumulates, per speculation event, the number of
	// outstanding speculative threads for the loop after the event; see
	// ThreadsPerSpec.
	OutstandingSum uint64
	// VerifDistSum accumulates the dynamic-instruction distance from
	// spawn to resolution (promotion or squash) over resolved threads.
	VerifDistSum    uint64
	ResolvedThreads uint64
	// DeniedSpawns counts spawn attempts suppressed by the exclusion
	// table (§2.3.2), when enabled.
	DeniedSpawns uint64
	// ExcludedLoops is the number of loops currently excluded.
	ExcludedLoops int
	// Anomalies counts internal consistency violations (should be 0).
	Anomalies uint64
}

// TPC returns instructions per cycle, the paper's thread-level
// parallelism metric.
func (m Metrics) TPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instrs) / float64(m.Cycles)
}

// HitRatio returns promoted/(promoted+squashed) in percent.
func (m Metrics) HitRatio() float64 {
	d := m.ThreadsPromoted + m.ThreadsSquashed
	if d == 0 {
		return 0
	}
	return 100 * float64(m.ThreadsPromoted) / float64(d)
}

// ThreadsPerSpec returns the average number of outstanding speculative
// threads per speculation event (Table 2's "#threads/spec.").
func (m Metrics) ThreadsPerSpec() float64 {
	if m.SpecEvents == 0 {
		return 0
	}
	return float64(m.OutstandingSum) / float64(m.SpecEvents)
}

// InstrToVerif returns the average dynamic-instruction distance from
// spawn to verification (Table 2's "#instr. to verif.").
func (m Metrics) InstrToVerif() float64 {
	if m.ResolvedThreads == 0 {
		return 0
	}
	return float64(m.VerifDistSum) / float64(m.ResolvedThreads)
}

// thread is one speculative thread: a future iteration of a loop.
type thread struct {
	iter       int
	spawnClock uint64
	spawnIndex uint64
	// predicted marks threads spawned under an iteration-count
	// prediction; only those count toward the exclusion table's accuracy
	// (a cold loop's blind IDLE-fallback threads say nothing about its
	// predictability).
	predicted bool
}

// loopState is the engine's per-execution state, mirroring the TU
// identifiers the paper stores in the CLS entry (§3.1.2). Queued threads
// always hold consecutive iterations starting at x.Iters+1, so the next
// iteration to speculate is derived as x.Iters+1+len(threads).
type loopState struct {
	x       *loopdet.Exec
	threads []thread
	// oracleIters is the execution's true final iteration count when the
	// engine runs with an oracle (0 = none).
	oracleIters int
	// starved collects the distinct loops (by target address) that wanted
	// speculative threads but found no idle TU while this loop was the
	// outermost thread owner — the STR(i) accounting (see Policy).
	starved map[isa.Addr]struct{}
	// infinite-machine representation: from allFrom on, every iteration
	// counts as spawned at allClock/allIndex.
	allFrom  int
	allClock uint64
	allIndex uint64
}

// accuracy tracks a loop's resolved speculative threads for the
// exclusion table.
type accuracy struct {
	promoted, squashed uint32
}

// Engine is the speculation machine. Attach it to a Detector with
// AddObserver — or bundle it into one pass of a fused multi-pass
// traversal with harness.NewObserverPass, which is how the experiment
// drivers run whole policy × TU columns on a single interpretation. It
// consumes the raw stream (cycle accounting) and the loop events
// (spawn, verify, squash). Read Metrics after the detector is flushed.
type Engine struct {
	cfg Config
	let *looptab.LET

	clock      uint64
	skipBudget uint64
	extentID   uint64

	idle   int
	active []*loopState

	// §2.3.2 exclusion machinery (nil unless enabled).
	accs     map[isa.Addr]*accuracy
	excluded *looptab.Table[struct{}]

	// oracle consumption state.
	oracleNext int

	m         Metrics
	lastIndex uint64
}

// NewEngine returns an engine for the given configuration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg: cfg,
		let: looptab.NewLET(cfg.LETCapacity),
	}
	if cfg.TUs > 0 {
		e.idle = cfg.TUs - 1 // one TU is the non-speculative thread
	}
	if cfg.Exclude {
		e.cfg.excludeDefaults()
		e.accs = make(map[isa.Addr]*accuracy)
		e.excluded = looptab.NewTable[struct{}](e.cfg.ExcludeCapacity)
	}
	return e
}

// Infinite reports whether the engine models the unbounded machine.
func (e *Engine) Infinite() bool { return e.cfg.TUs == 0 }

// Metrics returns a snapshot of the results so far.
func (e *Engine) Metrics() Metrics {
	m := e.m
	m.Cycles = e.clock
	if e.excluded != nil {
		m.ExcludedLoops = e.excluded.Len()
	}
	return m
}

// Clock returns the elapsed cycles.
func (e *Engine) Clock() uint64 { return e.clock }

// Instr implements loopdet.StreamObserver: every retired instruction
// costs one cycle unless it was already executed by a promoted
// speculative thread (skip credit).
func (e *Engine) Instr(ev *trace.Event) {
	e.m.Instrs++
	e.lastIndex = ev.Index
	if e.skipBudget > 0 {
		e.skipBudget--
		return
	}
	e.clock++
}

// InstrBatch implements loopdet.BatchStreamObserver: the cycle/skip
// accounting over a run is a pair of additions, because no thread can
// resolve mid-run (loop events only occur at run boundaries).
func (e *Engine) InstrBatch(evs []trace.Event) {
	n := uint64(len(evs))
	if n == 0 {
		return
	}
	e.m.Instrs += n
	e.lastIndex = evs[n-1].Index
	if e.skipBudget >= n {
		e.skipBudget -= n
		return
	}
	e.clock += n - e.skipBudget
	e.skipBudget = 0
}

// ExecStart implements loopdet.Observer.
func (e *Engine) ExecStart(x *loopdet.Exec) {
	st := &loopState{x: x}
	if n := len(e.cfg.OracleIters); n > 0 {
		if e.oracleNext < n {
			st.oracleIters = e.cfg.OracleIters[e.oracleNext]
		}
		e.oracleNext++
	}
	e.active = append(e.active, st)
	e.let.OnExecStart(x.T)
	if e.cfg.Policy.NestLimit > 0 && e.cfg.NestRule == NestRuleStatic && !e.Infinite() {
		e.enforceStaticNestLimit()
	}
}

// enforceStaticNestLimit applies the literal structural STR(i) reading:
// while the outermost loop owning speculative threads has more than
// NestLimit non-speculated loops nested above it on the CLS, its threads
// are squashed.
func (e *Engine) enforceStaticNestLimit() {
	limit := e.cfg.Policy.NestLimit
	for {
		oi := -1
		for i, st := range e.active {
			if len(st.threads) > 0 {
				oi = i
				break
			}
		}
		if oi < 0 {
			return
		}
		nested := 0
		for j := oi + 1; j < len(e.active); j++ {
			if len(e.active[j].threads) == 0 {
				nested++
			}
		}
		if nested <= limit {
			return
		}
		e.squash(e.active[oi], e.lastIndex, false)
	}
}

// starve implements the STR(i) rule. The paper: "the maximum number of
// non-speculated loops that can be nested into a loop that is being
// speculated; if this limit is exceeded, all speculative threads
// corresponding to the outermost loop are squashed. In this way, idle
// TUs can be used to speculate in inner loops."
//
// We count a nested loop as "non-speculated" when it *asked* for threads
// and found none idle — loops whose predicted remaining iterations are
// already covered do not count (otherwise short fully-covered inner
// loops, e.g. fpppp's trip-2/3 nests, would squash exactly the coarse
// outer speculation whose huge verification distances Table 2 reports).
// The distinct-loop count accumulates on the outermost thread owner and
// resets whenever that owner spawns again.
func (e *Engine) starve(st *loopState, index uint64) {
	limit := e.cfg.Policy.NestLimit
	if limit <= 0 {
		return
	}
	var outer *loopState
	for _, s := range e.active {
		if len(s.threads) > 0 {
			outer = s
			break
		}
	}
	if outer == nil || outer == st {
		return
	}
	if outer.starved == nil {
		outer.starved = make(map[isa.Addr]struct{})
	}
	outer.starved[st.x.T] = struct{}{}
	if len(outer.starved) > limit {
		e.squash(outer, index, false)
		outer.starved = nil
	}
}

// findState returns the active state for execution id. The active list
// is at most CLS-deep, so a linear scan from the innermost end beats a
// map on every real workload (and allocates nothing).
func (e *Engine) findState(id uint64) *loopState {
	for i := len(e.active) - 1; i >= 0; i-- {
		if st := e.active[i]; st.x.ID == id {
			return st
		}
	}
	return nil
}

// IterStart implements loopdet.Observer: verification (promotion of the
// first speculated iteration, §3.1.3) followed by spawning (§3.1.1).
func (e *Engine) IterStart(x *loopdet.Exec, index uint64) {
	st := e.findState(x.ID)
	if st == nil {
		e.m.Anomalies++
		return
	}
	if e.extentID == x.ID {
		// The promoted thread reached its termination point; leftover
		// credit (it finished early and waited) is discarded.
		e.extentID = 0
		e.skipBudget = 0
	}
	promoted := false
	switch {
	case e.Infinite() && st.allFrom > 0 && x.Iters >= st.allFrom:
		promoted = true
		e.m.ThreadsPromoted++
		e.m.ResolvedThreads++
		e.m.VerifDistSum += index - st.allIndex
		if e.clock > st.allClock {
			e.skipBudget = e.clock - st.allClock
			e.extentID = x.ID
		}
	case len(st.threads) > 0:
		if e.skipBudget > 0 || st.threads[0].iter != x.Iters {
			// Should be unreachable: threads always precede the frontier
			// in program order and are consumed in iteration order.
			e.m.Anomalies++
			e.squash(st, index, false)
			break
		}
		h := st.threads[0]
		// Shift down instead of reslicing: a reslice walks the base
		// pointer forward until the next append reallocates, which would
		// cost one heap allocation every few promotions forever. The
		// queue is at most TUs-1 long, so the copy is trivial.
		copy(st.threads, st.threads[1:])
		st.threads = st.threads[:len(st.threads)-1]
		promoted = true
		e.m.ThreadsPromoted++
		e.m.ResolvedThreads++
		e.m.VerifDistSum += index - h.spawnIndex
		e.idle++
		if h.predicted {
			e.noteResolved(st.x.T, true)
		}
		if e.clock > h.spawnClock {
			e.skipBudget = e.clock - h.spawnClock
			e.extentID = x.ID
		}
	}
	// Spawn only at the engine's real frontier: at the promotion boundary
	// itself, or when no skip credit is pending. Boundaries strictly
	// inside already-executed speculative work never spawn (that work is
	// in the past; see DESIGN.md).
	if promoted || e.skipBudget == 0 {
		e.spawn(st, index)
	}
}

// spawn creates speculative threads for future iterations of st per the
// configured policy. The first speculated iteration is always the one
// after the last queued (or current) iteration.
func (e *Engine) spawn(st *loopState, index uint64) {
	first := st.x.Iters + 1 + len(st.threads)
	if e.Infinite() {
		if st.allFrom == 0 {
			st.allFrom = first
			st.allClock = e.clock
			st.allIndex = index
			e.m.SpecEvents++
		}
		return
	}
	if e.excluded != nil && e.excluded.Touch(st.x.T) != nil {
		// The loop is in the §2.3.2 exclusion table: no speculation.
		e.m.DeniedSpawns++
		return
	}
	// How many further iterations the policy wants covered.
	desired := int64(1) << 62 // unknown count: as many as there are TUs
	predicted := false
	switch {
	case st.oracleIters > 0:
		desired = int64(st.oracleIters) - int64(first) + 1
		predicted = true
	case e.cfg.Policy.Kind == PolicyStride:
		if n, ok := e.let.PredictIters(st.x.T); ok {
			desired = n - int64(first) + 1
			predicted = true
		}
	}
	if desired <= 0 {
		return
	}
	if e.idle == 0 {
		if len(st.threads) == 0 && e.cfg.NestRule == NestRuleStarvation {
			// A loop that wants speculation but owns no thread and finds
			// no TU: the STR(i) trigger.
			e.starve(st, index)
		}
		if e.idle == 0 {
			return
		}
	}
	want := e.idle
	if int64(want) > desired {
		want = int(desired)
	}
	for i := 0; i < want; i++ {
		st.threads = append(st.threads, thread{iter: first + i, spawnClock: e.clock, spawnIndex: index, predicted: predicted})
	}
	e.idle -= want
	st.starved = nil
	e.m.SpecEvents++
	e.m.ThreadsSpawned += uint64(want)
	e.m.OutstandingSum += uint64(len(st.threads))
}

// ExecEnd implements loopdet.Observer: remaining speculative threads of
// the loop execute non-existent iterations and are squashed (§3.1.3).
func (e *Engine) ExecEnd(x *loopdet.Exec, reason loopdet.EndReason, index uint64) {
	st := e.findState(x.ID)
	if st == nil {
		return
	}
	if e.extentID == x.ID {
		e.extentID = 0
		e.skipBudget = 0
	}
	e.squash(st, index, reason == loopdet.EndFlush)
	switch reason {
	case loopdet.EndEvicted, loopdet.EndFlush:
		// Not a real completion; the LET keeps its history.
	default:
		e.let.OnExecEnd(x.T, x.Iters)
	}
	for i := len(e.active) - 1; i >= 0; i-- {
		if e.active[i] == st {
			copy(e.active[i:], e.active[i+1:])
			e.active = e.active[:len(e.active)-1]
			break
		}
	}
}

// squash discards all pending threads of st. Flush-squashes (stream end)
// are accounted separately and excluded from the hit ratio.
func (e *Engine) squash(st *loopState, index uint64, flush bool) {
	n := len(st.threads)
	if n == 0 {
		return
	}
	for _, t := range st.threads {
		if flush {
			e.m.ThreadsFlushed++
		} else {
			e.m.ThreadsSquashed++
			e.m.ResolvedThreads++
			e.m.VerifDistSum += index - t.spawnIndex
			if t.predicted {
				e.noteResolved(st.x.T, false)
			}
		}
	}
	st.threads = st.threads[:0]
	e.idle += n
}

// noteResolved feeds the exclusion table's accuracy tracking (§2.3.2):
// once a loop has enough resolved threads and a poor ratio, it is
// excluded from further speculation.
func (e *Engine) noteResolved(t isa.Addr, promoted bool) {
	if e.accs == nil {
		return
	}
	a := e.accs[t]
	if a == nil {
		a = &accuracy{}
		e.accs[t] = a
	}
	if promoted {
		a.promoted++
	} else {
		a.squashed++
	}
	total := int(a.promoted + a.squashed)
	if total >= e.cfg.ExcludeMinResolved {
		ratio := float64(a.promoted) / float64(total)
		if ratio < e.cfg.ExcludeThreshold && e.excluded.Get(t) == nil {
			e.excluded.Insert(t)
		}
	}
}

// OneShot implements loopdet.Observer: single-iteration executions never
// reach the CLS, so the engine cannot speculate on them.
func (e *Engine) OneShot(t, b isa.Addr, index uint64) {}

// CheckInvariant verifies TU conservation: idle + 1 (non-speculative) +
// outstanding speculative threads == TUs. Tests call it; it is a no-op
// for the infinite machine.
func (e *Engine) CheckInvariant() error {
	if e.Infinite() {
		return nil
	}
	busy := 0
	for _, st := range e.active {
		busy += len(st.threads)
	}
	if e.idle+1+busy != e.cfg.TUs {
		return fmt.Errorf("spec: TU leak: idle=%d busy=%d tus=%d", e.idle, busy, e.cfg.TUs)
	}
	return nil
}
