package spec

import (
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// OracleRecorder captures the true final iteration count of every loop
// execution, in execution birth order, from one deterministic run. Feed
// the result to Config.OracleIters on a second identical run to measure
// the upper bound of the STR policy family: speculation with perfect
// iteration-count knowledge.
type OracleRecorder struct {
	loopdet.NopObserver
	counts []int
	slot   map[uint64]int
}

// NewOracleRecorder returns an empty recorder; attach it as a detector
// observer.
func NewOracleRecorder() *OracleRecorder {
	return &OracleRecorder{slot: make(map[uint64]int)}
}

// ExecStart implements loopdet.Observer: allocate this execution's slot
// in birth order.
func (r *OracleRecorder) ExecStart(x *loopdet.Exec) {
	r.slot[x.ID] = len(r.counts)
	r.counts = append(r.counts, 0)
}

// ExecEnd implements loopdet.Observer: record the final count.
func (r *OracleRecorder) ExecEnd(x *loopdet.Exec, reason loopdet.EndReason, index uint64) {
	if i, ok := r.slot[x.ID]; ok {
		r.counts[i] = x.Iters
		delete(r.slot, x.ID)
	}
}

// OneShot implements loopdet.Observer (one-shots never enter the CLS and
// consume no oracle slot).
func (r *OracleRecorder) OneShot(t, b isa.Addr, index uint64) {}

// Counts returns the recorded per-execution iteration counts in birth
// order. The slice is live until the recorder is discarded.
func (r *OracleRecorder) Counts() []int { return r.counts }
