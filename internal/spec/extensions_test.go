package spec

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
)

// chaoticLoops builds a workload whose inner loop trips are uniformly
// random — the worst case for the stride predictor, and exactly what the
// §2.3.2 exclusion table is for.
func chaoticLoops(t *testing.T) *builder.Unit {
	t.Helper()
	b := builder.New("chaos", 11)
	bad := b.UniformSeq(1, 9)
	good := int64(12)
	kernel := b.Func("kernel", func() {
		b.CountedLoop(builder.TripSeq(bad), builder.LoopOpt{}, func() { b.Work(8) })
		b.CountedLoop(builder.TripImm(good), builder.LoopOpt{}, func() { b.Work(8) })
	})
	for i := 0; i < 400; i++ {
		b.Call(kernel)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func runEngine(t *testing.T, u *builder.Unit, cfg Config) Metrics {
	t.Helper()
	e := NewEngine(cfg)
	if _, err := harness.Run(u, harness.Config{}, e); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Anomalies != 0 {
		t.Fatalf("anomalies: %d", m.Anomalies)
	}
	return m
}

// TestExclusionImprovesHitRatio: with the exclusion table on, the
// chronically mispredicted loop stops wasting TUs and the hit ratio
// rises.
func TestExclusionImprovesHitRatio(t *testing.T) {
	u := chaoticLoops(t)
	off := runEngine(t, u, Config{TUs: 4, Policy: STR()})
	// STR's bounded spawning keeps even a random-trip loop's PREDICTED
	// threads near ~70-80% accuracy, so the exclusion bar sits above
	// that (and well below the constant-trip loop's ~100%).
	on := runEngine(t, u, Config{TUs: 4, Policy: STR(), Exclude: true, ExcludeThreshold: 0.85})
	if on.DeniedSpawns == 0 || on.ExcludedLoops == 0 {
		t.Fatalf("exclusion never triggered: %+v", on)
	}
	if on.HitRatio() <= off.HitRatio() {
		t.Fatalf("hit ratio did not improve: on=%.1f off=%.1f", on.HitRatio(), off.HitRatio())
	}
	if on.ThreadsSquashed >= off.ThreadsSquashed {
		t.Fatalf("squashes did not drop: on=%d off=%d", on.ThreadsSquashed, off.ThreadsSquashed)
	}
}

// TestExclusionDisabledByDefault: the zero config never denies.
func TestExclusionDisabledByDefault(t *testing.T) {
	m := runEngine(t, chaoticLoops(t), Config{TUs: 4, Policy: STR()})
	if m.DeniedSpawns != 0 || m.ExcludedLoops != 0 {
		t.Fatalf("exclusion active without being enabled: %+v", m)
	}
}

// TestOracleEliminatesSquashes: with perfect iteration counts, no thread
// is ever squashed on a workload without STR(i) or early exits.
func TestOracleEliminatesSquashes(t *testing.T) {
	u := chaoticLoops(t)

	// Pass 1: record the oracle.
	rec := NewOracleRecorder()
	if _, err := harness.Run(u, harness.Config{}, rec); err != nil {
		t.Fatal(err)
	}
	counts := rec.Counts()
	if len(counts) == 0 {
		t.Fatal("oracle recorded nothing")
	}

	// Pass 2: speculate with the oracle.
	blind := runEngine(t, u, Config{TUs: 4, Policy: STR()})
	oracle := runEngine(t, u, Config{TUs: 4, Policy: STR(), OracleIters: counts})
	if oracle.ThreadsSquashed != 0 {
		t.Fatalf("oracle still squashed %d threads", oracle.ThreadsSquashed)
	}
	if oracle.HitRatio() != 100 {
		t.Fatalf("oracle hit ratio = %.2f, want 100", oracle.HitRatio())
	}
	if oracle.TPC() < blind.TPC() {
		t.Fatalf("oracle TPC %.2f below blind %.2f", oracle.TPC(), blind.TPC())
	}
}

// TestOracleRecorderOrder: counts arrive in execution birth order.
func TestOracleRecorderOrder(t *testing.T) {
	b := builder.New("order", 1)
	b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripImm(5), builder.LoopOpt{}, func() { b.Work(2) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewOracleRecorder()
	if _, err := harness.Run(u, harness.Config{}, rec); err != nil {
		t.Fatal(err)
	}
	// Birth order: inner (5 iters, detected first), outer (3), inner (5),
	// inner (5).
	want := []int{5, 3, 5, 5}
	got := rec.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
}
