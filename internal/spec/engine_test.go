package spec

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

// checker asserts the TU-conservation invariant after every observer
// event.
type checker struct {
	loopdet.NopObserver
	t *testing.T
	e *Engine
}

func (c *checker) ExecStart(x *loopdet.Exec) { c.check() }
func (c *checker) IterStart(x *loopdet.Exec, i uint64) {
	c.check()
}
func (c *checker) ExecEnd(x *loopdet.Exec, r loopdet.EndReason, i uint64) {
	c.check()
}
func (c *checker) check() {
	c.t.Helper()
	if err := c.e.CheckInvariant(); err != nil {
		c.t.Fatal(err)
	}
}

// runSpec executes the unit with an engine attached (plus the invariant
// checker) and returns the metrics.
func runSpec(t *testing.T, u *builder.Unit, cfg Config) Metrics {
	t.Helper()
	e := NewEngine(cfg)
	chk := &checker{t: t, e: e}
	res, err := harness.Run(u, harness.Config{}, e, chk)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("program did not halt")
	}
	m := e.Metrics()
	if m.Anomalies != 0 {
		t.Fatalf("engine anomalies: %d", m.Anomalies)
	}
	// The infinite machine represents "all future iterations" virtually,
	// so per-thread conservation only holds for finite configurations.
	if cfg.TUs > 0 && m.ThreadsSpawned != m.ThreadsPromoted+m.ThreadsSquashed+m.ThreadsFlushed {
		t.Fatalf("thread conservation: spawned=%d promoted=%d squashed=%d flushed=%d",
			m.ThreadsSpawned, m.ThreadsPromoted, m.ThreadsSquashed, m.ThreadsFlushed)
	}
	return m
}

// singleLoop builds one counted loop with the given trip and body size.
func singleLoop(t *testing.T, trip int64, work int) *builder.Unit {
	t.Helper()
	b := builder.New("single", 7)
	b.CountedLoop(builder.TripImm(trip), builder.LoopOpt{}, func() { b.Work(work) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestNoLoopsTPCOne: a straight-line program gets TPC exactly 1.
func TestNoLoopsTPCOne(t *testing.T) {
	b := builder.New("line", 1)
	b.Work(500)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := runSpec(t, u, Config{TUs: 4, Policy: Idle()})
	if m.Instrs != m.Cycles {
		t.Fatalf("instrs=%d cycles=%d, want equal", m.Instrs, m.Cycles)
	}
	if m.SpecEvents != 0 || m.ThreadsSpawned != 0 {
		t.Fatalf("speculation on straight-line code: %+v", m)
	}
}

// TestSingleTU: with one TU there is never an idle unit to speculate on.
func TestSingleTU(t *testing.T) {
	m := runSpec(t, singleLoop(t, 100, 20), Config{TUs: 1, Policy: Idle()})
	if m.TPC() != 1 {
		t.Fatalf("TPC = %v, want exactly 1", m.TPC())
	}
	if m.ThreadsSpawned != 0 {
		t.Fatalf("threads spawned with 1 TU: %d", m.ThreadsSpawned)
	}
}

// TestSteadyStateIdle: a long regular loop keeps 4 TUs nearly saturated.
func TestSteadyStateIdle(t *testing.T) {
	m := runSpec(t, singleLoop(t, 400, 50), Config{TUs: 4, Policy: Idle()})
	tpc := m.TPC()
	if tpc < 3.2 || tpc > 4.001 {
		t.Fatalf("TPC = %.3f, want ~4 (steady state)", tpc)
	}
}

// TestTPCMonotonicInTUs: more TUs never hurt on a regular loop.
func TestTPCMonotonicInTUs(t *testing.T) {
	u := singleLoop(t, 600, 30)
	prev := 0.0
	for _, tus := range []int{1, 2, 4, 8} {
		m := runSpec(t, u, Config{TUs: tus, Policy: Idle()})
		tpc := m.TPC()
		if tpc+1e-9 < prev {
			t.Fatalf("TPC dropped when adding TUs: %v -> %v at %d TUs", prev, tpc, tus)
		}
		if tpc > float64(tus)+1e-9 {
			t.Fatalf("TPC %v exceeds TU count %d", tpc, tus)
		}
		prev = tpc
	}
}

// TestInfiniteMachine: with unlimited TUs a loop of N equal iterations
// reaches TPC about N/2 (iteration 1 is undetected and iteration 2 runs
// non-speculatively; everything later overlaps them).
func TestInfiniteMachine(t *testing.T) {
	m := runSpec(t, singleLoop(t, 100, 30), Config{TUs: 0})
	tpc := m.TPC()
	if tpc < 35 || tpc > 52 {
		t.Fatalf("infinite TPC = %.1f, want ~50", tpc)
	}
	// And it must beat any finite configuration.
	m4 := runSpec(t, singleLoop(t, 100, 30), Config{TUs: 4, Policy: Idle()})
	if tpc <= m4.TPC() {
		t.Fatalf("infinite TPC %.2f <= 4-TU TPC %.2f", tpc, m4.TPC())
	}
}

// repeatedInner builds a kernel function holding one constant-trip loop,
// called `outer` times from straight-line code. Repeated executions warm
// the LET without an enclosing loop competing for TUs (an enclosing
// driver loop would monopolise speculation — the starvation the paper's
// STR(i) policy exists to fix; TestSTRiSquashesOuter covers that side).
func repeatedInner(t *testing.T, outer int, inner int64) *builder.Unit {
	t.Helper()
	b := builder.New("nest", 3)
	f := b.Func("kernel", func() {
		b.Work(6)
		b.CountedLoop(builder.TripImm(inner), builder.LoopOpt{}, func() { b.Work(10) })
		b.Work(6)
	})
	for i := 0; i < outer; i++ {
		b.Call(f)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestSTRBeatsIdleOnHitRatio: on constant-trip inner loops, STR stops
// speculating at the predicted boundary while IDLE runs past it and gets
// squashed.
func TestSTRBeatsIdleOnHitRatio(t *testing.T) {
	u := repeatedInner(t, 40, 8)
	idle := runSpec(t, u, Config{TUs: 4, Policy: Idle()})
	str := runSpec(t, u, Config{TUs: 4, Policy: STR()})
	if str.HitRatio() <= idle.HitRatio() {
		t.Fatalf("STR hit %.1f%% <= IDLE hit %.1f%%", str.HitRatio(), idle.HitRatio())
	}
	if str.HitRatio() < 85 {
		t.Fatalf("STR hit ratio %.1f%%, want > 85%% on constant trips", str.HitRatio())
	}
	if idle.ThreadsSquashed <= str.ThreadsSquashed {
		t.Fatalf("squashes: idle=%d str=%d", idle.ThreadsSquashed, str.ThreadsSquashed)
	}
}

// TestVerifDistancePositive: threads resolve after a positive number of
// instructions.
func TestVerifDistancePositive(t *testing.T) {
	m := runSpec(t, singleLoop(t, 50, 20), Config{TUs: 4, Policy: Idle()})
	if m.ResolvedThreads == 0 || m.InstrToVerif() <= 0 {
		t.Fatalf("verif distance: %+v", m)
	}
	if m.ThreadsPerSpec() <= 0 {
		t.Fatalf("threads/spec = %v", m.ThreadsPerSpec())
	}
}

// feedEngine drives hand-written control steps through a detector with
// the engine attached (for scenarios the builder will not emit).
func feedEngine(t *testing.T, e *Engine, steps []struct {
	pc, target isa.Addr
	taken      bool
}) {
	t.Helper()
	d := loopdet.New(loopdet.Config{Capacity: 16})
	d.AddObserver(e)
	var ev trace.Event
	for i, s := range steps {
		in := isa.Branch(isa.CondNEZ, 2, s.target)
		ev = trace.Event{Index: uint64(i), PC: s.pc, Instr: &in, Taken: s.taken}
		if s.taken {
			ev.Target = s.target
		}
		d.Consume(&ev)
		if err := e.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
}

// TestSTRiSquashesOuter: with STR(1), detecting a second non-speculated
// loop inside a speculated outer squashes the outer's threads so inner
// loops can use the TUs.
func TestSTRiSquashesOuter(t *testing.T) {
	e := NewEngine(Config{TUs: 4, Policy: STRn(1)})
	feedEngine(t, e, []struct {
		pc, target isa.Addr
		taken      bool
	}{
		{90, 10, true}, // outer detected; spawns 3 threads (no LET info -> idle rule)
		{80, 20, true}, // inner 1 detected: 1 non-speculated nested loop, within limit
		{70, 30, true}, // inner 2 detected: 2 > limit -> squash outer's threads
	})
	m := e.Metrics()
	if m.ThreadsSquashed != 3 {
		t.Fatalf("squashed = %d, want 3 (outer's threads)", m.ThreadsSquashed)
	}
	// The freed TUs were re-used for the innermost loop and flushed at
	// the end.
	if m.ThreadsFlushed == 0 {
		t.Fatalf("expected flushed inner threads, got %+v", m)
	}
}

// TestSTRnString covers policy naming.
func TestSTRnString(t *testing.T) {
	cases := map[string]Policy{
		"IDLE":   Idle(),
		"STR":    STR(),
		"STR(2)": STRn(2),
	}
	for want, p := range cases {
		if p.String() != want {
			t.Fatalf("String() = %q, want %q", p.String(), want)
		}
	}
}

// TestGuardedColdLoop: speculation across multiple executions of the same
// loop reuses LET history (hit ratio improves after the first two
// executions).
func TestLETWarmup(t *testing.T) {
	u := repeatedInner(t, 3, 12)
	m := runSpec(t, u, Config{TUs: 8, Policy: STR()})
	// 3 inner executions: the first two run blind (IDLE-like), the third
	// is predicted. There must be at least one squash from the blind
	// phase and a healthy overall hit ratio.
	if m.ThreadsSquashed == 0 {
		t.Fatalf("expected blind-phase squashes: %+v", m)
	}
	if m.HitRatio() < 50 {
		t.Fatalf("hit ratio %.1f%% too low", m.HitRatio())
	}
}

// TestDeterministicMetrics: identical runs give identical metrics.
func TestDeterministicMetrics(t *testing.T) {
	b := builder.New("rand", 99)
	trip := b.UniformSeq(2, 20)
	b.CountedLoop(builder.TripImm(60), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripSeq(trip), builder.LoopOpt{}, func() { b.Work(8) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m1 := runSpec(t, u, Config{TUs: 4, Policy: STR()})
	m2 := runSpec(t, u, Config{TUs: 4, Policy: STR()})
	if m1 != m2 {
		t.Fatalf("metrics diverged:\n%+v\n%+v", m1, m2)
	}
}
