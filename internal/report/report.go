// Package report renders experiment results as aligned ASCII tables,
// horizontal bar charts (the "figures") and CSV, using only the standard
// library.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with 2
// decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Render writes the formatted table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			// Right-align numbers-ish columns, left-align the first.
			if i == 0 {
				fmt.Fprintf(w, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(w, "%*s", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.rows {
		line(r)
	}
}

// CSV renders the table as comma-separated values (quotes are not needed
// for our numeric content).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// Bars renders a horizontal bar chart: one labelled bar per value, scaled
// to width characters at max(values). Log-scale rendering is available
// for Figure-5-style spreads via BarsLog.
func Bars(title string, width int, labels []string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %10.2f |%s\n", maxL, labels[i], v, strings.Repeat("#", n))
	}
	return b.String()
}

// BarsLog renders bars on a log10 scale (for spreads over orders of
// magnitude, like the infinite-TU TPC of Figure 5).
func BarsLog(title string, width int, labels []string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log scale)\n", title)
	maxLog := 0.0
	maxL := 0
	logs := make([]float64, len(values))
	for i, v := range values {
		if v < 1 {
			v = 1
		}
		logs[i] = log10(v)
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxLog <= 0 {
		maxLog = 1
	}
	for i := range values {
		n := int(logs[i] / maxLog * float64(width))
		fmt.Fprintf(&b, "  %-*s %12.1f |%s\n", maxL, labels[i], values[i], strings.Repeat("#", n))
	}
	return b.String()
}

func log10(v float64) float64 { return math.Log10(v) }
