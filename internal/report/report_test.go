package report

import (
	"strings"
	"testing"
)

// TestTableAlignment checks headers, separator and column alignment.
func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 123.456)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("title line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator line: %q", lines[2])
	}
	if !strings.Contains(s, "123.46") {
		t.Fatalf("float not formatted to 2 decimals:\n%s", s)
	}
	// All data lines must have equal rendered width per column block:
	if len(lines) != 5 {
		t.Fatalf("line count = %d", len(lines))
	}
}

// TestTableCSV checks the CSV rendering.
func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x", 2)
	var sb strings.Builder
	tb.CSV(&sb)
	want := "a,b\nx,2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

// TestBarsScaling checks bars scale to the maximum value.
func TestBarsScaling(t *testing.T) {
	s := Bars("chart", 10, []string{"small", "big"}, []float64{1, 2})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if !strings.HasSuffix(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	small := strings.Count(lines[1], "#")
	if small != 5 {
		t.Fatalf("small bar = %d hashes, want 5", small)
	}
}

// TestBarsLogOrdering checks log bars keep order across magnitudes.
func TestBarsLog(t *testing.T) {
	s := BarsLog("chart", 20, []string{"ten", "thousand"}, []float64{10, 1000})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	ten := strings.Count(lines[1], "#")
	thousand := strings.Count(lines[2], "#")
	if thousand != 20 || ten >= thousand || ten == 0 {
		t.Fatalf("log bars: ten=%d thousand=%d", ten, thousand)
	}
	// Sub-1 values are clamped, not negative.
	s = BarsLog("chart", 20, []string{"tiny"}, []float64{0.5})
	if strings.Contains(s, "panic") {
		t.Fatal("log bars broke on sub-1 values")
	}
}

// TestBarsZero checks the degenerate all-zero case.
func TestBarsZero(t *testing.T) {
	s := Bars("chart", 10, []string{"z"}, []float64{0})
	if !strings.Contains(s, "0.00") {
		t.Fatalf("zero bar: %q", s)
	}
}
