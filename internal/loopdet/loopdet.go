// Package loopdet implements the paper's dynamic loop detection mechanism
// (§2): the Current Loop Stack (CLS).
//
// The detector consumes the retired instruction stream and discovers loop
// executions and loop iterations on the fly, with no compiler support:
//
//   - a taken backward branch or jump to an address T not in the CLS opens
//     a new loop execution (detected at the start of its second iteration);
//   - a taken backward branch or jump to a T in the CLS ends an iteration
//     and starts the next one, popping any inner loops above it;
//   - a not-taken backward branch at the loop's highest known closing
//     address B ends both the iteration and the execution;
//   - a taken branch or jump from inside a loop body to a target outside
//     it ends the execution (break/goto);
//   - a return instruction inside a loop body ends the execution;
//   - calls never end executions (subroutine bodies are part of the
//     iteration that calls them).
//
// Loop structure events are delivered to Observers; observers that also
// implement StreamObserver additionally receive every raw instruction
// event first, in stream order.
package loopdet

import (
	"fmt"
	"strings"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// EndReason says why a loop execution ended.
type EndReason uint8

const (
	// EndBackEdge is the normal termination: the closing branch at B was
	// not taken.
	EndBackEdge EndReason = iota
	// EndExit is a taken branch or jump from inside the body to a target
	// outside it (break, goto).
	EndExit
	// EndReturn is a return instruction inside the loop body.
	EndReturn
	// EndOuter means an enclosing loop iterated or terminated, implicitly
	// ending this inner execution.
	EndOuter
	// EndEvicted means the CLS overflowed and dropped this (deepest)
	// entry.
	EndEvicted
	// EndFlush means Flush was called (end of the measured stream).
	EndFlush
)

// String names the reason.
func (r EndReason) String() string {
	switch r {
	case EndBackEdge:
		return "backedge"
	case EndExit:
		return "exit"
	case EndReturn:
		return "return"
	case EndOuter:
		return "outer"
	case EndEvicted:
		return "evicted"
	case EndFlush:
		return "flush"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Exec is one loop execution tracked by the CLS. Observers receive the
// same *Exec across its lifetime and may compare pointers or IDs; they
// must not mutate it.
type Exec struct {
	// ID is unique across the run.
	ID uint64
	// T is the loop identifier: the target address of its backward
	// branches.
	T isa.Addr
	// B is the highest closing-branch address observed so far; it only
	// grows during an execution.
	B isa.Addr
	// Iters counts iterations started. It is 2 at detection (the first
	// iteration is only discovered once it has finished, §2.2).
	Iters int
	// StartIndex is the dynamic index of the detecting backward branch.
	StartIndex uint64
	// IterStartIndex is the dynamic index of the first instruction of the
	// current iteration.
	IterStartIndex uint64
	// Depth is the CLS depth at push time (0 = bottom/outermost).
	Depth int
}

// Observer receives loop structure events. Callbacks are invoked
// synchronously in stream order.
type Observer interface {
	// ExecStart reports a newly detected loop execution; it is
	// immediately followed by IterStart for iteration 2.
	ExecStart(x *Exec)
	// IterStart reports that iteration x.Iters has begun. index is the
	// dynamic index of the closing backward branch; the new iteration's
	// first instruction is index+1.
	IterStart(x *Exec, index uint64)
	// ExecEnd reports that the execution ended at dynamic index for the
	// given reason. x.Iters is the final iteration count.
	ExecEnd(x *Exec, reason EndReason, index uint64)
	// OneShot reports a single-iteration loop execution (a not-taken
	// backward branch whose target was not in the CLS). Such executions
	// never enter the CLS.
	OneShot(t, b isa.Addr, index uint64)
}

// StreamObserver is an Observer that also wants the raw instruction
// stream. Instr is called before any loop event derived from that
// instruction.
type StreamObserver interface {
	Observer
	// Instr receives every retired instruction; the pointee is reused.
	Instr(ev *trace.Event)
}

// BatchStreamObserver is a StreamObserver whose raw-stream delivery can
// take contiguous runs of events at once. The detector guarantees that a
// run never spans a loop event: every loop callback derived from an
// instruction in the run is invoked after InstrBatch returns, and the
// triggering instruction is always the run's last element. The CLS is
// therefore in a single consistent state for the whole run, which lets
// observers hoist per-instruction state lookups out of their inner loop.
// The slice is reused by the producer (see the trace package comment on
// batch lifetime).
type BatchStreamObserver interface {
	StreamObserver
	// InstrBatch receives a contiguous run of retired instructions, in
	// stream order, equivalent to calling Instr for each element.
	InstrBatch(evs []trace.Event)
}

// NopObserver implements Observer with no-ops; embed it to implement only
// some callbacks.
type NopObserver struct{}

// ExecStart does nothing.
func (NopObserver) ExecStart(*Exec) {}

// IterStart does nothing.
func (NopObserver) IterStart(*Exec, uint64) {}

// ExecEnd does nothing.
func (NopObserver) ExecEnd(*Exec, EndReason, uint64) {}

// OneShot does nothing.
func (NopObserver) OneShot(isa.Addr, isa.Addr, uint64) {}

// Stats are aggregate detector counters.
type Stats struct {
	// Instrs is the number of instructions consumed.
	Instrs uint64
	// Pushes counts loop executions entered into the CLS.
	Pushes uint64
	// OneShots counts single-iteration executions.
	OneShots uint64
	// IterStarts counts iteration-start events.
	IterStarts uint64
	// Evictions counts CLS overflow evictions.
	Evictions uint64
	// MaxDepth is the deepest CLS occupancy observed.
	MaxDepth int
}

// Config parametrises a Detector.
type Config struct {
	// Capacity bounds the CLS (the paper uses 16). 0 means unbounded.
	Capacity int
	// FlushInterval, when positive, flushes the CLS every that many
	// instructions — the paper's §2.2 safety valve against entries
	// stranded by never-returning calls ("such situation could be handled
	// by periodically flushing the contents of the CLS"). Active loops
	// are simply re-detected at their next backward branch.
	FlushInterval uint64
}

// Detector is the CLS mechanism. Create with New, attach observers, then
// feed it the instruction stream (it implements both trace.Consumer and
// trace.BatchConsumer; the batch path is the fast one) and call Flush at
// the end.
type Detector struct {
	capacity  int
	flushMask uint64 // 0 = disabled; otherwise flush when instrs reaches the next multiple
	flushAt   uint64
	cls       []*Exec // cls[0] is the deepest/outermost entry
	obs       []Observer
	stream    []streamSink
	nextID    uint64
	last      uint64
	stats     Stats
}

// streamSink is one attached raw-stream observer with its (possibly
// adapted) batch delivery path resolved at attachment time, so the hot
// loop never type-asserts.
type streamSink struct {
	scalar StreamObserver
	batch  BatchStreamObserver // nil when scalar-only
}

func (s *streamSink) deliver(evs []trace.Event) {
	if s.batch != nil {
		s.batch.InstrBatch(evs)
		return
	}
	for i := range evs {
		s.scalar.Instr(&evs[i])
	}
}

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	d := &Detector{capacity: cfg.Capacity}
	if cfg.FlushInterval > 0 {
		d.flushMask = cfg.FlushInterval
		d.flushAt = cfg.FlushInterval
	}
	return d
}

// AddObserver attaches an observer; observers are invoked in attachment
// order. Observers that implement StreamObserver also receive raw
// events, via InstrBatch when they implement BatchStreamObserver.
func (d *Detector) AddObserver(o Observer) {
	d.obs = append(d.obs, o)
	if s, ok := o.(StreamObserver); ok {
		sink := streamSink{scalar: s}
		if b, ok := o.(BatchStreamObserver); ok {
			sink.batch = b
		}
		d.stream = append(d.stream, sink)
	}
}

// Init implements trace.Pass; a fresh detector needs no setup.
func (d *Detector) Init() {}

// Finalize implements trace.Pass by flushing the CLS, so a detector (with
// its observers) is directly schedulable as one pass of a fused
// multi-pass traversal — each pass owning a private detector is what
// lets CLS-capacity ablations share one instruction stream.
func (d *Detector) Finalize() { d.Flush() }

// Depth returns the current CLS occupancy.
func (d *Detector) Depth() int { return len(d.cls) }

// Top returns the innermost active execution, or nil.
func (d *Detector) Top() *Exec {
	if len(d.cls) == 0 {
		return nil
	}
	return d.cls[len(d.cls)-1]
}

// At returns the execution at stack position i (0 = outermost).
func (d *Detector) At(i int) *Exec { return d.cls[i] }

// Stats returns the aggregate counters so far.
func (d *Detector) Stats() Stats { return d.stats }

// Consume processes one retired instruction (trace.Consumer).
func (d *Detector) Consume(ev *trace.Event) {
	for i := range d.stream {
		d.stream[i].scalar.Instr(ev)
	}
	d.step(ev)
}

// ConsumeBatch processes a batch of retired instructions
// (trace.BatchConsumer) with the same observable behaviour as calling
// Consume per event: raw-stream observers receive the events in
// contiguous runs that end at each control-transfer instruction (the
// only kind that can produce loop events) and at periodic-flush
// boundaries, then the loop logic for that instruction runs. Most
// instructions are neither, so the inner loop touches no interfaces.
func (d *Detector) ConsumeBatch(evs []trace.Event) {
	if len(evs) == 0 {
		return
	}
	if d.flushMask != 0 {
		d.consumeBatchSlow(evs)
		return
	}
	// Fast path (no periodic flush): bulk the counters, so the scan costs
	// one kind test per instruction.
	d.stats.Instrs += uint64(len(evs))
	start := 0
	for i := range evs {
		ev := &evs[i]
		in := ev.Instr
		k := in.Kind
		if k != isa.KindBranch && k != isa.KindJump && k != isa.KindRet {
			continue
		}
		d.emitStream(evs[start : i+1])
		start = i + 1
		d.last = ev.Index
		d.transfer(ev)
	}
	d.emitStream(evs[start:])
	d.last = evs[len(evs)-1].Index
}

// ConsumeBatchSegmented processes a batch whose control-transfer indices
// the producer already knows (trace.SegmentedBatchConsumer): ctl lists,
// ascending, the indices into evs of the events with Kind branch, jump
// or ret. The result is identical to ConsumeBatch; the detector just
// skips its own per-event kind scan and walks boundary to boundary.
func (d *Detector) ConsumeBatchSegmented(evs []trace.Event, ctl []int32) {
	if len(evs) == 0 {
		return
	}
	if d.flushMask != 0 {
		d.consumeBatchSlow(evs)
		return
	}
	d.stats.Instrs += uint64(len(evs))
	start := 0
	for _, ci := range ctl {
		i := int(ci)
		ev := &evs[i]
		d.emitStream(evs[start : i+1])
		start = i + 1
		d.last = ev.Index
		d.transfer(ev)
	}
	d.emitStream(evs[start:])
	d.last = evs[len(evs)-1].Index
}

// NeedPlanes implements trace.PlaneDeclarer: the CLS rules read only the
// control facet, so a detector with no raw-stream observers (and no
// periodic flush, whose boundary can fall mid-run) is control-only and
// producers may deliver compact control-plane batches. Attaching a
// StreamObserver — the §4 statistics collectors, the speculation engine
// — pulls the detector back to full-facet delivery, since raw events
// must carry the data facet those observers read.
func (d *Detector) NeedPlanes() trace.Planes {
	if len(d.stream) == 0 && d.flushMask == 0 {
		return trace.PlaneCtl
	}
	return trace.PlaneCtl | trace.PlaneData
}

// ConsumeCtlBatch processes a control-plane batch
// (trace.CtlBatchConsumer). The producer always supplies the
// control-transfer indices, so the detector skips straight-line runs
// entirely: the loop below touches only the boundary events, and the
// run between boundaries costs nothing at all (there are no stream
// observers on this path — see NeedPlanes).
func (d *Detector) ConsumeCtlBatch(evs []trace.CtlEvent, ctl []int32) {
	if len(evs) == 0 {
		return
	}
	if len(d.stream) != 0 || d.flushMask != 0 {
		panic("loopdet: control-plane delivery to a full-facet detector")
	}
	d.stats.Instrs += uint64(len(evs))
	for _, ci := range ctl {
		ev := &evs[ci]
		d.last = ev.Index
		d.transferCtl(ev)
	}
	d.last = evs[len(evs)-1].Index
}

// transferCtl is transfer over the control-plane event representation;
// the two must stay rule-for-rule identical.
func (d *Detector) transferCtl(ev *trace.CtlEvent) {
	in := ev.Instr
	switch in.Kind {
	case isa.KindBranch:
		if in.Target <= ev.PC {
			d.backward(ev.PC, in.Target, ev.Taken, ev.Index)
		} else if ev.Taken {
			d.exitTransfer(ev.PC, in.Target, ev.Index)
		}
	case isa.KindJump:
		if in.Target <= ev.PC {
			d.backward(ev.PC, in.Target, true, ev.Index)
		} else {
			d.exitTransfer(ev.PC, in.Target, ev.Index)
		}
	case isa.KindRet:
		d.ret(ev.PC, ev.Index)
	}
}

// transfer applies the loop rules for one control-transfer instruction
// (a no-op for any other kind). Every consume path funnels through it so
// the scalar and batch paths cannot drift apart.
func (d *Detector) transfer(ev *trace.Event) {
	in := ev.Instr
	switch in.Kind {
	case isa.KindBranch:
		if in.Target <= ev.PC {
			d.backward(ev.PC, in.Target, ev.Taken, ev.Index)
		} else if ev.Taken {
			d.exitTransfer(ev.PC, in.Target, ev.Index)
		}
	case isa.KindJump:
		if in.Target <= ev.PC {
			d.backward(ev.PC, in.Target, true, ev.Index)
		} else {
			d.exitTransfer(ev.PC, in.Target, ev.Index)
		}
	case isa.KindRet:
		d.ret(ev.PC, ev.Index)
	}
}

// consumeBatchSlow is the periodic-flush variant: the flush boundary can
// fall on any instruction, so the counters advance per event.
func (d *Detector) consumeBatchSlow(evs []trace.Event) {
	start := 0
	for i := range evs {
		ev := &evs[i]
		d.stats.Instrs++
		d.last = ev.Index
		flushDue := d.stats.Instrs >= d.flushAt
		k := ev.Instr.Kind
		if !flushDue && k != isa.KindBranch && k != isa.KindJump && k != isa.KindRet {
			continue
		}
		d.emitStream(evs[start : i+1])
		start = i + 1
		if flushDue {
			d.flushAt += d.flushMask
			d.Flush()
		}
		d.transfer(ev)
	}
	d.emitStream(evs[start:])
}

// emitStream delivers a contiguous run of raw events to the stream
// observers.
func (d *Detector) emitStream(evs []trace.Event) {
	if len(evs) == 0 {
		return
	}
	for i := range d.stream {
		d.stream[i].deliver(evs)
	}
}

// step runs the per-instruction bookkeeping and loop logic (everything
// Consume does except raw-stream delivery).
func (d *Detector) step(ev *trace.Event) {
	d.stats.Instrs++
	d.last = ev.Index
	if d.flushMask != 0 && d.stats.Instrs >= d.flushAt {
		d.flushAt += d.flushMask
		d.Flush()
	}
	d.transfer(ev)
}

// find returns the stack index of the entry with target t, or -1.
func (d *Detector) find(t isa.Addr) int {
	for i := len(d.cls) - 1; i >= 0; i-- {
		if d.cls[i].T == t {
			return i
		}
	}
	return -1
}

// backward handles a backward branch (taken or not) or jump to t from pc.
func (d *Detector) backward(pc, t isa.Addr, taken bool, idx uint64) {
	i := d.find(t)
	if i < 0 {
		if !taken {
			// A complete one-iteration execution, §2.2: "a loop with only
			// one iteration has been executed".
			d.stats.OneShots++
			for _, o := range d.obs {
				o.OneShot(t, pc, idx)
			}
			return
		}
		// The transfer may simultaneously exit inner loops whose body
		// contains pc but not t.
		d.exitTransfer(pc, t, idx)
		d.push(t, pc, idx)
		return
	}
	x := d.cls[i]
	if taken {
		// Iteration of x ends; everything nested above it ends with it.
		d.popAbove(i, EndOuter, idx)
		if pc > x.B {
			x.B = pc
		}
		x.Iters++
		x.IterStartIndex = idx + 1
		d.stats.IterStarts++
		for _, o := range d.obs {
			o.IterStart(x, idx)
		}
		return
	}
	// Not taken: terminates the execution only at the highest known
	// closing address (§2.2: "if the branch is not taken and the value of
	// field B is lower than or equal to PC").
	if x.B <= pc {
		d.popAbove(i, EndOuter, idx)
		d.popTop(EndBackEdge, idx)
	}
}

// exitTransfer applies the exit rule: every CLS entry whose body contains
// pc but not tgt is removed (its execution ended). Removals are reported
// innermost-first.
func (d *Detector) exitTransfer(pc, tgt isa.Addr, idx uint64) {
	for i := len(d.cls) - 1; i >= 0; i-- {
		x := d.cls[i]
		if x.T <= pc && pc <= x.B && (tgt < x.T || tgt > x.B) {
			d.removeAt(i, EndExit, idx)
		}
	}
}

// ret applies the return rule: every CLS entry whose body contains pc is
// removed.
func (d *Detector) ret(pc isa.Addr, idx uint64) {
	for i := len(d.cls) - 1; i >= 0; i-- {
		x := d.cls[i]
		if x.T <= pc && pc <= x.B {
			d.removeAt(i, EndReturn, idx)
		}
	}
}

// push opens a new execution for loop t with closing branch at pc.
func (d *Detector) push(t, pc isa.Addr, idx uint64) {
	if d.capacity > 0 && len(d.cls) >= d.capacity {
		// Overflow drops the deepest (outermost) entry, §2.2.
		d.stats.Evictions++
		bottom := d.cls[0]
		copy(d.cls, d.cls[1:])
		d.cls = d.cls[:len(d.cls)-1]
		for _, o := range d.obs {
			o.ExecEnd(bottom, EndEvicted, idx)
		}
	}
	d.nextID++
	x := &Exec{
		ID:             d.nextID,
		T:              t,
		B:              pc,
		Iters:          2,
		StartIndex:     idx,
		IterStartIndex: idx + 1,
		Depth:          len(d.cls),
	}
	d.cls = append(d.cls, x)
	d.stats.Pushes++
	d.stats.IterStarts++
	if len(d.cls) > d.stats.MaxDepth {
		d.stats.MaxDepth = len(d.cls)
	}
	for _, o := range d.obs {
		o.ExecStart(x)
	}
	for _, o := range d.obs {
		o.IterStart(x, idx)
	}
}

// popAbove removes all entries strictly above stack index i, innermost
// first.
func (d *Detector) popAbove(i int, r EndReason, idx uint64) {
	for len(d.cls) > i+1 {
		d.popTop(r, idx)
	}
}

// popTop removes the innermost entry.
func (d *Detector) popTop(r EndReason, idx uint64) {
	x := d.cls[len(d.cls)-1]
	d.cls = d.cls[:len(d.cls)-1]
	for _, o := range d.obs {
		o.ExecEnd(x, r, idx)
	}
}

// removeAt removes the entry at stack index i (possibly mid-stack: the
// exit rule is per-entry and overlapped loops or an understated B can
// leave non-matching entries above a matching one).
func (d *Detector) removeAt(i int, r EndReason, idx uint64) {
	x := d.cls[i]
	copy(d.cls[i:], d.cls[i+1:])
	d.cls = d.cls[:len(d.cls)-1]
	for _, o := range d.obs {
		o.ExecEnd(x, r, idx)
	}
}

// Flush ends every active execution (reason EndFlush), innermost first.
// Call it when the measured stream ends so observers can finalise.
func (d *Detector) Flush() {
	for len(d.cls) > 0 {
		d.popTop(EndFlush, d.last+1)
	}
}

// DumpCLS renders the current stack for debugging, outermost first.
func (d *Detector) DumpCLS() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CLS depth=%d\n", len(d.cls))
	for i, x := range d.cls {
		fmt.Fprintf(&b, "  [%d] T=%d B=%d iters=%d id=%d\n", i, x.T, x.B, x.Iters, x.ID)
	}
	return b.String()
}
