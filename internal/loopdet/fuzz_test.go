package loopdet

import (
	"testing"
	"testing/quick"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// TestCLSFuzzInvariants feeds completely arbitrary control-flow streams
// (including shapes no real program produces: non-contiguous PCs,
// overlapping bodies, jumps into bodies) and checks the structural
// invariants the mechanism must uphold regardless:
//
//   - never panics;
//   - stack depth never exceeds capacity;
//   - entries are unique by target address;
//   - every entry satisfies T <= B;
//   - event accounting balances (pushes = ends after flush);
//   - iteration counts are >= 2 for every tracked execution.
func TestCLSFuzzInvariants(t *testing.T) {
	f := func(seed uint64, capacity uint8) bool {
		capEntries := int(capacity%15) + 2
		d := New(Config{Capacity: capEntries})
		var pushes, ends int
		minIters := 2
		chk := &fuzzObs{
			onStart: func(*Exec) { pushes++ },
			onEnd: func(x *Exec, r EndReason, _ uint64) {
				ends++
				if x.Iters < minIters {
					minIters = x.Iters
				}
			},
		}
		d.AddObserver(chk)

		r := seed | 1
		next := func(n uint64) uint64 {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return r % n
		}
		var ev trace.Event
		callDepth := 0
		for i := 0; i < 3000; i++ {
			pc := isa.Addr(next(64))
			var in isa.Instr
			switch next(5) {
			case 0:
				in = isa.Branch(isa.CondNEZ, 1, isa.Addr(next(64)))
			case 1:
				in = isa.Jump(isa.Addr(next(64)))
			case 2:
				in = isa.Call(isa.Addr(next(64)))
				callDepth++
			case 3:
				if callDepth > 0 {
					in = isa.Ret()
					callDepth--
				} else {
					in = isa.Nop()
				}
			default:
				in = isa.Nop()
			}
			ev = trace.Event{Index: uint64(i), PC: pc, Instr: &in}
			if in.Kind != isa.KindBranch || next(2) == 0 {
				if in.Kind.IsControl() {
					ev.Taken = true
					ev.Target = in.Target
				}
			}
			d.Consume(&ev)

			if d.Depth() > capEntries {
				t.Logf("depth %d > capacity %d", d.Depth(), capEntries)
				return false
			}
			seen := map[isa.Addr]bool{}
			for j := 0; j < d.Depth(); j++ {
				x := d.At(j)
				if seen[x.T] {
					t.Logf("duplicate CLS entry T=%d", x.T)
					return false
				}
				seen[x.T] = true
				if x.B < x.T {
					t.Logf("entry with B < T: %+v", x)
					return false
				}
			}
		}
		d.Flush()
		if d.Depth() != 0 {
			t.Log("flush left entries")
			return false
		}
		if pushes != ends {
			t.Logf("pushes %d != ends %d", pushes, ends)
			return false
		}
		if minIters < 2 {
			t.Logf("tracked execution with %d iterations", minIters)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// fuzzObs adapts closures to the Observer interface.
type fuzzObs struct {
	NopObserver
	onStart func(*Exec)
	onEnd   func(*Exec, EndReason, uint64)
}

func (f *fuzzObs) ExecStart(x *Exec) { f.onStart(x) }
func (f *fuzzObs) ExecEnd(x *Exec, r EndReason, i uint64) {
	f.onEnd(x, r, i)
}
