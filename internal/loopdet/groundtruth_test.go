package loopdet_test

import (
	"testing"
	"testing/quick"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// nest is a randomly generated tree of counted loops with known constant
// trip counts, for which the detector's exact event counts can be
// computed analytically:
//
//   - a loop with trip t >= 2 executed `outer` times produces `outer`
//     detected executions of t iterations each (t-1 iteration-start
//     events per execution, ending with reason backedge);
//   - a loop with trip 1 produces `outer` one-shot events and never
//     enters the CLS.
type nest struct {
	trip     int
	work     int
	children []nest
}

// mkNest derives a deterministic random tree from a seed.
func mkNest(seed uint64, depth int) nest {
	r := seed
	next := func(n uint64) uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r % n
	}
	var build func(d int) nest
	build = func(d int) nest {
		n := nest{trip: int(1 + next(5)), work: int(1 + next(6))}
		if d < depth {
			for i := uint64(0); i < next(3); i++ {
				n.children = append(n.children, build(d+1))
			}
		}
		return n
	}
	return build(0)
}

// emit lays the nest out through the builder; loops appear in u.Loops in
// pre-order.
func emit(b *builder.Builder, n nest) {
	b.CountedLoop(builder.TripImm(int64(n.trip)), builder.LoopOpt{}, func() {
		b.Work(n.work)
		for _, c := range n.children {
			emit(b, c)
		}
	})
}

// expectation accumulates the analytical counts in pre-order.
type expectation struct {
	execs, iterEvents, oneShots uint64
}

func expect(n nest, outer uint64, out *[]expectation) {
	e := expectation{}
	if n.trip >= 2 {
		e.execs = outer
		e.iterEvents = outer * uint64(n.trip-1)
	} else {
		e.oneShots = outer
	}
	*out = append(*out, e)
	for _, c := range n.children {
		expect(c, outer*uint64(n.trip), out)
	}
}

// perLoop tallies detector events per loop head.
type perLoop struct {
	loopdet.NopObserver
	execs, iters, oneShots map[isa.Addr]uint64
	badEnds                int
}

func newPerLoop() *perLoop {
	return &perLoop{
		execs:    make(map[isa.Addr]uint64),
		iters:    make(map[isa.Addr]uint64),
		oneShots: make(map[isa.Addr]uint64),
	}
}

func (p *perLoop) ExecStart(x *loopdet.Exec)               { p.execs[x.T]++ }
func (p *perLoop) IterStart(x *loopdet.Exec, index uint64) { p.iters[x.T]++ }
func (p *perLoop) OneShot(t, b isa.Addr, index uint64)     { p.oneShots[t]++ }
func (p *perLoop) ExecEnd(x *loopdet.Exec, r loopdet.EndReason, index uint64) {
	// Pure counted nests must only terminate via their closing branch.
	if r != loopdet.EndBackEdge {
		p.badEnds++
	}
}

// TestGroundTruthQuick: for random pure loop nests the detector's event
// counts must match the closed-form expectation exactly, loop by loop.
func TestGroundTruthQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := mkNest(seed|1, 3)
		b := builder.New("gt", 1)
		emit(b, n)
		u, err := b.Build()
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		var want []expectation
		expect(n, 1, &want)
		if len(want) != len(u.Loops) {
			t.Logf("seed %d: loop count mismatch: %d vs %d", seed, len(want), len(u.Loops))
			return false
		}
		obs := newPerLoop()
		res, err := harness.Run(u, harness.Config{}, obs)
		if err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		if !res.Halted {
			t.Logf("seed %d: did not halt", seed)
			return false
		}
		if obs.badEnds != 0 {
			t.Logf("seed %d: %d non-backedge terminations", seed, obs.badEnds)
			return false
		}
		for i, w := range want {
			head := u.Loops[i].Head
			if obs.execs[head] != w.execs || obs.iters[head] != w.iterEvents || obs.oneShots[head] != w.oneShots {
				t.Logf("seed %d loop %d @%d: got execs=%d iters=%d oneshots=%d, want %+v",
					seed, i, head, obs.execs[head], obs.iters[head], obs.oneShots[head], w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestGroundTruthDeepNest pins one deep deterministic case.
func TestGroundTruthDeepNest(t *testing.T) {
	n := nest{trip: 3, work: 2, children: []nest{
		{trip: 1, work: 1}, // one-shot inside every outer iteration
		{trip: 4, work: 1, children: []nest{
			{trip: 2, work: 3},
		}},
	}}
	b := builder.New("deep", 1)
	emit(b, n)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var want []expectation
	expect(n, 1, &want)
	obs := newPerLoop()
	if _, err := harness.Run(u, harness.Config{}, obs); err != nil {
		t.Fatal(err)
	}
	// Outer: 1 exec, 2 iteration events. One-shot child: 3 one-shots.
	// Middle: 3 execs x 3 events. Inner: 12 execs x 1 event.
	heads := u.Loops
	checks := []struct {
		idx        int
		execs, its uint64
		shots      uint64
	}{
		{0, 1, 2, 0},
		{1, 0, 0, 3},
		{2, 3, 9, 0},
		{3, 12, 12, 0},
	}
	for _, c := range checks {
		h := heads[c.idx].Head
		if obs.execs[h] != c.execs || obs.iters[h] != c.its || obs.oneShots[h] != c.shots {
			t.Fatalf("loop %d: got %d/%d/%d want %d/%d/%d",
				c.idx, obs.execs[h], obs.iters[h], obs.oneShots[h], c.execs, c.its, c.shots)
		}
	}
}
