package loopdet

import (
	"fmt"
	"strings"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// recObs records loop events as strings for compact assertions.
type recObs struct {
	events []string
}

func (r *recObs) ExecStart(x *Exec) {
	r.events = append(r.events, fmt.Sprintf("start T=%d B=%d", x.T, x.B))
}

func (r *recObs) IterStart(x *Exec, index uint64) {
	r.events = append(r.events, fmt.Sprintf("iter T=%d n=%d", x.T, x.Iters))
}

func (r *recObs) ExecEnd(x *Exec, reason EndReason, index uint64) {
	r.events = append(r.events, fmt.Sprintf("end T=%d iters=%d %s", x.T, x.Iters, reason))
}

func (r *recObs) OneShot(t, b isa.Addr, index uint64) {
	r.events = append(r.events, fmt.Sprintf("oneshot T=%d B=%d", t, b))
}

// step is a hand-written dynamic instruction.
type step struct {
	pc    isa.Addr
	in    isa.Instr
	taken bool
}

// feed pushes steps through a detector.
func feed(d *Detector, steps []step) {
	var ev trace.Event
	for i, s := range steps {
		in := s.in
		ev = trace.Event{Index: uint64(i), PC: s.pc, Instr: &in, Taken: s.taken}
		if in.Kind == isa.KindJump || in.Kind == isa.KindCall || in.Kind == isa.KindRet {
			ev.Taken = true
		}
		if ev.Taken {
			ev.Target = in.Target
		}
		d.Consume(&ev)
	}
}

// br builds a backward/forward branch step.
func br(pc, target isa.Addr, taken bool) step {
	return step{pc: pc, in: isa.Branch(isa.CondNEZ, 2, target), taken: taken}
}

func jmp(pc, target isa.Addr) step { return step{pc: pc, in: isa.Jump(target)} }
func call(pc, target isa.Addr) step {
	return step{pc: pc, in: isa.Call(target)}
}
func ret(pc isa.Addr) step { return step{pc: pc, in: isa.Ret()} }
func op(pc isa.Addr) step  { return step{pc: pc, in: isa.Nop()} }

func wantEvents(t *testing.T, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("events mismatch\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestSimpleLoop checks detection of a 3-iteration loop: one execution,
// detected at iteration 2, ended by the not-taken closing branch.
func TestSimpleLoop(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	// T=1, closing branch at 3. Three iterations.
	feed(d, []step{
		op(0),
		op(1), op(2), br(3, 1, true), // iter 1 ends, detection
		op(1), op(2), br(3, 1, true), // iter 2 ends
		op(1), op(2), br(3, 1, false), // iter 3 ends, exec ends
		op(4),
	})
	wantEvents(t, obs.events, []string{
		"start T=1 B=3",
		"iter T=1 n=2",
		"iter T=1 n=3",
		"end T=1 iters=3 backedge",
	})
	if d.Depth() != 0 {
		t.Fatalf("CLS not empty: depth=%d", d.Depth())
	}
}

// TestOneShot checks that a single-iteration execution is reported
// without entering the CLS.
func TestOneShot(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		op(0), op(1), op(2), br(3, 1, false), op(4),
	})
	wantEvents(t, obs.events, []string{"oneshot T=1 B=3"})
	if s := d.Stats(); s.OneShots != 1 || s.Pushes != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestNestedLoops checks figure-2(a/b) behaviour: the inner execution is
// detected once per outer iteration, and outer iteration boundaries pop
// nothing extra because the inner execution already ended.
func TestNestedLoops(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	inner := func(trip int) []step {
		var s []step
		for i := 0; i < trip; i++ {
			s = append(s, op(2), op(3), br(4, 2, i < trip-1))
		}
		return s
	}
	var steps []step
	outerTrip := 2
	for o := 0; o < outerTrip; o++ {
		steps = append(steps, op(1))
		steps = append(steps, inner(3)...)
		steps = append(steps, op(5), br(6, 1, o < outerTrip-1))
	}
	feed(d, steps)
	wantEvents(t, obs.events, []string{
		"start T=2 B=4",
		"iter T=2 n=2",
		"iter T=2 n=3",
		"end T=2 iters=3 backedge",
		"start T=1 B=6",
		"iter T=1 n=2",
		"start T=2 B=4",
		"iter T=2 n=2",
		"iter T=2 n=3",
		"end T=2 iters=3 backedge",
		"end T=1 iters=2 backedge",
	})
}

// TestOuterIterationPopsInner checks the paper's first "not at the top"
// situation: an inner loop whose termination was never observed (control
// fell past its known closing branches) is popped with reason EndOuter
// when the enclosing loop iterates.
func TestOuterIterationPopsInner(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		// Outer loop T=1..B=8; inner T=3 with closing branches at 4 and 7.
		op(1), op(2), br(8, 1, true), // outer detected
		op(3), op(4), br(7, 3, true), // inner detected, B=7
		op(3), br(4, 3, true), // inner iterates via the low branch
		op(3), br(4, 3, false), // not taken below B=7: no action
		op(5), op(6), // control falls past 7 without executing it
		br(8, 1, true),         // outer iterates: stale inner popped (EndOuter)
		op(1), br(8, 1, false), // outer ends at B
	})
	wantEvents(t, obs.events, []string{
		"start T=1 B=8",
		"iter T=1 n=2",
		"start T=3 B=7",
		"iter T=3 n=2",
		"iter T=3 n=3",
		"end T=3 iters=3 outer",
		"iter T=1 n=3",
		"end T=1 iters=3 backedge",
	})
}

// TestExitBranch checks the break rule: a taken forward branch from
// inside the body to outside ends the execution.
func TestExitBranch(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		op(1), op(2), br(3, 1, true), // detection
		op(1), br(2, 9, true), // break: target 9 outside [1,3]
		op(9),
	})
	wantEvents(t, obs.events, []string{
		"start T=1 B=3",
		"iter T=1 n=2",
		"end T=1 iters=2 exit",
	})
}

// TestReturnInsideLoop checks that a return inside the body ends the
// execution, while a return in a called subroutine (outside the body)
// does not.
func TestReturnInsideLoop(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		// Loop T=2..B=6 inside a function; subroutine at 10..11.
		op(2), op(3), br(6, 2, true), // detection
		op(2), call(3, 10), op(10), ret(11), // call out and back: no effect
		op(4), br(6, 2, true), // iter 3
		op(2), ret(5), // early return from inside body
	})
	wantEvents(t, obs.events, []string{
		"start T=2 B=6",
		"iter T=2 n=2",
		"iter T=2 n=3",
		"end T=2 iters=3 return",
	})
}

// TestBGrowth checks that B grows when a higher closing branch appears,
// and that a not-taken branch below B does not end the execution.
func TestBGrowth(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		op(1), op(2), br(3, 1, true), // detection via the low branch, B=3
		op(1), op(2), op(4), br(5, 1, true), // higher closing branch taken: B grows to 5
		op(1), br(3, 1, false), // below B: no action
		op(4), br(5, 1, false), // not taken at B=5: end
	})
	wantEvents(t, obs.events, []string{
		"start T=1 B=3",
		"iter T=1 n=2",
		"iter T=1 n=3", // taken at 5
		"end T=1 iters=3 backedge",
	})
}

// TestSelfLoop checks a one-instruction loop (branch targeting itself).
func TestSelfLoop(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		br(2, 2, true), br(2, 2, true), br(2, 2, false),
	})
	wantEvents(t, obs.events, []string{
		"start T=2 B=2",
		"iter T=2 n=2",
		"iter T=2 n=3",
		"end T=2 iters=3 backedge",
	})
}

// TestOverlappedLoops reproduces figure 2(c/d): T1 < T2 and B1 < B2. The
// backward branch to T1 from inside T2's body exits T2 (target outside
// its body).
func TestOverlappedLoops(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	// T1=1, B1=4; T2=3, B2=6.
	feed(d, []step{
		op(1), op(2), op(3), br(4, 1, true), // loop1 detected (B1=4)
		op(1), op(2), op(3), br(4, 1, false), // loop1's last iteration falls through
		op(5), br(6, 3, true), // loop2 detected: T2=3, B2=6
		op(3), br(4, 1, true), // back to T1: exits loop2 (1 outside [3,6]), new exec of T1
		op(1), op(2), op(3), br(4, 1, false), // T1 ends
		op(5), br(6, 3, false), // oneshot for T2? no: T2 not in CLS, not taken -> oneshot
	})
	wantEvents(t, obs.events, []string{
		"start T=1 B=4",
		"iter T=1 n=2",
		"end T=1 iters=2 backedge",
		"start T=3 B=6",
		"iter T=3 n=2",
		"end T=3 iters=2 exit",
		"start T=1 B=4",
		"iter T=1 n=2",
		"end T=1 iters=2 backedge",
		"oneshot T=3 B=6",
	})
}

// TestEviction checks that CLS overflow drops the deepest entry.
func TestEviction(t *testing.T) {
	d := New(Config{Capacity: 2})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		// Three nested loops: T=10 (B=90), T=20 (B=80), T=30 (B=70).
		br(90, 10, true),
		br(80, 20, true),
		br(70, 30, true), // overflow: T=10 evicted
	})
	wantEvents(t, obs.events, []string{
		"start T=10 B=90",
		"iter T=10 n=2",
		"start T=20 B=80",
		"iter T=20 n=2",
		"end T=10 iters=2 evicted",
		"start T=30 B=70",
		"iter T=30 n=2",
	})
	if s := d.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestFlush checks that Flush empties the CLS innermost-first.
func TestFlush(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		br(90, 10, true),
		br(80, 20, true),
	})
	d.Flush()
	wantEvents(t, obs.events, []string{
		"start T=10 B=90",
		"iter T=10 n=2",
		"start T=20 B=80",
		"iter T=20 n=2",
		"end T=20 iters=2 flush",
		"end T=10 iters=2 flush",
	})
	if d.Depth() != 0 {
		t.Fatalf("depth after flush = %d", d.Depth())
	}
}

// TestRecursionMerging reproduces the paper's recursive-subroutine
// example (§2.2): re-entering loop T1 through recursion is treated as a
// new iteration of the same execution, popping the inner T2.
func TestRecursionMerging(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	// T1=10..B1=15 and T2=20..B2=25 in the two arms of a recursive
	// subroutine.
	feed(d, []step{
		op(10), br(15, 10, true), // T1 detected
		op(10), call(12, 5), // recursive call
		op(20), br(25, 20, true), // T2 detected (nested under T1)
		op(20), call(22, 5), // recurse again
		op(10), br(15, 10, true), // T1 found: new iteration; T2 popped
	})
	wantEvents(t, obs.events, []string{
		"start T=10 B=15",
		"iter T=10 n=2",
		"start T=20 B=25",
		"iter T=20 n=2",
		"end T=20 iters=2 outer",
		"iter T=10 n=3",
	})
}

// TestMultiExitJumpPopsSeveral checks that one jump can terminate several
// nested executions at once (break out of a nest).
func TestMultiExitJumpPopsSeveral(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		br(90, 10, true), // outer [10,90]
		br(50, 20, true), // inner [20,50]
		jmp(30, 99),      // jump beyond both bodies
	})
	wantEvents(t, obs.events, []string{
		"start T=10 B=90",
		"iter T=10 n=2",
		"start T=20 B=50",
		"iter T=20 n=2",
		"end T=20 iters=2 exit",
		"end T=10 iters=2 exit",
	})
}

// TestCallNeverExits checks that a call to a target outside every body
// pops nothing.
func TestCallNeverExits(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &recObs{}
	d.AddObserver(obs)
	feed(d, []step{
		br(90, 10, true),
		call(30, 200),
	})
	if d.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (call must not pop)", d.Depth())
	}
	wantEvents(t, obs.events, []string{
		"start T=10 B=90",
		"iter T=10 n=2",
	})
}

// TestStreamObserverOrder checks that raw instruction events precede the
// loop events they trigger.
type orderObs struct {
	recObs
}

func (o *orderObs) Instr(ev *trace.Event) {
	o.events = append(o.events, fmt.Sprintf("instr %d", ev.PC))
}

func TestStreamObserverOrder(t *testing.T) {
	d := New(Config{Capacity: 16})
	obs := &orderObs{}
	d.AddObserver(obs)
	feed(d, []step{op(1), br(2, 1, true)})
	wantEvents(t, obs.events, []string{
		"instr 1",
		"instr 2",
		"start T=1 B=2",
		"iter T=1 n=2",
	})
}

// TestPeriodicFlush checks the §2.2 safety valve: the CLS is emptied
// every FlushInterval instructions and active loops are re-detected.
func TestPeriodicFlush(t *testing.T) {
	d := New(Config{Capacity: 16, FlushInterval: 8})
	obs := &recObs{}
	d.AddObserver(obs)
	// A loop iterating well past the flush interval: 3 instructions per
	// iteration.
	var steps []step
	for i := 0; i < 6; i++ {
		steps = append(steps, op(1), op(2), br(3, 1, true))
	}
	feed(d, steps)
	flushes := 0
	redetections := 0
	for _, e := range obs.events {
		if strings.Contains(e, "flush") {
			flushes++
		}
		if strings.HasPrefix(e, "start") {
			redetections++
		}
	}
	if flushes < 2 {
		t.Fatalf("flushes = %d, want >= 2\n%v", flushes, obs.events)
	}
	if redetections != flushes+1 {
		t.Fatalf("re-detections = %d for %d flushes", redetections, flushes)
	}
}
