package loopdet

import (
	"fmt"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// logObs records every observer callback as a string, to compare
// delivery orders between the scalar and batch paths exactly.
type logObs struct {
	log []string
	// batch switches raw-stream delivery to InstrBatch.
	batch bool
}

func (o *logObs) ExecStart(x *Exec) { o.log = append(o.log, fmt.Sprintf("start %d T%d", x.ID, x.T)) }
func (o *logObs) IterStart(x *Exec, i uint64) {
	o.log = append(o.log, fmt.Sprintf("iter %d.%d @%d", x.ID, x.Iters, i))
}
func (o *logObs) ExecEnd(x *Exec, r EndReason, i uint64) {
	o.log = append(o.log, fmt.Sprintf("end %d %s @%d iters=%d", x.ID, r, i, x.Iters))
}
func (o *logObs) OneShot(t, b isa.Addr, i uint64) {
	o.log = append(o.log, fmt.Sprintf("oneshot %d-%d @%d", t, b, i))
}
func (o *logObs) Instr(ev *trace.Event) {
	o.log = append(o.log, fmt.Sprintf("instr @%d pc%d", ev.Index, ev.PC))
}
func (o *logObs) InstrBatch(evs []trace.Event) {
	if !o.batch {
		panic("InstrBatch on scalar observer")
	}
	for i := range evs {
		o.Instr(&evs[i])
	}
}

// scalarObs forwards to a logObs without embedding it, so InstrBatch is
// not promoted into its method set and the detector must fall back to
// per-event Instr delivery.
type scalarObs struct{ o *logObs }

func (s scalarObs) ExecStart(x *Exec)                      { s.o.ExecStart(x) }
func (s scalarObs) IterStart(x *Exec, i uint64)            { s.o.IterStart(x, i) }
func (s scalarObs) ExecEnd(x *Exec, r EndReason, i uint64) { s.o.ExecEnd(x, r, i) }
func (s scalarObs) OneShot(t, b isa.Addr, i uint64)        { s.o.OneShot(t, b, i) }
func (s scalarObs) Instr(ev *trace.Event)                  { s.o.Instr(ev) }

// randomStream builds an arbitrary control-flow event stream with stable
// Instr pointers (events in a batch all alias the same backing program).
func randomStream(seed uint64, n int) []trace.Event {
	r := seed | 1
	next := func(m uint64) uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r % m
	}
	// A small pool of instructions the stream draws from.
	pool := make([]isa.Instr, 0, 48)
	for i := 0; i < 16; i++ {
		pool = append(pool, isa.Branch(isa.CondNEZ, 1, isa.Addr(next(64))))
		pool = append(pool, isa.Jump(isa.Addr(next(64))))
		pool = append(pool, isa.Nop())
	}
	pool = append(pool, isa.Ret())
	evs := make([]trace.Event, n)
	for i := range evs {
		in := &pool[next(uint64(len(pool)))]
		ev := trace.Event{Index: uint64(i), PC: isa.Addr(next(64)), Instr: in}
		if in.Kind.IsControl() && (in.Kind != isa.KindBranch || next(2) == 0) {
			ev.Taken = true
			ev.Target = in.Target
		}
		evs[i] = ev
	}
	return evs
}

// TestConsumeBatchMatchesConsume: for arbitrary streams, any batch
// chunking must produce exactly the callback sequence of per-event
// Consume — for scalar stream observers, batch stream observers, and
// with the periodic-flush safety valve armed.
func TestConsumeBatchMatchesConsume(t *testing.T) {
	for _, flush := range []uint64{0, 97} {
		for _, chunk := range []int{1, 2, 3, 7, 64, 1000} {
			for seed := uint64(1); seed <= 5; seed++ {
				evs := randomStream(seed*2654435761, 1000)

				ref := New(Config{Capacity: 8, FlushInterval: flush})
				refObs := &logObs{}
				ref.AddObserver(scalarObs{refObs})
				for i := range evs {
					ev := evs[i] // copy: Consume pointees may be reused
					ref.Consume(&ev)
				}
				ref.Flush()

				for _, batchObs := range []bool{false, true} {
					got := New(Config{Capacity: 8, FlushInterval: flush})
					gotObs := &logObs{batch: batchObs}
					if batchObs {
						got.AddObserver(gotObs)
					} else {
						got.AddObserver(scalarObs{gotObs})
					}
					for i := 0; i < len(evs); i += chunk {
						end := i + chunk
						if end > len(evs) {
							end = len(evs)
						}
						got.ConsumeBatch(evs[i:end])
					}
					got.Flush()

					if len(refObs.log) != len(gotObs.log) {
						t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: %d callbacks, want %d",
							flush, chunk, seed, batchObs, len(gotObs.log), len(refObs.log))
					}
					for i := range refObs.log {
						if refObs.log[i] != gotObs.log[i] {
							t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: callback %d = %q, want %q",
								flush, chunk, seed, batchObs, i, gotObs.log[i], refObs.log[i])
						}
					}
					if ref.Stats() != got.Stats() {
						t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: stats %+v, want %+v",
							flush, chunk, seed, batchObs, got.Stats(), ref.Stats())
					}
				}
			}
		}
	}
}
