package loopdet

import (
	"fmt"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// logObs records every observer callback as a string, to compare
// delivery orders between the scalar and batch paths exactly.
type logObs struct {
	log []string
	// batch switches raw-stream delivery to InstrBatch.
	batch bool
}

func (o *logObs) ExecStart(x *Exec) { o.log = append(o.log, fmt.Sprintf("start %d T%d", x.ID, x.T)) }
func (o *logObs) IterStart(x *Exec, i uint64) {
	o.log = append(o.log, fmt.Sprintf("iter %d.%d @%d", x.ID, x.Iters, i))
}
func (o *logObs) ExecEnd(x *Exec, r EndReason, i uint64) {
	o.log = append(o.log, fmt.Sprintf("end %d %s @%d iters=%d", x.ID, r, i, x.Iters))
}
func (o *logObs) OneShot(t, b isa.Addr, i uint64) {
	o.log = append(o.log, fmt.Sprintf("oneshot %d-%d @%d", t, b, i))
}
func (o *logObs) Instr(ev *trace.Event) {
	o.log = append(o.log, fmt.Sprintf("instr @%d pc%d", ev.Index, ev.PC))
}
func (o *logObs) InstrBatch(evs []trace.Event) {
	if !o.batch {
		panic("InstrBatch on scalar observer")
	}
	for i := range evs {
		o.Instr(&evs[i])
	}
}

// scalarObs forwards to a logObs without embedding it, so InstrBatch is
// not promoted into its method set and the detector must fall back to
// per-event Instr delivery.
type scalarObs struct{ o *logObs }

func (s scalarObs) ExecStart(x *Exec)                      { s.o.ExecStart(x) }
func (s scalarObs) IterStart(x *Exec, i uint64)            { s.o.IterStart(x, i) }
func (s scalarObs) ExecEnd(x *Exec, r EndReason, i uint64) { s.o.ExecEnd(x, r, i) }
func (s scalarObs) OneShot(t, b isa.Addr, i uint64)        { s.o.OneShot(t, b, i) }
func (s scalarObs) Instr(ev *trace.Event)                  { s.o.Instr(ev) }

// randomStream builds an arbitrary control-flow event stream with stable
// Instr pointers (events in a batch all alias the same backing program).
func randomStream(seed uint64, n int) []trace.Event {
	r := seed | 1
	next := func(m uint64) uint64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return r % m
	}
	// A small pool of instructions the stream draws from.
	pool := make([]isa.Instr, 0, 48)
	for i := 0; i < 16; i++ {
		pool = append(pool, isa.Branch(isa.CondNEZ, 1, isa.Addr(next(64))))
		pool = append(pool, isa.Jump(isa.Addr(next(64))))
		pool = append(pool, isa.Nop())
	}
	pool = append(pool, isa.Ret())
	evs := make([]trace.Event, n)
	for i := range evs {
		in := &pool[next(uint64(len(pool)))]
		ev := trace.Event{Index: uint64(i), PC: isa.Addr(next(64)), Instr: in}
		if in.Kind.IsControl() && (in.Kind != isa.KindBranch || next(2) == 0) {
			ev.Taken = true
			ev.Target = in.Target
		}
		evs[i] = ev
	}
	return evs
}

// TestConsumeBatchMatchesConsume: for arbitrary streams, any batch
// chunking must produce exactly the callback sequence of per-event
// Consume — for scalar stream observers, batch stream observers, and
// with the periodic-flush safety valve armed.
func TestConsumeBatchMatchesConsume(t *testing.T) {
	for _, flush := range []uint64{0, 97} {
		for _, chunk := range []int{1, 2, 3, 7, 64, 1000} {
			for seed := uint64(1); seed <= 5; seed++ {
				evs := randomStream(seed*2654435761, 1000)

				ref := New(Config{Capacity: 8, FlushInterval: flush})
				refObs := &logObs{}
				ref.AddObserver(scalarObs{refObs})
				for i := range evs {
					ev := evs[i] // copy: Consume pointees may be reused
					ref.Consume(&ev)
				}
				ref.Flush()

				for _, batchObs := range []bool{false, true} {
					got := New(Config{Capacity: 8, FlushInterval: flush})
					gotObs := &logObs{batch: batchObs}
					if batchObs {
						got.AddObserver(gotObs)
					} else {
						got.AddObserver(scalarObs{gotObs})
					}
					for i := 0; i < len(evs); i += chunk {
						end := i + chunk
						if end > len(evs) {
							end = len(evs)
						}
						got.ConsumeBatch(evs[i:end])
					}
					got.Flush()

					if len(refObs.log) != len(gotObs.log) {
						t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: %d callbacks, want %d",
							flush, chunk, seed, batchObs, len(gotObs.log), len(refObs.log))
					}
					for i := range refObs.log {
						if refObs.log[i] != gotObs.log[i] {
							t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: callback %d = %q, want %q",
								flush, chunk, seed, batchObs, i, gotObs.log[i], refObs.log[i])
						}
					}
					if ref.Stats() != got.Stats() {
						t.Fatalf("flush=%d chunk=%d seed=%d batch=%v: stats %+v, want %+v",
							flush, chunk, seed, batchObs, got.Stats(), ref.Stats())
					}
				}
			}
		}
	}
}

// segmentIndices computes the ctl side channel a producer would deliver
// for a batch: the ascending indices of its run-boundary events.
func segmentIndices(evs []trace.Event) []int32 {
	var ctl []int32
	for i := range evs {
		switch evs[i].Instr.Kind {
		case isa.KindBranch, isa.KindJump, isa.KindRet:
			ctl = append(ctl, int32(i))
		}
	}
	return ctl
}

// ctlFacet projects a full stream onto the control plane.
func ctlFacet(evs []trace.Event) []trace.CtlEvent {
	out := make([]trace.CtlEvent, len(evs))
	for i, ev := range evs {
		out[i] = trace.CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr,
			Taken: ev.Taken, Target: ev.Target}
	}
	return out
}

// TestConsumeCtlBatchMatchesBatch pins the control-plane contract on the
// detector: an observer-free detector declares itself control-only, and
// fed compact CtlEvents with the producer's run-boundary indices it must
// end with exactly the stats of the full-Event batch path, for arbitrary
// streams and chunkings. A detector with a stream observer (or periodic
// flush armed) must demand the data plane instead.
func TestConsumeCtlBatchMatchesBatch(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		for seed := uint64(1); seed <= 5; seed++ {
			evs := randomStream(seed*2654435761, 1000)

			ref := New(Config{Capacity: 8})
			ctl := New(Config{Capacity: 8})
			if got := trace.PlanesOf(ctl); got != trace.PlaneCtl {
				t.Fatalf("observer-free detector planes = %v", got)
			}

			for i := 0; i < len(evs); i += chunk {
				end := i + chunk
				if end > len(evs) {
					end = len(evs)
				}
				ref.ConsumeBatch(evs[i:end])
				ctl.ConsumeCtlBatch(ctlFacet(evs[i:end]), segmentIndices(evs[i:end]))
			}
			ref.Flush()
			ctl.Flush()

			if ref.Stats() != ctl.Stats() {
				t.Fatalf("chunk=%d seed=%d: stats %+v, want %+v",
					chunk, seed, ctl.Stats(), ref.Stats())
			}
			if ref.Depth() != ctl.Depth() {
				t.Fatalf("chunk=%d seed=%d: CLS depth %d, want %d",
					chunk, seed, ctl.Depth(), ref.Depth())
			}
		}
	}

	withObs := New(Config{Capacity: 8})
	withObs.AddObserver(&logObs{batch: true})
	if got := trace.PlanesOf(withObs); got != trace.PlaneCtl|trace.PlaneData {
		t.Fatalf("observed detector planes = %v", got)
	}
	withFlush := New(Config{Capacity: 8, FlushInterval: 64})
	if got := trace.PlanesOf(withFlush); got != trace.PlaneCtl|trace.PlaneData {
		t.Fatalf("periodic-flush detector planes = %v", got)
	}
}

// TestConsumeBatchSegmentedMatchesBatch pins the SegmentedBatchConsumer
// contract on the detector: fed producer-computed control indices, it
// must emit exactly the callback sequence and stats of the plain batch
// path, for arbitrary streams and chunkings.
func TestConsumeBatchSegmentedMatchesBatch(t *testing.T) {
	for _, chunk := range []int{1, 3, 64, 1000} {
		for seed := uint64(1); seed <= 5; seed++ {
			evs := randomStream(seed*2654435761, 1000)

			ref := New(Config{Capacity: 8})
			refObs := &logObs{batch: true}
			ref.AddObserver(refObs)
			seg := New(Config{Capacity: 8})
			segObs := &logObs{batch: true}
			seg.AddObserver(segObs)

			for i := 0; i < len(evs); i += chunk {
				end := i + chunk
				if end > len(evs) {
					end = len(evs)
				}
				ref.ConsumeBatch(evs[i:end])
				seg.ConsumeBatchSegmented(evs[i:end], segmentIndices(evs[i:end]))
			}
			ref.Flush()
			seg.Flush()

			if len(refObs.log) != len(segObs.log) {
				t.Fatalf("chunk=%d seed=%d: %d callbacks, want %d",
					chunk, seed, len(segObs.log), len(refObs.log))
			}
			for i := range refObs.log {
				if refObs.log[i] != segObs.log[i] {
					t.Fatalf("chunk=%d seed=%d: callback %d = %q, want %q",
						chunk, seed, i, segObs.log[i], refObs.log[i])
				}
			}
			if ref.Stats() != seg.Stats() {
				t.Fatalf("chunk=%d seed=%d: stats %+v, want %+v",
					chunk, seed, seg.Stats(), ref.Stats())
			}
		}
	}
}
