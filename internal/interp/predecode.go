package interp

// The predecode stage. New translates the program once into a flat
// array of micro-ops: Kind×Op×Cond collapsed into one dense opcode
// byte, operands widened to direct indices, shift counts pre-masked,
// and the static instruction pointer(s) an event needs resolved up
// front. Run then drives a single dense switch over that opcode instead
// of the two-level Kind/Op switch of the reference interpreter.
//
// On top of the per-instruction translation, predecode performs
// peephole superinstruction fusion for the dominant idioms of the
// builder's programs:
//
//	addi + br.cc            (compare-branch back edge)
//	st   + br.cc            (loop-latch spill + back edge)
//	ld   + add/addi         (counter reload, reduction)
//	ld   + st               (copy through a register)
//	movi + st               (constant store)
//	st   + st               (adjacent spills)
//	add/addi + add/addi     (straight-line work chains)
//
// A fused micro-op executes both constituents in one dispatch but still
// retires them as two individual in-order trace.Events with the same
// Index/PC/Instr/facet fields the reference interpreter emits, so every
// downstream consumer — detector, statistics, trace recorder, golden
// renders — sees a byte-identical stream.
//
// Fusion safety: the second constituent of a pair must not be reachable
// except by falling out of the first. Predecode therefore marks every
// control-flow "leader" — the entry point, every branch/jump/call
// target, and every return address (the instruction after a call) — and
// never fuses across one. Pairs are chosen greedily left to right and
// never overlap, so the instruction after a fused pair keeps its plain
// micro-op; the budget- and batch-tail paths rely on that to single-step
// through a pair when fewer than two instructions of budget (or two
// batch slots) remain. Sequence reads (KindSeq) are stateful and calls
// and returns touch the call stack, so none of them ever fuse.

import (
	"fmt"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// Dense micro-op opcodes. The ALU block mirrors isa.ALUOp order and the
// branch block mirrors isa.Cond order, so predecode translates both
// with one addition. Fused opcodes sit at the top: op >= opFuseFirst
// identifies a two-wide micro-op.
const (
	opNop uint8 = iota
	opHalt
	opAdd
	opAddI
	opSub
	opMul
	opAnd
	opOr
	opXor
	opShl
	opShr
	opMovI
	opMov
	opSlt
	opMod
	opLoad
	opStore
	opSeq
	opJump
	opCall
	opRet
	opBrEQZ // opBrEQZ+cond encodes br.cond
	opBrNEZ
	opBrLTZ
	opBrGEZ
	opBrGTZ
	opBrLEZ
	opBrNever // branch with an unknown condition: never taken, still a run boundary

	opFuseAddIBr   // addi rd, rs1, imm      ; br.cond(aux) rs2, @target
	opFuseStBr     // st rs2, imm(rs1)       ; br.cond(aux) aux2, @target
	opFuseLoadAddI // ld rd, imm(rs1)        ; addi aux, aux2, imm2
	opFuseLoadAdd  // ld rd, imm(rs1)        ; add aux, aux2, rs2
	opFuseMovISt   // movi rd, imm           ; st rs2, imm2(rs1)
	opFuseAddAdd   // add rd, rs1, rs2       ; add aux, aux2, aux3
	opFuseAddAddI  // add rd, rs1, rs2       ; addi aux, aux2, imm2
	opFuseAddIAdd  // addi rd, rs1, imm      ; add aux, aux2, aux3
	opFuseAddIAddI // addi rd, rs1, imm      ; addi aux, aux2, imm2
	opFuseLoadSt   // ld rd, imm(rs1)        ; st aux3, imm2(aux2)
	opFuseStSt     // st rs2, imm(rs1)       ; st aux3, imm2(aux2)

	opFuseFirst = opFuseAddIBr
)

// uop is one predecoded micro-op. For plain ops the fields mirror the
// isa.Instr they came from (with shift counts pre-masked); for fused
// ops rd/rs1/rs2/imm describe the first constituent and aux/aux2/aux3/
// imm2/target the second, per the opcode comments above (rs2 doubles as
// a second-constituent field when the first doesn't use it). in and in2
// are the static instruction pointers retired events carry (in2 nil for
// plain ops).
type uop struct {
	op     uint8
	rd     uint8
	rs1    uint8
	rs2    uint8
	aux    uint8
	aux2   uint8
	aux3   uint8
	_      byte
	target uint32
	imm    int64
	imm2   int64
	in     *isa.Instr
	in2    *isa.Instr
}

// predecode translates p into the micro-op array, applying fusion when
// fuse is set. It never rejects a program: ill-formed targets and
// runaway PCs remain runtime machine checks, exactly as in the
// reference interpreter.
func predecode(p *program.Program, fuse bool) []uop {
	code := p.Code
	n := len(code)
	ops := make([]uop, n)
	for i := range code {
		predecodeOne(&ops[i], &code[i])
	}
	if !fuse || n < 2 {
		return ops
	}
	// Leaders: addresses control can enter other than by fallthrough
	// from the previous instruction. Out-of-range targets are skipped —
	// they trap at runtime (ErrPC) before any fusion question arises.
	leader := make([]bool, n)
	if int(p.Entry) < n {
		leader[p.Entry] = true
	}
	for i := range code {
		in := &code[i]
		switch in.Kind {
		case isa.KindBranch, isa.KindJump, isa.KindCall:
			if int(in.Target) < n {
				leader[in.Target] = true
			}
		}
		if in.Kind == isa.KindCall && i+1 < n {
			leader[i+1] = true // return address
		}
	}
	for i := 0; i+1 < n; i++ {
		if leader[i+1] {
			continue
		}
		if fusePair(&ops[i], &code[i], &code[i+1]) {
			i++ // pairs never overlap; ops[i+1] keeps its plain micro-op
		}
	}
	return ops
}

// predecodeOne fills u with the plain micro-op for in.
func predecodeOne(u *uop, in *isa.Instr) {
	*u = uop{rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2),
		imm: in.Imm, target: uint32(in.Target), in: in}
	switch in.Kind {
	case isa.KindALU:
		if in.Op > isa.OpMod {
			// Unknown ALU op: the reference alu() computes 0; a movi of
			// zero reproduces that.
			u.op, u.imm = opMovI, 0
			return
		}
		u.op = opAdd + uint8(in.Op)
		if in.Op == isa.OpShl || in.Op == isa.OpShr {
			u.imm = in.Imm & 63 // shift count resolved at predecode
		}
	case isa.KindLoad:
		u.op = opLoad
	case isa.KindStore:
		u.op = opStore
	case isa.KindBranch:
		if in.Cond > isa.CondLEZ {
			// Cond.Holds is false for unknown conditions, but the event
			// still carries a KindBranch instruction, so downstream
			// segmentation must treat it as a control event.
			u.op = opBrNever
			return
		}
		u.op = opBrEQZ + uint8(in.Cond)
	case isa.KindJump:
		u.op = opJump
	case isa.KindCall:
		u.op = opCall
	case isa.KindRet:
		u.op = opRet
	case isa.KindSeq:
		u.op = opSeq
	case isa.KindHalt:
		u.op = opHalt
	default: // KindNop and unknown kinds retire as plain events
		u.op = opNop
	}
}

// fusePair rewrites u into a fused micro-op when (a, b) matches a
// superinstruction pattern; it reports whether it fused.
func fusePair(u *uop, a, b *isa.Instr) bool {
	aAdd := a.Kind == isa.KindALU && a.Op == isa.OpAdd
	aAddI := a.Kind == isa.KindALU && a.Op == isa.OpAddI
	bAdd := b.Kind == isa.KindALU && b.Op == isa.OpAdd
	bAddI := b.Kind == isa.KindALU && b.Op == isa.OpAddI
	bBr := b.Kind == isa.KindBranch && b.Cond <= isa.CondLEZ
	switch {
	case aAddI && bBr:
		*u = uop{op: opFuseAddIBr, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux: uint8(b.Cond), rs2: uint8(b.Rs1), target: uint32(b.Target),
			in: a, in2: b}
	case a.Kind == isa.KindStore && bBr:
		*u = uop{op: opFuseStBr, rs1: uint8(a.Rs1), rs2: uint8(a.Rs2), imm: a.Imm,
			aux: uint8(b.Cond), aux2: uint8(b.Rs1), target: uint32(b.Target),
			in: a, in2: b}
	case a.Kind == isa.KindLoad && bAddI:
		*u = uop{op: opFuseLoadAddI, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), imm2: b.Imm,
			in: a, in2: b}
	case a.Kind == isa.KindLoad && bAdd:
		*u = uop{op: opFuseLoadAdd, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), rs2: uint8(b.Rs2),
			in: a, in2: b}
	case a.Kind == isa.KindALU && a.Op == isa.OpMovI && b.Kind == isa.KindStore:
		*u = uop{op: opFuseMovISt, rd: uint8(a.Rd), imm: a.Imm,
			rs1: uint8(b.Rs1), rs2: uint8(b.Rs2), imm2: b.Imm,
			in: a, in2: b}
	case aAdd && bAdd:
		*u = uop{op: opFuseAddAdd, rd: uint8(a.Rd), rs1: uint8(a.Rs1), rs2: uint8(a.Rs2),
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), aux3: uint8(b.Rs2),
			in: a, in2: b}
	case aAdd && bAddI:
		*u = uop{op: opFuseAddAddI, rd: uint8(a.Rd), rs1: uint8(a.Rs1), rs2: uint8(a.Rs2),
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), imm2: b.Imm,
			in: a, in2: b}
	case aAddI && bAdd:
		*u = uop{op: opFuseAddIAdd, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), aux3: uint8(b.Rs2),
			in: a, in2: b}
	case aAddI && bAddI:
		*u = uop{op: opFuseAddIAddI, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux: uint8(b.Rd), aux2: uint8(b.Rs1), imm2: b.Imm,
			in: a, in2: b}
	case a.Kind == isa.KindLoad && b.Kind == isa.KindStore:
		*u = uop{op: opFuseLoadSt, rd: uint8(a.Rd), rs1: uint8(a.Rs1), imm: a.Imm,
			aux2: uint8(b.Rs1), aux3: uint8(b.Rs2), imm2: b.Imm,
			in: a, in2: b}
	case a.Kind == isa.KindStore && b.Kind == isa.KindStore:
		*u = uop{op: opFuseStSt, rs1: uint8(a.Rs1), rs2: uint8(a.Rs2), imm: a.Imm,
			aux2: uint8(b.Rs1), aux3: uint8(b.Rs2), imm2: b.Imm,
			in: a, in2: b}
	default:
		return false
	}
	return true
}

// condHolds mirrors isa.Cond.Holds over the predecoded condition byte.
func condHolds(cond uint8, v int64) bool {
	switch cond {
	case uint8(isa.CondEQZ):
		return v == 0
	case uint8(isa.CondNEZ):
		return v != 0
	case uint8(isa.CondLTZ):
		return v < 0
	case uint8(isa.CondGEZ):
		return v >= 0
	case uint8(isa.CondGTZ):
		return v > 0
	case uint8(isa.CondLEZ):
		return v <= 0
	default:
		return false
	}
}

// deliver flushes a batch, via the segmented interface when the sink
// supports it. It is a plain function, not a closure, so the hot loop's
// locals stay register-allocated.
func deliver(sink trace.BatchConsumer, seg trace.SegmentedBatchConsumer, evs []trace.Event, ctl []int32) {
	if len(evs) == 0 {
		return
	}
	if seg != nil {
		seg.ConsumeBatchSegmented(evs, ctl)
		return
	}
	if sink != nil {
		sink.ConsumeBatch(evs)
	}
}

// stepFusedFirst executes only the first constituent of fused micro-op
// u, filling ev with its retirement event. Run takes this (cold) path
// when fewer than two instructions of budget or two batch slots remain;
// the plain micro-op retained at pc+1 then executes the second
// constituent on the next dispatch.
func (c *CPU) stepFusedFirst(u *uop, ev *trace.Event, retired uint64, pc uint64) {
	*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
	regs := &c.regs
	switch u.op {
	case opFuseAddIBr, opFuseAddIAdd, opFuseAddIAddI:
		v := regs[u.rs1] + u.imm
		regs[u.rd] = v
		ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
	case opFuseAddAdd, opFuseAddAddI:
		v := regs[u.rs1] + regs[u.rs2]
		regs[u.rd] = v
		ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
	case opFuseLoadAddI, opFuseLoadAdd, opFuseLoadSt:
		addr := uint64(regs[u.rs1] + u.imm)
		v := c.mem.Load(addr)
		regs[u.rd] = v
		ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		ev.MemAddr, ev.MemVal = addr, v
	case opFuseStBr, opFuseStSt:
		addr := uint64(regs[u.rs1] + u.imm)
		v := regs[u.rs2]
		c.mem.Store(addr, v)
		ev.MemAddr, ev.MemVal = addr, v
	default: // opFuseMovISt
		regs[u.rd] = u.imm
		ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), u.imm
	}
}

// runPre is the predecoded execution loop: one dense switch per
// dispatch, events written once in order into the batch slot, a single
// code path regardless of sink (buf is the CPU's scratch batch when
// sink is nil), and two-slot retirement for fused micro-ops. A fused op
// only executes whole when at least two instructions of budget and two
// batch slots remain; otherwise its first constituent is stepped alone
// and the (always plain) micro-op at pc+1 picks up the second — so
// batches flush at exactly len(buf) events, byte-identical to the
// reference loop's delivery boundaries.
func (c *CPU) runPre(budget uint64, sink trace.BatchConsumer, seg trace.SegmentedBatchConsumer, buf []trace.Event, ctl []int32) (uint64, error) {
	ops := c.ops
	pc := uint64(c.pc)
	retired := c.retired
	start := retired
	regs := &c.regs
	limit := retired + budget
	if budget == 0 || limit < retired {
		limit = ^uint64(0)
	}
	kmax := len(buf)
	k := 0
	// cn counts control-transfer indices recorded in ctl for the current
	// batch; the loop maintains cn <= k, so ctl (len >= kmax) never
	// overflows.
	cn := 0
	halted := c.halted
	for !halted && retired < limit {
		if pc >= uint64(len(ops)) {
			deliver(sink, seg, buf[:k], ctl[:cn])
			c.pc, c.retired = isa.Addr(pc), retired
			return retired - start, fmt.Errorf("%w: pc=%d len=%d", ErrPC, isa.Addr(pc), len(ops))
		}
		u := &ops[pc]
		next := pc + 1
		switch u.op {
		case opFuseAddIAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			v := regs[u.rs1] + u.imm
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			v2 := regs[u.aux2] + u.imm2
			regs[u.aux] = v2
			ev2 := &buf[k+1]
			*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			pc += 2
			goto tail2
		case opFuseAddIAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			v := regs[u.rs1] + u.imm
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			v2 := regs[u.aux2] + regs[u.aux3]
			regs[u.aux] = v2
			ev2 := &buf[k+1]
			*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			pc += 2
			goto tail2
		case opFuseAddAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			v := regs[u.rs1] + regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			v2 := regs[u.aux2] + u.imm2
			regs[u.aux] = v2
			ev2 := &buf[k+1]
			*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			pc += 2
			goto tail2
		case opFuseAddAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			v := regs[u.rs1] + regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			v2 := regs[u.aux2] + regs[u.aux3]
			regs[u.aux] = v2
			ev2 := &buf[k+1]
			*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			pc += 2
			goto tail2
		case opFuseAddIBr:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			v := regs[u.rs1] + u.imm
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			if condHolds(u.aux, regs[u.rs2]) {
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.Taken, ev2.Target = true, isa.Addr(u.target)
				pc = uint64(u.target)
			} else {
				buf[k+1] = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2} // header only
				pc += 2
			}
			ctl[cn] = int32(k + 1)
			cn++
			goto tail2
		case opFuseStBr:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				addr := uint64(regs[u.rs1] + u.imm)
				v := regs[u.rs2]
				c.mem.Store(addr, v)
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.MemAddr, ev.MemVal = addr, v
			}
			if condHolds(u.aux, regs[u.aux2]) {
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.Taken, ev2.Target = true, isa.Addr(u.target)
				pc = uint64(u.target)
			} else {
				buf[k+1] = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2} // header only
				pc += 2
			}
			ctl[cn] = int32(k + 1)
			cn++
			goto tail2
		case opFuseLoadAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				addr := uint64(regs[u.rs1] + u.imm)
				v := c.mem.Load(addr)
				regs[u.rd] = v
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
				ev.MemAddr, ev.MemVal = addr, v
				v2 := regs[u.aux2] + u.imm2
				regs[u.aux] = v2
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			}
			pc += 2
			goto tail2
		case opFuseLoadAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				addr := uint64(regs[u.rs1] + u.imm)
				v := c.mem.Load(addr)
				regs[u.rd] = v
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
				ev.MemAddr, ev.MemVal = addr, v
				v2 := regs[u.aux2] + regs[u.rs2]
				regs[u.aux] = v2
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(u.aux), v2
			}
			pc += 2
			goto tail2
		case opFuseMovISt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				regs[u.rd] = u.imm
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), u.imm
				addr := uint64(regs[u.rs1] + u.imm2)
				v := regs[u.rs2]
				c.mem.Store(addr, v)
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.MemAddr, ev2.MemVal = addr, v
			}
			pc += 2
			goto tail2
		case opFuseLoadSt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				addr := uint64(regs[u.rs1] + u.imm)
				v := c.mem.Load(addr)
				regs[u.rd] = v
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
				ev.MemAddr, ev.MemVal = addr, v
				addr2 := uint64(regs[u.aux2] + u.imm2)
				v2 := regs[u.aux3]
				c.mem.Store(addr2, v2)
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.MemAddr, ev2.MemVal = addr2, v2
			}
			pc += 2
			goto tail2
		case opFuseStSt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirst(u, &buf[k], retired, pc)
				goto tail1
			}
			{
				addr := uint64(regs[u.rs1] + u.imm)
				v := regs[u.rs2]
				c.mem.Store(addr, v)
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.MemAddr, ev.MemVal = addr, v
				addr2 := uint64(regs[u.aux2] + u.imm2)
				v2 := regs[u.aux3]
				c.mem.Store(addr2, v2)
				ev2 := &buf[k+1]
				*ev2 = trace.Event{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				ev2.MemAddr, ev2.MemVal = addr2, v2
			}
			pc += 2
			goto tail2
		case opAddI:
			v := regs[u.rs1] + u.imm
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opAdd:
			v := regs[u.rs1] + regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opBrEQZ:
			if regs[u.rs1] == 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opBrNEZ:
			if regs[u.rs1] != 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opBrLTZ:
			if regs[u.rs1] < 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opBrGEZ:
			if regs[u.rs1] >= 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opBrGTZ:
			if regs[u.rs1] > 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opBrLEZ:
			if regs[u.rs1] <= 0 {
				ev := &buf[k]
				*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
				ev.Taken, ev.Target = true, isa.Addr(u.target)
				next = uint64(u.target)
			} else {
				buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			}
			ctl[cn] = int32(k)
			cn++
		case opLoad:
			addr := uint64(regs[u.rs1] + u.imm)
			v := c.mem.Load(addr)
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
			ev.MemAddr, ev.MemVal = addr, v
		case opStore:
			addr := uint64(regs[u.rs1] + u.imm)
			v := regs[u.rs2]
			c.mem.Store(addr, v)
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.MemAddr, ev.MemVal = addr, v
		case opMovI:
			regs[u.rd] = u.imm
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), u.imm
		case opMov:
			v := regs[u.rs1]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opSub:
			v := regs[u.rs1] - regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opMul:
			v := regs[u.rs1] * regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opAnd:
			v := regs[u.rs1] & regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opOr:
			v := regs[u.rs1] | regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opXor:
			v := regs[u.rs1] ^ regs[u.rs2]
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opShl:
			v := regs[u.rs1] << uint64(u.imm)
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opShr:
			v := regs[u.rs1] >> uint64(u.imm)
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opSlt:
			var v int64
			if regs[u.rs1] < regs[u.rs2] {
				v = 1
			}
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opMod:
			var v int64
			if b := regs[u.rs2]; b != 0 {
				v = regs[u.rs1] % b
			}
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opSeq:
			var v int64
			if s, ok := c.seqs[u.imm]; ok {
				v = s.Next()
			}
			regs[u.rd] = v
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(u.rd), v
		case opJump:
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.Taken, ev.Target = true, isa.Addr(u.target)
			next = uint64(u.target)
			ctl[cn] = int32(k)
			cn++
		case opCall:
			if len(c.stack) >= MaxCallDepth {
				deliver(sink, seg, buf[:k], ctl[:cn])
				c.pc, c.retired = isa.Addr(pc), retired
				return retired - start, fmt.Errorf("%w at pc=%d", ErrCallDepth, isa.Addr(pc))
			}
			c.stack = append(c.stack, isa.Addr(pc+1))
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.Taken, ev.Target = true, isa.Addr(u.target)
			next = uint64(u.target)
		case opRet:
			if len(c.stack) == 0 {
				deliver(sink, seg, buf[:k], ctl[:cn])
				c.pc, c.retired = isa.Addr(pc), retired
				return retired - start, fmt.Errorf("%w at pc=%d", ErrRetEmpty, isa.Addr(pc))
			}
			ra := c.stack[len(c.stack)-1]
			c.stack = c.stack[:len(c.stack)-1]
			ev := &buf[k]
			*ev = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ev.Taken, ev.Target = true, ra
			next = uint64(ra)
			ctl[cn] = int32(k)
			cn++
		case opBrNever:
			// Unknown-condition branch: never taken, but its event carries
			// a KindBranch instruction, so it is still a run boundary.
			buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
			ctl[cn] = int32(k)
			cn++
		case opHalt:
			halted = true
			buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
		default: // opNop
			buf[k] = trace.Event{Index: retired, PC: isa.Addr(pc), Instr: u.in} // header only
		}
		retired++
		pc = next
		if k++; k == kmax {
			if seg != nil {
				seg.ConsumeBatchSegmented(buf, ctl[:cn])
			} else if sink != nil {
				sink.ConsumeBatch(buf)
			}
			k, cn = 0, 0
		}
		continue

	tail1: // fused op stepped as its first constituent only
		retired++
		pc++
		if k++; k == kmax {
			if seg != nil {
				seg.ConsumeBatchSegmented(buf, ctl[:cn])
			} else if sink != nil {
				sink.ConsumeBatch(buf)
			}
			k, cn = 0, 0
		}
		continue

	tail2: // fused op retired whole: two events, two instructions
		retired += 2
		if k += 2; k == kmax {
			if seg != nil {
				seg.ConsumeBatchSegmented(buf, ctl[:cn])
			} else if sink != nil {
				sink.ConsumeBatch(buf)
			}
			k, cn = 0, 0
		}
	}
	deliver(sink, seg, buf[:k], ctl[:cn])
	c.pc, c.retired, c.halted = isa.Addr(pc), retired, halted
	return retired - start, nil
}
