package interp

import "dynloop/internal/obs"

// Interpreter throughput metrics. All updates happen once per Run call
// — never per instruction — so a traversal of millions of events costs
// two timestamps and four atomic operations, invisible next to the
// retire loop and allocation-free (the AllocsPerRun=0 pins cover the
// instrumented path).
var (
	mInstructions = obs.NewCounter("dynloop_interp_instructions_total",
		"Instructions retired by the interpreter across all Run calls.")
	mNsPerInstr = obs.NewGauge("dynloop_interp_ns_per_instr",
		"Nanoseconds per instruction of the most recent Run call.")
	mRunsCtl = obs.NewCounter("dynloop_interp_runs_total",
		"Run calls by negotiated event facet.", "plane", "ctl")
	mRunsFull = obs.NewCounter("dynloop_interp_runs_total",
		"Run calls by negotiated event facet.", "plane", "full")
)

// PlaneRuns reports the process-lifetime count of Run calls that
// negotiated control-plane-only delivery vs full-event delivery, for
// the daemon's /v1/stats mirror.
func PlaneRuns() (ctl, full uint64) {
	return mRunsCtl.Value(), mRunsFull.Value()
}

// Instructions returns the process-lifetime retired instruction count.
func Instructions() uint64 { return mInstructions.Value() }

// LastNsPerInstr returns the ns/instr of the most recent Run call.
func LastNsPerInstr() float64 { return mNsPerInstr.Value() }
