package interp

import (
	"errors"
	"reflect"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// memFusionProg exercises the memory-pair superinstructions (ld+st and
// st+st) inside a loop, with one st+st pair whose second constituent is
// the last event before a control transfer — the boundary the segment
// side channel has to get right.
func memFusionProg() *program.Program {
	return prog(
		isa.MovI(1, 0),                // 0
		isa.MovI(2, 2000),             // 1
		isa.AddI(1, 1, 1),             // 2: loop head (branch target)
		isa.Load(3, 2, 0),             // 3
		isa.Store(2, 8, 3),            // 4:   ld+st (store reads the just-loaded reg)
		isa.Store(2, 16, 3),           // 5
		isa.Store(2, 24, 3),           // 6:   st+st
		isa.AddI(4, 1, -6),            // 7
		isa.Store(2, 32, 3),           // 8
		isa.Store(2, 40, 3),           // 9:   st+st, second slot right before the branch
		isa.Branch(isa.CondLTZ, 4, 2), // 10: back edge, unfused
		isa.Halt(),                    // 11
	)
}

// TestPredecodeMemPairFusion pins that the ld+st and st+st patterns
// actually fuse, so the equivalence tests below cannot pass vacuously.
func TestPredecodeMemPairFusion(t *testing.T) {
	ops := predecode(memFusionProg(), true)
	want := map[uint64]uint8{3: opFuseLoadSt, 5: opFuseStSt, 8: opFuseStSt}
	for pc, op := range want {
		if ops[pc].op != op {
			t.Errorf("ops[%d].op = %d, want fused op %d", pc, ops[pc].op, op)
		}
		if ops[pc+1].op >= opFuseFirst {
			t.Errorf("ops[%d] fused: pairs must not overlap", pc+1)
		}
	}
	if ops[10].op >= opFuseFirst {
		t.Errorf("ops[10] fused: the pair at 8 already consumed slot 9")
	}
}

// TestMemPairReferenceEquivalence runs memFusionProg through the fused
// and reference interpreters across batch sizes and mid-pair budgets;
// streams and machine state must match exactly (the ld+st arm must read
// the store's registers AFTER the load wrote its destination).
func TestMemPairReferenceEquivalence(t *testing.T) {
	for _, batch := range []int{0, 1, 2, 3, 7, 256} {
		for _, budget := range []uint64{0, 1, 4, 5, 9, 10, 23} {
			fused := New(memFusionProg())
			ref := New(memFusionProg())
			ref.SetReference(true)
			fe, fn, ferr := runStream(t, fused, budget, batch)
			re, rn, rerr := runStream(t, ref, budget, batch)
			if (ferr == nil) != (rerr == nil) || fn != rn {
				t.Fatalf("batch=%d budget=%d: n %d/%d err %v/%v", batch, budget, fn, rn, ferr, rerr)
			}
			if !reflect.DeepEqual(fe, re) {
				t.Fatalf("batch=%d budget=%d: streams differ (%d vs %d events)", batch, budget, len(fe), len(re))
			}
			if fused.regs != ref.regs || fused.PC() != ref.PC() || fused.Halted() != ref.Halted() {
				t.Fatalf("batch=%d budget=%d: machine state diverged", batch, budget)
			}
		}
	}
}

// ctlRecorder accepts only control-plane delivery: ConsumeBatch panics,
// proving Run dispatched to the control-plane loop, and ctl indices are
// resolved to absolute stream positions like segRecorder's.
type ctlRecorder struct {
	events []trace.CtlEvent
	ctl    []int
}

func (r *ctlRecorder) ConsumeBatch([]trace.Event) {
	panic("full-plane delivery to a control-only sink")
}

func (r *ctlRecorder) ConsumeCtlBatch(evs []trace.CtlEvent, ctl []int32) {
	base := len(r.events)
	r.events = append(r.events, evs...)
	for _, i := range ctl {
		r.ctl = append(r.ctl, base+int(i))
	}
}

// ctlFacet projects a full event stream onto the control plane.
func ctlFacet(evs []trace.Event) []trace.CtlEvent {
	out := make([]trace.CtlEvent, len(evs))
	for i, ev := range evs {
		out[i] = trace.CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr,
			Taken: ev.Taken, Target: ev.Target}
	}
	return out
}

// runCtlStream executes a fresh CPU against a control-only sink.
func runCtlStream(t *testing.T, c *CPU, budget uint64, batch int) (*ctlRecorder, uint64, error) {
	t.Helper()
	c.SetBatchSize(batch)
	rec := &ctlRecorder{}
	n, err := c.Run(budget, rec)
	return rec, n, err
}

// TestRunCtlReferenceEquivalence is the control-plane differential: the
// ctl loop must emit exactly the control facet of the reference stream —
// same events, same ctl boundaries, same machine state — at batch sizes
// that cut fused pairs and budgets that stop mid-pair, over both the
// ALU-heavy fusion program and the memory-pair one.
func TestRunCtlReferenceEquivalence(t *testing.T) {
	mk := map[string]func(reference bool) *CPU{
		"fusion": newFusionCPU,
		"mem": func(reference bool) *CPU {
			c := New(memFusionProg())
			c.SetReference(reference)
			return c
		},
	}
	for name, newCPU := range mk {
		for _, batch := range []int{0, 1, 2, 3, 7, 256} {
			for _, budget := range []uint64{0, 1, 3, 7, 50, 101} {
				cc := newCPU(false)
				ref := newCPU(true)
				crec, cn, cerr := runCtlStream(t, cc, budget, batch)
				re, rn, rerr := runStream(t, ref, budget, batch)
				if (cerr == nil) != (rerr == nil) || cn != rn {
					t.Fatalf("%s batch=%d budget=%d: n %d/%d err %v/%v", name, batch, budget, cn, rn, cerr, rerr)
				}
				if want := ctlFacet(re); !reflect.DeepEqual(crec.events, want) {
					for i := range crec.events {
						if i < len(want) && !reflect.DeepEqual(crec.events[i], want[i]) {
							t.Fatalf("%s batch=%d budget=%d: event %d differs:\nctl %+v\nref %+v",
								name, batch, budget, i, crec.events[i], want[i])
						}
					}
					t.Fatalf("%s batch=%d budget=%d: stream lengths %d vs %d",
						name, batch, budget, len(crec.events), len(want))
				}
				var wantCtl []int
				for i := range re {
					switch re[i].Instr.Kind {
					case isa.KindBranch, isa.KindJump, isa.KindRet:
						wantCtl = append(wantCtl, i)
					}
				}
				if !reflect.DeepEqual(crec.ctl, wantCtl) {
					t.Fatalf("%s batch=%d budget=%d: ctl = %v, want %v", name, batch, budget, crec.ctl, wantCtl)
				}
				if cc.regs != ref.regs || cc.PC() != ref.PC() || cc.Halted() != ref.Halted() {
					t.Fatalf("%s batch=%d budget=%d: machine state diverged", name, batch, budget)
				}
			}
		}
	}
}

// TestRunCtlResumeMidPair pins the budget boundary inside a fused pair
// on the control plane: one instruction of budget left retires exactly
// the first constituent, and resuming completes the stream.
func TestRunCtlResumeMidPair(t *testing.T) {
	cc := newFusionCPU(false)
	rec := &ctlRecorder{}
	n, err := cc.Run(3, rec)
	if err != nil || n != 3 {
		t.Fatalf("first leg: n=%d err=%v", n, err)
	}
	if got := cc.PC(); got != 3 {
		t.Fatalf("mid-pair pc = %d, want 3 (second constituent)", got)
	}
	if _, err := cc.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	ref := newFusionCPU(true)
	rrec := &trace.Recorder{}
	if _, err := ref.Run(0, rrec); err != nil {
		t.Fatal(err)
	}
	if want := ctlFacet(rrec.Events); !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("resumed ctl stream differs from reference (%d vs %d events)", len(rec.events), len(want))
	}
}

// TestRunCtlErrorPaths: machine errors on the control plane flush the
// buffered events before returning, exactly like the full path.
func TestRunCtlErrorPaths(t *testing.T) {
	run := func(p *program.Program) (*ctlRecorder, error) {
		c := New(p)
		rec := &ctlRecorder{}
		_, err := c.Run(0, rec)
		return rec, err
	}
	if rec, err := run(prog(isa.Nop())); !errors.Is(err, ErrPC) || len(rec.events) != 1 {
		t.Fatalf("ErrPC: got %v, %d events", err, len(rec.events))
	}
	if _, err := run(prog(isa.Ret())); !errors.Is(err, ErrRetEmpty) {
		t.Fatalf("ErrRetEmpty: got %v", err)
	}
	if _, err := run(prog(isa.Call(0))); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("ErrCallDepth: got %v", err)
	}
}

// TestRunCtlForcedFull: wrapping the same control-only sink in
// ForceFullPlane must push Run back onto full-Event delivery (the
// wrapper's ConsumeBatch, not the sink's panicking one).
func TestRunCtlForcedFull(t *testing.T) {
	var got []trace.Event
	sink := trace.BatchConsumerFunc(func(evs []trace.Event) { got = append(got, evs...) })
	c := New(memFusionProg())
	if _, err := c.Run(0, trace.ForceFullPlane(sink)); err != nil {
		t.Fatal(err)
	}
	ref := New(memFusionProg())
	ref.SetReference(true)
	rrec := &trace.Recorder{}
	if _, err := ref.Run(0, rrec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rrec.Events) {
		t.Fatalf("forced-full stream differs (%d vs %d events)", len(got), len(rrec.Events))
	}
}

// TestSegmentBoundaryPairBeforeTransfer pins satellite boundaries of the
// segment side channel on BOTH planes: a fused pair whose second
// constituent is the last event before a control transfer, with batch
// sizes that flush between the pair and the transfer and budgets that
// cut inside the pair. The ctl indices must always be exactly the
// branch/jump/ret positions of the equivalent reference stream.
func TestSegmentBoundaryPairBeforeTransfer(t *testing.T) {
	for _, batch := range []int{1, 2, 3, 5, 8, 9, 1024} {
		for _, budget := range []uint64{0, 5, 8, 9, 10, 11, 17} {
			ref := New(memFusionProg())
			ref.SetReference(true)
			re, _, err := runStream(t, ref, budget, batch)
			if err != nil {
				t.Fatal(err)
			}
			var want []int
			for i := range re {
				switch re[i].Instr.Kind {
				case isa.KindBranch, isa.KindJump, isa.KindRet:
					want = append(want, i)
				}
			}

			seg := &segRecorder{}
			c := New(memFusionProg())
			c.SetBatchSize(batch)
			if _, err := c.Run(budget, seg); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seg.events, re) {
				t.Fatalf("batch=%d budget=%d: segmented events differ from reference", batch, budget)
			}
			if !reflect.DeepEqual(seg.ctl, append([]int(nil), want...)) {
				t.Fatalf("batch=%d budget=%d: full-plane ctl = %v, want %v", batch, budget, seg.ctl, want)
			}

			crec, _, err := runCtlStream(t, New(memFusionProg()), budget, batch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(crec.ctl, want) {
				t.Fatalf("batch=%d budget=%d: ctl-plane ctl = %v, want %v", batch, budget, crec.ctl, want)
			}
		}
	}
}
