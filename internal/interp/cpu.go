// Package interp executes programs of the substrate ISA and emits one
// trace.Event per retired instruction. It replaces the paper's
// ATOM-instrumented Alpha binaries: the loop detector, tables, speculation
// engine and data-speculation statistics all run as consumers of the
// stream this interpreter produces.
//
// Execution is driven from a predecoded micro-op array built once per
// CPU (see predecode.go): a dense single-switch dispatch with peephole
// superinstruction fusion for the dominant loop idioms. The original
// two-level Kind/Op interpreter is retained verbatim as a reference
// path (SetReference) for differential testing; both paths emit
// byte-identical event streams.
//
// Events are delivered in batches: Run fills a reusable buffer of
// DefaultBatchSize events (see SetBatchSize) and flushes it through
// trace.BatchConsumer, so the consumer side costs one interface call per
// batch instead of one per instruction. The buffer is allocated once and
// reused across batches and Run calls — the steady-state hot path does
// not allocate. When Run has no sink it executes the same loop against a
// small CPU-owned scratch batch, so the retire loop has exactly one code
// path.
package interp

import (
	"errors"
	"fmt"
	"time"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// Errors reported by Run.
var (
	// ErrNoProgram is returned when the CPU has no program loaded.
	ErrNoProgram = errors.New("interp: no program loaded")
	// ErrCallDepth is returned when the call stack exceeds MaxCallDepth.
	ErrCallDepth = errors.New("interp: call stack overflow")
	// ErrRetEmpty is returned on a return with an empty call stack.
	ErrRetEmpty = errors.New("interp: return with empty call stack")
	// ErrPC is returned when the PC leaves the program.
	ErrPC = errors.New("interp: PC out of range")
)

// MaxCallDepth bounds the call stack; exceeding it is a program bug and
// aborts the run rather than looping forever.
const MaxCallDepth = 4096

// DefaultBatchSize is the event-batch size Run uses unless SetBatchSize
// chose another. 1024 events (~90 KiB) sits at the measured knee of the
// BenchmarkRunBatchSize sweep: the per-batch interface dispatch is
// amortised to noise by ~256, and the buffer stays comfortably inside
// L2 — 4096 (~360 KiB) measured ~10% slower on the reference host.
const DefaultBatchSize = 1024

// scratchSize is the batch size of the no-sink scratch buffer. It must
// be at least 2 so fused micro-ops can retire both constituents into it.
const scratchSize = 2

// CPU is a single-context interpreter. Create one with New, then call Run.
type CPU struct {
	prog *program.Program
	regs [isa.NumRegs]int64
	mem  Memory
	// ops is the predecoded micro-op array (see predecode.go), built
	// once in New with fusion enabled.
	ops []uop
	// stack holds return addresses.
	stack []isa.Addr
	pc    isa.Addr
	// seqs maps sequence ids to value streams.
	seqs map[int64]Sequence
	// retired counts instructions executed so far across Run calls.
	retired uint64
	halted  bool
	// reference selects the retained two-level-switch interpreter (no
	// predecode, no fusion) for differential testing.
	reference bool

	// batch is the reusable event buffer (len == cap == batchSize); it is
	// allocated lazily on the first Run with a sink and reused afterwards.
	// ctl is the control-transfer index side channel delivered with each
	// batch to trace.SegmentedBatchConsumer sinks (same length as batch).
	// ctlBatch is the compact control-plane buffer used instead of batch
	// when every attached consumer is control-only (see Run).
	batch     []trace.Event
	ctlBatch  []trace.CtlEvent
	ctl       []int32
	batchSize int
	// scratch/scratchCtl receive event writes when Run has no sink,
	// keeping the execution loop on a single code path without
	// heap-escaping an event per instruction.
	scratch    [scratchSize]trace.Event
	scratchCtl [scratchSize]int32
}

// New returns a CPU ready to execute p from its entry point.
func New(p *program.Program) *CPU {
	return &CPU{prog: p, pc: p.Entry, seqs: make(map[int64]Sequence),
		ops: predecode(p, true)}
}

// BindSeq attaches a value sequence to id; KindSeq instructions with that
// id read from it. Unbound sequences read as zero.
func (c *CPU) BindSeq(id int64, s Sequence) { c.seqs[id] = s }

// Reg returns the current value of register r.
func (c *CPU) Reg(r isa.Reg) int64 { return c.regs[r] }

// SetReg sets register r; useful for test setup.
func (c *CPU) SetReg(r isa.Reg, v int64) { c.regs[r] = v }

// Mem returns the data memory, for test inspection and preloading.
func (c *CPU) Mem() *Memory { return &c.mem }

// Retired returns the number of instructions executed so far.
func (c *CPU) Retired() uint64 { return c.retired }

// Halted reports whether the program has executed Halt.
func (c *CPU) Halted() bool { return c.halted }

// PC returns the current program counter.
func (c *CPU) PC() isa.Addr { return c.pc }

// SetReference selects (true) or deselects (false) the reference
// interpreter: the original two-level Kind/Op switch over isa.Instr,
// with no predecode and no superinstruction fusion. Both paths emit
// byte-identical event streams and machine state; the reference path
// exists so differential tests (and suspicious users) can pin that.
func (c *CPU) SetReference(on bool) { c.reference = on }

// Reference reports whether the reference interpreter is selected.
func (c *CPU) Reference() bool { return c.reference }

// SetBatchSize sets the event-batch size for subsequent Run calls
// (n <= 0 selects DefaultBatchSize). Batch size only affects delivery
// granularity — consumers see the same events in the same order at any
// setting — so results are identical; 1 degenerates to per-instruction
// delivery.
func (c *CPU) SetBatchSize(n int) {
	if n <= 0 {
		n = DefaultBatchSize
	}
	if n != c.batchSize {
		c.batchSize = n
		c.batch, c.ctlBatch, c.ctl = nil, nil, nil
	}
}

// BatchSize returns the effective event-batch size.
func (c *CPU) BatchSize() int {
	if c.batchSize <= 0 {
		return DefaultBatchSize
	}
	return c.batchSize
}

// Run executes up to budget instructions (0 means unlimited), emitting one
// event per retired instruction to sink (which may be nil). It returns the
// number of instructions retired by this call. Execution stops at the
// budget, at a Halt, or on a machine error (bad PC, call stack abuse);
// events buffered at that point are flushed before Run returns, so the
// sink always sees every retired instruction.
//
// Events are delivered in batches of BatchSize; the batch buffer is owned
// by the CPU and reused, so consumers must copy what they keep (see the
// trace package comment on batch lifetime).
//
// Run negotiates the event facets with the sink: when the sink accepts
// control-plane batches (trace.CtlBatchConsumer) and declares it needs
// only the control facet (trace.PlanesOf == trace.PlaneCtl), the
// predecoded loop retires compact trace.CtlEvents and never materializes
// the data facet at all. The reference path and the nil-sink path always
// use full events.
func (c *CPU) Run(budget uint64, sink trace.BatchConsumer) (uint64, error) {
	if c.prog == nil {
		return 0, ErrNoProgram
	}
	// Throughput instrumentation is per-Run, never per-instruction: two
	// timestamps and a few atomic adds amortized over the whole
	// traversal, with zero allocations.
	start := time.Now()
	n, ctlPlane, err := c.run(budget, sink)
	if ctlPlane {
		mRunsCtl.Inc()
	} else {
		mRunsFull.Inc()
	}
	if n > 0 {
		mInstructions.Add(n)
		mNsPerInstr.Set(float64(time.Since(start).Nanoseconds()) / float64(n))
	}
	return n, err
}

// run dispatches to the negotiated execution loop; the boolean reports
// whether the control-plane-only loop served the sink.
func (c *CPU) run(budget uint64, sink trace.BatchConsumer) (uint64, bool, error) {
	if !c.reference && sink != nil {
		if cc, ok := sink.(trace.CtlBatchConsumer); ok && trace.PlanesOf(sink) == trace.PlaneCtl {
			if c.ctlBatch == nil {
				c.ctlBatch = make([]trace.CtlEvent, c.BatchSize())
			}
			if c.ctl == nil {
				c.ctl = make([]int32, c.BatchSize())
			}
			n, err := c.runCtl(budget, cc, c.ctlBatch, c.ctl)
			return n, true, err
		}
	}
	buf, ctl := c.scratch[:], c.scratchCtl[:]
	var seg trace.SegmentedBatchConsumer
	if sink != nil {
		if c.batch == nil {
			c.batch = make([]trace.Event, c.BatchSize())
		}
		if c.ctl == nil {
			c.ctl = make([]int32, c.BatchSize())
		}
		buf, ctl = c.batch, c.ctl
		seg, _ = sink.(trace.SegmentedBatchConsumer)
	}
	if c.reference {
		n, err := c.runRef(budget, sink, buf)
		return n, false, err
	}
	n, err := c.runPre(budget, sink, seg, buf, ctl)
	return n, false, err
}

// runRef is the reference interpreter: the original two-level switch
// over isa.Instr, kept byte-for-byte semantics-equivalent to the
// predecoded path. Differential tests run both and compare streams.
func (c *CPU) runRef(budget uint64, sink trace.BatchConsumer, buf []trace.Event) (uint64, error) {
	// k is the number of committed events in buf.
	k := 0
	flush := func() {
		if sink != nil && k > 0 {
			sink.ConsumeBatch(buf[:k])
		}
		k = 0
	}
	var done uint64
	code := c.prog.Code
	n := isa.Addr(len(code))
	for !c.halted && (budget == 0 || done < budget) {
		if c.pc >= n {
			flush()
			return done, fmt.Errorf("%w: pc=%d len=%d", ErrPC, c.pc, n)
		}
		in := &code[c.pc]
		ev := &buf[k]
		*ev = trace.Event{Index: c.retired, PC: c.pc, Instr: in}
		next := c.pc + 1
		switch in.Kind {
		case isa.KindALU:
			v := c.alu(in)
			c.regs[in.Rd] = v
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, in.Rd, v
		case isa.KindLoad:
			addr := uint64(c.regs[in.Rs1] + in.Imm)
			v := c.mem.Load(addr)
			c.regs[in.Rd] = v
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, in.Rd, v
			ev.MemAddr, ev.MemVal = addr, v
		case isa.KindStore:
			addr := uint64(c.regs[in.Rs1] + in.Imm)
			v := c.regs[in.Rs2]
			c.mem.Store(addr, v)
			ev.MemAddr, ev.MemVal = addr, v
		case isa.KindBranch:
			if in.Cond.Holds(c.regs[in.Rs1]) {
				ev.Taken, ev.Target = true, in.Target
				next = in.Target
			}
		case isa.KindJump:
			ev.Taken, ev.Target = true, in.Target
			next = in.Target
		case isa.KindCall:
			if len(c.stack) >= MaxCallDepth {
				flush()
				return done, fmt.Errorf("%w at pc=%d", ErrCallDepth, c.pc)
			}
			c.stack = append(c.stack, c.pc+1)
			ev.Taken, ev.Target = true, in.Target
			next = in.Target
		case isa.KindRet:
			if len(c.stack) == 0 {
				flush()
				return done, fmt.Errorf("%w at pc=%d", ErrRetEmpty, c.pc)
			}
			ra := c.stack[len(c.stack)-1]
			c.stack = c.stack[:len(c.stack)-1]
			ev.Taken, ev.Target = true, ra
			next = ra
		case isa.KindSeq:
			var v int64
			if s, ok := c.seqs[in.Imm]; ok {
				v = s.Next()
			}
			c.regs[in.Rd] = v
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, in.Rd, v
		case isa.KindHalt:
			c.halted = true
		case isa.KindNop:
			// nothing
		}
		c.retired++
		done++
		c.pc = next
		if k++; k == len(buf) {
			if sink != nil {
				sink.ConsumeBatch(buf)
			}
			k = 0
		}
	}
	flush()
	return done, nil
}

// alu evaluates a KindALU instruction against the register file.
func (c *CPU) alu(in *isa.Instr) int64 {
	a, b := c.regs[in.Rs1], c.regs[in.Rs2]
	switch in.Op {
	case isa.OpAdd:
		return a + b
	case isa.OpAddI:
		return a + in.Imm
	case isa.OpSub:
		return a - b
	case isa.OpMul:
		return a * b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpShl:
		return a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		return a >> (uint64(in.Imm) & 63)
	case isa.OpMovI:
		return in.Imm
	case isa.OpMov:
		return a
	case isa.OpSlt:
		if a < b {
			return 1
		}
		return 0
	case isa.OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	default:
		return 0
	}
}
