package interp

import (
	"errors"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// loopProg is a counted loop: r1 = trips; r1--; bnez r1 -> 1; halt.
func loopProg(trips int64) *CPU {
	return New(prog(
		isa.MovI(1, trips),
		isa.AddI(1, 1, -1),
		isa.Branch(isa.CondNEZ, 1, 1),
		isa.Halt(),
	))
}

// TestBatchSizeInvariance: the recorded event stream must be identical
// at every batch size, including across multiple Run calls that leave
// partial batches behind.
func TestBatchSizeInvariance(t *testing.T) {
	// One shared program, so Instr pointers compare equal across runs.
	p := prog(
		isa.MovI(1, 700),
		isa.AddI(1, 1, -1),
		isa.Branch(isa.CondNEZ, 1, 1),
		isa.Halt(),
	)
	ref := &trace.Recorder{}
	c := New(p)
	c.SetBatchSize(1)
	if _, err := c.Run(0, ref); err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{2, 3, 17, 4096} {
		got := &trace.Recorder{}
		c := New(p)
		c.SetBatchSize(bs)
		// Chunked budgets force partial-batch flushes at Run boundaries.
		for !c.Halted() {
			if _, err := c.Run(101, got); err != nil {
				t.Fatal(err)
			}
		}
		if len(got.Events) != len(ref.Events) {
			t.Fatalf("batch=%d: %d events, want %d", bs, len(got.Events), len(ref.Events))
		}
		for i := range ref.Events {
			if got.Events[i] != ref.Events[i] {
				t.Fatalf("batch=%d: event %d = %+v, want %+v", bs, i, got.Events[i], ref.Events[i])
			}
		}
	}
}

// TestErrorFlushesPartialBatch: when Run aborts on a machine error, the
// events already retired must still reach the sink.
func TestErrorFlushesPartialBatch(t *testing.T) {
	// Jump beyond the end of the program: the jump itself retires, then
	// the next fetch fails.
	c := New(prog(
		isa.Nop(),
		isa.Nop(),
		isa.Jump(40),
	))
	rec := &trace.Recorder{}
	n, err := c.Run(0, rec)
	if !errors.Is(err, ErrPC) {
		t.Fatalf("err = %v, want ErrPC", err)
	}
	if n != 3 {
		t.Fatalf("retired %d, want 3", n)
	}
	if len(rec.Events) != 3 {
		t.Fatalf("sink saw %d events, want 3 (partial batch not flushed)", len(rec.Events))
	}
	last := rec.Events[2]
	if last.Instr.Kind != isa.KindJump || !last.Taken || last.Target != 40 {
		t.Fatalf("last event = %+v, want the jump", last)
	}
}

// TestNilSinkNoAllocs: running without a sink must not allocate at all
// (the scratch event never escapes).
func TestNilSinkNoAllocs(t *testing.T) {
	c := loopProg(1 << 40)
	if _, err := c.Run(1024, nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := c.Run(4096, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("allocs/run = %v, want 0", avg)
	}
}
