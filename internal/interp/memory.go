package interp

// pageBits selects the page granularity of the sparse memory: 512 words.
const pageBits = 9

const pageSize = 1 << pageBits

// Memory is a sparse, paged 64-bit word memory. Unwritten locations read
// as zero. The zero value is ready to use. A one-entry page cache (a
// software TLB) turns the map lookup into a compare on the overwhelmingly
// common same-page access.
type Memory struct {
	pages    map[uint64]*[pageSize]int64
	lastKey  uint64
	lastPage *[pageSize]int64
}

// Load returns the word at addr.
func (m *Memory) Load(addr uint64) int64 {
	key := addr >> pageBits
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage[addr&(pageSize-1)]
	}
	p, ok := m.pages[key]
	if !ok {
		return 0
	}
	m.lastKey, m.lastPage = key, p
	return p[addr&(pageSize-1)]
}

// Store writes the word at addr.
func (m *Memory) Store(addr uint64, v int64) {
	key := addr >> pageBits
	if m.lastPage != nil && key == m.lastKey {
		m.lastPage[addr&(pageSize-1)] = v
		return
	}
	if m.pages == nil {
		m.pages = make(map[uint64]*[pageSize]int64)
	}
	p, ok := m.pages[key]
	if !ok {
		p = new([pageSize]int64)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	p[addr&(pageSize-1)] = v
}

// Reset drops all pages.
func (m *Memory) Reset() {
	m.pages = nil
	m.lastPage = nil
	m.lastKey = 0
}

// Footprint returns the number of resident pages, for diagnostics.
func (m *Memory) Footprint() int { return len(m.pages) }
