package interp

// pageBits selects the page granularity of the sparse memory: 512 words.
const pageBits = 9

const pageSize = 1 << pageBits

// The page cache is a small direct-mapped set (a software TLB). One
// entry was enough when a workload touched a single region, but builder
// programs interleave three: the static counter slots (slotBase), the
// software stack (StackBase) and the heap (HeapBase). A loop latch
// alternates slot and heap pages every few instructions, so a one-entry
// cache thrashed straight back to the page map. Eight entries indexed
// by a multiplicative hash keep all the concurrently hot pages resident.
const (
	memCacheBits = 3
	memCacheSize = 1 << memCacheBits
)

// cacheIdx maps a page key to its direct-mapped slot. The region bases
// are large powers of two, so their page keys share low bits; the
// Fibonacci hash spreads them across slots where key&(size-1) would
// collide them all into slot 0.
func cacheIdx(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> (64 - memCacheBits)
}

// memSlot is one direct-mapped page-cache entry; it is valid when page
// is non-nil.
type memSlot struct {
	key  uint64
	page *[pageSize]int64
}

// Memory is a sparse, paged 64-bit word memory. Unwritten locations read
// as zero. The zero value is ready to use.
type Memory struct {
	pages map[uint64]*[pageSize]int64
	// slots is the direct-mapped page cache.
	slots [memCacheSize]memSlot
	// hits counts accesses served by the page cache; misses counts
	// accesses that fell through to the page map (including reads of
	// never-written pages). Read them with CacheStats.
	hits   uint64
	misses uint64
}

// Load returns the word at addr. The cache-hit fast path is small
// enough to inline into the interpreter loop; misses take loadSlow.
func (m *Memory) Load(addr uint64) int64 {
	key := addr >> pageBits
	s := &m.slots[cacheIdx(key)]
	if s.page != nil && s.key == key {
		m.hits++
		return s.page[addr&(pageSize-1)]
	}
	return m.loadSlow(addr, key, s)
}

func (m *Memory) loadSlow(addr, key uint64, s *memSlot) int64 {
	m.misses++
	p, ok := m.pages[key]
	if !ok {
		return 0
	}
	s.key, s.page = key, p
	return p[addr&(pageSize-1)]
}

// Store writes the word at addr; like Load it splits into an inlinable
// cache-hit path and a slow path.
func (m *Memory) Store(addr uint64, v int64) {
	key := addr >> pageBits
	s := &m.slots[cacheIdx(key)]
	if s.page != nil && s.key == key {
		m.hits++
		s.page[addr&(pageSize-1)] = v
		return
	}
	m.storeSlow(addr, key, s, v)
}

func (m *Memory) storeSlow(addr, key uint64, s *memSlot, v int64) {
	m.misses++
	if m.pages == nil {
		m.pages = make(map[uint64]*[pageSize]int64)
	}
	p, ok := m.pages[key]
	if !ok {
		p = new([pageSize]int64)
		m.pages[key] = p
	}
	s.key, s.page = key, p
	p[addr&(pageSize-1)] = v
}

// Reset drops all pages and empties the page cache. The hit/miss
// counters are preserved (they describe the Memory's lifetime).
func (m *Memory) Reset() {
	m.pages = nil
	m.slots = [memCacheSize]memSlot{}
}

// CacheStats is a debug accessor for the page-cache counters: hits is
// the number of loads/stores served by the direct-mapped set, misses the
// number that took the page-map path (a miss on a never-written page
// does not install anything and will miss again).
func (m *Memory) CacheStats() (hits, misses uint64) { return m.hits, m.misses }

// Footprint returns the number of resident pages, for diagnostics.
func (m *Memory) Footprint() int { return len(m.pages) }
