package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

func prog(code ...isa.Instr) *program.Program {
	return &program.Program{Name: "t", Code: code}
}

// TestALUOps checks every ALU operation end to end.
func TestALUOps(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		r1   int64
		r2   int64
		want int64
	}{
		{isa.ALU(isa.OpAdd, 3, 1, 2), 5, 7, 12},
		{isa.ALU(isa.OpSub, 3, 1, 2), 5, 7, -2},
		{isa.ALU(isa.OpMul, 3, 1, 2), 5, 7, 35},
		{isa.ALU(isa.OpAnd, 3, 1, 2), 6, 3, 2},
		{isa.ALU(isa.OpOr, 3, 1, 2), 6, 3, 7},
		{isa.ALU(isa.OpXor, 3, 1, 2), 6, 3, 5},
		{isa.ALU(isa.OpSlt, 3, 1, 2), 5, 7, 1},
		{isa.ALU(isa.OpSlt, 3, 1, 2), 7, 5, 0},
		{isa.ALU(isa.OpMod, 3, 1, 2), 17, 5, 2},
		{isa.ALU(isa.OpMod, 3, 1, 2), 17, 0, 0},
		{isa.AddI(3, 1, 10), 5, 0, 15},
		{isa.MovI(3, -4), 0, 0, -4},
		{isa.Mov(3, 1), 9, 0, 9},
		{isa.Instr{Kind: isa.KindALU, Op: isa.OpShl, Rd: 3, Rs1: 1, Imm: 2}, 3, 0, 12},
		{isa.Instr{Kind: isa.KindALU, Op: isa.OpShr, Rd: 3, Rs1: 1, Imm: 1}, 12, 0, 6},
	}
	for i, tc := range cases {
		c := New(prog(tc.in, isa.Halt()))
		c.SetReg(1, tc.r1)
		c.SetReg(2, tc.r2)
		if _, err := c.Run(0, nil); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := c.Reg(3); got != tc.want {
			t.Errorf("case %d (%s): r3 = %d, want %d", i, tc.in, got, tc.want)
		}
	}
}

// TestLoadStore checks the memory path and event fields.
func TestLoadStore(t *testing.T) {
	p := prog(
		isa.MovI(1, 1000),
		isa.MovI(2, 42),
		isa.Store(1, 8, 2),
		isa.Load(3, 1, 8),
		isa.Halt(),
	)
	c := New(p)
	rec := &trace.Recorder{}
	if _, err := c.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(3); got != 42 {
		t.Fatalf("r3 = %d, want 42", got)
	}
	st := rec.Events[2]
	if st.MemAddr != 1008 || st.MemVal != 42 {
		t.Fatalf("store event: addr=%d val=%d", st.MemAddr, st.MemVal)
	}
	ld := rec.Events[3]
	if !ld.WroteReg || ld.WrittenReg != 3 || ld.WrittenVal != 42 || ld.MemAddr != 1008 {
		t.Fatalf("load event: %+v", ld)
	}
}

// TestBranchTaken checks both branch outcomes and the event facet.
func TestBranchTaken(t *testing.T) {
	p := prog(
		isa.MovI(1, 0),
		isa.Branch(isa.CondEQZ, 1, 4), // taken
		isa.MovI(2, 111),              // skipped
		isa.Nop(),
		isa.Branch(isa.CondNEZ, 1, 0), // not taken
		isa.Halt(),
	)
	c := New(p)
	rec := &trace.Recorder{}
	if _, err := c.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	if c.Reg(2) != 0 {
		t.Fatalf("taken branch executed skipped instruction")
	}
	if ev := rec.Events[1]; !ev.Taken || ev.Target != 4 {
		t.Fatalf("taken branch event: %+v", ev)
	}
	if ev := rec.Events[3]; ev.Taken {
		t.Fatalf("not-taken branch marked taken: %+v", ev)
	}
}

// TestCallRet checks the call stack, including nesting.
func TestCallRet(t *testing.T) {
	p := prog(
		isa.Call(3),    // 0
		isa.MovI(1, 7), // 1: after return
		isa.Halt(),     // 2
		isa.Call(5),    // 3: f calls g
		isa.Ret(),      // 4
		isa.MovI(2, 9), // 5: g
		isa.Ret(),      // 6
	)
	c := New(p)
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 7 || c.Reg(2) != 9 {
		t.Fatalf("r1=%d r2=%d, want 7 9", c.Reg(1), c.Reg(2))
	}
}

// TestRetEmptyStack checks the machine error on underflow.
func TestRetEmptyStack(t *testing.T) {
	c := New(prog(isa.Ret()))
	if _, err := c.Run(0, nil); !errors.Is(err, ErrRetEmpty) {
		t.Fatalf("err = %v, want ErrRetEmpty", err)
	}
}

// TestBudget checks that Run stops exactly at the fuel limit and can be
// resumed.
func TestBudget(t *testing.T) {
	p := prog(
		isa.MovI(1, 0),
		isa.AddI(1, 1, 1),
		isa.Jump(1),
	)
	c := New(p)
	n, err := c.Run(100, nil)
	if err != nil || n != 100 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if c.Retired() != 100 {
		t.Fatalf("retired=%d", c.Retired())
	}
	n, err = c.Run(50, nil)
	if err != nil || n != 50 {
		t.Fatalf("resume: n=%d err=%v", n, err)
	}
}

// TestSeqInstruction checks sequence binding and the unbound default.
func TestSeqInstruction(t *testing.T) {
	p := prog(
		isa.Seq(1, 0),
		isa.Seq(2, 0),
		isa.Seq(3, 99), // unbound: reads 0
		isa.Halt(),
	)
	c := New(p)
	c.BindSeq(0, Counter(10, 5))
	if _, err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Reg(1) != 10 || c.Reg(2) != 15 || c.Reg(3) != 0 {
		t.Fatalf("r1=%d r2=%d r3=%d", c.Reg(1), c.Reg(2), c.Reg(3))
	}
}

// TestDeterminism checks that two runs with identical seeds produce
// identical traces.
func TestDeterminism(t *testing.T) {
	mk := func() (*CPU, *trace.Hash) {
		p := prog(
			isa.Seq(1, 0),
			isa.Branch(isa.CondNEZ, 1, 0),
			isa.Halt(),
		)
		c := New(p)
		c.BindSeq(0, Uniform(0, 3, 12345))
		return c, trace.NewHash()
	}
	c1, h1 := mk()
	c2, h2 := mk()
	if _, err := c1.Run(10000, h1); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(10000, h2); err != nil {
		t.Fatal(err)
	}
	if h1.Sum != h2.Sum {
		t.Fatalf("hash mismatch: %x vs %x", h1.Sum, h2.Sum)
	}
}

// TestMemorySparse checks paging behaviour across distant addresses.
func TestMemorySparse(t *testing.T) {
	var m Memory
	if m.Load(1<<40) != 0 {
		t.Fatal("unwritten memory not zero")
	}
	m.Store(0, 1)
	m.Store(1<<40, 2)
	m.Store((1<<40)+pageSize, 3)
	if m.Load(0) != 1 || m.Load(1<<40) != 2 || m.Load((1<<40)+pageSize) != 3 {
		t.Fatal("paged values lost")
	}
	if m.Footprint() != 3 {
		t.Fatalf("footprint = %d, want 3", m.Footprint())
	}
}

// TestMemoryQuick property: store-then-load returns the stored value for
// arbitrary addresses.
func TestMemoryQuick(t *testing.T) {
	f := func(addr uint64, v int64) bool {
		var m Memory
		m.Store(addr, v)
		return m.Load(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSequences checks the distributional properties of each generator.
func TestSequences(t *testing.T) {
	t.Run("counter", func(t *testing.T) {
		s := Counter(3, -2)
		for i, want := range []int64{3, 1, -1, -3} {
			if got := s.Next(); got != want {
				t.Fatalf("draw %d = %d, want %d", i, got, want)
			}
		}
	})
	t.Run("cycle", func(t *testing.T) {
		s := Cycle(4, 8)
		for i, want := range []int64{4, 8, 4, 8, 4} {
			if got := s.Next(); got != want {
				t.Fatalf("draw %d = %d, want %d", i, got, want)
			}
		}
	})
	t.Run("uniform-range", func(t *testing.T) {
		s := Uniform(5, 9, 7)
		for i := 0; i < 1000; i++ {
			v := s.Next()
			if v < 5 || v > 9 {
				t.Fatalf("uniform out of range: %d", v)
			}
		}
	})
	t.Run("geometric-mean", func(t *testing.T) {
		s := Geometric(1, 0.8, 0, 11)
		var sum int64
		n := 20000
		for i := 0; i < n; i++ {
			sum += s.Next()
		}
		mean := float64(sum) / float64(n)
		// E[v] = 1 + p/(1-p) = 5 for p=0.8.
		if mean < 4.0 || mean > 6.0 {
			t.Fatalf("geometric mean = %.2f, want ~5", mean)
		}
	})
	t.Run("mix-weights", func(t *testing.T) {
		s := Mix(3, []int64{1, 3}, Const(0), Const(1))
		ones := 0
		n := 20000
		for i := 0; i < n; i++ {
			if s.Next() == 1 {
				ones++
			}
		}
		frac := float64(ones) / float64(n)
		if frac < 0.70 || frac > 0.80 {
			t.Fatalf("mix fraction = %.3f, want ~0.75", frac)
		}
	})
	t.Run("noisy-floor", func(t *testing.T) {
		s := Noisy(Const(1), 5, 1.0, 9)
		for i := 0; i < 1000; i++ {
			if v := s.Next(); v < 1 {
				t.Fatalf("noisy went below 1: %d", v)
			}
		}
	})
	t.Run("const", func(t *testing.T) {
		s := Const(7)
		if s.Next() != 7 || s.Next() != 7 {
			t.Fatal("const not constant")
		}
	})
}

// TestPCOutOfRange checks the machine check for runaway PCs.
func TestPCOutOfRange(t *testing.T) {
	c := New(prog(isa.Nop())) // falls off the end
	if _, err := c.Run(0, nil); !errors.Is(err, ErrPC) {
		t.Fatalf("err = %v, want ErrPC", err)
	}
}

// TestCallDepthLimit checks the recursion guard.
func TestCallDepthLimit(t *testing.T) {
	c := New(prog(isa.Call(0)))
	if _, err := c.Run(0, nil); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", err)
	}
}
