package interp

import (
	"errors"
	"reflect"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// fusionProg builds a program that exercises every superinstruction
// pattern (each pair commented), plus branches both ways, call/ret,
// jump, seq, and halt. The loop body runs five times, so fused pairs
// retire repeatedly before the program falls through to the call tail.
func fusionProg() *program.Program {
	return prog(
		isa.MovI(1, 0),                  // 0
		isa.MovI(3, 1000),               // 1
		isa.AddI(1, 1, 1),               // 2: loop head (branch target)
		isa.AddI(4, 1, 2),               // 3:   addi+addi
		isa.ALU(isa.OpAdd, 5, 1, 4),     // 4
		isa.ALU(isa.OpAdd, 6, 5, 1),     // 5:   add+add
		isa.ALU(isa.OpAdd, 7, 5, 6),     // 6
		isa.AddI(7, 7, 3),               // 7:   add+addi
		isa.AddI(8, 7, 1),               // 8
		isa.ALU(isa.OpAdd, 8, 8, 1),     // 9:   addi+add
		isa.MovI(9, 7),                  // 10
		isa.Store(3, 0, 9),              // 11:  movi+st
		isa.Load(10, 3, 0),              // 12
		isa.AddI(10, 10, 1),             // 13: ld+addi
		isa.Load(11, 3, 8),              // 14
		isa.ALU(isa.OpAdd, 11, 11, 1),   // 15: ld+add
		isa.Store(3, 8, 11),             // 16
		isa.Branch(isa.CondEQZ, 12, 19), // 17: st+br, always taken
		isa.Nop(),                       // 18: skipped
		isa.Seq(13, 0),                  // 19: branch target
		isa.AddI(14, 1, -5),             // 20
		isa.Branch(isa.CondLTZ, 14, 2),  // 21: addi+br back edge
		isa.Call(25),                    // 22
		isa.Jump(26),                    // 23: return address
		isa.Nop(),                       // 24
		isa.Ret(),                       // 25
		isa.Halt(),                      // 26
	)
}

func newFusionCPU(reference bool) *CPU {
	c := New(fusionProg())
	c.SetReference(reference)
	c.BindSeq(0, Counter(100, 3))
	return c
}

// TestPredecodeFusionApplied pins that the patterns in fusionProg
// actually predecode to fused micro-ops — without this the equivalence
// tests could pass vacuously against an unfused array.
func TestPredecodeFusionApplied(t *testing.T) {
	ops := predecode(fusionProg(), true)
	want := map[uint64]uint8{
		2: opFuseAddIAddI, 4: opFuseAddAdd, 6: opFuseAddAddI,
		8: opFuseAddIAdd, 10: opFuseMovISt, 12: opFuseLoadAddI,
		14: opFuseLoadAdd, 16: opFuseStBr, 20: opFuseAddIBr,
	}
	for pc, op := range want {
		if ops[pc].op != op {
			t.Errorf("ops[%d].op = %d, want fused op %d", pc, ops[pc].op, op)
		}
		if ops[pc+1].op >= opFuseFirst {
			t.Errorf("ops[%d] fused: pairs must not overlap", pc+1)
		}
	}
}

// TestPredecodeLeadersBlockFusion pins the fusion-safety rule: a pair is
// never formed across a control-flow leader, because the second half
// must not be reachable except by falling out of the first.
func TestPredecodeLeadersBlockFusion(t *testing.T) {
	p := prog(
		isa.AddI(1, 1, 1), // 0
		isa.AddI(2, 2, 1), // 1: jump target — fusing (0,1) would be wrong
		isa.Jump(1),       // 2
	)
	ops := predecode(p, true)
	if ops[0].op >= opFuseFirst {
		t.Fatalf("ops[0] fused across the leader at 1 (op=%d)", ops[0].op)
	}
	// Same shape without the jump: the pair must fuse.
	p2 := prog(isa.AddI(1, 1, 1), isa.AddI(2, 2, 1), isa.Halt())
	if ops2 := predecode(p2, true); ops2[0].op != opFuseAddIAddI {
		t.Fatalf("unguarded pair did not fuse (op=%d)", ops2[0].op)
	}
	// A pair may START at a leader — control entering at the pair's head
	// executes it whole, so only the second slot must not be one. The
	// return address after a call is such a head here.
	p3 := prog(
		isa.Call(3),       // 0
		isa.AddI(1, 1, 1), // 1: return address, head of a legal pair
		isa.AddI(2, 2, 1), // 2
		isa.Ret(),         // 3
	)
	if ops3 := predecode(p3, true); ops3[1].op != opFuseAddIAddI {
		t.Fatalf("pair headed by a leader did not fuse (op=%d)", ops3[1].op)
	}
}

// runStream executes a fresh CPU to completion (or budget) and returns
// the recorded stream plus final machine state.
func runStream(t *testing.T, c *CPU, budget uint64, batch int) ([]trace.Event, uint64, error) {
	t.Helper()
	c.SetBatchSize(batch)
	rec := &trace.Recorder{}
	n, err := c.Run(budget, rec)
	return rec.Events, n, err
}

// TestPredecodeReferenceEquivalence is the core differential test: the
// predecoded+fused path and the reference two-level interpreter must
// emit identical event streams and identical machine state, at every
// batch size (1 forces single-slot retirement of fused pairs) and at
// budgets that cut runs mid-pair.
func TestPredecodeReferenceEquivalence(t *testing.T) {
	for _, batch := range []int{0, 1, 2, 3, 7, 256} {
		for _, budget := range []uint64{0, 1, 3, 7, 50, 101} {
			fused := newFusionCPU(false)
			ref := newFusionCPU(true)
			fe, fn, ferr := runStream(t, fused, budget, batch)
			re, rn, rerr := runStream(t, ref, budget, batch)
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("batch=%d budget=%d: err %v vs %v", batch, budget, ferr, rerr)
			}
			if fn != rn {
				t.Fatalf("batch=%d budget=%d: retired %d vs %d", batch, budget, fn, rn)
			}
			if budget != 0 && fn != budget && !fused.Halted() {
				t.Fatalf("batch=%d budget=%d: stopped at %d before budget without halt", batch, budget, fn)
			}
			if !reflect.DeepEqual(fe, re) {
				for i := range fe {
					if !reflect.DeepEqual(fe[i], re[i]) {
						t.Fatalf("batch=%d budget=%d: event %d differs:\nfused %+v\nref   %+v", batch, budget, i, fe[i], re[i])
					}
				}
				t.Fatalf("batch=%d budget=%d: stream lengths %d vs %d", batch, budget, len(fe), len(re))
			}
			if fused.regs != ref.regs || fused.PC() != ref.PC() || fused.Halted() != ref.Halted() {
				t.Fatalf("batch=%d budget=%d: machine state diverged", batch, budget)
			}
		}
	}
}

// TestPredecodeResumeMidPair pins the budget boundary inside a fused
// pair: stopping with one instruction of budget left retires exactly the
// first constituent, and resuming retires the second — the combined
// stream matching an uncut reference run event for event.
func TestPredecodeResumeMidPair(t *testing.T) {
	// Budget 3 stops mid-pair (events 0,1 are movi/movi, event 2 is the
	// first constituent of the fused addi+addi at pc 2/3).
	fused := newFusionCPU(false)
	rec := &trace.Recorder{}
	n, err := fused.Run(3, rec)
	if err != nil || n != 3 {
		t.Fatalf("first leg: n=%d err=%v", n, err)
	}
	if got := fused.PC(); got != 3 {
		t.Fatalf("mid-pair pc = %d, want 3 (second constituent)", got)
	}
	if _, err := fused.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	ref := newFusionCPU(true)
	rrec := &trace.Recorder{}
	if _, err := ref.Run(0, rrec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Events, rrec.Events) {
		t.Fatalf("resumed stream differs from reference (%d vs %d events)", len(rec.Events), len(rrec.Events))
	}
}

// TestPredecodeNilSink pins the scratch-batch path: executing without a
// sink must produce the same machine state as the reference path.
func TestPredecodeNilSink(t *testing.T) {
	fused := newFusionCPU(false)
	ref := newFusionCPU(true)
	fn, ferr := fused.Run(0, nil)
	rn, rerr := ref.Run(0, nil)
	if ferr != nil || rerr != nil || fn != rn {
		t.Fatalf("n=%d/%d err=%v/%v", fn, rn, ferr, rerr)
	}
	if fused.regs != ref.regs || !fused.Halted() || !ref.Halted() {
		t.Fatalf("nil-sink state diverged")
	}
}

// TestReferenceErrorPaths mirrors the machine-check tests on the
// reference interpreter, which has its own flush-and-return error exits.
func TestReferenceErrorPaths(t *testing.T) {
	run := func(p *program.Program) error {
		c := New(p)
		c.SetReference(true)
		_, err := c.Run(0, &trace.Recorder{})
		return err
	}
	if err := run(prog(isa.Nop())); !errors.Is(err, ErrPC) {
		t.Fatalf("ErrPC: got %v", err)
	}
	if err := run(prog(isa.Ret())); !errors.Is(err, ErrRetEmpty) {
		t.Fatalf("ErrRetEmpty: got %v", err)
	}
	if err := run(prog(isa.Call(0))); !errors.Is(err, ErrCallDepth) {
		t.Fatalf("ErrCallDepth: got %v", err)
	}
}

// segRecorder records segmented deliveries: the copied events plus the
// control indices resolved to absolute stream positions.
type segRecorder struct {
	events []trace.Event
	ctl    []int
}

func (s *segRecorder) ConsumeBatch(evs []trace.Event) { s.events = append(s.events, evs...) }

func (s *segRecorder) ConsumeBatchSegmented(evs []trace.Event, ctl []int32) {
	base := len(s.events)
	s.events = append(s.events, evs...)
	for _, i := range ctl {
		s.ctl = append(s.ctl, base+int(i))
	}
}

// TestPredecodeCtlChannel pins the control-transfer side channel: the
// indices delivered with each batch are exactly the ascending positions
// of branch, jump and return events (calls are not run boundaries), and
// segmented delivery carries the same events as the plain path.
func TestPredecodeCtlChannel(t *testing.T) {
	for _, batch := range []int{1, 3, 1024} {
		seg := &segRecorder{}
		c := newFusionCPU(false)
		c.SetBatchSize(batch)
		if _, err := c.Run(0, seg); err != nil {
			t.Fatal(err)
		}
		plain := &trace.Recorder{}
		c2 := newFusionCPU(false)
		c2.SetBatchSize(batch)
		if _, err := c2.Run(0, plain); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seg.events, plain.Events) {
			t.Fatalf("batch=%d: segmented events differ from plain delivery", batch)
		}
		var want []int
		for i := range seg.events {
			switch seg.events[i].Instr.Kind {
			case isa.KindBranch, isa.KindJump, isa.KindRet:
				want = append(want, i)
			}
		}
		if !reflect.DeepEqual(seg.ctl, want) {
			t.Fatalf("batch=%d: ctl = %v, want %v", batch, seg.ctl, want)
		}
	}
}
