package interp

// Sequence is a deterministic stream of input values. Sequences replace the
// SPEC95 reference input data of the paper: a KindSeq instruction reads the
// next value of a named sequence, and the workload profiles choose sequence
// shapes (constant, strided, cyclic, geometric, uniform) that induce the
// trip-count and live-in-value distributions the paper reports.
type Sequence interface {
	// Next returns the next value of the stream.
	Next() int64
}

// rng is a xorshift64* generator: tiny, fast and deterministic across
// platforms, which is all the substrate needs.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// intn returns a value uniform in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// Const is a Sequence that always yields the same value.
type Const int64

// Next returns the constant.
func (c Const) Next() int64 { return int64(c) }

// counter yields start, start+stride, start+2*stride, ...
type counter struct {
	next, stride int64
}

// Counter returns an arithmetic sequence: start, start+stride, ...
// With stride 0 it is a constant; the LET stride predictor locks onto any
// counter after two observations.
func Counter(start, stride int64) Sequence {
	return &counter{next: start, stride: stride}
}

func (c *counter) Next() int64 {
	v := c.next
	c.next += c.stride
	return v
}

// cycle yields the given values in rotation.
type cycle struct {
	vals []int64
	i    int
}

// Cycle returns a sequence repeating vals forever. It models periodic trip
// counts (e.g. a loop alternating between two lengths), which defeat a
// plain stride predictor but keep a last-value predictor half right.
func Cycle(vals ...int64) Sequence {
	cp := make([]int64, len(vals))
	copy(cp, vals)
	return &cycle{vals: cp}
}

func (c *cycle) Next() int64 {
	if len(c.vals) == 0 {
		return 0
	}
	v := c.vals[c.i]
	c.i++
	if c.i == len(c.vals) {
		c.i = 0
	}
	return v
}

// uniform yields values uniform in [lo, hi].
type uniform struct {
	lo, span int64
	r        *rng
}

// Uniform returns a sequence of values uniform in [lo, hi], seeded
// deterministically. It models data-dependent trip counts (gcc, go, perl).
func Uniform(lo, hi int64, seed uint64) Sequence {
	if hi < lo {
		lo, hi = hi, lo
	}
	return &uniform{lo: lo, span: hi - lo + 1, r: newRNG(seed)}
}

func (u *uniform) Next() int64 { return u.lo + u.r.intn(u.span) }

// geometric yields values with a geometric distribution: P(v=k) ∝ (1-p)^k.
type geometric struct {
	min   int64
	num   uint64 // continue threshold scaled to 2^32
	r     *rng
	limit int64
}

// Geometric returns min + G where G is geometric with continuation
// probability p (0 < p < 1), capped at limit (0 = min+64/(1-p) default cap).
// It models while-loops on data such as hash-chain walks in compress or
// list traversals in li.
func Geometric(min int64, p float64, limit int64, seed uint64) Sequence {
	if p <= 0 {
		p = 0.01
	}
	if p >= 1 {
		p = 0.99
	}
	if limit <= 0 {
		limit = min + int64(64.0/(1.0-p))
	}
	return &geometric{min: min, num: uint64(p * (1 << 32)), r: newRNG(seed), limit: limit}
}

func (g *geometric) Next() int64 {
	v := g.min
	for v < g.limit && (g.r.next()>>32) < g.num {
		v++
	}
	return v
}

// mix alternates between member sequences with given weights.
type mix struct {
	seqs    []Sequence
	weights []int64
	total   int64
	r       *rng
}

// Mix returns a sequence that on every call picks one of seqs with
// probability proportional to its weight. It models multi-modal trip
// counts (a loop that is usually short but sometimes very long).
func Mix(seed uint64, weights []int64, seqs ...Sequence) Sequence {
	if len(weights) != len(seqs) {
		panic("interp.Mix: weights and seqs must have equal length")
	}
	var total int64
	for _, w := range weights {
		total += w
	}
	ws := make([]int64, len(weights))
	copy(ws, weights)
	return &mix{seqs: seqs, weights: ws, total: total, r: newRNG(seed)}
}

func (m *mix) Next() int64 {
	pick := m.r.intn(m.total)
	for i, w := range m.weights {
		if pick < w {
			return m.seqs[i].Next()
		}
		pick -= w
	}
	return m.seqs[len(m.seqs)-1].Next()
}

// noisy adds uniform noise in [-amp, +amp] to a base sequence on a fraction
// of draws. It models mostly-regular trip counts with occasional jitter
// (applu's 54% speculation hit ratio comes from this shape).
type noisy struct {
	base Sequence
	amp  int64
	pnum uint64
	r    *rng
}

// Noisy perturbs base: with probability p the value is shifted by a uniform
// amount in [-amp, amp].
func Noisy(base Sequence, amp int64, p float64, seed uint64) Sequence {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &noisy{base: base, amp: amp, pnum: uint64(p * (1 << 32)), r: newRNG(seed)}
}

func (n *noisy) Next() int64 {
	v := n.base.Next()
	if (n.r.next() >> 32) < n.pnum {
		v += n.r.intn(2*n.amp+1) - n.amp
	}
	if v < 1 {
		v = 1
	}
	return v
}
