package interp

import "testing"

// TestMemoryCacheCounters pins the page-cache accounting: the first
// touch of a page misses, later touches of the same page hit, and the
// widened direct-mapped set keeps several distant hot pages resident at
// once instead of thrashing one entry.
func TestMemoryCacheCounters(t *testing.T) {
	var m Memory

	// A load from a never-written page is a miss and installs nothing.
	if v := m.Load(0); v != 0 {
		t.Fatalf("unwritten load = %d", v)
	}
	if h, ms := m.CacheStats(); h != 0 || ms != 1 {
		t.Fatalf("after cold load: hits=%d misses=%d, want 0/1", h, ms)
	}
	if v := m.Load(0); v != 0 {
		t.Fatalf("unwritten load = %d", v)
	}
	if h, ms := m.CacheStats(); h != 0 || ms != 2 {
		t.Fatalf("unwritten page must keep missing: hits=%d misses=%d", h, ms)
	}

	// First store misses (allocates the page), the rest of the page hits.
	m.Store(0, 1)
	m.Store(8, 2)
	m.Load(0)
	if h, ms := m.CacheStats(); h != 2 || ms != 3 {
		t.Fatalf("same-page traffic: hits=%d misses=%d, want 2/3", h, ms)
	}

	// Interleaved traffic across distant regions (the slot/stack/heap
	// pattern that motivated widening the cache) stays resident: one miss
	// per region, hits thereafter. The cache is direct-mapped, so pick
	// three far-apart bases whose pages land in distinct slots (and off
	// page 0, which is already resident above).
	var regions []uint64
	seen := map[uint64]bool{cacheIdx(0): true}
	for base := uint64(1 << 20); len(regions) < 3; base += 1 << 20 {
		if idx := cacheIdx(base >> pageBits); !seen[idx] {
			seen[idx] = true
			regions = append(regions, base)
		}
	}
	for _, base := range regions {
		m.Store(base, int64(base))
	}
	h0, m0 := m.CacheStats()
	for round := 0; round < 4; round++ {
		for _, base := range regions {
			if v := m.Load(base); v != int64(base) {
				t.Fatalf("region %#x read %d", base, v)
			}
		}
	}
	h1, m1 := m.CacheStats()
	if m1 != m0 {
		t.Fatalf("interleaved hot regions thrashed the cache: %d extra misses", m1-m0)
	}
	if h1-h0 != uint64(4*len(regions)) {
		t.Fatalf("interleaved hot regions: %d hits, want %d", h1-h0, 4*len(regions))
	}

	// Reset drops the pages and the cache but preserves the lifetime
	// counters.
	m.Reset()
	if h, ms := m.CacheStats(); h != h1 || ms != m1 {
		t.Fatalf("Reset clobbered counters: %d/%d vs %d/%d", h, ms, h1, m1)
	}
	if m.Footprint() != 0 {
		t.Fatalf("Reset left %d pages", m.Footprint())
	}
	// And the cache is actually empty: the next access misses.
	m.Load(0)
	if _, ms := m.CacheStats(); ms != m1+1 {
		t.Fatalf("post-Reset access did not miss")
	}
}
