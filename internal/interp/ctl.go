package interp

// The control-plane execution loop. When every attached consumer is
// control-only (trace.PlanesOf(sink) == trace.PlaneCtl), Run dispatches
// here instead of runPre: the same predecoded micro-op semantics, but
// retiring compact trace.CtlEvents — Index, PC, Instr, Taken, Target —
// instead of full Events. That drops the per-instruction store count
// from ~9 to ~4 and halves the batch footprint, which is most of the
// "store floor" the full-plane loop sits on. The control-transfer index
// side channel is always delivered (ConsumeCtlBatch takes it directly),
// so control-only consumers like the loop detector skip straight-line
// runs without a rescan.
//
// Machine state transitions (registers, memory, call stack, sequence
// reads, PC, retired count, halts, machine errors) are byte-identical
// to runPre; only the event representation narrows. Differential tests
// pin that the control facet of the emitted stream matches the full
// path exactly.

import (
	"fmt"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// deliverCtl flushes a control-plane batch; like deliver it is a plain
// function so the hot loop's locals stay register-allocated.
func deliverCtl(sink trace.CtlBatchConsumer, evs []trace.CtlEvent, ctl []int32) {
	if len(evs) > 0 {
		sink.ConsumeCtlBatch(evs, ctl)
	}
}

// stepFusedFirstCtl executes only the first constituent of fused
// micro-op u, filling ev with its control-plane retirement event; the
// control-plane twin of stepFusedFirst, taken when fewer than two
// instructions of budget or two batch slots remain.
func (c *CPU) stepFusedFirstCtl(u *uop, ev *trace.CtlEvent, retired uint64, pc uint64) {
	*ev = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
	regs := &c.regs
	switch u.op {
	case opFuseAddIBr, opFuseAddIAdd, opFuseAddIAddI:
		regs[u.rd] = regs[u.rs1] + u.imm
	case opFuseAddAdd, opFuseAddAddI:
		regs[u.rd] = regs[u.rs1] + regs[u.rs2]
	case opFuseLoadAddI, opFuseLoadAdd, opFuseLoadSt:
		regs[u.rd] = c.mem.Load(uint64(regs[u.rs1] + u.imm))
	case opFuseStBr, opFuseStSt:
		c.mem.Store(uint64(regs[u.rs1]+u.imm), regs[u.rs2])
	default: // opFuseMovISt
		regs[u.rd] = u.imm
	}
}

// runCtl is the control-plane execution loop: runPre with the data-facet
// stores elided. The batch flushes at exactly len(buf) events with its
// control-transfer indices, mid-pair budget/batch cuts single-step fused
// micro-ops identically, and error paths flush buffered events before
// returning — the delivery boundaries match the full-plane loop slot for
// slot.
func (c *CPU) runCtl(budget uint64, sink trace.CtlBatchConsumer, buf []trace.CtlEvent, ctl []int32) (uint64, error) {
	ops := c.ops
	pc := uint64(c.pc)
	retired := c.retired
	start := retired
	regs := &c.regs
	limit := retired + budget
	if budget == 0 || limit < retired {
		limit = ^uint64(0)
	}
	kmax := len(buf)
	k := 0
	// cn counts control-transfer indices recorded in ctl; cn <= k always,
	// so ctl (len >= kmax) never overflows.
	cn := 0
	halted := c.halted
	for !halted && retired < limit {
		if pc >= uint64(len(ops)) {
			deliverCtl(sink, buf[:k], ctl[:cn])
			c.pc, c.retired = isa.Addr(pc), retired
			return retired - start, fmt.Errorf("%w: pc=%d len=%d", ErrPC, isa.Addr(pc), len(ops))
		}
		u := &ops[pc]
		next := pc + 1
		switch u.op {
		case opFuseAddIAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = regs[u.rs1] + u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + u.imm2
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseAddIAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = regs[u.rs1] + u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + regs[u.aux3]
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseAddAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = regs[u.rs1] + regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + u.imm2
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseAddAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = regs[u.rs1] + regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + regs[u.aux3]
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseAddIBr:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = regs[u.rs1] + u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			if condHolds(u.aux, regs[u.rs2]) {
				buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2,
					Taken: true, Target: isa.Addr(u.target)}
				pc = uint64(u.target)
			} else {
				buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				pc += 2
			}
			ctl[cn] = int32(k + 1)
			cn++
			goto tail2
		case opFuseStBr:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			c.mem.Store(uint64(regs[u.rs1]+u.imm), regs[u.rs2])
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			if condHolds(u.aux, regs[u.aux2]) {
				buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2,
					Taken: true, Target: isa.Addr(u.target)}
				pc = uint64(u.target)
			} else {
				buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
				pc += 2
			}
			ctl[cn] = int32(k + 1)
			cn++
			goto tail2
		case opFuseLoadAddI:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = c.mem.Load(uint64(regs[u.rs1] + u.imm))
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + u.imm2
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseLoadAdd:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = c.mem.Load(uint64(regs[u.rs1] + u.imm))
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			regs[u.aux] = regs[u.aux2] + regs[u.rs2]
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseMovISt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			c.mem.Store(uint64(regs[u.rs1]+u.imm2), regs[u.rs2])
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseLoadSt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			regs[u.rd] = c.mem.Load(uint64(regs[u.rs1] + u.imm))
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			c.mem.Store(uint64(regs[u.aux2]+u.imm2), regs[u.aux3])
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opFuseStSt:
			if limit-retired < 2 || kmax-k < 2 {
				c.stepFusedFirstCtl(u, &buf[k], retired, pc)
				goto tail1
			}
			c.mem.Store(uint64(regs[u.rs1]+u.imm), regs[u.rs2])
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			c.mem.Store(uint64(regs[u.aux2]+u.imm2), regs[u.aux3])
			buf[k+1] = trace.CtlEvent{Index: retired + 1, PC: isa.Addr(pc + 1), Instr: u.in2}
			pc += 2
			goto tail2
		case opAddI:
			regs[u.rd] = regs[u.rs1] + u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opAdd:
			regs[u.rd] = regs[u.rs1] + regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opBrEQZ:
			if regs[u.rs1] == 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opBrNEZ:
			if regs[u.rs1] != 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opBrLTZ:
			if regs[u.rs1] < 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opBrGEZ:
			if regs[u.rs1] >= 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opBrGTZ:
			if regs[u.rs1] > 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opBrLEZ:
			if regs[u.rs1] <= 0 {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
					Taken: true, Target: isa.Addr(u.target)}
				next = uint64(u.target)
			} else {
				buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			}
			ctl[cn] = int32(k)
			cn++
		case opLoad:
			regs[u.rd] = c.mem.Load(uint64(regs[u.rs1] + u.imm))
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opStore:
			c.mem.Store(uint64(regs[u.rs1]+u.imm), regs[u.rs2])
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opMovI:
			regs[u.rd] = u.imm
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opMov:
			regs[u.rd] = regs[u.rs1]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opSub:
			regs[u.rd] = regs[u.rs1] - regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opMul:
			regs[u.rd] = regs[u.rs1] * regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opAnd:
			regs[u.rd] = regs[u.rs1] & regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opOr:
			regs[u.rd] = regs[u.rs1] | regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opXor:
			regs[u.rd] = regs[u.rs1] ^ regs[u.rs2]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opShl:
			regs[u.rd] = regs[u.rs1] << uint64(u.imm)
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opShr:
			regs[u.rd] = regs[u.rs1] >> uint64(u.imm)
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opSlt:
			var v int64
			if regs[u.rs1] < regs[u.rs2] {
				v = 1
			}
			regs[u.rd] = v
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opMod:
			var v int64
			if b := regs[u.rs2]; b != 0 {
				v = regs[u.rs1] % b
			}
			regs[u.rd] = v
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opSeq:
			var v int64
			if s, ok := c.seqs[u.imm]; ok {
				v = s.Next()
			}
			regs[u.rd] = v
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		case opJump:
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
				Taken: true, Target: isa.Addr(u.target)}
			next = uint64(u.target)
			ctl[cn] = int32(k)
			cn++
		case opCall:
			if len(c.stack) >= MaxCallDepth {
				deliverCtl(sink, buf[:k], ctl[:cn])
				c.pc, c.retired = isa.Addr(pc), retired
				return retired - start, fmt.Errorf("%w at pc=%d", ErrCallDepth, isa.Addr(pc))
			}
			c.stack = append(c.stack, isa.Addr(pc+1))
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
				Taken: true, Target: isa.Addr(u.target)}
			next = uint64(u.target)
		case opRet:
			if len(c.stack) == 0 {
				deliverCtl(sink, buf[:k], ctl[:cn])
				c.pc, c.retired = isa.Addr(pc), retired
				return retired - start, fmt.Errorf("%w at pc=%d", ErrRetEmpty, isa.Addr(pc))
			}
			ra := c.stack[len(c.stack)-1]
			c.stack = c.stack[:len(c.stack)-1]
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in,
				Taken: true, Target: ra}
			next = uint64(ra)
			ctl[cn] = int32(k)
			cn++
		case opBrNever:
			// Unknown-condition branch: never taken, still a run boundary.
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
			ctl[cn] = int32(k)
			cn++
		case opHalt:
			halted = true
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		default: // opNop
			buf[k] = trace.CtlEvent{Index: retired, PC: isa.Addr(pc), Instr: u.in}
		}
		retired++
		pc = next
		if k++; k == kmax {
			sink.ConsumeCtlBatch(buf, ctl[:cn])
			k, cn = 0, 0
		}
		continue

	tail1: // fused op stepped as its first constituent only
		retired++
		pc++
		if k++; k == kmax {
			sink.ConsumeCtlBatch(buf, ctl[:cn])
			k, cn = 0, 0
		}
		continue

	tail2: // fused op retired whole: two events, two instructions
		retired += 2
		if k += 2; k == kmax {
			sink.ConsumeCtlBatch(buf, ctl[:cn])
			k, cn = 0, 0
		}
	}
	deliverCtl(sink, buf[:k], ctl[:cn])
	c.pc, c.retired, c.halted = isa.Addr(pc), retired, halted
	return retired - start, nil
}
