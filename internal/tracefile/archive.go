package tracefile

// The replay archive: a directory of immutable, CRC-framed recordings,
// one per (benchmark, seed), that serves as the runner's third result
// tier (memory cache → disk store → trace archive → execute). A
// recording made at budget B is budget-prefix truncatable: replay can
// stop after any B' ≤ B events, so one long recording serves every
// shorter budget, and a halted recording serves every budget.
//
// File format (magic "DLTARCH1\n", little-endian, varint-based):
//
//	magic    "DLTARCH1\n"
//	uvarint  archive schema version
//	uvarint  benchmark name length, then that many bytes
//	uvarint  seed
//	program  image (same encoding as the v2 trace file)
//	blocks:  tag 0xFE, uvarint event count, uvarint payload length,
//	         uvarint start pc (the pc of the block's first event),
//	         4-byte little-endian CRC32 (IEEE) of the payload, then
//	         the payload: the template-driven packed event records
//	         (see codec.go) as two planes — one header byte per event,
//	         then the field bytes in event order — sealed with 8 zero
//	         pad bytes so the decoder's unconditional 8-byte field
//	         loads stay in bounds
//	trailer: tag 0xFF, uvarint total event count,
//	         1 byte halted flag (1 = the program halted at that count)
//
// Open-time recovery mirrors internal/store's segment scanner: a torn
// tail (crash mid-append) on the NEWEST file is repaired in place — the
// intact block prefix is kept and a fresh trailer written; torn frames
// on older files and structural damage (bad magic, unparseable header,
// trailer mismatch) surface as ErrCorrupt. Block-level damage (a CRC
// mismatch or an undecodable record inside a CRC-framed block) makes
// that one recording invalid: the file is skipped and counted, the
// lookup misses, and the caller falls back to interpretation and
// re-records over it.
//
// Recordings are held in memory fully validated, so Replay is a pure
// decode of pre-verified bytes: it cannot fail on corruption and runs
// allocation-free with a warmed Decoder.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynloop/internal/program"
	"dynloop/internal/trace"
)

const magicArch = "DLTARCH1\n"

// ArchiveSchemaVersion is the archive's logical schema version,
// embedded in every file header. A reader skips files written under any
// other version (a clean miss, never a stale replay). It is a var so
// tests can prove the bump-misses-archive property.
// Version 2 switched block payloads to the template-driven record
// format (see codec.go): version-1 files are skipped at Open and
// re-recorded on the next miss.
var ArchiveSchemaVersion uint64 = 2

// errInvalid marks a recording whose framing parsed but whose block
// contents are damaged (CRC mismatch or undecodable records). The file
// is skipped at Open so the runner falls back to interpretation and
// re-records it.
var errInvalid = errors.New("tracefile: invalid recording")

// errSchemaSkew marks a recording written under a different archive
// schema version; it is skipped cleanly at Open.
var errSchemaSkew = errors.New("tracefile: archive schema version skew")

type archKey struct {
	bench string
	seed  uint64
}

// blockRef is one CRC-verified block of a loaded recording: the event
// count, the pc of the block's first event (the decoder's pc-chain
// seed) and the payload bytes (a subslice of the recording's file
// image).
type blockRef struct {
	count   uint64
	startPC uint64
	payload []byte
}

// Recording is one fully validated (benchmark, seed) trace held in
// memory, ready for repeated replay.
type Recording struct {
	bench  string
	seed   uint64
	prog   *program.Program
	blocks []blockRef
	events uint64
	halted bool
	// version is the archive schema version the file was written under.
	// Open only loads files matching ArchiveSchemaVersion, so for a live
	// Recording it always equals that — kept per recording so listings
	// state it explicitly rather than inferring it.
	version uint64
	// maxBlock is the largest block event count, the decode buffer size
	// a Decoder needs.
	maxBlock int
	size     int64
	// tmpls is the per-pc decode-template table (see buildTmpls), built
	// once at parse.
	tmpls []evTmpl
}

// Bench returns the benchmark name the recording was made from.
func (r *Recording) Bench() string { return r.bench }

// Seed returns the workload seed the recording was made with.
func (r *Recording) Seed() uint64 { return r.seed }

// Events returns the number of recorded events.
func (r *Recording) Events() uint64 { return r.events }

// Halted reports whether the program halted at Events (in which case
// the recording is complete and serves any budget).
func (r *Recording) Halted() bool { return r.halted }

// Program returns the embedded program image.
func (r *Recording) Program() *program.Program { return r.prog }

// Size returns the recording's file size in bytes.
func (r *Recording) Size() int64 { return r.size }

// Blocks returns the number of CRC-framed blocks.
func (r *Recording) Blocks() int { return len(r.blocks) }

// SchemaVersion returns the archive schema version the recording's file
// was written under.
func (r *Recording) SchemaVersion() uint64 { return r.version }

// Planes returns the event facets replaying the recording can deliver.
// The packed v2 block format carries the header and field planes
// separately, so every loaded recording serves both control-plane-only
// and full-event sinks.
func (r *Recording) Planes() trace.Planes { return trace.PlaneCtl | trace.PlaneData }

// CanServe reports whether replaying the recording reproduces an
// interpreted run at the given budget exactly: either the program
// halted (the stream is complete), or the budget is a non-zero prefix
// of what was recorded. Budget 0 means run-to-halt and needs a halted
// recording.
func (r *Recording) CanServe(budget uint64) bool {
	return r.halted || (budget > 0 && budget <= r.events)
}

// decodeBatch is the replay sub-batch size: blocks decode and deliver
// in chunks of this many events so the decoded batch (~64 KiB) plus the
// consumer's working set stay cache-resident — a whole block decodes to
// several hundred KiB. It matches the interpreter's DefaultBatchSize.
const decodeBatch = 1024

// Decoder holds the reusable event buffers for Replay. The zero value
// is ready to use; the first Replay warms it and subsequent replays do
// not allocate. Full-plane and control-plane replays use separate event
// buffers, so a decoder serving only control-plane sinks never
// allocates the (5x larger) full-event buffer.
type Decoder struct {
	evs    []trace.Event
	ctlEvs []trace.CtlEvent
	ctl    []int32
}

// Replay streams the first min(budget, Events) recorded events to sink
// in one batch per block (the final block possibly partial, when the
// budget cuts it). Budget 0 replays everything. It returns the events
// delivered and whether that count is a halt point, mirroring an
// interpreted run's result. The batch buffer is reused between blocks;
// consumers must copy what they keep. Blocks were CRC- and
// decode-verified at load, so decoding cannot fail; any residual decode
// error reports a software bug via ErrCorrupt.
//
// Replay negotiates event facets exactly as the interpreter's Run does:
// a sink that accepts control-plane batches and needs only the control
// facet is served by the header-plane-only decoder (decodeEventsCtl),
// which never materializes value fields at all.
func (r *Recording) Replay(budget uint64, d *Decoder, sink trace.BatchConsumer) (uint64, bool, error) {
	if d == nil {
		d = &Decoder{}
	}
	start := time.Now()
	if sink != nil {
		if cc, ok := sink.(trace.CtlBatchConsumer); ok && trace.PlanesOf(sink) == trace.PlaneCtl {
			n, halted, err := r.replayCtl(budget, d, cc)
			finishReplay(start, n, true)
			return n, halted, err
		}
	}
	n, halted, err := r.replayFull(budget, d, sink)
	finishReplay(start, n, false)
	return n, halted, err
}

// replayFull is the full-event replay loop behind Replay.
func (r *Recording) replayFull(budget uint64, d *Decoder, sink trace.BatchConsumer) (uint64, bool, error) {
	limit := r.events
	if budget != 0 && budget < limit {
		limit = budget
	}
	if d.evs == nil {
		d.evs = make([]trace.Event, decodeBatch)
	}
	if d.ctl == nil {
		d.ctl = make([]int32, decodeBatch)
	}
	// Segmentation-capable sinks get each block's run boundaries as a
	// side channel, collected during the decode itself (one template-
	// flag test per event) so the consumer skips its own kind scan.
	seg, _ := sink.(trace.SegmentedBatchConsumer)
	ctl := d.ctl
	if seg == nil {
		ctl = nil
	}
	var n uint64
	for i := range r.blocks {
		b := &r.blocks[i]
		take := b.count
		if n+take > limit {
			take = limit - n
		}
		if take == 0 {
			break
		}
		// Decode the block in cache-sized sub-batches: a whole block is
		// several hundred KiB of decoded events, which would stream the
		// consumer's working set out of cache between decode and
		// consumption.
		wholeBlock := take == b.count
		hlim := int(b.count)
		hpos, vpos, pc := 0, hlim, b.startPC
		for take > 0 {
			chunk := take
			if chunk > decodeBatch {
				chunk = decodeBatch
			}
			evs := d.evs[:chunk]
			last := wholeBlock && chunk == take
			var cn int
			var err error
			hpos, vpos, pc, cn, err = decodeEventsPacked(b.payload, hpos, hlim, vpos, pc, evs, n, r.tmpls, last, ctl)
			if err != nil {
				return n, false, fmt.Errorf("verified block %d failed to decode: %w", i, err)
			}
			if seg != nil {
				seg.ConsumeBatchSegmented(evs, d.ctl[:cn])
			} else if sink != nil {
				sink.ConsumeBatch(evs)
			}
			n += uint64(chunk)
			take -= uint64(chunk)
		}
		if n == limit {
			break
		}
	}
	return n, r.halted && n == r.events, nil
}

// replayCtl is the control-plane replay loop: the same block/chunk
// structure as Replay, but decoding header-plane-only control events.
// The run-boundary side channel is collected as a byproduct and always
// delivered. Blocks were full-decode-verified at load, so this path
// skips the end-of-block revalidation.
func (r *Recording) replayCtl(budget uint64, d *Decoder, sink trace.CtlBatchConsumer) (uint64, bool, error) {
	limit := r.events
	if budget != 0 && budget < limit {
		limit = budget
	}
	if d.ctlEvs == nil {
		d.ctlEvs = make([]trace.CtlEvent, decodeBatch)
	}
	if d.ctl == nil {
		d.ctl = make([]int32, decodeBatch)
	}
	var n uint64
	for i := range r.blocks {
		b := &r.blocks[i]
		take := b.count
		if n+take > limit {
			take = limit - n
		}
		if take == 0 {
			break
		}
		hlim := int(b.count)
		hpos, vpos, pc := 0, hlim, b.startPC
		for take > 0 {
			chunk := take
			if chunk > decodeBatch {
				chunk = decodeBatch
			}
			evs := d.ctlEvs[:chunk]
			var cn int
			var err error
			hpos, vpos, pc, cn, err = decodeEventsCtl(b.payload, hpos, hlim, vpos, pc, evs, n, r.tmpls, d.ctl)
			if err != nil {
				return n, false, fmt.Errorf("verified block %d failed to decode: %w", i, err)
			}
			sink.ConsumeCtlBatch(evs, d.ctl[:cn])
			n += uint64(chunk)
			take -= uint64(chunk)
		}
		if n == limit {
			break
		}
	}
	return n, r.halted && n == r.events, nil
}

// ArchiveStats reports the archive's load-time recovery actions and
// lifetime record activity.
type ArchiveStats struct {
	// Recordings is the number of recordings currently loaded.
	Recordings int
	// Records counts successful Recorder commits in this process.
	Records uint64
	// Invalidated counts files skipped at Open for block-level damage
	// (the runner falls back to interpretation and re-records them).
	Invalidated uint64
	// SchemaSkips counts files skipped at Open for schema version skew.
	SchemaSkips uint64
	// TruncatedTail counts bytes discarded repairing a torn newest file.
	TruncatedTail uint64
}

// Archive is a directory of recordings plus the in-memory index over
// them. All methods are safe for concurrent use.
type Archive struct {
	dir string

	mu    sync.Mutex
	recs  map[archKey]*Recording
	locks map[archKey]chan struct{}

	records     atomic.Uint64
	invalidated atomic.Uint64
	schemaSkips atomic.Uint64
	truncated   atomic.Uint64
}

// OpenArchive opens (creating if needed) the archive directory, loading
// and validating every recording in it. A torn tail on the newest file
// is repaired in place; block-level damage invalidates just that
// recording; structural damage elsewhere returns an error wrapping
// ErrCorrupt.
func OpenArchive(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Archive{
		dir:   dir,
		recs:  make(map[archKey]*Recording),
		locks: make(map[archKey]chan struct{}),
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.dltrace"))
	if err != nil {
		return nil, err
	}
	type fileInfo struct {
		path string
		mod  int64
	}
	files := make([]fileInfo, 0, len(names))
	for _, p := range names {
		fi, err := os.Stat(p)
		if err != nil || fi.IsDir() {
			continue
		}
		files = append(files, fileInfo{p, fi.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].path < files[j].path
	})
	for i, f := range files {
		newest := i == len(files)-1
		data, err := os.ReadFile(f.path)
		if err != nil {
			return nil, err
		}
		rec, tornAt, err := parseArchive(data)
		switch {
		case errors.Is(err, errSchemaSkew):
			a.schemaSkips.Add(1)
			mArchSchemaSkips.Inc()
			continue
		case errors.Is(err, errInvalid):
			a.invalidated.Add(1)
			mArchInvalidated.Inc()
			continue
		case err != nil:
			return nil, fmt.Errorf("%s: %w", f.path, err)
		}
		if tornAt >= 0 {
			if !newest {
				return nil, fmt.Errorf("%s: %w: torn frame at byte %d in non-newest file", f.path, ErrCorrupt, tornAt)
			}
			a.truncated.Add(uint64(len(data) - tornAt))
			mArchTruncatedBytes.Add(uint64(len(data) - tornAt))
			if rec == nil {
				// Torn inside the header: nothing salvageable.
				if err := os.Remove(f.path); err != nil {
					return nil, err
				}
				continue
			}
			if err := repairTornTail(f.path, int64(tornAt), rec.events); err != nil {
				return nil, err
			}
			rec.size = int64(tornAt) + trailerLen(rec.events)
		}
		a.recs[archKey{rec.bench, rec.seed}] = rec
	}
	return a, nil
}

// trailerLen returns the encoded trailer size for an event count.
func trailerLen(events uint64) int64 {
	var buf [binary.MaxVarintLen64]byte
	return int64(1 + binary.PutUvarint(buf[:], events) + 1)
}

// repairTornTail truncates the file to the last intact block and writes
// a fresh non-halted trailer, mirroring the result store's torn-tail
// recovery.
func repairTornTail(path string, tornAt int64, events uint64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(tornAt); err != nil {
		return err
	}
	var frame [2 + binary.MaxVarintLen64]byte
	frame[0] = tagTrailer
	n := 1 + binary.PutUvarint(frame[1:], events)
	frame[n] = 0 // not halted: the tail beyond the tear is gone
	n++
	if _, err := f.WriteAt(frame[:n], tornAt); err != nil {
		return err
	}
	return f.Sync()
}

// parseArchive parses and fully validates one archive file image.
//
// Returns (rec, -1, nil) for a clean file. A torn tail — the data ends
// mid-frame with everything before it intact — returns tornAt ≥ 0 and a
// nil error; rec then holds the intact block prefix (not halted), or is
// nil when the tear is inside the header. Block-level damage returns
// errInvalid, version skew errSchemaSkew, and structural damage an
// error wrapping ErrCorrupt.
func parseArchive(data []byte) (*Recording, int, error) {
	if len(data) < len(magicArch) {
		if string(data) == magicArch[:len(data)] {
			return nil, 0, nil // torn inside the magic
		}
		return nil, -1, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if string(data[:len(magicArch)]) != magicArch {
		return nil, -1, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	br := bytes.NewReader(data[len(magicArch):])
	pos := func() int { return len(data) - br.Len() }

	version, err := binary.ReadUvarint(br)
	if err != nil {
		return headerErr(err, "schema version")
	}
	if version != ArchiveSchemaVersion {
		return nil, -1, fmt.Errorf("%w: file version %d, want %d", errSchemaSkew, version, ArchiveSchemaVersion)
	}
	benchLen, err := binary.ReadUvarint(br)
	if err != nil {
		return headerErr(err, "benchmark name")
	}
	if benchLen > maxBlockBytes {
		return nil, -1, fmt.Errorf("%w: benchmark name length %d", ErrCorrupt, benchLen)
	}
	bench := make([]byte, benchLen)
	if _, err := io.ReadFull(br, bench); err != nil {
		return headerErr(err, "benchmark name bytes")
	}
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return headerErr(err, "seed")
	}
	prog, err := readProgram(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, nil // torn inside the program image
		}
		return nil, -1, err
	}

	rec := &Recording{
		bench:   string(bench),
		seed:    seed,
		prog:    prog,
		version: version,
		size:    int64(len(data)),
		tmpls:   buildTmpls(prog.Code),
	}
	var scratch Decoder
	for {
		frameStart := pos()
		if frameStart >= len(data) {
			return rec, frameStart, nil // missing trailer: torn right after a block
		}
		tag := data[frameStart]
		br.Seek(1, io.SeekCurrent)
		switch tag {
		case tagTrailer:
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, frameStart, nil // torn inside the trailer
			}
			haltedByte, err := br.ReadByte()
			if err != nil {
				return rec, frameStart, nil
			}
			if count != rec.events {
				return nil, -1, fmt.Errorf("%w: trailer count %d != %d", ErrCorrupt, count, rec.events)
			}
			if br.Len() != 0 {
				return nil, -1, fmt.Errorf("%w: %d bytes after trailer", ErrCorrupt, br.Len())
			}
			rec.halted = haltedByte != 0
			return rec, -1, nil
		case tagBlock:
			count, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, frameStart, nil
			}
			size, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, frameStart, nil
			}
			startPC, err := binary.ReadUvarint(br)
			if err != nil {
				return rec, frameStart, nil
			}
			// Every event owns one header-plane byte and the field plane
			// ends with blockPad padding, so size >= count+blockPad; the
			// decoder's header reads rely on this frame check.
			if size > maxBlockBytes || count == 0 || size < blockPad || count > size-blockPad {
				return nil, -1, fmt.Errorf("%w: block header (%d events, %d bytes)", ErrCorrupt, count, size)
			}
			if uint64(br.Len()) < 4+size {
				return rec, frameStart, nil // torn inside the block body
			}
			p := pos()
			crc := binary.LittleEndian.Uint32(data[p : p+4])
			payload := data[p+4 : p+4+int(size)]
			br.Seek(int64(4+size), io.SeekCurrent)
			if crc32.ChecksumIEEE(payload) != crc {
				return nil, -1, fmt.Errorf("%w: block CRC mismatch at byte %d", errInvalid, frameStart)
			}
			if scratch.evs == nil {
				scratch.evs = make([]trace.Event, decodeBatch)
			}
			hpos, vpos, vpc, left := 0, int(count), startPC, count
			for left > 0 {
				chunk := left
				if chunk > decodeBatch {
					chunk = decodeBatch
				}
				var verr error
				hpos, vpos, vpc, _, verr = decodeEventsPacked(payload, hpos, int(count), vpos, vpc, scratch.evs[:chunk], rec.events+count-left, rec.tmpls, chunk == left, nil)
				if verr != nil {
					return nil, -1, fmt.Errorf("%w: %v", errInvalid, verr)
				}
				left -= chunk
			}
			rec.blocks = append(rec.blocks, blockRef{count: count, startPC: startPC, payload: payload})
			rec.events += count
			if int(count) > rec.maxBlock {
				rec.maxBlock = int(count)
			}
		default:
			return nil, -1, fmt.Errorf("%w: unexpected tag %#x at byte %d", ErrCorrupt, tag, frameStart)
		}
	}
}

// headerErr classifies a failed header-field read: a truncated source is
// a torn tail (recoverable on the newest file), anything else is
// structural corruption.
func headerErr(err error, what string) (*Recording, int, error) {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, 0, nil
	}
	return nil, -1, fmt.Errorf("%w: %s: %v", ErrCorrupt, what, err)
}

// Lookup returns the loaded recording for (bench, seed), if any.
func (a *Archive) Lookup(bench string, seed uint64) (*Recording, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.recs[archKey{bench, seed}]
	return rec, ok
}

// Invalidate drops the in-memory recording for (bench, seed), forcing
// the next lookup to miss (and the caller to re-record).
func (a *Archive) Invalidate(bench string, seed uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.recs, archKey{bench, seed})
}

// Lock acquires the single-flight record lock for (bench, seed),
// returning the unlock function. Concurrent missers of the same key
// serialize here so exactly one records; the waiters re-check the
// archive once they acquire it and replay the fresh recording instead.
func (a *Archive) Lock(ctx context.Context, bench string, seed uint64) (func(), error) {
	k := archKey{bench, seed}
	a.mu.Lock()
	ch, ok := a.locks[k]
	if !ok {
		ch = make(chan struct{}, 1)
		a.locks[k] = ch
	}
	a.mu.Unlock()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case ch <- struct{}{}:
		return func() { <-ch }, nil
	case <-done:
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the archive's counters.
func (a *Archive) Stats() ArchiveStats {
	a.mu.Lock()
	n := len(a.recs)
	a.mu.Unlock()
	return ArchiveStats{
		Recordings:    n,
		Records:       a.records.Load(),
		Invalidated:   a.invalidated.Load(),
		SchemaSkips:   a.schemaSkips.Load(),
		TruncatedTail: a.truncated.Load(),
	}
}

// Recordings returns the loaded recordings sorted by (bench, seed), for
// listings.
func (a *Archive) Recordings() []*Recording {
	a.mu.Lock()
	out := make([]*Recording, 0, len(a.recs))
	for _, r := range a.recs {
		out = append(out, r)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].bench != out[j].bench {
			return out[i].bench < out[j].bench
		}
		return out[i].seed < out[j].seed
	})
	return out
}

// recPath is the canonical file name for a key; the benchmark name is
// hex-escaped so arbitrary names stay filesystem-safe, and re-recording
// a key atomically replaces the same file.
func (a *Archive) recPath(bench string, seed uint64) string {
	return filepath.Join(a.dir, fmt.Sprintf("t-%x-s%d.dltrace", bench, seed))
}

// Recorder streams one run's events into a temporary archive file;
// Commit atomically installs it, Abort discards it. It implements
// trace.BatchConsumer (and trace.Consumer) so it can ride a BatchTee
// next to the live passes.
type Recorder struct {
	a     *Archive
	bench string
	seed  uint64
	path  string

	f *os.File
	w *bufio.Writer
	// hdr and val are the pending block's header and field planes (see
	// the packed-format comment in codec.go); flushBlock writes them
	// back to back under one CRC.
	hdr         []byte
	val         []byte
	blockEvents uint64
	// blockStartPC is the pc of the pending block's first event: the
	// decoder's pc-chain seed, written into the block frame.
	blockStartPC uint64
	events       uint64
	err          error
	closed       bool
}

// BeginRecord opens a temporary file and writes the archive header for
// a (bench, seed) recording of prog. The caller streams events into the
// returned Recorder and must finish with exactly one Commit or Abort.
func BeginRecord(a *Archive, bench string, seed uint64, prog *program.Program) (*Recorder, error) {
	f, err := os.CreateTemp(a.dir, ".rec-*")
	if err != nil {
		return nil, err
	}
	rec := &Recorder{
		a:     a,
		bench: bench,
		seed:  seed,
		path:  f.Name(),
		f:     f,
		w:     bufio.NewWriterSize(f, 1<<16),
	}
	head := make([]byte, 0, 64+len(bench)+16*len(prog.Code))
	head = append(head, magicArch...)
	head = binary.AppendUvarint(head, ArchiveSchemaVersion)
	head = binary.AppendUvarint(head, uint64(len(bench)))
	head = append(head, bench...)
	head = binary.AppendUvarint(head, seed)
	head = appendProgram(head, prog)
	if _, err := rec.w.Write(head); err != nil {
		rec.discard()
		return nil, err
	}
	return rec, nil
}

// BeginRecord is the method form of the package-level BeginRecord.
func (a *Archive) BeginRecord(bench string, seed uint64, prog *program.Program) (*Recorder, error) {
	return BeginRecord(a, bench, seed, prog)
}

// Consume implements trace.Consumer.
func (rec *Recorder) Consume(ev *trace.Event) {
	if rec.err != nil {
		return
	}
	if rec.blockEvents == 0 {
		rec.blockStartPC = uint64(ev.PC)
	}
	rec.hdr, rec.val = appendEventPacked(rec.hdr, rec.val, ev)
	rec.blockEvents++
	rec.events++
	if len(rec.hdr)+len(rec.val) >= blockTarget {
		rec.flushBlock()
	}
}

// ConsumeBatch implements trace.BatchConsumer.
func (rec *Recorder) ConsumeBatch(evs []trace.Event) {
	if rec.err != nil {
		return
	}
	for i := range evs {
		if rec.blockEvents == 0 {
			rec.blockStartPC = uint64(evs[i].PC)
		}
		rec.hdr, rec.val = appendEventPacked(rec.hdr, rec.val, &evs[i])
		rec.blockEvents++
		if len(rec.hdr)+len(rec.val) >= blockTarget {
			rec.flushBlock()
			if rec.err != nil {
				return
			}
		}
	}
	rec.events += uint64(len(evs))
}

// flushBlock seals the pending block — header plane, field plane, pad —
// behind its CRC frame.
func (rec *Recorder) flushBlock() {
	if rec.err != nil || rec.blockEvents == 0 {
		return
	}
	// Pad inside the CRC so replay's 8-byte field loads never run off
	// the payload; the decoder verifies the padding is intact.
	rec.val = append(rec.val, 0, 0, 0, 0, 0, 0, 0, 0)
	crc := crc32.Update(crc32.Update(0, crc32.IEEETable, rec.hdr), crc32.IEEETable, rec.val)
	var frame [1 + 3*binary.MaxVarintLen64 + 4]byte
	frame[0] = tagBlock
	n := 1
	n += binary.PutUvarint(frame[n:], rec.blockEvents)
	n += binary.PutUvarint(frame[n:], uint64(len(rec.hdr)+len(rec.val)))
	n += binary.PutUvarint(frame[n:], rec.blockStartPC)
	binary.LittleEndian.PutUint32(frame[n:], crc)
	n += 4
	if _, err := rec.w.Write(frame[:n]); err != nil {
		rec.err = err
		return
	}
	if _, err := rec.w.Write(rec.hdr); err != nil {
		rec.err = err
		return
	}
	if _, err := rec.w.Write(rec.val); err != nil {
		rec.err = err
		return
	}
	rec.hdr, rec.val = rec.hdr[:0], rec.val[:0]
	rec.blockEvents = 0
}

// Events returns the number of events recorded so far.
func (rec *Recorder) Events() uint64 { return rec.events }

func (rec *Recorder) discard() {
	if rec.closed {
		return
	}
	rec.closed = true
	rec.f.Close()
	os.Remove(rec.path)
}

// Abort discards the partial recording.
func (rec *Recorder) Abort() { rec.discard() }

// Commit seals the recording (trailer, fsync), atomically renames it
// into place, and installs the validated recording in the archive
// index. The committed file is re-parsed through the same validator
// Open uses, so a writer bug can never install an unreplayable stream.
func (rec *Recorder) Commit(halted bool) error {
	if rec.closed {
		return errors.New("tracefile: recorder already closed")
	}
	rec.flushBlock()
	if rec.err != nil {
		rec.discard()
		return rec.err
	}
	var frame [2 + binary.MaxVarintLen64]byte
	frame[0] = tagTrailer
	n := 1 + binary.PutUvarint(frame[1:], rec.events)
	if halted {
		frame[n] = 1
	}
	n++
	if _, err := rec.w.Write(frame[:n]); err != nil {
		rec.discard()
		return err
	}
	if err := rec.w.Flush(); err != nil {
		rec.discard()
		return err
	}
	if err := rec.f.Sync(); err != nil {
		rec.discard()
		return err
	}
	if err := rec.f.Close(); err != nil {
		rec.closed = true
		os.Remove(rec.path)
		return err
	}
	rec.closed = true
	data, err := os.ReadFile(rec.path)
	if err != nil {
		os.Remove(rec.path)
		return err
	}
	loaded, tornAt, err := parseArchive(data)
	if err != nil || tornAt >= 0 {
		os.Remove(rec.path)
		return fmt.Errorf("tracefile: fresh recording failed validation (torn at %d): %w", tornAt, err)
	}
	final := rec.a.recPath(rec.bench, rec.seed)
	if err := os.Rename(rec.path, final); err != nil {
		os.Remove(rec.path)
		return err
	}
	rec.a.mu.Lock()
	rec.a.recs[archKey{rec.bench, rec.seed}] = loaded
	rec.a.mu.Unlock()
	rec.a.records.Add(1)
	mArchRecords.Inc()
	return nil
}
