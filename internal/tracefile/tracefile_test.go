package tracefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// record produces a unit, runs it to completion through a Writer, and
// returns the file bytes plus the live-recorded control-flow hash.
func record(t *testing.T) (*builder.Unit, []byte, uint64, uint64) {
	t.Helper()
	b := builder.New("tf", 5)
	trip := b.UniformSeq(1, 7)
	b.MovI(24, builder.HeapBase)
	b.CountedLoop(builder.TripImm(30), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripSeq(trip), builder.LoopOpt{}, func() {
			b.WorkMem(6, 24, 8)
		})
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, u.Prog)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHash()
	cpu := u.NewCPU()
	n, err := cpu.Run(0, trace.Tee{w, h})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != n {
		t.Fatalf("writer recorded %d of %d", w.Events(), n)
	}
	return u, buf.Bytes(), h.Sum, n
}

// TestRoundTrip: replaying the file must reproduce the exact stream
// (hash over control flow) and the exact loop events.
func TestRoundTrip(t *testing.T) {
	u, data, liveHash, n := record(t)

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Program().Name != "tf" || r.Program().Len() != u.Prog.Len() {
		t.Fatalf("embedded program mismatch")
	}
	h := trace.NewHash()
	got, err := r.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d of %d events", got, n)
	}
	if h.Sum != liveHash {
		t.Fatalf("replay hash %x != live hash %x", h.Sum, liveHash)
	}
}

// TestReplayDrivesDetector: detector results from the file must equal
// detector results from live execution.
func TestReplayDrivesDetector(t *testing.T) {
	u, data, _, _ := record(t)

	live := loopdet.New(loopdet.Config{Capacity: 16})
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, live); err != nil {
		t.Fatal(err)
	}
	live.Flush()

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	replayed := loopdet.New(loopdet.Config{Capacity: 16})
	if _, err := r.Replay(replayed); err != nil {
		t.Fatal(err)
	}
	replayed.Flush()

	if live.Stats() != replayed.Stats() {
		t.Fatalf("detector stats diverge:\nlive:   %+v\nreplay: %+v",
			live.Stats(), replayed.Stats())
	}
}

// TestTruncation: every cut of the file either fails header parsing or
// reports a corrupt stream — never a silent short read.
func TestTruncation(t *testing.T) {
	_, data, _, _ := record(t)
	for _, cut := range []int{0, 3, len(magicV2), len(magicV2) + 5, len(data) / 2, len(data) - 1} {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			continue // header already rejected: fine
		}
		if _, err := r.Replay(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: replay err = %v, want ErrCorrupt", cut, err)
		}
	}
}

// encodeV1 builds a legacy (unframed, "DLTRACE1") trace file from
// recorded events, to prove the reader still accepts the old format.
func encodeV1(p *program.Program, evs []trace.Event) []byte {
	buf := []byte(magicV1)
	buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.AppendUvarint(buf, uint64(p.Entry))
	buf = binary.AppendUvarint(buf, uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		buf = binary.AppendUvarint(buf, uint64(in.Kind))
		buf = binary.AppendUvarint(buf, uint64(in.Op))
		buf = binary.AppendUvarint(buf, uint64(in.Cond))
		buf = binary.AppendUvarint(buf, uint64(in.Rd))
		buf = binary.AppendUvarint(buf, uint64(in.Rs1))
		buf = binary.AppendUvarint(buf, uint64(in.Rs2))
		buf = binary.AppendVarint(buf, in.Imm)
		buf = binary.AppendUvarint(buf, uint64(in.Target))
	}
	for i := range evs {
		ev := &evs[i]
		var tag byte
		if ev.Taken {
			tag |= tagTaken
		}
		if ev.WroteReg {
			tag |= tagWroteReg
		}
		hasMem := ev.Instr.Kind == isa.KindLoad || ev.Instr.Kind == isa.KindStore
		if hasMem {
			tag |= tagHasMem
		}
		buf = append(buf, tag)
		buf = binary.AppendUvarint(buf, uint64(ev.PC))
		if ev.Taken {
			buf = binary.AppendUvarint(buf, uint64(ev.Target))
		}
		if ev.WroteReg {
			buf = binary.AppendUvarint(buf, uint64(ev.WrittenReg))
			buf = binary.AppendVarint(buf, ev.WrittenVal)
		}
		if hasMem {
			buf = binary.AppendUvarint(buf, ev.MemAddr)
			buf = binary.AppendVarint(buf, ev.MemVal)
		}
	}
	buf = append(buf, tagTrailer)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	return buf
}

// TestV1BackwardCompat: a legacy v1 file must replay with the same
// stream hash and detector results as the v2 recording of the same run.
func TestV1BackwardCompat(t *testing.T) {
	u, _, liveHash, n := record(t)
	rec := &trace.Recorder{}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	data := encodeV1(u.Prog, rec.Events)

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !r.v1 {
		t.Fatal("reader did not detect the v1 format")
	}
	h := trace.NewHash()
	got, err := r.Replay(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("replayed %d of %d events", got, n)
	}
	if h.Sum != liveHash {
		t.Fatalf("v1 replay hash %x != live hash %x", h.Sum, liveHash)
	}
}

// TestBadMagic rejects foreign files.
func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCorruptTrailerCount: flipping the trailer count must be caught.
func TestCorruptTrailerCount(t *testing.T) {
	_, data, _, _ := record(t)
	// The trailer count is the very last varint; corrupt its low byte.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x01
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
