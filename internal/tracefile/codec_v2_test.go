package tracefile

import (
	"math"
	"reflect"
	"testing"

	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// recordProgram runs p to completion, recording into a fresh archive and
// teeing every live event into a Recorder, then returns the replayed
// stream alongside the live one.
func recordProgram(t *testing.T, p *program.Program) (live, replayed []trace.Event, halted bool) {
	t.Helper()
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.BeginRecord(p.Name, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	lr := &trace.Recorder{}
	cpu := interp.New(p)
	if _, err := cpu.Run(0, trace.Tee{rec, lr}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Commit(cpu.Halted()); err != nil {
		t.Fatal(err)
	}
	r, ok := a.Lookup(p.Name, 1)
	if !ok {
		t.Fatal("recording not installed")
	}
	rr := &trace.Recorder{}
	if _, h, err := r.Replay(0, nil, rr); err != nil {
		t.Fatal(err)
	} else if h != cpu.Halted() {
		t.Fatalf("replay halted=%v, live halted=%v", h, cpu.Halted())
	}
	return lr.Events, rr.Events, cpu.Halted()
}

// compareStreams asserts field-identical events (Instr compared by
// pointee, which DeepEqual follows).
func compareStreams(t *testing.T, live, replayed []trace.Event) {
	t.Helper()
	if len(live) != len(replayed) {
		t.Fatalf("replayed %d events, live %d", len(replayed), len(live))
	}
	for i := range live {
		if !reflect.DeepEqual(live[i], replayed[i]) {
			t.Fatalf("event %d differs:\nlive   %+v\nreplay %+v", i, live[i], replayed[i])
		}
	}
}

// TestCodecValueEdges pins the v2 wire format's narrow-field encodings
// at their sign-extension and width boundaries: register writes of every
// two's-complement width class including both int64 extremes, memory
// addresses in every length code, negative stored values, taken and
// fallthrough branches, and a call/ret whose return address needs a
// multi-byte target field (the program is padded past 255 instructions).
func TestCodecValueEdges(t *testing.T) {
	var code []isa.Instr
	for _, v := range []int64{
		0, 1, -1, 63, 64, 127, -128, 128, -129,
		32767, -32768, 32768, -32769,
		math.MaxInt32, math.MinInt32, 1 << 31, 1 << 32,
		math.MaxInt64, math.MinInt64,
	} {
		code = append(code, isa.MovI(1, v), isa.AddI(2, 1, 0)) // fusable pairs
	}
	for _, addr := range []int64{0x80, 0xF000, 1 << 20, 1 << 31, 1 << 40} {
		code = append(code,
			isa.MovI(3, addr),
			isa.MovI(4, -42),
			isa.Store(3, 0, 4),
			isa.Load(5, 3, 0),
		)
	}
	// A taken and a fallthrough branch.
	skip := isa.Addr(len(code) + 2)
	code = append(code,
		isa.Branch(isa.CondEQZ, 0, skip), // taken (r0 == 0)
		isa.Nop(),                        // skipped
		isa.Branch(isa.CondNEZ, 0, 0),    // not taken
	)
	// Pad past 255 so the ret target below needs a 2-byte field.
	for len(code) < 300 {
		code = append(code, isa.MovI(6, int64(len(code))))
	}
	fn := isa.Addr(len(code) + 2)
	code = append(code,
		isa.Call(fn), // ret will pop this+1: a target > 255
		isa.Halt(),   // return lands here
		isa.Ret(),    // fn
	)
	live, replayed, halted := recordProgram(t, &program.Program{Name: "edges", Code: code})
	if !halted {
		t.Fatal("edge program did not halt")
	}
	compareStreams(t, live, replayed)
}

// TestReplayEventIdentical is the event-level (not just hash-level)
// round trip over a multi-block recording: every field of every event
// must survive the v2 encode/decode, across block boundaries (startPC
// resync) and through the decoder's fused-pair fast path.
func TestReplayEventIdentical(t *testing.T) {
	u := buildArchUnit(t, "evid")
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.BeginRecord("evid", 1, u.Prog)
	if err != nil {
		t.Fatal(err)
	}
	lr := &trace.Recorder{}
	cpu := u.NewCPU()
	if _, err := cpu.Run(120_000, trace.Tee{rec, lr}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Commit(cpu.Halted()); err != nil {
		t.Fatal(err)
	}
	r, ok := a.Lookup("evid", 1)
	if !ok {
		t.Fatal("recording not installed")
	}
	if len(r.blocks) < 2 {
		t.Fatalf("want a multi-block recording, got %d block(s)", len(r.blocks))
	}
	rr := &trace.Recorder{}
	if _, _, err := r.Replay(0, nil, rr); err != nil {
		t.Fatal(err)
	}
	compareStreams(t, lr.Events, rr.Events)

	// A budget cutting into the middle of a block must yield exactly the
	// live prefix.
	cut := uint64(len(lr.Events))/2 + 13
	pr := &trace.Recorder{}
	if n, _, err := r.Replay(cut, nil, pr); err != nil || n != cut {
		t.Fatalf("prefix replay: n=%d err=%v", n, err)
	}
	compareStreams(t, lr.Events[:cut], pr.Events)
}
