package tracefile

import (
	"time"

	"dynloop/internal/obs"
)

// Replay throughput and archive health metrics. Replay accounting is
// per-Replay-call (two timestamps, a few atomics), never per event, so
// the decode loops stay allocation-free and the replay/interp speedup
// ratio pinned by bench_smoke.sh is unaffected. The archive counters
// mirror Archive.Stats into the obs registry so a /metrics scrape and
// /v1/stats reconcile (one Archive per daemon process).
var (
	mReplayEvents = obs.NewCounter("dynloop_replay_events_total",
		"Events delivered by trace-archive replay across all Replay calls.")
	mReplayNsPerEvent = obs.NewGauge("dynloop_replay_ns_per_event",
		"Nanoseconds per event of the most recent Replay call.")
	mReplayRunsCtl = obs.NewCounter("dynloop_replay_runs_total",
		"Replay calls by negotiated event facet.", "plane", "ctl")
	mReplayRunsFull = obs.NewCounter("dynloop_replay_runs_total",
		"Replay calls by negotiated event facet.", "plane", "full")

	mArchRecords = obs.NewCounter("dynloop_archive_records_total",
		"Recordings committed to the trace archive.")
	mArchInvalidated = obs.NewCounter("dynloop_archive_invalidated_total",
		"Archive files skipped at open for block-level damage (re-recorded on next miss).")
	mArchSchemaSkips = obs.NewCounter("dynloop_archive_schema_skips_total",
		"Archive files skipped at open for schema version skew.")
	mArchTruncatedBytes = obs.NewCounter("dynloop_archive_truncated_bytes_total",
		"Bytes discarded repairing torn archive tails at open.")
)

// finishReplay books one Replay call's throughput metrics.
func finishReplay(start time.Time, n uint64, ctl bool) {
	if ctl {
		mReplayRunsCtl.Inc()
	} else {
		mReplayRunsFull.Inc()
	}
	if n > 0 {
		mReplayEvents.Add(n)
		mReplayNsPerEvent.Set(float64(time.Since(start).Nanoseconds()) / float64(n))
	}
}

// ReplayPlaneRuns reports the process-lifetime count of Replay calls
// that negotiated control-plane-only decode vs full-event decode, for
// the daemon's /v1/stats mirror.
func ReplayPlaneRuns() (ctl, full uint64) {
	return mReplayRunsCtl.Value(), mReplayRunsFull.Value()
}
