package tracefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynloop/internal/builder"
	"dynloop/internal/trace"
)

// buildArchUnit builds a nested-loop unit big enough to span several
// 64 KiB trace blocks, so truncation and torn-tail tests exercise real
// block boundaries.
func buildArchUnit(t testing.TB, name string) *builder.Unit {
	t.Helper()
	b := builder.New(name, 5)
	trip := b.UniformSeq(1, 7)
	b.MovI(24, builder.HeapBase)
	b.CountedLoop(builder.TripImm(2000), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripSeq(trip), builder.LoopOpt{}, func() {
			b.WorkMem(6, 24, 8)
		})
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// recordInto runs the unit into dir's archive under (name, seed 1) and
// returns the archive, the event count, the live control-flow hash and
// the halt flag.
func recordInto(t testing.TB, dir, name string, budget uint64) (*Archive, uint64, uint64, bool) {
	t.Helper()
	u := buildArchUnit(t, name)
	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.BeginRecord(name, 1, u.Prog)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHash()
	cpu := u.NewCPU()
	n, err := cpu.Run(budget, trace.Tee{rec, h})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Commit(cpu.Halted()); err != nil {
		t.Fatal(err)
	}
	return a, n, h.Sum, cpu.Halted()
}

// liveHash interprets the unit fresh at the given budget and returns
// the control-flow hash and count — the reference replay must match.
func liveHash(t testing.TB, name string, budget uint64) (uint64, uint64, bool) {
	t.Helper()
	u := buildArchUnit(t, name)
	h := trace.NewHash()
	cpu := u.NewCPU()
	n, err := cpu.Run(budget, h)
	if err != nil {
		t.Fatal(err)
	}
	return h.Sum, n, cpu.Halted()
}

// archFile returns the single archive file in dir.
func archFile(t testing.TB, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.dltrace"))
	if err != nil || len(names) != 1 {
		t.Fatalf("want exactly one archive file, got %v (%v)", names, err)
	}
	return names[0]
}

// TestArchiveRecordReplayRoundTrip: a committed recording must replay
// the exact stream, both from the committing process's index and from a
// cold re-open of the directory.
func TestArchiveRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, n, hash, halted := recordInto(t, dir, "arch", 0)
	if !halted {
		t.Fatal("workload did not halt")
	}
	check := func(a *Archive) {
		t.Helper()
		rec, ok := a.Lookup("arch", 1)
		if !ok {
			t.Fatal("recording not found")
		}
		if !rec.CanServe(0) || !rec.CanServe(n) {
			t.Fatal("halted recording must serve any budget")
		}
		h := trace.NewHash()
		got, gotHalted, err := rec.Replay(0, nil, h)
		if err != nil {
			t.Fatal(err)
		}
		if got != n || !gotHalted {
			t.Fatalf("replayed %d (halted=%v), want %d (halted=true)", got, gotHalted, n)
		}
		if h.Sum != hash {
			t.Fatalf("replay hash %x != live hash %x", h.Sum, hash)
		}
	}
	check(a)
	cold, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(cold)
	if st := cold.Stats(); st.Invalidated != 0 || st.SchemaSkips != 0 || st.TruncatedTail != 0 {
		t.Fatalf("clean archive reported recovery: %+v", st)
	}
}

// TestArchivePrefixTruncation: a recording at budget B serves every
// B' ≤ B with the exact stream an interpreted run at B' produces —
// the tentpole's budget-prefix property.
func TestArchivePrefixTruncation(t *testing.T) {
	dir := t.TempDir()
	a, n, _, _ := recordInto(t, dir, "arch", 0)
	rec, ok := a.Lookup("arch", 1)
	if !ok {
		t.Fatal("recording not found")
	}
	for _, budget := range []uint64{1, 100, n / 3, n / 2, n - 1, n} {
		wantHash, wantN, wantHalted := liveHash(t, "arch", budget)
		if !rec.CanServe(budget) {
			t.Fatalf("budget %d: CanServe = false", budget)
		}
		h := trace.NewHash()
		gotN, gotHalted, err := rec.Replay(budget, nil, h)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || gotHalted != wantHalted {
			t.Fatalf("budget %d: replay (%d, halted=%v), interpret (%d, halted=%v)",
				budget, gotN, gotHalted, wantN, wantHalted)
		}
		if h.Sum != wantHash {
			t.Fatalf("budget %d: replay hash %x != live hash %x", budget, h.Sum, wantHash)
		}
	}
}

// TestArchiveNonHaltedCoverage: a recording cut at budget B serves
// budgets ≤ B and refuses larger ones (and run-to-halt).
func TestArchiveNonHaltedCoverage(t *testing.T) {
	dir := t.TempDir()
	_, full, _, _ := recordInto(t, t.TempDir(), "arch", 0)
	budget := full / 2
	a, n, _, halted := recordInto(t, dir, "arch", budget)
	if halted || n != budget {
		t.Fatalf("recorded %d halted=%v, want %d halted=false", n, halted, budget)
	}
	rec, _ := a.Lookup("arch", 1)
	if !rec.CanServe(budget) || !rec.CanServe(1) {
		t.Fatal("recording must serve its own prefix")
	}
	if rec.CanServe(budget+1) || rec.CanServe(0) {
		t.Fatal("non-halted recording must not serve beyond its events")
	}
}

// TestArchiveTornTailRecovers: a crash mid-append tears the newest
// file; Open must repair it to the intact block prefix, which then
// serves smaller budgets exactly.
func TestArchiveTornTailRecovers(t *testing.T) {
	for _, cutBack := range []int{3, 0} {
		dir := t.TempDir()
		_, n, _, _ := recordInto(t, dir, "arch", 0)
		path := archFile(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := len(data) - 3
		if cutBack == 0 {
			cut = len(data) / 2
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := OpenArchive(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if st := a.Stats(); st.TruncatedTail == 0 {
			t.Fatalf("cut %d: no torn tail counted: %+v", cut, st)
		}
		rec, ok := a.Lookup("arch", 1)
		if !ok {
			t.Fatalf("cut %d: prefix recording lost", cut)
		}
		if rec.Halted() {
			t.Fatalf("cut %d: repaired recording claims halted", cut)
		}
		if rec.Events() == 0 || rec.Events() > n {
			t.Fatalf("cut %d: repaired recording has %d events (full run %d)", cut, rec.Events(), n)
		}
		budget := rec.Events()
		wantHash, wantN, _ := liveHash(t, "arch", budget)
		h := trace.NewHash()
		gotN, _, err := rec.Replay(budget, nil, h)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || h.Sum != wantHash {
			t.Fatalf("cut %d: repaired prefix diverges from interpretation", cut)
		}
		// The repair rewrote the file: a second open must be clean.
		again, err := OpenArchive(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st := again.Stats(); st.TruncatedTail != 0 {
			t.Fatalf("cut %d: repair did not stick: %+v", cut, st)
		}
		if r2, ok := again.Lookup("arch", 1); !ok || r2.Events() != rec.Events() {
			t.Fatalf("cut %d: repaired file reload mismatch", cut)
		}
	}
}

// TestArchiveTornNonNewestErrors: a torn frame on anything but the
// newest file is not a crash tail — it is corruption and must surface
// as a typed error.
func TestArchiveTornNonNewestErrors(t *testing.T) {
	dir := t.TempDir()
	recordInto(t, dir, "alpha", 0)
	pathA := archFile(t, dir)
	_, _, _, _ = recordInto(t, dir, "beta", 0)
	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathA, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Make the torn file unambiguously older (WriteFile refreshed its
	// mtime, which would have made it the repairable newest file).
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(pathA, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenArchive(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// firstBlockPayloadOffset walks the header the same way the parser does
// and returns the offset of the first block's first payload byte.
func firstBlockPayloadOffset(t *testing.T, data []byte) int {
	t.Helper()
	br := bytes.NewReader(data[len(magicArch):])
	if _, err := binary.ReadUvarint(br); err != nil { // version
		t.Fatal(err)
	}
	bl, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.CopyN(io.Discard, br, int64(bl)); err != nil {
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // seed
		t.Fatal(err)
	}
	if _, err := readProgram(br); err != nil {
		t.Fatal(err)
	}
	if b, err := br.ReadByte(); err != nil || b != tagBlock {
		t.Fatalf("expected a block frame, got %#x (%v)", b, err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // count
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // size
		t.Fatal(err)
	}
	return len(data) - br.Len() + 4 // skip the CRC
}

// TestArchiveBlockCorruptionFallsBackAndReRecords: a bit flip inside a
// CRC-framed block invalidates just that recording — Open succeeds, the
// lookup misses (so the runner falls back to interpretation), and a
// re-record atomically replaces the damaged file.
func TestArchiveBlockCorruptionFallsBackAndReRecords(t *testing.T) {
	dir := t.TempDir()
	_, n, hash, _ := recordInto(t, dir, "arch", 0)
	path := archFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[firstBlockPayloadOffset(t, data)] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatalf("block damage must not fail Open: %v", err)
	}
	if _, ok := a.Lookup("arch", 1); ok {
		t.Fatal("damaged recording served")
	}
	if st := a.Stats(); st.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", st.Invalidated)
	}
	// Fallback path: the caller interprets again and re-records.
	u := buildArchUnit(t, "arch")
	rec, err := a.BeginRecord("arch", 1, u.Prog)
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Commit(cpu.Halted()); err != nil {
		t.Fatal(err)
	}
	fresh, ok := a.Lookup("arch", 1)
	if !ok {
		t.Fatal("re-record did not install")
	}
	h := trace.NewHash()
	got, _, err := fresh.Replay(0, nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if got != n || h.Sum != hash {
		t.Fatalf("re-recorded stream diverges: %d events hash %x, want %d hash %x", got, h.Sum, n, hash)
	}
	// And on disk: the damaged file was replaced by the clean one.
	if again, err := OpenArchive(dir); err != nil {
		t.Fatal(err)
	} else if st := again.Stats(); st.Invalidated != 0 || st.Recordings != 1 {
		t.Fatalf("re-record did not replace the damaged file: %+v", st)
	}
}

// TestArchiveStructuralCorruptionErrors: damage outside the recoverable
// cases (torn newest tail, block damage) is a typed error.
func TestArchiveStructuralCorruptionErrors(t *testing.T) {
	mutate := map[string]func([]byte) []byte{
		"bad magic":      func(d []byte) []byte { d[2] ^= 0xFF; return d },
		"trailing bytes": func(d []byte) []byte { return append(d, "junk!"...) },
	}
	for name, fn := range mutate {
		dir := t.TempDir()
		recordInto(t, dir, "arch", 0)
		path := archFile(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = fn(append([]byte(nil), data...))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenArchive(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestArchiveSchemaBumpMisses: recordings written under a different
// ArchiveSchemaVersion must miss cleanly — never replay a stale stream
// (the parallel of the store's cellSchemaVersion bump test).
func TestArchiveSchemaBumpMisses(t *testing.T) {
	dir := t.TempDir()
	recordInto(t, dir, "arch", 0)
	orig := ArchiveSchemaVersion
	defer func() { ArchiveSchemaVersion = orig }()
	ArchiveSchemaVersion = orig + 1
	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatalf("schema skew must be a clean miss, got %v", err)
	}
	if _, ok := a.Lookup("arch", 1); ok {
		t.Fatal("stale-schema recording served")
	}
	if st := a.Stats(); st.SchemaSkips != 1 {
		t.Fatalf("SchemaSkips = %d, want 1", st.SchemaSkips)
	}
	// Back on the original version the file serves again.
	ArchiveSchemaVersion = orig
	a2, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a2.Lookup("arch", 1); !ok {
		t.Fatal("recording lost after restoring the schema version")
	}
}

// TestReplayZeroAllocs pins the replay hot loop at zero allocations per
// run once the decoder is warm — the property that makes replay a pure
// decode.
func TestReplayZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	a, _, _, _ := recordInto(t, dir, "arch", 0)
	rec, ok := a.Lookup("arch", 1)
	if !ok {
		t.Fatal("recording not found")
	}
	d := &Decoder{}
	h := trace.NewHash()
	if _, _, err := rec.Replay(0, d, h); err != nil { // warm the decoder
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := rec.Replay(0, d, h); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("replay hot loop allocates %v per run, want 0", allocs)
	}
}

// FuzzReplayArchive mirrors the store's FuzzScanSegment: the archive
// parser must classify ANY byte stream without panicking, and whatever
// it accepts must replay exactly (full and prefix).
func FuzzReplayArchive(f *testing.F) {
	// Keep the seed archive small (but still multi-block) so each fuzz
	// exec parses and replays in microseconds, not milliseconds.
	dir := f.TempDir()
	recordInto(f, dir, "arch", 10_000)
	names, err := filepath.Glob(filepath.Join(dir, "*.dltrace"))
	if err != nil || len(names) != 1 {
		f.Fatalf("seed archive: %v (%v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(data[:len(magicArch)+3])
	f.Add([]byte{})
	f.Add([]byte(magicArch))
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, _, err := parseArchive(b)
		if err != nil || rec == nil {
			return
		}
		h := trace.NewHash()
		n, _, err := rec.Replay(0, nil, h)
		if err != nil {
			t.Fatalf("validated recording failed replay: %v", err)
		}
		if n != rec.Events() {
			t.Fatalf("replayed %d of %d events", n, rec.Events())
		}
		// Plane differential: the header-plane-only decode (Hash is a
		// control-only sink) and the full decode must agree on any
		// accepted input.
		fh := trace.NewHash()
		fn, _, err := rec.Replay(0, nil, trace.ForceFullPlane(fh))
		if err != nil || fn != n || fh.Sum != h.Sum {
			t.Fatalf("plane divergence: ctl n=%d sum=%x, full n=%d sum=%x err=%v", n, h.Sum, fn, fh.Sum, err)
		}
		if _, _, err := rec.Replay(rec.Events()/2+1, nil, nil); err != nil {
			t.Fatalf("prefix replay failed: %v", err)
		}
	})
}
