// Package tracefile records and replays instruction traces. It is the
// analogue of the paper's ATOM methodology: run a program once, keep the
// trace, and drive the loop detector and its consumers from the file as
// many times as needed (e.g. to sweep table sizes without re-executing).
//
// Format v2 (little-endian, varint-based, block-framed):
//
//	magic "DLTRACE2\n"
//	program: name length+bytes, entry, instruction count,
//	         then each instruction's fields as uvarints
//	blocks:  tag 0xFE, uvarint event count, uvarint payload byte length,
//	         then that many bytes of packed event records —
//	         tag byte (bit0 taken, bit1 wroteReg, bit2 hasMem),
//	         uvarint pc, then the optional fields
//	trailer: tag 0xFF, uvarint total event count (integrity check)
//
// The block framing is what makes replay fast: the reader slurps a whole
// block, decodes it from memory into a reusable event buffer, and hands
// the batch to the consumer in one call — no per-event reader dispatch.
// The v1 format (magic "DLTRACE1\n", the same event records unframed) is
// still read transparently.
//
// The program is embedded so a reader can resolve trace.Event.Instr
// pointers without the original workload generator.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

const (
	magicV1 = "DLTRACE1\n"
	magicV2 = "DLTRACE2\n"
)

const (
	tagTaken    = 1 << 0
	tagWroteReg = 1 << 1
	tagHasMem   = 1 << 2
	tagBlock    = 0xFE
	tagTrailer  = 0xFF
)

// blockTarget is the payload size at which the writer seals a block.
// 64 KiB keeps blocks small enough to decode inside L2 while making the
// framing overhead (a tag and two uvarints per block) negligible.
const blockTarget = 1 << 16

// replayBatch is the event-batch size Replay delivers v1 (unframed)
// traces in; v2 traces replay one block per batch.
const replayBatch = 4096

// maxBlockBytes bounds a single block allocation when reading untrusted
// files; the writer seals blocks just past blockTarget, so legitimate
// blocks are far smaller.
const maxBlockBytes = 1 << 20

// ErrCorrupt reports a malformed or truncated trace file.
var ErrCorrupt = errors.New("tracefile: corrupt or truncated trace")

// Writer streams events to an underlying io.Writer in the v2 block
// format. It implements trace.Consumer and trace.BatchConsumer; check
// Err or Close for deferred I/O errors.
type Writer struct {
	w *bufio.Writer
	// block accumulates encoded event records until blockTarget.
	block       []byte
	blockEvents uint64
	events      uint64
	err         error
}

// NewWriter writes the v2 header (including the program image) and
// returns a Writer ready to consume events.
func NewWriter(w io.Writer, p *program.Program) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	head := make([]byte, 0, 64+16*len(p.Code))
	head = append(head, magicV2...)
	head = appendProgram(head, p)
	if _, err := tw.w.Write(head); err != nil {
		return nil, err
	}
	return tw, nil
}

// append encodes one event record onto the pending block.
func (tw *Writer) append(ev *trace.Event) {
	tw.block = appendEvent(tw.block, ev)
	tw.blockEvents++
	tw.events++
}

// flushBlock writes the pending block, if any.
func (tw *Writer) flushBlock() {
	if tw.err != nil || tw.blockEvents == 0 {
		return
	}
	var frame [1 + 2*binary.MaxVarintLen64]byte
	frame[0] = tagBlock
	n := 1
	n += binary.PutUvarint(frame[n:], tw.blockEvents)
	n += binary.PutUvarint(frame[n:], uint64(len(tw.block)))
	if _, err := tw.w.Write(frame[:n]); err != nil {
		tw.err = err
		return
	}
	if _, err := tw.w.Write(tw.block); err != nil {
		tw.err = err
		return
	}
	tw.block = tw.block[:0]
	tw.blockEvents = 0
}

// Consume implements trace.Consumer: append one event record.
func (tw *Writer) Consume(ev *trace.Event) {
	if tw.err != nil {
		return
	}
	tw.append(ev)
	if len(tw.block) >= blockTarget {
		tw.flushBlock()
	}
}

// ConsumeBatch implements trace.BatchConsumer: encode the whole batch
// into the pending block, sealing blocks as they fill.
func (tw *Writer) ConsumeBatch(evs []trace.Event) {
	if tw.err != nil {
		return
	}
	for i := range evs {
		tw.append(&evs[i])
		if len(tw.block) >= blockTarget {
			tw.flushBlock()
			if tw.err != nil {
				return
			}
		}
	}
}

// Err returns the first I/O error encountered, if any.
func (tw *Writer) Err() error { return tw.err }

// Close seals the pending block, writes the trailer and flushes. The
// Writer must not be used afterwards.
func (tw *Writer) Close() error {
	tw.flushBlock()
	if tw.err != nil {
		return tw.err
	}
	var frame [1 + binary.MaxVarintLen64]byte
	frame[0] = tagTrailer
	n := 1 + binary.PutUvarint(frame[1:], tw.events)
	if _, err := tw.w.Write(frame[:n]); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.events }

// Reader replays a recorded trace.
type Reader struct {
	r    *bufio.Reader
	prog *program.Program
	// v1 marks a legacy unframed trace.
	v1 bool
	// block and evs are reusable decode buffers.
	block []byte
	evs   []trace.Event
}

// NewReader parses the header and embedded program. Both the v2 and the
// legacy v1 format are accepted.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var v1 bool
	switch string(head) {
	case magicV2:
	case magicV1:
		v1 = true
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	p, err := readProgram(br)
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, prog: p, v1: v1}, nil
}

// Program returns the embedded program image.
func (r *Reader) Program() *program.Program { return r.prog }

// Replay streams every recorded event to sink in batches (one per block
// for v2 traces) and returns the event count. The trailer count is
// verified. The event buffer is reused between batches; consumers must
// copy what they keep.
func (r *Reader) Replay(sink trace.BatchConsumer) (uint64, error) {
	if r.v1 {
		return r.replayV1(sink)
	}
	var n uint64
	for {
		tag, err := r.r.ReadByte()
		if err != nil {
			return n, fmt.Errorf("%w: missing trailer", ErrCorrupt)
		}
		switch tag {
		case tagTrailer:
			want, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: unreadable trailer count", ErrCorrupt)
			}
			if want != n {
				return n, fmt.Errorf("%w: trailer count %d != %d", ErrCorrupt, want, n)
			}
			return n, nil
		case tagBlock:
			count, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: block count", ErrCorrupt)
			}
			size, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: block size", ErrCorrupt)
			}
			// Every event record is at least two bytes (tag + pc), so
			// count can never legitimately exceed size.
			if size > maxBlockBytes || count > size {
				return n, fmt.Errorf("%w: block header (%d events, %d bytes)", ErrCorrupt, count, size)
			}
			if uint64(cap(r.block)) < size {
				r.block = make([]byte, size)
			}
			blk := r.block[:size]
			if _, err := io.ReadFull(r.r, blk); err != nil {
				return n, fmt.Errorf("%w: block payload", ErrCorrupt)
			}
			if err := r.decodeBlock(blk, int(count), n); err != nil {
				return n, err
			}
			if sink != nil {
				sink.ConsumeBatch(r.evs)
			}
			n += count
		default:
			return n, fmt.Errorf("%w: unexpected tag %#x", ErrCorrupt, tag)
		}
	}
}

// decodeBlock decodes count event records from blk into the reusable
// event buffer, numbering them from base.
func (r *Reader) decodeBlock(blk []byte, count int, base uint64) error {
	if cap(r.evs) < count {
		r.evs = make([]trace.Event, count)
	}
	r.evs = r.evs[:count]
	return decodeEvents(blk, r.evs, base, r.prog.Code, true)
}

// replayV1 replays a legacy unframed trace, accumulating events into the
// reusable buffer and flushing every replayBatch.
func (r *Reader) replayV1(sink trace.BatchConsumer) (uint64, error) {
	if cap(r.evs) < replayBatch {
		r.evs = make([]trace.Event, 0, replayBatch)
	}
	r.evs = r.evs[:0]
	flush := func() {
		if sink != nil && len(r.evs) > 0 {
			sink.ConsumeBatch(r.evs)
		}
		r.evs = r.evs[:0]
	}
	// Flush on every exit, error paths included, so the returned count
	// always matches what the sink received (the old per-event reader
	// delivered each record before parsing the next).
	defer flush()
	var n uint64
	for {
		tag, err := r.r.ReadByte()
		if err != nil {
			return n, fmt.Errorf("%w: missing trailer", ErrCorrupt)
		}
		if tag == tagTrailer {
			want, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: unreadable trailer count", ErrCorrupt)
			}
			if want != n {
				return n, fmt.Errorf("%w: trailer count %d != %d", ErrCorrupt, want, n)
			}
			return n, nil
		}
		pc, err := binary.ReadUvarint(r.r)
		if err != nil {
			return n, fmt.Errorf("%w: pc", ErrCorrupt)
		}
		if pc >= uint64(len(r.prog.Code)) {
			return n, fmt.Errorf("%w: pc %d out of range", ErrCorrupt, pc)
		}
		ev := trace.Event{Index: n, PC: isa.Addr(pc), Instr: &r.prog.Code[pc]}
		if tag&tagTaken != 0 {
			t, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: target", ErrCorrupt)
			}
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if tag&tagWroteReg != 0 {
			reg, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: reg", ErrCorrupt)
			}
			val, err := binary.ReadVarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: reg value", ErrCorrupt)
			}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(reg), val
		}
		if tag&tagHasMem != 0 {
			addr, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: mem addr", ErrCorrupt)
			}
			val, err := binary.ReadVarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: mem value", ErrCorrupt)
			}
			ev.MemAddr, ev.MemVal = addr, val
		}
		r.evs = append(r.evs, ev)
		if len(r.evs) == replayBatch {
			flush()
		}
		n++
	}
}
