// Package tracefile records and replays instruction traces. It is the
// analogue of the paper's ATOM methodology: run a program once, keep the
// trace, and drive the loop detector and its consumers from the file as
// many times as needed (e.g. to sweep table sizes without re-executing).
//
// Format (little-endian, varint-based):
//
//	magic "DLTRACE1\n"
//	program: name length+bytes, entry, instruction count,
//	         then each instruction's fields as uvarints
//	events:  one record per retired instruction —
//	         tag byte (bit0 taken, bit1 wroteReg, bit2 hasMem),
//	         uvarint pc, then the optional fields
//	trailer: tag 0xFF, uvarint event count (integrity check)
//
// The program is embedded so a reader can resolve trace.Event.Instr
// pointers without the original workload generator.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

const magic = "DLTRACE1\n"

const (
	tagTaken    = 1 << 0
	tagWroteReg = 1 << 1
	tagHasMem   = 1 << 2
	tagTrailer  = 0xFF
)

// ErrCorrupt reports a malformed or truncated trace file.
var ErrCorrupt = errors.New("tracefile: corrupt or truncated trace")

// Writer streams events to an underlying io.Writer. It implements
// trace.Consumer; check Err or Close for deferred I/O errors.
type Writer struct {
	w      *bufio.Writer
	buf    []byte
	events uint64
	err    error
}

// NewWriter writes the header (including the program image) and returns
// a Writer ready to consume events.
func NewWriter(w io.Writer, p *program.Program) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.w.WriteString(magic); err != nil {
		return nil, err
	}
	tw.putUvarint(uint64(len(p.Name)))
	tw.w.WriteString(p.Name)
	tw.putUvarint(uint64(p.Entry))
	tw.putUvarint(uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		tw.putUvarint(uint64(in.Kind))
		tw.putUvarint(uint64(in.Op))
		tw.putUvarint(uint64(in.Cond))
		tw.putUvarint(uint64(in.Rd))
		tw.putUvarint(uint64(in.Rs1))
		tw.putUvarint(uint64(in.Rs2))
		tw.putVarint(in.Imm)
		tw.putUvarint(uint64(in.Target))
	}
	return tw, tw.err
}

func (tw *Writer) putUvarint(v uint64) {
	if tw.err != nil {
		return
	}
	tw.buf = binary.AppendUvarint(tw.buf[:0], v)
	_, err := tw.w.Write(tw.buf)
	if err != nil {
		tw.err = err
	}
}

func (tw *Writer) putVarint(v int64) {
	if tw.err != nil {
		return
	}
	tw.buf = binary.AppendVarint(tw.buf[:0], v)
	_, err := tw.w.Write(tw.buf)
	if err != nil {
		tw.err = err
	}
}

// Consume implements trace.Consumer: append one event record.
func (tw *Writer) Consume(ev *trace.Event) {
	if tw.err != nil {
		return
	}
	var tag byte
	if ev.Taken {
		tag |= tagTaken
	}
	if ev.WroteReg {
		tag |= tagWroteReg
	}
	hasMem := ev.Instr.Kind == isa.KindLoad || ev.Instr.Kind == isa.KindStore
	if hasMem {
		tag |= tagHasMem
	}
	if err := tw.w.WriteByte(tag); err != nil {
		tw.err = err
		return
	}
	tw.putUvarint(uint64(ev.PC))
	if ev.Taken {
		tw.putUvarint(uint64(ev.Target))
	}
	if ev.WroteReg {
		tw.putUvarint(uint64(ev.WrittenReg))
		tw.putVarint(ev.WrittenVal)
	}
	if hasMem {
		tw.putUvarint(ev.MemAddr)
		tw.putVarint(ev.MemVal)
	}
	tw.events++
}

// Err returns the first I/O error encountered, if any.
func (tw *Writer) Err() error { return tw.err }

// Close writes the trailer and flushes. The Writer must not be used
// afterwards.
func (tw *Writer) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if err := tw.w.WriteByte(tagTrailer); err != nil {
		return err
	}
	tw.putUvarint(tw.events)
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Events returns the number of events written so far.
func (tw *Writer) Events() uint64 { return tw.events }

// Reader replays a recorded trace.
type Reader struct {
	r    *bufio.Reader
	prog *program.Program
}

// NewReader parses the header and embedded program.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil || string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name", ErrCorrupt)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name bytes", ErrCorrupt)
	}
	entry, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: entry", ErrCorrupt)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: instruction count", ErrCorrupt)
	}
	const maxInstrs = 64 << 20
	if count > maxInstrs {
		return nil, fmt.Errorf("%w: program too large (%d instructions)", ErrCorrupt, count)
	}
	code := make([]isa.Instr, count)
	for i := range code {
		in := &code[i]
		u := func() uint64 {
			v, e := binary.ReadUvarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		v := func() int64 {
			v, e := binary.ReadVarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		in.Kind = isa.Kind(u())
		in.Op = isa.ALUOp(u())
		in.Cond = isa.Cond(u())
		in.Rd = isa.Reg(u())
		in.Rs1 = isa.Reg(u())
		in.Rs2 = isa.Reg(u())
		in.Imm = v()
		in.Target = isa.Addr(u())
		if err != nil {
			return nil, fmt.Errorf("%w: instruction %d", ErrCorrupt, i)
		}
	}
	p := &program.Program{Name: string(name), Code: code, Entry: isa.Addr(entry)}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: embedded program: %v", ErrCorrupt, err)
	}
	return &Reader{r: br, prog: p}, nil
}

// Program returns the embedded program image.
func (r *Reader) Program() *program.Program { return r.prog }

// Replay streams every recorded event to sink and returns the event
// count. The trailer count is verified.
func (r *Reader) Replay(sink trace.Consumer) (uint64, error) {
	var ev trace.Event
	var n uint64
	for {
		tag, err := r.r.ReadByte()
		if err != nil {
			return n, fmt.Errorf("%w: missing trailer", ErrCorrupt)
		}
		if tag == tagTrailer {
			want, err := binary.ReadUvarint(r.r)
			if err != nil || want != n {
				return n, fmt.Errorf("%w: trailer count %d != %d", ErrCorrupt, want, n)
			}
			return n, nil
		}
		pc, err := binary.ReadUvarint(r.r)
		if err != nil {
			return n, fmt.Errorf("%w: pc", ErrCorrupt)
		}
		if pc >= uint64(len(r.prog.Code)) {
			return n, fmt.Errorf("%w: pc %d out of range", ErrCorrupt, pc)
		}
		ev = trace.Event{Index: n, PC: isa.Addr(pc), Instr: &r.prog.Code[pc]}
		if tag&tagTaken != 0 {
			t, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: target", ErrCorrupt)
			}
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if tag&tagWroteReg != 0 {
			reg, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: reg", ErrCorrupt)
			}
			val, err := binary.ReadVarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: reg value", ErrCorrupt)
			}
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(reg), val
		}
		if tag&tagHasMem != 0 {
			addr, err := binary.ReadUvarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: mem addr", ErrCorrupt)
			}
			val, err := binary.ReadVarint(r.r)
			if err != nil {
				return n, fmt.Errorf("%w: mem value", ErrCorrupt)
			}
			ev.MemAddr, ev.MemVal = addr, val
		}
		if sink != nil {
			sink.Consume(&ev)
		}
		n++
	}
}
