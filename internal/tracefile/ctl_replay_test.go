package tracefile

import (
	"reflect"
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// ctlSink accepts only control-plane delivery; ConsumeBatch panicking
// proves Replay dispatched to the header-plane decoder. ctl indices are
// resolved to absolute stream positions.
type ctlSink struct {
	events []trace.CtlEvent
	ctl    []int
}

func (s *ctlSink) ConsumeBatch([]trace.Event) {
	panic("full-plane delivery to a control-only sink")
}

func (s *ctlSink) ConsumeCtlBatch(evs []trace.CtlEvent, ctl []int32) {
	base := len(s.events)
	s.events = append(s.events, evs...)
	for _, i := range ctl {
		s.ctl = append(s.ctl, base+int(i))
	}
}

// TestReplayCtlEventIdentical: the control-plane replay path must yield
// exactly the control facet of the full decode — every field of every
// event, plus the run-boundary indices — over a multi-block recording
// and at a budget that cuts mid-block. This is the lazy-materialization
// differential: decodeEventsCtl walks only the header plane, advancing
// the value-plane cursor arithmetically, and any drift in that cursor
// corrupts the PC chain this test checks event by event.
func TestReplayCtlEventIdentical(t *testing.T) {
	u := buildArchUnit(t, "ctlid")
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := a.BeginRecord("ctlid", 1, u.Prog)
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(120_000, rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Commit(cpu.Halted()); err != nil {
		t.Fatal(err)
	}
	r, ok := a.Lookup("ctlid", 1)
	if !ok {
		t.Fatal("recording not installed")
	}
	if len(r.blocks) < 2 {
		t.Fatalf("want a multi-block recording, got %d block(s)", len(r.blocks))
	}

	full := &trace.Recorder{}
	if _, _, err := r.Replay(0, nil, full); err != nil {
		t.Fatal(err)
	}
	want := make([]trace.CtlEvent, len(full.Events))
	var wantCtl []int
	for i, ev := range full.Events {
		want[i] = trace.CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr,
			Taken: ev.Taken, Target: ev.Target}
		switch ev.Instr.Kind {
		case isa.KindBranch, isa.KindJump, isa.KindRet:
			wantCtl = append(wantCtl, i)
		}
	}

	cs := &ctlSink{}
	n, halted, err := r.Replay(0, nil, cs)
	if err != nil || n != uint64(len(want)) || halted != r.halted {
		t.Fatalf("ctl replay: n=%d halted=%v err=%v", n, halted, err)
	}
	if len(cs.events) != len(want) {
		t.Fatalf("ctl replay decoded %d events, want %d", len(cs.events), len(want))
	}
	for i := range want {
		if cs.events[i] != want[i] {
			t.Fatalf("event %d differs:\nctl  %+v\nfull %+v", i, cs.events[i], want[i])
		}
	}
	if !reflect.DeepEqual(cs.ctl, wantCtl) {
		t.Fatalf("ctl indices differ: got %d entries, want %d", len(cs.ctl), len(wantCtl))
	}

	// A budget cutting into the middle of a block yields the exact prefix.
	cut := uint64(len(want))/2 + 13
	ps := &ctlSink{}
	if n, _, err := r.Replay(cut, nil, ps); err != nil || n != cut {
		t.Fatalf("prefix ctl replay: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(ps.events, want[:cut]) {
		t.Fatal("prefix ctl replay differs from full-decode prefix")
	}

	// ForceFullPlane pushes the same consumer stack back onto the full
	// decoder; the hash must not care which plane delivered.
	h1, h2 := trace.NewHash(), trace.NewHash()
	if _, _, err := r.Replay(0, nil, h1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Replay(0, nil, trace.ForceFullPlane(h2)); err != nil {
		t.Fatal(err)
	}
	if h1.Sum != h2.Sum {
		t.Fatalf("ctl hash %x != forced-full hash %x", h1.Sum, h2.Sum)
	}
}

// TestReplayCtlZeroAllocs pins BOTH replay planes at zero allocations
// per run once the decoder is warm.
func TestReplayCtlZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	a, _, _, _ := recordInto(t, dir, "arch", 0)
	rec, ok := a.Lookup("arch", 1)
	if !ok {
		t.Fatal("recording not found")
	}
	d := &Decoder{}
	h := trace.NewHash()
	fh := trace.ForceFullPlane(trace.NewHash())
	for _, leg := range []struct {
		name string
		run  func()
	}{
		{"ctl", func() {
			if _, _, err := rec.Replay(0, d, h); err != nil {
				t.Fatal(err)
			}
		}},
		{"full", func() {
			if _, _, err := rec.Replay(0, d, fh); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		leg.run() // warm the decoder's plane buffers
		if allocs := testing.AllocsPerRun(10, leg.run); allocs != 0 {
			t.Fatalf("%s replay hot loop allocates %v per run, want 0", leg.name, allocs)
		}
	}
}
