package tracefile

// Shared encode/decode primitives for the single-file trace format (v1/v2)
// and the replay archive: the program image and the packed event records
// are byte-identical across both containers, so the Writer/Reader pair and
// the Archive share these helpers instead of each owning a copy.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// byteSource is the reader subset the header decoders need; both
// bufio.Reader (streaming trace files) and bytes.Reader (in-memory
// archives) satisfy it.
type byteSource interface {
	io.ByteReader
	io.Reader
}

// maxInstrs bounds the embedded program size when reading untrusted
// files.
const maxInstrs = 64 << 20

// appendProgram encodes the program image (name, entry, instruction
// count, then each instruction's fields) onto buf.
func appendProgram(buf []byte, p *program.Program) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.AppendUvarint(buf, uint64(p.Entry))
	buf = binary.AppendUvarint(buf, uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		buf = binary.AppendUvarint(buf, uint64(in.Kind))
		buf = binary.AppendUvarint(buf, uint64(in.Op))
		buf = binary.AppendUvarint(buf, uint64(in.Cond))
		buf = binary.AppendUvarint(buf, uint64(in.Rd))
		buf = binary.AppendUvarint(buf, uint64(in.Rs1))
		buf = binary.AppendUvarint(buf, uint64(in.Rs2))
		buf = binary.AppendVarint(buf, in.Imm)
		buf = binary.AppendUvarint(buf, uint64(in.Target))
	}
	return buf
}

// readProgram decodes and validates a program image. Errors wrap both
// ErrCorrupt and the underlying cause, so callers can distinguish a
// truncated source (io.EOF / io.ErrUnexpectedEOF) from malformed bytes.
func readProgram(br byteSource) (*program.Program, error) {
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name: %w", ErrCorrupt, err)
	}
	if nameLen > maxBlockBytes {
		return nil, fmt.Errorf("%w: name length %d", ErrCorrupt, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name bytes: %w", ErrCorrupt, err)
	}
	entry, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: entry: %w", ErrCorrupt, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: instruction count: %w", ErrCorrupt, err)
	}
	if count > maxInstrs {
		return nil, fmt.Errorf("%w: program too large (%d instructions)", ErrCorrupt, count)
	}
	code := make([]isa.Instr, count)
	for i := range code {
		in := &code[i]
		u := func() uint64 {
			v, e := binary.ReadUvarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		v := func() int64 {
			v, e := binary.ReadVarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		in.Kind = isa.Kind(u())
		in.Op = isa.ALUOp(u())
		in.Cond = isa.Cond(u())
		in.Rd = isa.Reg(u())
		in.Rs1 = isa.Reg(u())
		in.Rs2 = isa.Reg(u())
		in.Imm = v()
		in.Target = isa.Addr(u())
		if err != nil {
			return nil, fmt.Errorf("%w: instruction %d: %w", ErrCorrupt, i, err)
		}
	}
	p := &program.Program{Name: string(name), Code: code, Entry: isa.Addr(entry)}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: embedded program: %v", ErrCorrupt, err)
	}
	return p, nil
}

// appendEvent encodes one packed event record onto b: a tag byte (taken /
// wroteReg / hasMem bits), the pc, then the optional fields the tag
// announces. hasMem is derived from the instruction kind, exactly as the
// decoder rederives it, so a decoded event is field-identical to the
// interpreted one.
func appendEvent(b []byte, ev *trace.Event) []byte {
	var tag byte
	if ev.Taken {
		tag |= tagTaken
	}
	if ev.WroteReg {
		tag |= tagWroteReg
	}
	hasMem := ev.Instr.Kind.TouchesMem()
	if hasMem {
		tag |= tagHasMem
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(ev.PC))
	if ev.Taken {
		b = binary.AppendUvarint(b, uint64(ev.Target))
	}
	if ev.WroteReg {
		b = binary.AppendUvarint(b, uint64(ev.WrittenReg))
		b = binary.AppendVarint(b, ev.WrittenVal)
	}
	if hasMem {
		b = binary.AppendUvarint(b, ev.MemAddr)
		b = binary.AppendVarint(b, ev.MemVal)
	}
	return b
}

// contBits masks every byte's varint continuation bit in a 64-bit load.
const contBits = 0x8080808080808080

// keepBytes[k] masks a 64-bit load down to its first k+1 bytes.
var keepBytes = [8]uint64{
	0xff, 0xffff, 0xffffff, 0xffffffff,
	0xffffffffff, 0xffffffffffff, 0xffffffffffffff, 0xffffffffffffffff,
}

// uvarintMultiAt handles multi-byte varints. Register values and heap
// addresses make these common enough to matter, so varints of 2–8 bytes
// decode branch-free from one 64-bit load: locate the terminating byte
// with a bit scan, then compact the 7-bit groups.
func uvarintMultiAt(b []byte, pos int) (uint64, int) {
	if pos+8 <= len(b) {
		x := binary.LittleEndian.Uint64(b[pos:])
		if stops := ^x & contBits; stops != 0 {
			k := bits.TrailingZeros64(stops) >> 3 // byte index of the final byte
			x &= keepBytes[k&7]
			x = x&0x7f | x>>1&(0x7f<<7) | x>>2&(0x7f<<14) | x>>3&(0x7f<<21) |
				x>>4&(0x7f<<28) | x>>5&(0x7f<<35) | x>>6&(0x7f<<42) | x>>7&(0x7f<<49)
			return x, pos + k + 1
		}
	}
	v, k := binary.Uvarint(b[pos:])
	if k <= 0 {
		return 0, -1
	}
	return v, pos + k
}

// decodeEvents decodes len(evs) packed event records from blk into evs,
// numbering them from base and resolving Instr pointers into code. When
// full is set the records must consume blk exactly; a prefix decode
// (budget truncation cutting a block mid-way) passes false and leaves the
// remaining records unread.
func decodeEvents(blk []byte, evs []trace.Event, base uint64, code []isa.Instr, full bool) error {
	// The 1-byte varint fast path is hand-inlined at every field read:
	// this loop is the replay tier's entire per-instruction cost, and a
	// call per field is measurable at trace scale.
	pos := 0
	for i := range evs {
		if uint(pos) >= uint(len(blk)) {
			return fmt.Errorf("%w: block truncated at event %d", ErrCorrupt, i)
		}
		tag := blk[pos]
		pos++
		var pc uint64
		if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
			pc, pos = uint64(blk[pos]), pos+1
		} else if pc, pos = uvarintMultiAt(blk, pos); pos < 0 {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		if pc >= uint64(len(code)) {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: &code[pc]}
		if tag&tagTaken != 0 {
			var t uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				t, pos = uint64(blk[pos]), pos+1
			} else if t, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: target at event %d", ErrCorrupt, i)
			}
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if tag&tagWroteReg != 0 {
			var reg, uval uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				reg, pos = uint64(blk[pos]), pos+1
			} else if reg, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: reg at event %d", ErrCorrupt, i)
			}
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				uval, pos = uint64(blk[pos]), pos+1
			} else if uval, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: reg value at event %d", ErrCorrupt, i)
			}
			ev.WroteReg, ev.WrittenReg = true, isa.Reg(reg)
			ev.WrittenVal = int64(uval>>1) ^ -int64(uval&1)
		}
		if tag&tagHasMem != 0 {
			var addr, uval uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				addr, pos = uint64(blk[pos]), pos+1
			} else if addr, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: mem addr at event %d", ErrCorrupt, i)
			}
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				uval, pos = uint64(blk[pos]), pos+1
			} else if uval, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: mem value at event %d", ErrCorrupt, i)
			}
			ev.MemAddr = addr
			ev.MemVal = int64(uval>>1) ^ -int64(uval&1)
		}
	}
	if full && pos != len(blk) {
		return fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(blk)-pos)
	}
	return nil
}

// --- packed event records (archive blocks) ---
//
// The replay archive's block payload is built for decode speed, and the
// key observation is the same one the interpreter's predecode stage
// exploits: almost everything about a retired instruction is static.
// The decoder holds the program, so the record stream only carries what
// interpretation actually discovered at run time —
//
//   - the taken bit of conditional branches (which also drives the
//     decoder's pc: not-taken falls through, taken jumps to the static
//     target, so pc is decoder state and is never encoded),
//   - return targets (the one control transfer whose destination is
//     dynamic),
//   - written values and memory addresses/values.
//
// Everything else — the instruction, WrittenReg (always Instr.Rd),
// whether a record carries a value or an address, whether the event is
// a loop-detector run boundary — comes from a per-pc template table
// (see buildTmpls) precomputed once per recording. A load's MemVal
// equals its WrittenVal, so loads carry one value, not two.
//
// Per event: one header byte, then 0-2 little-endian fields whose
// byte widths (1, 2, 4 or 8) the header's 2-bit length codes announce:
//
//	bit0:    taken (control kinds only; drives the pc chain)
//	bits1-2: primary length code — WrittenVal (ALU/seq, zigzag),
//	         MemVal (load/store, zigzag), or Target (ret, unsigned)
//	bits3-4: mem-addr length code (load/store)
//	bits5-7: zero
//
// Headers and fields live in separate planes of the block payload:
// all count header bytes first, then the field bytes in event order.
// The split is what makes decode fast. Interleaved, the position of
// event i+1 depends on loading event i's header and extracting its
// length codes — a ~7-cycle serial chain (load, shift, add) that no
// amount of out-of-order hardware can hide, exactly the x86 prefix
// problem predecode solves for the interpreter. Split into planes,
// header addresses are a counter (the loads issue arbitrarily far
// ahead) and the field-position chain is a 1-cycle add of a width
// that is ready early.
//
// Fields decode with one unconditional 8-byte load and a width mask;
// the field plane ends with blockPad zero bytes so those loads can
// never run past the buffer.

// blockPad is the zero padding sealing every packed block payload.
const blockPad = 8

// lenCode returns the 2-bit code of the smallest field width holding u.
func lenCode(u uint64) byte {
	switch {
	case u < 1<<8:
		return 0
	case u < 1<<16:
		return 1
	case u < 1<<32:
		return 2
	default:
		return 3
	}
}

// appendLE appends u in 1<<c little-endian bytes.
func appendLE(b []byte, u uint64, c byte) []byte {
	switch c {
	case 0:
		return append(b, byte(u))
	case 1:
		return append(b, byte(u), byte(u>>8))
	case 2:
		return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	default:
		return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
}

// zigzag maps a signed value to the unsigned form lenCode packs well.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// appendEventPacked encodes one event record in the packed archive
// format — the dynamic facts only, per the format comment above — onto
// the block's header and field planes. It is stateless: the pc chain is
// implied by the taken bits at decode.
//
// Signed values (WrittenVal, MemVal) are stored as the low bytes of
// their two's-complement form rather than zigzagged: zigzag(v) fits w
// bytes exactly when v sign-extends from w bytes, so the width code is
// the same either way, and the decoder recovers v with two shifts
// instead of a mask load plus the zigzag unfold.
func appendEventPacked(hdr, val []byte, ev *trace.Event) ([]byte, []byte) {
	switch ev.Instr.Kind {
	case isa.KindALU, isa.KindSeq:
		c := lenCode(zigzag(ev.WrittenVal))
		return append(hdr, c<<1), appendLE(val, uint64(ev.WrittenVal), c)
	case isa.KindLoad, isa.KindStore:
		c := lenCode(zigzag(ev.MemVal))
		a := lenCode(ev.MemAddr)
		val = appendLE(val, uint64(ev.MemVal), c)
		return append(hdr, c<<1|a<<3), appendLE(val, ev.MemAddr, a)
	case isa.KindBranch:
		if ev.Taken {
			return append(hdr, 1), val
		}
		return append(hdr, 0), val
	case isa.KindJump, isa.KindCall:
		return append(hdr, 1), val
	case isa.KindRet:
		t := uint64(ev.Target)
		c := lenCode(t)
		return append(hdr, 1|c<<1), appendLE(val, t, c)
	default: // halt, nop
		return append(hdr, 0), val
	}
}

// Template flags: the static per-pc facts the decoder branches on.
const (
	// tmplWroteReg marks register-writing kinds (ALU, load, seq).
	tmplWroteReg = 1 << 0
	// tmplHasMem marks loads and stores.
	tmplHasMem = 1 << 1
	// tmplRet marks returns: the one taken transfer whose target is in
	// the stream rather than the template.
	tmplRet = 1 << 2
	// tmplCtl marks loop-detector run boundaries (branch/jump/ret; see
	// trace.SegmentedBatchConsumer) for ctl side-channel collection.
	tmplCtl = 1 << 3
	// tmplFuse marks a plain register write (ALU/seq) whose static
	// successor is also one: the decoder's analogue of the interpreter's
	// superinstruction fusion, letting the fast path decode the pair in
	// one iteration — one dispatch, one loop trip — since neither event
	// can transfer control or touch the ctl side channel.
	tmplFuse = 1 << 4
)

// evTmpl is one per-pc decode template: the static share of every event
// retired at that pc.
type evTmpl struct {
	// in is the static instruction, shared by every decoded event.
	in *isa.Instr
	// target is the static transfer destination (branch/jump/call).
	target uint32
	flags  uint8
	// rd is the written register for tmplWroteReg kinds.
	rd uint8
}

// buildTmpls precomputes the decode-template table for a program image.
func buildTmpls(code []isa.Instr) []evTmpl {
	tmpls := make([]evTmpl, len(code))
	for i := range code {
		in := &code[i]
		t := &tmpls[i]
		t.in = in
		switch in.Kind {
		case isa.KindALU, isa.KindSeq:
			t.flags = tmplWroteReg
			t.rd = uint8(in.Rd)
		case isa.KindLoad:
			t.flags = tmplWroteReg | tmplHasMem
			t.rd = uint8(in.Rd)
		case isa.KindStore:
			t.flags = tmplHasMem
		case isa.KindBranch, isa.KindJump:
			t.flags = tmplCtl
			t.target = uint32(in.Target)
		case isa.KindCall:
			t.target = uint32(in.Target)
		case isa.KindRet:
			t.flags = tmplRet | tmplCtl
		}
	}
	// Fusion pass: mark plain register writes followed by another (the
	// exact-flag compare excludes loads, which carry tmplHasMem too).
	for i := 0; i+1 < len(tmpls); i++ {
		if tmpls[i].flags == tmplWroteReg && tmpls[i+1].flags == tmplWroteReg {
			tmpls[i].flags |= tmplFuse
		}
	}
	return tmpls
}

// maxFieldBytes is the largest per-event field payload: two 8-byte
// fields. Every speculative field load in the decoder's fast path stays
// within vpos+maxFieldBytes bytes.
const maxFieldBytes = 8 + 8

// fieldMask[c] masks an 8-byte field load down to width code c.
var fieldMask = [4]uint64{0xff, 0xffff, 0xffffffff, ^uint64(0)}

// decodeEventsPacked decodes len(evs) packed records from blk starting
// at header offset hpos (header plane ends at hlim), field offset vpos
// and program counter pc, numbering them from base, and returns the two
// offsets and pc after the last record — callers chunk a block into
// cache-sized sub-batches by threading all three through successive
// calls. When full is set this call decodes the block's final records:
// they must consume the header plane exactly and the fields must end at
// the blockPad zero padding. A prefix decode (budget truncation cutting
// a block mid-way) passes false and leaves the remaining records
// unread. Callers guarantee hlim+blockPad <= len(blk) (the parse-time
// frame check), so header reads below hlim are in bounds.
//
// When ctl is non-nil, the indices of decoded run-boundary events are
// appended to it (len(ctl) >= len(evs)) and their count returned,
// pre-segmenting the batch for trace.SegmentedBatchConsumer sinks.
func decodeEventsPacked(blk []byte, hpos, hlim, vpos int, pc uint64, evs []trace.Event, base uint64, tmpls []evTmpl, full bool, ctl []int32) (int, int, uint64, int, error) {
	n := len(blk)
	i := 0
	cn := 0

	// Fast path: while a whole worst-case field record fits, one bound
	// check per event covers every field read. The per-event branches
	// are on template flags — static program facts — so loop-dominated
	// traces predict them nearly perfectly. The header plane spends
	// exactly one byte per event, so reslicing it to hdr (indexed by i,
	// in lockstep with evs) folds its bound into the iteration count and
	// frees the registers hpos/hlim would pin across the loop body.
	hdr := blk[hpos:hlim]
	m := len(evs)
	if len(hdr) < m {
		m = len(hdr)
	}
	if vpos < 0 { // lets prove drop the per-arm blk[vpos:] slice checks
		return hpos, vpos, pc, cn, fmt.Errorf("%w: negative field offset", ErrCorrupt)
	}
	for i < m && vpos <= n-maxFieldBytes {
		if pc >= uint64(len(tmpls)) {
			return hpos + i, vpos, pc, cn, fmt.Errorf("%w: pc=%d at event %d", ErrCorrupt, pc, i)
		}
		t := &tmpls[pc]
		h := hdr[i]
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: t.in}
		next := pc + 1
		if f := t.flags; f&tmplWroteReg != 0 {
			x := binary.LittleEndian.Uint64(blk[vpos : vpos+8])
			w := 1 << (h >> 1 & 3)
			s := uint(64 - w<<3)
			vpos += w
			v := int64(x<<s) >> s
			ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(t.rd), v
			if f&tmplHasMem != 0 { // load: the address follows the value
				c := h >> 3 & 3
				a := binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
				vpos += 1 << c
				ev.MemAddr, ev.MemVal = a, v
			} else if f&tmplFuse != 0 && i+1 < m && vpos <= n-maxFieldBytes {
				// Fused pair: the successor is statically another plain
				// register write, so decode it in the same iteration.
				t2 := &tmpls[pc+1]
				h2 := hdr[i+1]
				x2 := binary.LittleEndian.Uint64(blk[vpos : vpos+8])
				w2 := 1 << (h2 >> 1 & 3)
				s2 := uint(64 - w2<<3)
				vpos += w2
				v2 := int64(x2<<s2) >> s2
				ev2 := &evs[i+1]
				*ev2 = trace.Event{Index: base + uint64(i+1), PC: isa.Addr(pc + 1), Instr: t2.in}
				ev2.WroteReg, ev2.WrittenReg, ev2.WrittenVal = true, isa.Reg(t2.rd), v2
				pc += 2
				i += 2
				continue
			}
		} else if f&tmplHasMem != 0 { // store
			x := binary.LittleEndian.Uint64(blk[vpos : vpos+8])
			w := 1 << (h >> 1 & 3)
			s := uint(64 - w<<3)
			vpos += w
			c := h >> 3 & 3
			a := binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
			vpos += 1 << c
			ev.MemAddr = a
			ev.MemVal = int64(x<<s) >> s
		} else {
			if h&1 != 0 { // taken transfer
				tgt := uint64(t.target)
				if f&tmplRet != 0 {
					c := h >> 1 & 3
					tgt = binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
					vpos += 1 << c
				}
				ev.Taken, ev.Target = true, isa.Addr(tgt)
				next = tgt
			}
			if ctl != nil && f&tmplCtl != 0 {
				ctl[cn] = int32(i)
				cn++
			}
		}
		pc = next
		i++
	}
	hpos += i

	// Checked tail: the last few records of a block, plus anything a
	// corrupted stream throws at a prefix decode.
	for ; i < len(evs); i++ {
		if pc >= uint64(len(tmpls)) {
			return hpos, vpos, pc, cn, fmt.Errorf("%w: pc=%d at event %d", ErrCorrupt, pc, i)
		}
		if hpos >= hlim {
			return hpos, vpos, pc, cn, fmt.Errorf("%w: block truncated at event %d", ErrCorrupt, i)
		}
		t := &tmpls[pc]
		h := blk[hpos]
		hpos++
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: t.in}
		next := pc + 1
		f := t.flags
		if f&(tmplWroteReg|tmplHasMem) != 0 {
			if vpos+8 > n {
				return hpos, vpos, pc, cn, fmt.Errorf("%w: value at event %d", ErrCorrupt, i)
			}
			w := 1 << (h >> 1 & 3)
			s := uint(64 - w<<3)
			v := int64(binary.LittleEndian.Uint64(blk[vpos:vpos+8])<<s) >> s
			vpos += w
			if f&tmplWroteReg != 0 {
				ev.WroteReg, ev.WrittenReg, ev.WrittenVal = true, isa.Reg(t.rd), v
			}
			if f&tmplHasMem != 0 {
				if vpos+8 > n {
					return hpos, vpos, pc, cn, fmt.Errorf("%w: mem addr at event %d", ErrCorrupt, i)
				}
				c := h >> 3 & 3
				a := binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
				vpos += 1 << c
				ev.MemAddr, ev.MemVal = a, v
			}
		} else if h&1 != 0 {
			tgt := uint64(t.target)
			if f&tmplRet != 0 {
				if vpos+8 > n {
					return hpos, vpos, pc, cn, fmt.Errorf("%w: ret target at event %d", ErrCorrupt, i)
				}
				c := h >> 1 & 3
				tgt = binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
				vpos += 1 << c
			}
			ev.Taken, ev.Target = true, isa.Addr(tgt)
			next = tgt
		}
		if ctl != nil && f&tmplCtl != 0 {
			ctl[cn] = int32(i)
			cn++
		}
		pc = next
	}
	if full {
		if hpos != hlim {
			return hpos, vpos, pc, cn, fmt.Errorf("%w: %d unread header bytes in block", ErrCorrupt, hlim-hpos)
		}
		if vpos != n-blockPad {
			return hpos, vpos, pc, cn, fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, n-blockPad-vpos)
		}
		for _, c := range blk[vpos:] {
			if c != 0 {
				return hpos, vpos, pc, cn, fmt.Errorf("%w: nonzero block padding", ErrCorrupt)
			}
		}
	}
	return hpos, vpos, pc, cn, nil
}

// decodeEventsCtl decodes len(evs) packed records from blk into
// control-plane events: it walks the header plane only, skipping over
// the field plane arithmetically (the 2-bit width codes say how many
// bytes each record spent without loading them). The single value-plane
// read left is the return target of ret records — the one control
// transfer whose destination is dynamic. ctl (len >= len(evs)) always
// receives the run-boundary indices; the count is returned.
//
// This path never re-validates the block tail — every block was
// full-decoded once at parse time (parseArchive / Commit), so a
// control-plane replay is working over bytes already proven well-formed.
// The offsets thread through successive calls exactly as in
// decodeEventsPacked, so full and ctl chunked decodes interleave
// identically with budget truncation.
func decodeEventsCtl(blk []byte, hpos, hlim, vpos int, pc uint64, evs []trace.CtlEvent, base uint64, tmpls []evTmpl, ctl []int32) (int, int, uint64, int, error) {
	n := len(blk)
	cn := 0
	hdr := blk[hpos:hlim]
	if len(hdr) < len(evs) {
		return hpos, vpos, pc, cn, fmt.Errorf("%w: block truncated at event %d", ErrCorrupt, len(hdr))
	}
	for i := 0; i < len(evs); i++ {
		if pc >= uint64(len(tmpls)) {
			return hpos + i, vpos, pc, cn, fmt.Errorf("%w: pc=%d at event %d", ErrCorrupt, pc, i)
		}
		t := &tmpls[pc]
		h := hdr[i]
		evs[i] = trace.CtlEvent{Index: base + uint64(i), PC: isa.Addr(pc), Instr: t.in}
		next := pc + 1
		if f := t.flags; f&(tmplWroteReg|tmplHasMem) != 0 {
			vpos += 1 << (h >> 1 & 3)
			if f&tmplHasMem != 0 {
				vpos += 1 << (h >> 3 & 3)
			} else if f&tmplFuse != 0 && i+1 < len(evs) {
				// Fused pair: the successor is statically another plain
				// register write, so spend its header byte in the same
				// iteration — the ctl analogue of the full decoder's pair
				// arm, with only width arithmetic on the field plane.
				evs[i+1] = trace.CtlEvent{Index: base + uint64(i+1),
					PC: isa.Addr(pc + 1), Instr: tmpls[pc+1].in}
				vpos += 1 << (hdr[i+1] >> 1 & 3)
				pc += 2
				i++
				continue
			}
		} else {
			if h&1 != 0 { // taken transfer
				tgt := uint64(t.target)
				if f&tmplRet != 0 {
					if vpos+8 > n {
						return hpos + i, vpos, pc, cn, fmt.Errorf("%w: ret target at event %d", ErrCorrupt, i)
					}
					c := h >> 1 & 3
					tgt = binary.LittleEndian.Uint64(blk[vpos:vpos+8]) & fieldMask[c]
					vpos += 1 << c
				}
				ev := &evs[i]
				ev.Taken, ev.Target = true, isa.Addr(tgt)
				next = tgt
			}
			if f&tmplCtl != 0 {
				ctl[cn] = int32(i)
				cn++
			}
		}
		pc = next
	}
	hpos += len(evs)
	if vpos > n-blockPad {
		return hpos, vpos, pc, cn, fmt.Errorf("%w: field plane overrun", ErrCorrupt)
	}
	return hpos, vpos, pc, cn, nil
}
