package tracefile

// Shared encode/decode primitives for the single-file trace format (v1/v2)
// and the replay archive: the program image and the packed event records
// are byte-identical across both containers, so the Writer/Reader pair and
// the Archive share these helpers instead of each owning a copy.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"dynloop/internal/isa"
	"dynloop/internal/program"
	"dynloop/internal/trace"
)

// byteSource is the reader subset the header decoders need; both
// bufio.Reader (streaming trace files) and bytes.Reader (in-memory
// archives) satisfy it.
type byteSource interface {
	io.ByteReader
	io.Reader
}

// maxInstrs bounds the embedded program size when reading untrusted
// files.
const maxInstrs = 64 << 20

// appendProgram encodes the program image (name, entry, instruction
// count, then each instruction's fields) onto buf.
func appendProgram(buf []byte, p *program.Program) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
	buf = append(buf, p.Name...)
	buf = binary.AppendUvarint(buf, uint64(p.Entry))
	buf = binary.AppendUvarint(buf, uint64(len(p.Code)))
	for i := range p.Code {
		in := &p.Code[i]
		buf = binary.AppendUvarint(buf, uint64(in.Kind))
		buf = binary.AppendUvarint(buf, uint64(in.Op))
		buf = binary.AppendUvarint(buf, uint64(in.Cond))
		buf = binary.AppendUvarint(buf, uint64(in.Rd))
		buf = binary.AppendUvarint(buf, uint64(in.Rs1))
		buf = binary.AppendUvarint(buf, uint64(in.Rs2))
		buf = binary.AppendVarint(buf, in.Imm)
		buf = binary.AppendUvarint(buf, uint64(in.Target))
	}
	return buf
}

// readProgram decodes and validates a program image. Errors wrap both
// ErrCorrupt and the underlying cause, so callers can distinguish a
// truncated source (io.EOF / io.ErrUnexpectedEOF) from malformed bytes.
func readProgram(br byteSource) (*program.Program, error) {
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name: %w", ErrCorrupt, err)
	}
	if nameLen > maxBlockBytes {
		return nil, fmt.Errorf("%w: name length %d", ErrCorrupt, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name bytes: %w", ErrCorrupt, err)
	}
	entry, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: entry: %w", ErrCorrupt, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: instruction count: %w", ErrCorrupt, err)
	}
	if count > maxInstrs {
		return nil, fmt.Errorf("%w: program too large (%d instructions)", ErrCorrupt, count)
	}
	code := make([]isa.Instr, count)
	for i := range code {
		in := &code[i]
		u := func() uint64 {
			v, e := binary.ReadUvarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		v := func() int64 {
			v, e := binary.ReadVarint(br)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		in.Kind = isa.Kind(u())
		in.Op = isa.ALUOp(u())
		in.Cond = isa.Cond(u())
		in.Rd = isa.Reg(u())
		in.Rs1 = isa.Reg(u())
		in.Rs2 = isa.Reg(u())
		in.Imm = v()
		in.Target = isa.Addr(u())
		if err != nil {
			return nil, fmt.Errorf("%w: instruction %d: %w", ErrCorrupt, i, err)
		}
	}
	p := &program.Program{Name: string(name), Code: code, Entry: isa.Addr(entry)}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: embedded program: %v", ErrCorrupt, err)
	}
	return p, nil
}

// appendEvent encodes one packed event record onto b: a tag byte (taken /
// wroteReg / hasMem bits), the pc, then the optional fields the tag
// announces. hasMem is derived from the instruction kind, exactly as the
// decoder rederives it, so a decoded event is field-identical to the
// interpreted one.
func appendEvent(b []byte, ev *trace.Event) []byte {
	var tag byte
	if ev.Taken {
		tag |= tagTaken
	}
	if ev.WroteReg {
		tag |= tagWroteReg
	}
	hasMem := ev.Instr.Kind == isa.KindLoad || ev.Instr.Kind == isa.KindStore
	if hasMem {
		tag |= tagHasMem
	}
	b = append(b, tag)
	b = binary.AppendUvarint(b, uint64(ev.PC))
	if ev.Taken {
		b = binary.AppendUvarint(b, uint64(ev.Target))
	}
	if ev.WroteReg {
		b = binary.AppendUvarint(b, uint64(ev.WrittenReg))
		b = binary.AppendVarint(b, ev.WrittenVal)
	}
	if hasMem {
		b = binary.AppendUvarint(b, ev.MemAddr)
		b = binary.AppendVarint(b, ev.MemVal)
	}
	return b
}

// contBits masks every byte's varint continuation bit in a 64-bit load.
const contBits = 0x8080808080808080

// keepBytes[k] masks a 64-bit load down to its first k+1 bytes.
var keepBytes = [8]uint64{
	0xff, 0xffff, 0xffffff, 0xffffffff,
	0xffffffffff, 0xffffffffffff, 0xffffffffffffff, 0xffffffffffffffff,
}

// uvarintMultiAt handles multi-byte varints. Register values and heap
// addresses make these common enough to matter, so varints of 2–8 bytes
// decode branch-free from one 64-bit load: locate the terminating byte
// with a bit scan, then compact the 7-bit groups.
func uvarintMultiAt(b []byte, pos int) (uint64, int) {
	if pos+8 <= len(b) {
		x := binary.LittleEndian.Uint64(b[pos:])
		if stops := ^x & contBits; stops != 0 {
			k := bits.TrailingZeros64(stops) >> 3 // byte index of the final byte
			x &= keepBytes[k&7]
			x = x&0x7f | x>>1&(0x7f<<7) | x>>2&(0x7f<<14) | x>>3&(0x7f<<21) |
				x>>4&(0x7f<<28) | x>>5&(0x7f<<35) | x>>6&(0x7f<<42) | x>>7&(0x7f<<49)
			return x, pos + k + 1
		}
	}
	v, k := binary.Uvarint(b[pos:])
	if k <= 0 {
		return 0, -1
	}
	return v, pos + k
}

// decodeEvents decodes len(evs) packed event records from blk into evs,
// numbering them from base and resolving Instr pointers into code. When
// full is set the records must consume blk exactly; a prefix decode
// (budget truncation cutting a block mid-way) passes false and leaves the
// remaining records unread.
func decodeEvents(blk []byte, evs []trace.Event, base uint64, code []isa.Instr, full bool) error {
	// The 1-byte varint fast path is hand-inlined at every field read:
	// this loop is the replay tier's entire per-instruction cost, and a
	// call per field is measurable at trace scale.
	pos := 0
	for i := range evs {
		if uint(pos) >= uint(len(blk)) {
			return fmt.Errorf("%w: block truncated at event %d", ErrCorrupt, i)
		}
		tag := blk[pos]
		pos++
		var pc uint64
		if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
			pc, pos = uint64(blk[pos]), pos+1
		} else if pc, pos = uvarintMultiAt(blk, pos); pos < 0 {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		if pc >= uint64(len(code)) {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: &code[pc]}
		if tag&tagTaken != 0 {
			var t uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				t, pos = uint64(blk[pos]), pos+1
			} else if t, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: target at event %d", ErrCorrupt, i)
			}
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if tag&tagWroteReg != 0 {
			var reg, uval uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				reg, pos = uint64(blk[pos]), pos+1
			} else if reg, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: reg at event %d", ErrCorrupt, i)
			}
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				uval, pos = uint64(blk[pos]), pos+1
			} else if uval, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: reg value at event %d", ErrCorrupt, i)
			}
			ev.WroteReg, ev.WrittenReg = true, isa.Reg(reg)
			ev.WrittenVal = int64(uval>>1) ^ -int64(uval&1)
		}
		if tag&tagHasMem != 0 {
			var addr, uval uint64
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				addr, pos = uint64(blk[pos]), pos+1
			} else if addr, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: mem addr at event %d", ErrCorrupt, i)
			}
			if uint(pos) < uint(len(blk)) && blk[pos] < 0x80 {
				uval, pos = uint64(blk[pos]), pos+1
			} else if uval, pos = uvarintMultiAt(blk, pos); pos < 0 {
				return fmt.Errorf("%w: mem value at event %d", ErrCorrupt, i)
			}
			ev.MemAddr = addr
			ev.MemVal = int64(uval>>1) ^ -int64(uval&1)
		}
	}
	if full && pos != len(blk) {
		return fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(blk)-pos)
	}
	return nil
}

// --- packed event records (archive blocks) ---
//
// The replay archive's block payload trades a little size for decode
// speed: instead of stop-bit varints (whose per-byte scan dominates the
// replay hot loop), every field carries a 2-bit byte-length code and is
// stored little-endian in 1, 2, 4 or 8 bytes. A field then decodes with
// one unconditional 8-byte load and a mask — no data-dependent
// branching. Each block payload ends with blockPad zero bytes so those
// loads can never run past the buffer.
//
// Per event:
//
//	h0:  bit0 taken, bit1 wroteReg, bit2 hasMem,
//	     bits3-4 pc length code, bits5-6 target length code
//	h1:  present iff wroteReg or hasMem —
//	     bits0-1 written-value code, bits2-3 mem-addr code,
//	     bits4-5 mem-value code
//	then pc, [target], [reg (always 1 byte), written value],
//	[mem addr, mem value]; signed values are zigzagged first.
//
// Length code c means 1<<c bytes.

const (
	pkTaken    = 1 << 0
	pkWroteReg = 1 << 1
	pkHasMem   = 1 << 2

	// blockPad is the zero padding sealing every packed block payload.
	blockPad = 8
)

// pkMask[c] keeps the low 1<<c bytes of a 64-bit load.
var pkMask = [4]uint64{0xff, 0xffff, 0xffffffff, ^uint64(0)}

// lenCode returns the 2-bit code of the smallest field width holding u.
func lenCode(u uint64) byte {
	switch {
	case u < 1<<8:
		return 0
	case u < 1<<16:
		return 1
	case u < 1<<32:
		return 2
	default:
		return 3
	}
}

// appendLE appends u in 1<<c little-endian bytes.
func appendLE(b []byte, u uint64, c byte) []byte {
	switch c {
	case 0:
		return append(b, byte(u))
	case 1:
		return append(b, byte(u), byte(u>>8))
	case 2:
		return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	default:
		return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
}

// zigzag maps a signed value to the unsigned form lenCode packs well.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// appendEventPacked encodes one event record in the packed archive
// format. hasMem is derived from the instruction kind, exactly as
// appendEvent does, so a decoded event is field-identical to the
// interpreted one.
func appendEventPacked(b []byte, ev *trace.Event) []byte {
	pc := uint64(ev.PC)
	pcC := lenCode(pc)
	h0 := pcC << 3
	var tgt uint64
	var tgtC byte
	if ev.Taken {
		tgt = uint64(ev.Target)
		tgtC = lenCode(tgt)
		h0 |= pkTaken | tgtC<<5
	}
	hasMem := ev.Instr.Kind == isa.KindLoad || ev.Instr.Kind == isa.KindStore
	if ev.WroteReg {
		h0 |= pkWroteReg
	}
	if hasMem {
		h0 |= pkHasMem
	}
	b = append(b, h0)
	var wval, mval uint64
	var wvalC, addrC, mvalC byte
	if ev.WroteReg || hasMem {
		if ev.WroteReg {
			wval = zigzag(ev.WrittenVal)
			wvalC = lenCode(wval)
		}
		if hasMem {
			mval = zigzag(ev.MemVal)
			addrC = lenCode(ev.MemAddr)
			mvalC = lenCode(mval)
		}
		b = append(b, wvalC|addrC<<2|mvalC<<4)
	}
	b = appendLE(b, pc, pcC)
	if ev.Taken {
		b = appendLE(b, tgt, tgtC)
	}
	if ev.WroteReg {
		b = append(b, byte(ev.WrittenReg))
		b = appendLE(b, wval, wvalC)
	}
	if hasMem {
		b = appendLE(b, ev.MemAddr, addrC)
		b = appendLE(b, mval, mvalC)
	}
	return b
}

// maxPackedEvent is the largest packed record: two header bytes, 8-byte
// pc and target, the register byte, and three more 8-byte values. Every
// speculative load in the decoder's fast path stays within
// pos+maxPackedEvent bytes.
const maxPackedEvent = 2 + 8 + 8 + 1 + 8 + 8 + 8

// decodeEventsPacked decodes len(evs) packed records from blk into evs,
// numbering them from base and resolving Instr pointers into code. When
// full is set the records plus the blockPad zero padding must consume
// blk exactly; a prefix decode (budget truncation cutting a block
// mid-way) passes false and leaves the remaining records unread.
func decodeEventsPacked(blk []byte, evs []trace.Event, base uint64, code []isa.Instr, full bool) error {
	pos, n := 0, len(blk)
	i := 0

	// Fast path: while a whole worst-case record fits, one bound check
	// per event covers every field read. The per-field branches stay —
	// loop-dominated traces repeat event shapes, so they predict nearly
	// perfectly and beat branchless masking in practice.
	for i < len(evs) && pos+maxPackedEvent <= n {
		h0 := blk[pos]
		pos++
		var h1 byte
		if h0&(pkWroteReg|pkHasMem) != 0 {
			h1 = blk[pos]
			pos++
		}
		c := h0 >> 3 & 3
		pc := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
		pos += 1 << c
		if pc >= uint64(len(code)) {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: &code[pc]}
		if h0&pkTaken != 0 {
			c := h0 >> 5 & 3
			t := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if h0&pkWroteReg != 0 {
			reg := blk[pos]
			pos++
			c := h1 & 3
			u := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.WroteReg, ev.WrittenReg = true, isa.Reg(reg)
			ev.WrittenVal = int64(u>>1) ^ -int64(u&1)
		}
		if h0&pkHasMem != 0 {
			c := h1 >> 2 & 3
			addr := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			c = h1 >> 4 & 3
			u := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.MemAddr = addr
			ev.MemVal = int64(u>>1) ^ -int64(u&1)
		}
		i++
	}

	// Checked tail: the last few records of a block, plus anything a
	// corrupted stream throws at a prefix decode.
	for ; i < len(evs); i++ {
		if pos >= n {
			return fmt.Errorf("%w: block truncated at event %d", ErrCorrupt, i)
		}
		h0 := blk[pos]
		pos++
		var h1 byte
		if h0&(pkWroteReg|pkHasMem) != 0 {
			if pos >= n {
				return fmt.Errorf("%w: header at event %d", ErrCorrupt, i)
			}
			h1 = blk[pos]
			pos++
		}
		if pos+8 > n {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		c := h0 >> 3 & 3
		pc := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
		pos += 1 << c
		if pc >= uint64(len(code)) {
			return fmt.Errorf("%w: pc at event %d", ErrCorrupt, i)
		}
		ev := &evs[i]
		*ev = trace.Event{Index: base + uint64(i), PC: isa.Addr(pc), Instr: &code[pc]}
		if h0&pkTaken != 0 {
			if pos+8 > n {
				return fmt.Errorf("%w: target at event %d", ErrCorrupt, i)
			}
			c := h0 >> 5 & 3
			t := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.Taken, ev.Target = true, isa.Addr(t)
		}
		if h0&pkWroteReg != 0 {
			if pos+9 > n {
				return fmt.Errorf("%w: reg at event %d", ErrCorrupt, i)
			}
			reg := blk[pos]
			pos++
			c := h1 & 3
			u := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.WroteReg, ev.WrittenReg = true, isa.Reg(reg)
			ev.WrittenVal = int64(u>>1) ^ -int64(u&1)
		}
		if h0&pkHasMem != 0 {
			if pos+8 > n {
				return fmt.Errorf("%w: mem addr at event %d", ErrCorrupt, i)
			}
			c := h1 >> 2 & 3
			addr := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			if pos+8 > n {
				return fmt.Errorf("%w: mem value at event %d", ErrCorrupt, i)
			}
			c = h1 >> 4 & 3
			u := binary.LittleEndian.Uint64(blk[pos:]) & pkMask[c]
			pos += 1 << c
			ev.MemAddr = addr
			ev.MemVal = int64(u>>1) ^ -int64(u&1)
		}
	}
	if full {
		if pos != n-blockPad {
			return fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, n-blockPad-pos)
		}
		for _, c := range blk[pos:] {
			if c != 0 {
				return fmt.Errorf("%w: nonzero block padding", ErrCorrupt)
			}
		}
	}
	return nil
}
