package trace

import (
	"testing"

	"dynloop/internal/isa"
)

func ev(pc isa.Addr, in isa.Instr, taken bool) *Event {
	e := &Event{PC: pc, Instr: &in, Taken: taken}
	if taken {
		e.Target = in.Target
	}
	return e
}

// TestTeeOrder checks fan-out order and completeness.
func TestTeeOrder(t *testing.T) {
	var order []string
	mk := func(name string) Consumer {
		return ConsumerFunc(func(*Event) { order = append(order, name) })
	}
	tee := Tee{mk("a"), mk("b"), mk("c")}
	tee.Consume(ev(0, isa.Nop(), false))
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

// TestCounter checks per-kind tallies and branch accounting.
func TestCounter(t *testing.T) {
	var c Counter
	c.Consume(ev(0, isa.Nop(), false))
	c.Consume(ev(1, isa.Branch(isa.CondEQZ, 1, 0), true))
	c.Consume(ev(2, isa.Branch(isa.CondEQZ, 1, 0), false))
	c.Consume(ev(3, isa.Jump(0), true))
	if c.Total != 4 {
		t.Fatalf("total = %d", c.Total)
	}
	if c.Branches != 2 || c.TakenBranches != 1 {
		t.Fatalf("branches %d/%d", c.TakenBranches, c.Branches)
	}
	if c.ByKind[isa.KindJump] != 1 || c.ByKind[isa.KindNop] != 1 {
		t.Fatalf("by kind: %v", c.ByKind)
	}
}

// TestRecorder checks events are copied, not aliased.
func TestRecorder(t *testing.T) {
	var r Recorder
	e := ev(5, isa.Jump(2), true)
	r.Consume(e)
	e.PC = 99 // mutate the producer's reused event
	if r.Events[0].PC != 5 {
		t.Fatal("recorder aliased the reused event")
	}
}

// TestHashSensitivity: the hash must react to PC, taken and target, and
// be reproducible.
func TestHashSensitivity(t *testing.T) {
	sum := func(events ...*Event) uint64 {
		h := NewHash()
		for _, e := range events {
			h.Consume(e)
		}
		return h.Sum
	}
	base := sum(ev(1, isa.Jump(2), true))
	if base != sum(ev(1, isa.Jump(2), true)) {
		t.Fatal("hash not reproducible")
	}
	if base == sum(ev(2, isa.Jump(2), true)) {
		t.Fatal("hash ignores PC")
	}
	if base == sum(ev(1, isa.Jump(3), true)) {
		t.Fatal("hash ignores target")
	}
	if base == sum(ev(1, isa.Branch(isa.CondEQZ, 0, 2), false)) {
		t.Fatal("hash ignores taken")
	}
}
