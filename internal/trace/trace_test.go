package trace

import (
	"testing"

	"dynloop/internal/isa"
)

func ev(pc isa.Addr, in isa.Instr, taken bool) *Event {
	e := &Event{PC: pc, Instr: &in, Taken: taken}
	if taken {
		e.Target = in.Target
	}
	return e
}

// TestTeeOrder checks fan-out order and completeness.
func TestTeeOrder(t *testing.T) {
	var order []string
	mk := func(name string) Consumer {
		return ConsumerFunc(func(*Event) { order = append(order, name) })
	}
	tee := Tee{mk("a"), mk("b"), mk("c")}
	tee.Consume(ev(0, isa.Nop(), false))
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

// TestCounter checks per-kind tallies and branch accounting.
func TestCounter(t *testing.T) {
	var c Counter
	c.Consume(ev(0, isa.Nop(), false))
	c.Consume(ev(1, isa.Branch(isa.CondEQZ, 1, 0), true))
	c.Consume(ev(2, isa.Branch(isa.CondEQZ, 1, 0), false))
	c.Consume(ev(3, isa.Jump(0), true))
	if c.Total != 4 {
		t.Fatalf("total = %d", c.Total)
	}
	if c.Branches != 2 || c.TakenBranches != 1 {
		t.Fatalf("branches %d/%d", c.TakenBranches, c.Branches)
	}
	if c.ByKind[isa.KindJump] != 1 || c.ByKind[isa.KindNop] != 1 {
		t.Fatalf("by kind: %v", c.ByKind)
	}
}

// TestRecorder checks events are copied, not aliased.
func TestRecorder(t *testing.T) {
	var r Recorder
	e := ev(5, isa.Jump(2), true)
	r.Consume(e)
	e.PC = 99 // mutate the producer's reused event
	if r.Events[0].PC != 5 {
		t.Fatal("recorder aliased the reused event")
	}
}

// batchStream builds a small mixed event stream for batch-equivalence
// checks.
func batchStream() []Event {
	ins := []isa.Instr{
		isa.Nop(),
		isa.Branch(isa.CondEQZ, 1, 0),
		isa.Jump(0),
		isa.MovI(1, 7),
	}
	evs := make([]Event, 0, 32)
	for i := 0; i < 32; i++ {
		in := &ins[i%len(ins)]
		e := Event{Index: uint64(i), PC: isa.Addr(i), Instr: in}
		if in.Kind == isa.KindJump || (in.Kind == isa.KindBranch && i%3 == 0) {
			e.Taken, e.Target = true, in.Target
		}
		evs = append(evs, e)
	}
	return evs
}

// TestBatchEquivalence: for every built-in consumer, ConsumeBatch must
// accumulate exactly what per-event Consume does.
func TestBatchEquivalence(t *testing.T) {
	evs := batchStream()

	var c1, c2 Counter
	h1, h2 := NewHash(), NewHash()
	var r1, r2 Recorder
	for i := range evs {
		c1.Consume(&evs[i])
		h1.Consume(&evs[i])
		r1.Consume(&evs[i])
	}
	// Deliver in uneven chunks to cross batch boundaries.
	for i := 0; i < len(evs); i += 5 {
		end := min(i+5, len(evs))
		c2.ConsumeBatch(evs[i:end])
		h2.ConsumeBatch(evs[i:end])
		r2.ConsumeBatch(evs[i:end])
	}
	if c1 != c2 {
		t.Fatalf("counter: batch %+v != scalar %+v", c2, c1)
	}
	if h1.Sum != h2.Sum {
		t.Fatalf("hash: batch %x != scalar %x", h2.Sum, h1.Sum)
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("recorder: %d != %d events", len(r2.Events), len(r1.Events))
	}
	for i := range r1.Events {
		if r1.Events[i] != r2.Events[i] {
			t.Fatalf("recorder event %d differs", i)
		}
	}
}

// TestAsBatch: the adapter unwraps native batch consumers and loops for
// scalar-only ones, preserving order.
func TestAsBatch(t *testing.T) {
	h := NewHash()
	if AsBatch(h) != BatchConsumer(h) {
		t.Fatal("AsBatch wrapped a native batch consumer")
	}
	var seen []uint64
	scalar := scalarOnly{f: func(e *Event) { seen = append(seen, e.Index) }}
	bc := AsBatch(scalar)
	evs := batchStream()
	bc.ConsumeBatch(evs[:4])
	bc.ConsumeBatch(evs[4:7])
	if len(seen) != 7 {
		t.Fatalf("adapter delivered %d events, want 7", len(seen))
	}
	for i, idx := range seen {
		if idx != uint64(i) {
			t.Fatalf("order broken at %d: %v", i, seen)
		}
	}
}

// scalarOnly implements Consumer but not BatchConsumer (ConsumerFunc
// would, via its ConsumeBatch method).
type scalarOnly struct{ f func(*Event) }

func (s scalarOnly) Consume(e *Event) { s.f(e) }

// TestTeeBatchMixed: a Tee over one batch-native and one scalar-only
// consumer delivers everything to both, in order.
func TestTeeBatchMixed(t *testing.T) {
	var c Counter
	var seen int
	tee := Tee{&c, scalarOnly{f: func(*Event) { seen++ }}}
	evs := batchStream()
	tee.ConsumeBatch(evs)
	if c.Total != uint64(len(evs)) || seen != len(evs) {
		t.Fatalf("tee delivered %d/%d, want %d", c.Total, seen, len(evs))
	}
}

// TestHashSensitivity: the hash must react to PC, taken and target, and
// be reproducible.
func TestHashSensitivity(t *testing.T) {
	sum := func(events ...*Event) uint64 {
		h := NewHash()
		for _, e := range events {
			h.Consume(e)
		}
		return h.Sum
	}
	base := sum(ev(1, isa.Jump(2), true))
	if base != sum(ev(1, isa.Jump(2), true)) {
		t.Fatal("hash not reproducible")
	}
	if base == sum(ev(2, isa.Jump(2), true)) {
		t.Fatal("hash ignores PC")
	}
	if base == sum(ev(1, isa.Jump(3), true)) {
		t.Fatal("hash ignores target")
	}
	if base == sum(ev(1, isa.Branch(isa.CondEQZ, 0, 2), false)) {
		t.Fatal("hash ignores taken")
	}
}
