package trace

import "dynloop/internal/isa"

// CtlEvent is the control-plane facet of a retired instruction: the five
// fields a control-flow consumer (loop detector, branch predictor,
// stream hash) reads, and nothing else. Producers that know every
// attached consumer is control-only fill CtlEvents instead of full
// Events — roughly a third of the stores per retired instruction — and
// the archive decoder can fill them from the header plane alone, without
// materializing the value plane at all.
//
// The batch-lifetime rules of Event apply unchanged: the slice passed to
// ConsumeCtlBatch is owned by the producer and reused after the call
// returns; Instr pointers stay valid for the lifetime of the program.
type CtlEvent struct {
	// Index is the 0-based dynamic instruction number.
	Index uint64
	// PC is the address of the instruction.
	PC isa.Addr
	// Instr points at the static instruction.
	Instr *isa.Instr
	// Taken reports the branch outcome; it is true for jumps, calls and
	// returns.
	Taken bool
	// Target is the resolved control-transfer destination when Taken
	// (for returns it is the popped return address). Zero otherwise.
	Target isa.Addr
}

// Planes is a bitmask of the event facets a consumer reads.
type Planes uint8

const (
	// PlaneCtl is the control facet: Index, PC, Instr, Taken, Target.
	PlaneCtl Planes = 1 << iota
	// PlaneData is the data facet: WroteReg, WrittenReg, WrittenVal,
	// MemAddr, MemVal.
	PlaneData
)

// CtlBatchConsumer receives control-plane batches. ctl carries the same
// producer-computed segmentation as SegmentedBatchConsumer: the
// ascending indices into evs of the control-transfer events that end
// loop-detector runs (branch, jump, ret — not call). Unlike the full
// path, ctl is always provided on this interface; control-plane
// producers compute it as a byproduct of filling evs.
//
// Producers deliver CtlEvents to a sink only when the sink implements
// this interface AND PlanesOf(sink) == PlaneCtl; a consumer that
// implements ConsumeCtlBatch must produce results observably identical
// to its ConsumeBatch given the same stream.
type CtlBatchConsumer interface {
	ConsumeCtlBatch(evs []CtlEvent, ctl []int32)
}

// PlaneDeclarer lets a consumer state which facets it reads, overriding
// the structural default of PlanesOf. Composite consumers (Broadcast,
// BatchTee) implement it to report the union of their members' needs,
// and conditional consumers (loopdet.Detector) implement it to demand
// the data facet only when an attached observer needs it.
type PlaneDeclarer interface {
	NeedPlanes() Planes
}

// PlanesOf reports the facets a consumer needs. A PlaneDeclarer answers
// for itself; otherwise a consumer that implements CtlBatchConsumer is
// control-only, and anything else needs both facets. Producers call this
// to pick the narrowest plane they may deliver.
func PlanesOf(c any) Planes {
	if d, ok := c.(PlaneDeclarer); ok {
		if p := d.NeedPlanes(); p != 0 {
			return p
		}
		return PlaneCtl
	}
	if _, ok := c.(CtlBatchConsumer); ok {
		return PlaneCtl
	}
	return PlaneCtl | PlaneData
}

// fullPlaneSink hides a consumer's control-plane capability so producers
// fall back to full-facet delivery; fullPlaneSegSink does the same while
// keeping the segmented fast path visible. Neither implements
// CtlBatchConsumer or PlaneDeclarer — that is the point.
type fullPlaneSink struct{ s BatchConsumer }

func (w fullPlaneSink) ConsumeBatch(evs []Event) { w.s.ConsumeBatch(evs) }

type fullPlaneSegSink struct{ s SegmentedBatchConsumer }

func (w fullPlaneSegSink) ConsumeBatch(evs []Event) { w.s.ConsumeBatch(evs) }
func (w fullPlaneSegSink) ConsumeBatchSegmented(evs []Event, ctl []int32) {
	w.s.ConsumeBatchSegmented(evs, ctl)
}

// ForceFullPlane wraps a consumer so PlanesOf reports both facets,
// forcing producers onto full-Event delivery regardless of the
// consumer's own capabilities. Equivalence tests use it to run the same
// consumer stack over both planes and compare results; the segmented
// fast path is preserved through the wrapper.
func ForceFullPlane(s BatchConsumer) BatchConsumer {
	if sc, ok := s.(SegmentedBatchConsumer); ok {
		return fullPlaneSegSink{sc}
	}
	return fullPlaneSink{s}
}
