package trace

import (
	"testing"

	"dynloop/internal/isa"
)

// ctlPass is a segPass that additionally accepts control-plane batches,
// recording them separately so tests can tell which plane delivered.
type ctlPass struct {
	segPass
	ctlBatches int
	ctlSum     uint64
	ctlIdx     []int32
}

func (p *ctlPass) ConsumeCtlBatch(evs []CtlEvent, ctl []int32) {
	p.ctlBatches++
	p.ctlIdx = append(p.ctlIdx, ctl...)
	for i := range evs {
		p.ctlSum += uint64(evs[i].PC)
	}
}

// declarerPass overrides the structural default with an explicit answer.
type declarerPass struct {
	ctlPass
	planes Planes
}

func (p *declarerPass) NeedPlanes() Planes { return p.planes }

// TestPlanesOf pins the negotiation rules: a declarer answers for itself
// (with 0 normalised to PlaneCtl), an undeclared CtlBatchConsumer is
// control-only, and anything else needs both facets.
func TestPlanesOf(t *testing.T) {
	both := PlaneCtl | PlaneData
	cases := []struct {
		name string
		c    any
		want Planes
	}{
		{"plain", &lifecyclePass{}, both},
		{"segmented", &segPass{}, both},
		{"ctl-capable", &ctlPass{}, PlaneCtl},
		{"counter", &Counter{}, PlaneCtl},
		{"hash", NewHash(), PlaneCtl},
		{"declares-both", &declarerPass{planes: both}, both},
		{"declares-ctl", &declarerPass{planes: PlaneCtl}, PlaneCtl},
		{"declares-zero", &declarerPass{planes: 0}, PlaneCtl},
		{"forced-full", ForceFullPlane(&ctlPass{}), both},
		{"forced-full-plain", ForceFullPlane(&lifecyclePass{}), both},
	}
	for _, tc := range cases {
		if got := PlanesOf(tc.c); got != tc.want {
			t.Errorf("PlanesOf(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestForceFullPlaneKeepsSegmented: the wrapper hides the control plane
// but must not cost the segmented fast path.
func TestForceFullPlaneKeepsSegmented(t *testing.T) {
	in := isa.Instr{Kind: isa.KindNop}
	evs := []Event{{PC: 1, Instr: &in}, {PC: 2, Instr: &in}}

	sp := &ctlPass{}
	w := ForceFullPlane(sp)
	if _, ok := w.(CtlBatchConsumer); ok {
		t.Fatal("ForceFullPlane left ConsumeCtlBatch visible")
	}
	sw, ok := w.(SegmentedBatchConsumer)
	if !ok {
		t.Fatal("ForceFullPlane hid ConsumeBatchSegmented")
	}
	sw.ConsumeBatchSegmented(evs, []int32{0})
	if sp.segBatches != 1 || sp.ctlBatches != 0 || sp.sum != 3 {
		t.Fatalf("wrapper delivery: %+v", sp)
	}

	pp := &lifecyclePass{}
	wp := ForceFullPlane(pp)
	if _, ok := wp.(SegmentedBatchConsumer); ok {
		t.Fatal("plain wrapper invented ConsumeBatchSegmented")
	}
	wp.ConsumeBatch(evs)
	if pp.batches != 1 || pp.sum != 3 {
		t.Fatalf("plain wrapper delivery: %+v", pp)
	}
}

// TestAsPassKeepsCtlVisible: the adapters must keep both the
// control-plane method and the wrapped consumer's declared planes
// visible, without making non-ctl consumers look control-only.
func TestAsPassKeepsCtlVisible(t *testing.T) {
	in := isa.Instr{Kind: isa.KindBranch}
	cevs := []CtlEvent{{PC: 7, Instr: &in, Taken: true, Target: 3}}

	cp := &ctlPass{}
	p := AsPass(cp)
	if PlanesOf(p) != PlaneCtl {
		t.Fatalf("adapted ctl consumer planes = %v", PlanesOf(p))
	}
	p.(CtlBatchConsumer).ConsumeCtlBatch(cevs, []int32{0})
	if cp.ctlBatches != 1 || cp.ctlSum != 7 {
		t.Fatalf("ctl delivery through adapter: %+v", cp)
	}
	if _, ok := p.(SegmentedBatchConsumer); !ok {
		t.Fatal("adapter hid ConsumeBatchSegmented")
	}

	// A Counter is ctl-capable but not segmentation-capable.
	var c Counter
	pc := AsPass(&c)
	if PlanesOf(pc) != PlaneCtl {
		t.Fatalf("adapted Counter planes = %v", PlanesOf(pc))
	}
	pc.(CtlBatchConsumer).ConsumeCtlBatch(cevs, []int32{0})
	if c.Total != 1 || c.TakenBranches != 1 {
		t.Fatalf("Counter through adapter: %+v", c)
	}

	// A plain consumer must NOT gain ctl capability from the adapter.
	if _, ok := AsPass(&struct{ BatchConsumer }{}).(CtlBatchConsumer); ok {
		t.Fatal("plain adapter invented ConsumeCtlBatch")
	}

	// Forcing full planes downgrades an adapted ctl consumer to both.
	if got := PlanesOf(AsPass(ForceFullPlane(cp))); got != PlaneCtl|PlaneData {
		t.Fatalf("forced-full adapted planes = %v", got)
	}
}

// TestBroadcastPlaneNegotiation: the broadcast is control-only exactly
// when every pass is.
func TestBroadcastPlaneNegotiation(t *testing.T) {
	both := PlaneCtl | PlaneData
	if got := NewBroadcast(0, AsPass(&ctlPass{}), AsPass(&Counter{})).NeedPlanes(); got != PlaneCtl {
		t.Fatalf("all-ctl broadcast planes = %v", got)
	}
	if got := NewBroadcast(0, AsPass(&ctlPass{}), &lifecyclePass{}).NeedPlanes(); got != both {
		t.Fatalf("mixed broadcast planes = %v", got)
	}
	if got := NewBroadcast(0).NeedPlanes(); got != PlaneCtl {
		t.Fatalf("empty broadcast planes = %v", got)
	}
	if got := (BatchTee{&Counter{}, NewHash()}).NeedPlanes(); got != PlaneCtl {
		t.Fatalf("all-ctl tee planes = %v", got)
	}
	if got := (BatchTee{&Counter{}, &Recorder{}}).NeedPlanes(); got != both {
		t.Fatalf("mixed tee planes = %v", got)
	}
}

// TestBroadcastCtlDelivery: control-plane batches reach every pass with
// the producer's ctl indices, inline and sharded, and the sharded path
// is safe against the producer reusing its buffers (the batch barrier).
func TestBroadcastCtlDelivery(t *testing.T) {
	br := isa.Instr{Kind: isa.KindBranch}
	run := func(shards int) (uint64, uint64) {
		a, b := &ctlPass{}, &ctlPass{}
		bc := NewBroadcast(shards, AsPass(a), AsPass(b))
		if bc.NeedPlanes() != PlaneCtl {
			t.Fatalf("shards=%d: planes = %v", shards, bc.NeedPlanes())
		}
		bc.Init()
		buf := make([]CtlEvent, 32)
		ctl := make([]int32, 32)
		pc := uint64(0)
		for epoch := 0; epoch < 50; epoch++ {
			for i := range buf {
				pc++
				buf[i] = CtlEvent{PC: isa.Addr(pc), Instr: &br, Taken: i%2 == 0}
			}
			ctl[0] = int32(epoch % len(buf))
			bc.ConsumeCtlBatch(buf, ctl[:1])
		}
		bc.Finalize()
		if a.ctlBatches != 50 || b.ctlBatches != 50 || a.batches != 0 || a.segBatches != 0 {
			t.Fatalf("shards=%d: a=%+v b=%+v", shards, a, b)
		}
		if len(a.ctlIdx) != 50 || a.ctlIdx[3] != 3 {
			t.Fatalf("shards=%d: ctl indices %v", shards, a.ctlIdx[:4])
		}
		if bc.Epochs() != 50 {
			t.Fatalf("shards=%d: epochs = %d", shards, bc.Epochs())
		}
		return a.ctlSum, b.ctlSum
	}
	ia, ib := run(0)
	for _, shards := range []int{2, 3} {
		sa, sb := run(shards)
		if sa != ia || sb != ib {
			t.Fatalf("shards=%d: sums %d/%d != inline %d/%d", shards, sa, sb, ia, ib)
		}
	}
}

// TestCtlConsumerEquivalence: Counter and Hash must produce identical
// results from a control-plane batch and from the equivalent full-Event
// batch — the contract ConsumeCtlBatch implementations promise.
func TestCtlConsumerEquivalence(t *testing.T) {
	br := isa.Instr{Kind: isa.KindBranch, Target: 4}
	add := isa.Instr{Kind: isa.KindALU}
	full := []Event{
		{Index: 0, PC: 1, Instr: &add, WroteReg: true, WrittenReg: 3, WrittenVal: 99, MemAddr: 8, MemVal: 7},
		{Index: 1, PC: 2, Instr: &br, Taken: true, Target: 4},
		{Index: 2, PC: 4, Instr: &br},
	}
	ctlEvs := make([]CtlEvent, len(full))
	for i, ev := range full {
		ctlEvs[i] = CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr, Taken: ev.Taken, Target: ev.Target}
	}
	ctl := []int32{1, 2}

	var cf, cc Counter
	cf.ConsumeBatch(full)
	cc.ConsumeCtlBatch(ctlEvs, ctl)
	if cf != cc {
		t.Fatalf("Counter: full %+v != ctl %+v", cf, cc)
	}

	hf, hc := NewHash(), NewHash()
	hf.ConsumeBatch(full)
	hc.ConsumeCtlBatch(ctlEvs, ctl)
	if hf.Sum != hc.Sum {
		t.Fatalf("Hash: full %#x != ctl %#x", hf.Sum, hc.Sum)
	}

	// BatchTee forwards the control plane to every member.
	var ct Counter
	ht := NewHash()
	tee := BatchTee{&ct, ht}
	tee.ConsumeCtlBatch(ctlEvs, ctl)
	if ct != cc || ht.Sum != hc.Sum {
		t.Fatalf("tee ctl delivery diverged: %+v %#x", ct, ht.Sum)
	}
}
