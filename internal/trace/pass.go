package trace

import "sync"

// Pass is one complete analysis lifecycle over an event stream: Init is
// called once before the first batch of a traversal, ConsumeBatch for
// every batch in stream order, Finalize once after the last batch. It is
// the unit the broadcast fan-out and harness.MultiRun schedule: any
// number of passes share a single traversal of the stream, each one as
// isolated as if it had run alone.
//
// The batch-lifetime rules of BatchConsumer apply unchanged: the slice
// passed to ConsumeBatch is owned by the producer, is reused for the
// next batch (the next "epoch", see Broadcast) as soon as every pass has
// returned, and must be treated as read-only — a pass that wrote to the
// shared buffer would corrupt its sibling passes.
type Pass interface {
	// Init is called once, before the first batch.
	Init()
	BatchConsumer
	// Finalize is called once, after the last batch of a completed
	// traversal (it is skipped when the traversal aborts on error).
	Finalize()
}

// passAdapter lifts a plain BatchConsumer into a Pass with no-op
// lifecycle hooks.
type passAdapter struct{ BatchConsumer }

func (passAdapter) Init()     {}
func (passAdapter) Finalize() {}

// segPassAdapter is passAdapter for segmentation-capable consumers; the
// embedded interface keeps ConsumeBatchSegmented visible through the
// Pass so Broadcast's segmented delivery reaches the consumer.
type segPassAdapter struct{ SegmentedBatchConsumer }

func (segPassAdapter) Init()     {}
func (segPassAdapter) Finalize() {}

// ctlPassAdapter and ctlSegPassAdapter are the control-plane-capable
// variants: they keep ConsumeCtlBatch (and the consumer's declared
// planes) visible through the Pass, so Broadcast's facet negotiation
// still sees the wrapped consumer's capabilities. Distinct adapter types
// matter here — a single adapter that always implemented
// CtlBatchConsumer would make every wrapped consumer look control-only.
type ctlPassAdapter struct {
	BatchConsumer
	ctl CtlBatchConsumer
}

func (ctlPassAdapter) Init()     {}
func (ctlPassAdapter) Finalize() {}
func (a ctlPassAdapter) ConsumeCtlBatch(evs []CtlEvent, ctl []int32) {
	a.ctl.ConsumeCtlBatch(evs, ctl)
}
func (a ctlPassAdapter) NeedPlanes() Planes { return PlanesOf(a.BatchConsumer) }

type ctlSegPassAdapter struct {
	SegmentedBatchConsumer
	ctl CtlBatchConsumer
}

func (ctlSegPassAdapter) Init()     {}
func (ctlSegPassAdapter) Finalize() {}
func (a ctlSegPassAdapter) ConsumeCtlBatch(evs []CtlEvent, ctl []int32) {
	a.ctl.ConsumeCtlBatch(evs, ctl)
}
func (a ctlSegPassAdapter) NeedPlanes() Planes { return PlanesOf(a.SegmentedBatchConsumer) }

// AsPass adapts a plain batch consumer to the Pass interface with no-op
// Init/Finalize. Consumers that already implement Pass are returned
// unwrapped; segmentation-capable and control-plane-capable consumers
// keep those methods visible through the adapter.
func AsPass(c BatchConsumer) Pass {
	if p, ok := c.(Pass); ok {
		return p
	}
	sc, segOK := c.(SegmentedBatchConsumer)
	cc, ctlOK := c.(CtlBatchConsumer)
	switch {
	case segOK && ctlOK:
		return ctlSegPassAdapter{sc, cc}
	case ctlOK:
		return ctlPassAdapter{c, cc}
	case segOK:
		return segPassAdapter{sc}
	}
	return passAdapter{c}
}

// Broadcast fans one event stream out to any number of passes, so a
// single traversal of the stream (one interpreter run, one trace-file
// replay) feeds every registered analysis at once.
//
// # Buffer epochs
//
// The producer owns the batch buffer and reuses it for the next batch as
// soon as ConsumeBatch returns; each delivery is therefore one buffer
// "epoch". Broadcast's contract is that it never lets an epoch escape:
// ConsumeBatch returns — and the producer may overwrite the buffer —
// only after every pass, on every shard, has finished consuming the
// batch. With Shards <= 1 that is trivially true (passes run inline, in
// registration order); with Shards > 1 each batch is a barrier: the
// shard goroutines all consume the epoch concurrently (each pass still
// sees every batch in stream order, on its home shard) and ConsumeBatch
// blocks until the last shard is done. Epochs() counts deliveries.
//
// Passes never interact, so sharding changes wall-clock only, never
// results. Init and Finalize always run inline in registration order.
//
// Broadcast negotiates event facets for the whole fan-out: NeedPlanes
// reports the union of the passes' needs, and when every pass is
// control-only a producer may deliver compact CtlEvent batches through
// ConsumeCtlBatch instead of full Events.
type Broadcast struct {
	passes []Pass
	shards [][]Pass
	work   []chan shardEpoch
	wg     sync.WaitGroup
	epochs uint64
}

// shardEpoch is one delivery to a shard worker: a full-plane batch
// (optionally with its segmentation indices) or a control-plane batch.
// Exactly one of evs/ctlEvs is non-nil.
type shardEpoch struct {
	evs    []Event
	ctlEvs []CtlEvent
	ctl    []int32
	seg    bool // ctl holds segmentation indices for evs
}

// NewBroadcast returns a broadcast over the passes. shards <= 1 delivers
// inline; shards > 1 spreads the passes round-robin over that many
// goroutines (capped at the pass count), started by Init and stopped by
// Finalize or Stop.
func NewBroadcast(shards int, passes ...Pass) *Broadcast {
	b := &Broadcast{passes: passes}
	if shards > len(passes) {
		shards = len(passes)
	}
	if shards > 1 {
		b.shards = make([][]Pass, shards)
		for i, p := range passes {
			b.shards[i%shards] = append(b.shards[i%shards], p)
		}
	}
	return b
}

// Epochs returns the number of batches delivered so far.
func (b *Broadcast) Epochs() uint64 { return b.epochs }

// NeedPlanes reports the union of the passes' facet needs: control-only
// exactly when every pass is control-only. It is computed on demand so
// passes added after construction are counted.
func (b *Broadcast) NeedPlanes() Planes {
	var p Planes
	for _, pass := range b.passes {
		p |= PlanesOf(pass)
	}
	if p == 0 {
		p = PlaneCtl
	}
	return p
}

// Init initialises every pass in registration order, then starts the
// shard workers (if sharded).
func (b *Broadcast) Init() {
	for _, p := range b.passes {
		p.Init()
	}
	if b.shards == nil {
		return
	}
	b.work = make([]chan shardEpoch, len(b.shards))
	for i, shard := range b.shards {
		ch := make(chan shardEpoch)
		b.work[i] = ch
		go func(shard []Pass, ch <-chan shardEpoch) {
			for e := range ch {
				switch {
				case e.ctlEvs != nil:
					for _, p := range shard {
						p.(CtlBatchConsumer).ConsumeCtlBatch(e.ctlEvs, e.ctl)
					}
				case e.seg:
					for _, p := range shard {
						if sp, ok := p.(SegmentedBatchConsumer); ok {
							sp.ConsumeBatchSegmented(e.evs, e.ctl)
							continue
						}
						p.ConsumeBatch(e.evs)
					}
				default:
					for _, p := range shard {
						p.ConsumeBatch(e.evs)
					}
				}
				b.wg.Done()
			}
		}(shard, ch)
	}
}

// ConsumeBatch delivers one epoch to every pass and returns once all of
// them are done with it, so the producer may safely reuse the buffer.
func (b *Broadcast) ConsumeBatch(evs []Event) {
	b.epochs++
	if b.work == nil {
		for _, p := range b.passes {
			p.ConsumeBatch(evs)
		}
		return
	}
	b.barrier(shardEpoch{evs: evs})
}

// ConsumeBatchSegmented delivers one epoch with its producer-computed
// control-transfer indices. Passes that implement
// SegmentedBatchConsumer receive the indices and skip their own kind
// scan; other passes get a plain ConsumeBatch. Sharded delivery forwards
// the indices to each shard worker — the batch barrier keeps the ctl
// slice (reused by the producer, like evs) safe to share.
func (b *Broadcast) ConsumeBatchSegmented(evs []Event, ctl []int32) {
	b.epochs++
	if b.work == nil {
		for _, p := range b.passes {
			if sp, ok := p.(SegmentedBatchConsumer); ok {
				sp.ConsumeBatchSegmented(evs, ctl)
				continue
			}
			p.ConsumeBatch(evs)
		}
		return
	}
	b.barrier(shardEpoch{evs: evs, ctl: ctl, seg: true})
}

// ConsumeCtlBatch delivers one control-plane epoch. Producers call it
// only when NeedPlanes() == PlaneCtl, which guarantees every pass
// implements CtlBatchConsumer.
func (b *Broadcast) ConsumeCtlBatch(evs []CtlEvent, ctl []int32) {
	b.epochs++
	if b.work == nil {
		for _, p := range b.passes {
			p.(CtlBatchConsumer).ConsumeCtlBatch(evs, ctl)
		}
		return
	}
	b.barrier(shardEpoch{ctlEvs: evs, ctl: ctl})
}

// barrier sends one epoch to every shard worker and blocks until all of
// them are done, so the producer may safely reuse its buffers.
func (b *Broadcast) barrier(e shardEpoch) {
	b.wg.Add(len(b.work))
	for _, ch := range b.work {
		ch <- e
	}
	b.wg.Wait()
}

// Finalize stops the shard workers and finalises every pass in
// registration order.
func (b *Broadcast) Finalize() {
	b.Stop()
	for _, p := range b.passes {
		p.Finalize()
	}
}

// Stop shuts the shard workers down without finalising the passes; use
// it on the error path of an aborted traversal (Finalize calls it).
// Calling Stop or Finalize more than once is safe.
func (b *Broadcast) Stop() {
	for _, ch := range b.work {
		close(ch)
	}
	b.work = nil
}
