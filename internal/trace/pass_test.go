package trace

import (
	"testing"

	"dynloop/internal/isa"
)

// lifecyclePass records the lifecycle callbacks it receives and sums the
// PCs it sees, for order and equivalence checks.
type lifecyclePass struct {
	inits, finals int
	batches       int
	sum           uint64
	order         *[]string
	name          string
}

func (p *lifecyclePass) Init() {
	p.inits++
	if p.order != nil {
		*p.order = append(*p.order, p.name+".init")
	}
}

func (p *lifecyclePass) Finalize() {
	p.finals++
	if p.order != nil {
		*p.order = append(*p.order, p.name+".final")
	}
}

func (p *lifecyclePass) ConsumeBatch(evs []Event) {
	p.batches++
	for i := range evs {
		p.sum += uint64(evs[i].PC)
	}
}

// TestAsPassUnwrapsNative: a consumer that already implements Pass comes
// back unwrapped; a plain consumer gains no-op hooks.
func TestAsPassUnwrapsNative(t *testing.T) {
	p := &lifecyclePass{}
	if AsPass(p) != Pass(p) {
		t.Fatal("native pass was wrapped")
	}
	var c Counter
	adapted := AsPass(&c)
	adapted.Init()
	in := isa.Instr{Kind: isa.KindNop}
	adapted.ConsumeBatch([]Event{{Instr: &in}, {Instr: &in}})
	adapted.Finalize()
	if c.Total != 2 {
		t.Fatalf("adapted consumer saw %d events", c.Total)
	}
}

// TestBroadcastLifecycleOrder: Init and Finalize run inline in
// registration order, exactly once, and every pass sees every batch.
func TestBroadcastLifecycleOrder(t *testing.T) {
	var order []string
	a := &lifecyclePass{order: &order, name: "a"}
	b := &lifecyclePass{order: &order, name: "b"}
	bc := NewBroadcast(0, a, b)
	bc.Init()
	in := isa.Instr{Kind: isa.KindNop}
	bc.ConsumeBatch([]Event{{PC: 1, Instr: &in}, {PC: 2, Instr: &in}})
	bc.ConsumeBatch([]Event{{PC: 3, Instr: &in}})
	bc.Finalize()
	want := []string{"a.init", "b.init", "a.final", "b.final"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if a.sum != 6 || b.sum != 6 || a.batches != 2 || b.batches != 2 {
		t.Fatalf("a = %+v, b = %+v", a, b)
	}
	if bc.Epochs() != 2 {
		t.Fatalf("epochs = %d, want 2", bc.Epochs())
	}
}

// TestBroadcastShardedEquivalence: sharded delivery sees exactly the
// same events as inline delivery, for every pass, even when the producer
// reuses one buffer across epochs — the per-batch barrier keeps the
// epoch from escaping.
func TestBroadcastShardedEquivalence(t *testing.T) {
	in := isa.Instr{Kind: isa.KindNop}
	run := func(shards int) []uint64 {
		passes := make([]Pass, 5)
		lps := make([]*lifecyclePass, 5)
		for i := range passes {
			lps[i] = &lifecyclePass{}
			passes[i] = lps[i]
		}
		bc := NewBroadcast(shards, passes...)
		bc.Init()
		buf := make([]Event, 64) // one reusable buffer, like the interpreter's
		pc := uint64(0)
		for epoch := 0; epoch < 100; epoch++ {
			for i := range buf {
				pc++
				buf[i] = Event{PC: isa.Addr(pc), Instr: &in}
			}
			bc.ConsumeBatch(buf)
		}
		bc.Finalize()
		sums := make([]uint64, len(lps))
		for i, p := range lps {
			if p.inits != 1 || p.finals != 1 || p.batches != 100 {
				t.Fatalf("shards=%d: pass %d lifecycle %+v", shards, i, p)
			}
			sums[i] = p.sum
		}
		return sums
	}
	inline := run(0)
	for _, shards := range []int{2, 3, 8} {
		sharded := run(shards)
		for i := range inline {
			if sharded[i] != inline[i] {
				t.Fatalf("shards=%d: pass %d sum %d != inline %d", shards, i, sharded[i], inline[i])
			}
		}
	}
}

// TestBroadcastStopIdempotent: Stop twice, or Stop then Finalize, must
// not panic or double-finalise.
func TestBroadcastStopIdempotent(t *testing.T) {
	p := &lifecyclePass{}
	bc := NewBroadcast(2, p, p)
	bc.Init()
	bc.Stop()
	bc.Stop()
	bc.Finalize()
}

// segPass counts segmented vs plain deliveries and copies the ctl
// indices it receives.
type segPass struct {
	lifecyclePass
	segBatches int
	ctl        []int32
}

func (p *segPass) ConsumeBatchSegmented(evs []Event, ctl []int32) {
	p.segBatches++
	p.ctl = append(p.ctl, ctl...)
	for i := range evs {
		p.sum += uint64(evs[i].PC)
	}
}

// TestBroadcastSegmentedDelivery: segmentation-capable passes receive
// the producer's ctl indices and plain passes get ConsumeBatch — on the
// inline path AND on the sharded path (the shard channels forward the
// indices with the epoch; the per-batch barrier keeps the shared ctl
// slice inside its epoch). AsPass must keep the segmented method visible
// through its adapter.
func TestBroadcastSegmentedDelivery(t *testing.T) {
	in := isa.Instr{Kind: isa.KindNop}
	evs := []Event{{PC: 1, Instr: &in}, {PC: 2, Instr: &in}, {PC: 3, Instr: &in}}
	ctl := []int32{1}

	for _, shards := range []int{0, 2} {
		sp := &segPass{}
		pp := &lifecyclePass{}
		bc := NewBroadcast(shards, AsPass(sp), pp)
		bc.Init()
		bc.ConsumeBatchSegmented(evs, ctl)
		bc.Finalize()
		if sp.segBatches != 1 || sp.batches != 0 {
			t.Fatalf("shards=%d: segmented pass got seg=%d plain=%d, want 1/0",
				shards, sp.segBatches, sp.batches)
		}
		if len(sp.ctl) != 1 || sp.ctl[0] != 1 {
			t.Fatalf("shards=%d: ctl = %v, want [1]", shards, sp.ctl)
		}
		if sp.sum != 6 {
			t.Fatalf("shards=%d: sum = %d, want 6", shards, sp.sum)
		}
		if pp.batches != 1 {
			t.Fatalf("shards=%d: plain pass got %d batches", shards, pp.batches)
		}
		if bc.Epochs() != 1 {
			t.Fatalf("shards=%d: epochs = %d", shards, bc.Epochs())
		}
	}
}
