// Package trace defines the dynamic instruction event model that connects
// the interpreter (the producer) to the loop detector, statistics
// collectors and speculation engine (the consumers).
//
// The interpreter retires instructions into a reusable batch buffer and
// flushes it through the BatchConsumer interface; one ConsumeBatch call
// replaces thousands of per-instruction interface dispatches. The older
// per-event Consumer interface remains for callers that genuinely want
// one event at a time; AsBatch adapts such a consumer to the batch
// pipeline.
//
// # Batch lifetime
//
// The batch slice passed to ConsumeBatch — like the pointee passed to
// Consume — is owned by the producer and reused for the next batch as
// soon as the call returns. Consumers must copy any event (or field)
// they want to keep beyond the callback; retaining the slice itself is
// never safe. Event.Instr pointers are the exception: they point into
// the program image and stay valid for the lifetime of the program.
// TestBatchBufferIsReused and the -race CI job enforce these rules.
package trace

import "dynloop/internal/isa"

// Event describes one retired dynamic instruction.
type Event struct {
	// Index is the 0-based dynamic instruction number.
	Index uint64
	// PC is the address of the instruction.
	PC isa.Addr
	// Instr points at the static instruction. The pointer stays valid for
	// the lifetime of the program; only the Event struct itself is reused.
	Instr *isa.Instr
	// Taken reports the branch outcome; it is true for jumps, calls and
	// returns.
	Taken bool
	// Target is the resolved control-transfer destination when Taken
	// (for returns it is the popped return address). Zero otherwise.
	Target isa.Addr

	// The data facet, used by the §4 live-in statistics.

	// WroteReg/WrittenReg/WrittenVal describe the register write, if any.
	WroteReg   bool
	WrittenReg isa.Reg
	WrittenVal int64
	// MemAddr is the effective address of a load or store.
	MemAddr uint64
	// MemVal is the value loaded or stored.
	MemVal int64
}

// Consumer receives retired-instruction events one at a time.
type Consumer interface {
	// Consume processes one event. The pointee is reused by the producer
	// after the call returns.
	Consume(ev *Event)
}

// BatchConsumer receives retired-instruction events in batches. This is
// the pipeline's native delivery interface: producers (the interpreter,
// the trace-file replayer) fill a reusable buffer and flush it here.
type BatchConsumer interface {
	// ConsumeBatch processes evs in stream order. The slice and its
	// backing array are reused by the producer after the call returns;
	// consumers must copy anything they keep (see the package comment).
	ConsumeBatch(evs []Event)
}

// SegmentedBatchConsumer is a BatchConsumer that can additionally accept
// producer-computed stream segmentation. ctl holds the ascending indices
// into evs of the control-transfer events that end loop-detector runs —
// exactly the events whose Instr.Kind is KindBranch, KindJump or KindRet
// (calls are not run boundaries; §2.1 of the paper). Producers that
// already know where those events are (the interpreter's dispatch, the
// trace-file block decoder) hand the indices over so consumers skip
// their own per-event kind scan; ConsumeBatchSegmented(evs, ctl) must be
// observably identical to ConsumeBatch(evs). ctl, like evs, is reused by
// the producer after the call returns.
type SegmentedBatchConsumer interface {
	BatchConsumer
	ConsumeBatchSegmented(evs []Event, ctl []int32)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(ev *Event)

// Consume calls f(ev).
func (f ConsumerFunc) Consume(ev *Event) { f(ev) }

// ConsumeBatch calls f for each event in order.
func (f ConsumerFunc) ConsumeBatch(evs []Event) {
	for i := range evs {
		f(&evs[i])
	}
}

// BatchConsumerFunc adapts a function to the BatchConsumer interface.
type BatchConsumerFunc func(evs []Event)

// ConsumeBatch calls f(evs).
func (f BatchConsumerFunc) ConsumeBatch(evs []Event) { f(evs) }

// batchAdapter delivers a batch to a per-event consumer.
type batchAdapter struct{ c Consumer }

func (a batchAdapter) ConsumeBatch(evs []Event) {
	for i := range evs {
		a.c.Consume(&evs[i])
	}
}

// AsBatch adapts a legacy per-event consumer to the batch interface.
// Consumers that already implement BatchConsumer (every consumer in this
// module does) are returned unwrapped, so their native batch fast path
// is used.
func AsBatch(c Consumer) BatchConsumer {
	if bc, ok := c.(BatchConsumer); ok {
		return bc
	}
	return batchAdapter{c}
}

// Tee fans one event stream out to several per-event consumers in order.
type Tee []Consumer

// Consume forwards ev to every consumer in order.
func (t Tee) Consume(ev *Event) {
	for _, c := range t {
		c.Consume(ev)
	}
}

// ConsumeBatch forwards the batch to every consumer, using each
// consumer's native batch path when it has one. Batch-capable members
// see whole batches; per-event members see the events one at a time, in
// order.
func (t Tee) ConsumeBatch(evs []Event) {
	for _, c := range t {
		if bc, ok := c.(BatchConsumer); ok {
			bc.ConsumeBatch(evs)
			continue
		}
		for i := range evs {
			c.Consume(&evs[i])
		}
	}
}

// BatchTee fans one batch stream out to several batch consumers in
// order. It is the fully batch-native composition the harness builds.
type BatchTee []BatchConsumer

// ConsumeBatch forwards the batch to every consumer in order.
func (t BatchTee) ConsumeBatch(evs []Event) {
	for _, c := range t {
		c.ConsumeBatch(evs)
	}
}

// NeedPlanes reports the union of the members' facet needs, so a tee is
// control-only exactly when every member is.
func (t BatchTee) NeedPlanes() Planes {
	var p Planes
	for _, c := range t {
		p |= PlanesOf(c)
	}
	if p == 0 {
		p = PlaneCtl
	}
	return p
}

// ConsumeCtlBatch forwards a control-plane batch to every consumer.
// Producers only deliver here when NeedPlanes() == PlaneCtl, which
// guarantees every member implements CtlBatchConsumer.
func (t BatchTee) ConsumeCtlBatch(evs []CtlEvent, ctl []int32) {
	for _, c := range t {
		c.(CtlBatchConsumer).ConsumeCtlBatch(evs, ctl)
	}
}

// Counter counts retired instructions by kind. The zero value is ready to
// use.
type Counter struct {
	// Total is the number of events seen.
	Total uint64
	// ByKind counts events per instruction kind.
	ByKind [16]uint64
	// TakenBranches counts taken conditional branches.
	TakenBranches uint64
	// Branches counts all conditional branches.
	Branches uint64
}

// Consume tallies the event.
func (c *Counter) Consume(ev *Event) {
	c.Total++
	c.ByKind[ev.Instr.Kind]++
	if ev.Instr.Kind == isa.KindBranch {
		c.Branches++
		if ev.Taken {
			c.TakenBranches++
		}
	}
}

// ConsumeBatch tallies every event in the batch.
func (c *Counter) ConsumeBatch(evs []Event) {
	c.Total += uint64(len(evs))
	for i := range evs {
		ev := &evs[i]
		c.ByKind[ev.Instr.Kind]++
		if ev.Instr.Kind == isa.KindBranch {
			c.Branches++
			if ev.Taken {
				c.TakenBranches++
			}
		}
	}
}

// ConsumeCtlBatch tallies every event in a control-plane batch; the
// tallies read only control-facet fields, so the counts match the full
// path exactly.
func (c *Counter) ConsumeCtlBatch(evs []CtlEvent, _ []int32) {
	c.Total += uint64(len(evs))
	for i := range evs {
		ev := &evs[i]
		c.ByKind[ev.Instr.Kind]++
		if ev.Instr.Kind == isa.KindBranch {
			c.Branches++
			if ev.Taken {
				c.TakenBranches++
			}
		}
	}
}

// Recorder stores copies of every event; it is a test helper.
type Recorder struct {
	// Events holds the copied events in order.
	Events []Event
}

// Consume appends a copy of the event.
func (r *Recorder) Consume(ev *Event) { r.Events = append(r.Events, *ev) }

// ConsumeBatch appends a copy of every event in the batch.
func (r *Recorder) ConsumeBatch(evs []Event) { r.Events = append(r.Events, evs...) }

// Hash is a 64-bit FNV-1a accumulator over the control-flow facet of the
// stream (PC, taken, target). Two runs with the same seed must produce the
// same hash; determinism tests rely on it.
type Hash struct {
	// Sum is the running hash; read it after the run.
	Sum uint64
}

// NewHash returns a Hash with the standard FNV-1a offset basis.
func NewHash() *Hash { return &Hash{Sum: 14695981039346656037} }

const fnvPrime = 1099511628211

// Consume folds the event's control-flow fields into the hash.
func (h *Hash) Consume(ev *Event) {
	s := h.Sum
	s = (s ^ uint64(ev.PC)) * fnvPrime
	t := uint64(0)
	if ev.Taken {
		t = 1
	}
	s = (s ^ t) * fnvPrime
	s = (s ^ uint64(ev.Target)) * fnvPrime
	h.Sum = s
}

// ConsumeBatch folds the whole batch into the hash, keeping the running
// sum in a register across the loop.
func (h *Hash) ConsumeBatch(evs []Event) {
	s := h.Sum
	for i := range evs {
		ev := &evs[i]
		s = (s ^ uint64(ev.PC)) * fnvPrime
		t := uint64(0)
		if ev.Taken {
			t = 1
		}
		s = (s ^ t) * fnvPrime
		s = (s ^ uint64(ev.Target)) * fnvPrime
	}
	h.Sum = s
}

// ConsumeCtlBatch folds a control-plane batch into the hash. The hash
// covers every event (not just control transfers), so it walks the whole
// batch and ignores ctl; the sum is identical to the full-Event path
// because only control-facet fields are folded in.
func (h *Hash) ConsumeCtlBatch(evs []CtlEvent, _ []int32) {
	s := h.Sum
	for i := range evs {
		ev := &evs[i]
		s = (s ^ uint64(ev.PC)) * fnvPrime
		t := uint64(0)
		if ev.Taken {
			t = 1
		}
		s = (s ^ t) * fnvPrime
		s = (s ^ uint64(ev.Target)) * fnvPrime
	}
	h.Sum = s
}
