// Package trace defines the dynamic instruction event model that connects
// the interpreter (the producer) to the loop detector, statistics
// collectors and speculation engine (the consumers).
//
// The interpreter emits one Event per retired instruction. Events are
// passed by pointer and reused by the producer: consumers must copy any
// field they want to keep beyond the callback.
package trace

import "dynloop/internal/isa"

// Event describes one retired dynamic instruction.
type Event struct {
	// Index is the 0-based dynamic instruction number.
	Index uint64
	// PC is the address of the instruction.
	PC isa.Addr
	// Instr points at the static instruction. The pointer stays valid for
	// the lifetime of the program; only the Event struct itself is reused.
	Instr *isa.Instr
	// Taken reports the branch outcome; it is true for jumps, calls and
	// returns.
	Taken bool
	// Target is the resolved control-transfer destination when Taken
	// (for returns it is the popped return address). Zero otherwise.
	Target isa.Addr

	// The data facet, used by the §4 live-in statistics.

	// WroteReg/WrittenReg/WrittenVal describe the register write, if any.
	WroteReg   bool
	WrittenReg isa.Reg
	WrittenVal int64
	// MemAddr is the effective address of a load or store.
	MemAddr uint64
	// MemVal is the value loaded or stored.
	MemVal int64
}

// Consumer receives retired-instruction events.
type Consumer interface {
	// Consume processes one event. The pointee is reused by the producer
	// after the call returns.
	Consume(ev *Event)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(ev *Event)

// Consume calls f(ev).
func (f ConsumerFunc) Consume(ev *Event) { f(ev) }

// Tee fans one event stream out to several consumers in order.
type Tee []Consumer

// Consume forwards ev to every consumer in order.
func (t Tee) Consume(ev *Event) {
	for _, c := range t {
		c.Consume(ev)
	}
}

// Counter counts retired instructions by kind. The zero value is ready to
// use.
type Counter struct {
	// Total is the number of events seen.
	Total uint64
	// ByKind counts events per instruction kind.
	ByKind [16]uint64
	// TakenBranches counts taken conditional branches.
	TakenBranches uint64
	// Branches counts all conditional branches.
	Branches uint64
}

// Consume tallies the event.
func (c *Counter) Consume(ev *Event) {
	c.Total++
	c.ByKind[ev.Instr.Kind]++
	if ev.Instr.Kind == isa.KindBranch {
		c.Branches++
		if ev.Taken {
			c.TakenBranches++
		}
	}
}

// Recorder stores copies of every event; it is a test helper.
type Recorder struct {
	// Events holds the copied events in order.
	Events []Event
}

// Consume appends a copy of the event.
func (r *Recorder) Consume(ev *Event) { r.Events = append(r.Events, *ev) }

// Hash is a 64-bit FNV-1a accumulator over the control-flow facet of the
// stream (PC, taken, target). Two runs with the same seed must produce the
// same hash; determinism tests rely on it.
type Hash struct {
	// Sum is the running hash; read it after the run.
	Sum uint64
}

// NewHash returns a Hash with the standard FNV-1a offset basis.
func NewHash() *Hash { return &Hash{Sum: 14695981039346656037} }

const fnvPrime = 1099511628211

// Consume folds the event's control-flow fields into the hash.
func (h *Hash) Consume(ev *Event) {
	s := h.Sum
	s = (s ^ uint64(ev.PC)) * fnvPrime
	t := uint64(0)
	if ev.Taken {
		t = 1
	}
	s = (s ^ t) * fnvPrime
	s = (s ^ uint64(ev.Target)) * fnvPrime
	h.Sum = s
}
