package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestCondHolds enumerates every condition against signed values.
func TestCondHolds(t *testing.T) {
	cases := []struct {
		c    Cond
		v    int64
		want bool
	}{
		{CondEQZ, 0, true}, {CondEQZ, 1, false},
		{CondNEZ, 0, false}, {CondNEZ, -1, true},
		{CondLTZ, -1, true}, {CondLTZ, 0, false},
		{CondGEZ, 0, true}, {CondGEZ, -1, false},
		{CondGTZ, 1, true}, {CondGTZ, 0, false},
		{CondLEZ, 0, true}, {CondLEZ, 1, false},
	}
	for _, tc := range cases {
		if got := tc.c.Holds(tc.v); got != tc.want {
			t.Errorf("%s.Holds(%d) = %v, want %v", tc.c, tc.v, got, tc.want)
		}
	}
}

// TestCondComplement property: every value satisfies exactly one of each
// complementary pair.
func TestCondComplement(t *testing.T) {
	pairs := [][2]Cond{{CondEQZ, CondNEZ}, {CondLTZ, CondGEZ}, {CondGTZ, CondLEZ}}
	f := func(v int64) bool {
		for _, p := range pairs {
			if p[0].Holds(v) == p[1].Holds(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadsWrites checks the dataflow metadata used by the live-in
// tracker.
func TestReadsWrites(t *testing.T) {
	cases := []struct {
		in        Instr
		wantReads []Reg
		wantWrite Reg
		writes    bool
	}{
		{ALU(OpAdd, 3, 1, 2), []Reg{1, 2}, 3, true},
		{AddI(3, 1, 5), []Reg{1}, 3, true},
		{MovI(3, 5), nil, 3, true},
		{Mov(3, 1), []Reg{1}, 3, true},
		{Load(3, 1, 0), []Reg{1}, 3, true},
		{Store(1, 0, 2), []Reg{1, 2}, 0, false},
		{Branch(CondEQZ, 1, 0), []Reg{1}, 0, false},
		{Jump(0), nil, 0, false},
		{Seq(3, 0), nil, 3, true},
		{Halt(), nil, 0, false},
	}
	for _, tc := range cases {
		got := tc.in.Reads(nil)
		if len(got) != len(tc.wantReads) {
			t.Errorf("%s: reads %v, want %v", tc.in, got, tc.wantReads)
			continue
		}
		for i := range got {
			if got[i] != tc.wantReads[i] {
				t.Errorf("%s: reads %v, want %v", tc.in, got, tc.wantReads)
			}
		}
		r, ok := tc.in.WritesReg()
		if ok != tc.writes || (ok && r != tc.wantWrite) {
			t.Errorf("%s: writes (%d,%v), want (%d,%v)", tc.in, r, ok, tc.wantWrite, tc.writes)
		}
	}
}

// TestDisassembly spot-checks mnemonics (they appear in CLI output and
// debugging dumps).
func TestDisassembly(t *testing.T) {
	cases := map[string]Instr{
		"add r3, r1, r2":  ALU(OpAdd, 3, 1, 2),
		"movi r5, -7":     MovI(5, -7),
		"ld r2, 8(r1)":    Load(2, 1, 8),
		"st r2, 4(r1)":    Store(1, 4, 2),
		"br.nez r1, @12":  Branch(CondNEZ, 1, 12),
		"jmp @3":          Jump(3),
		"call @9":         Call(9),
		"ret":             Ret(),
		"seq r4, #2":      Seq(4, 2),
		"halt":            Halt(),
		"nop":             Nop(),
		"addi r2, r2, -1": AddI(2, 2, -1),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestKindProperties covers IsControl and the kind names.
func TestKindProperties(t *testing.T) {
	control := map[Kind]bool{
		KindBranch: true, KindJump: true, KindCall: true, KindRet: true,
		KindALU: false, KindLoad: false, KindStore: false,
		KindSeq: false, KindHalt: false, KindNop: false,
	}
	for k, want := range control {
		if k.IsControl() != want {
			t.Errorf("%s.IsControl() = %v, want %v", k, !want, want)
		}
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	// TouchesMem gates the MemAddr/MemVal event facet; the trace codecs
	// and the predecoder both key off it, so pin it kind by kind.
	for k, want := range map[Kind]bool{
		KindLoad: true, KindStore: true,
		KindALU: false, KindBranch: false, KindJump: false, KindCall: false,
		KindRet: false, KindSeq: false, KindHalt: false, KindNop: false,
		Kind(99): false,
	} {
		if k.TouchesMem() != want {
			t.Errorf("%s.TouchesMem() = %v, want %v", k, !want, want)
		}
	}
}

// TestStringsExhaustive: every defined kind, op and condition has a
// distinct human-readable name (they appear in disassembly and reports).
func TestStringsExhaustive(t *testing.T) {
	kinds := []Kind{KindALU, KindLoad, KindStore, KindBranch, KindJump,
		KindCall, KindRet, KindSeq, KindHalt, KindNop}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] || strings.Contains(s, "(") {
			t.Errorf("kind %d name %q", k, s)
		}
		seen[s] = true
	}
	ops := []ALUOp{OpAdd, OpAddI, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpMovI, OpMov, OpSlt, OpMod}
	seen = map[string]bool{}
	for _, o := range ops {
		s := o.String()
		if seen[s] || strings.Contains(s, "(") {
			t.Errorf("op %d name %q", o, s)
		}
		seen[s] = true
	}
	conds := []Cond{CondEQZ, CondNEZ, CondLTZ, CondGEZ, CondGTZ, CondLEZ}
	seen = map[string]bool{}
	for _, c := range conds {
		s := c.String()
		if seen[s] || strings.Contains(s, "(") {
			t.Errorf("cond %d name %q", c, s)
		}
		seen[s] = true
	}
	// Unknown values degrade gracefully instead of panicking.
	if !strings.Contains(Kind(99).String(), "99") ||
		!strings.Contains(ALUOp(99).String(), "99") ||
		!strings.Contains(Cond(99).String(), "99") {
		t.Error("unknown enum values must render their number")
	}
	// ALU disassembly for 3-register forms.
	for _, o := range []ALUOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSlt, OpMod} {
		if s := ALU(o, 1, 2, 3).String(); !strings.Contains(s, "r1, r2, r3") {
			t.Errorf("ALU disasm %q", s)
		}
	}
	if Cond(99).Holds(0) {
		t.Error("unknown condition must not hold")
	}
}
