// Package isa defines the instruction set of the trace substrate.
//
// The paper's mechanism observes the retired instruction stream of a
// conventional ISA (DEC Alpha in the paper). Only a small amount of
// structure matters to it: instruction addresses, the classification of
// control transfers into branches, jumps, calls and returns, branch
// outcomes, and — for the data-speculation statistics of §4 — the registers
// and memory locations an instruction reads and writes. This package
// defines a minimal RISC-style ISA carrying exactly that structure.
//
// Addresses are instruction indexes (word addressing): instruction i of a
// program lives at address Addr(i).
package isa

import "fmt"

// Addr is an instruction address. Programs are word-addressed: the i-th
// instruction of a program has address Addr(i).
type Addr uint32

// Reg names one of the NumRegs general-purpose integer registers.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 32

// Kind classifies an instruction. The loop detector only distinguishes
// KindBranch, KindJump, KindCall and KindRet; everything else is opaque
// "work".
type Kind uint8

const (
	// KindALU is a register-to-register arithmetic/logic operation.
	KindALU Kind = iota
	// KindLoad reads memory at Rs1+Imm into Rd.
	KindLoad
	// KindStore writes Rs2 to memory at Rs1+Imm.
	KindStore
	// KindBranch is a conditional branch: if Cond holds for Rs1 the PC
	// moves to Target, otherwise it falls through.
	KindBranch
	// KindJump is an unconditional jump to Target.
	KindJump
	// KindCall transfers control to Target and pushes the return address
	// (the address after the call) onto the call stack. Calls never
	// terminate loop executions (§2.1 of the paper).
	KindCall
	// KindRet pops the call stack and transfers control there.
	KindRet
	// KindSeq reads the next value of input sequence Imm into Rd. It is
	// the substitute for input data (see DESIGN.md): trip counts and data
	// values that in the paper came from the SPEC95 reference inputs come
	// from deterministic seeded sequences here.
	KindSeq
	// KindHalt stops the machine.
	KindHalt
	// KindNop does nothing for one cycle.
	KindNop
)

// String returns the mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindLoad:
		return "ld"
	case KindStore:
		return "st"
	case KindBranch:
		return "br"
	case KindJump:
		return "jmp"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	case KindSeq:
		return "seq"
	case KindHalt:
		return "halt"
	case KindNop:
		return "nop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsControl reports whether instructions of this kind can redirect the PC.
func (k Kind) IsControl() bool {
	switch k {
	case KindBranch, KindJump, KindCall, KindRet:
		return true
	}
	return false
}

// TouchesMem reports whether instructions of this kind access data
// memory (and therefore carry the MemAddr/MemVal event facet). The
// trace codecs and the interpreter's predecoder share this single
// definition so an encoded event always round-trips field-identical.
func (k Kind) TouchesMem() bool {
	return k == KindLoad || k == KindStore
}

// ALUOp selects the operation of a KindALU instruction.
type ALUOp uint8

const (
	// OpAdd computes Rd = Rs1 + Rs2.
	OpAdd ALUOp = iota
	// OpAddI computes Rd = Rs1 + Imm.
	OpAddI
	// OpSub computes Rd = Rs1 - Rs2.
	OpSub
	// OpMul computes Rd = Rs1 * Rs2.
	OpMul
	// OpAnd computes Rd = Rs1 & Rs2.
	OpAnd
	// OpOr computes Rd = Rs1 | Rs2.
	OpOr
	// OpXor computes Rd = Rs1 ^ Rs2.
	OpXor
	// OpShl computes Rd = Rs1 << (Imm & 63).
	OpShl
	// OpShr computes Rd = Rs1 >> (Imm & 63) (arithmetic).
	OpShr
	// OpMovI loads the immediate: Rd = Imm.
	OpMovI
	// OpMov copies a register: Rd = Rs1.
	OpMov
	// OpSlt computes Rd = 1 if Rs1 < Rs2 else 0.
	OpSlt
	// OpMod computes Rd = Rs1 mod Rs2 (0 when Rs2 == 0).
	OpMod
)

// String returns the mnemonic of the ALU operation.
func (o ALUOp) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpAddI:
		return "addi"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpShl:
		return "shl"
	case OpShr:
		return "shr"
	case OpMovI:
		return "movi"
	case OpMov:
		return "mov"
	case OpSlt:
		return "slt"
	case OpMod:
		return "mod"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Cond selects the condition of a KindBranch instruction; the condition is
// evaluated against register Rs1.
type Cond uint8

const (
	// CondEQZ branches when Rs1 == 0.
	CondEQZ Cond = iota
	// CondNEZ branches when Rs1 != 0.
	CondNEZ
	// CondLTZ branches when Rs1 < 0.
	CondLTZ
	// CondGEZ branches when Rs1 >= 0.
	CondGEZ
	// CondGTZ branches when Rs1 > 0.
	CondGTZ
	// CondLEZ branches when Rs1 <= 0.
	CondLEZ
)

// String returns the mnemonic of the condition.
func (c Cond) String() string {
	switch c {
	case CondEQZ:
		return "eqz"
	case CondNEZ:
		return "nez"
	case CondLTZ:
		return "ltz"
	case CondGEZ:
		return "gez"
	case CondGTZ:
		return "gtz"
	case CondLEZ:
		return "lez"
	default:
		return fmt.Sprintf("cond(%d)", uint8(c))
	}
}

// Holds reports whether the condition holds for the value v.
func (c Cond) Holds(v int64) bool {
	switch c {
	case CondEQZ:
		return v == 0
	case CondNEZ:
		return v != 0
	case CondLTZ:
		return v < 0
	case CondGEZ:
		return v >= 0
	case CondGTZ:
		return v > 0
	case CondLEZ:
		return v <= 0
	default:
		return false
	}
}

// Instr is one machine instruction. The zero value is a NOP-like ALU
// instruction; use the constructor helpers for readable code.
type Instr struct {
	Kind   Kind
	Op     ALUOp // KindALU only
	Cond   Cond  // KindBranch only
	Rd     Reg   // destination (ALU, Load, Seq)
	Rs1    Reg   // first source (ALU, Load, Store base, Branch condition)
	Rs2    Reg   // second source (ALU, Store value)
	Imm    int64 // immediate (ALU, Load/Store offset, Seq id)
	Target Addr  // control-transfer target (Branch, Jump, Call)
}

// ALU builds a three-register ALU instruction.
func ALU(op ALUOp, rd, rs1, rs2 Reg) Instr {
	return Instr{Kind: KindALU, Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// AddI builds Rd = Rs1 + Imm.
func AddI(rd, rs1 Reg, imm int64) Instr {
	return Instr{Kind: KindALU, Op: OpAddI, Rd: rd, Rs1: rs1, Imm: imm}
}

// MovI builds Rd = Imm.
func MovI(rd Reg, imm int64) Instr {
	return Instr{Kind: KindALU, Op: OpMovI, Rd: rd, Imm: imm}
}

// Mov builds Rd = Rs1.
func Mov(rd, rs1 Reg) Instr {
	return Instr{Kind: KindALU, Op: OpMov, Rd: rd, Rs1: rs1}
}

// Load builds Rd = mem[Rs1 + Imm].
func Load(rd, rs1 Reg, off int64) Instr {
	return Instr{Kind: KindLoad, Rd: rd, Rs1: rs1, Imm: off}
}

// Store builds mem[Rs1 + Imm] = Rs2.
func Store(rs1 Reg, off int64, rs2 Reg) Instr {
	return Instr{Kind: KindStore, Rs1: rs1, Rs2: rs2, Imm: off}
}

// Branch builds a conditional branch on Rs1 to target.
func Branch(c Cond, rs1 Reg, target Addr) Instr {
	return Instr{Kind: KindBranch, Cond: c, Rs1: rs1, Target: target}
}

// Jump builds an unconditional jump to target.
func Jump(target Addr) Instr {
	return Instr{Kind: KindJump, Target: target}
}

// Call builds a subroutine call to target.
func Call(target Addr) Instr {
	return Instr{Kind: KindCall, Target: target}
}

// Ret builds a subroutine return.
func Ret() Instr {
	return Instr{Kind: KindRet}
}

// Seq builds Rd = next value of sequence id.
func Seq(rd Reg, id int64) Instr {
	return Instr{Kind: KindSeq, Rd: rd, Imm: id}
}

// Halt builds the halt instruction.
func Halt() Instr {
	return Instr{Kind: KindHalt}
}

// Nop builds a no-op.
func Nop() Instr {
	return Instr{Kind: KindNop}
}

// Reads appends to dst the registers this instruction reads and returns the
// extended slice. It is used by the data-speculation tracker.
func (in *Instr) Reads(dst []Reg) []Reg {
	switch in.Kind {
	case KindALU:
		switch in.Op {
		case OpMovI:
			// no register sources
		case OpAddI, OpMov, OpShl, OpShr:
			dst = append(dst, in.Rs1)
		default:
			dst = append(dst, in.Rs1, in.Rs2)
		}
	case KindLoad:
		dst = append(dst, in.Rs1)
	case KindStore:
		dst = append(dst, in.Rs1, in.Rs2)
	case KindBranch:
		dst = append(dst, in.Rs1)
	}
	return dst
}

// WritesReg reports whether the instruction writes a register, and which.
func (in *Instr) WritesReg() (Reg, bool) {
	switch in.Kind {
	case KindALU, KindLoad, KindSeq:
		return in.Rd, true
	}
	return 0, false
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Kind {
	case KindALU:
		switch in.Op {
		case OpMovI:
			return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
		case OpAddI:
			return fmt.Sprintf("addi r%d, r%d, %d", in.Rd, in.Rs1, in.Imm)
		case OpMov:
			return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
		case OpShl, OpShr:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		default:
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
		}
	case KindLoad:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case KindStore:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case KindBranch:
		return fmt.Sprintf("br.%s r%d, @%d", in.Cond, in.Rs1, in.Target)
	case KindJump:
		return fmt.Sprintf("jmp @%d", in.Target)
	case KindCall:
		return fmt.Sprintf("call @%d", in.Target)
	case KindRet:
		return "ret"
	case KindSeq:
		return fmt.Sprintf("seq r%d, #%d", in.Rd, in.Imm)
	case KindHalt:
		return "halt"
	case KindNop:
		return "nop"
	default:
		return fmt.Sprintf("?%d", in.Kind)
	}
}
