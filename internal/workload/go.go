package workload

import (
	"dynloop/internal/builder"
	"dynloop/internal/interp"
	"dynloop/internal/isa"
)

// gobench — 099.go: the Go-playing program (named gobench internally to
// avoid clashing with the language). Paper profile: 709 static loops,
// 3.76 iter/exec, 156.6 instr/iter, nesting 4.86 avg / 11 max (the
// deepest); Table 2: the second-worst TPC (1.06) with a 71.17% hit ratio
// and an enormous 69749-instruction verification distance. Game-tree
// search: move loops inside a recursive searcher are cut short by
// alpha-beta-style early returns, speculated move iterations carry whole
// subtrees (hence the huge verification distance) and usually die.
func init() {
	register(Benchmark{
		Name:        "go",
		Suite:       "int",
		Description: "game-tree search: recursive move loops with cutoffs",
		Paper:       PaperRow{709, 3.76, 156.60, 4.86, 11, 1.06, 71.17},
		Build:       buildGo,
	})
}

func buildGo(seed uint64) (*builder.Unit, error) {
	b := builder.New("go", seed)
	setupBases(b)

	// Board-evaluation helpers: lots of distinct static loops across many
	// pattern matchers (this is where go's 709 statics come from).
	loopFarm(b, 360,
		func(i int) builder.Trip { return builder.TripImm(int64(2 + i%7)) },
		func(i int) int { return 8 + i%14 })

	rowScan := b.NoisySeq(func() interp.Sequence { return interp.Const(6) }, 3, 0.6)
	group := b.GeometricSeq(1, 0.6, 12)
	evalBoard := b.Func("eval_board", func() {
		// Nested scans: row x chain x liberty walks (the depth that gives
		// go the deepest nesting in the suite).
		b.CountedLoop(builder.TripSeq(rowScan), builder.LoopOpt{}, func() {
			b.Work(72)
			b.CountedLoop(builder.TripSeq(group), builder.LoopOpt{}, func() {
				b.Work(62)
				b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
					b.Work(20)
				})
			})
		})
	})

	// The searcher: a move loop inside a recursive function with
	// frequent cutoffs (early returns).
	moves := b.BernoulliSeq(0.70)  // continue trying moves (mean ~3.3)
	recurse := b.BernoulliSeq(0.5) // expand this move
	cutoff := b.BernoulliSeq(0.24) // alpha-beta cutoff: return mid-loop
	search := b.Declare("search")
	b.Define(search, func() {
		b.WhileSeq(moves, func() {
			b.Work(108) // generate + rank one move
			b.Call(evalBoard)
			b.IfSeq(recurse, func() {
				b.IfReg(isa.CondGTZ, 15, func() { // depth guard in r15
					b.Advance(15, -1)
					b.Call(search)
					b.Advance(15, 1)
				}, nil)
			}, nil)
			b.IfSeq(cutoff, func() { b.Return() }, nil)
		})
	})

	// Loop-free driver: one game is a tree of move decisions, not a loop
	// (see callTree) — the game loop in real go is far too coarse to
	// iterate inside the measurement window.
	callTree(b, 8, 8, func() {
		b.Work(80)
		b.MovI(15, 10)
		b.Call(search)
	})
	return b.Build()
}
