package workload

import "dynloop/internal/builder"

// swim — 102.swim: shallow-water finite differences on a rectangular
// grid. The paper's profile (Table 1): 79 static loops, 188.5
// iterations/execution, 278.9 instructions/iteration, nesting 2.99 avg /
// 3 max; Table 2: TPC 3.48, 99.91% hit at 4 TUs. The defining features
// are a tiny number of big, perfectly regular 2-level stencils with
// constant trip counts inside a time-step driver, so the STR predictor is
// essentially never wrong.
func init() {
	register(Benchmark{
		Name:        "swim",
		Suite:       "fp",
		Description: "shallow-water stencils: few loops, huge constant trips, depth 3",
		Paper:       PaperRow{79, 188.54, 278.89, 2.99, 3, 3.48, 99.91},
		Build:       buildSwim,
	})
}

func buildSwim(seed uint64) (*builder.Unit, error) {
	b := builder.New("swim", seed)
	setupBases(b)

	// One-time initialisation: many small setup loops (zeroing arrays,
	// reading initial conditions). They contribute static-loop identities
	// but almost no dynamic weight.
	loopFarm(b, 55,
		func(i int) builder.Trip { return builder.TripImm(int64(12 + i%9)) },
		func(i int) int { return 14 + i%12 })

	// The three shallow-water kernels (calc1/calc2/calc3): a two-pass
	// rows×cols stencil each. The long outer (rows) dimension is what the
	// speculation rides — with 4 TUs and a 40-trip row loop the steady
	// state is one serial row per three skipped ones, giving the paper's
	// ~3.5 TPC.
	kernel := func(name string, rows, cols int64, work int) builder.FuncRef {
		return b.Func(name, func() {
			stencil(b, builder.TripImm(rows), builder.TripImm(cols), work, 24, 64)
		})
	}
	calc1 := kernel("calc1", 44, 160, 36)
	calc3 := kernel("calc3", 44, 156, 34)
	// calc2 carries the depth-3 slice loop of the paper's profile.
	calc2 := b.Func("calc2", func() {
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // z slices
			stencil(b, builder.TripImm(20), builder.TripImm(160), 42, 25, 64)
		})
	})

	// Time stepping: at the paper's 10^9-instruction scale a time step is
	// ~30% of the whole window, so the time-step loop is essentially
	// invisible to the CLS. The scale-faithful substitute is a loop-free
	// call tree (see callTree).
	callTree(b, 6, 8, func() {
		b.Work(30)
		b.Call(calc1)
		b.Call(calc2)
		b.Call(calc3)
		vecLoop(b, builder.TripImm(184), 60, 26, 8)
	})
	return b.Build()
}
