package workload

import "dynloop/internal/builder"

// vortex — 147.vortex: object-oriented in-memory database. Paper profile:
// 220 static loops, 12.08 iter/exec, 215.6 instr/iter, nesting 3.06/6;
// Table 2: TPC 3.03, 90.25% hit. Transaction processing: an endless
// transaction loop whose bodies walk object sets with mostly-stable but
// occasionally-changing sizes, through moderately deep call chains.
func init() {
	register(Benchmark{
		Name:        "vortex",
		Suite:       "int",
		Description: "OO database: transaction loop over object-set walks",
		Paper:       PaperRow{220, 12.08, 215.56, 3.06, 6, 3.03, 90.25},
		Build:       buildVortex,
	})
}

func buildVortex(seed uint64) (*builder.Unit, error) {
	b := builder.New("vortex", seed)
	setupBases(b)

	loopFarm(b, 130,
		func(i int) builder.Trip { return builder.TripImm(int64(4 + i%13)) },
		func(i int) int { return 10 + i%10 })

	// Object-set sizes: stable with occasional growth (mostly
	// predictable, ~12% surprises — the paper's 90% hit).
	part := b.CycleSeq(12, 12, 12, 14, 12, 12, 13, 12)
	chain := b.GeometricSeq(2, 0.55, 16)
	kind := b.UniformSeq(0, 3)
	doValidate := b.BernoulliSeq(0.2)

	lookup := b.Func("lookup", func() {
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() { // index segments
			b.CountedLoop(builder.TripSeq(part), builder.LoopOpt{}, func() {
				b.Work(200) // compare keys, follow object references
			})
		})
		b.CountedLoop(builder.TripSeq(chain), builder.LoopOpt{Guarded: true}, func() {
			b.Work(60) // overflow chain
		})
	})
	insert := b.Func("insert", func() {
		b.CountedLoop(builder.TripSeq(part), builder.LoopOpt{}, func() {
			b.Work(200)
		})
		b.WorkMem(80, 25, 64)
	})
	validate := b.Func("validate", func() {
		b.CountedLoop(builder.TripImm(10), builder.LoopOpt{}, func() {
			b.CountedLoop(builder.TripImm(12), builder.LoopOpt{}, func() {
				b.Work(180)
			})
		})
	})

	// Transaction loop.
	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.SetSeq(12, kind)
		b.Work(90)
		b.Call(lookup)
		b.Call(insert)
		b.IfSeq(doValidate, func() { b.Call(validate) }, nil)
	})
	return b.Build()
}
