package workload

import "dynloop/internal/builder"

// hydro2d — 104.hydro2d: Navier-Stokes on a 2-D grid. Paper profile: 291
// static loops, 29.4 iter/exec, 127.7 instr/iter, nesting 3.50/4;
// Table 2: TPC 2.52, 99.43% hit. Compared with swim the kernels are
// smaller and far more numerous: trips around 30, modest bodies, and a
// lot of kernel-to-kernel turnaround, which costs detection transients
// (two undetected iterations per execution) and keeps TPC noticeably
// lower despite near-perfect prediction.
func init() {
	register(Benchmark{
		Name:        "hydro2d",
		Suite:       "fp",
		Description: "many small regular hydro kernels, trips ~30",
		Paper:       PaperRow{291, 29.37, 127.66, 3.50, 4, 2.52, 99.43},
		Build:       buildHydro2d,
	})
}

func buildHydro2d(seed uint64) (*builder.Unit, error) {
	b := builder.New("hydro2d", seed)
	setupBases(b)

	loopFarm(b, 170,
		func(i int) builder.Trip { return builder.TripImm(int64(6 + i%19)) },
		func(i int) int { return 8 + i%12 })

	// A long chain of small constant-trip kernels per time step; each is
	// a 2-level sweep with a short body, so executions turn over quickly.
	mk := func(i int) builder.FuncRef {
		cols := int64(26 + i%9)
		work := 96 + (i%5)*14
		return b.Func("hk", func() {
			stencil(b, builder.TripImm(3), builder.TripImm(cols), work, 24, 16)
			b.Work(60) // advection glue code between sweeps
		})
	}
	var kernels []builder.FuncRef
	for i := 0; i < 14; i++ {
		kernels = append(kernels, mk(i))
	}

	// Each time step sweeps the kernel chain once per direction (x then
	// y), which is also what lifts the average nesting to the paper's
	// ~3.5.
	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.Work(80)
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
			for _, k := range kernels {
				b.Call(k)
			}
		})
	})
	return b.Build()
}
