package workload

import (
	"dynloop/internal/builder"
	"dynloop/internal/isa"
)

// Shared generator building blocks. Register conventions follow package
// builder: r12–r15 benchmark data, r16–r23 straight-line work scratch,
// r24–r27 memory bases.

// driverTrip is the trip count of top-level time-step / transaction
// loops: effectively infinite, the instruction budget cuts the run.
const driverTrip = int64(1) << 40

// vecLoop emits a single counted loop (a vector kernel): `work` ALU
// instructions plus a strided memory touch per iteration. The base
// register advances by `stride` per iteration, making the touched
// addresses and values affine (stride-predictable live-ins).
func vecLoop(b *builder.Builder, trip builder.Trip, work int, base isa.Reg, stride int64) {
	b.CountedLoop(trip, builder.LoopOpt{}, func() {
		b.LoadAt(20, base, 0)
		b.Work(work)
		b.StoreAt(base, 0, 16)
		if stride != 0 {
			b.Advance(base, stride)
		}
	})
}

// stencil emits a rows×cols rectangular nest: the outer loop walks rows
// (advancing the base by rowStride), the inner loop does `work`
// instructions and a memory touch per point.
func stencil(b *builder.Builder, rows, cols builder.Trip, work int, base isa.Reg, rowStride int64) {
	b.CountedLoop(rows, builder.LoopOpt{}, func() {
		b.CountedLoop(cols, builder.LoopOpt{}, func() {
			b.LoadAt(20, base, 1)
			b.Work(work)
			b.StoreAt(base, 2, 16)
		})
		if rowStride != 0 {
			b.Advance(base, rowStride)
		}
	})
}

// loopFarm emits n sibling loops; trip and work are chosen per index so
// the farm contributes n distinct static loops with varied behaviour.
func loopFarm(b *builder.Builder, n int, trip func(i int) builder.Trip, work func(i int) int) {
	for i := 0; i < n; i++ {
		b.CountedLoop(trip(i), builder.LoopOpt{}, func() {
			b.Work(work(i))
		})
	}
}

// interpOpts parametrise interpCore.
type interpOpts struct {
	// contProb is the per-iteration probability that the dispatch loop
	// continues; execution lengths are geometric with mean 1/(1-p).
	contProb float64
	// recurseProb is the per-iteration probability of a recursive
	// self-call (re-entering the dispatch loop one level deeper).
	recurseProb float64
	// returnProb is the per-iteration probability of an early return
	// from INSIDE the dispatch-loop body — the event that kills the
	// merged CLS entry (the paper's §2.2 recursion discussion) and
	// squashes any speculation on it.
	returnProb float64
	// maxDepth bounds the recursion (kept in r15).
	maxDepth int64
	// dispatchWork is the straight-line cost of one dispatch.
	dispatchWork int
	// helpers, when non-nil, is invoked inside the body to emit
	// benchmark-specific inner loops (argument scans, list walks).
	helpers func()
	// chaosSeq, when nonzero, injects a random draw per dispatch so
	// live-in values are unpredictable.
	chaos bool
}

// interpCore emits the recursive-interpreter skeleton shared by li, perl
// and go: a dispatch loop inside a recursive function. Because the
// recursive activation re-enters the same static loop, the CLS merges the
// instantiations, and the early returns terminate the merged execution —
// reproducing the short-lived, constantly-killed executions (low
// iter/exec, low TPC, mediocre hit ratio) the paper reports for these
// programs.
func interpCore(b *builder.Builder, o interpOpts) builder.FuncRef {
	cont := b.BernoulliSeq(o.contProb)
	rec := b.BernoulliSeq(o.recurseProb)
	ret := b.BernoulliSeq(o.returnProb)
	var chaos int64
	if o.chaos {
		chaos = b.UniformSeq(0, 1<<30)
	}
	f := b.Declare("eval")
	b.Define(f, func() {
		b.WhileSeq(cont, func() {
			b.Work(o.dispatchWork)
			if o.chaos {
				b.Chaos(chaos)
			}
			if o.helpers != nil {
				o.helpers()
			}
			b.IfSeq(rec, func() {
				// Depth-guarded recursion: r15 counts remaining depth.
				b.IfReg(isa.CondGTZ, 15, func() {
					b.Advance(15, -1)
					b.Call(f)
					b.Advance(15, 1)
				}, nil)
			}, nil)
			b.IfSeq(ret, func() { b.Return() }, nil)
		})
	})
	return f
}

// setupBases initialises the memory base registers r24..r27 to disjoint
// heap regions.
func setupBases(b *builder.Builder) {
	for i := 0; i < 4; i++ {
		b.MovI(isa.Reg(24+i), builder.HeapBase+int64(i)<<20)
	}
}

// callTree emits a LOOP-FREE driver: depth tiers of functions, each
// making branch inline calls into the tier below, with payload at the
// leaves (branch^depth activations — far beyond any instruction budget).
// The interpreters (li, perl, go) use it because their real top-level
// control is a call tree, not a loop: with no driver loop on the CLS,
// their nesting stays flat and nothing pipelines the whole program —
// which is precisely why the paper measures them at TPC ~1-1.8.
func callTree(b *builder.Builder, branch, depth int, payload func()) {
	prev := b.Func("tier0", payload)
	for k := 1; k <= depth; k++ {
		callee := prev // capture this tier's target, not the loop variable
		prev = b.Func("tier", func() {
			for i := 0; i < branch; i++ {
				b.Call(callee)
			}
		})
	}
	b.Call(prev)
}
