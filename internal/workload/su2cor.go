package workload

import "dynloop/internal/builder"

// su2cor — 103.su2cor: quantum-chromodynamics Monte Carlo. Paper profile:
// 213 static loops, 51.2 iter/exec, 257.2 instr/iter, nesting 3.50/5;
// Table 2: TPC 1.94 with a 99.92% hit ratio and a verification distance
// of only 45 instructions. The shape behind those numbers: speculation
// lives almost entirely in tiny vector loops over gauge-link elements
// (long trips, very short bodies), while a large share of the run is
// straight-line matrix glue inside deep occasional nests — perfectly
// predicted but cheap threads, lots of unspeculated connective tissue.
func init() {
	register(Benchmark{
		Name:        "su2cor",
		Suite:       "fp",
		Description: "QCD: tiny long vector loops plus heavy straight-line glue",
		Paper:       PaperRow{213, 51.23, 257.17, 3.50, 5, 1.94, 99.92},
		Build:       buildSu2cor,
	})
}

func buildSu2cor(seed uint64) (*builder.Unit, error) {
	b := builder.New("su2cor", seed)
	setupBases(b)

	loopFarm(b, 130,
		func(i int) builder.Trip { return builder.TripImm(int64(6 + i%15)) },
		func(i int) int { return 8 + i%10 })

	// Gauge-link update: a deep nest (lattice dims) whose innermost loops
	// are tiny-bodied long vectors; between them, big straight-line
	// SU(2) matrix arithmetic.
	gauge := b.Func("gauge", func() {
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
			b.Work(220) // matrix block
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
				b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
					b.Work(180)
					vecLoop(b, builder.TripImm(50), 30, 24, 4)
					vecLoop(b, builder.TripImm(54), 26, 25, 4)
				})
			})
		})
	})
	// Correlation measurement: long tiny loops plus one big-bodied loop
	// (keeps the instr/iter average up around the paper's 257).
	corr := b.Func("corr", func() {
		vecLoop(b, builder.TripImm(48), 34, 26, 4)
		b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() {
			b.Work(520)
		})
	})

	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.Work(400) // Monte Carlo bookkeeping between sweeps
		b.Call(gauge)
		b.Call(corr)
	})
	return b.Build()
}
