package workload

import "dynloop/internal/builder"

// turb3d — 125.turb3d: homogeneous-turbulence simulation built on 3-D
// FFTs. Paper profile: 152 static loops, 4.11 iter/exec, 239.4
// instr/iter, nesting 3.97/6; Table 2: TPC 3.84 at a 99.18% hit ratio —
// the interesting datapoint that SHORT loops can still speculate almost
// perfectly when their trip counts are compile-time constants (FFT
// radix butterflies of trip 4).
func init() {
	register(Benchmark{
		Name:        "turb3d",
		Suite:       "fp",
		Description: "FFT butterflies: constant tiny trips, deep regular nests",
		Paper:       PaperRow{152, 4.11, 239.44, 3.97, 6, 3.84, 99.18},
		Build:       buildTurb3d,
	})
}

func buildTurb3d(seed uint64) (*builder.Unit, error) {
	b := builder.New("turb3d", seed)
	setupBases(b)

	loopFarm(b, 85,
		func(i int) builder.Trip { return builder.TripImm(int64(2 + i%6)) },
		func(i int) int { return 12 + i%10 })

	// An FFT pass: stages x butterfly-groups x radix-4 inner, all
	// constant trips. The butterfly-group loop (trip 24: planes of the
	// 3-D grid) is where speculation lives once the stage loop's few
	// iterations are covered.
	fft := func(name string) builder.FuncRef {
		return b.Func(name, func() {
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
				b.Work(30)
				b.CountedLoop(builder.TripImm(32), builder.LoopOpt{}, func() {
					b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
						b.Work(230) // butterfly
					})
				})
			})
		})
	}
	fx := fft("fft_x")
	fy := fft("fft_y")
	fz := fft("fft_z")
	// Nonlinear term in physical space: a deeper nest (to the paper's
	// max 6) with constant small trips.
	nonlin := b.Func("nonlinear", func() {
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
				b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
					b.CountedLoop(builder.TripImm(24), builder.LoopOpt{}, func() {
						b.Work(120)
					})
				})
			})
		})
	})

	// Time stepping as a call tree (scale-faithful: see swim).
	callTree(b, 6, 8, func() {
		b.Work(40)
		b.Call(fx)
		b.Call(fy)
		b.Call(fz)
		b.Call(nonlin)
	})
	return b.Build()
}
