package workload

import (
	"testing"

	"dynloop/internal/harness"
	"dynloop/internal/loopstats"
	"dynloop/internal/spec"
)

// TestRegistry checks the catalogue is complete and well-formed.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("benchmarks = %d, want 18 (SPEC95)", len(all))
	}
	seen := map[string]bool{}
	for _, bm := range all {
		if seen[bm.Name] {
			t.Fatalf("duplicate benchmark %q", bm.Name)
		}
		seen[bm.Name] = true
		if bm.Suite != "int" && bm.Suite != "fp" {
			t.Fatalf("%s: bad suite %q", bm.Name, bm.Suite)
		}
		if bm.Build == nil || bm.Description == "" || bm.Paper.Loops == 0 {
			t.Fatalf("%s: incomplete registration", bm.Name)
		}
	}
	if _, err := ByName("swim"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName must fail on unknown names")
	}
}

// TestAllBuildAndRun builds and runs every benchmark for a short budget,
// checking basic health: no machine errors, loops detected, CLS depth
// within the paper's 16-entry bound, deterministic traces.
func TestAllBuildAndRun(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			u, err := bm.Build(1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := u.Prog.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			ls := loopstats.NewCollector()
			res, err := harness.Run(u, harness.Config{Budget: 300_000}, ls)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.Executed < 300_000 && !res.Halted {
				t.Fatalf("stopped early: %d instrs", res.Executed)
			}
			s := ls.Summary()
			if s.StaticLoops < 5 {
				t.Fatalf("only %d static loops detected", s.StaticLoops)
			}
			ds := res.Detector.Stats()
			if ds.MaxDepth > 16 {
				t.Fatalf("CLS depth %d exceeds the paper's 16", ds.MaxDepth)
			}
			if s.ItersPerExec < 1 {
				t.Fatalf("iters/exec = %v", s.ItersPerExec)
			}
		})
	}
}

// TestDeterministicAcrossBuilds: building the same benchmark twice with
// the same seed gives byte-identical programs and identical dynamics.
func TestDeterministicAcrossBuilds(t *testing.T) {
	for _, name := range []string{"swim", "gcc", "perl"} {
		bm, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (uint64, spec.Metrics) {
			u, err := bm.Build(7)
			if err != nil {
				t.Fatal(err)
			}
			e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
			res, err := harness.Run(u, harness.Config{Budget: 150_000}, e)
			if err != nil {
				t.Fatal(err)
			}
			return res.Executed, e.Metrics()
		}
		n1, m1 := run()
		n2, m2 := run()
		if n1 != n2 || m1 != m2 {
			t.Fatalf("%s: nondeterministic: %d/%d %+v %+v", name, n1, n2, m1, m2)
		}
	}
}

// TestCalibration prints the Table-1-style comparison (run with -v).
// It asserts only the coarse qualitative shape; EXPERIMENTS.md records
// the full numbers.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is a long test")
	}
	type row struct {
		name string
		s    loopstats.Summary
		tpc  float64
		hit  float64
		p    PaperRow
	}
	var rows []row
	for _, bm := range All() {
		u, err := bm.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		ls := loopstats.NewCollector()
		e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
		if _, err := harness.Run(u, harness.Config{Budget: 4_000_000}, ls, e); err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		m := e.Metrics()
		rows = append(rows, row{bm.Name, ls.Summary(), m.TPC(), m.HitRatio(), bm.Paper})
	}
	t.Log("bench        loops(p)      it/ex(p)        in/it(p)        avgnl(p)     maxnl(p)  TPC4(p)      hit%(p)")
	for _, r := range rows {
		t.Logf("%-10s %5d(%4d) %7.2f(%6.2f) %7.1f(%6.1f) %5.2f(%4.2f) %3d(%2d) %5.2f(%4.2f) %6.1f(%6.2f)",
			r.name, r.s.StaticLoops, r.p.Loops,
			r.s.ItersPerExec, r.p.ItersPerExec,
			r.s.InstrPerIter, r.p.InstrPerIter,
			r.s.AvgNesting, r.p.AvgNL,
			r.s.MaxNesting, r.p.MaxNL,
			r.tpc, r.p.TPC4, r.hit, r.p.HitRatio)
	}
	// Coarse shape assertions that the reproduction must preserve.
	byName := map[string]row{}
	for _, r := range rows {
		byName[r.name] = r
	}
	if byName["swim"].s.ItersPerExec < 50 {
		t.Errorf("swim iter/exec = %.1f, want large (paper 188)", byName["swim"].s.ItersPerExec)
	}
	if byName["perl"].s.ItersPerExec > 8 {
		t.Errorf("perl iter/exec = %.1f, want small (paper 3.1)", byName["perl"].s.ItersPerExec)
	}
	if byName["gcc"].s.StaticLoops < 300 {
		t.Errorf("gcc static loops = %d, want many (paper 1229)", byName["gcc"].s.StaticLoops)
	}
	if byName["fpppp"].s.InstrPerIter < 700 {
		t.Errorf("fpppp instr/iter = %.0f, want huge (paper 3218)", byName["fpppp"].s.InstrPerIter)
	}
	// TPC ordering: the interpreters sit at the bottom, the regular
	// vector codes at the top.
	low := (byName["perl"].tpc + byName["go"].tpc + byName["li"].tpc) / 3
	high := (byName["swim"].tpc + byName["tomcatv"].tpc + byName["turb3d"].tpc + byName["wave5"].tpc) / 4
	if low >= high {
		t.Errorf("TPC ordering violated: interpreters %.2f >= vector codes %.2f", low, high)
	}
}

// TestSeedStability: the calibrated behaviour must be a property of the
// generator, not of one lucky seed — TPC and hit ratio stay in a band
// across seeds.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	for _, name := range []string{"swim", "perl", "gcc"} {
		bm, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var tpcs []float64
		for seed := uint64(1); seed <= 3; seed++ {
			u, err := bm.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
			if _, err := harness.Run(u, harness.Config{Budget: 1_000_000}, e); err != nil {
				t.Fatal(err)
			}
			tpcs = append(tpcs, e.Metrics().TPC())
		}
		lo, hi := tpcs[0], tpcs[0]
		for _, v := range tpcs {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 0.6 {
			t.Errorf("%s: TPC varies too much across seeds: %v", name, tpcs)
		}
	}
}
