package workload

import (
	"dynloop/internal/builder"
	"dynloop/internal/interp"
)

// gcc — 126.gcc: the GNU C compiler. Paper profile: 1229 static loops —
// by far the most in the suite — 5.28 iter/exec, 80.2 instr/iter,
// nesting 3.43/7; Table 2: TPC 2.37, 76.05% hit, 370-instruction
// verification distance. A compiler is a long pipeline of passes, each
// full of small loops over insns/basic-blocks whose trips are
// data-dependent (function sizes), plus recursive tree walks.
func init() {
	register(Benchmark{
		Name:        "gcc",
		Suite:       "int",
		Description: "compiler passes: ~1000 small data-dependent loops + tree walks",
		Paper:       PaperRow{1229, 5.28, 80.21, 3.43, 7, 2.37, 76.05},
		Build:       buildGcc,
	})
}

func buildGcc(seed uint64) (*builder.Unit, error) {
	b := builder.New("gcc", seed)
	setupBases(b)

	// 48 pass functions x ~14 loops each ~= 670 static loops, plus the
	// farm below: the static-loop count lands near 900 (scaled slightly
	// below the paper's 1229 to keep the binary small; the behaviour that
	// matters — table thrash in Figure 4 — is preserved).
	var passes []builder.FuncRef
	for p := 0; p < 48; p++ {
		// Insn-walk lengths track the size of the function being
		// compiled: mostly stable with jitter (one-shots included), which
		// lands the hit ratio near the paper's 76%.
		mean := int64(4 + p%6)
		trip := b.NoisySeq(func() interp.Sequence { return interp.Const(mean) }, 3, 0.30)
		work := 62 + (p%7)*12
		inner := int64(2 + p%3)
		pass := b.Func("pass", func() {
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // basic-block halves
				for l := 0; l < 6; l++ {
					b.CountedLoop(builder.TripSeq(trip), builder.LoopOpt{}, func() {
						b.Work(work)
					})
				}
			})
			// A nested dataflow solver per pass (bit-vector iteration).
			b.CountedLoop(builder.TripSeq(trip), builder.LoopOpt{}, func() {
				b.Work(20)
				b.CountedLoop(builder.TripImm(inner), builder.LoopOpt{}, func() {
					b.Work(14)
					b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
						b.Work(10)
					})
				})
			})
		})
		passes = append(passes, pass)
	}

	loopFarm(b, 180,
		func(i int) builder.Trip { return builder.TripImm(int64(1 + i%9)) },
		func(i int) int { return 8 + i%10 })

	// Recursive tree walker (fold/simplify): same merge-and-die dynamics
	// as the interpreters, in a milder dose.
	walk := interpCore(b, interpOpts{
		contProb:     0.74,
		recurseProb:  0.42,
		returnProb:   0.22,
		maxDepth:     6,
		dispatchWork: 56,
		chaos:        true,
	})

	// Compile one function per driver iteration: parse (tree walk), then
	// a subset of passes.
	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.Work(70)
		b.MovI(15, 6)
		b.Call(walk)
		for _, p := range passes {
			b.Call(p)
		}
	})
	return b.Build()
}
