// Package workload: calibration methodology.
//
// Each generator in this package is a synthetic stand-in for one SPEC95
// program, built from the behavioural fingerprint the paper itself
// publishes. The calibration sources are:
//
//   - Table 1 — static loop count, iterations/execution,
//     instructions/iteration, average and maximum nesting level. These
//     fix each benchmark's loop-nest geometry and trip-count magnitudes.
//   - Table 2 — speculation hit ratio, verification distance and TPC
//     under STR(3)/4 TUs. These fix the trip-count *predictability*
//     (constant / mostly-stable / jittery / geometric) and the control
//     structure around the loops (early exits, recursion).
//   - Figures 5–8 — infinite-TU parallelism spread, per-TU scaling, and
//     live-in value regularity. These fix the driver style and the data
//     (value/address) behaviour of the loop bodies.
//
// The structural vocabulary the generators draw from:
//
//   - vector/stencil kernels with constant trips — the regular FP codes
//     (swim, tomcatv, wave5, hydro2d, apsi, mgrid, turb3d): the STR
//     predictor is essentially never wrong on them;
//   - jittery or uniform trip counts (applu, gcc, vortex, tomcatv's
//     residual) — partial mispredictions that land hit ratios in the
//     50–90% band;
//   - endless main loops (compress, m88ksim, vortex) — budget-truncated,
//     so their threads are flushed rather than squashed (compress's 100%
//     hit ratio in the paper);
//   - recursive dispatch cores (li, perl, go, gcc's tree walks) — the
//     interpCore skeleton, whose executions are killed by returns through
//     the CLS recursion-merging rule (§2.2) — the paper's low-TPC tail;
//   - loop-free call-tree drivers (callTree) for the interpreters and
//     the FP time-steppers, matching the scale relation of the paper's
//     10^9-instruction window (a time step there is ~30% of the window,
//     so the stepping loop is essentially invisible to the CLS).
//
// Scale substitutions (the budget is ~4·10^6 instructions instead of
// 10^9) necessarily shrink what cannot fit: grid extents and therefore
// instructions/iteration for the large FP codes, and total static-loop
// counts (code not reached in the window). EXPERIMENTS.md quantifies
// every deviation; the headline quantities (TPC per machine size, hit
// ratios, iterations/execution, nesting shape) are preserved.
package workload
