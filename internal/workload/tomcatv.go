package workload

import "dynloop/internal/builder"

// tomcatv — 101.tomcatv: vectorised mesh generation. Paper profile:
// 91 static loops, 57.2 iter/exec, 224.8 instr/iter, nesting 3.01/4;
// Table 2: TPC 3.85 with a 77.2% hit ratio. The structure is a handful of
// regular 2-level mesh sweeps plus a residual/convergence phase whose
// trip counts wobble — that wobble (and the resulting squashes) is what
// keeps the hit ratio well below the other vector codes while the sheer
// regularity of the sweeps keeps TPC near the maximum.
func init() {
	register(Benchmark{
		Name:        "tomcatv",
		Suite:       "fp",
		Description: "mesh-generation sweeps with a jittery convergence phase",
		Paper:       PaperRow{91, 57.18, 224.82, 3.01, 4, 3.85, 77.24},
		Build:       buildTomcatv,
	})
}

func buildTomcatv(seed uint64) (*builder.Unit, error) {
	b := builder.New("tomcatv", seed)
	setupBases(b)

	loopFarm(b, 52,
		func(i int) builder.Trip { return builder.TripImm(int64(10 + i%13)) },
		func(i int) int { return 12 + i%10 })

	// Main mesh sweeps: rows×cols with constant trips; the long row
	// dimension carries the speculation.
	sweep := func(name string, rows, cols int64, work int) builder.FuncRef {
		return b.Func(name, func() {
			stencil(b, builder.TripImm(rows), builder.TripImm(cols), work, 24, 32)
		})
	}
	sx := sweep("sweep_x", 48, 60, 42)
	sy := sweep("sweep_y", 44, 58, 46)
	srhs := sweep("rhs", 48, 56, 40)

	// The residual search: trip counts jitter around 40 (convergence is
	// data dependent), defeating the stride predictor about half the
	// time.
	jitter := b.UniformSeq(30, 52)
	residual := b.Func("residual", func() {
		b.CountedLoop(builder.TripSeq(jitter), builder.LoopOpt{}, func() {
			b.Work(150)
		})
	})

	// Time stepping as a call tree (scale-faithful: see swim).
	callTree(b, 6, 8, func() {
		b.Work(40)
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // xi/eta passes
			b.Call(sx)
			b.Call(sy)
			b.Call(srhs)
		})
		b.Call(residual)
	})
	return b.Build()
}
