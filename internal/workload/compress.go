package workload

import "dynloop/internal/builder"

// compress — 129.compress: LZW compression. Paper profile: 45 static
// loops (fewest in the suite), 6.27 iter/exec, 84.7 instr/iter, nesting
// 2.52/4; Table 2: TPC 3.23 and a 100.00% hit ratio. The 100% comes from
// where the speculation lives: the byte-consuming main loop never
// terminates inside the measurement window, so its speculative threads
// are only ever confirmed (never squashed), and the short data-dependent
// hash-probe loops never get a TU because the main loop's threads hold
// them all.
func init() {
	register(Benchmark{
		Name:        "compress",
		Suite:       "int",
		Description: "LZW: one endless byte loop + short hash probes",
		Paper:       PaperRow{45, 6.27, 84.65, 2.52, 4, 3.23, 100.00},
		Build:       buildCompress,
	})
}

func buildCompress(seed uint64) (*builder.Unit, error) {
	b := builder.New("compress", seed)
	setupBases(b)

	loopFarm(b, 30,
		func(i int) builder.Trip { return builder.TripImm(int64(3 + i%7)) },
		func(i int) int { return 10 + i%8 })

	// Hash-chain probe: geometric length (collision chains).
	probe := b.GeometricSeq(2, 0.62, 24)
	input := b.UniformSeq(0, 255)
	emit := b.BernoulliSeq(0.35)

	// The main loop: one iteration per input byte; never ends within the
	// budget.
	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.SetSeq(12, input) // next byte
		b.Work(68)          // hash, compare, table update
		b.CountedLoop(builder.TripSeq(probe), builder.LoopOpt{Guarded: true}, func() {
			b.Work(38) // walk the collision chain
		})
		b.Work(40)
		// Emit a code every few bytes: constant-trip bit loop.
		b.IfSeq(emit, func() {
			b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() {
				b.Work(22)
			})
		}, nil)
	})
	return b.Build()
}
