package workload

import "dynloop/internal/builder"

// li — 130.li: XLISP interpreter. Paper profile: 94 static loops, 3.48
// iter/exec, 107.8 instr/iter, nesting 5.15 avg / 10 max; Table 2: TPC
// 1.75, 69.16% hit. The eval loop lives inside a deeply recursive
// function: recursive re-entry merges into the same CLS entry (§2.2) and
// early returns kill the merged execution, so executions are short and
// speculation is squashed constantly. Depth comes from distinct
// mutually-recursive walkers (eval, evlist, gc, property scans) stacking
// their loops.
func init() {
	register(Benchmark{
		Name:        "li",
		Suite:       "int",
		Description: "lisp interpreter: recursive eval loop, short merged executions",
		Paper:       PaperRow{94, 3.48, 107.80, 5.15, 10, 1.75, 69.16},
		Build:       buildLi,
	})
}

func buildLi(seed uint64) (*builder.Unit, error) {
	b := builder.New("li", seed)
	setupBases(b)

	loopFarm(b, 50,
		func(i int) builder.Trip { return builder.TripImm(int64(2 + i%5)) },
		func(i int) int { return 8 + i%10 })

	// Helper walkers with their own small loops: these stack on the CLS
	// under the eval loop, giving the deep average nesting.
	args := b.GeometricSeq(2, 0.6, 10)
	props := b.GeometricSeq(1, 0.5, 6)
	gcMark := b.GeometricSeq(2, 0.7, 20)
	gcTrig := b.BernoulliSeq(0.03)
	walkProps := b.Func("getprop", func() {
		b.CountedLoop(builder.TripSeq(props), builder.LoopOpt{}, func() {
			b.Work(44)
			b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() { b.Work(22) })
		})
	})
	gc := b.Func("gc", func() {
		b.CountedLoop(builder.TripSeq(gcMark), builder.LoopOpt{}, func() {
			b.Work(70)
			b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
				b.Work(30)
				b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() { b.Work(18) })
			})
		})
	})

	eval := interpCore(b, interpOpts{
		contProb:     0.78, // mean execution ~3.5 iterations net of returns
		recurseProb:  0.30,
		returnProb:   0.20,
		maxDepth:     9,
		dispatchWork: 88,
		chaos:        true,
		helpers: func() {
			b.CountedLoop(builder.TripSeq(args), builder.LoopOpt{}, func() {
				b.Work(52) // evlist: walk the argument list
			})
			b.Call(walkProps)
			b.IfSeq(gcTrig, func() { b.Call(gc) }, nil)
		},
	})

	// Loop-free driver: the interpreter evaluates one program as a call
	// tree (see callTree). Recursion depth resets per form.
	callTree(b, 8, 8, func() {
		b.Work(50) // reader
		b.MovI(15, 9)
		b.Call(eval)
	})
	return b.Build()
}
