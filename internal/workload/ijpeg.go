package workload

import "dynloop/internal/builder"

// ijpeg — 132.ijpeg: JPEG compression/decompression. Paper profile: 198
// static loops, 20.75 iter/exec, 336.3 instr/iter, nesting 6.37 avg / 9
// max (among the deepest); Table 2: TPC 2.36, 96.54% hit. Everything is
// constant-trip (rows x cols x components x 8x8 blocks), so prediction
// is easy; the deep nesting means speculation keeps shifting between
// levels, which (with STR(3) squashing outer threads to feed inner
// loops) caps the achieved TPC.
func init() {
	register(Benchmark{
		Name:        "ijpeg",
		Suite:       "int",
		Description: "JPEG: deep constant-trip block nests (rows/cols/8x8)",
		Paper:       PaperRow{198, 20.75, 336.26, 6.37, 9, 2.36, 96.54},
		Build:       buildIjpeg,
	})
}

func buildIjpeg(seed uint64) (*builder.Unit, error) {
	b := builder.New("ijpeg", seed)
	setupBases(b)

	loopFarm(b, 115,
		func(i int) builder.Trip { return builder.TripImm(int64(4 + i%13)) },
		func(i int) int { return 10 + i%10 })

	// Row pass over one component strip: real ijpeg fully unrolls the
	// 8-point DCT, so the loops that remain are width-walks with fat
	// (unrolled) bodies — that is where the paper's 336 instr/iter comes
	// from.
	rowPass := b.Func("row_pass", func() {
		b.CountedLoop(builder.TripImm(24), builder.LoopOpt{}, func() {
			b.Work(330) // one unrolled 8x8 block: DCT + quantise
		})
	})
	// Entropy coding: a long bit-packing walk, with an occasional 8x8
	// refinement nest (progressive mode).
	refine := b.BernoulliSeq(0.25)
	encode := b.Func("encode", func() {
		b.CountedLoop(builder.TripImm(48), builder.LoopOpt{}, func() {
			b.Work(130)
		})
		b.IfSeq(refine, func() {
			b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() {
				b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() {
					b.Work(30)
				})
			})
		}, nil)
	})
	// Process one MCU row: components x row passes (depth from driver:
	// rows, components, row pass — with the encode nest reaching 6).
	mcuRow := b.Func("mcu_row", func() {
		b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() { // components
			b.Call(rowPass)
		})
		b.Call(encode)
	})
	// Downsampling pass: regular 2-level averaging.
	sample := b.Func("downsample", func() {
		stencil(b, builder.TripImm(4), builder.TripImm(40), 90, 24, 16)
	})

	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() { // images
		b.Work(80)
		b.CountedLoop(builder.TripImm(12), builder.LoopOpt{}, func() { // MCU rows
			b.Call(mcuRow)
		})
		b.Call(sample)
	})
	return b.Build()
}
