package workload

import "dynloop/internal/builder"

// perl — 134.perl: the Perl interpreter. Paper profile: 147 static
// loops, the suite's LOWEST iter/exec (3.11), smallest iterations (47.0
// instr/iter) and flattest nesting (1.35 avg / 5 max); Table 2: the
// worst TPC (1.17) with a 60.34% hit ratio and a 35-instruction
// verification distance. The opcode-dispatch loop sits inside the
// recursive runops/entersub machinery: executions die within ~3
// iterations (returns from inside the merged loop body), so speculative
// threads are tiny, frequent, and usually squashed.
func init() {
	register(Benchmark{
		Name:        "perl",
		Suite:       "int",
		Description: "perl interpreter: dispatch loop killed every few iterations",
		Paper:       PaperRow{147, 3.11, 47.02, 1.35, 5, 1.17, 60.34},
		Build:       buildPerl,
	})
}

func buildPerl(seed uint64) (*builder.Unit, error) {
	b := builder.New("perl", seed)
	setupBases(b)

	loopFarm(b, 95,
		func(i int) builder.Trip { return builder.TripImm(int64(1 + i%5)) },
		func(i int) int { return 6 + i%8 })

	// Tiny string/stack helper loops (1-3 iterations, data dependent).
	short1 := b.ConstSeq(2)
	short2 := b.ConstSeq(2)
	strHelp := b.Func("svgrow", func() {
		b.CountedLoop(builder.TripSeq(short1), builder.LoopOpt{}, func() {
			b.Work(14)
		})
	})

	runops := interpCore(b, interpOpts{
		contProb:     0.75, // mean execution ~3 iterations net of returns
		recurseProb:  0.15, // entersub
		returnProb:   0.18, // leave/return ops kill the merged loop
		maxDepth:     4,
		dispatchWork: 34,
		chaos:        true,
		helpers: func() {
			b.IfSeq(b.BernoulliSeq(0.4), func() {
				b.CountedLoop(builder.TripSeq(short2), builder.LoopOpt{}, func() {
					b.Work(10)
				})
			}, func() {
				b.Call(strHelp)
			})
		},
	})

	// Loop-free driver: the interpreter's top level is a call tree (one
	// program evaluated once), so no outer loop ever reaches the CLS —
	// this is what keeps perl's average nesting at ~1.3 and its TPC at
	// the bottom of the suite.
	callTree(b, 8, 8, func() {
		b.Work(30)
		b.MovI(15, 4)
		b.Call(runops)
	})
	return b.Build()
}
