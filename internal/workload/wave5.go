package workload

import "dynloop/internal/builder"

// wave5 — 146.wave5: plasma particle-in-cell simulation. Paper profile:
// 195 static loops, 56.2 iter/exec, 164.3 instr/iter, nesting 3.12/5;
// Table 2: TPC 3.75, 99.95% hit. Many medium-size particle/field loops
// with constant trips; nearly ideal speculation.
func init() {
	register(Benchmark{
		Name:        "wave5",
		Suite:       "fp",
		Description: "particle-in-cell sweeps: many regular loops, trips ~56",
		Paper:       PaperRow{195, 56.15, 164.25, 3.12, 5, 3.75, 99.95},
		Build:       buildWave5,
	})
}

func buildWave5(seed uint64) (*builder.Unit, error) {
	b := builder.New("wave5", seed)
	setupBases(b)

	loopFarm(b, 120,
		func(i int) builder.Trip { return builder.TripImm(int64(8 + i%17)) },
		func(i int) int { return 10 + i%14 })

	// Field solves: 2-level constant-trip sweeps.
	field := b.Func("field", func() {
		stencil(b, builder.TripImm(2), builder.TripImm(58), 150, 24, 16)
		stencil(b, builder.TripImm(2), builder.TripImm(54), 158, 25, 16)
	})
	// Particle pushes: long 1-level loops over particle chunks, with one
	// deeper charge-deposition nest (max nesting 5).
	push := b.Func("push", func() {
		vecLoop(b, builder.TripImm(56), 152, 26, 8)
		vecLoop(b, builder.TripImm(60), 148, 26, 8)
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
			b.CountedLoop(builder.TripImm(52), builder.LoopOpt{}, func() {
				b.Work(140)
			})
		})
	})
	// Fourier filter pass.
	filter := b.Func("filter", func() {
		vecLoop(b, builder.TripImm(48), 160, 27, 8)
	})

	// Time stepping as a call tree (scale-faithful: see swim).
	callTree(b, 6, 8, func() {
		b.Work(36)
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // field/particle halves
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // species
				b.Call(field)
				b.Call(push)
			})
			b.Call(filter)
		})
	})
	return b.Build()
}
