package workload

import "dynloop/internal/builder"

// mgrid — 107.mgrid: multigrid 3-D potential solver. Paper profile: 142
// static loops, 28.9 iter/exec, 512.7 instr/iter, nesting 4.93/6;
// Table 2: TPC 3.71, 97.5% hit, only 7900 speculation events with big
// (36k instruction) verification distances. Kernels are 3-deep nests
// whose trips depend on the grid level — constant per static loop
// instance, so prediction is excellent — with large leaf bodies.
func init() {
	register(Benchmark{
		Name:        "mgrid",
		Suite:       "fp",
		Description: "multigrid V-cycles: 3-deep nests, level-sized trips, big bodies",
		Paper:       PaperRow{142, 28.93, 512.68, 4.93, 6, 3.71, 97.50},
		Build:       buildMgrid,
	})
}

func buildMgrid(seed uint64) (*builder.Unit, error) {
	b := builder.New("mgrid", seed)
	setupBases(b)

	loopFarm(b, 70,
		func(i int) builder.Trip { return builder.TripImm(int64(8 + i%11)) },
		func(i int) int { return 10 + i%10 })

	// One relaxation kernel per grid level; each level has its own
	// static loops with the innermost trip fixed by the level size.
	// (The paper ran 64^3 grids inside 10^9 instructions; at our budget
	// the nests are rectangular — long innermost, short outers — which
	// preserves the iterations/execution shape at simulation scale.)
	level := func(n int64, work int) builder.FuncRef {
		return b.Func("relax", func() {
			b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // pre/post smooth
				b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // z planes
					b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() { // y halves
						b.CountedLoop(builder.TripImm(n), builder.LoopOpt{}, func() {
							b.Work(work)
						})
					})
				})
			})
		})
	}
	l80 := level(64, 220)
	l40 := level(32, 230)
	l20 := level(16, 240)
	l10 := level(8, 250)

	// The V-cycle: descend through the levels and back up, then a long
	// residual sweep.
	vcycle := b.Func("vcycle", func() {
		b.Call(l80)
		b.Call(l40)
		b.Call(l20)
		b.Call(l10)
		b.Call(l20)
		b.Call(l40)
		b.Call(l80)
		vecLoop(b, builder.TripImm(220), 150, 24, 8)
	})

	// V-cycles driven by a call tree (scale-faithful: see swim).
	callTree(b, 6, 8, func() {
		b.Work(50)
		b.Call(vcycle)
	})
	return b.Build()
}
