package workload

import "dynloop/internal/builder"

// m88ksim — 124.m88ksim: Motorola 88100 processor simulator. Paper
// profile: 127 static loops, 9.38 iter/exec, a tiny 39.8 instr/iter,
// nesting 1.98/5 (the flattest in the suite after perl); Table 2: TPC
// 2.78, 97.32% hit. One endless instruction-dispatch loop with a small
// body, plus constant-trip hardware-structure scans.
func init() {
	register(Benchmark{
		Name:        "m88ksim",
		Suite:       "int",
		Description: "CPU simulator: endless dispatch loop, tiny body, flat nesting",
		Paper:       PaperRow{127, 9.38, 39.82, 1.98, 5, 2.78, 97.32},
		Build:       buildM88ksim,
	})
}

func buildM88ksim(seed uint64) (*builder.Unit, error) {
	b := builder.New("m88ksim", seed)
	setupBases(b)

	loopFarm(b, 80,
		func(i int) builder.Trip { return builder.TripImm(int64(4 + i%11)) },
		func(i int) int { return 8 + i%8 })

	opcode := b.UniformSeq(0, 15)
	rare := b.BernoulliSeq(0.06)
	memop := b.BernoulliSeq(0.3)

	// Hardware-structure scans with constant trips.
	scoreboard := b.Func("scoreboard", func() {
		b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() { b.Work(26) })
	})
	tlb := b.Func("tlb", func() {
		b.CountedLoop(builder.TripImm(16), builder.LoopOpt{}, func() { b.Work(24) })
	})

	// The simulate-one-instruction loop: ~35 instructions per dispatch.
	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.SetSeq(12, opcode)
		b.Work(54) // fetch, decode, execute dispatch
		b.Call(scoreboard)
		b.IfSeq(memop, func() { b.Call(tlb) }, func() { b.Work(10) })
		// Rare exception path: a deeper save/restore nest (max nl 5).
		b.IfSeq(rare, func() {
			b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
				b.CountedLoop(builder.TripImm(8), builder.LoopOpt{}, func() {
					b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
						b.Work(8)
					})
				})
			})
		}, nil)
	})
	return b.Build()
}
