package workload

import (
	"dynloop/internal/builder"
	"dynloop/internal/interp"
)

// apsi — 141.apsi: mesoscale pollutant-distribution model. Paper profile:
// 207 static loops, 10.75 iter/exec, 229.3 instr/iter, nesting 3.14/5;
// Table 2: TPC 3.51, 90.48% hit. Mostly regular 3-D sweeps with moderate
// constant trips, plus a minority of data-dependent loops that cost the
// odd misprediction.
func init() {
	register(Benchmark{
		Name:        "apsi",
		Suite:       "fp",
		Description: "mesoscale model: regular 3-D sweeps, trips ~11",
		Paper:       PaperRow{207, 10.75, 229.34, 3.14, 5, 3.51, 90.48},
		Build:       buildApsi,
	})
}

func buildApsi(seed uint64) (*builder.Unit, error) {
	b := builder.New("apsi", seed)
	setupBases(b)

	loopFarm(b, 125,
		func(i int) builder.Trip { return builder.TripImm(int64(4 + i%13)) },
		func(i int) int { return 10 + i%12 })

	// Regular vertical-column sweeps: constant trips around 11.
	adv := b.Func("advect", func() {
		stencil(b, builder.TripImm(11), builder.TripImm(12), 215, 24, 16)
		vecLoop(b, builder.TripImm(11), 200, 25, 8)
	})
	diff := b.Func("diffuse", func() {
		stencil(b, builder.TripImm(10), builder.TripImm(13), 222, 26, 16)
	})
	// The planetary-boundary-layer routine has data-dependent column
	// heights: stable with occasional change, so the last-count
	// prediction is right most but not all of the time (the paper's ~90%
	// hit).
	hSeq := b.NoisySeq(func() interp.Sequence { return interp.Const(11) }, 2, 0.15)
	pblF := b.Func("pbl", func() {
		b.CountedLoop(builder.TripSeq(hSeq), builder.LoopOpt{}, func() {
			b.Work(190)
			b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
				b.Work(40) // vertical flux sub-loop (max nesting 5)
			})
		})
	})

	// The dominant solver sweep: one long vectorisable loop per step
	// (carries the work-weighted TPC while the small kernels dominate
	// the execution counts).
	solver := b.Func("solver", func() {
		vecLoop(b, builder.TripImm(300), 200, 27, 8)
	})

	// Each time step makes two directional passes over the kernels; the
	// stepping itself is a call tree (scale-faithful: see swim).
	callTree(b, 6, 8, func() {
		b.Work(50)
		b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
			b.Call(adv)
			b.Call(diff)
			b.Call(pblF)
		})
		b.Call(solver)
	})
	return b.Build()
}
