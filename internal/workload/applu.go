package workload

import "dynloop/internal/builder"

// applu — 110.applu: parabolic/elliptic PDE solver (SSOR on 5x5 blocks).
// Paper profile: 189 static loops, only 3.50 iter/exec, 261.1 instr/iter,
// nesting 5.16 avg / 7 max; Table 2: TPC 2.21 with the suite's WORST hit
// ratio, 54.51%. The structure behind that: deep nests whose trips are
// small AND wobble between executions (block sizes, wavefront lengths),
// so the stride predictor is wrong about half the time and speculative
// threads are squashed constantly.
func init() {
	register(Benchmark{
		Name:        "applu",
		Suite:       "fp",
		Description: "deep SSOR nests with small jittery trips (worst-case STR)",
		Paper:       PaperRow{189, 3.50, 261.08, 5.16, 7, 2.21, 54.51},
		Build:       buildApplu,
	})
}

func buildApplu(seed uint64) (*builder.Unit, error) {
	b := builder.New("applu", seed)
	setupBases(b)

	loopFarm(b, 110,
		func(i int) builder.Trip { return builder.TripImm(int64(2 + i%5)) },
		func(i int) int { return 12 + i%10 })

	// Wavefront trips wobble in 2..6: small, irregular, hostile to the
	// stride predictor.
	w1 := b.UniformSeq(2, 6)
	w2 := b.UniformSeq(2, 6)
	w3 := b.UniformSeq(2, 5)
	w4 := b.UniformSeq(2, 5)

	// The lower/upper triangular sweeps: 5-deep nests of jittery small
	// trips with dense 5x5 block arithmetic at the leaves.
	sweep := func(name string, a, bq int64) builder.FuncRef {
		return b.Func(name, func() {
			b.CountedLoop(builder.TripSeq(w1), builder.LoopOpt{}, func() {
				b.Work(24)
				b.CountedLoop(builder.TripSeq(w2), builder.LoopOpt{}, func() {
					b.Work(20)
					b.CountedLoop(builder.TripSeq(w3), builder.LoopOpt{}, func() {
						b.CountedLoop(builder.TripSeq(w4), builder.LoopOpt{}, func() {
							b.CountedLoop(builder.TripImm(a), builder.LoopOpt{}, func() {
								b.Work(int(bq)) // block solve
							})
						})
					})
				})
			})
		})
	}
	blts := sweep("blts", 3, 240)
	buts := sweep("buts", 3, 250)
	rhs := b.Func("rhs", func() {
		stencil(b, builder.TripImm(4), builder.TripImm(24), 230, 24, 16)
	})

	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.Work(60)
		b.Call(rhs)
		b.Call(blts)
		b.Call(buts)
	})
	return b.Build()
}
