package workload

import (
	"fmt"
	"sort"

	"dynloop/internal/builder"
)

// Benchmark is one synthetic SPEC95 stand-in.
type Benchmark struct {
	// Name is the SPEC95 program name this workload is calibrated
	// against.
	Name string
	// Suite is "int" or "fp", as in SPEC95.
	Suite string
	// Description summarises the structure being mimicked.
	Description string
	// Paper records the Table 1 row of the original program:
	// {static loops, iter/exec, instr/iter, avg nl, max nl} plus the
	// Table 2 TPC at 4 TUs under STR(3).
	Paper PaperRow
	// Build constructs the program. The seed decorrelates the input
	// sequences; the same seed always yields the same program and trace.
	Build func(seed uint64) (*builder.Unit, error)
}

// PaperRow holds the published reference numbers for context in reports.
type PaperRow struct {
	Loops        int
	ItersPerExec float64
	InstrPerIter float64
	AvgNL        float64
	MaxNL        int
	TPC4         float64 // Table 2: STR(3), 4 TUs
	HitRatio     float64 // Table 2: %
}

var registry []Benchmark

func register(b Benchmark) { registry = append(registry, b) }

// All returns every benchmark, sorted by name.
func All() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the benchmark names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, b := range all {
		out[i] = b.Name
	}
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}
