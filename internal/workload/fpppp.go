package workload

import "dynloop/internal/builder"

// fpppp — 145.fpppp: Gaussian quantum chemistry, two-electron integral
// derivatives. Paper profile: 83 static loops, 3.05 iter/exec, a huge
// 3217.8 instr/iter, nesting 6.66 avg / 9 max; Table 2: TPC 2.71 from
// only 3417 speculation events with 191727 instructions to verification.
// fpppp is famous for enormous straight-line basic blocks; loops are few,
// short-tripped and deeply nested through call chains, and each
// speculative thread is gigantic.
func init() {
	register(Benchmark{
		Name:        "fpppp",
		Suite:       "fp",
		Description: "quantum chemistry: giant straight-line bodies, rare deep loops",
		Paper:       PaperRow{83, 3.05, 3217.80, 6.66, 9, 2.71, 86.92},
		Build:       buildFpppp,
	})
}

func buildFpppp(seed uint64) (*builder.Unit, error) {
	b := builder.New("fpppp", seed)
	setupBases(b)

	loopFarm(b, 40,
		func(i int) builder.Trip { return builder.TripImm(int64(10 + i%8)) },
		func(i int) int { return 20 + i%15 })

	// The integral kernel: a gigantic straight-line block (the famous
	// fpppp basic blocks run to thousands of instructions).
	twoel := b.Func("twoel", func() {
		b.Work(3000)
		b.WorkMem(200, 24, 64)
	})
	// Shell-quartet drivers: deep nests of tiny trips, each leaf calling
	// the giant kernel.
	quartet := b.Func("quartet", func() {
		b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
			b.Work(40)
			b.CountedLoop(builder.TripImm(3), builder.LoopOpt{}, func() {
				b.Work(40)
				b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
					b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
						b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
							b.CountedLoop(builder.TripImm(2), builder.LoopOpt{}, func() {
								b.Call(twoel)
							})
						})
					})
				})
			})
		})
	})
	// SCF iteration body with its own medium straight-line block.
	scf := b.Func("scf", func() {
		b.Work(1800)
		vecLoop(b, builder.TripImm(12), 600, 25, 8)
	})

	b.CountedLoop(builder.TripImm(driverTrip), builder.LoopOpt{}, func() {
		b.Work(200)
		b.Call(quartet)
		b.Call(scf)
	})
	return b.Build()
}
