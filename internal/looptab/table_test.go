package looptab

import (
	"testing"
	"testing/quick"

	"dynloop/internal/isa"
)

// TestTableBasics covers insert/get/touch/remove on a small table.
func TestTableBasics(t *testing.T) {
	tb := NewTable[int](2)
	if tb.Get(1) != nil {
		t.Fatal("get on empty")
	}
	*tb.Insert(1) = 11
	*tb.Insert(2) = 22
	if *tb.Get(1) != 11 || *tb.Get(2) != 22 {
		t.Fatal("values lost")
	}
	// 1 is LRU (Get does not touch); inserting 3 evicts it.
	*tb.Insert(3) = 33
	if tb.Get(1) != nil {
		t.Fatal("LRU entry not evicted")
	}
	if tb.Evictions() != 1 {
		t.Fatalf("evictions = %d", tb.Evictions())
	}
	// Touch 2, insert 4: victim must now be 3.
	tb.Touch(2)
	*tb.Insert(4) = 44
	if tb.Get(3) != nil || tb.Get(2) == nil {
		t.Fatal("touch did not protect entry 2")
	}
	tb.Remove(2)
	if tb.Get(2) != nil || tb.Len() != 1 {
		t.Fatal("remove failed")
	}
}

// TestTableInsertExisting checks reset-to-zero semantics.
func TestTableInsertExisting(t *testing.T) {
	tb := NewTable[int](4)
	*tb.Insert(7) = 99
	if v := tb.Insert(7); *v != 0 {
		t.Fatalf("re-insert did not reset: %d", *v)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

// TestTableVictim checks victim reporting used by the §2.3.2 ablation.
func TestTableVictim(t *testing.T) {
	tb := NewTable[int](2)
	if _, _, ok := tb.Victim(); ok {
		t.Fatal("victim on non-full table")
	}
	tb.Insert(1)
	tb.Insert(2)
	k, _, ok := tb.Victim()
	if !ok || k != 1 {
		t.Fatalf("victim = %d ok=%v, want 1", k, ok)
	}
	unbounded := NewTable[int](0)
	unbounded.Insert(1)
	if _, _, ok := unbounded.Victim(); ok {
		t.Fatal("unbounded table must never report a victim")
	}
}

// TestTableOnEvict checks the eviction callback.
func TestTableOnEvict(t *testing.T) {
	tb := NewTable[int](1)
	var gone []isa.Addr
	tb.OnEvict = func(k isa.Addr, v *int) { gone = append(gone, k) }
	tb.Insert(5)
	tb.Insert(6)
	if len(gone) != 1 || gone[0] != 5 {
		t.Fatalf("evict callback: %v", gone)
	}
}

// refLRU is an independent reference model for the property test.
type refLRU struct {
	cap   int
	order []isa.Addr // front = MRU
}

func (r *refLRU) has(k isa.Addr) bool {
	for _, x := range r.order {
		if x == k {
			return true
		}
	}
	return false
}

func (r *refLRU) touch(k isa.Addr) {
	for i, x := range r.order {
		if x == k {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = k
			return
		}
	}
}

func (r *refLRU) insert(k isa.Addr) {
	if r.has(k) {
		r.touch(k)
		return
	}
	if len(r.order) >= r.cap {
		r.order = r.order[:len(r.order)-1]
	}
	r.order = append([]isa.Addr{k}, r.order...)
}

// TestTableQuickVsReference drives random operation sequences through the
// table and the reference model and compares residency.
func TestTableQuickVsReference(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := NewTable[int](4)
		ref := &refLRU{cap: 4}
		for _, op := range ops {
			k := isa.Addr(op % 8)
			switch (op / 8) % 2 {
			case 0:
				tb.Insert(k)
				ref.insert(k)
			case 1:
				got := tb.Touch(k) != nil
				want := ref.has(k)
				if got != want {
					return false
				}
				ref.touch(k)
			}
			if tb.Len() != len(ref.order) {
				return false
			}
			for _, k := range ref.order {
				if tb.Get(k) == nil {
					return false
				}
			}
		}
		// MRU->LRU order must match exactly.
		keys := tb.Keys()
		if len(keys) != len(ref.order) {
			return false
		}
		for i := range keys {
			if keys[i] != ref.order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
