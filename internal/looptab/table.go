// Package looptab implements the paper's loop-characterisation tables
// (§2.3): the Loop Execution Table (LET) and the Loop Iteration Table
// (LIT), both associative with LRU replacement, plus the hit-ratio
// tracking of §2.3.1 (Figure 4) and the iteration-count prediction the
// STR speculation policy consumes (§3.1.2).
package looptab

import "dynloop/internal/isa"

// Table is an associative table keyed by loop target address with LRU
// replacement. V is the per-entry payload. Capacity 0 means unbounded.
type Table[V any] struct {
	capacity   int
	m          map[isa.Addr]*node[V]
	head, tail *node[V] // head is most recently used
	evictions  uint64
	// OnEvict, when non-nil, is called with the key and value being
	// evicted, before removal.
	OnEvict func(k isa.Addr, v *V)
}

type node[V any] struct {
	key        isa.Addr
	prev, next *node[V]
	val        V
}

// NewTable returns an empty table. Capacity 0 means unbounded.
func NewTable[V any](capacity int) *Table[V] {
	return &Table[V]{capacity: capacity, m: make(map[isa.Addr]*node[V])}
}

// Len returns the number of resident entries.
func (t *Table[V]) Len() int { return len(t.m) }

// Capacity returns the configured capacity (0 = unbounded).
func (t *Table[V]) Capacity() int { return t.capacity }

// Evictions returns how many entries have been evicted.
func (t *Table[V]) Evictions() uint64 { return t.evictions }

// Get returns the value for k without changing recency, or nil.
func (t *Table[V]) Get(k isa.Addr) *V {
	n, ok := t.m[k]
	if !ok {
		return nil
	}
	return &n.val
}

// Touch marks k most recently used and returns its value, or nil if
// absent.
func (t *Table[V]) Touch(k isa.Addr) *V {
	n, ok := t.m[k]
	if !ok {
		return nil
	}
	t.moveToFront(n)
	return &n.val
}

// Insert adds a fresh zero-valued entry for k as most recently used,
// evicting the least recently used entry if the table is full, and
// returns the new value. If k is already resident its value is reset to
// zero and it becomes most recently used.
func (t *Table[V]) Insert(k isa.Addr) *V {
	if n, ok := t.m[k]; ok {
		var zero V
		n.val = zero
		t.moveToFront(n)
		return &n.val
	}
	if t.capacity > 0 && len(t.m) >= t.capacity {
		t.evictLRU()
	}
	n := &node[V]{key: k}
	t.m[k] = n
	t.pushFront(n)
	return &n.val
}

// Victim returns the key and value that Insert would evict next, or ok
// false if no eviction would occur. It lets callers implement alternative
// insertion policies (the §2.3.2 nesting-aware inhibition ablation).
func (t *Table[V]) Victim() (k isa.Addr, v *V, ok bool) {
	if t.capacity == 0 || len(t.m) < t.capacity || t.tail == nil {
		return 0, nil, false
	}
	return t.tail.key, &t.tail.val, true
}

// Remove deletes k if present.
func (t *Table[V]) Remove(k isa.Addr) {
	n, ok := t.m[k]
	if !ok {
		return
	}
	t.unlink(n)
	delete(t.m, k)
}

// Keys returns the resident keys from most to least recently used.
func (t *Table[V]) Keys() []isa.Addr {
	out := make([]isa.Addr, 0, len(t.m))
	for n := t.head; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

func (t *Table[V]) evictLRU() {
	v := t.tail
	if v == nil {
		return
	}
	if t.OnEvict != nil {
		t.OnEvict(v.key, &v.val)
	}
	t.unlink(v)
	delete(t.m, v.key)
	t.evictions++
}

func (t *Table[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *Table[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *Table[V]) moveToFront(n *node[V]) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
