package looptab

import (
	"dynloop/internal/isa"
	"dynloop/internal/predict"
)

// letEntry is the per-loop payload of the LET: how many executions have
// completed since the entry was inserted, and a stride predictor over the
// iteration counts of successive executions (§2.3: "the last iteration
// count and the difference between the previous two counts").
type letEntry struct {
	completed uint32
	iters     predict.Stride
}

// LET is the Loop Execution Table. Recency is "initiated a new execution
// least recently" (§2.3).
type LET struct {
	tab *Table[letEntry]
	// hit-ratio accounting (§2.3.1)
	tests, hits uint64
	// InhibitInsert, when non-nil, implements the §2.3.2 nesting-aware
	// replacement ablation: a full-table insertion of cand is skipped when
	// the function reports that evicting victim would discard a loop
	// nested inside cand.
	InhibitInsert func(victim, cand isa.Addr) bool
	inhibited     uint64
}

// NewLET returns a LET with the given capacity (0 = unbounded).
func NewLET(capacity int) *LET {
	return &LET{tab: NewTable[letEntry](capacity)}
}

// OnExecStart records that loop t starts a new execution: the Figure-4
// hit test runs (hit iff the entry is resident with >= 2 completed
// executions since insertion), recency is updated, and an absent entry is
// inserted.
func (l *LET) OnExecStart(t isa.Addr) (hit bool) {
	l.tests++
	e := l.tab.Touch(t)
	if e == nil {
		if l.InhibitInsert != nil {
			if vk, _, full := l.tab.Victim(); full && l.InhibitInsert(vk, t) {
				l.inhibited++
				return false
			}
		}
		l.tab.Insert(t)
		return false
	}
	if e.completed >= 2 {
		l.hits++
		return true
	}
	return false
}

// Inhibited returns how many insertions the nesting-aware policy skipped.
func (l *LET) Inhibited() uint64 { return l.inhibited }

// OnExecEnd records a completed execution of loop t with the given final
// iteration count. Entries evicted in the meantime are ignored.
func (l *LET) OnExecEnd(t isa.Addr, iters int) {
	e := l.tab.Get(t)
	if e == nil {
		return
	}
	e.completed++
	e.iters.Observe(int64(iters))
}

// PredictIters implements the STR policy's iteration-count cascade
// (§3.1.2): if the stride is reliable (two-bit counter), predict last
// count + stride; otherwise, if a last count is known, predict it
// repeats; otherwise report no prediction (the policy then behaves like
// IDLE for this loop).
func (l *LET) PredictIters(t isa.Addr) (n int64, ok bool) {
	e := l.tab.Get(t)
	if e == nil {
		return 0, false
	}
	if e.iters.Reliable() {
		v, _ := e.iters.Predict()
		return v, true
	}
	if last, ok := e.iters.HaveLast(); ok {
		return last, true
	}
	return 0, false
}

// HitRatio returns the §2.3.1 hit ratio measured so far and the number of
// tests it is based on.
func (l *LET) HitRatio() (ratio float64, tests uint64) {
	if l.tests == 0 {
		return 0, 0
	}
	return float64(l.hits) / float64(l.tests), l.tests
}

// Len returns the number of resident entries.
func (l *LET) Len() int { return l.tab.Len() }

// Evictions returns the number of LRU evictions.
func (l *LET) Evictions() uint64 { return l.tab.Evictions() }

// litEntry is the per-loop payload of the LIT: iterations completed since
// insertion. (The live-in value payload of §2.3 lives in package datapred,
// which models unbounded tables as the paper does for Figure 8; the LIT
// here carries what the Figure-4 hit-ratio experiment needs.)
type litEntry struct {
	completed uint32
}

// LIT is the Loop Iteration Table. Recency is "initiated a new iteration
// least recently" (§2.3).
type LIT struct {
	tab         *Table[litEntry]
	tests, hits uint64
	// InhibitInsert mirrors LET.InhibitInsert for the §2.3.2 ablation.
	InhibitInsert func(victim, cand isa.Addr) bool
	inhibited     uint64
}

// NewLIT returns a LIT with the given capacity (0 = unbounded).
func NewLIT(capacity int) *LIT {
	return &LIT{tab: NewTable[litEntry](capacity)}
}

// OnExecStart inserts loop t if absent (entries are inserted when an
// execution starts, §2.3). It does not test or touch: the iteration-2
// start that coincides with execution start is reported through
// OnIterStart.
func (l *LIT) OnExecStart(t isa.Addr) {
	if l.tab.Get(t) != nil {
		return
	}
	if l.InhibitInsert != nil {
		if vk, _, full := l.tab.Victim(); full && l.InhibitInsert(vk, t) {
			l.inhibited++
			return
		}
	}
	l.tab.Insert(t)
}

// Inhibited returns how many insertions the nesting-aware policy skipped.
func (l *LIT) Inhibited() uint64 { return l.inhibited }

// OnIterStart records that an iteration of loop t starts: the Figure-4
// hit test runs (>= 2 iterations completed since insertion) and recency
// is updated. The first iteration of an execution is never reported (it
// is not detected until it finishes, §2.3.1).
func (l *LIT) OnIterStart(t isa.Addr) (hit bool) {
	l.tests++
	e := l.tab.Touch(t)
	if e == nil {
		// Evicted while its execution is still live; reinsert.
		l.tab.Insert(t)
		return false
	}
	if e.completed >= 2 {
		l.hits++
		return true
	}
	return false
}

// OnIterEnd records a completed (detected) iteration of loop t.
func (l *LIT) OnIterEnd(t isa.Addr) {
	if e := l.tab.Get(t); e != nil {
		e.completed++
	}
}

// HitRatio returns the §2.3.1 hit ratio measured so far and the number of
// tests it is based on.
func (l *LIT) HitRatio() (ratio float64, tests uint64) {
	if l.tests == 0 {
		return 0, 0
	}
	return float64(l.hits) / float64(l.tests), l.tests
}

// Len returns the number of resident entries.
func (l *LIT) Len() int { return l.tab.Len() }

// Evictions returns the number of LRU evictions.
func (l *LIT) Evictions() uint64 { return l.tab.Evictions() }
