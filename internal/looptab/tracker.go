package looptab

import (
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// Tracker wires detector events into a LET and a LIT (attach it as a
// detector observer, or bundle it into one pass of a fused multi-pass
// traversal with harness.NewObserverPass — Figure 4 runs all its table
// sizes on one traversal that way), implementing the event-to-table
// mapping of §2.3:
//
//   - entries are inserted when an execution starts (the detection point);
//   - the LET hit test and recency update happen at execution start;
//   - the LIT hit test and recency update happen at every detected
//     iteration start (the first iteration of an execution is never
//     tested);
//   - completed-iteration and completed-execution counters advance on the
//     corresponding end events; evictions and flushes do not count as
//     completions.
//
// With NestingAware set, both tables run the §2.3.2 replacement ablation:
// an insertion is inhibited when it would evict a loop nested inside the
// incoming one.
type Tracker struct {
	loopdet.NopObserver
	// LET and LIT are the tracked tables.
	LET *LET
	LIT *LIT
	// bounds remembers the widest [T,B] seen per loop, for the
	// nesting-aware ablation.
	bounds map[isa.Addr]isa.Addr
}

// NewTracker returns a tracker over fresh tables of the given capacities
// (0 = unbounded).
func NewTracker(letCapacity, litCapacity int) *Tracker {
	return &Tracker{LET: NewLET(letCapacity), LIT: NewLIT(litCapacity)}
}

// EnableNestingAware switches both tables to the §2.3.2 insertion-inhibit
// replacement policy.
func (tr *Tracker) EnableNestingAware() {
	tr.bounds = make(map[isa.Addr]isa.Addr)
	inhibit := func(victim, cand isa.Addr) bool {
		vb, ok := tr.bounds[victim]
		if !ok {
			return false
		}
		cb, ok := tr.bounds[cand]
		if !ok {
			return false
		}
		// victim nested inside cand: [victim, vb] within [cand, cb].
		return cand <= victim && vb <= cb
	}
	tr.LET.InhibitInsert = inhibit
	tr.LIT.InhibitInsert = inhibit
}

// ExecStart implements loopdet.Observer.
func (tr *Tracker) ExecStart(x *loopdet.Exec) {
	if tr.bounds != nil {
		if b, ok := tr.bounds[x.T]; !ok || x.B > b {
			tr.bounds[x.T] = x.B
		}
	}
	tr.LET.OnExecStart(x.T)
	tr.LIT.OnExecStart(x.T)
}

// IterStart implements loopdet.Observer. The event for iteration k means
// iteration k-1 just completed; completions of iteration 1 coincide with
// insertion and are not counted (see DESIGN.md).
func (tr *Tracker) IterStart(x *loopdet.Exec, index uint64) {
	if x.Iters >= 3 {
		tr.LIT.OnIterEnd(x.T)
	}
	tr.LIT.OnIterStart(x.T)
}

// ExecEnd implements loopdet.Observer.
func (tr *Tracker) ExecEnd(x *loopdet.Exec, reason loopdet.EndReason, index uint64) {
	if reason == loopdet.EndEvicted || reason == loopdet.EndFlush {
		return
	}
	// The final iteration (>= 2) completes with the execution.
	tr.LIT.OnIterEnd(x.T)
	tr.LET.OnExecEnd(x.T, x.Iters)
}
