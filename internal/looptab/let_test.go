package looptab

import (
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// TestLETHitSemantics: a hit requires two completed executions since
// insertion.
func TestLETHitSemantics(t *testing.T) {
	l := NewLET(4)
	if hit := l.OnExecStart(10); hit {
		t.Fatal("first start must miss")
	}
	l.OnExecEnd(10, 5)
	if hit := l.OnExecStart(10); hit {
		t.Fatal("one completed execution must still miss")
	}
	l.OnExecEnd(10, 5)
	if hit := l.OnExecStart(10); !hit {
		t.Fatal("two completed executions must hit")
	}
	r, tests := l.HitRatio()
	if tests != 3 || r < 0.33 || r > 0.34 {
		t.Fatalf("ratio=%v tests=%d", r, tests)
	}
}

// TestLETPredictCascade checks the STR prediction order: reliable stride,
// then last count, then nothing.
func TestLETPredictCascade(t *testing.T) {
	l := NewLET(4)
	if _, ok := l.PredictIters(10); ok {
		t.Fatal("unknown loop must not predict")
	}
	l.OnExecStart(10)
	if _, ok := l.PredictIters(10); ok {
		t.Fatal("no completed executions: no prediction")
	}
	l.OnExecEnd(10, 4)
	if n, ok := l.PredictIters(10); !ok || n != 4 {
		t.Fatalf("last-count prediction = %d %v, want 4", n, ok)
	}
	// Build a reliable stride 4,6,8,10 -> predict 12.
	for _, it := range []int{6, 8, 10} {
		l.OnExecStart(10)
		l.OnExecEnd(10, it)
	}
	if n, ok := l.PredictIters(10); !ok || n != 12 {
		t.Fatalf("stride prediction = %d %v, want 12", n, ok)
	}
}

// TestLETEvictionResets: counters restart after eviction.
func TestLETEvictionResets(t *testing.T) {
	l := NewLET(1)
	l.OnExecStart(10)
	l.OnExecEnd(10, 3)
	l.OnExecEnd(10, 3) // hmm: second end without start is fine for the test
	l.OnExecStart(20)  // evicts 10
	if hit := l.OnExecStart(10); hit {
		t.Fatal("re-inserted entry must miss")
	}
	if _, ok := l.PredictIters(10); ok {
		t.Fatal("history must be gone after eviction")
	}
}

// TestLITHitSemantics follows one execution with 6 iterations: tests at
// iteration starts 2..6, completions counted from iteration 2 on, so
// iterations 4,5,6 hit.
func TestLITHitSemantics(t *testing.T) {
	li := NewLIT(4)
	li.OnExecStart(10)
	hits := 0
	// Iteration starts 2..6 as the Tracker would drive them.
	for k := 2; k <= 6; k++ {
		if k >= 3 {
			li.OnIterEnd(10)
		}
		if li.OnIterStart(10) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (iterations 4..6)", hits)
	}
	r, tests := li.HitRatio()
	if tests != 5 || r != 0.6 {
		t.Fatalf("ratio=%v tests=%d", r, tests)
	}
}

// TestLITPersistsAcrossExecutions: a resident entry with history hits at
// the second execution's first tested iteration.
func TestLITPersistsAcrossExecutions(t *testing.T) {
	li := NewLIT(4)
	li.OnExecStart(10)
	for k := 2; k <= 5; k++ {
		if k >= 3 {
			li.OnIterEnd(10)
		}
		li.OnIterStart(10)
	}
	li.OnIterEnd(10) // final iteration completes with the execution
	// New execution of the same loop: entry resident, completed >= 2.
	li.OnExecStart(10)
	if !li.OnIterStart(10) {
		t.Fatal("resident history must hit immediately")
	}
}

// TestLRURecencyDiffersBetweenTables: the LET ranks by execution starts,
// the LIT by iteration starts, so under the same event stream they evict
// different victims.
func TestLRURecencyDiffersBetweenTables(t *testing.T) {
	tr := NewTracker(2, 2)
	det := events{tr}
	// Loop A starts an execution, then loop B starts one; B iterates many
	// times (B most recent in LIT). Then A iterates once (A most recent
	// in LIT? no: A iterates last). Order the events so that the tables'
	// LRU victims differ when C arrives:
	//   exec starts: A then B -> LET victim is A.
	//   iter starts: ... A iterates last -> LIT victim is B.
	a, b, c := newExec(1, 100, 110), newExec(2, 200, 210), newExec(3, 300, 310)
	det.execStart(a)
	det.execStart(b)
	det.iterStart(b)
	det.iterStart(b)
	det.iterStart(a) // A now most recent in LIT; LET order still A older
	det.execStart(c) // inserts into both, evicting per-table victims
	if tr.LET.tab.Get(100) != nil {
		t.Fatal("LET should have evicted A (oldest execution start)")
	}
	if tr.LET.tab.Get(200) == nil {
		t.Fatal("LET should have kept B")
	}
	if tr.LIT.tab.Get(200) != nil {
		t.Fatal("LIT should have evicted B (oldest iteration start)")
	}
	if tr.LIT.tab.Get(100) == nil {
		t.Fatal("LIT should have kept A (iterated most recently)")
	}
}

// TestNestingAwareInhibit: with the §2.3.2 policy, inserting an outer
// loop that would evict a loop nested inside it is skipped.
func TestNestingAwareInhibit(t *testing.T) {
	tr := NewTracker(1, 1)
	tr.EnableNestingAware()
	det := events{tr}
	inner := newExec(1, 50, 60) // body [50,60]
	outer := newExec(2, 10, 90) // body [10,90] encloses inner
	det.execStart(inner)
	det.execStart(outer) // would evict inner: inhibited
	if tr.LET.tab.Get(50) == nil || tr.LET.tab.Get(10) != nil {
		t.Fatal("LET: inner must stay, outer must be inhibited")
	}
	if tr.LET.Inhibited() != 1 || tr.LIT.Inhibited() != 1 {
		t.Fatalf("inhibit counters: LET=%d LIT=%d", tr.LET.Inhibited(), tr.LIT.Inhibited())
	}
	// A disjoint loop is NOT inhibited.
	other := newExec(3, 200, 210)
	det.execStart(other)
	if tr.LET.tab.Get(200) == nil {
		t.Fatal("disjoint loop must replace normally")
	}
}

// events is a tiny driver that feeds observer callbacks like the detector
// would.
type events struct{ tr *Tracker }

func newExec(id uint64, tt, bb uint32) *loopdet.Exec {
	return &loopdet.Exec{ID: id, T: isa.Addr(tt), B: isa.Addr(bb), Iters: 2}
}

func (e events) execStart(x *loopdet.Exec) { e.tr.ExecStart(x) }
func (e events) iterStart(x *loopdet.Exec) {
	x.Iters++
	e.tr.IterStart(x, 0)
}

// TestTrackerEndToEnd drives a full execution through the Tracker and
// checks both tables' counters.
func TestTrackerEndToEnd(t *testing.T) {
	tr := NewTracker(4, 4)
	x := newExec(1, 10, 20)
	tr.ExecStart(x)
	tr.IterStart(x, 0) // iteration 2 (the detection one)
	for x.Iters < 5 {
		x.Iters++
		tr.IterStart(x, 0)
	}
	tr.ExecEnd(x, loopdet.EndBackEdge, 0)
	if _, tests := tr.LIT.HitRatio(); tests != 4 {
		t.Fatalf("LIT tests = %d, want 4 (iterations 2..5)", tests)
	}
	if n, ok := tr.LET.PredictIters(10); !ok || n != 5 {
		t.Fatalf("LET learned %d %v, want 5", n, ok)
	}
	// Flush-terminated executions must not count as completed.
	y := newExec(2, 30, 40)
	tr.ExecStart(y)
	tr.IterStart(y, 0)
	tr.ExecEnd(y, loopdet.EndFlush, 0)
	if _, ok := tr.LET.PredictIters(30); ok {
		t.Fatal("flushed execution must not train the LET")
	}
}
