package grid

import (
	"testing"

	"dynloop/internal/harness"
	"dynloop/internal/looptab"
	"dynloop/internal/trace"
)

// TestCtlOnlyCellPlanes pins which grid cells actually negotiate the
// control plane: a loop-table tracker attaches only lifecycle observers,
// so fig4/replacement detectors stay control-only; the branchpred cells
// are bare collectors. This keeps the end-to-end plane-equivalence suite
// from passing vacuously with every traversal on the full plane.
func TestCtlOnlyCellPlanes(t *testing.T) {
	det := harness.NewObserverPass(16, looptab.NewTracker(16, 16))
	if got := trace.PlanesOf(det); got != trace.PlaneCtl {
		t.Fatalf("tracker-observed detector planes = %v, want ctl-only", got)
	}
}
