package grid

import (
	"encoding/json"
	"testing"
)

// FuzzSpecValidate feeds arbitrary JSON through the spec parser and
// validator: Validate must never panic, and a spec it accepts must
// honour every documented bound — compiling it (against a tiny fake
// config) must stay within the cell cap and never panic either. This is
// the guard on the daemon's POST /v1/grid input path.
func FuzzSpecValidate(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"kind":"spec","benchmarks":["swim"],"tus":[2,4],"policies":["str","idle"]}`,
		`{"kind":"fig4","table_sizes":[2,16]}`,
		`{"kind":"replacement","modes":["lru","nest"]}`,
		`{"kind":"spec","seeds":[1,2,3],"cls":[8,16],"budget_divs":[1,4]}`,
		`{"kind":"spec","exclusion":[{},{"enabled":true,"threshold":0.85}]}`,
		`{"kind":"spec","render":{"format":"csv","metrics":["tpc"]}}`,
		`{"kind":"spec","tus":[-1]}`,
		`{"kind":"oracle","policies":["str"]}`,
		`{"kind":"bogus"}`,
		`{"kind":"spec","budgets":[99999999999999999]}`,
		`{"kind":"spec","nest_rules":["static","starvation"]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		// Accepted: every axis must be inside the documented bounds.
		for _, b := range s.Budgets {
			if b > maxBudget {
				t.Fatalf("accepted budget %d out of range", b)
			}
		}
		for _, d := range s.BudgetDivs {
			if d < 1 || d > maxDiv {
				t.Fatalf("accepted budget_div %d out of range", d)
			}
		}
		for _, k := range s.TUs {
			if k < 0 || k > maxTUs {
				t.Fatalf("accepted TU count %d out of range", k)
			}
		}
		for _, c := range s.CLS {
			if c < -1 || c > maxCLS {
				t.Fatalf("accepted cls %d out of range", c)
			}
		}
		for _, sz := range s.TableSizes {
			if sz < 1 || sz > maxTableSize {
				t.Fatalf("accepted table_size %d out of range", sz)
			}
		}
		for _, c := range s.LETCaps {
			if c < 0 || c > maxLETCap {
				t.Fatalf("accepted let_cap %d out of range", c)
			}
		}
		for _, ex := range s.Exclusion {
			if ex.Threshold < 0 || ex.Threshold > 1 {
				t.Fatalf("accepted exclusion threshold %v out of range", ex.Threshold)
			}
		}
		// And it must compile without panicking, to a bounded cell
		// count, against a benchmark subset that always resolves.
		cfg := Config{Benchmarks: []string{"swim"}}
		if len(s.Benchmarks) > 0 {
			// Unknown benchmark names are a compile-time error, not a
			// validation one; both outcomes are fine, panics are not.
			cells, _, err := Compile(cfg, s)
			if err == nil && len(cells) > maxCells {
				t.Fatalf("compiled %d cells, above the cap", len(cells))
			}
			return
		}
		cells, _, err := Compile(cfg, s)
		if err != nil {
			t.Fatalf("validated spec failed to compile: %v", err)
		}
		if len(cells) > maxCells {
			t.Fatalf("compiled %d cells, above the cap", len(cells))
		}
	})
}
