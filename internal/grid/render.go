package grid

import (
	"encoding/json"
	"fmt"
	"strings"

	"dynloop/internal/report"
	"dynloop/internal/spec"
)

// metric is one named value column the generic renderer can extract
// from a cell result.
type metric struct {
	name string
	get  func(any) any
}

// kindMetrics catalogues the value columns of each kind, in display
// order. The leading entries double as the kind's default selection
// (see defaultMetricCount).
func kindMetrics(kind string) []metric {
	switch kind {
	case "spec":
		return []metric{
			{"tpc", func(v any) any { return v.(spec.Metrics).TPC() }},
			{"hit_pct", func(v any) any { return v.(spec.Metrics).HitRatio() }},
			{"spec_events", func(v any) any { return v.(spec.Metrics).SpecEvents }},
			{"threads_per_spec", func(v any) any { return v.(spec.Metrics).ThreadsPerSpec() }},
			{"instr_to_verif", func(v any) any { return v.(spec.Metrics).InstrToVerif() }},
			{"cycles", func(v any) any { return v.(spec.Metrics).Cycles }},
			{"instrs", func(v any) any { return v.(spec.Metrics).Instrs }},
			{"threads_spawned", func(v any) any { return v.(spec.Metrics).ThreadsSpawned }},
			{"threads_promoted", func(v any) any { return v.(spec.Metrics).ThreadsPromoted }},
			{"threads_squashed", func(v any) any { return v.(spec.Metrics).ThreadsSquashed }},
		}
	case "table1":
		return []metric{
			{"static_loops", func(v any) any { return v.(Table1Row).S.StaticLoops }},
			{"iters_per_exec", func(v any) any { return v.(Table1Row).S.ItersPerExec }},
			{"instr_per_iter", func(v any) any { return v.(Table1Row).S.InstrPerIter }},
			{"avg_nesting", func(v any) any { return v.(Table1Row).S.AvgNesting }},
			{"max_nesting", func(v any) any { return v.(Table1Row).S.MaxNesting }},
			{"instrs", func(v any) any { return v.(Table1Row).S.Instrs }},
			{"execs", func(v any) any { return v.(Table1Row).S.Execs }},
			{"iters", func(v any) any { return v.(Table1Row).S.Iters }},
			{"in_loop_frac", func(v any) any { return v.(Table1Row).S.InLoopFrac }},
		}
	case "fig4":
		return []metric{
			{"let_hit_pct", func(v any) any { return 100 * v.(Fig4Cell).LET }},
			{"lit_hit_pct", func(v any) any { return 100 * v.(Fig4Cell).LIT }},
		}
	case "fig8":
		return []metric{
			{"same_path_pct", func(v any) any { return v.(Fig8Row).S.SamePathPct }},
			{"lr_pred_pct", func(v any) any { return v.(Fig8Row).S.LrPredPct }},
			{"lm_pred_pct", func(v any) any { return v.(Fig8Row).S.LmPredPct }},
			{"all_lr_pct", func(v any) any { return v.(Fig8Row).S.AllLrPct }},
			{"all_lm_pct", func(v any) any { return v.(Fig8Row).S.AllLmPct }},
			{"all_data_pct", func(v any) any { return v.(Fig8Row).S.AllDataPct }},
			{"lr_last_pct", func(v any) any { return v.(Fig8Row).S.LrLastPct }},
			{"lm_last_pct", func(v any) any { return v.(Fig8Row).S.LmLastPct }},
			{"loops", func(v any) any { return v.(Fig8Row).S.Loops }},
			{"iters", func(v any) any { return v.(Fig8Row).S.Iters }},
		}
	case "clssize":
		return []metric{
			{"evictions", func(v any) any { return v.(CLSCell).Evictions }},
			{"at_cap", func(v any) any { return v.(CLSCell).AtCap }},
			{"tpc", func(v any) any { return v.(CLSCell).TPC }},
		}
	case "replacement":
		return []metric{
			{"let_hit_pct", func(v any) any { return 100 * v.(ReplCell).LET }},
			{"lit_hit_pct", func(v any) any { return 100 * v.(ReplCell).LIT }},
			{"inhibited", func(v any) any { return v.(ReplCell).Inhibited }},
		}
	case "oneshots":
		return []metric{
			{"with_ipe", func(v any) any { return v.(OneShotRow).WithIPE }},
			{"without_ipe", func(v any) any { return v.(OneShotRow).WithoutIPE }},
			{"with_execs", func(v any) any { return v.(OneShotRow).WithExecs }},
			{"without_execs", func(v any) any { return v.(OneShotRow).WithoutExec }},
		}
	case "branchpred":
		pred := func(name string, backward bool) func(any) any {
			return func(v any) any {
				for _, r := range v.(BaselineRow).Results {
					if r.Name == name {
						if backward {
							return r.BackwardAccuracy()
						}
						return r.Accuracy()
					}
				}
				return 0.0
			}
		}
		return []metric{
			{"btfn", pred("BTFN", false)}, {"btfn_bwd", pred("BTFN", true)},
			{"bimodal", pred("bimodal", false)}, {"bimodal_bwd", pred("bimodal", true)},
			{"gshare", pred("gshare", false)}, {"gshare_bwd", pred("gshare", true)},
		}
	case "taskpred":
		return []metric{
			{"next_task_pct", func(v any) any { return v.(TaskPredRow).NextTaskPct }},
			{"scored", func(v any) any { return v.(TaskPredRow).Scored }},
			{"iter_hit_pct", func(v any) any { return v.(TaskPredRow).IterHitPct }},
		}
	case "oracle":
		return []metric{
			{"str_tpc", func(v any) any { return v.(OracleRow).STRTPC }},
			{"oracle_tpc", func(v any) any { return v.(OracleRow).OracleTPC }},
			{"str_hit_pct", func(v any) any { return v.(OracleRow).STRHit }},
			{"oracle_hit_pct", func(v any) any { return v.(OracleRow).OracleHit }},
		}
	default:
		return nil
	}
}

// defaultMetricCount is how many leading catalogue entries a nil
// Layout.Metrics selects per kind.
func defaultMetricCount(kind string) int {
	switch kind {
	case "spec":
		return 4 // tpc, hit_pct, spec_events, threads_per_spec
	case "table1":
		return 5
	case "fig8":
		return 6
	default:
		return len(kindMetrics(kind))
	}
}

// kindMetricNames is the validation view of the catalogue.
func kindMetricNames(kind string) map[string]bool {
	out := map[string]bool{}
	for _, m := range kindMetrics(kind) {
		out[m.name] = true
	}
	return out
}

// selectMetrics resolves a layout's metric selection for a kind.
func selectMetrics(kind string, names []string) ([]metric, error) {
	catalogue := kindMetrics(kind)
	if len(names) == 0 {
		return catalogue[:defaultMetricCount(kind)], nil
	}
	byName := map[string]metric{}
	for _, m := range catalogue {
		byName[m.name] = m
	}
	out := make([]metric, 0, len(names))
	for _, n := range names {
		m, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("grid: kind %q has no metric %q", kind, n)
		}
		out = append(out, m)
	}
	return out, nil
}

// coordColumn is one coordinate column the renderer shows: the bench
// always, plus every axis the spec actually sweeps.
type coordColumn struct {
	name string
	get  func(Coord) any
}

func coordColumns(s Spec) []coordColumn {
	cols := []coordColumn{{"bench", func(c Coord) any { return c.Bench }}}
	add := func(cond bool, name string, get func(Coord) any) {
		if cond {
			cols = append(cols, coordColumn{name, get})
		}
	}
	add(len(s.Budgets) > 1 || len(s.BudgetDivs) > 1, "budget", func(c Coord) any { return c.Budget })
	add(len(s.Seeds) > 1, "seed", func(c Coord) any { return c.Seed })
	add(len(s.CLS) > 1, "cls", func(c Coord) any { return c.CLS })
	add(len(s.TableSizes) > 1, "entries", func(c Coord) any { return c.TableSize })
	add(len(s.Modes) > 1, "mode", func(c Coord) any { return c.Mode })
	add(len(s.Policies) > 1, "policy", func(c Coord) any { return c.Policy })
	add(len(s.TUs) > 1, "TUs", func(c Coord) any { return c.TUs })
	add(len(s.LETCaps) > 1, "LET cap", func(c Coord) any { return c.LETCap })
	add(len(s.NestRules) > 1, "nest rule", func(c Coord) any { return c.NestRule })
	add(len(s.Exclusion) > 1, "exclusion", func(c Coord) any { return exclusionLabel(c.Exclusion) })
	return cols
}

func exclusionLabel(ex ExclusionSpec) string {
	if !ex.Enabled {
		return "off"
	}
	return fmt.Sprintf("on(%v)", ex.Threshold)
}

// title derives the rendered heading.
func (s Spec) title() string {
	if s.Title != "" {
		return s.Title
	}
	if s.Name != "" {
		return fmt.Sprintf("Grid %s (%s)", s.Name, s.Kind)
	}
	return fmt.Sprintf("Grid: %s cells", s.Kind)
}

// RenderLayout formats a result through the generic layout renderer:
// one row per cell (coordinate columns for every swept axis, then the
// selected metric columns) as an aligned table, CSV, or JSON. The
// output is a pure function of the result, so local and remote runs of
// the same spec render byte-identically.
func RenderLayout(res *Result) (string, error) {
	s := res.Spec
	metrics, err := selectMetrics(s.Kind, s.Render.Metrics)
	if err != nil {
		return "", err
	}
	coords := coordColumns(s)
	switch s.Render.Format {
	case "json":
		rows := make([]map[string]any, len(res.Cells))
		for i, c := range res.Cells {
			row := map[string]any{}
			for _, cc := range coords {
				row[strings.ReplaceAll(cc.name, " ", "_")] = cc.get(c.Coord)
			}
			for _, m := range metrics {
				row[m.name] = m.get(res.Values[i])
			}
			rows[i] = row
		}
		out, err := json.MarshalIndent(map[string]any{
			"name": s.Name, "title": s.title(), "kind": s.Kind, "cells": rows,
		}, "", "  ")
		if err != nil {
			return "", err
		}
		return string(out) + "\n", nil
	default: // "", "table", "csv"
		headers := make([]string, 0, len(coords)+len(metrics))
		for _, cc := range coords {
			headers = append(headers, cc.name)
		}
		for _, m := range metrics {
			headers = append(headers, m.name)
		}
		t := report.NewTable(s.title(), headers...)
		for i, c := range res.Cells {
			row := make([]any, 0, len(headers))
			for _, cc := range coords {
				row = append(row, cc.get(c.Coord))
			}
			for _, m := range metrics {
				row = append(row, m.get(res.Values[i]))
			}
			t.AddRow(row...)
		}
		if s.Render.Format == "csv" {
			var b strings.Builder
			t.CSV(&b)
			return b.String(), nil
		}
		return t.String(), nil
	}
}
