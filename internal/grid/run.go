package grid

import (
	"context"
	"fmt"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
)

// Result is an executed (or remotely fetched) grid: the resolved spec,
// the compiled cells and one value per cell, in cell order. Values hold
// the kind's codec-registered result type (spec.Metrics for kind
// "spec", Table1Row for "table1", ...).
type Result struct {
	Spec   Spec
	Cells  []Cell
	Values []any
}

// Value returns cell i's result; it exists for symmetry with the typed
// accessors the drivers build on top.
func (r *Result) Value(i int) any { return r.Values[i] }

// Run compiles the spec under cfg and resolves every cell through the
// runner — cached cells are served individually (memory first, then the
// optional disk store), missing cells execute fused per (benchmark,
// budget, seed) group: one unit build, one harness.MultiRun traversal
// feeding all of the group's passes, then each cell's finish hook.
// Composite kinds (oracle) run as plain jobs owning their traversals.
// Values return in cell order, byte-identical at any worker count and
// with fusion on or off.
//
// The runner is resolved exactly once per Run (see Config.Runner for
// the sharing contract); pass a shared Runner to deduplicate cells
// across grids.
func Run(ctx context.Context, cfg Config, s Spec) (*Result, error) {
	cells, rs, err := Compile(cfg, s)
	if err != nil {
		return nil, err
	}
	pool := cfg.pool()
	var values []any
	if rs.Kind == "oracle" {
		jobs := make([]runner.Job[any], len(cells))
		for i, c := range cells {
			jobs[i] = runner.Job[any]{Key: c.Key, Label: c.Label, Run: c.run}
		}
		values, err = runner.Map(ctx, pool, jobs)
	} else {
		values, err = runCells(ctx, cfg, pool, cells)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: rs, Cells: cells, Values: values}
	if err := res.check(); err != nil {
		return nil, err
	}
	return res, nil
}

// runCells resolves fusable cells through runner.MapGroups: all
// cache-missing cells sharing a (benchmark, budget, seed, batch) group
// execute in a single fused traversal.
func runCells(ctx context.Context, cfg Config, pool *runner.Runner, cells []Cell) ([]any, error) {
	jobs := make([]runner.GroupJob[any], len(cells))
	for i, c := range cells {
		group := c.cfg.groupKey(c.bench.Name, c.cfg.budget())
		if cfg.NoFuse {
			group = fmt.Sprintf("%s|cell%d", group, i)
		}
		jobs[i] = runner.GroupJob[any]{Key: c.Key, Group: group, Label: c.Label}
	}
	exec := func(ctx context.Context, group string, idx []int) ([]any, error) {
		lead := cells[idx[0]]
		passes := make([]trace.Pass, len(idx))
		finish := make([]func() (any, error), len(idx))
		for j, i := range idx {
			passes[j], finish[j] = cells[i].mk()
		}
		mc := harness.MultiConfig{Budget: lead.cfg.budget(), BatchSize: lead.cfg.BatchSize,
			Shards: cfg.Shards, Reference: cfg.Reference, FullPlanes: cfg.FullPlanes}
		var err error
		if tr := cfg.Traces; tr != nil {
			// Third tier: replay the group's recorded stream when the
			// archive covers it; otherwise interpret once while recording.
			// The unit is only built on the record path.
			build := func() (*builder.Unit, error) {
				u, err := lead.bench.Build(lead.cfg.seed())
				if err != nil {
					return nil, fmt.Errorf("grid: build %s: %w", lead.bench.Name, err)
				}
				return u, nil
			}
			var replayed bool
			if _, replayed, err = tr.MultiRun(ctx, lead.bench.Name, lead.cfg.seed(), build, mc, passes...); err != nil {
				return nil, err
			}
			pool.CountTraceRun(replayed)
		} else {
			u, err := lead.bench.Build(lead.cfg.seed())
			if err != nil {
				return nil, fmt.Errorf("grid: build %s: %w", lead.bench.Name, err)
			}
			if _, err := harness.MultiRun(u, mc, passes...); err != nil {
				return nil, err
			}
		}
		out := make([]any, len(idx))
		for j, f := range finish {
			if out[j], err = f(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return runner.MapGroups(ctx, pool, jobs, exec)
}

// ResultFrom rebuilds a Result from a value stream computed elsewhere
// (the serving layer returns values in cell order; the spec expansion
// is deterministic, so client and daemon agree on what each value is).
// It re-validates shape and value types, so a skewed or truncated
// stream fails loudly instead of rendering garbage.
func ResultFrom(cfg Config, s Spec, values []any) (*Result, error) {
	cells, rs, err := Compile(cfg, s)
	if err != nil {
		return nil, err
	}
	if len(values) != len(cells) {
		return nil, fmt.Errorf("grid: %d values for %d cells", len(values), len(cells))
	}
	res := &Result{Spec: rs, Cells: cells, Values: values}
	if err := res.check(); err != nil {
		return nil, err
	}
	return res, nil
}

// check verifies every value carries the kind's result type. A cache
// key determines its result type, so a mismatch means a stale or
// foreign value sneaked in — fail loudly rather than render nonsense.
func (r *Result) check() error {
	ok := kindTypeCheck(r.Spec.Kind)
	for i, v := range r.Values {
		if !ok(v) {
			return fmt.Errorf("grid: cell %d (%s) holds %T, not the %q result type",
				i, r.Cells[i].Label, v, r.Spec.Kind)
		}
	}
	return nil
}

func kindTypeCheck(kind string) func(any) bool {
	switch kind {
	case "spec":
		return func(v any) bool { _, ok := v.(spec.Metrics); return ok }
	case "table1":
		return func(v any) bool { _, ok := v.(Table1Row); return ok }
	case "fig4":
		return func(v any) bool { _, ok := v.(Fig4Cell); return ok }
	case "fig8":
		return func(v any) bool { _, ok := v.(Fig8Row); return ok }
	case "clssize":
		return func(v any) bool { _, ok := v.(CLSCell); return ok }
	case "replacement":
		return func(v any) bool { _, ok := v.(ReplCell); return ok }
	case "oneshots":
		return func(v any) bool { _, ok := v.(OneShotRow); return ok }
	case "branchpred":
		return func(v any) bool { _, ok := v.(BaselineRow); return ok }
	case "taskpred":
		return func(v any) bool { _, ok := v.(TaskPredRow); return ok }
	case "oracle":
		return func(v any) bool { _, ok := v.(OracleRow); return ok }
	default:
		return func(any) bool { return false }
	}
}
