package grid

import (
	"encoding/hex"
	"reflect"
	"testing"

	"dynloop/internal/branchpred"
	"dynloop/internal/codec"
	"dynloop/internal/datapred"
	"dynloop/internal/loopstats"
	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// sampleCells is one representative value per registered cell-result
// type, with every field set to a distinctive non-zero value so a
// field-order slip cannot round-trip cleanly.
func sampleCells() []any {
	return []any{
		spec.Metrics{
			Instrs: 1000, Cycles: 400, SpecEvents: 7,
			ThreadsSpawned: 21, ThreadsPromoted: 17, ThreadsSquashed: 3, ThreadsFlushed: 1,
			OutstandingSum: 19, VerifDistSum: 950, ResolvedThreads: 20,
			DeniedSpawns: 2, ExcludedLoops: 1, Anomalies: 0,
		},
		Fig4Cell{LET: 0.75, LIT: 0.5},
		Table1Row{
			Bench: "swim",
			S: loopstats.Summary{
				Instrs: 500, StaticLoops: 6, Execs: 40, Iters: 200,
				ItersPerExec: 5, InstrPerIter: 2.5, AvgNesting: 1.25,
				MaxNesting: 3, InLoopFrac: 0.875,
			},
			Paper: workload.PaperRow{
				Loops: 8, ItersPerExec: 4.5, InstrPerIter: 3.5,
				AvgNL: 1.5, MaxNL: 4, TPC4: 2.25, HitRatio: 90.5,
			},
		},
		Fig8Row{
			Bench: "li",
			S: datapred.Summary{
				Loops: 3, Iters: 60, SamePathPct: 85.5, LrPredPct: 70.25,
				LmPredPct: 60.125, AllLrPct: 50.5, AllLmPct: 40.25,
				AllDataPct: 30.125, LrLastPct: 20.5, LmLastPct: 10.25, MemOverflow: 2,
			},
		},
		CLSCell{Evictions: 12, AtCap: true, TPC: 1.75},
		ReplCell{LET: 0.25, LIT: 0.625, Inhibited: 9},
		OneShotRow{Bench: "perl", WithIPE: 6.5, WithoutIPE: 8.25, WithExecs: 30, WithoutExec: 24},
		BaselineRow{Bench: "gcc", Results: []branchpred.Result{
			{Name: "btfn", Branches: 100, Hits: 80, BackwardBranches: 40, BackwardHits: 38},
			{Name: "gshare", Branches: 100, Hits: 95, BackwardBranches: 40, BackwardHits: 39},
		}},
		TaskPredRow{Bench: "go", NextTaskPct: 77.5, Scored: 123, IterHitPct: 88.25},
		OracleRow{Bench: "apsi", STRTPC: 1.5, OracleTPC: 2.5, STRHit: 75.5, OracleHit: 99.5},
	}
}

// golden pins the exact frame bytes of every registered cell type.
// These bytes are a persistence format: the on-disk store and the
// serving wire format both carry them. If this test fails because you
// changed an encoding, bump that type's registered version (and, for
// semantic changes, CellSchemaVersion) — do not just update the hex.
var golden = map[string]string{
	"spec.Metrics":     "0101e8079003071511030113b60714020200",
	"grid.Fig4Cell":    "0201000000000000e83f000000000000e03f",
	"grid.Table1Row":   "0301047377696df4030c28c80100000000000014400000000000000440000000000000f43f06000000000000ec3f1000000000000012400000000000000c40000000000000f83f0800000000000002400000000000a05640",
	"grid.Fig8Row":     "0401026c69063c000000000060554000000000009051400000000000104e40000000000040494000000000002044400000000000203e400000000000803440000000000080244002",
	"grid.CLSCell":     "05010c01000000000000fc3f",
	"grid.ReplCell":    "0601000000000000d03f000000000000e43f09",
	"grid.OneShotRow":  "0701047065726c0000000000001a4000000000008020401e18",
	"grid.BaselineRow": "08010367636304046274666e6450282606677368617265645f2827",
	"grid.TaskPredRow": "090102676f00000000006053407b0000000000105640",
	"grid.OracleRow":   "0a010461707369000000000000f83f00000000000004400000000000e052400000000000e05840",
}

func typeName(v any) string { return reflect.TypeOf(v).String() }

func TestCellCodecRoundTrip(t *testing.T) {
	for _, v := range sampleCells() {
		b, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", typeName(v), err)
		}
		got, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", typeName(v), err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: round trip\n got  %+v\n want %+v", typeName(v), got, v)
		}
	}
}

func TestCellCodecGolden(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range sampleCells() {
		name := typeName(v)
		seen[name] = true
		b, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden entry; add:\n%q: \"%s\"", name, name, hex.EncodeToString(b))
			continue
		}
		if got := hex.EncodeToString(b); got != want {
			t.Errorf("%s: frame bytes changed (bump the codec version instead of editing the golden)\n got  %s\n want %s", name, got, want)
		}
	}
	for name := range golden {
		if !seen[name] {
			t.Errorf("golden entry %s has no sample", name)
		}
	}
}

// TestCellCodecCorruptNeverPartial: truncating any sample frame at any
// byte must yield an error, never a silently partial value.
func TestCellCodecCorruptNeverPartial(t *testing.T) {
	for _, v := range sampleCells() {
		b, err := codec.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := codec.Decode(b[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded cleanly", typeName(v), cut, len(b))
			}
		}
	}
}
