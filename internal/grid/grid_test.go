package grid

import (
	"context"
	"strings"
	"testing"
)

// TestConfigDefaults covers budget/seed defaulting and subset
// resolution.
func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.budget() != DefaultBudget || c.seed() != 1 {
		t.Fatalf("defaults: budget=%d seed=%d", c.budget(), c.seed())
	}
	c = Config{Budget: 5, Seed: 9}
	if c.budget() != 5 || c.seed() != 9 {
		t.Fatalf("overrides ignored")
	}
	bms, err := Config{}.benchmarks()
	if err != nil || len(bms) != 18 {
		t.Fatalf("all benchmarks: %d %v", len(bms), err)
	}
	bms, err = Config{Benchmarks: []string{"swim", "perl"}}.benchmarks()
	if err != nil || len(bms) != 2 || bms[0].Name != "swim" {
		t.Fatalf("subset: %v %v", bms, err)
	}
	if _, err := (Config{Benchmarks: []string{"nope"}}).benchmarks(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestCellKeyCoversConfig: cells that must not collide don't.
func TestCellKeyCoversConfig(t *testing.T) {
	a := Config{Budget: 100}.cellKey("spec", "swim", 4)
	variants := []string{
		Config{Budget: 200}.cellKey("spec", "swim", 4),
		Config{Budget: 100, Seed: 2}.cellKey("spec", "swim", 4),
		Config{Budget: 100, CLSCapacity: 8}.cellKey("spec", "swim", 4),
		Config{Budget: 100}.cellKey("spec", "swim", 8),
		Config{Budget: 100}.cellKey("spec", "gcc", 4),
		Config{Budget: 100}.cellKey("table1", "swim", 4),
	}
	for i, v := range variants {
		if v == a {
			t.Fatalf("variant %d collides with base key %q", i, a)
		}
	}
	// Parallelism must NOT change the key: the result is the same cell.
	if b := (Config{Budget: 100, Parallel: 8}).cellKey("spec", "swim", 4); b != a {
		t.Fatalf("worker count leaked into the cell key: %q vs %q", b, a)
	}
	// Fusion must NOT change the key either: fused and per-cell runs
	// compute the same cell.
	if b := (Config{Budget: 100, NoFuse: true}).cellKey("spec", "swim", 4); b != a {
		t.Fatalf("NoFuse leaked into the cell key: %q vs %q", b, a)
	}
	// Same for the interpreter's reference path: it emits byte-identical
	// streams, so it names the same cell.
	if b := (Config{Budget: 100, Reference: true}).cellKey("spec", "swim", 4); b != a {
		t.Fatalf("Reference leaked into the cell key: %q vs %q", b, a)
	}
}

// TestCellKeyDelimiterCollisions: the length-prefixed encoding keeps
// adjacent parts from blurring into each other — "a","bc" and "ab","c"
// concatenate identically under a naive delimiter scheme, as do parts
// that contain the delimiter itself.
func TestCellKeyDelimiterCollisions(t *testing.T) {
	cfg := Config{Budget: 100}
	pairs := [][2][]any{
		{{"a", "bc"}, {"ab", "c"}},
		{{"a|b"}, {"a", "b"}},
		{{"a|", "b"}, {"a", "|b"}},
		{{"x", ""}, {"x"}},
		{{1, 23}, {12, 3}},
		{{"spec", "swim", "41"}, {"spec", "swim4", "1"}},
		{{"2:ab"}, {"ab"}},
	}
	for _, p := range pairs {
		if a, b := cfg.cellKey(p[0]...), cfg.cellKey(p[1]...); a == b {
			t.Errorf("cellKey(%v) == cellKey(%v) == %q", p[0], p[1], a)
		}
	}
	// And equal parts still key equal.
	if cfg.cellKey("spec", "swim", 4) != cfg.cellKey("spec", "swim", 4) {
		t.Fatal("identical parts produced different keys")
	}
}

// TestCellKeyVersionPrefix pins the stamp's position: the version leads
// the key, so no legacy (unstamped) key can ever equal a stamped one.
func TestCellKeyVersionPrefix(t *testing.T) {
	key := Config{Budget: 100}.cellKey("spec", "swim", 4)
	if key[0] != 'v' {
		t.Fatalf("cell key %q does not lead with the schema version", key)
	}
	CellSchemaVersion++
	bumped := Config{Budget: 100}.cellKey("spec", "swim", 4)
	CellSchemaVersion--
	if bumped == key {
		t.Fatal("bumping CellSchemaVersion did not change the key")
	}
}

// TestSpecValidate covers the validation matrix: good specs pass, out
// of range or inapplicable axes fail.
func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Kind: "spec", Policies: []string{"str", "STR(2)", "idle"}, TUs: []int{0, 2, 16}},
		{Kind: "table1", Benchmarks: []string{"swim"}},
		{Kind: "fig4", TableSizes: []int{2, 16}},
		{Kind: "replacement", Modes: []string{"nest"}},
		{Kind: "spec", Exclusion: []ExclusionSpec{{}, {Enabled: true, Threshold: 0.85}}},
		{Kind: "spec", Render: Layout{Format: "csv", Metrics: []string{"tpc", "hit_pct"}}},
		{Kind: "spec", Seeds: []uint64{1, 2, 3}, CLS: []int{-1, 0, 8}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{Kind: "bogus"},
		{Kind: "spec", Policies: []string{"warp9"}},
		{Kind: "spec", TUs: []int{-1}},
		{Kind: "spec", TUs: []int{1 << 20}},
		{Kind: "table1", TUs: []int{4}},                  // engine axis on a non-engine kind
		{Kind: "table1", Policies: []string{"str"}},      // same
		{Kind: "spec", TableSizes: []int{4}},             // sizes on a non-size kind
		{Kind: "fig4", Modes: []string{"lru"}},           // modes on fig4
		{Kind: "replacement", Modes: []string{"random"}}, // unknown mode
		{Kind: "fig4", TableSizes: []int{0}},             // size out of range
		{Kind: "spec", BudgetDivs: []int{0}},             // div out of range
		{Kind: "spec", CLS: []int{-2}},                   // cls out of range
		{Kind: "spec", LETCaps: []int{-1}},               // letcap out of range
		{Kind: "spec", NestRules: []string{"sideways"}},  // unknown rule
		{Kind: "spec", Render: Layout{Format: "yaml"}},   // unknown format
		{Kind: "spec", Render: Layout{Metrics: []string{"bogus"}}},
		{Kind: "spec", Exclusion: []ExclusionSpec{{Threshold: 2}}},
		{Kind: "spec", Exclusion: []ExclusionSpec{{Enabled: false, Threshold: 0.5}}},
		{Kind: "spec", Seeds: make([]uint64, maxAxisLen+1)},
		{Kind: "spec", Benchmarks: []string{"a"}, Seeds: make([]uint64, 2049),
			TUs: make([]int, 2049)}, // > maxCells
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestCompileOrderAndKeys pins the canonical expansion order (bench
// outermost, then budget, seed, cls, policy, tus innermost for engine
// kinds) and the key-compat contract: a grid spec cell carries exactly
// the key the pre-grid driver used.
func TestCompileOrderAndKeys(t *testing.T) {
	cfg := Config{Budget: 1000}
	cells, rs, err := Compile(cfg, Spec{
		Benchmarks: []string{"swim", "li"},
		Policies:   []string{"str", "str3"},
		TUs:        []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 {
		t.Fatalf("%d cells, want 8", len(cells))
	}
	if rs.Policies[0] != "STR" || rs.Policies[1] != "STR(3)" {
		t.Fatalf("policies not canonicalised: %v", rs.Policies)
	}
	want := []Coord{
		{Bench: "swim", Policy: "STR", TUs: 2}, {Bench: "swim", Policy: "STR", TUs: 4},
		{Bench: "swim", Policy: "STR(3)", TUs: 2}, {Bench: "swim", Policy: "STR(3)", TUs: 4},
		{Bench: "li", Policy: "STR", TUs: 2}, {Bench: "li", Policy: "STR", TUs: 4},
		{Bench: "li", Policy: "STR(3)", TUs: 2}, {Bench: "li", Policy: "STR(3)", TUs: 4},
	}
	for i, c := range cells {
		if c.Coord.Bench != want[i].Bench || c.Coord.Policy != want[i].Policy || c.Coord.TUs != want[i].TUs {
			t.Fatalf("cell %d coord %+v, want %+v", i, c.Coord, want[i])
		}
		if c.Coord.Budget != 1000 || c.Coord.Seed != 1 {
			t.Fatalf("cell %d budget/seed not resolved: %+v", i, c.Coord)
		}
	}
	// Key compat: the first cell's key is exactly what the pre-grid
	// specCell built for spec.Config{TUs: 2, Policy: spec.STR()}.
	wantKey := cfg.cellKey("spec", "swim", 2, "STR", 0, 0, false, 0.0, 0, 0)
	if cells[0].Key != wantKey {
		t.Fatalf("cell key drifted:\n got  %q\n want %q", cells[0].Key, wantKey)
	}
	// Budget divisors resolve onto the cell budget (and its key).
	cells5, _, err := Compile(cfg, Spec{
		Benchmarks: []string{"swim"}, BudgetDivs: []int{1, 4}, TUs: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells5[0].Coord.Budget != 1000 || cells5[1].Coord.Budget != 250 {
		t.Fatalf("budget divisor not applied: %+v %+v", cells5[0].Coord, cells5[1].Coord)
	}
	if !strings.Contains(cells5[1].Key, "|b250|") {
		t.Fatalf("reduced budget missing from key %q", cells5[1].Key)
	}
}

// TestRunSmallGrid executes a tiny spec end to end and exercises the
// generic renderers.
func TestRunSmallGrid(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 50_000, Parallel: 2}
	res, err := Run(ctx, cfg, Spec{
		Benchmarks: []string{"swim", "compress"},
		Seeds:      []uint64{1, 2},
		TUs:        []int{2},
		Policies:   []string{"str"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("%d values, want 4", len(res.Values))
	}
	table, err := RenderLayout(res)
	if err != nil || !strings.Contains(table, "seed") || !strings.Contains(table, "tpc") {
		t.Fatalf("table render: %v\n%s", err, table)
	}
	res.Spec.Render.Format = "csv"
	csv, err := RenderLayout(res)
	if err != nil || !strings.HasPrefix(csv, "bench,seed,tpc") {
		t.Fatalf("csv render: %v\n%s", err, csv)
	}
	res.Spec.Render.Format = "json"
	js, err := RenderLayout(res)
	if err != nil || !strings.Contains(js, "\"cells\"") {
		t.Fatalf("json render: %v\n%s", err, js)
	}
	// ResultFrom round trip: the same values rebuild an identical render.
	res.Spec.Render.Format = ""
	re, err := ResultFrom(cfg, Spec{
		Benchmarks: []string{"swim", "compress"},
		Seeds:      []uint64{1, 2},
		TUs:        []int{2},
		Policies:   []string{"str"},
	}, res.Values)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RenderLayout(re)
	if err != nil || got != table {
		t.Fatalf("ResultFrom render differs: %v\n%s\nvs\n%s", err, got, table)
	}
	// A skewed value stream fails loudly.
	if _, err := ResultFrom(cfg, Spec{Benchmarks: []string{"swim"}}, []any{"nope"}); err == nil {
		t.Fatal("foreign value accepted")
	}
	if _, err := ResultFrom(cfg, Spec{Benchmarks: []string{"swim"}}, nil); err == nil {
		t.Fatal("short value stream accepted")
	}
}

// TestRunSeedAxisDecorrelates: distinct seeds are distinct cells with
// distinct results (the whole point of the seed axis).
func TestRunSeedAxisDecorrelates(t *testing.T) {
	res, err := Run(context.Background(), Config{Budget: 50_000, Parallel: 2}, Spec{
		Benchmarks: []string{"gcc"},
		Seeds:      []uint64{1, 2},
		Policies:   []string{"str3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Key == res.Cells[1].Key {
		t.Fatal("seeds share a cell key")
	}
	if res.Values[0] == res.Values[1] {
		t.Fatal("distinct seeds produced identical metrics (suspicious)")
	}
}

// TestReferencePathByteIdentical pins the equivalence the Reference
// knob exists to expose: the predecoded+fused interpreter and the
// reference two-level interpreter must produce byte-identical rendered
// results for a grid spec, fused-run or not, at any parallelism.
func TestReferencePathByteIdentical(t *testing.T) {
	ctx := context.Background()
	spec := Spec{
		Benchmarks: []string{"swim", "gcc"},
		Seeds:      []uint64{1, 2},
		TUs:        []int{2},
		Policies:   []string{"str"},
	}
	render := func(cfg Config) string {
		t.Helper()
		res, err := Run(ctx, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RenderLayout(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := render(Config{Budget: 50_000})
	for i, cfg := range []Config{
		{Budget: 50_000, Reference: true},
		{Budget: 50_000, Reference: true, NoFuse: true},
		{Budget: 50_000, Reference: true, Parallel: 8},
	} {
		if got := render(cfg); got != base {
			t.Fatalf("variant %d: reference render differs from fused:\n%s\nvs\n%s", i, got, base)
		}
	}
}

// TestCompileRejectsZeroBudget: a divisor larger than the budget must
// error, not silently resurrect DefaultBudget via budget()'s zero
// fallback.
func TestCompileRejectsZeroBudget(t *testing.T) {
	_, _, err := Compile(Config{}, Spec{
		Benchmarks: []string{"swim"}, Budgets: []uint64{100}, BudgetDivs: []int{1000},
	})
	if err == nil || !strings.Contains(err.Error(), "truncates to zero") {
		t.Fatalf("zero-budget cell accepted: %v", err)
	}
	// A divisor that leaves at least one instruction is fine.
	if _, _, err := Compile(Config{}, Spec{
		Benchmarks: []string{"swim"}, Budgets: []uint64{100}, BudgetDivs: []int{100},
	}); err != nil {
		t.Fatalf("1-instruction budget rejected: %v", err)
	}
}
