package grid

import (
	"context"
	"fmt"

	"dynloop/internal/branchpred"
	"dynloop/internal/builder"
	"dynloop/internal/datapred"
	"dynloop/internal/harness"
	"dynloop/internal/loopstats"
	"dynloop/internal/looptab"
	"dynloop/internal/spec"
	"dynloop/internal/taskpred"
	"dynloop/internal/trace"
	"dynloop/internal/workload"
)

// The cell result types. Each is one codec-registered value (see
// codecs.go): the runner cache holds them, the on-disk store persists
// their frames, and the wire format streams the same frames to remote
// clients. The experiment drivers in internal/expt alias the exported
// ones for their rows.

// Table1Row is one benchmark's loop statistics next to the paper's.
type Table1Row struct {
	Bench string
	S     loopstats.Summary
	Paper workload.PaperRow
}

// Fig4Cell is one benchmark's LET/LIT hit ratios at one table size.
type Fig4Cell struct {
	LET, LIT float64
}

// Fig8Row is one benchmark's data-speculation statistics.
type Fig8Row struct {
	Bench string
	S     datapred.Summary
}

// CLSCell is one benchmark's result at one CLS capacity.
type CLSCell struct {
	Evictions uint64
	AtCap     bool
	TPC       float64
}

// ReplCell is one benchmark's tracker result under one replacement
// policy at one table size.
type ReplCell struct {
	LET, LIT  float64
	Inhibited uint64
}

// OneShotRow compares Table-1 statistics with and without counting
// single-iteration executions.
type OneShotRow struct {
	Bench                  string
	WithIPE, WithoutIPE    float64 // iterations per execution
	WithExecs, WithoutExec uint64
}

// BaselineRow is one benchmark's conventional branch-prediction
// accuracies (BTFN, bimodal, gshare).
type BaselineRow struct {
	Bench   string
	Results []branchpred.Result
}

// TaskPredRow compares multiscalar-style next-task prediction against
// the paper's iteration-count speculation on one benchmark.
type TaskPredRow struct {
	Bench       string
	NextTaskPct float64
	Scored      uint64
	IterHitPct  float64
}

// OracleRow compares the STR policy against speculation with perfect
// iteration-count knowledge.
type OracleRow struct {
	Bench             string
	STRTPC, OracleTPC float64
	STRHit, OracleHit float64
}

// Coord is one cell's position on the grid's axes. Axes that do not
// apply to the cell's kind hold their zero values.
type Coord struct {
	Bench     string
	Budget    uint64 // resolved (post-default, post-divisor)
	Seed      uint64 // resolved
	CLS       int
	TableSize int
	Mode      string
	Policy    string
	TUs       int
	LETCap    int
	NestRule  string
	Exclusion ExclusionSpec
}

// Cell is one compiled experiment cell: its coordinates, the versioned
// cache key that addresses it in the runner, the store and the serving
// layer, and (server side) the pass or composite run that computes it.
type Cell struct {
	Coord Coord
	// Key is the cell's runner/store cache key (see Config.cellKey).
	Key string
	// Label is what progress events report.
	Label string

	bench workload.Benchmark
	cfg   Config // per-cell config: budget/seed/CLS resolved onto it
	// mk builds the cell's analysis pass plus the finish hook that
	// extracts its result once the traversal is finalised (fusable
	// kinds). Exactly one of mk and run is set.
	mk func() (trace.Pass, func() (any, error))
	// run computes a composite cell that owns its own traversals (the
	// oracle kind).
	run func(ctx context.Context) (any, error)
}

// Compile validates and resolves the spec under cfg and expands it to
// cells in canonical axis order — benchmarks outermost, then budgets ×
// budget_divs, seeds, cls, table_sizes, modes, policies, tus, let_caps,
// nest_rules, exclusion innermost. The expansion is deterministic: the
// same spec and config always yield the same cells in the same order,
// which is what lets a client rebuild a Result from a remote value
// stream, and what keeps every render byte-identical at any worker
// count.
func Compile(cfg Config, s Spec) ([]Cell, Spec, error) {
	rs, err := s.resolve(cfg)
	if err != nil {
		return nil, Spec{}, err
	}
	n := rs.size()
	if n > maxCells {
		return nil, Spec{}, fmt.Errorf("grid: spec expands to %d cells (max %d)", n, maxCells)
	}
	cells := make([]Cell, 0, n)
	for _, name := range rs.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, Spec{}, err
		}
		for _, budget := range rs.Budgets {
			for _, div := range rs.BudgetDivs {
				for _, seed := range rs.Seeds {
					for _, cls := range rs.CLS {
						cellCfg := cfg
						if budget != 0 {
							cellCfg.Budget = budget
						}
						resolved := cellCfg.budget()
						cellCfg.Budget = resolved / uint64(div)
						if cellCfg.Budget == 0 {
							// A zero budget would silently resurrect
							// DefaultBudget in every later budget() call —
							// a full-budget traversal where the user asked
							// for a sliver.
							return nil, Spec{}, fmt.Errorf("grid: budget %d / divisor %d truncates to zero instructions",
								resolved, div)
						}
						if seed != 0 {
							cellCfg.Seed = seed
						}
						if cls != 0 {
							cellCfg.CLSCapacity = cls
						}
						coord := Coord{
							Bench:  bm.Name,
							Budget: cellCfg.budget(),
							Seed:   cellCfg.seed(),
							CLS:    cellCfg.CLSCapacity,
						}
						cells = appendKindCells(cells, rs, bm, cellCfg, coord)
					}
				}
			}
		}
	}
	return cells, rs, nil
}

// appendKindCells expands the kind-specific inner axes for one base
// coordinate. Key parts and labels reproduce the pre-grid drivers
// byte for byte, so grid cells deduplicate against (and serve from)
// everything those drivers ever cached or persisted.
func appendKindCells(cells []Cell, rs Spec, bm workload.Benchmark, cfg Config, coord Coord) []Cell {
	switch rs.Kind {
	case "spec":
		for _, polName := range rs.Policies {
			pol, _ := ParsePolicy(polName)
			for _, tus := range rs.TUs {
				for _, letCap := range rs.LETCaps {
					for _, nrName := range rs.NestRules {
						nr, _ := parseNestRule(nrName)
						for _, ex := range rs.Exclusion {
							ec := spec.Config{TUs: tus, Policy: pol, LETCapacity: letCap, NestRule: nr}
							if ex.Enabled {
								ec.Exclude = true
								ec.ExcludeThreshold = ex.Threshold
								ec.ExcludeMinResolved = ex.MinResolved
								ec.ExcludeCapacity = ex.Capacity
							}
							c := coord
							c.Policy, c.TUs, c.LETCap, c.NestRule, c.Exclusion = pol.String(), tus, letCap, nrName, ex
							cells = append(cells, specEngineCell(cfg, bm, c, ec))
						}
					}
				}
			}
		}
	case "table1":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("table1", bm.Name),
			Label: "table1 " + bm.Name,
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				c := loopstats.NewCollector()
				return harness.NewObserverPass(cfg.CLSCapacity, c),
					func() (any, error) {
						return Table1Row{Bench: bm.Name, S: c.Summary(), Paper: bm.Paper}, nil
					}
			},
		})
	case "fig4":
		for _, size := range rs.TableSizes {
			c := coord
			c.TableSize = size
			cells = append(cells, Cell{
				Coord: c,
				Key:   cfg.cellKey("fig4", size, bm.Name),
				Label: fmt.Sprintf("fig4 %s/%d entries", bm.Name, size),
				bench: bm, cfg: cfg,
				mk: func() (trace.Pass, func() (any, error)) {
					tr := looptab.NewTracker(size, size)
					return harness.NewObserverPass(cfg.CLSCapacity, tr),
						func() (any, error) {
							let, _ := tr.LET.HitRatio()
							lit, _ := tr.LIT.HitRatio()
							return Fig4Cell{LET: let, LIT: lit}, nil
						}
				},
			})
		}
	case "fig8":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("fig8", bm.Name),
			Label: "fig8 " + bm.Name,
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				c := datapred.NewCollector(datapred.Config{})
				return harness.NewObserverPass(cfg.CLSCapacity, c),
					func() (any, error) {
						return Fig8Row{Bench: bm.Name, S: c.Summary()}, nil
					}
			},
		})
	case "clssize":
		capEntries := cfg.CLSCapacity
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("clssize", bm.Name),
			Label: fmt.Sprintf("cls %s/%d entries", bm.Name, capEntries),
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				ls := loopstats.NewCollector()
				e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
				det := harness.NewObserverPass(capEntries, ls, e)
				return det, func() (any, error) {
					ds := det.Stats()
					return CLSCell{
						Evictions: ds.Evictions,
						AtCap:     ds.MaxDepth >= capEntries,
						TPC:       e.Metrics().TPC(),
					}, nil
				}
			},
		})
	case "replacement":
		for _, size := range rs.TableSizes {
			for _, mode := range rs.Modes {
				nestingAware := mode == "nest"
				c := coord
				c.TableSize, c.Mode = size, mode
				cells = append(cells, Cell{
					Coord: c,
					Key:   cfg.cellKey("replacement", bm.Name, size, mode),
					Label: fmt.Sprintf("replacement %s/%d/%s", bm.Name, size, mode),
					bench: bm, cfg: cfg,
					mk: func() (trace.Pass, func() (any, error)) {
						tr := looptab.NewTracker(size, size)
						if nestingAware {
							tr.EnableNestingAware()
						}
						return harness.NewObserverPass(cfg.CLSCapacity, tr),
							func() (any, error) {
								let, _ := tr.LET.HitRatio()
								lit, _ := tr.LIT.HitRatio()
								return ReplCell{LET: let, LIT: lit, Inhibited: tr.LET.Inhibited() + tr.LIT.Inhibited()}, nil
							}
					},
				})
			}
		}
	case "oneshots":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("oneshots", bm.Name),
			Label: "oneshots " + bm.Name,
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				with := loopstats.NewCollector()
				without := loopstats.NewCollector()
				without.CountOneShots = false
				return harness.NewObserverPass(cfg.CLSCapacity, with, without),
					func() (any, error) {
						w, wo := with.Summary(), without.Summary()
						return OneShotRow{
							Bench: bm.Name, WithIPE: w.ItersPerExec, WithoutIPE: wo.ItersPerExec,
							WithExecs: w.Execs, WithoutExec: wo.Execs,
						}, nil
					}
			},
		})
	case "branchpred":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("branchpred", bm.Name),
			Label: "branchpred " + bm.Name,
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				suite := branchpred.DefaultSuite()
				return suite, func() (any, error) {
					return BaselineRow{Bench: bm.Name, Results: suite.Results()}, nil
				}
			},
		})
	case "taskpred":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("taskpred", bm.Name),
			Label: "taskpred " + bm.Name,
			bench: bm, cfg: cfg,
			mk: func() (trace.Pass, func() (any, error)) {
				tp := taskpred.New(taskpred.Config{})
				e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
				return harness.NewObserverPass(cfg.CLSCapacity, tp, e),
					func() (any, error) {
						acc, n := tp.Accuracy()
						return TaskPredRow{
							Bench:       bm.Name,
							NextTaskPct: acc,
							Scored:      n,
							IterHitPct:  e.Metrics().HitRatio(),
						}, nil
					}
			},
		})
	case "oracle":
		cells = append(cells, Cell{
			Coord: coord,
			Key:   cfg.cellKey("oracle", bm.Name),
			Label: "oracle " + bm.Name,
			bench: bm, cfg: cfg,
			run: oracleRun(cfg, bm),
		})
	}
	return cells
}

// specEngineCell is the shared benchmark × engine-configuration cell
// that Table 2, Figures 5–7, the sweep grid and several ablations are
// all built from; the cache key covers every spec.Config field so
// distinct configurations never collide, while identical cells
// submitted by different grids on a shared Runner are computed once.
func specEngineCell(cfg Config, bm workload.Benchmark, coord Coord, ec spec.Config) Cell {
	return Cell{
		Coord: coord,
		Key: cfg.cellKey("spec", bm.Name, ec.TUs, ec.Policy, ec.LETCapacity, ec.NestRule,
			ec.Exclude, ec.ExcludeThreshold, ec.ExcludeMinResolved, ec.ExcludeCapacity),
		Label: fmt.Sprintf("%s %s/%d TUs", bm.Name, ec.Policy, ec.TUs),
		bench: bm, cfg: cfg,
		mk: func() (trace.Pass, func() (any, error)) {
			e := spec.NewEngine(ec)
			return harness.NewObserverPass(cfg.CLSCapacity, e),
				func() (any, error) { return e.Metrics(), nil }
		},
	}
}

// oracleRun bounds the cost of iteration-count misprediction: a first
// traversal records every execution's true count, a second speculates
// with it. The oracle run depends on the recorder pass, so the cell is
// a composite job owning its own traversals, not a fusable pass.
func oracleRun(cfg Config, bm workload.Benchmark) func(ctx context.Context) (any, error) {
	mc := harness.MultiConfig{Budget: cfg.budget(), BatchSize: cfg.BatchSize,
		Shards: cfg.Shards, Reference: cfg.Reference, FullPlanes: cfg.FullPlanes}
	return func(ctx context.Context) (any, error) {
		// Both traversals route through the replay tier when configured:
		// the first records the stream (or replays an existing
		// recording), the second is then always a decode-only replay.
		// The unit is built lazily, and at most once, so a covered
		// archive serves the whole oracle cell without interpretation.
		var u *builder.Unit
		build := func() (*builder.Unit, error) {
			if u != nil {
				return u, nil
			}
			var err error
			if u, err = bm.Build(cfg.seed()); err != nil {
				return nil, fmt.Errorf("grid: build %s: %w", bm.Name, err)
			}
			return u, nil
		}
		multi := func(passes ...trace.Pass) error {
			if cfg.Traces != nil {
				_, _, err := cfg.Traces.MultiRun(ctx, bm.Name, cfg.seed(), build, mc, passes...)
				return err
			}
			uu, err := build()
			if err != nil {
				return err
			}
			_, err = harness.MultiRun(uu, mc, passes...)
			return err
		}
		rec := spec.NewOracleRecorder()
		if err := multi(harness.NewObserverPass(cfg.CLSCapacity, rec)); err != nil {
			return OracleRow{}, err
		}
		str := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
		oracle := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR(), OracleIters: rec.Counts()})
		if err := multi(
			harness.NewObserverPass(cfg.CLSCapacity, str),
			harness.NewObserverPass(cfg.CLSCapacity, oracle)); err != nil {
			return OracleRow{}, err
		}
		mS, mO := str.Metrics(), oracle.Metrics()
		return OracleRow{
			Bench:  bm.Name,
			STRTPC: mS.TPC(), OracleTPC: mO.TPC(),
			STRHit: mS.HitRatio(), OracleHit: mO.HitRatio(),
		}, nil
	}
}
