package grid

import (
	"fmt"
	"strconv"
	"strings"

	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// Spec declares an experiment grid: which per-cell analysis runs (Kind)
// and the axes it is swept over. Zero-valued axes resolve to the kind's
// canonical defaults (and, for budget/seed/CLS, to the Config of the
// run), so the JSON form stays as small as the question being asked:
//
//	{"kind": "spec", "benchmarks": ["swim"], "seeds": [1,2,3],
//	 "tus": [3,5,6], "policies": ["str"]}
//
// is a seed sweep at machine sizes the paper never ran. Specs are data:
// they validate (Validate), expand deterministically (Compile), execute
// (Run) and render (RenderResult) the same way whether they come from
// the built-in registry, a CLI -spec file or a POST /v1/grid body.
type Spec struct {
	// Name identifies a registered grid ("table1", "fig7",
	// "ablation/cls"); empty for ad-hoc specs.
	Name string `json:"name,omitempty"`
	// Title heads the rendered output (a default is derived when empty).
	Title string `json:"title,omitempty"`
	// Kind selects the per-cell analysis; see Kinds. Empty means "spec"
	// (the speculation engine, the paper's workhorse cell).
	Kind string `json:"kind,omitempty"`

	// Benchmarks are the workloads to grid over (nil = the Config's
	// subset, itself defaulting to all 18).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Budgets are absolute per-benchmark instruction budgets; the value
	// 0 (and a nil axis) means the Config's budget.
	Budgets []uint64 `json:"budgets,omitempty"`
	// BudgetDivs divides each budget (Figure 5 compares the full budget
	// against a quarter of it: [1, 4]). Nil means [1].
	BudgetDivs []int `json:"budget_divs,omitempty"`
	// Seeds are workload input seeds; 0 (and nil) means the Config's.
	Seeds []uint64 `json:"seeds,omitempty"`
	// CLS are Current-Loop-Stack capacities; 0 (and nil) means the
	// Config's (which defaults to the paper's 16), negative means
	// unbounded.
	CLS []int `json:"cls,omitempty"`
	// TableSizes are LET/LIT table capacities (kinds fig4 and
	// replacement).
	TableSizes []int `json:"table_sizes,omitempty"`
	// Modes are replacement policies for kind replacement: "lru",
	// "nest".
	Modes []string `json:"modes,omitempty"`
	// Policies are speculation policies for kind spec: idle, str, strN
	// (the canonical forms IDLE, STR, STR(N) are accepted too).
	Policies []string `json:"policies,omitempty"`
	// TUs are machine sizes for kind spec; 0 is the infinite machine of
	// Figure 5. Nil means [4], the paper's Table 2 machine.
	TUs []int `json:"tus,omitempty"`
	// LETCaps bound the engine's iteration-count LET for kind spec
	// (0 = unbounded). Nil means [0].
	LETCaps []int `json:"let_caps,omitempty"`
	// NestRules select the STR(i) interpretation for kind spec:
	// "starvation" (default), "static".
	NestRules []string `json:"nest_rules,omitempty"`
	// Exclusion sweeps the §2.3.2 exclusion table for kind spec. Nil
	// means [off].
	Exclusion []ExclusionSpec `json:"exclusion,omitempty"`

	// Render selects the output layout for the generic renderer.
	// Registered grids ignore it (their section renderer wins) unless a
	// format is set explicitly.
	Render Layout `json:"render,omitempty"`
}

// ExclusionSpec is one point of the exclusion-table axis.
type ExclusionSpec struct {
	// Enabled turns the §2.3.2 exclusion table on for this point.
	Enabled bool `json:"enabled,omitempty"`
	// Threshold is the accuracy below which a loop is excluded
	// (0 = the engine default 0.5).
	Threshold float64 `json:"threshold,omitempty"`
	// MinResolved is the resolved-thread count required before a loop
	// can be judged (0 = the engine default 8).
	MinResolved int `json:"min_resolved,omitempty"`
	// Capacity bounds the exclusion table (0 = the engine default 16).
	Capacity int `json:"capacity,omitempty"`
}

// Layout selects how the generic renderer formats a grid result.
type Layout struct {
	// Format is "table" (default), "csv" or "json".
	Format string `json:"format,omitempty"`
	// Metrics selects and orders the value columns; nil picks the
	// kind's default set. See KindMetrics.
	Metrics []string `json:"metrics,omitempty"`
}

// Kinds names every per-cell analysis a Spec can grid over, in a
// stable order. The names double as cell-key tags and map one-to-one
// onto the registered codec result types, so a grid cell persists and
// serves under exactly the key and frame its pre-grid driver used.
func Kinds() []string {
	return []string{
		"spec", "table1", "fig4", "fig8", "clssize",
		"replacement", "oneshots", "branchpred", "taskpred", "oracle",
	}
}

// Axis-size and value bounds enforced by Validate. They exist so a
// hostile or fat-fingered spec fails fast with a clear error instead of
// compiling into an absurd grid; the serving layer additionally applies
// its own MaxCells guard to the resolved size.
const (
	maxAxisLen   = 4096
	maxCells     = 1 << 22
	maxBudget    = 1 << 40
	maxDiv       = 1 << 20
	maxTUs       = 1 << 16
	maxCLS       = 1 << 16
	maxTableSize = 1 << 20
	maxLETCap    = 1 << 20
	maxNameLen   = 128
	maxTitleLen  = 256
)

// kindAxes says which optional axes apply to each kind; the base axes
// (benchmarks, budgets, budget_divs, seeds, cls) apply to all.
var kindAxes = map[string]struct {
	sizes, modes, engine bool // table_sizes; modes; policies/tus/let_caps/nest_rules/exclusion
}{
	"spec":        {engine: true},
	"table1":      {},
	"fig4":        {sizes: true},
	"fig8":        {},
	"clssize":     {},
	"replacement": {sizes: true, modes: true},
	"oneshots":    {},
	"branchpred":  {},
	"taskpred":    {},
	"oracle":      {},
}

// kind resolves the spec's kind name.
func (s *Spec) kind() string {
	if s.Kind == "" {
		return "spec"
	}
	return strings.ToLower(strings.TrimSpace(s.Kind))
}

// ParsePolicy turns a policy name into a spec.Policy. It accepts the
// CLI forms (idle, str, str3) and the paper's canonical forms (IDLE,
// STR, STR(3)), case-insensitively.
func ParsePolicy(name string) (spec.Policy, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "idle":
		return spec.Idle(), nil
	case "str":
		return spec.STR(), nil
	}
	if rest, ok := strings.CutPrefix(n, "str"); ok {
		rest = strings.TrimSuffix(strings.TrimPrefix(rest, "("), ")")
		if i, err := strconv.Atoi(rest); err == nil && i > 0 && i <= maxTUs {
			return spec.STRn(i), nil
		}
	}
	return spec.Policy{}, fmt.Errorf("unknown policy %q (idle|str|strN)", name)
}

// ParsePolicies parses a list of policy names.
func ParsePolicies(names []string) ([]spec.Policy, error) {
	out := make([]spec.Policy, 0, len(names))
	for _, name := range names {
		pol, err := ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		out = append(out, pol)
	}
	return out, nil
}

func parseNestRule(name string) (spec.NestRule, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "starvation":
		return spec.NestRuleStarvation, nil
	case "static":
		return spec.NestRuleStatic, nil
	default:
		return 0, fmt.Errorf("unknown nest rule %q (starvation|static)", name)
	}
}

func axisLen(what string, n int) error {
	if n > maxAxisLen {
		return fmt.Errorf("grid: %s axis has %d entries (max %d)", what, n, maxAxisLen)
	}
	return nil
}

// Validate checks the spec's kind, axis applicability and every axis
// value against the documented bounds. It never panics on any input;
// the FuzzSpecValidate fuzzer pins that.
func (s *Spec) Validate() error {
	if len(s.Name) > maxNameLen {
		return fmt.Errorf("grid: name longer than %d bytes", maxNameLen)
	}
	if len(s.Title) > maxTitleLen {
		return fmt.Errorf("grid: title longer than %d bytes", maxTitleLen)
	}
	kind := s.kind()
	axes, ok := kindAxes[kind]
	if !ok {
		return fmt.Errorf("grid: unknown kind %q (one of %s)", s.Kind, strings.Join(Kinds(), "|"))
	}
	for _, c := range []struct {
		what string
		n    int
	}{
		{"benchmarks", len(s.Benchmarks)}, {"budgets", len(s.Budgets)},
		{"budget_divs", len(s.BudgetDivs)}, {"seeds", len(s.Seeds)},
		{"cls", len(s.CLS)}, {"table_sizes", len(s.TableSizes)},
		{"modes", len(s.Modes)}, {"policies", len(s.Policies)},
		{"tus", len(s.TUs)}, {"let_caps", len(s.LETCaps)},
		{"nest_rules", len(s.NestRules)}, {"exclusion", len(s.Exclusion)},
	} {
		if err := axisLen(c.what, c.n); err != nil {
			return err
		}
	}
	if !axes.sizes && len(s.TableSizes) > 0 {
		return fmt.Errorf("grid: kind %q takes no table_sizes axis", kind)
	}
	if !axes.modes && len(s.Modes) > 0 {
		return fmt.Errorf("grid: kind %q takes no modes axis", kind)
	}
	if !axes.engine {
		for _, c := range []struct {
			what string
			n    int
		}{
			{"policies", len(s.Policies)}, {"tus", len(s.TUs)},
			{"let_caps", len(s.LETCaps)}, {"nest_rules", len(s.NestRules)},
			{"exclusion", len(s.Exclusion)},
		} {
			if c.n > 0 {
				return fmt.Errorf("grid: kind %q takes no %s axis", kind, c.what)
			}
		}
	}
	for _, b := range s.Budgets {
		if b > maxBudget {
			return fmt.Errorf("grid: budget %d out of range (max %d)", b, uint64(maxBudget))
		}
	}
	for _, d := range s.BudgetDivs {
		if d < 1 || d > maxDiv {
			return fmt.Errorf("grid: budget_div %d out of range [1,%d]", d, maxDiv)
		}
	}
	for _, c := range s.CLS {
		if c < -1 || c > maxCLS {
			return fmt.Errorf("grid: cls capacity %d out of range [-1,%d]", c, maxCLS)
		}
	}
	for _, sz := range s.TableSizes {
		if sz < 1 || sz > maxTableSize {
			return fmt.Errorf("grid: table_size %d out of range [1,%d]", sz, maxTableSize)
		}
	}
	for _, m := range s.Modes {
		if m != "lru" && m != "nest" {
			return fmt.Errorf("grid: unknown replacement mode %q (lru|nest)", m)
		}
	}
	for _, p := range s.Policies {
		if _, err := ParsePolicy(p); err != nil {
			return fmt.Errorf("grid: %v", err)
		}
	}
	for _, k := range s.TUs {
		if k < 0 || k > maxTUs {
			return fmt.Errorf("grid: TU count %d out of range [0,%d]", k, maxTUs)
		}
	}
	for _, c := range s.LETCaps {
		if c < 0 || c > maxLETCap {
			return fmt.Errorf("grid: let_cap %d out of range [0,%d]", c, maxLETCap)
		}
	}
	for _, nr := range s.NestRules {
		if _, err := parseNestRule(nr); err != nil {
			return fmt.Errorf("grid: %v", err)
		}
	}
	for _, ex := range s.Exclusion {
		if ex.Threshold < 0 || ex.Threshold > 1 {
			return fmt.Errorf("grid: exclusion threshold %v out of range [0,1]", ex.Threshold)
		}
		if ex.MinResolved < 0 || ex.MinResolved > maxLETCap {
			return fmt.Errorf("grid: exclusion min_resolved %d out of range [0,%d]", ex.MinResolved, maxLETCap)
		}
		if ex.Capacity < 0 || ex.Capacity > maxLETCap {
			return fmt.Errorf("grid: exclusion capacity %d out of range [0,%d]", ex.Capacity, maxLETCap)
		}
		if !ex.Enabled && (ex.Threshold != 0 || ex.MinResolved != 0 || ex.Capacity != 0) {
			return fmt.Errorf("grid: disabled exclusion point carries parameters %+v", ex)
		}
	}
	switch s.Render.Format {
	case "", "table", "csv", "json":
	default:
		return fmt.Errorf("grid: unknown render format %q (table|csv|json)", s.Render.Format)
	}
	if len(s.Render.Metrics) > maxAxisLen {
		return fmt.Errorf("grid: render metrics list too long")
	}
	known := kindMetricNames(kind)
	for _, m := range s.Render.Metrics {
		if !known[m] {
			return fmt.Errorf("grid: kind %q has no metric %q", kind, m)
		}
	}
	if n := s.size(); n > maxCells {
		return fmt.Errorf("grid: spec expands to %d cells (max %d)", n, maxCells)
	}
	return nil
}

// axisOr returns the axis or its default.
func axisOr[T any](axis, def []T) []T {
	if len(axis) > 0 {
		return axis
	}
	return def
}

// resolve fills every defaulted axis in, normalises policy and
// nest-rule names to their canonical forms, and resolves the benchmark
// axis against cfg. The returned spec expands to exactly the cells
// Compile builds, in the same order — clients rebuild a Result from a
// remote value stream with it.
func (s Spec) resolve(cfg Config) (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	kind := s.kind()
	s.Kind = kind
	if len(s.Benchmarks) == 0 {
		bms, err := cfg.benchmarks()
		if err != nil {
			return Spec{}, err
		}
		names := make([]string, len(bms))
		for i, bm := range bms {
			names[i] = bm.Name
		}
		s.Benchmarks = names
	}
	s.Budgets = axisOr(s.Budgets, []uint64{0})
	s.BudgetDivs = axisOr(s.BudgetDivs, []int{1})
	s.Seeds = axisOr(s.Seeds, []uint64{0})
	s.CLS = axisOr(s.CLS, defaultCLS(kind))
	axes := kindAxes[kind]
	if axes.sizes {
		s.TableSizes = axisOr(s.TableSizes, defaultSizes(kind))
	}
	if axes.modes {
		s.Modes = axisOr(s.Modes, []string{"lru", "nest"})
	}
	if axes.engine {
		// Clone before normalising: callers (the registry, drivers
		// overriding a canonical spec) share the axis backing arrays.
		s.Policies = append([]string(nil), axisOr(s.Policies, []string{"STR(3)"})...)
		for i, p := range s.Policies {
			pol, err := ParsePolicy(p)
			if err != nil {
				return Spec{}, err
			}
			s.Policies[i] = pol.String()
		}
		s.TUs = axisOr(s.TUs, []int{4})
		s.LETCaps = axisOr(s.LETCaps, []int{0})
		s.NestRules = append([]string(nil), axisOr(s.NestRules, []string{"starvation"})...)
		for i, nr := range s.NestRules {
			if _, err := parseNestRule(nr); err != nil {
				return Spec{}, err
			}
			if strings.TrimSpace(nr) == "" {
				s.NestRules[i] = "starvation"
			} else {
				s.NestRules[i] = strings.ToLower(strings.TrimSpace(nr))
			}
		}
		s.Exclusion = axisOr(s.Exclusion, []ExclusionSpec{{}})
	}
	return s, nil
}

func defaultCLS(kind string) []int {
	if kind == "clssize" {
		// The CLS-capacity ablation's point is the capacity sweep.
		return []int{2, 4, 8, 16}
	}
	return []int{0}
}

func defaultSizes(kind string) []int {
	if kind == "replacement" {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16} // fig4
}

// size multiplies the axis lengths with every default applied,
// saturating at maxCells+1 so callers can range-check without overflow.
func (s Spec) size() uint64 {
	kind := s.kind()
	axes := kindAxes[kind]
	n := uint64(1)
	mul := func(axis, def int) {
		if axis == 0 {
			axis = def
		}
		if axis == 0 {
			axis = 1
		}
		n *= uint64(axis)
		if n > maxCells {
			n = maxCells + 1
		}
	}
	benchDef := len(workload.Names())
	mul(len(s.Benchmarks), benchDef)
	mul(len(s.Budgets), 1)
	mul(len(s.BudgetDivs), 1)
	mul(len(s.Seeds), 1)
	mul(len(s.CLS), len(defaultCLS(kind)))
	if axes.sizes {
		mul(len(s.TableSizes), len(defaultSizes(kind)))
	}
	if axes.modes {
		mul(len(s.Modes), 2)
	}
	if axes.engine {
		mul(len(s.Policies), 1)
		mul(len(s.TUs), 1)
		mul(len(s.LETCaps), 1)
		mul(len(s.NestRules), 1)
		mul(len(s.Exclusion), 1)
	}
	return n
}

// Size reports how many cells the spec expands to under cfg, for
// progress displays and the serving layer's MaxCells guard.
func (s Spec) Size(cfg Config) (int, error) {
	r, err := s.resolve(cfg)
	if err != nil {
		return 0, err
	}
	return int(r.size()), nil
}
