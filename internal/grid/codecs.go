package grid

import (
	"dynloop/internal/branchpred"
	"dynloop/internal/codec"
	"dynloop/internal/datapred"
	"dynloop/internal/loopstats"
	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// Codec registrations give every grid cell result a stable binary form,
// which is what lets a result leave the process: the on-disk store
// persists these exact bytes under the cell's versioned key, and the
// serving wire format streams them to remote clients.
//
// The rules:
//
//   - Kinds are forever. Never reuse a retired kind number.
//   - Field order is the format. Append new fields at the end AND bump
//     the kind's version; old frames then read as ErrVersionSkew, which
//     the cache tier treats as a miss (self-invalidation).
//   - A semantic change that keeps the shape (same fields, new meaning)
//     must ALSO bump CellSchemaVersion in grid.go, because frames of
//     the old meaning would otherwise still decode cleanly.
//
// The golden tests in codecs_test.go pin these bytes.
const (
	kindSpecMetrics codec.Kind = 1
	kindFig4Cell    codec.Kind = 2
	kindTable1Row   codec.Kind = 3
	kindFig8Row     codec.Kind = 4
	kindCLSCell     codec.Kind = 5
	kindReplCell    codec.Kind = 6
	kindOneShotRow  codec.Kind = 7
	kindBaselineRow codec.Kind = 8
	kindTaskPredRow codec.Kind = 9
	kindOracleRow   codec.Kind = 10
)

func init() {
	codec.Register(kindSpecMetrics, 1, "spec-metrics", appendSpecMetrics, decodeSpecMetrics)

	codec.Register(kindFig4Cell, 1, "fig4-cell", func(e *codec.Enc, v Fig4Cell) {
		e.F64(v.LET)
		e.F64(v.LIT)
	}, func(d *codec.Dec) Fig4Cell {
		return Fig4Cell{LET: d.F64(), LIT: d.F64()}
	})

	codec.Register(kindTable1Row, 1, "table1-row", func(e *codec.Enc, v Table1Row) {
		e.Str(v.Bench)
		appendLoopSummary(e, v.S)
		appendPaperRow(e, v.Paper)
	}, func(d *codec.Dec) Table1Row {
		return Table1Row{Bench: d.Str(), S: decodeLoopSummary(d), Paper: decodePaperRow(d)}
	})

	codec.Register(kindFig8Row, 1, "fig8-row", func(e *codec.Enc, v Fig8Row) {
		e.Str(v.Bench)
		appendDataSummary(e, v.S)
	}, func(d *codec.Dec) Fig8Row {
		return Fig8Row{Bench: d.Str(), S: decodeDataSummary(d)}
	})

	codec.Register(kindCLSCell, 1, "cls-cell", func(e *codec.Enc, v CLSCell) {
		e.U64(v.Evictions)
		e.Bool(v.AtCap)
		e.F64(v.TPC)
	}, func(d *codec.Dec) CLSCell {
		return CLSCell{Evictions: d.U64(), AtCap: d.Bool(), TPC: d.F64()}
	})

	codec.Register(kindReplCell, 1, "replacement-cell", func(e *codec.Enc, v ReplCell) {
		e.F64(v.LET)
		e.F64(v.LIT)
		e.U64(v.Inhibited)
	}, func(d *codec.Dec) ReplCell {
		return ReplCell{LET: d.F64(), LIT: d.F64(), Inhibited: d.U64()}
	})

	codec.Register(kindOneShotRow, 1, "oneshot-row", func(e *codec.Enc, v OneShotRow) {
		e.Str(v.Bench)
		e.F64(v.WithIPE)
		e.F64(v.WithoutIPE)
		e.U64(v.WithExecs)
		e.U64(v.WithoutExec)
	}, func(d *codec.Dec) OneShotRow {
		return OneShotRow{Bench: d.Str(), WithIPE: d.F64(), WithoutIPE: d.F64(),
			WithExecs: d.U64(), WithoutExec: d.U64()}
	})

	codec.Register(kindBaselineRow, 1, "baseline-row", func(e *codec.Enc, v BaselineRow) {
		e.Str(v.Bench)
		e.Int(len(v.Results))
		for _, r := range v.Results {
			e.Str(r.Name)
			e.U64(r.Branches)
			e.U64(r.Hits)
			e.U64(r.BackwardBranches)
			e.U64(r.BackwardHits)
		}
	}, func(d *codec.Dec) BaselineRow {
		row := BaselineRow{Bench: d.Str()}
		n := d.Int()
		// A corrupt count decodes to garbage; the cursor's bounds checks
		// stop the loop at the first bad field, so cap defensively.
		if n < 0 || n > 64 {
			n = 0
		}
		for i := 0; i < n && d.Err() == nil; i++ {
			row.Results = append(row.Results, branchpred.Result{
				Name: d.Str(), Branches: d.U64(), Hits: d.U64(),
				BackwardBranches: d.U64(), BackwardHits: d.U64(),
			})
		}
		return row
	})

	codec.Register(kindTaskPredRow, 1, "taskpred-row", func(e *codec.Enc, v TaskPredRow) {
		e.Str(v.Bench)
		e.F64(v.NextTaskPct)
		e.U64(v.Scored)
		e.F64(v.IterHitPct)
	}, func(d *codec.Dec) TaskPredRow {
		return TaskPredRow{Bench: d.Str(), NextTaskPct: d.F64(), Scored: d.U64(), IterHitPct: d.F64()}
	})

	codec.Register(kindOracleRow, 1, "oracle-row", func(e *codec.Enc, v OracleRow) {
		e.Str(v.Bench)
		e.F64(v.STRTPC)
		e.F64(v.OracleTPC)
		e.F64(v.STRHit)
		e.F64(v.OracleHit)
	}, func(d *codec.Dec) OracleRow {
		return OracleRow{Bench: d.Str(), STRTPC: d.F64(), OracleTPC: d.F64(),
			STRHit: d.F64(), OracleHit: d.F64()}
	})
}

func appendSpecMetrics(e *codec.Enc, m spec.Metrics) {
	e.U64(m.Instrs)
	e.U64(m.Cycles)
	e.U64(m.SpecEvents)
	e.U64(m.ThreadsSpawned)
	e.U64(m.ThreadsPromoted)
	e.U64(m.ThreadsSquashed)
	e.U64(m.ThreadsFlushed)
	e.U64(m.OutstandingSum)
	e.U64(m.VerifDistSum)
	e.U64(m.ResolvedThreads)
	e.U64(m.DeniedSpawns)
	e.Int(m.ExcludedLoops)
	e.U64(m.Anomalies)
}

func decodeSpecMetrics(d *codec.Dec) spec.Metrics {
	return spec.Metrics{
		Instrs:          d.U64(),
		Cycles:          d.U64(),
		SpecEvents:      d.U64(),
		ThreadsSpawned:  d.U64(),
		ThreadsPromoted: d.U64(),
		ThreadsSquashed: d.U64(),
		ThreadsFlushed:  d.U64(),
		OutstandingSum:  d.U64(),
		VerifDistSum:    d.U64(),
		ResolvedThreads: d.U64(),
		DeniedSpawns:    d.U64(),
		ExcludedLoops:   d.Int(),
		Anomalies:       d.U64(),
	}
}

func appendLoopSummary(e *codec.Enc, s loopstats.Summary) {
	e.U64(s.Instrs)
	e.Int(s.StaticLoops)
	e.U64(s.Execs)
	e.U64(s.Iters)
	e.F64(s.ItersPerExec)
	e.F64(s.InstrPerIter)
	e.F64(s.AvgNesting)
	e.Int(s.MaxNesting)
	e.F64(s.InLoopFrac)
}

func decodeLoopSummary(d *codec.Dec) loopstats.Summary {
	return loopstats.Summary{
		Instrs:       d.U64(),
		StaticLoops:  d.Int(),
		Execs:        d.U64(),
		Iters:        d.U64(),
		ItersPerExec: d.F64(),
		InstrPerIter: d.F64(),
		AvgNesting:   d.F64(),
		MaxNesting:   d.Int(),
		InLoopFrac:   d.F64(),
	}
}

func appendDataSummary(e *codec.Enc, s datapred.Summary) {
	e.Int(s.Loops)
	e.U64(s.Iters)
	e.F64(s.SamePathPct)
	e.F64(s.LrPredPct)
	e.F64(s.LmPredPct)
	e.F64(s.AllLrPct)
	e.F64(s.AllLmPct)
	e.F64(s.AllDataPct)
	e.F64(s.LrLastPct)
	e.F64(s.LmLastPct)
	e.U64(s.MemOverflow)
}

func decodeDataSummary(d *codec.Dec) datapred.Summary {
	return datapred.Summary{
		Loops:       d.Int(),
		Iters:       d.U64(),
		SamePathPct: d.F64(),
		LrPredPct:   d.F64(),
		LmPredPct:   d.F64(),
		AllLrPct:    d.F64(),
		AllLmPct:    d.F64(),
		AllDataPct:  d.F64(),
		LrLastPct:   d.F64(),
		LmLastPct:   d.F64(),
		MemOverflow: d.U64(),
	}
}

func appendPaperRow(e *codec.Enc, p workload.PaperRow) {
	e.Int(p.Loops)
	e.F64(p.ItersPerExec)
	e.F64(p.InstrPerIter)
	e.F64(p.AvgNL)
	e.Int(p.MaxNL)
	e.F64(p.TPC4)
	e.F64(p.HitRatio)
}

func decodePaperRow(d *codec.Dec) workload.PaperRow {
	return workload.PaperRow{
		Loops:        d.Int(),
		ItersPerExec: d.F64(),
		InstrPerIter: d.F64(),
		AvgNL:        d.F64(),
		MaxNL:        d.Int(),
		TPC4:         d.F64(),
		HitRatio:     d.F64(),
	}
}
