// Package grid is the declarative experiment-grid layer: a Spec names
// the axes of a benchmark × budget × seed × CLS × machine × policy ×
// ablation grid plus a metric selection and a render layout, and the
// package compiles it onto the cell/pass machinery the whole stack is
// built from — deterministic versioned cell keys, fusion groups for
// runner.MapGroups, per-cell codec frames for the on-disk store and the
// serving wire format, and table/CSV/JSON rendering.
//
// Every table, figure, baseline and ablation of the paper's evaluation
// is a registered Spec (internal/expt registers them under names like
// "table1", "fig7" or "ablation/cls" with a section renderer), and a
// user-authored JSON Spec — a seed sweep at TU counts the paper never
// ran — executes through exactly the same path: Compile expands the
// axes to cells, Run resolves them through a shared Runner (memory
// cache, optional disk store, traversal fusion per (benchmark, budget,
// seed) group), and the layout renderer formats the values. The daemon
// serves the same Specs over POST /v1/grid; cells cross the wire as
// the codec frames the store persists, so remote and local renders are
// byte-identical.
package grid

import (
	"fmt"
	"strings"

	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/workload"
)

// Config parametrises a grid execution. It carries everything that is
// about HOW a grid runs (worker bound, shared runner, batch size) plus
// the defaults a Spec's zero-valued axes resolve to (budget, seed, CLS
// capacity, benchmark subset).
type Config struct {
	// Budget is the per-benchmark dynamic instruction budget a zero
	// Spec budget resolves to. 0 selects DefaultBudget. (The paper ran
	// the first 10^9 instructions; all our statistics stabilise far
	// below that on the synthetic workloads — see DESIGN.md.)
	Budget uint64
	// Seed decorrelates workload input sequences; 0 selects 1. A Spec
	// may sweep explicit seeds instead.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all 18) when the
	// Spec does not name its own.
	Benchmarks []string
	// CLSCapacity overrides the CLS size (0 = the paper's 16) when the
	// Spec does not sweep it.
	CLSCapacity int
	// BatchSize overrides the interpreter's event-batch size
	// (0 = interp.DefaultBatchSize). Results are byte-identical at any
	// setting; the determinism tests sweep it.
	BatchSize int
	// Parallel bounds the worker goroutines when the run builds its
	// own runner (0 = GOMAXPROCS); 1 reproduces the sequential schedule.
	// Ignored when Runner is set.
	Parallel int
	// Runner, when non-nil, executes the grid's cells. The sharing
	// contract: one Runner may (and for dedup, should) be shared across
	// any number of Run and driver calls — the worker bound, the keyed
	// result cache and the optional disk tier are runner-wide, so
	// overlapping cells across grids are computed once. When nil, each
	// Run/driver call resolves ONE private runner for the whole call
	// (never one per internal stage) and its cache dies with the call;
	// nothing is deduplicated across calls.
	Runner *runner.Runner
	// OnEvent streams per-job progress when the run builds its own
	// runner. Ignored when Runner is set (configure it there instead).
	OnEvent func(runner.Event)
	// NoFuse disables traversal fusion: every cell runs its own private
	// interpreter traversal, as the pre-fusion drivers did. Results are
	// identical either way (each cell's pass owns its detector and
	// tables, so fusion shares only the read-only event stream); the
	// flag exists for the byte-identity regression tests and for A/B
	// benchmarking the fusion win.
	NoFuse bool
	// Reference runs interpreted traversals on the interpreter's
	// reference path (two-level switch, no predecode, no superinstruction
	// fusion; see interp.CPU.SetReference). Like NoFuse it cannot change
	// results — the two paths emit byte-identical streams, an equivalence
	// the grid regression tests pin — so it stays out of the cell key.
	Reference bool
	// FullPlanes disables control-plane event delivery: producers fill
	// full trace.Events even for traversals whose every pass is
	// control-only (see trace.PlanesOf). Like Reference it cannot change
	// results — the facet split is delivery-only, an equivalence the
	// regression tests pin — so it stays out of the cell key.
	FullPlanes bool
	// Shards spreads each fused traversal's passes over that many
	// goroutines (<= 1 delivers inline; see trace.Broadcast). Passes are
	// independent, so sharding changes wall-clock only, never results —
	// delivery-only like Reference, so it too stays out of the cell key.
	Shards int
	// Traces, when non-nil, is the replay tier: group executions that
	// miss the memory cache and the disk store record their instruction
	// stream into the trace archive on first interpretation, and every
	// later group over the same (benchmark, seed) whose budget the
	// recording covers replays the file instead of interpreting.
	// Results are byte-identical either way (pinned by the
	// replay-equivalence suite); like Runner, one Traces may be shared
	// across any number of runs.
	Traces *harness.Traces
}

// DefaultBudget is the per-benchmark instruction budget grids use
// unless configured otherwise.
const DefaultBudget = 4_000_000

func (c Config) budget() uint64 {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// pool resolves the runner a grid execution submits its cells to. Run
// calls it exactly once per execution — every stage of one call (fused
// groups, composite oracle jobs) shares the same pool, so a nil
// Config.Runner costs one runner per call, not one per stage.
func (c Config) pool() *runner.Runner {
	if c.Runner != nil {
		return c.Runner
	}
	return runner.New(runner.Config{Workers: c.Parallel, OnEvent: c.OnEvent})
}

// benchmarks resolves the configured subset.
func (c Config) benchmarks() ([]workload.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return workload.All(), nil
	}
	out := make([]workload.Benchmark, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// CellSchemaVersion stamps every cell key. Because keys address the
// persistent result store (and the serving layer's wire queries), a
// change to what a cell MEANS — detector semantics, metric definitions,
// workload generation — must bump this version: the new keys then miss
// every previously persisted result instead of serving stale ones.
// Purely additive changes (new cell types, new key parts) don't need a
// bump; the new keys cannot collide with old ones.
//
// It is a variable only so the self-invalidation regression test can
// bump it; treat it as a constant everywhere else.
var CellSchemaVersion = 1

// cellKey builds a runner cache key: the schema version, the Config
// fields every run depends on, then the cell's own coordinates. Keys
// must determine the result (and its Go type) completely — see
// runner.Job. Each part is length-prefixed so adjacent parts cannot
// blur into a colliding key ("a","bc" vs "ab","c", or a part containing
// the delimiter).
func (c Config) cellKey(parts ...any) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|b%d|s%d|cls%d|ba%d", CellSchemaVersion, c.budget(), c.seed(), c.CLSCapacity, c.BatchSize)
	for _, p := range parts {
		s := fmt.Sprint(p)
		fmt.Fprintf(&b, "|%d:%s", len(s), s)
	}
	return b.String()
}

// groupKey names a fusion group: everything that determines the
// instruction stream a cell's pass observes — the benchmark, the
// traversal budget, the input seed and the batch size. Cells of one
// execution sharing a group key run in one fused traversal; the
// per-pass knobs (policy, TU count, table capacities, even the CLS
// capacity) deliberately stay out.
func (c Config) groupKey(bench string, budget uint64) string {
	return fmt.Sprintf("g|%d:%s|b%d|s%d|ba%d", len(bench), bench, budget, c.seed(), c.BatchSize)
}
