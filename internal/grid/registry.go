package grid

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one registered grid: a canonical Spec plus, optionally, the
// section renderer that formats its result the way the paper (or the
// legacy driver) did. A nil Render falls back to the generic layout
// renderer. The canonical Spec leaves Benchmarks empty so a Config
// subset applies; drivers overriding an axis copy the Spec first.
type Entry struct {
	Spec   Spec
	Render func(*Result) (string, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Entry{}
)

// Register adds a named grid. It panics on an empty or duplicate name
// or an invalid spec: registrations are init-time wiring (internal/expt
// registers every paper section), not runtime input.
func Register(e Entry) {
	if e.Spec.Name == "" {
		panic("grid: registered spec needs a name")
	}
	if err := e.Spec.Validate(); err != nil {
		panic(fmt.Sprintf("grid: registering %q: %v", e.Spec.Name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[e.Spec.Name]; ok {
		panic(fmt.Sprintf("grid: name %q already registered", e.Spec.Name))
	}
	registry[e.Spec.Name] = e
}

// Lookup resolves a registered grid by name.
func Lookup(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names lists the registered grids, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RenderResult formats a result: a registered spec renders through its
// section renderer unless the spec asks for an explicit format; ad-hoc
// specs render through the generic layout renderer. A spec that merely
// reuses a registered name with a different kind is NOT the registered
// grid — its values carry the ad-hoc kind's result type, which the
// section renderer cannot read — so it falls through to the generic
// renderer instead.
func RenderResult(res *Result) (string, error) {
	if res.Spec.Render.Format == "" && res.Spec.Name != "" {
		if e, ok := Lookup(res.Spec.Name); ok && e.Render != nil && e.Spec.kind() == res.Spec.kind() {
			return e.Render(res)
		}
	}
	return RenderLayout(res)
}
