// Online compaction: rewrite the live records of the frozen segment
// prefix into dense segments and atomically swap them in, reclaiming
// superseded-record space while concurrent Puts and Gets proceed.
//
// Protocol (Compact):
//
//  1. Freeze (under the lock): rotate to a fresh active segment, so
//     every existing record lives in an immutable prefix of frozen
//     segments; snapshot the live keys that resolve into that prefix.
//  2. Rewrite (unlocked): copy each snapshotted record — verbatim, its
//     CRC re-verified — into temp files named for the lowest-numbered
//     frozen slots, in original append order, with fresh sidecars.
//     Concurrent Puts land in post-freeze segments and simply win.
//  3. Swap (under the lock): rename each temp file over its slot in
//     increasing order, splice the compacted segments in front of the
//     post-freeze segments, and remap the index (keys untouched since
//     the freeze move to their compacted copy; keys overwritten since
//     keep the newer post-freeze record, and their compacted copy is
//     charged as dead).
//  4. Retire (unlocked): drop the old segments' references — their
//     files close when in-flight reads drain — and delete leftover
//     frozen files in increasing order.
//
// Crash safety: append order is preserved, so replaying segments
// oldest-first after a crash at ANY step resolves every key to its
// newest value. Renaming slots in increasing order guarantees a key's
// compacted copy is on disk before any frozen segment that held its
// stale copies is overwritten; deleting leftovers in increasing order
// guarantees a stale copy never outlives the newer copy that supersedes
// it. Temp files and orphan sidecars from an interrupted compaction are
// swept by the next Open, and a frozen slot whose data was swapped but
// whose sidecar was not is caught by the sidecar's size/CRC fingerprint
// and rebuilt by scan.
package store

import (
	"fmt"
	"os"
	"sort"
)

// ErrCompacting reports a Compact that found another one in flight.
var ErrCompacting = fmt.Errorf("store: compaction already in progress")

// CompactStats summarize one compaction.
type CompactStats struct {
	// LiveRecords is the number of records carried into the compacted
	// segments.
	LiveRecords int
	// SegmentsBefore and SegmentsAfter count the frozen prefix before
	// and after the rewrite.
	SegmentsBefore, SegmentsAfter int
	// BytesBefore and BytesAfter measure the frozen prefix on disk;
	// Reclaimed is their difference.
	BytesBefore, BytesAfter int64
	Reclaimed               int64
}

// Compact rewrites all live records of the immutable segment prefix
// into dense segments, swaps them in atomically, and deletes the
// superseded files. It is safe to call while other goroutines Put and
// Get; last-write-wins is preserved for keys overwritten mid-compaction.
// A second concurrent Compact returns ErrCompacting.
func (s *Store) Compact() (CompactStats, error) {
	// Phase 1: freeze.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrClosed
	}
	if s.compacting {
		s.mu.Unlock()
		return CompactStats{}, ErrCompacting
	}
	if active := s.segs[len(s.segs)-1]; active.size > int64(len(magic)) {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return CompactStats{}, err
		}
	}
	frozen := len(s.segs) - 1
	if frozen == 0 {
		s.mu.Unlock()
		return CompactStats{}, nil
	}
	s.compacting = true
	old := make([]*segment, frozen)
	copy(old, s.segs[:frozen])
	type liveRec struct {
		key string
		r   ref
	}
	snap := make([]liveRec, 0, len(s.idx))
	for k, r := range s.idx {
		if r.seg < frozen {
			snap = append(snap, liveRec{k, r})
		}
	}
	var before int64
	for _, seg := range old {
		before += seg.size
		seg.acquire() // pin for our unlocked reads
	}
	hook := s.testHookAfterFreeze
	s.mu.Unlock()
	if hook != nil {
		hook()
	}

	releaseReads := func() {
		for _, seg := range old {
			seg.release()
		}
	}

	// Original append order, so a crash between the swap's renames or
	// deletes still replays to last-write-wins (see package comment).
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].r.seg != snap[j].r.seg {
			return snap[i].r.seg < snap[j].r.seg
		}
		return snap[i].r.off < snap[j].r.off
	})

	// Phase 2: rewrite into temp files targeting the lowest frozen slots.
	var (
		outs       []*segment
		outEntries [][]sidecarEntry
		moved      = make(map[string]ref, len(snap))
	)
	fail := func(err error) (CompactStats, error) {
		for _, o := range outs {
			o.f.Close()
			os.Remove(o.path + ".tmp")
			os.Remove(sidecarPath(o.path) + ".tmp")
		}
		releaseReads()
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
		return CompactStats{}, err
	}
	openOut := func() error {
		target := old[len(outs)].path
		f, err := os.OpenFile(target+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return err
		}
		outs = append(outs, newSegment(target, f, int64(len(magic)), "compacted"))
		outEntries = append(outEntries, nil)
		return nil
	}
	var buf []byte
	for _, e := range snap {
		if cap(buf) < e.r.rlen {
			buf = make([]byte, e.r.rlen)
		}
		b := buf[:e.r.rlen]
		if _, err := old[e.r.seg].f.ReadAt(b, e.r.off); err != nil {
			return fail(fmt.Errorf("%w: compacting %q: %v", ErrCorrupt, e.key, err))
		}
		// Verify before propagating: compaction must not launder a
		// damaged record into a fresh segment with a fresh sidecar.
		rec, err := decodeRecord(b)
		if err != nil || rec.Key != e.key {
			if err == nil {
				err = fmt.Errorf("record for %q where index says %q", rec.Key, e.key)
			}
			return fail(fmt.Errorf("%w: compacting %q: %v", ErrCorrupt, e.key, err))
		}
		if len(outs) == 0 {
			if err := openOut(); err != nil {
				return fail(err)
			}
		} else if cur := outs[len(outs)-1]; cur.size > int64(len(magic)) &&
			cur.size+int64(len(b)) > s.maxSeg && len(outs) < frozen {
			// Rotate the output — but never beyond the slots the frozen
			// prefix vacates; the last output absorbs any overflow.
			if err := openOut(); err != nil {
				return fail(err)
			}
		}
		cur := outs[len(outs)-1]
		if _, err := cur.f.WriteAt(b, cur.size); err != nil {
			return fail(err)
		}
		moved[e.key] = ref{seg: len(outs) - 1, off: cur.size, rlen: e.r.rlen}
		outEntries[len(outs)-1] = append(outEntries[len(outs)-1],
			sidecarEntry{key: e.key, off: cur.size, rlen: int64(e.r.rlen)})
		cur.size += int64(len(b))
	}
	var after int64
	for i, o := range outs {
		if err := o.f.Sync(); err != nil {
			return fail(err)
		}
		after += o.size
		if !s.opts.DisableSidecars {
			data, err := buildSidecar(o.f, o.size, 0, outEntries[i])
			if err != nil {
				return fail(err)
			}
			if err := writeFileSync(sidecarPath(o.path)+".tmp", data); err != nil {
				return fail(err)
			}
		}
	}
	releaseReads()

	// Phase 3: swap.
	s.mu.Lock()
	if s.closed {
		s.compacting = false
		s.mu.Unlock()
		for _, o := range outs {
			o.f.Close()
			os.Remove(o.path + ".tmp")
			os.Remove(sidecarPath(o.path) + ".tmp")
		}
		return CompactStats{}, ErrClosed
	}
	for i, o := range outs {
		if err := os.Rename(o.path+".tmp", o.path); err != nil {
			// Abort mid-swap: slots already renamed hold verbatim copies
			// of the newest frozen records, so the on-disk store remains
			// correct for a future Open; in-memory state still reads
			// through the old handles and is untouched.
			s.compacting = false
			s.mu.Unlock()
			for _, u := range outs[i:] {
				os.Remove(u.path + ".tmp")
			}
			for _, u := range outs {
				u.f.Close()
				os.Remove(sidecarPath(u.path) + ".tmp")
			}
			return CompactStats{}, err
		}
		if !s.opts.DisableSidecars {
			// Best effort: a failed sidecar rename leaves the old sidecar,
			// which the size/CRC fingerprint exposes as stale.
			if os.Rename(sidecarPath(o.path)+".tmp", sidecarPath(o.path)) != nil {
				os.Remove(sidecarPath(o.path) + ".tmp")
			}
		}
	}
	outCount := len(outs)
	for k, r := range s.idx {
		if r.seg >= frozen {
			// Overwritten since the freeze: the post-freeze record wins
			// and the compacted copy (if any) is immediately dead.
			r.seg += outCount - frozen
			s.idx[k] = r
			if m, ok := moved[k]; ok {
				outs[m.seg].dead += int64(m.rlen)
			}
		} else {
			s.idx[k] = moved[k]
		}
	}
	s.segs = append(outs, s.segs[frozen:]...)
	s.compacting = false
	s.compactions.Add(1)
	mCompactions.Inc()
	reclaimed := before - after
	s.reclaimed.Add(uint64(reclaimed))
	mReclaimedBytes.Add(uint64(reclaimed))
	s.mu.Unlock()

	// Phase 4: retire old segments and delete leftover files, lowest
	// first (increasing order is what keeps a crash mid-delete safe).
	for _, seg := range old {
		seg.release()
	}
	for i := outCount; i < frozen; i++ {
		os.Remove(old[i].path)
		os.Remove(sidecarPath(old[i].path))
	}
	return CompactStats{
		LiveRecords:    len(snap),
		SegmentsBefore: frozen,
		SegmentsAfter:  outCount,
		BytesBefore:    before,
		BytesAfter:     after,
		Reclaimed:      reclaimed,
	}, nil
}
