package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fillSegments writes enough records to span several segments and
// returns the expected live contents.
func fillSegments(t *testing.T, s *Store, n int) map[string]string {
	t.Helper()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("val-%04d-%s", i, strings.Repeat("x", 40))
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	return want
}

func checkAll(t *testing.T, s *Store, want map[string]string) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
}

func sidecarFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dlidx"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestSidecarOpenServesAllKeys(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 1024})
	want := fillSegments(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sidecarFiles(t, dir)) == 0 {
		t.Fatal("no sidecars written by rotation/Close")
	}

	s2 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st := s2.Stats()
	if st.Segments < 3 {
		t.Fatalf("want a multi-segment store, got %d segments", st.Segments)
	}
	if st.SidecarHits != uint64(st.Segments) || st.SidecarRebuilds != 0 {
		t.Fatalf("sidecar hits=%d rebuilds=%d, want hits=%d rebuilds=0",
			st.SidecarHits, st.SidecarRebuilds, st.Segments)
	}
	checkAll(t, s2, want)
}

func TestSidecarMissingRebuilds(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 1024})
	want := fillSegments(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range sidecarFiles(t, dir) {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st := s2.Stats()
	if st.SidecarHits != 0 || st.SidecarRebuilds != uint64(st.Segments) {
		t.Fatalf("after deleting sidecars: hits=%d rebuilds=%d segments=%d",
			st.SidecarHits, st.SidecarRebuilds, st.Segments)
	}
	checkAll(t, s2, want)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The scan fallback rewrote every sidecar, so the next Open is
	// indexed again.
	s3 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st = s3.Stats()
	if st.SidecarHits != uint64(st.Segments) {
		t.Fatalf("after rebuild: hits=%d segments=%d", st.SidecarHits, st.Segments)
	}
	checkAll(t, s3, want)
}

func TestSidecarCorruptFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 1024})
	want := fillSegments(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range sidecarFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st := s2.Stats()
	if st.SidecarHits != 0 || st.SidecarRebuilds != uint64(st.Segments) {
		t.Fatalf("after corrupting sidecars: hits=%d rebuilds=%d segments=%d",
			st.SidecarHits, st.SidecarRebuilds, st.Segments)
	}
	checkAll(t, s2, want)
}

// TestSidecarStaleAfterTornTailTruncation is the regression for the
// crash window between appending a record and refreshing the active
// segment's sidecar: the sidecar describes the pre-crash size, the
// segment has a torn tail, and Open must detect the mismatch, scan,
// repair, and rewrite — never serve offsets from the stale table.
func TestSidecarStaleAfterTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 1024})
	want := fillSegments(t, s, 64)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a partial record lands after the bytes the
	// sidecar fingerprints.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7f, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st := s2.Stats()
	if st.TruncatedTail == 0 {
		t.Fatalf("torn tail not repaired: %+v", st)
	}
	if st.SidecarRebuilds == 0 {
		t.Fatalf("stale sidecar not rebuilt: %+v", st)
	}
	checkAll(t, s2, want)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewritten sidecar matches the truncated segment exactly.
	s3 := openT(t, dir, Options{MaxSegmentBytes: 1024})
	st = s3.Stats()
	if st.SidecarHits != uint64(st.Segments) || st.TruncatedTail != 0 {
		t.Fatalf("post-repair reopen: %+v", st)
	}
	checkAll(t, s3, want)
}

// A truncated segment (an earlier Open repaired a tear but crashed
// before rewriting the sidecar) must also read as stale: the sidecar
// claims a size the file no longer has.
func TestSidecarStaleAfterShrink(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("a", []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("vb")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record off entirely; the sidecar still lists "b"
	// at an offset past the new EOF.
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if st := s2.Stats(); st.SidecarHits != 0 {
		t.Fatalf("shrunk segment served from sidecar: %+v", st)
	}
	if v, ok, err := s2.Get("a"); err != nil || !ok || string(v) != "va" {
		t.Fatalf("Get(a) = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s2.Get("b"); ok {
		t.Fatal("truncated-away key still served")
	}
}

// Small segments are fingerprinted whole, so mid-file corruption under
// a matching sidecar is still caught at Open — the crash-safety
// contract (ErrCorrupt for once-durable bytes) survives the fast path.
func TestSidecarDoesNotMaskMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("a", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", bytes.Repeat([]byte("y"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)+10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded over mid-file corruption")
	}
}

// A fingerprint-valid sidecar whose entries point at the wrong records
// must surface as ErrCorrupt on read, never as another key's bytes.
func TestAdversarialSidecarCannotServeWrongBytes(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("a", []byte("value-of-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("value-of-b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-point "a" at b's record (and vice versa) while keeping the
	// segment fingerprint honest.
	idxPath := sidecarFiles(t, dir)[0]
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := parseSidecar(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(sc.entries))
	}
	sc.entries[0].key, sc.entries[1].key = sc.entries[1].key, sc.entries[0].key
	if err := os.WriteFile(idxPath, appendSidecar(nil, sc), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if st := s2.Stats(); st.SidecarHits != 1 {
		t.Fatalf("crafted sidecar rejected up front (hits=%d); the Get-side check is untested", st.SidecarHits)
	}
	for _, k := range []string{"a", "b"} {
		v, ok, err := s2.Get(k)
		if err == nil && ok {
			t.Fatalf("Get(%q) served %q through a lying sidecar", k, v)
		}
	}
}

// FuzzIndexSidecar feeds arbitrary bytes as a segment's sidecar:
// opening the store must never panic and never serve a wrong value for
// a known key — every answer is re-verified against a scan of the
// segment. Any fuzzed sidecar either loses the fingerprint check
// (scan fallback, full correctness) or passes it, in which case the
// per-read CRC+key verification must catch bad entries.
func FuzzIndexSidecar(f *testing.F) {
	// Seeds: a genuine sidecar, a truncation of it, and a bit flip.
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	segPaths, _ := filepath.Glob(filepath.Join(seedDir, "seg-*.dlstore"))
	if len(segPaths) != 1 {
		f.Fatalf("want 1 seed segment, got %d", len(segPaths))
	}
	segBytes, err := os.ReadFile(segPaths[0])
	if err != nil {
		f.Fatal(err)
	}
	genuine, err := os.ReadFile(sidecarPath(segPaths[0]))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add(genuine[:len(genuine)/2])
	flipped := append([]byte(nil), genuine...)
	flipped[len(flipped)-3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte(sidecarMagic))
	f.Add([]byte{})

	recs, _, err := ScanSegment(segBytes)
	if err != nil {
		f.Fatal(err)
	}
	want := make(map[string]string, len(recs))
	for _, r := range recs {
		want[r.Key] = string(r.Val)
	}

	f.Fuzz(func(t *testing.T, idx []byte) {
		// parseSidecar must be total.
		_, _ = parseSidecar(idx)

		dir := t.TempDir()
		segPath := filepath.Join(dir, "seg-000001.dlstore")
		if err := os.WriteFile(segPath, segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sidecarPath(segPath), idx, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open over fuzzed sidecar: %v", err)
		}
		defer st.Close()
		for k, v := range want {
			got, ok, err := st.Get(k)
			if err != nil {
				continue // detected bad index: acceptable
			}
			if ok && string(got) != v {
				t.Fatalf("Get(%q) = %q, want %q (sidecar indexed wrong offset silently)", k, got, v)
			}
		}
	})
}
