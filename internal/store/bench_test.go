package store

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

// benchVal approximates a codec-encoded result row (a few hundred
// bytes of varint-packed metrics).
var benchVal = bytes.Repeat([]byte("v"), 256)

// buildBenchStore creates a garbage-heavy store with n live keys:
// rounds full overwrite passes (80% garbage at the default 5), default
// segment size, closed cleanly so sidecars are in place.
func buildBenchStore(b *testing.B, dir string, n, rounds int) {
	b.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			if err := s.Put(fmt.Sprintf("bench|key|%08d", i), benchVal); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func benchOpen(b *testing.B, n int, opts Options) {
	dir := b.TempDir()
	buildBenchStore(b, dir, n, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != n {
			b.Fatalf("index has %d keys, want %d", s.Len(), n)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkOpenScan100k is the cold path: every segment scanned
// byte-for-byte to rebuild the index.
func BenchmarkOpenScan100k(b *testing.B) {
	benchOpen(b, 100_000, Options{DisableSidecars: true})
}

// BenchmarkOpenSidecar100k is the indexed path: per-segment sidecars
// loaded instead of data.
func BenchmarkOpenSidecar100k(b *testing.B) {
	benchOpen(b, 100_000, Options{})
}

// BenchmarkGet measures warm single-threaded read latency, for both
// open paths: reads through a sidecar-built index CRC-verify each
// record (those bytes were never scanned), reads from a scanned store
// skip the checksum Open already established.
func BenchmarkGet(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"sidecar", Options{}},
		{"scan", Options{DisableSidecars: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			buildBenchStore(b, dir, 10_000, 2)
			s, err := Open(dir, bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := fmt.Sprintf("bench|key|%08d", i%10_000)
				if _, ok, err := s.Get(k); !ok || err != nil {
					b.Fatalf("Get(%q) = %v, %v", k, ok, err)
				}
			}
		})
	}
}

// BenchmarkConcurrentGetPut measures parallel Get throughput while a
// writer Puts continuously — the case the lock-split serves: reads no
// longer hold the store lock across their disk read, so they neither
// queue behind Put's exclusive lock nor make it starve.
func BenchmarkConcurrentGetPut(b *testing.B) {
	dir := b.TempDir()
	buildBenchStore(b, dir, 10_000, 2)
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	val := bytes.Repeat([]byte("w"), 100)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Put(fmt.Sprintf("bench|key|%08d", i%10_000), val); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			k := fmt.Sprintf("bench|key|%08d", i%10_000)
			if _, ok, err := s.Get(k); !ok || err != nil {
				b.Fatalf("Get(%q) = %v, %v", k, ok, err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
