package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// VerifyReport summarizes an offline store audit.
type VerifyReport struct {
	Segments     int
	TotalRecords int   // records on disk, superseded ones included
	LiveRecords  int   // keys after last-write-wins
	Bytes        int64 // segment bytes (intact prefix)
	DeadBytes    int64 // superseded-record bytes a Compact would reclaim
	// TornTailBytes is a partial final write on the newest segment —
	// normal after a crash; Open repairs it by truncation.
	TornTailBytes int64
	// Sidecar dispositions, one per segment: OK sidecars describe their
	// segment's live set exactly; Stale ones fail the size/CRC
	// fingerprint (Open would fall back to a scan and rewrite them);
	// Missing ones don't exist or don't parse.
	SidecarsOK, SidecarsStale, SidecarsMissing int
}

// Verify audits the store directory at dir without opening it as a
// Store: every segment is scanned byte-for-byte under the same rules as
// a scan Open (a torn tail is tolerated on the newest segment only, and
// reported), and every sidecar is checked against the scan. A sidecar
// must either be detectably stale — in which case Open ignores it — or
// agree exactly with the segment's live records; a fingerprint-valid
// sidecar that disagrees with the data is corruption and fails the
// audit, because Open would have trusted it. Run Verify on a quiescent
// store.
func Verify(dir string) (VerifyReport, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dlstore"))
	if err != nil {
		return VerifyReport{}, err
	}
	sort.Strings(names)
	var rep VerifyReport
	rep.Segments = len(names)
	live := make(map[string]int) // key → live record length, for dead accounting
	for i, name := range names {
		last := i == len(names)-1
		data, err := os.ReadFile(name)
		if err != nil {
			return rep, err
		}
		recs, good, err := ScanSegment(data)
		if err != nil {
			if !last || !errors.Is(err, errTorn) {
				return rep, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(name), err)
			}
			rep.TornTailBytes += int64(len(data)) - good
		}
		rep.Bytes += good
		rep.TotalRecords += len(recs)

		// The segment's own live set (last occurrence per key) and
		// self-superseded dead bytes, for the sidecar comparison.
		segLive := make(map[string]Record, len(recs))
		var segDead int64
		for _, r := range recs {
			if old, ok := segLive[r.Key]; ok {
				segDead += int64(old.Len)
			}
			segLive[r.Key] = r
		}
		for k, r := range segLive {
			if old, ok := live[k]; ok {
				rep.DeadBytes += int64(old)
			}
			live[k] = r.Len
		}
		rep.DeadBytes += segDead

		switch sc, ok := loadValidSidecar(name, good); {
		case sc == nil && !ok:
			rep.SidecarsMissing++
		case sc == nil && ok:
			rep.SidecarsStale++
		default:
			if err := sidecarMatches(sc, segLive, segDead); err != nil {
				return rep, fmt.Errorf("%w: %s sidecar disagrees with segment: %v",
					ErrCorrupt, filepath.Base(name), err)
			}
			rep.SidecarsOK++
		}
	}
	rep.LiveRecords = len(live)
	return rep, nil
}

// loadValidSidecar returns (sidecar, true) when the segment's sidecar
// parses and its size/tailCRC fingerprint matches the on-disk segment,
// (nil, true) when it parses but is stale, and (nil, false) when it is
// absent or unparseable.
func loadValidSidecar(segPath string, segSize int64) (*sidecar, bool) {
	data, err := os.ReadFile(sidecarPath(segPath))
	if err != nil {
		return nil, false
	}
	sc, err := parseSidecar(data)
	if err != nil {
		return nil, false
	}
	st, err := os.Stat(segPath)
	if err != nil || st.Size() != sc.segSize || sc.segSize != segSize {
		return nil, true
	}
	f, err := os.Open(segPath)
	if err != nil {
		return nil, true
	}
	defer f.Close()
	tail := make([]byte, sc.tailLen)
	if _, err := f.ReadAt(tail, sc.segSize-sc.tailLen); err != nil {
		return nil, true
	}
	if crc32.ChecksumIEEE(tail) != sc.tailCRC {
		return nil, true
	}
	return sc, true
}

// sidecarMatches checks a fingerprint-valid sidecar against the
// scan-derived live set of its segment.
func sidecarMatches(sc *sidecar, segLive map[string]Record, segDead int64) error {
	if len(sc.entries) != len(segLive) {
		return fmt.Errorf("%d entries, scan found %d live records", len(sc.entries), len(segLive))
	}
	if sc.dead != segDead {
		return fmt.Errorf("dead bytes %d, scan found %d", sc.dead, segDead)
	}
	for _, e := range sc.entries {
		r, ok := segLive[e.key]
		if !ok {
			return fmt.Errorf("entry %q not in segment", e.key)
		}
		if e.off != r.Off || e.rlen != int64(r.Len) {
			return fmt.Errorf("entry %q at off %d len %d, scan found off %d len %d",
				e.key, e.off, e.rlen, r.Off, r.Len)
		}
	}
	return nil
}
