package store

import "dynloop/internal/obs"

// Store metrics mirror the per-Store atomic counters into the obs
// registry (process-global: a daemon opens exactly one result store, so
// a /metrics scrape and Store.Stats reconcile; tests with several
// stores compare deltas). Each operation adds a constant number of
// atomic ops next to a disk write or read, so the overhead is noise.
var (
	mPuts = obs.NewCounter("dynloop_store_puts_total",
		"Result-store Put operations.")
	mPutBytes = obs.NewCounter("dynloop_store_put_bytes_total",
		"Bytes appended to result-store segments by Put (framing included).")
	mGets = obs.NewCounter("dynloop_store_gets_total",
		"Result-store Get operations.")
	mHits = obs.NewCounter("dynloop_store_hits_total",
		"Result-store Gets that found their key.")
	mRotations = obs.NewCounter("dynloop_store_rotations_total",
		"Segment rotations triggered by Put crossing the size limit.")
	mSegScans = obs.NewCounter("dynloop_store_segment_scans_total",
		"Segment files scanned while rebuilding the index at Open.")
	mTruncatedBytes = obs.NewCounter("dynloop_store_truncated_bytes_total",
		"Torn-tail bytes discarded recovering the newest segment at Open.")
	mOpenSeconds = obs.NewHistogram("dynloop_store_open_seconds",
		"Store Open latency in seconds (sidecar index load or full segment scan).",
		obs.DefLatencyBuckets)
	mSidecarHits = obs.NewCounter("dynloop_store_index_sidecar_hits_total",
		"Segments opened straight from a valid index sidecar, with no data scan.")
	mSidecarRebuilds = obs.NewCounter("dynloop_store_index_sidecar_rebuilds_total",
		"Segments scanned because their sidecar was missing, stale, or corrupt, and whose sidecar was rewritten.")
	mCompactions = obs.NewCounter("dynloop_store_compactions_total",
		"Completed store compactions.")
	mReclaimedBytes = obs.NewCounter("dynloop_store_compaction_reclaimed_bytes_total",
		"Bytes of superseded-record space removed from disk by compaction.")
)
