package store

import "dynloop/internal/obs"

// Store metrics mirror the per-Store atomic counters into the obs
// registry (process-global: a daemon opens exactly one result store, so
// a /metrics scrape and Store.Stats reconcile; tests with several
// stores compare deltas). Each operation adds a constant number of
// atomic ops next to a disk write or read, so the overhead is noise.
var (
	mPuts = obs.NewCounter("dynloop_store_puts_total",
		"Result-store Put operations.")
	mPutBytes = obs.NewCounter("dynloop_store_put_bytes_total",
		"Bytes appended to result-store segments by Put (framing included).")
	mGets = obs.NewCounter("dynloop_store_gets_total",
		"Result-store Get operations.")
	mHits = obs.NewCounter("dynloop_store_hits_total",
		"Result-store Gets that found their key.")
	mRotations = obs.NewCounter("dynloop_store_rotations_total",
		"Segment rotations triggered by Put crossing the size limit.")
	mSegScans = obs.NewCounter("dynloop_store_segment_scans_total",
		"Segment files scanned while rebuilding the index at Open.")
	mTruncatedBytes = obs.NewCounter("dynloop_store_truncated_bytes_total",
		"Torn-tail bytes discarded recovering the newest segment at Open.")
)
