// Index sidecars: per-segment key→offset tables that let Open rebuild
// the in-memory index without reading segment data.
//
// Each immutable segment seg-NNNNNN.dlstore carries a sibling
// seg-NNNNNN.dlidx:
//
//	header: magic "DLSIDX1\n"
//	frame:  uvarint bodyLen, 4-byte little-endian CRC32 (IEEE) of body
//	body:   uvarint sidecarVersion
//	        uvarint segSize   — segment size the table describes
//	        uvarint tailLen   — fingerprinted tail window length
//	        4-byte tailCRC    — CRC32 of the segment's last tailLen bytes
//	        uvarint dead      — self-superseded bytes inside the segment
//	        uvarint count, then count entries:
//	          uvarint keyLen, key, uvarint off, uvarint rlen
//
// Entries are the segment's live records at write time (within-segment
// duplicates already collapsed), offset-sorted. Cross-segment
// supersession is recomputed when Open replays segments oldest-first,
// so an immutable segment's sidecar never goes stale by later writes —
// only by the segment itself changing, which the segSize/tailCRC
// fingerprint detects (torn-tail truncation, compaction swap, or any
// other mutation). A sidecar that is missing, unparseable, or
// mismatched is treated as absent: Open falls back to the full scan and
// rewrites it. Sidecars are advisory, never authoritative: loads
// bounds-check every entry and Get re-verifies each record's CRC and
// key, so a wrong sidecar can cost a scan or an ErrCorrupt, never wrong
// data.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
)

const (
	sidecarMagic   = "DLSIDX1\n"
	sidecarVersion = 1
	// sidecarTailWindow bounds the segment tail fingerprinted by the
	// sidecar. Segments at most this large are covered whole, so any
	// mutation invalidates the sidecar; for larger segments the window
	// still covers every crash-reachable mutation (appends and torn
	// tails change the size, truncation repair changes both), while
	// keeping sidecar validation O(64KiB) instead of O(segment).
	sidecarTailWindow = 64 << 10
)

// sidecarPath maps seg-NNNNNN.dlstore to seg-NNNNNN.dlidx.
func sidecarPath(segPath string) string {
	return strings.TrimSuffix(segPath, ".dlstore") + ".dlidx"
}

// segForSidecar maps seg-NNNNNN.dlidx back to seg-NNNNNN.dlstore.
func segForSidecar(idxPath string) string {
	return strings.TrimSuffix(idxPath, ".dlidx") + ".dlstore"
}

// sidecarEntry is one live record in a sidecar table.
type sidecarEntry struct {
	key  string
	off  int64
	rlen int64
}

// sidecar is a decoded index sidecar.
type sidecar struct {
	segSize int64
	tailLen int64
	tailCRC uint32
	dead    int64
	entries []sidecarEntry
}

// appendSidecar encodes sc onto b.
func appendSidecar(b []byte, sc *sidecar) []byte {
	body := make([]byte, 0, 64+len(sc.entries)*24)
	body = binary.AppendUvarint(body, sidecarVersion)
	body = binary.AppendUvarint(body, uint64(sc.segSize))
	body = binary.AppendUvarint(body, uint64(sc.tailLen))
	body = binary.LittleEndian.AppendUint32(body, sc.tailCRC)
	body = binary.AppendUvarint(body, uint64(sc.dead))
	body = binary.AppendUvarint(body, uint64(len(sc.entries)))
	for _, e := range sc.entries {
		body = binary.AppendUvarint(body, uint64(len(e.key)))
		body = append(body, e.key...)
		body = binary.AppendUvarint(body, uint64(e.off))
		body = binary.AppendUvarint(body, uint64(e.rlen))
	}
	b = append(b, sidecarMagic...)
	b = binary.AppendUvarint(b, uint64(len(body)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
	return append(b, body...)
}

// parseSidecar decodes and validates a sidecar image. Any defect is a
// plain error: callers treat an invalid sidecar as absent and scan the
// segment, so damage here costs one scan, never a panic or a bad index.
func parseSidecar(data []byte) (*sidecar, error) {
	if len(data) < len(sidecarMagic) || string(data[:len(sidecarMagic)]) != sidecarMagic {
		return nil, errors.New("bad sidecar magic")
	}
	rest := data[len(sidecarMagic):]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, errors.New("bad sidecar length")
	}
	if uint64(len(rest)) != uint64(n)+4+bodyLen {
		return nil, errors.New("sidecar length does not match file")
	}
	crc := binary.LittleEndian.Uint32(rest[n : n+4])
	body := rest[uint64(n)+4:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, errors.New("sidecar CRC mismatch")
	}
	pos := 0
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bad %s", what)
		}
		pos += n
		return v, nil
	}
	ver, err := uv("sidecar version")
	if err != nil {
		return nil, err
	}
	if ver != sidecarVersion {
		return nil, fmt.Errorf("sidecar version %d (this build reads %d)", ver, sidecarVersion)
	}
	segSize, err := uv("segment size")
	if err != nil {
		return nil, err
	}
	if segSize < uint64(len(magic)) || segSize > 1<<62 {
		return nil, fmt.Errorf("segment size %d", segSize)
	}
	tailLen, err := uv("tail length")
	if err != nil {
		return nil, err
	}
	if tailLen > segSize || tailLen > sidecarTailWindow {
		return nil, fmt.Errorf("tail window %d for segment size %d", tailLen, segSize)
	}
	if pos+4 > len(body) {
		return nil, errors.New("truncated tail CRC")
	}
	tailCRC := binary.LittleEndian.Uint32(body[pos : pos+4])
	pos += 4
	dead, err := uv("dead bytes")
	if err != nil {
		return nil, err
	}
	if dead > segSize {
		return nil, fmt.Errorf("dead bytes %d exceed segment size %d", dead, segSize)
	}
	count, err := uv("entry count")
	if err != nil {
		return nil, err
	}
	// Each entry takes at least 3 bytes, so a count beyond the body is a
	// lie; reject it before sizing the slice.
	if count > uint64(len(body)-pos) {
		return nil, fmt.Errorf("entry count %d exceeds body", count)
	}
	sc := &sidecar{
		segSize: int64(segSize),
		tailLen: int64(tailLen),
		tailCRC: tailCRC,
		dead:    int64(dead),
		entries: make([]sidecarEntry, 0, count),
	}
	// One string copy of the body backs every key (entries slice
	// substrings out of it), so a 100k-entry sidecar costs one
	// allocation to parse instead of one per key.
	blob := string(body)
	for i := uint64(0); i < count; i++ {
		keyLen, err := uv("key length")
		if err != nil {
			return nil, err
		}
		if keyLen > uint64(len(body)-pos) {
			return nil, fmt.Errorf("key length %d exceeds body", keyLen)
		}
		key := blob[pos : pos+int(keyLen)]
		pos += int(keyLen)
		off, err := uv("record offset")
		if err != nil {
			return nil, err
		}
		rlen, err := uv("record length")
		if err != nil {
			return nil, err
		}
		// Bound each operand before summing so a huge varint cannot
		// wrap the overflow check.
		if off < uint64(len(magic)) || off > segSize || rlen < minRecordBytes || rlen > segSize || off+rlen > segSize {
			return nil, fmt.Errorf("entry %d out of segment bounds (off %d len %d size %d)", i, off, rlen, segSize)
		}
		sc.entries = append(sc.entries, sidecarEntry{key: key, off: int64(off), rlen: int64(rlen)})
	}
	if pos != len(body) {
		return nil, errors.New("trailing bytes after entries")
	}
	return sc, nil
}

// tryLoadSidecar attempts the indexed fast path for one segment: load
// its sidecar, verify it describes exactly the bytes on disk (size and
// tail CRC), and return an opened segment plus its entry table without
// reading the segment body. It mutates no store state, so Open runs it
// concurrently across segments; any defect — missing, unparseable,
// stale, or unreadable anything — returns nil, requesting the serial
// scan fallback (which will surface real I/O errors itself).
func tryLoadSidecar(path string) (*segment, []sidecarEntry) {
	idxData, err := os.ReadFile(sidecarPath(path))
	if err != nil {
		return nil, nil // missing or unreadable: scan
	}
	sc, err := parseSidecar(idxData)
	if err != nil {
		return nil, nil // corrupt: scan
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil
	}
	st, err := f.Stat()
	if err != nil || st.Size() != sc.segSize {
		// Stale: the segment grew, was torn, or was swapped since the
		// sidecar was written.
		f.Close()
		return nil, nil
	}
	tail := make([]byte, sc.tailLen)
	if _, err := f.ReadAt(tail, sc.segSize-sc.tailLen); err != nil {
		f.Close()
		return nil, nil
	}
	if crc32.ChecksumIEEE(tail) != sc.tailCRC {
		f.Close()
		return nil, nil
	}
	seg := newSegment(path, f, sc.segSize, "sidecar")
	seg.dead = sc.dead
	return seg, sc.entries
}

// writeSidecar atomically (re)writes segment si's sidecar from the live
// index. Callers hold s.mu (or own the store exclusively, as Open
// does). Only the newest segment's sidecar ever needs refreshing — its
// dead count and entry set are the segment's own, not affected by other
// segments — so this is called on rotation, Sync, Close, and after a
// scan fallback.
func (s *Store) writeSidecar(si int) error {
	var entries []sidecarEntry
	for k, r := range s.idx {
		if r.seg == si {
			entries = append(entries, sidecarEntry{key: k, off: r.off, rlen: int64(r.rlen)})
		}
	}
	return s.writeSidecarEntries(si, entries)
}

// writeSidecarEntries atomically (re)writes segment si's sidecar from an
// explicit entry table (which it offset-sorts in place); the scan
// fallback uses it at Open time, before the index exists.
func (s *Store) writeSidecarEntries(si int, entries []sidecarEntry) error {
	seg := s.segs[si]
	sort.Slice(entries, func(i, j int) bool { return entries[i].off < entries[j].off })
	data, err := buildSidecar(seg.f, seg.size, seg.dead, entries)
	if err != nil {
		return err
	}
	dst := sidecarPath(seg.path)
	if err := writeFileSync(dst+".tmp", data); err != nil {
		return err
	}
	return os.Rename(dst+".tmp", dst)
}

// buildSidecar encodes a sidecar for a segment data file of the given
// size, fingerprinting its tail window through f.
func buildSidecar(f *os.File, size, dead int64, entries []sidecarEntry) ([]byte, error) {
	tailLen := size
	if tailLen > sidecarTailWindow {
		tailLen = sidecarTailWindow
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, size-tailLen); err != nil {
		return nil, err
	}
	return appendSidecar(nil, &sidecar{
		segSize: size,
		tailLen: tailLen,
		tailCRC: crc32.ChecksumIEEE(tail),
		dead:    dead,
		entries: entries,
	}), nil
}

// writeFileSync writes data to path and fsyncs it before returning, so
// a subsequent rename publishes real bytes, not a hole.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}
