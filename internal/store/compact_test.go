package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillGarbage writes keys with heavy overwrites across many segments
// and returns the expected final contents.
func fillGarbage(t *testing.T, s *Store, keys, rounds int) map[string]string {
	t.Helper()
	want := make(map[string]string, keys)
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("key-%04d", i)
			v := fmt.Sprintf("round-%02d-%04d-%s", r, i, strings.Repeat("z", 40))
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
	}
	return want
}

func TestCompactReclaimsGarbage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 2048})
	want := fillGarbage(t, s, 32, 8)

	before := s.Stats()
	if before.DeadBytes == 0 || before.Segments < 4 {
		t.Fatalf("test store not garbage-heavy: %+v", before)
	}
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Reclaimed <= 0 || cs.BytesAfter >= cs.BytesBefore {
		t.Fatalf("compaction reclaimed nothing: %+v", cs)
	}
	if cs.LiveRecords != len(want) {
		t.Fatalf("carried %d records, want %d", cs.LiveRecords, len(want))
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("dead bytes after compaction: %+v", after)
	}
	if after.Compactions != 1 || after.ReclaimedBytes != uint64(cs.Reclaimed) {
		t.Fatalf("compaction counters: %+v", after)
	}
	// ≥90% of the dead space must actually be gone (the satellite
	// criterion); with whole-record rewrites the only overhead left is
	// fresh segment headers.
	if float64(cs.Reclaimed) < 0.9*float64(before.DeadBytes) {
		t.Fatalf("reclaimed %d of %d dead bytes", cs.Reclaimed, before.DeadBytes)
	}
	checkAll(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted store must reopen via sidecars, byte-correct.
	s2 := openT(t, dir, Options{MaxSegmentBytes: 2048})
	st := s2.Stats()
	if st.SidecarHits != uint64(st.Segments) {
		t.Fatalf("compacted store not sidecar-indexed: %+v", st)
	}
	checkAll(t, s2, want)
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCompactDuringPutLastWriteWins interleaves Puts with an in-flight
// compaction via the freeze hook: values written after the freeze must
// win over their compacted copies.
func TestCompactDuringPutLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 2048})
	want := fillGarbage(t, s, 32, 4)

	s.testHookAfterFreeze = func() {
		for i := 0; i < 16; i++ {
			k := fmt.Sprintf("key-%04d", i)
			v := fmt.Sprintf("post-freeze-%04d", i)
			if err := s.Put(k, []byte(v)); err != nil {
				t.Error(err)
			}
			want[k] = v
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	checkAll(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{MaxSegmentBytes: 2048})
	checkAll(t, s2, want)
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
}

// TestCompactConcurrent hammers the store with concurrent Puts and Gets
// while compactions run; meant for -race.
func TestCompactConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 4096})
	const keys = 64
	var mu sync.Mutex
	latest := make(map[string]string, keys)
	put := func(i, r int) {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("w-%04d-%06d", i, r)
		mu.Lock()
		// Hold the shadow-map lock across the Put so the recorded order
		// matches the store's write order.
		defer mu.Unlock()
		if err := s.Put(k, []byte(v)); err != nil {
			t.Error(err)
			return
		}
		latest[k] = v
	}
	for i := 0; i < keys; i++ {
		put(i, 0)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 1; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				put((w*17+r)%keys, r)
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%04d", (g*31+r)%keys)
				if _, _, err := s.Get(k); err != nil {
					t.Errorf("Get(%q): %v", k, err)
					return
				}
			}
		}(g)
	}
	for c := 0; c < 5; c++ {
		if _, err := s.Compact(); err != nil && err != ErrCompacting {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	checkAll(t, s, latest)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{MaxSegmentBytes: 4096})
	checkAll(t, s2, latest)
}

func TestAutoCompactTrigger(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{
		MaxSegmentBytes:     2048,
		CompactGarbageRatio: 0.5,
		CompactMinBytes:     1,
	})
	want := fillGarbage(t, s, 16, 16)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never fired: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let an in-flight compaction drain before checking contents.
	for {
		s.mu.RLock()
		busy := s.compacting || s.autoPending
		s.mu.RUnlock()
		if !busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.LastCompactError != "" {
		t.Fatalf("auto-compaction failed: %s", st.LastCompactError)
	}
	checkAll(t, s, want)
}

// TestCrashMidCompactionRecovery reconstructs every on-disk state a
// crash can leave between the swap's renames and deletes, and asserts
// Open serves every live key from each of them.
func TestCrashMidCompactionRecovery(t *testing.T) {
	// Build a garbage-heavy store and snapshot its pre-compaction
	// files, then compact a copy to obtain the compacted files.
	src := t.TempDir()
	s := openT(t, src, Options{MaxSegmentBytes: 2048})
	want := fillGarbage(t, s, 32, 8)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	compacted := t.TempDir()
	copyDir(t, src, compacted)
	s2 := openT(t, compacted, Options{MaxSegmentBytes: 2048})
	cs, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if cs.SegmentsAfter >= cs.SegmentsBefore {
		t.Fatalf("compaction did not shrink the prefix: %+v", cs)
	}

	oldSegs := globSorted(t, src, "seg-*.dlstore")
	newSegs := globSorted(t, compacted, "seg-*.dlstore")

	check := func(name string, build func(dir string)) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			build(dir)
			st := openT(t, dir, Options{MaxSegmentBytes: 2048})
			checkAll(t, st, want)
		})
	}

	check("tmps-only", func(dir string) {
		// Crash before any rename: old files plus compacted temp files.
		copyDir(t, src, dir)
		for i := 0; i < cs.SegmentsAfter; i++ {
			base := filepath.Base(newSegs[i])
			copyFile(t, newSegs[i], filepath.Join(dir, base+".tmp"))
			copyFile(t, sidecarPath(newSegs[i]), filepath.Join(dir, sidecarPath(base)+".tmp"))
		}
	})

	for n := 1; n <= cs.SegmentsAfter; n++ {
		n := n
		check(fmt.Sprintf("renamed-%d-data-only", n), func(dir string) {
			// Crash between a slot's data rename and its sidecar rename:
			// the stale sidecar must not be trusted.
			copyDir(t, src, dir)
			for i := 0; i < n; i++ {
				copyFile(t, newSegs[i], filepath.Join(dir, filepath.Base(newSegs[i])))
			}
		})
		check(fmt.Sprintf("renamed-%d", n), func(dir string) {
			copyDir(t, src, dir)
			for i := 0; i < n; i++ {
				copyFile(t, newSegs[i], filepath.Join(dir, filepath.Base(newSegs[i])))
				copyFile(t, sidecarPath(newSegs[i]),
					filepath.Join(dir, filepath.Base(sidecarPath(newSegs[i]))))
			}
		})
	}

	// Crash mid-delete: the swap completed (the compacted dir's state)
	// plus a contiguous suffix of leftover frozen segments that the
	// increasing-order delete had not reached.
	for from := cs.SegmentsAfter; from < cs.SegmentsBefore; from++ {
		from := from
		check(fmt.Sprintf("leftovers-from-%d", from), func(dir string) {
			copyDir(t, compacted, dir)
			for i := from; i < cs.SegmentsBefore; i++ {
				copyFile(t, oldSegs[i], filepath.Join(dir, filepath.Base(oldSegs[i])))
				copyFile(t, sidecarPath(oldSegs[i]),
					filepath.Join(dir, filepath.Base(sidecarPath(oldSegs[i]))))
			}
		})
	}
}

func globSorted(t *testing.T, dir, pat string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, pat))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no %s in %s", pat, dir)
	}
	return names
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		copyFile(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
	}
}
