// Package store is the persistent tier of the experiment-result cache:
// a content-addressed, crash-safe on-disk key/value store for encoded
// cell results. The address of a result is its complete cell
// configuration — the versioned runner cache key — so a store can be
// shared by every process (and, through `dynloop serve`, every client)
// that agrees on the key schema, and the millionth identical query
// costs one index lookup instead of one interpreter traversal.
//
// Layout: a directory of append-only segment files (seg-000001.dlstore,
// seg-000002.dlstore, ...), each
//
//	header:  magic "DLSTORE1\n"
//	records: uvarint bodyLen, 4-byte little-endian CRC32 (IEEE) of the
//	         body, body = uvarint recVersion, uvarint keyLen, key,
//	         uvarint valLen, val
//
// following the tracefile encoding discipline (varint framing, explicit
// magic, integrity checks, ErrCorrupt). Writes append whole records in
// a single write; the in-memory index (key → segment/offset, last write
// wins) is rebuilt by scanning the segments on Open. Crash safety falls
// out of the framing: a torn final record in the newest segment is
// truncated away on Open, while corruption anywhere earlier — bytes
// that were once durable — surfaces as ErrCorrupt rather than being
// silently skipped.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	magic = "DLSTORE1\n"
	// recVersion is the record-body schema version; readers reject
	// records from a future schema instead of misparsing them.
	recVersion = 1
	// DefaultMaxSegmentBytes is the segment size at which Put rotates to
	// a fresh segment file.
	DefaultMaxSegmentBytes = 64 << 20
	// maxRecordBytes bounds a single record allocation when scanning
	// untrusted files.
	maxRecordBytes = 64 << 20
)

// ErrCorrupt reports a malformed store segment (outside the torn tail
// of the newest segment, which Open repairs by truncation).
var ErrCorrupt = errors.New("store: corrupt segment")

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// Options tune a Store.
type Options struct {
	// MaxSegmentBytes rotates the active segment past this size;
	// 0 selects DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
}

// Stats are store-lifetime and on-disk counters.
type Stats struct {
	// Records is the number of live keys in the index.
	Records int
	// Segments is the number of segment files.
	Segments int
	// Bytes is the total on-disk size of all segments.
	Bytes int64
	// Puts and Gets count operations since Open; Hits counts Gets that
	// found their key.
	Puts, Gets, Hits uint64
	// TruncatedTail is the number of torn-tail bytes Open discarded
	// while recovering the newest segment.
	TruncatedTail int64
}

// ref locates one value inside a segment.
type ref struct {
	seg  int // index into Store.segs
	off  int64
	vlen int
}

// segment is one open segment file.
type segment struct {
	path string
	f    *os.File
	size int64
}

// Store is the on-disk result store. It is safe for concurrent use.
type Store struct {
	dir    string
	maxSeg int64

	mu     sync.RWMutex
	idx    map[string]ref
	segs   []*segment
	closed bool

	puts, gets, hits atomic.Uint64
	truncated        int64
}

// Open opens (creating if needed) the store in dir, scans every segment
// to rebuild the index, and recovers from a torn tail in the newest
// segment by truncating it at the last intact record.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	maxSeg := opts.MaxSegmentBytes
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dlstore"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	s := &Store{dir: dir, maxSeg: maxSeg, idx: make(map[string]ref)}
	for i, name := range names {
		last := i == len(names)-1
		if err := s.openSegment(name, last); err != nil {
			s.Close()
			return nil, err
		}
	}
	if len(s.segs) == 0 {
		if err := s.addSegment(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openSegment scans one existing segment into the index. last marks the
// newest segment, whose torn tail (an interrupted final write) is
// repaired by truncation; earlier segments must be fully intact.
func (s *Store) openSegment(path string, last bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	mSegScans.Inc()
	recs, good, err := ScanSegment(data)
	if err != nil {
		if !last || !errors.Is(err, errTorn) {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if good < int64(len(data)) {
		// Torn tail in the newest segment: drop the partial record so
		// the next Put appends a clean one.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return err
		}
		s.truncated += int64(len(data)) - good
		mTruncatedBytes.Add(uint64(int64(len(data)) - good))
	}
	if good < int64(len(magic)) {
		// The tear was inside the header itself; restore the magic so
		// the segment stays well-formed.
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			f.Close()
			return err
		}
		good = int64(len(magic))
	}
	seg := &segment{path: path, f: f, size: good}
	s.segs = append(s.segs, seg)
	si := len(s.segs) - 1
	for _, r := range recs {
		s.idx[r.Key] = ref{seg: si, off: r.ValOff, vlen: len(r.Val)}
	}
	return nil
}

// addSegment creates and opens the next empty segment file.
func (s *Store) addSegment() error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.dlstore", len(s.segs)+1))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return err
	}
	s.segs = append(s.segs, &segment{path: path, f: f, size: int64(len(magic))})
	return nil
}

// Put appends one key/value record and updates the index (last write
// wins). The record is written in a single write call so a crash leaves
// at worst one torn tail, never an half-indexed state.
func (s *Store) Put(key string, val []byte) error {
	body := make([]byte, 0, 2+10+len(key)+10+len(val))
	body = binary.AppendUvarint(body, recVersion)
	body = binary.AppendUvarint(body, uint64(len(key)))
	body = append(body, key...)
	body = binary.AppendUvarint(body, uint64(len(val)))
	body = append(body, val...)

	rec := make([]byte, 0, binary.MaxVarintLen64+4+len(body))
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	rec = append(rec, body...)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	active := s.segs[len(s.segs)-1]
	if active.size > int64(len(magic)) && active.size+int64(len(rec)) > s.maxSeg {
		if err := s.addSegment(); err != nil {
			return err
		}
		mRotations.Inc()
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return err
	}
	// The value sits at the end of the record.
	valOff := active.size + int64(len(rec)) - int64(len(val))
	active.size += int64(len(rec))
	s.idx[key] = ref{seg: len(s.segs) - 1, off: valOff, vlen: len(val)}
	s.puts.Add(1)
	mPuts.Inc()
	mPutBytes.Add(uint64(len(rec)))
	return nil
}

// Get returns the stored value for key, or ok=false when absent. The
// returned slice is freshly read and owned by the caller.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.gets.Add(1)
	mGets.Inc()
	r, ok := s.idx[key]
	if !ok {
		return nil, false, nil
	}
	s.hits.Add(1)
	mHits.Inc()
	val := make([]byte, r.vlen)
	if _, err := s.segs[r.seg].f.ReadAt(val, r.off); err != nil {
		return nil, false, fmt.Errorf("%w: reading %q: %v", ErrCorrupt, key, err)
	}
	return val, true, nil
}

// Has reports whether key is present, without reading the value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.idx[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Keys returns the live keys, sorted (for diagnostics and tests).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.idx))
	for k := range s.idx {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Records:       len(s.idx),
		Segments:      len(s.segs),
		Puts:          s.puts.Load(),
		Gets:          s.gets.Load(),
		Hits:          s.hits.Load(),
		TruncatedTail: s.truncated,
	}
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	return st
}

// Sync flushes all segments to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes every segment. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Record is one decoded segment record, for scans and tests.
type Record struct {
	Key string
	Val []byte
	// ValOff is the value's byte offset inside the segment file.
	ValOff int64
}

// errTorn distinguishes a cleanly-truncated tail (recoverable in the
// newest segment) from outright corruption (wrong magic, CRC mismatch,
// garbage framing mid-file).
var errTorn = errors.New("torn tail")

// ScanSegment decodes a whole segment image, returning the records it
// holds and the byte offset of the last intact record's end. A segment
// that simply stops mid-record (a torn append) returns errTorn with
// good marking the intact prefix; anything else malformed — bad magic,
// CRC mismatch, oversized framing, a record-version from the future —
// returns a hard error wrapping ErrCorrupt. It never panics and never
// returns a partially-decoded record.
func ScanSegment(data []byte) (recs []Record, good int64, err error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		// A short file can only be a torn header write if it is a strict
		// magic prefix.
		if len(data) < len(magic) && string(data) == magic[:len(data)] {
			return nil, 0, errTorn
		}
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	pos := int64(len(magic))
	for int(pos) < len(data) {
		rest := data[pos:]
		bodyLen, n := binary.Uvarint(rest)
		if n <= 0 {
			if len(rest) < binary.MaxVarintLen64 {
				return recs, pos, errTorn
			}
			return recs, pos, fmt.Errorf("%w: bad record length at %d", ErrCorrupt, pos)
		}
		if bodyLen > maxRecordBytes {
			return recs, pos, fmt.Errorf("%w: record length %d at %d", ErrCorrupt, bodyLen, pos)
		}
		if uint64(len(rest)) < uint64(n)+4+bodyLen {
			return recs, pos, errTorn
		}
		crc := binary.LittleEndian.Uint32(rest[n : n+4])
		body := rest[uint64(n)+4 : uint64(n)+4+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return recs, pos, fmt.Errorf("%w: CRC mismatch at %d", ErrCorrupt, pos)
		}
		rec, valOff, derr := decodeBody(body)
		if derr != nil {
			return recs, pos, fmt.Errorf("%w: record at %d: %v", ErrCorrupt, pos, derr)
		}
		rec.ValOff = pos + int64(n) + 4 + valOff
		recs = append(recs, rec)
		pos += int64(n) + 4 + int64(bodyLen)
	}
	return recs, pos, nil
}

// decodeBody parses one CRC-verified record body.
func decodeBody(body []byte) (Record, int64, error) {
	pos := 0
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bad %s", what)
		}
		pos += n
		return v, nil
	}
	ver, err := uv("record version")
	if err != nil {
		return Record{}, 0, err
	}
	if ver != recVersion {
		return Record{}, 0, fmt.Errorf("record version %d (this build reads %d)", ver, recVersion)
	}
	keyLen, err := uv("key length")
	if err != nil {
		return Record{}, 0, err
	}
	if keyLen > uint64(len(body)-pos) {
		return Record{}, 0, fmt.Errorf("key length %d exceeds body", keyLen)
	}
	key := string(body[pos : pos+int(keyLen)])
	pos += int(keyLen)
	valLen, err := uv("value length")
	if err != nil {
		return Record{}, 0, err
	}
	if valLen != uint64(len(body)-pos) {
		return Record{}, 0, fmt.Errorf("value length %d does not fill body (%d left)", valLen, len(body)-pos)
	}
	val := make([]byte, valLen)
	copy(val, body[pos:])
	return Record{Key: key, Val: val}, int64(pos), nil
}
