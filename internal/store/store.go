// Package store is the persistent tier of the experiment-result cache:
// a content-addressed, crash-safe on-disk key/value store for encoded
// cell results. The address of a result is its complete cell
// configuration — the versioned runner cache key — so a store can be
// shared by every process (and, through `dynloop serve`, every client)
// that agrees on the key schema, and the millionth identical query
// costs one index lookup instead of one interpreter traversal.
//
// Layout: a directory of append-only segment files (seg-000001.dlstore,
// seg-000002.dlstore, ...), each
//
//	header:  magic "DLSTORE1\n"
//	records: uvarint bodyLen, 4-byte little-endian CRC32 (IEEE) of the
//	         body, body = uvarint recVersion, uvarint keyLen, key,
//	         uvarint valLen, val
//
// following the tracefile encoding discipline (varint framing, explicit
// magic, integrity checks, ErrCorrupt). Writes append whole records in
// a single write; the in-memory index (key → segment/offset, last write
// wins) is rebuilt on Open. Each immutable segment carries an index
// sidecar (seg-000001.dlidx, see sidecar.go) so Open normally loads a
// compact key→offset table instead of scanning segment bytes; a
// missing, stale, or corrupt sidecar falls back to the full scan and is
// rewritten. Crash safety falls out of the framing: a torn final record
// in the newest segment is truncated away on Open (the stale sidecar is
// detected by its size/CRC fingerprint and rebuilt), while corruption
// anywhere earlier — bytes that were once durable — surfaces as
// ErrCorrupt rather than being silently skipped. Every Get re-verifies
// its record's CRC, so even a wrong-but-well-formed index can only turn
// a read into an error, never into silently wrong bytes.
//
// Superseded records are reclaimed by compaction (see compact.go):
// Store.Compact rewrites the live records of the frozen segment prefix
// into dense segments and atomically swaps them in; Options can arm a
// garbage-ratio auto-trigger.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	magic = "DLSTORE1\n"
	// recVersion is the record-body schema version; readers reject
	// records from a future schema instead of misparsing them.
	recVersion = 1
	// DefaultMaxSegmentBytes is the segment size at which Put rotates to
	// a fresh segment file.
	DefaultMaxSegmentBytes = 64 << 20
	// maxRecordBytes bounds a single record allocation when scanning
	// untrusted files.
	maxRecordBytes = 64 << 20
	// minRecordBytes is the smallest possible framed record: a 1-byte
	// length, the 4-byte CRC, and a 3-byte body (version, empty key,
	// empty value). Index entries claiming less are rejected.
	minRecordBytes = 8
	// DefaultCompactMinBytes is the store-size floor below which the
	// garbage-ratio auto-trigger never fires; tiny stores are not worth
	// a rewrite.
	DefaultCompactMinBytes = 1 << 20
)

// ErrCorrupt reports a malformed store segment (outside the torn tail
// of the newest segment, which Open repairs by truncation).
var ErrCorrupt = errors.New("store: corrupt segment")

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("store: closed")

// Options tune a Store.
type Options struct {
	// MaxSegmentBytes rotates the active segment past this size;
	// 0 selects DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// CompactGarbageRatio arms background auto-compaction: after a Put,
	// if superseded records make up more than this fraction (0 < ratio
	// ≤ 1) of the store's bytes and the store holds at least
	// CompactMinBytes, one background Compact is spawned. 0 disables
	// the trigger; Compact can always be called explicitly.
	CompactGarbageRatio float64
	// CompactMinBytes is the total-size floor for the auto-trigger;
	// 0 selects DefaultCompactMinBytes.
	CompactMinBytes int64
	// DisableSidecars makes Open ignore index sidecars and suppresses
	// writing them, so every Open pays the full segment scan. For
	// benchmarks and A/B diagnosis only.
	DisableSidecars bool
}

// Stats are store-lifetime and on-disk counters.
type Stats struct {
	// Records is the number of live keys in the index.
	Records int
	// Segments is the number of segment files.
	Segments int
	// Bytes is the total on-disk size of all segments.
	Bytes int64
	// DeadBytes is the portion of Bytes occupied by superseded records —
	// space a Compact would reclaim.
	DeadBytes int64
	// Puts and Gets count operations since Open; Hits counts Gets that
	// found their key.
	Puts, Gets, Hits uint64
	// TruncatedTail is the number of torn-tail bytes Open discarded
	// while recovering the newest segment.
	TruncatedTail int64
	// SidecarHits counts segments opened straight from a valid index
	// sidecar; SidecarRebuilds counts segments that had to be scanned
	// (sidecar missing, stale, or corrupt) and had their sidecar
	// rewritten.
	SidecarHits, SidecarRebuilds uint64
	// Compactions counts completed compactions; ReclaimedBytes is the
	// dead-record space they removed from disk.
	Compactions    uint64
	ReclaimedBytes uint64
	// LastCompactError reports the most recent auto-compaction failure,
	// if any ("" when healthy).
	LastCompactError string
}

// ref locates one record inside a segment.
type ref struct {
	seg  int   // index into Store.segs
	off  int64 // byte offset of the record's frame start
	rlen int   // full framed record length
}

// segment is one open segment file. The file handle is shared by
// readers that have released the store lock, so its lifetime is
// refcounted: the store holds one reference, each in-flight Get holds
// one more, and the file closes when the last reference drops (for
// compacted-away segments that can be long after retirement).
type segment struct {
	path string
	f    *os.File
	size int64
	dead int64  // bytes of superseded records residing in this segment
	how  string // how it was opened: "sidecar", "scan", "created", "compacted"
	refs atomic.Int64
}

func newSegment(path string, f *os.File, size int64, how string) *segment {
	seg := &segment{path: path, f: f, size: size, how: how}
	seg.refs.Store(1)
	return seg
}

func (g *segment) acquire() { g.refs.Add(1) }

func (g *segment) release() {
	if g.refs.Add(-1) == 0 {
		g.f.Close()
	}
}

// Store is the on-disk result store. It is safe for concurrent use.
type Store struct {
	dir    string
	maxSeg int64
	opts   Options

	mu          sync.RWMutex
	idx         map[string]ref
	segs        []*segment
	nextSeq     int // next segment file number (monotonic across compactions)
	closed      bool
	dirty       bool // the active segment's on-disk sidecar is behind its index
	compacting  bool // a Compact holds the store in its freeze/swap window
	autoPending bool // an auto-triggered Compact is scheduled or running
	compactErr  error

	puts, gets, hits             atomic.Uint64
	truncated                    int64
	sidecarHits, sidecarRebuilds atomic.Uint64
	compactions                  atomic.Uint64
	reclaimed                    atomic.Uint64

	// testHookAfterFreeze, when set, runs after Compact's freeze phase
	// releases the lock — tests use it to interleave Puts
	// deterministically with an in-flight compaction.
	testHookAfterFreeze func()
}

// Open opens (creating if needed) the store in dir and rebuilds the
// index: from each segment's index sidecar when one is present and
// matches the segment (size and tail CRC), otherwise by scanning the
// segment bytes and rewriting the sidecar. A torn tail in the newest
// segment is recovered by truncating it at the last intact record.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	maxSeg := opts.MaxSegmentBytes
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	// Temp files are in-flight compaction output that never got
	// renamed into place; they are not part of the durable store.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "seg-*.tmp")); len(tmps) > 0 {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dlstore"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	s := &Store{dir: dir, maxSeg: maxSeg, opts: opts, idx: make(map[string]ref), nextSeq: 1}
	for _, name := range names {
		if n, ok := segSeq(name); ok && n >= s.nextSeq {
			s.nextSeq = n + 1
		}
	}
	// Load every segment's live-entry table — from its sidecar when the
	// fingerprint matches, by scanning otherwise — then build the index
	// newest-first with insert-if-absent: the map is pre-sized once, a
	// live key costs one insert, and a superseded entry costs one probe
	// (and is charged to its segment's dead-byte count).
	//
	// Sidecar loads are independent small-file reads, so they run
	// concurrently; segments whose sidecar does not check out fall back
	// to the serial scan below (recovery is kept simple — parallel
	// whole-segment scans would just contend for I/O).
	loaded := make([]struct {
		seg     *segment
		entries []sidecarEntry
	}, len(names))
	if !opts.DisableSidecars {
		var wg sync.WaitGroup
		sem := make(chan struct{}, 8)
		for i, name := range names {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				loaded[i].seg, loaded[i].entries = tryLoadSidecar(name)
			}(i, name)
		}
		wg.Wait()
	}
	tables := make([][]sidecarEntry, 0, len(names))
	total := 0
	for i, name := range names {
		var entries []sidecarEntry
		if ld := loaded[i]; ld.seg != nil {
			s.segs = append(s.segs, ld.seg)
			entries = ld.entries
			s.sidecarHits.Add(1)
			mSidecarHits.Inc()
		} else {
			var err error
			entries, err = s.scanSegmentFile(name, i == len(names)-1)
			if err != nil {
				// Release installed segments and the parallel-loaded ones
				// that never got installed.
				for _, ld := range loaded[i+1:] {
					if ld.seg != nil {
						ld.seg.f.Close()
					}
				}
				s.closeOnError()
				return nil, err
			}
		}
		tables = append(tables, entries)
		total += len(entries)
	}
	s.idx = make(map[string]ref, total)
	for si := len(tables) - 1; si >= 0; si-- {
		if si == len(tables)-1 {
			// Nothing is newer than the last segment, so its whole table
			// is live: install it without the existence probe.
			for _, e := range tables[si] {
				s.idx[e.key] = ref{seg: si, off: e.off, rlen: int(e.rlen)}
			}
			continue
		}
		for _, e := range tables[si] {
			if _, exists := s.idx[e.key]; exists {
				s.segs[si].dead += e.rlen
			} else {
				s.idx[e.key] = ref{seg: si, off: e.off, rlen: int(e.rlen)}
			}
		}
	}
	// A sidecar whose segment is gone (a compaction died between its
	// deletes) is an orphan; sweep it so the directory stays
	// self-describing.
	if idxNames, _ := filepath.Glob(filepath.Join(dir, "seg-*.dlidx")); len(idxNames) > 0 {
		for _, p := range idxNames {
			if _, err := os.Stat(segForSidecar(p)); os.IsNotExist(err) {
				os.Remove(p)
			}
		}
	}
	if len(s.segs) == 0 {
		if err := s.addSegment(); err != nil {
			return nil, err
		}
	}
	mOpenSeconds.Observe(time.Since(start).Seconds())
	return s, nil
}

// segSeq parses the sequence number out of a segment file name.
func segSeq(path string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(filepath.Base(path), "seg-%d.dlstore", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// scanSegmentFile is the fallback (and sidecar-disabled) load path: scan
// the segment bytes and rewrite its sidecar. last marks the newest
// segment, whose torn tail (an interrupted final write) is repaired by
// truncation; earlier segments must be fully intact.
func (s *Store) scanSegmentFile(path string, last bool) ([]sidecarEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mSegScans.Inc()
	recs, good, err := ScanSegment(data)
	if err != nil {
		if !last || !errors.Is(err, errTorn) {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if good < int64(len(data)) {
		// Torn tail in the newest segment: drop the partial record so
		// the next Put appends a clean one.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, err
		}
		s.truncated += int64(len(data)) - good
		mTruncatedBytes.Add(uint64(int64(len(data)) - good))
	}
	if good < int64(len(magic)) {
		// The tear was inside the header itself; restore the magic so
		// the segment stays well-formed.
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			f.Close()
			return nil, err
		}
		good = int64(len(magic))
	}
	// Collapse within-segment duplicates, last occurrence winning, and
	// count the superseded bytes as the segment's own dead space.
	liveAt := make(map[string]int, len(recs))
	entries := make([]sidecarEntry, 0, len(recs))
	var dead int64
	for _, r := range recs {
		e := sidecarEntry{key: r.Key, off: r.Off, rlen: int64(r.Len)}
		if j, ok := liveAt[r.Key]; ok {
			dead += entries[j].rlen
			entries[j] = e
		} else {
			liveAt[r.Key] = len(entries)
			entries = append(entries, e)
		}
	}
	seg := newSegment(path, f, good, "scan")
	seg.dead = dead
	s.segs = append(s.segs, seg)
	if !s.opts.DisableSidecars {
		// Scan-and-rewrite: persist what the scan just recovered so the
		// next Open takes the indexed path. Best effort — a failed write
		// costs the next Open one more scan.
		if s.writeSidecarEntries(len(s.segs)-1, entries) == nil {
			s.sidecarRebuilds.Add(1)
			mSidecarRebuilds.Inc()
		}
	}
	return entries, nil
}

// closeOnError abandons a partially-opened store: segment handles are
// released without writing sidecars, since the index they would be
// derived from has not been built.
func (s *Store) closeOnError() {
	s.closed = true
	for _, seg := range s.segs {
		seg.release()
	}
}

// indexRecord installs one record in the index, charging the record it
// supersedes (if any) to that record's segment dead-byte count.
func (s *Store) indexRecord(key string, r ref) {
	if old, ok := s.idx[key]; ok {
		s.segs[old.seg].dead += int64(old.rlen)
	}
	s.idx[key] = r
}

// addSegment creates and opens the next empty segment file.
func (s *Store) addSegment() error {
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%06d.dlstore", s.nextSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return err
	}
	s.nextSeq++
	s.segs = append(s.segs, newSegment(path, f, int64(len(magic)), "created"))
	s.dirty = true // the fresh segment has no sidecar yet
	return nil
}

// rotateLocked freezes the active segment — persisting its index
// sidecar, since the segment is immutable from here on — and opens a
// fresh one.
func (s *Store) rotateLocked() error {
	if !s.opts.DisableSidecars {
		// Best effort: a missing sidecar costs the next Open one scan.
		s.writeSidecar(len(s.segs) - 1)
	}
	if err := s.addSegment(); err != nil {
		return err
	}
	mRotations.Inc()
	return nil
}

// encodeRecord frames one key/value record.
func encodeRecord(key string, val []byte) []byte {
	body := make([]byte, 0, 2+10+len(key)+10+len(val))
	body = binary.AppendUvarint(body, recVersion)
	body = binary.AppendUvarint(body, uint64(len(key)))
	body = append(body, key...)
	body = binary.AppendUvarint(body, uint64(len(val)))
	body = append(body, val...)

	rec := make([]byte, 0, binary.MaxVarintLen64+4+len(body))
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	return append(rec, body...)
}

// Put appends one key/value record and updates the index (last write
// wins). The record is written in a single write call so a crash leaves
// at worst one torn tail, never an half-indexed state.
func (s *Store) Put(key string, val []byte) error {
	rec := encodeRecord(key, val)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	active := s.segs[len(s.segs)-1]
	if active.size > int64(len(magic)) && active.size+int64(len(rec)) > s.maxSeg {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return err
	}
	off := active.size
	active.size += int64(len(rec))
	s.indexRecord(key, ref{seg: len(s.segs) - 1, off: off, rlen: len(rec)})
	s.dirty = true
	s.puts.Add(1)
	mPuts.Inc()
	mPutBytes.Add(uint64(len(rec)))
	s.maybeAutoCompactLocked()
	return nil
}

// maybeAutoCompactLocked spawns one background Compact when the
// configured garbage ratio is exceeded. Callers hold s.mu.
func (s *Store) maybeAutoCompactLocked() {
	ratio := s.opts.CompactGarbageRatio
	if ratio <= 0 || s.compacting || s.autoPending {
		return
	}
	var total, dead int64
	for _, seg := range s.segs {
		total += seg.size
		dead += seg.dead
	}
	floor := s.opts.CompactMinBytes
	if floor <= 0 {
		floor = DefaultCompactMinBytes
	}
	if total < floor || float64(dead) < ratio*float64(total) {
		return
	}
	s.autoPending = true
	go func() {
		_, err := s.Compact()
		s.mu.Lock()
		s.autoPending = false
		if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrCompacting) {
			s.compactErr = err
		}
		s.mu.Unlock()
	}()
}

// Get returns the stored value for key, or ok=false when absent. The
// returned slice is freshly read and owned by the caller. The read
// happens outside the store lock (the segment handle is pinned by a
// reference count), so Gets overlap Puts and each other; the record's
// CRC and key are re-verified on the way out, so a bad index entry —
// however it arose — surfaces as ErrCorrupt, never as wrong bytes.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	s.gets.Add(1)
	mGets.Inc()
	r, ok := s.idx[key]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	seg := s.segs[r.seg]
	seg.acquire()
	s.mu.RUnlock()
	defer seg.release()
	s.hits.Add(1)
	mHits.Inc()
	buf := make([]byte, r.rlen)
	if _, err := seg.f.ReadAt(buf, r.off); err != nil {
		return nil, false, fmt.Errorf("%w: reading %q: %v", ErrCorrupt, key, err)
	}
	val, err := recordValue(buf, key, seg.how == "sidecar")
	if err != nil {
		return nil, false, fmt.Errorf("%w: reading %q: %v", ErrCorrupt, key, err)
	}
	return val, true, nil
}

// recordValue extracts key's value from one framed record without
// materializing a Record (the Get fast path: no key-string allocation).
// Reads through a sidecar-built index verify the CRC — those segment
// bytes were never scanned; reads from segments this process scanned or
// wrote skip the checksum Open (or the write path) already established.
// The record's key is always compared, so a bad index entry — however
// it arose — surfaces as an error, never as wrong bytes.
func recordValue(buf []byte, key string, checkCRC bool) ([]byte, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 || bodyLen > maxRecordBytes || uint64(len(buf)) != uint64(n)+4+bodyLen {
		return nil, errors.New("bad record framing")
	}
	body := buf[uint64(n)+4:]
	if checkCRC {
		crc := binary.LittleEndian.Uint32(buf[n : n+4])
		if crc32.ChecksumIEEE(body) != crc {
			return nil, errors.New("CRC mismatch")
		}
	}
	ver, n := binary.Uvarint(body)
	if n <= 0 || ver != recVersion {
		return nil, fmt.Errorf("record version %d", ver)
	}
	pos := n
	keyLen, n := binary.Uvarint(body[pos:])
	if n <= 0 || keyLen > uint64(len(body)-pos-n) {
		return nil, errors.New("bad key length")
	}
	pos += n
	if string(body[pos:pos+int(keyLen)]) != key {
		return nil, fmt.Errorf("record holds key %q", body[pos:pos+int(keyLen)])
	}
	pos += int(keyLen)
	valLen, n := binary.Uvarint(body[pos:])
	if n <= 0 || uint64(pos+n)+valLen != uint64(len(body)) {
		return nil, errors.New("bad value length")
	}
	pos += n
	return body[pos : pos+int(valLen)], nil
}

// Has reports whether key is present, without reading the value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.idx[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Keys returns the live keys, sorted (for diagnostics and tests).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.idx))
	for k := range s.idx {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SegmentInfo describes one segment for diagnostics (`dynloop store ls`).
type SegmentInfo struct {
	Path    string
	Records int   // live keys resolving into this segment
	Bytes   int64 // on-disk size
	Dead    int64 // bytes of superseded records
	How     string
}

// Segments returns a per-segment snapshot, oldest first.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SegmentInfo, len(s.segs))
	for i, seg := range s.segs {
		out[i] = SegmentInfo{Path: seg.path, Bytes: seg.size, Dead: seg.dead, How: seg.how}
	}
	for _, r := range s.idx {
		out[r.seg].Records++
	}
	return out
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Records:         len(s.idx),
		Segments:        len(s.segs),
		Puts:            s.puts.Load(),
		Gets:            s.gets.Load(),
		Hits:            s.hits.Load(),
		TruncatedTail:   s.truncated,
		SidecarHits:     s.sidecarHits.Load(),
		SidecarRebuilds: s.sidecarRebuilds.Load(),
		Compactions:     s.compactions.Load(),
		ReclaimedBytes:  s.reclaimed.Load(),
	}
	if s.compactErr != nil {
		st.LastCompactError = s.compactErr.Error()
	}
	for _, seg := range s.segs {
		st.Bytes += seg.size
		st.DeadBytes += seg.dead
	}
	return st
}

// Sync flushes all segments to stable storage and refreshes the active
// segment's index sidecar (immutable segments' sidecars are already
// current).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil {
			return err
		}
	}
	if !s.opts.DisableSidecars && s.dirty {
		if err := s.writeSidecar(len(s.segs) - 1); err != nil {
			return err
		}
		s.dirty = false
	}
	return nil
}

// Close syncs every segment, persists the active segment's sidecar, and
// drops the store's segment references; each segment file closes once
// its last in-flight read drains. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	if !s.opts.DisableSidecars && s.dirty && len(s.segs) > 0 && first == nil {
		if first = s.writeSidecar(len(s.segs) - 1); first == nil {
			s.dirty = false
		}
	}
	for _, seg := range s.segs {
		seg.release()
	}
	return first
}

// Record is one decoded segment record, for scans and tests.
type Record struct {
	Key string
	Val []byte
	// ValOff is the value's byte offset inside the segment file.
	ValOff int64
	// Off and Len frame the whole record (the slice the index points at).
	Off int64
	Len int
}

// errTorn distinguishes a cleanly-truncated tail (recoverable in the
// newest segment) from outright corruption (wrong magic, CRC mismatch,
// garbage framing mid-file).
var errTorn = errors.New("torn tail")

// ScanSegment decodes a whole segment image, returning the records it
// holds and the byte offset of the last intact record's end. A segment
// that simply stops mid-record (a torn append) returns errTorn with
// good marking the intact prefix; anything else malformed — bad magic,
// CRC mismatch, oversized framing, a record-version from the future —
// returns a hard error wrapping ErrCorrupt. It never panics and never
// returns a partially-decoded record.
func ScanSegment(data []byte) (recs []Record, good int64, err error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		// A short file can only be a torn header write if it is a strict
		// magic prefix.
		if len(data) < len(magic) && string(data) == magic[:len(data)] {
			return nil, 0, errTorn
		}
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	pos := int64(len(magic))
	for int(pos) < len(data) {
		rest := data[pos:]
		bodyLen, n := binary.Uvarint(rest)
		if n <= 0 {
			if len(rest) < binary.MaxVarintLen64 {
				return recs, pos, errTorn
			}
			return recs, pos, fmt.Errorf("%w: bad record length at %d", ErrCorrupt, pos)
		}
		if bodyLen > maxRecordBytes {
			return recs, pos, fmt.Errorf("%w: record length %d at %d", ErrCorrupt, bodyLen, pos)
		}
		if uint64(len(rest)) < uint64(n)+4+bodyLen {
			return recs, pos, errTorn
		}
		crc := binary.LittleEndian.Uint32(rest[n : n+4])
		body := rest[uint64(n)+4 : uint64(n)+4+bodyLen]
		if crc32.ChecksumIEEE(body) != crc {
			return recs, pos, fmt.Errorf("%w: CRC mismatch at %d", ErrCorrupt, pos)
		}
		rec, valOff, derr := decodeBody(body)
		if derr != nil {
			return recs, pos, fmt.Errorf("%w: record at %d: %v", ErrCorrupt, pos, derr)
		}
		rec.ValOff = pos + int64(n) + 4 + valOff
		rec.Off = pos
		rec.Len = n + 4 + int(bodyLen)
		recs = append(recs, rec)
		pos += int64(n) + 4 + int64(bodyLen)
	}
	return recs, pos, nil
}

// decodeRecord parses exactly one framed record, as delimited by an
// index entry, verifying the frame fills the buffer and the CRC holds.
func decodeRecord(buf []byte) (Record, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, errors.New("bad record length")
	}
	if bodyLen > maxRecordBytes {
		return Record{}, fmt.Errorf("record length %d", bodyLen)
	}
	if uint64(len(buf)) != uint64(n)+4+bodyLen {
		return Record{}, errors.New("record does not fill its index extent")
	}
	crc := binary.LittleEndian.Uint32(buf[n : n+4])
	body := buf[uint64(n)+4:]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, errors.New("CRC mismatch")
	}
	rec, valOff, err := decodeBody(body)
	if err != nil {
		return Record{}, err
	}
	rec.ValOff = int64(n) + 4 + valOff
	rec.Len = len(buf)
	return rec, nil
}

// decodeBody parses one CRC-verified record body.
func decodeBody(body []byte) (Record, int64, error) {
	pos := 0
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bad %s", what)
		}
		pos += n
		return v, nil
	}
	ver, err := uv("record version")
	if err != nil {
		return Record{}, 0, err
	}
	if ver != recVersion {
		return Record{}, 0, fmt.Errorf("record version %d (this build reads %d)", ver, recVersion)
	}
	keyLen, err := uv("key length")
	if err != nil {
		return Record{}, 0, err
	}
	if keyLen > uint64(len(body)-pos) {
		return Record{}, 0, fmt.Errorf("key length %d exceeds body", keyLen)
	}
	key := string(body[pos : pos+int(keyLen)])
	pos += int(keyLen)
	valLen, err := uv("value length")
	if err != nil {
		return Record{}, 0, err
	}
	if valLen != uint64(len(body)-pos) {
		return Record{}, 0, fmt.Errorf("value length %d does not fill body (%d left)", valLen, len(body)-pos)
	}
	val := make([]byte, valLen)
	copy(val, body[pos:])
	return Record{Key: key, Val: val}, int64(pos), nil
}
