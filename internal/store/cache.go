package store

import (
	"errors"
	"sync/atomic"

	"dynloop/internal/codec"
)

// Cache adapts a Store to the runner's pluggable second cache tier
// (runner.Cache): values cross the boundary through the codec registry,
// so only results with a registered stable binary form persist — and a
// stored frame whose kind or schema version no longer matches simply
// reads as a miss-with-error, which the runner recomputes and
// overwrites. Values whose type has no codec registration are skipped
// silently on Put (counted in Skipped): an unregistered result is not
// an error, it is just not persistable yet.
type Cache struct {
	s       *Store
	skipped atomic.Uint64
}

// NewCache wraps s for use as a runner.Cache.
func NewCache(s *Store) *Cache { return &Cache{s: s} }

// Store returns the underlying store.
func (c *Cache) Store() *Store { return c.s }

// Skipped counts Puts dropped because the value's type has no codec
// registration.
func (c *Cache) Skipped() uint64 { return c.skipped.Load() }

// Get fetches and decodes key's result. Decode failures (corrupt frame,
// unknown kind, version skew) return the error with ok=false: the tier
// above treats the entry as missing and recomputes.
func (c *Cache) Get(key string) (any, bool, error) {
	b, ok, err := c.s.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := codec.Decode(b)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Put encodes and persists key's result.
func (c *Cache) Put(key string, v any) error {
	b, err := codec.Encode(v)
	if err != nil {
		if errors.Is(err, codec.ErrUnregistered) {
			c.skipped.Add(1)
			return nil
		}
		return err
	}
	return c.s.Put(key, b)
}
