package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte{}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("k1")
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get k1 = %q, %v, %v", v, ok, err)
	}
	v, ok, err = s.Get("k2")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get k2 = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := s.Get("absent"); ok {
		t.Fatal("Get(absent) = ok")
	}
	st := s.Stats()
	if st.Records != 2 || st.Puts != 2 || st.Gets != 3 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLastWriteWinsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Store) {
		t.Helper()
		v, ok, err := s.Get("k")
		if err != nil || !ok || string(v) != "v2" {
			t.Fatalf("Get k = %q, %v, %v (want v2)", v, ok, err)
		}
		if s.Len() != 1 {
			t.Fatalf("Len = %d", s.Len())
		}
	}
	check(s)
	s.Close()
	check(openT(t, dir, Options{}))
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 256})
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	s.Close()

	// Every key survives a reopen across segments.
	s2 := openT(t, dir, Options{MaxSegmentBytes: 256})
	for i := 0; i < 10; i++ {
		v, ok, err := s2.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("k%02d after reopen: %v %v", i, ok, err)
		}
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.dlstore"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	return names[len(names)-1]
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("good", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("this record will be cut")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final record mid-way: a crash between write and rename of
	// the torn tail.
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if _, ok, _ := s2.Get("torn"); ok {
		t.Fatal("torn record survived recovery")
	}
	v, ok, err := s2.Get("good")
	if err != nil || !ok || string(v) != "intact" {
		t.Fatalf("good record lost in recovery: %q %v %v", v, ok, err)
	}
	if st := s2.Stats(); st.TruncatedTail == 0 {
		t.Fatalf("TruncatedTail not reported: %+v", st)
	}
	// The store stays writable after recovery, and the recovered state
	// survives another reopen cleanly.
	if err := s2.Put("after", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir, Options{})
	if st := s3.Stats(); st.TruncatedTail != 0 {
		t.Fatalf("second open still truncating: %+v", st)
	}
	if v, ok, _ := s3.Get("after"); !ok || string(v) != "ok" {
		t.Fatal("post-recovery write lost")
	}
}

func TestCorruptionMidFileIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's body: durable bytes changed
	// under us — that is corruption, not a torn tail, and must not be
	// silently repaired.
	data[len(magic)+7] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestBadMagicIsAnError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.dlstore"), []byte("NOTASTORE\nxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestVersionSkewedRecordIsAnError: a record written by a future store
// schema must fail the scan, never misparse.
func TestVersionSkewedRecordIsAnError(t *testing.T) {
	body := binary.AppendUvarint(nil, recVersion+1)
	body = binary.AppendUvarint(body, 1)
	body = append(body, 'k')
	body = binary.AppendUvarint(body, 1)
	body = append(body, 'v')
	rec := binary.AppendUvarint([]byte(magic), uint64(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	rec = append(rec, body...)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.dlstore"), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir(), Options{MaxSegmentBytes: 1 << 12})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				v, ok, err := s.Get(key)
				if err != nil || !ok || string(v) != key {
					t.Errorf("Get %s = %q %v %v", key, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

func TestClosedStore(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// FuzzScanSegment: the record decoder must classify ANY byte stream as
// (records, torn tail) or ErrCorrupt — never panic, never return a
// record it did not fully verify, and always report a consistent good
// offset so recovery can truncate.
func FuzzScanSegment(f *testing.F) {
	mk := func(puts ...string) []byte {
		dir := f.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i, v := range puts {
			if err := s.Put(fmt.Sprintf("key%d", i), []byte(v)); err != nil {
				f.Fatal(err)
			}
		}
		s.Close()
		names, _ := filepath.Glob(filepath.Join(dir, "seg-*.dlstore"))
		data, err := os.ReadFile(names[0])
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(mk())
	f.Add(mk("hello", "world"))
	f.Add([]byte(magic))
	f.Add([]byte("DLSTORE1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := ScanSegment(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		if err == nil && good != int64(len(data)) {
			t.Fatalf("nil error but only %d of %d bytes consumed", good, len(data))
		}
		for _, r := range recs {
			if r.ValOff < 0 || r.ValOff+int64(len(r.Val)) > good {
				t.Fatalf("record %q value [%d,+%d) outside verified prefix %d",
					r.Key, r.ValOff, len(r.Val), good)
			}
		}
	})
}
