// Package builder is a structured code generator for the substrate ISA.
//
// Workload profiles (internal/workload) and property tests compose loops,
// conditionals, calls and straight-line work through this DSL instead of
// writing raw instruction slices. The builder:
//
//   - lays out main code first, then function bodies, patching forward
//     branches and call targets;
//   - materialises counted loops in the do-while shape the paper's
//     detector expects (backward closing branch at the bottom);
//   - keeps each loop's trip counter in a private static memory slot (or
//     on a software stack for loops inside recursive functions), so any
//     nesting and call structure is safe;
//   - records ground-truth loop descriptors so tests can compare the
//     dynamic detector against the static structure.
//
// Register conventions: r0 is kept zero, r1 is the transient trip-counter
// scratch, r28 the condition scratch, r29 the software-stack pointer,
// r24–r27 are workload base registers, and r12–r23 are free for workload
// data and straight-line work.
package builder

import (
	"errors"
	"fmt"

	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/program"
)

// Well-known registers of the builder's convention.
const (
	// RegZero is kept architecturally zero.
	RegZero isa.Reg = 0
	// RegCounter is the transient loop-counter scratch.
	RegCounter isa.Reg = 1
	// RegCond is the conditional scratch used by IfSeq and WhileSeq.
	RegCond isa.Reg = 28
	// RegSP is the software stack pointer used by recursion-safe loops.
	RegSP isa.Reg = 29
)

// Memory-layout constants of generated programs.
const (
	// slotBase is where static per-loop counter slots start.
	slotBase = 1 << 20
	// StackBase is the initial value of the software stack pointer.
	StackBase = 1 << 24
	// HeapBase is the start of the workload data region.
	HeapBase = 1 << 28
)

// SeqFactory builds a fresh instance of an input sequence. Units store
// factories, not live sequences, so every CPU created from a Unit replays
// identical input data.
type SeqFactory func() interp.Sequence

// Unit is a built program plus the input-sequence factories it needs.
type Unit struct {
	// Prog is the validated program.
	Prog *program.Program
	// Seqs maps sequence ids to factories.
	Seqs map[int64]SeqFactory
	// Loops describes every loop the builder emitted (ground truth).
	Loops []LoopInfo
}

// NewCPU returns a CPU with the program loaded, fresh sequences bound and
// builder invariants (zero register, stack pointer) established.
func (u *Unit) NewCPU() *interp.CPU {
	c := interp.New(u.Prog)
	for id, f := range u.Seqs {
		c.BindSeq(id, f())
	}
	return c
}

// LoopInfo is the static ground truth for one emitted loop.
type LoopInfo struct {
	// ID numbers loops in emission order.
	ID int
	// Head is the loop target address T.
	Head isa.Addr
	// Latch is the address of the closing backward branch (the static B).
	Latch isa.Addr
	// Guarded reports whether a zero-trip guard precedes the loop.
	Guarded bool
	// Depth is the static nesting depth within its emission context
	// (0 = outermost).
	Depth int
}

// Trip says where a counted loop's trip count comes from.
type Trip struct {
	kind tripKind
	seq  int64
	reg  isa.Reg
	imm  int64
}

type tripKind uint8

const (
	tripSeq tripKind = iota
	tripReg
	tripImm
)

// TripSeq draws the trip count from sequence id at every execution.
func TripSeq(id int64) Trip { return Trip{kind: tripSeq, seq: id} }

// TripReg takes the trip count from a register at loop entry.
func TripReg(r isa.Reg) Trip { return Trip{kind: tripReg, reg: r} }

// TripImm uses a constant trip count.
func TripImm(n int64) Trip { return Trip{kind: tripImm, imm: n} }

// LoopOpt tunes CountedLoop emission.
type LoopOpt struct {
	// Guarded emits a zero-trip guard before the loop (while-style).
	Guarded bool
	// RecursiveSafe keeps the trip counter on the software stack so the
	// loop survives re-entrant (recursive) activation.
	RecursiveSafe bool
}

// FuncRef names a declared function.
type FuncRef struct{ id int }

type funcDef struct {
	name    string
	body    func()
	defined bool
	addr    isa.Addr
	emitted bool
	calls   []isa.Addr // call sites to patch
}

type loopCtx struct {
	exitFixups *[]isa.Addr
	latchAddr  *isa.Addr // for Continue; nil until latch emitted (Continue uses fixup list)
	contFixups *[]isa.Addr
	recursive  bool
	info       int // index into loops
}

// Builder accumulates a program. Create with New, emit through the
// structured methods, then call Build.
type Builder struct {
	name    string
	seed    uint64
	code    []isa.Instr
	symbols map[isa.Addr]string
	seqs    map[int64]SeqFactory
	nextSeq int64

	funcs     []*funcDef
	loopStack []loopCtx
	loops     []LoopInfo
	nextSlot  int64

	inFunc bool
	errs   []error
}

// New returns a Builder for a program with the given name. The seed
// deterministically derives all sequence seeds.
func New(name string, seed uint64) *Builder {
	b := &Builder{
		name:     name,
		seed:     seed,
		symbols:  make(map[isa.Addr]string),
		seqs:     make(map[int64]SeqFactory),
		nextSlot: slotBase,
	}
	// Establish conventions: r0 = 0, software stack pointer.
	b.emit(isa.MovI(RegZero, 0))
	b.emit(isa.MovI(RegSP, StackBase))
	return b
}

// errf records a construction error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("builder %q: "+format, append([]any{b.name}, args...)...))
}

func (b *Builder) emit(in isa.Instr) isa.Addr {
	a := isa.Addr(len(b.code))
	b.code = append(b.code, in)
	return a
}

// Emit appends a raw instruction and returns its address. Prefer the
// structured methods; Emit exists for tests that need unstructured shapes
// (overlapped loops, multiple closing branches).
func (b *Builder) Emit(in isa.Instr) isa.Addr { return b.emit(in) }

// Here returns the address the next instruction will get.
func (b *Builder) Here() isa.Addr { return isa.Addr(len(b.code)) }

// Label attaches a symbol to the next instruction's address.
func (b *Builder) Label(name string) { b.symbols[b.Here()] = name }

// SeedFor derives a per-purpose RNG seed from the builder's base seed, so
// workloads get decorrelated but reproducible streams.
func (b *Builder) SeedFor(purpose int64) uint64 {
	x := b.seed ^ uint64(purpose)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x | 1
}

// NewSeq registers a sequence factory and returns its id.
func (b *Builder) NewSeq(f SeqFactory) int64 {
	id := b.nextSeq
	b.nextSeq++
	b.seqs[id] = f
	return id
}

// ConstSeq registers a constant sequence.
func (b *Builder) ConstSeq(v int64) int64 {
	return b.NewSeq(func() interp.Sequence { return interp.Const(v) })
}

// CounterSeq registers an arithmetic sequence start, start+stride, ...
func (b *Builder) CounterSeq(start, stride int64) int64 {
	return b.NewSeq(func() interp.Sequence { return interp.Counter(start, stride) })
}

// CycleSeq registers a sequence cycling over vals.
func (b *Builder) CycleSeq(vals ...int64) int64 {
	return b.NewSeq(func() interp.Sequence { return interp.Cycle(vals...) })
}

// UniformSeq registers a uniform sequence in [lo, hi].
func (b *Builder) UniformSeq(lo, hi int64) int64 {
	id := b.nextSeq // capture before NewSeq increments
	seed := b.SeedFor(1000 + id)
	return b.NewSeq(func() interp.Sequence { return interp.Uniform(lo, hi, seed) })
}

// GeometricSeq registers a geometric sequence with minimum min and
// continuation probability p.
func (b *Builder) GeometricSeq(min int64, p float64, limit int64) int64 {
	id := b.nextSeq
	seed := b.SeedFor(2000 + id)
	return b.NewSeq(func() interp.Sequence { return interp.Geometric(min, p, limit, seed) })
}

// BernoulliSeq registers a 0/1 sequence that yields 1 with probability p.
func (b *Builder) BernoulliSeq(p float64) int64 {
	id := b.nextSeq
	seed := b.SeedFor(3000 + id)
	w1 := int64(p * 1000)
	if w1 < 0 {
		w1 = 0
	}
	if w1 > 1000 {
		w1 = 1000
	}
	w0 := 1000 - w1
	return b.NewSeq(func() interp.Sequence {
		return interp.Mix(seed, []int64{w0, w1}, interp.Const(0), interp.Const(1))
	})
}

// NoisySeq registers a sequence that follows base but is perturbed by up to
// ±amp with probability p. base must be a registered factory.
func (b *Builder) NoisySeq(base SeqFactory, amp int64, p float64) int64 {
	id := b.nextSeq
	seed := b.SeedFor(4000 + id)
	return b.NewSeq(func() interp.Sequence { return interp.Noisy(base(), amp, p, seed) })
}

// SetSeq emits rd = next value of sequence id.
func (b *Builder) SetSeq(rd isa.Reg, id int64) { b.emit(isa.Seq(rd, id)) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd isa.Reg, imm int64) { b.emit(isa.MovI(rd, imm)) }

// Advance emits rd = rd + imm (the canonical stride update of live-ins).
func (b *Builder) Advance(rd isa.Reg, imm int64) { b.emit(isa.AddI(rd, rd, imm)) }

// LoadAt emits rd = mem[base+off].
func (b *Builder) LoadAt(rd, base isa.Reg, off int64) { b.emit(isa.Load(rd, base, off)) }

// StoreAt emits mem[base+off] = rs.
func (b *Builder) StoreAt(base isa.Reg, off int64, rs isa.Reg) { b.emit(isa.Store(base, off, rs)) }

// Work emits n deterministic ALU instructions over the scratch
// registers. Registers r16–r19 are affine accumulators (advanced only by
// constants, so iterations that execute the same path have
// stride-predictable live-in values, like real induction variables);
// r20–r23 are write-only temporaries computed from the accumulators.
func (b *Builder) Work(n int) {
	for i := 0; i < n; i++ {
		acc := isa.Reg(16 + i%4)
		acc2 := isa.Reg(16 + (i+1)%4)
		tmp := isa.Reg(20 + i%4)
		switch i % 3 {
		case 0:
			b.emit(isa.AddI(acc, acc, int64(1+i%7)))
		case 1:
			b.emit(isa.ALU(isa.OpAdd, tmp, acc, acc2))
		default:
			b.emit(isa.AddI(acc2, acc2, int64(2+i%5)))
		}
	}
}

// WorkMem emits n instructions alternating affine accumulator updates
// with loads and stores at base+k for k in [0, span). Stored values come
// from the affine accumulators, so with a strided base both the touched
// addresses and the loaded values are stride-predictable live-ins.
func (b *Builder) WorkMem(n int, base isa.Reg, span int64) {
	if span <= 0 {
		span = 8
	}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			b.emit(isa.Load(isa.Reg(20+i%4), base, int64(i)%span))
		case 1:
			b.emit(isa.ALU(isa.OpAdd, isa.Reg(20+i%4), isa.Reg(20+i%4), isa.Reg(16+i%4)))
		case 2:
			b.emit(isa.Store(base, int64(i)%span, isa.Reg(16+i%4)))
		default:
			b.emit(isa.AddI(isa.Reg(16+(i+2)%4), isa.Reg(16+(i+2)%4), 1))
		}
	}
}

// Chaos emits a sequence draw into scratch register r23 followed by mixing
// instructions, making downstream live-in values unpredictable.
func (b *Builder) Chaos(seqID int64) {
	b.emit(isa.Seq(23, seqID))
	b.emit(isa.ALU(isa.OpXor, 22, 22, 23))
	b.emit(isa.ALU(isa.OpAdd, 21, 21, 22))
}

// CountedLoop emits a loop whose body runs trip-count times (drawn at
// entry). With opt.Guarded, a zero-or-negative count skips the loop
// entirely; otherwise the body runs at least once.
func (b *Builder) CountedLoop(t Trip, opt LoopOpt, body func()) {
	if opt.RecursiveSafe {
		b.countedLoopStack(t, opt, body)
		return
	}
	slot := b.nextSlot
	b.nextSlot++

	// Trip count into RegCounter.
	switch t.kind {
	case tripSeq:
		b.emit(isa.Seq(RegCounter, t.seq))
	case tripReg:
		b.emit(isa.Mov(RegCounter, t.reg))
	case tripImm:
		b.emit(isa.MovI(RegCounter, t.imm))
	}
	var exitFixups, contFixups []isa.Addr
	if opt.Guarded {
		exitFixups = append(exitFixups, b.emit(isa.Branch(isa.CondLEZ, RegCounter, 0)))
	}
	b.emit(isa.Store(RegZero, slot, RegCounter))

	head := b.Here()
	info := len(b.loops)
	b.loops = append(b.loops, LoopInfo{ID: info, Head: head, Guarded: opt.Guarded, Depth: len(b.loopStack)})
	b.loopStack = append(b.loopStack, loopCtx{exitFixups: &exitFixups, contFixups: &contFixups, info: info})

	body()

	latch := b.Here()
	for _, at := range contFixups {
		b.code[at].Target = latch
	}
	b.emit(isa.Load(RegCounter, RegZero, slot))
	b.emit(isa.AddI(RegCounter, RegCounter, -1))
	b.emit(isa.Store(RegZero, slot, RegCounter))
	bAddr := b.emit(isa.Branch(isa.CondGTZ, RegCounter, head))
	b.loops[info].Latch = bAddr

	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	exit := b.Here()
	for _, at := range exitFixups {
		b.code[at].Target = exit
	}
}

// countedLoopStack is CountedLoop with the trip counter on the software
// stack, safe for loops inside recursive functions.
func (b *Builder) countedLoopStack(t Trip, opt LoopOpt, body func()) {
	switch t.kind {
	case tripSeq:
		b.emit(isa.Seq(RegCounter, t.seq))
	case tripReg:
		b.emit(isa.Mov(RegCounter, t.reg))
	case tripImm:
		b.emit(isa.MovI(RegCounter, t.imm))
	}
	var exitFixups, contFixups []isa.Addr
	if opt.Guarded {
		exitFixups = append(exitFixups, b.emit(isa.Branch(isa.CondLEZ, RegCounter, 0)))
	}
	// push counter
	b.emit(isa.AddI(RegSP, RegSP, -1))
	b.emit(isa.Store(RegSP, 0, RegCounter))

	head := b.Here()
	info := len(b.loops)
	b.loops = append(b.loops, LoopInfo{ID: info, Head: head, Guarded: opt.Guarded, Depth: len(b.loopStack)})
	b.loopStack = append(b.loopStack, loopCtx{exitFixups: &exitFixups, contFixups: &contFixups, info: info, recursive: true})

	body()

	latch := b.Here()
	for _, at := range contFixups {
		b.code[at].Target = latch
	}
	b.emit(isa.Load(RegCounter, RegSP, 0))
	b.emit(isa.AddI(RegCounter, RegCounter, -1))
	b.emit(isa.Store(RegSP, 0, RegCounter))
	bAddr := b.emit(isa.Branch(isa.CondGTZ, RegCounter, head))
	b.loops[info].Latch = bAddr

	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	// pop
	b.emit(isa.AddI(RegSP, RegSP, 1))
	exit := b.Here()
	for _, at := range exitFixups {
		b.code[at].Target = exit
	}
}

// WhileSeq emits a loop that repeats while sequence id yields a nonzero
// value (checked at the bottom, so the body runs at least once). A
// Bernoulli sequence gives geometric trip counts.
func (b *Builder) WhileSeq(id int64, body func()) {
	var exitFixups, contFixups []isa.Addr
	// A WhileSeq has no entry preamble, so without a marker its head would
	// coincide with the enclosing body's first instruction and the
	// detector (which identifies loops by target address) would merge the
	// two loops. One entry nop keeps loop identities distinct.
	b.emit(isa.Nop())
	head := b.Here()
	info := len(b.loops)
	b.loops = append(b.loops, LoopInfo{ID: info, Head: head, Depth: len(b.loopStack)})
	b.loopStack = append(b.loopStack, loopCtx{exitFixups: &exitFixups, contFixups: &contFixups, info: info})

	body()

	latch := b.Here()
	for _, at := range contFixups {
		b.code[at].Target = latch
	}
	b.emit(isa.Seq(RegCond, id))
	bAddr := b.emit(isa.Branch(isa.CondNEZ, RegCond, head))
	b.loops[info].Latch = bAddr

	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	exit := b.Here()
	for _, at := range exitFixups {
		b.code[at].Target = exit
	}
}

// Break emits a jump out of the innermost loop. The jump target lies
// outside the loop body, so the detector sees an exit branch (§2.1).
func (b *Builder) Break() {
	if len(b.loopStack) == 0 {
		b.errf("Break outside loop")
		return
	}
	ctx := &b.loopStack[len(b.loopStack)-1]
	*ctx.exitFixups = append(*ctx.exitFixups, b.emit(isa.Jump(0)))
}

// BreakIfSeq draws sequence id (Bernoulli) and breaks out of the innermost
// loop when it yields nonzero.
func (b *Builder) BreakIfSeq(id int64) {
	if len(b.loopStack) == 0 {
		b.errf("BreakIfSeq outside loop")
		return
	}
	b.emit(isa.Seq(RegCond, id))
	ctx := &b.loopStack[len(b.loopStack)-1]
	*ctx.exitFixups = append(*ctx.exitFixups, b.emit(isa.Branch(isa.CondNEZ, RegCond, 0)))
}

// Continue emits a jump to the innermost loop's latch (the trip-count
// update), skipping the rest of the body.
func (b *Builder) Continue() {
	if len(b.loopStack) == 0 {
		b.errf("Continue outside loop")
		return
	}
	ctx := &b.loopStack[len(b.loopStack)-1]
	*ctx.contFixups = append(*ctx.contFixups, b.emit(isa.Jump(0)))
}

// IfSeq draws sequence id and runs then when it yields nonzero, els
// (which may be nil) otherwise.
func (b *Builder) IfSeq(id int64, then, els func()) {
	b.emit(isa.Seq(RegCond, id))
	b.IfReg(isa.CondNEZ, RegCond, then, els)
}

// IfReg branches on cond applied to register r: then when it holds, els
// (which may be nil) otherwise.
func (b *Builder) IfReg(cond isa.Cond, r isa.Reg, then, els func()) {
	skip := b.emit(isa.Branch(negate(cond), r, 0))
	then()
	if els == nil {
		b.code[skip].Target = b.Here()
		return
	}
	over := b.emit(isa.Jump(0))
	b.code[skip].Target = b.Here()
	els()
	b.code[over].Target = b.Here()
}

// negate returns the complementary condition.
func negate(c isa.Cond) isa.Cond {
	switch c {
	case isa.CondEQZ:
		return isa.CondNEZ
	case isa.CondNEZ:
		return isa.CondEQZ
	case isa.CondLTZ:
		return isa.CondGEZ
	case isa.CondGEZ:
		return isa.CondLTZ
	case isa.CondGTZ:
		return isa.CondLEZ
	default:
		return isa.CondGTZ
	}
}

// Declare registers a function name for later definition (needed for
// recursion and mutual recursion).
func (b *Builder) Declare(name string) FuncRef {
	b.funcs = append(b.funcs, &funcDef{name: name})
	return FuncRef{id: len(b.funcs) - 1}
}

// Define attaches a body to a declared function. The body is emitted by
// Build, followed by an implicit return.
func (b *Builder) Define(f FuncRef, body func()) {
	fd := b.funcs[f.id]
	if fd.defined {
		b.errf("function %q defined twice", fd.name)
		return
	}
	fd.body = body
	fd.defined = true
}

// Func declares and defines a function in one step.
func (b *Builder) Func(name string, body func()) FuncRef {
	f := b.Declare(name)
	b.Define(f, body)
	return f
}

// Call emits a call to f; the target is patched at Build time.
func (b *Builder) Call(f FuncRef) {
	fd := b.funcs[f.id]
	fd.calls = append(fd.calls, b.emit(isa.Call(0)))
}

// Return emits an early return. Inside recursion-safe loops this would
// leak software-stack slots, so the builder rejects it there.
func (b *Builder) Return() {
	for _, ctx := range b.loopStack {
		if ctx.recursive {
			b.errf("Return inside a RecursiveSafe loop would leak the counter stack")
			return
		}
	}
	if !b.inFunc {
		b.errf("Return outside function body")
		return
	}
	b.emit(isa.Ret())
}

// Build finalises the program: appends a halt after main, emits all
// function bodies (each ending in an implicit return), patches call sites
// and validates. Loop descriptors are available on the returned Unit.
func (b *Builder) Build() (*Unit, error) {
	b.emit(isa.Halt())
	// Function bodies may register further functions while being emitted.
	for {
		progress := false
		for _, fd := range b.funcs {
			if fd.emitted || !fd.defined {
				continue
			}
			fd.emitted = true
			progress = true
			fd.addr = b.Here()
			b.symbols[fd.addr] = fd.name
			b.inFunc = true
			fd.body()
			b.inFunc = false
			b.emit(isa.Ret())
		}
		if !progress {
			break
		}
	}
	for _, fd := range b.funcs {
		if !fd.defined {
			b.errf("function %q declared but never defined", fd.name)
			continue
		}
		for _, site := range fd.calls {
			b.code[site].Target = fd.addr
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.loopStack) != 0 {
		return nil, errors.New("builder: unclosed loop context")
	}
	p := &program.Program{Name: b.name, Code: b.code, Entry: 0, Symbols: b.symbols}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Unit{Prog: p, Seqs: b.seqs, Loops: b.loops}, nil
}
