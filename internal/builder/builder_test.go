package builder

import (
	"strings"
	"testing"

	"dynloop/internal/interp"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

// runUnit executes a unit to completion against a detector and returns
// the CPU-retired count plus the recorded loop events.
type countObs struct {
	loopdet.NopObserver
	execs, iters, oneshots int
	endReasons             map[loopdet.EndReason]int
}

func newCountObs() *countObs {
	return &countObs{endReasons: make(map[loopdet.EndReason]int)}
}

func (c *countObs) ExecStart(x *loopdet.Exec)               { c.execs++ }
func (c *countObs) IterStart(x *loopdet.Exec, index uint64) { c.iters++ }
func (c *countObs) OneShot(t, b isa.Addr, index uint64)     { c.oneshots++ }
func (c *countObs) ExecEnd(x *loopdet.Exec, r loopdet.EndReason, index uint64) {
	c.endReasons[r]++
}

func runUnit(t *testing.T, u *Unit, budget uint64) (*countObs, uint64) {
	t.Helper()
	cpu := u.NewCPU()
	det := loopdet.New(loopdet.Config{Capacity: 16})
	obs := newCountObs()
	det.AddObserver(obs)
	n, err := cpu.Run(budget, det)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if budget == 0 && !cpu.Halted() {
		t.Fatalf("program did not halt")
	}
	det.Flush()
	return obs, n
}

// TestCountedLoopConstTrip checks a single loop with a constant trip
// count: one execution with exactly trip iterations.
func TestCountedLoopConstTrip(t *testing.T) {
	b := New("t", 1)
	b.CountedLoop(TripImm(5), LoopOpt{}, func() { b.Work(4) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := runUnit(t, u, 0)
	if obs.execs != 1 {
		t.Fatalf("execs = %d, want 1", obs.execs)
	}
	// Iterations started events: detection at iter 2 plus iters 3..5.
	if obs.iters != 4 {
		t.Fatalf("iter events = %d, want 4", obs.iters)
	}
	if obs.endReasons[loopdet.EndBackEdge] != 1 {
		t.Fatalf("end reasons: %v", obs.endReasons)
	}
}

// TestCountedLoopTripOne checks that a 1-trip loop is a one-shot.
func TestCountedLoopTripOne(t *testing.T) {
	b := New("t", 1)
	b.CountedLoop(TripImm(1), LoopOpt{}, func() { b.Work(2) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := runUnit(t, u, 0)
	if obs.oneshots != 1 || obs.execs != 0 {
		t.Fatalf("oneshots=%d execs=%d, want 1 0", obs.oneshots, obs.execs)
	}
}

// TestGuardedZeroTrip checks that a guarded loop with trip 0 leaves no
// trace at all.
func TestGuardedZeroTrip(t *testing.T) {
	b := New("t", 1)
	b.CountedLoop(TripImm(0), LoopOpt{Guarded: true}, func() { b.Work(2) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := runUnit(t, u, 0)
	if obs.oneshots != 0 || obs.execs != 0 || obs.iters != 0 {
		t.Fatalf("events on zero-trip: %+v", obs)
	}
}

// TestNestedLoopsGroundTruth checks executions/iterations of a 3-deep
// nest against the closed-form expectation.
func TestNestedLoopsGroundTruth(t *testing.T) {
	b := New("t", 1)
	const oT, mT, iT = 3, 4, 5
	b.CountedLoop(TripImm(oT), LoopOpt{}, func() {
		b.Work(2)
		b.CountedLoop(TripImm(mT), LoopOpt{}, func() {
			b.Work(2)
			b.CountedLoop(TripImm(iT), LoopOpt{}, func() { b.Work(2) })
		})
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Loops) != 3 {
		t.Fatalf("loop infos = %d, want 3", len(u.Loops))
	}
	obs, _ := runUnit(t, u, 0)
	wantExecs := 1 + oT + oT*mT
	if obs.execs != wantExecs {
		t.Fatalf("execs = %d, want %d", obs.execs, wantExecs)
	}
	// Detected iteration-start events per execution = trip - 1.
	wantIters := (oT - 1) + oT*(mT-1) + oT*mT*(iT-1)
	if obs.iters != wantIters {
		t.Fatalf("iter events = %d, want %d", obs.iters, wantIters)
	}
	if obs.endReasons[loopdet.EndBackEdge] != wantExecs {
		t.Fatalf("backedge ends = %d, want %d", obs.endReasons[loopdet.EndBackEdge], wantExecs)
	}
	// Depths recorded statically.
	if u.Loops[0].Depth != 0 || u.Loops[1].Depth != 1 || u.Loops[2].Depth != 2 {
		t.Fatalf("depths: %+v", u.Loops)
	}
}

// TestBreak checks that Break terminates the execution with an exit
// branch.
func TestBreak(t *testing.T) {
	b := New("t", 1)
	cnt := b.CounterSeq(1, 1) // 1, 2, 3, ... per iteration
	b.CountedLoop(TripImm(10), LoopOpt{}, func() {
		b.Work(2)
		b.SetSeq(12, cnt)
		// Break on the 4th iteration (when the draw reaches 4).
		b.emit(isa.AddI(12, 12, -4))
		b.IfReg(isa.CondEQZ, 12, func() { b.Break() }, nil)
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := runUnit(t, u, 0)
	if obs.execs != 1 || obs.endReasons[loopdet.EndExit] != 1 {
		t.Fatalf("execs=%d reasons=%v", obs.execs, obs.endReasons)
	}
}

// TestContinue checks that Continue reaches the latch (the loop still
// iterates fully).
func TestContinue(t *testing.T) {
	b := New("t", 1)
	bern := b.BernoulliSeq(1.0) // always continue
	b.CountedLoop(TripImm(6), LoopOpt{}, func() {
		b.IfSeq(bern, func() { b.Continue() }, nil)
		b.MovI(13, 999) // never reached
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	det := loopdet.New(loopdet.Config{Capacity: 16})
	obs := newCountObs()
	det.AddObserver(obs)
	if _, err := cpu.Run(0, det); err != nil {
		t.Fatal(err)
	}
	det.Flush()
	if cpu.Reg(13) == 999 {
		t.Fatal("Continue did not skip the rest of the body")
	}
	if obs.execs != 1 || obs.endReasons[loopdet.EndBackEdge] != 1 {
		t.Fatalf("execs=%d reasons=%v", obs.execs, obs.endReasons)
	}
}

// TestWhileSeq checks data-driven loops: a cycle of 3 ones then a zero
// gives 4-iteration executions.
func TestWhileSeq(t *testing.T) {
	b := New("t", 1)
	w := b.CycleSeq(1, 1, 1, 0)
	b.CountedLoop(TripImm(3), LoopOpt{}, func() {
		b.WhileSeq(w, func() { b.Work(2) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	obs, _ := runUnit(t, u, 0)
	// Outer: 1 exec; inner: 3 execs of 4 iterations.
	if obs.execs != 4 {
		t.Fatalf("execs = %d, want 4", obs.execs)
	}
	wantIters := 2 + 3*3
	if obs.iters != wantIters {
		t.Fatalf("iters = %d, want %d", obs.iters, wantIters)
	}
}

// TestFunctionsAndRecursion checks calls, early return and the
// recursion-safe loop counter: a depth-3 recursion each running a 4-trip
// loop must execute the body 12 times.
func TestFunctionsAndRecursion(t *testing.T) {
	b := New("t", 1)
	depth := b.CounterSeq(3, -1) // 3, 2, 1, 0... per call
	f := b.Declare("f")
	b.Define(f, func() {
		b.SetSeq(14, depth)
		b.IfReg(isa.CondLEZ, 14, func() { b.Return() }, nil)
		b.CountedLoop(TripImm(4), LoopOpt{RecursiveSafe: true}, func() {
			b.Advance(12, 1) // body marker
		})
		b.Call(f)
	})
	b.Call(f)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Reg(12); got != 12 {
		t.Fatalf("body executed %d times, want 12", got)
	}
}

// TestRecursiveLoopSharedCounterWouldBreak demonstrates why RecursiveSafe
// exists: the loop nested in recursion keeps distinct counters per
// activation.
func TestRecursiveLoopReentry(t *testing.T) {
	b := New("t", 1)
	f := b.Declare("f")
	b.Define(f, func() {
		// r14 carries the remaining recursion depth.
		b.IfReg(isa.CondLEZ, 14, func() { b.Return() }, nil)
		b.CountedLoop(TripImm(3), LoopOpt{RecursiveSafe: true}, func() {
			b.Advance(12, 1)  // body marker
			b.Advance(14, -1) // recurse from INSIDE the loop body
			b.Call(f)
			b.Advance(14, 1)
		})
	})
	b.MovI(14, 2)
	b.Call(f)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	// Depth-2 activation: 3 iterations, each re-entering the SAME static
	// loop at depth 1 for 3 more iterations: 3 + 3*3 = 12. Without the
	// software-stack counter the inner activation would clobber the
	// outer's remaining trip count.
	if got := cpu.Reg(12); got != 12 {
		t.Fatalf("body executed %d times, want 12", got)
	}
}

// TestIfElseBothArms checks both arms execute per the sequence draws.
func TestIfElseBothArms(t *testing.T) {
	b := New("t", 1)
	cond := b.CycleSeq(1, 0)
	b.CountedLoop(TripImm(4), LoopOpt{}, func() {
		b.IfSeq(cond, func() { b.Advance(12, 1) }, func() { b.Advance(13, 1) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if cpu.Reg(12) != 2 || cpu.Reg(13) != 2 {
		t.Fatalf("arms: then=%d else=%d, want 2 2", cpu.Reg(12), cpu.Reg(13))
	}
}

// TestBuildErrors checks the builder's error paths.
func TestBuildErrors(t *testing.T) {
	t.Run("break-outside-loop", func(t *testing.T) {
		b := New("t", 1)
		b.Break()
		if _, err := b.Build(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("declared-not-defined", func(t *testing.T) {
		b := New("t", 1)
		f := b.Declare("ghost")
		b.Call(f)
		if _, err := b.Build(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("return-outside-function", func(t *testing.T) {
		b := New("t", 1)
		b.Return()
		if _, err := b.Build(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("return-inside-recursive-loop", func(t *testing.T) {
		b := New("t", 1)
		b.Func("f", func() {
			b.CountedLoop(TripImm(2), LoopOpt{RecursiveSafe: true}, func() {
				b.Return()
			})
		})
		if _, err := b.Build(); err == nil {
			t.Fatal("want error")
		}
	})
}

// TestUnitDeterminism checks that two CPUs from one Unit produce
// identical traces (sequence factories, not shared state).
func TestUnitDeterminism(t *testing.T) {
	b := New("t", 42)
	trip := b.UniformSeq(1, 9)
	b.CountedLoop(TripImm(50), LoopOpt{}, func() {
		b.CountedLoop(TripSeq(trip), LoopOpt{}, func() { b.Work(3) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		cpu := u.NewCPU()
		h := trace.NewHash()
		if _, err := cpu.Run(0, h); err != nil {
			t.Fatal(err)
		}
		return h.Sum
	}
	if run() != run() {
		t.Fatal("two CPUs from one unit diverged")
	}
}

// TestDisassembleAndSymbols sanity-checks program output helpers.
func TestDisassembleAndSymbols(t *testing.T) {
	b := New("t", 1)
	b.Label("main_loop")
	b.CountedLoop(TripImm(2), LoopOpt{}, func() { b.Work(1) })
	f := b.Func("helper", func() { b.Work(1) })
	b.Call(f)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := u.Prog.Disassemble()
	if !strings.Contains(d, "helper:") || !strings.Contains(d, "main_loop:") {
		t.Fatalf("disassembly missing symbols:\n%s", d)
	}
	if syms := u.Prog.SymbolList(); len(syms) < 2 {
		t.Fatalf("symbols: %v", syms)
	}
}

// TestWorkAffinity: the Work generator must keep its accumulator
// registers affine — constant per-iteration deltas — because live-in
// predictability (Figure 8) depends on it.
func TestWorkAffinity(t *testing.T) {
	b := New("affine", 1)
	b.CountedLoop(TripImm(6), LoopOpt{}, func() { b.Work(24) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	// Sample the accumulators at each iteration boundary.
	var samples [][4]int64
	grab := func() {
		samples = append(samples, [4]int64{cpu.Reg(16), cpu.Reg(17), cpu.Reg(18), cpu.Reg(19)})
	}
	// Run instruction by instruction; sample when PC returns to the loop
	// head.
	head := u.Loops[0].Head
	for !cpu.Halted() {
		if cpu.PC() == head {
			grab()
		}
		if _, err := cpu.Run(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(samples) < 4 {
		t.Fatalf("sampled %d boundaries", len(samples))
	}
	for r := 0; r < 4; r++ {
		d := samples[1][r] - samples[0][r]
		for i := 2; i < len(samples); i++ {
			if got := samples[i][r] - samples[i-1][r]; got != d {
				t.Fatalf("register r%d not affine: deltas %d then %d", 16+r, d, got)
			}
		}
	}
}

// TestWorkMemTouchesMemory: WorkMem must generate loads and stores at
// base-relative addresses.
func TestWorkMemTouchesMemory(t *testing.T) {
	b := New("mem", 1)
	b.MovI(24, HeapBase)
	b.WorkMem(16, 24, 4)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if cpu.Mem().Footprint() == 0 {
		t.Fatal("WorkMem never touched memory")
	}
}

// TestSeedForDeterminism: derived seeds are stable and purpose-distinct.
func TestSeedForDeterminism(t *testing.T) {
	a := New("s", 7)
	b := New("s", 7)
	if a.SeedFor(1) != b.SeedFor(1) {
		t.Fatal("SeedFor not deterministic")
	}
	if a.SeedFor(1) == a.SeedFor(2) {
		t.Fatal("SeedFor does not separate purposes")
	}
	c := New("s", 8)
	if a.SeedFor(1) == c.SeedFor(1) {
		t.Fatal("SeedFor ignores the base seed")
	}
}

// TestLoopInfoLatch: recorded latch addresses point at the closing
// branch.
func TestLoopInfoLatch(t *testing.T) {
	b := New("latch", 1)
	b.CountedLoop(TripImm(3), LoopOpt{}, func() { b.Work(5) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	li := u.Loops[0]
	in := u.Prog.At(li.Latch)
	if in.Kind != isa.KindBranch || in.Target != li.Head {
		t.Fatalf("latch @%d is %s, want closing branch to @%d", li.Latch, in, li.Head)
	}
}

// TestChaosBreaksAffinity: Chaos must make downstream scratch registers
// unpredictable (it exists to model irregular codes).
func TestChaosBreaksAffinity(t *testing.T) {
	b := New("chaos", 3)
	noise := b.UniformSeq(0, 1<<20)
	b.CountedLoop(TripImm(8), LoopOpt{}, func() {
		b.Chaos(noise)
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	var vals []int64
	head := u.Loops[0].Head
	for !cpu.Halted() {
		if cpu.PC() == head {
			vals = append(vals, cpu.Reg(21))
		}
		if _, err := cpu.Run(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	affine := true
	for i := 2; i < len(vals); i++ {
		if vals[i]-vals[i-1] != vals[1]-vals[0] {
			affine = false
		}
	}
	if affine {
		t.Fatal("Chaos produced an affine series")
	}
}

// TestRandomUnitsValid: every random program builds, validates, halts
// under a modest budget or keeps running without machine errors, and its
// loop inventory is well-formed.
func TestRandomUnitsValid(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		u, err := Random(seed, RandomOpt{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := u.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, li := range u.Loops {
			if li.Latch <= li.Head && !(li.Latch == 0 && li.Head == 0) {
				if li.Latch < li.Head {
					t.Fatalf("seed %d: loop %d latch %d before head %d", seed, li.ID, li.Latch, li.Head)
				}
			}
		}
		cpu := u.NewCPU()
		if _, err := cpu.Run(30_000, nil); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
	}
}

// TestSequenceHelpers covers the remaining sequence constructors.
func TestSequenceHelpers(t *testing.T) {
	b := New("seqs", 4)
	cs := b.ConstSeq(7)
	cy := b.CycleSeq(1, 2)
	ge := b.GeometricSeq(1, 0.5, 10)
	no := b.NoisySeq(func() interp.Sequence { return interp.Const(5) }, 2, 0.5)
	b.SetSeq(12, cs)
	b.SetSeq(13, cy)
	b.SetSeq(14, ge)
	b.SetSeq(15, no)
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpu := u.NewCPU()
	if _, err := cpu.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if cpu.Reg(12) != 7 || cpu.Reg(13) != 1 {
		t.Fatalf("const/cycle draws: %d %d", cpu.Reg(12), cpu.Reg(13))
	}
	if v := cpu.Reg(14); v < 1 || v > 10 {
		t.Fatalf("geometric draw out of range: %d", v)
	}
	if v := cpu.Reg(15); v < 1 || v > 7 {
		t.Fatalf("noisy draw out of range: %d", v)
	}
}
