package builder

import "dynloop/internal/interp"

// RandomOpt bounds the random structured programs produced by Random.
type RandomOpt struct {
	// MaxDepth bounds loop nesting (default 4).
	MaxDepth int
	// MaxBlocks bounds the top-level statement count (default 6).
	MaxBlocks int
}

// Random generates a random structured program: nested counted loops,
// while loops, conditionals, calls and straight-line work, drawn
// deterministically from the seed. It is the program source for property
// tests and fuzzing: every generated unit halts (all loops have bounded
// trips, recursion is depth-guarded) and is valid by construction.
func Random(seed uint64, opt RandomOpt) (*Unit, error) {
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 4
	}
	if opt.MaxBlocks == 0 {
		opt.MaxBlocks = 6
	}
	b := New("random", seed)
	r := newSplit(seed)

	var fns []FuncRef
	// A few leaf functions with their own loops.
	for i := 0; i < int(1+r.next()%3); i++ {
		fns = append(fns, b.Func("leaf", func() {
			b.Work(int(2 + r.next()%12))
			b.CountedLoop(TripImm(int64(1+r.next()%6)), LoopOpt{}, func() {
				b.Work(int(1 + r.next()%8))
			})
		}))
	}

	var emit func(depth int)
	emit = func(depth int) {
		n := int(1 + r.next()%uint64(opt.MaxBlocks))
		for i := 0; i < n; i++ {
			switch r.next() % 6 {
			case 0:
				b.Work(int(1 + r.next()%20))
			case 1:
				if len(fns) > 0 {
					b.Call(fns[r.next()%uint64(len(fns))])
				}
			case 2:
				if depth < opt.MaxDepth {
					trip := TripImm(int64(1 + r.next()%9))
					if r.next()%3 == 0 {
						trip = TripSeq(b.UniformSeq(1, int64(2+r.next()%8)))
					}
					guarded := r.next()%4 == 0
					b.CountedLoop(trip, LoopOpt{Guarded: guarded}, func() {
						b.Work(int(1 + r.next()%6))
						emit(depth + 1)
					})
				} else {
					b.Work(int(1 + r.next()%6))
				}
			case 3:
				if depth < opt.MaxDepth {
					// Capture the seed now: factories run once per CPU and
					// must not consume the structural RNG.
					seqSeed := r.next() | 1
					id := b.NewSeq(func() interp.Sequence {
						return interp.Mix(seqSeed, []int64{1, 2}, interp.Const(0), interp.Const(1))
					})
					b.WhileSeq(id, func() {
						b.Work(int(1 + r.next()%6))
					})
				}
			case 4:
				cond := b.BernoulliSeq(0.5)
				b.IfSeq(cond, func() {
					b.Work(int(1 + r.next()%8))
				}, func() {
					b.Work(int(1 + r.next()%8))
				})
			case 5:
				if depth > 0 && r.next()%4 == 0 {
					b.BreakIfSeq(b.BernoulliSeq(0.2))
				} else {
					b.Work(int(1 + r.next()%4))
				}
			}
		}
	}
	emit(0)
	return b.Build()
}

// splitmix64 for the generator's own structural choices (independent of
// the program's runtime sequences).
type split struct{ s uint64 }

func newSplit(seed uint64) *split { return &split{s: seed} }

func (r *split) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
