package codec

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"testing"
)

// testResult exercises every primitive field type.
type testResult struct {
	A uint64
	B int64
	C float64
	D bool
	E string
	F int
}

// testResultV2 shares kind-space with nothing; used for skew tests.
type testResultV2 struct {
	A uint64
}

const (
	kindTest   Kind = 1000
	kindTestV2 Kind = 1001
)

func init() {
	Register(kindTest, 3, "codec-test", func(e *Enc, v testResult) {
		e.U64(v.A)
		e.I64(v.B)
		e.F64(v.C)
		e.Bool(v.D)
		e.Str(v.E)
		e.Int(v.F)
	}, func(d *Dec) testResult {
		return testResult{A: d.U64(), B: d.I64(), C: d.F64(), D: d.Bool(), E: d.Str(), F: d.Int()}
	})
	Register(kindTestV2, 7, "codec-test-v2", func(e *Enc, v testResultV2) {
		e.U64(v.A)
	}, func(d *Dec) testResultV2 {
		return testResultV2{A: d.U64()}
	})
}

func TestRoundTrip(t *testing.T) {
	want := testResult{A: 1 << 40, B: -17, C: 3.25, D: true, E: "swim", F: -4}
	b, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(testResult)
	if !ok {
		t.Fatalf("decoded %T, want testResult", v)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

// TestGoldenFrame pins the frame layout: kind and version uvarints, then
// the payload fields in registration order. If this breaks, either bump
// the type's version or keep the bytes — silently changing them
// invalidates every persisted store.
func TestGoldenFrame(t *testing.T) {
	b, err := Encode(testResult{A: 5, B: -1, C: 1.5, D: true, E: "ab", F: 2})
	if err != nil {
		t.Fatal(err)
	}
	const golden = "e807030501000000000000f83f0102616204"
	if got := hex.EncodeToString(b); got != golden {
		t.Fatalf("golden frame changed:\n got  %s\n want %s", got, golden)
	}
}

func TestUnknownKind(t *testing.T) {
	b, err := Encode(testResult{})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the kind uvarint (0xe8 0x07 = 1000) to an unregistered 1002.
	b[0], b[1] = 0xea, 0x07
	if _, err := Decode(b); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

// TestOversizedKindDoesNotAlias: a frame carrying kind 65536+k must be
// rejected, not decoded as kind k.
func TestOversizedKindDoesNotAlias(t *testing.T) {
	b, err := Encode(testResultV2{A: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the frame with kind 1001 + 65536 and the same version and
	// payload bytes.
	aliased := binary.AppendUvarint(nil, uint64(kindTestV2)+1<<16)
	aliased = append(aliased, b[2:]...)
	if _, err := Decode(aliased); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

func TestVersionSkew(t *testing.T) {
	b, err := Encode(testResultV2{A: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Version byte follows the 2-byte kind uvarint.
	if b[2] != 7 {
		t.Fatalf("unexpected frame layout: %x", b)
	}
	b[2] = 6
	if _, err := Decode(b); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("got %v, want ErrVersionSkew", err)
	}
}

func TestCorruptPayloads(t *testing.T) {
	b, err := Encode(testResult{A: 5, B: -1, C: 1.5, D: true, E: "ab", F: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"header only":   b[:3],
		"truncated":     b[:len(b)-3],
		"trailing":      append(append([]byte{}, b...), 0),
		"bad bool":      func() []byte { c := append([]byte{}, b...); c[13] = 9; return c }(),
		"string length": func() []byte { c := append([]byte{}, b...); c[14] = 0xFF; return c }(),
	}
	for name, c := range cases {
		if _, err := Decode(c); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestEncodeUnregistered(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := Encode(unregistered{}); !errors.Is(err, ErrUnregistered) {
		t.Fatalf("got %v, want ErrUnregistered", err)
	}
	if _, ok := Registered(unregistered{}); ok {
		t.Fatal("Registered reported true for an unregistered type")
	}
	if k, ok := Registered(testResult{}); !ok || k != kindTest {
		t.Fatalf("Registered(testResult) = %d, %v", k, ok)
	}
}

// FuzzDecode: no input may panic or return both a value and an error.
func FuzzDecode(f *testing.F) {
	seed, _ := Encode(testResult{A: 5, B: -1, C: 1.5, D: true, E: "ab", F: 2})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xe8, 0x07, 0x03})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := Decode(b)
		if err != nil && v != nil {
			t.Fatalf("Decode returned value %v alongside error %v", v, err)
		}
	})
}
