// Package codec gives experiment cell results a stable, versioned
// binary representation — the contract that lets a result outlive the
// process that computed it. The on-disk result store (internal/store)
// and the grid-serving wire format (internal/wire) share these exact
// bytes: a cell persisted by a local run is byte-identical to the same
// cell streamed by the daemon.
//
// A frame is:
//
//	uvarint kind     — which registered result type this is
//	uvarint version  — that type's schema version at encode time
//	payload          — the type's own varint/float64-bits encoding
//
// Result types register themselves (kind, version, append func, decode
// func) at init time; see internal/expt's codec registrations. Decoding
// a frame whose kind is unknown fails with ErrUnknownKind, a version
// mismatch fails with ErrVersionSkew, and a malformed payload fails
// with ErrCorrupt — never a panic, never a partial value. Version skew
// is how persisted results self-invalidate: bump a type's registered
// version when its semantics change and every stored frame of the old
// version reads as a cache miss.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Kind identifies a registered result type inside a frame.
type Kind uint16

var (
	// ErrUnknownKind reports a frame whose kind has no registration.
	ErrUnknownKind = errors.New("codec: unknown kind")
	// ErrVersionSkew reports a frame encoded under a different schema
	// version of its kind.
	ErrVersionSkew = errors.New("codec: version skew")
	// ErrCorrupt reports a malformed or truncated frame.
	ErrCorrupt = errors.New("codec: corrupt frame")
	// ErrUnregistered reports an Encode of a value whose type has no
	// registration.
	ErrUnregistered = errors.New("codec: unregistered type")
)

// registration binds one kind to its type, version and functions.
type registration struct {
	kind    Kind
	version uint64
	name    string
	enc     func(*Enc, any)
	dec     func(*Dec) any
}

var (
	regMu     sync.RWMutex
	byKind    = map[Kind]*registration{}
	byType    = map[reflect.Type]*registration{}
	kindNames = map[string]Kind{}
)

// Register binds kind to T with the given schema version. app must
// write every field T's result depends on; dec must read them back in
// the same order through the cursor (returning the zero T once the
// cursor has erred is fine — Decode surfaces the cursor error). name is
// a stable diagnostic label. Register panics on a duplicate kind, name
// or type: registrations are init-time wiring, not runtime input.
func Register[T any](kind Kind, version uint64, name string, app func(*Enc, T), dec func(*Dec) T) {
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf((*T)(nil)).Elem()
	if prev, ok := byKind[kind]; ok {
		panic(fmt.Sprintf("codec: kind %d already registered as %q", kind, prev.name))
	}
	if prev, ok := byType[t]; ok {
		panic(fmt.Sprintf("codec: type %v already registered as %q", t, prev.name))
	}
	if _, ok := kindNames[name]; ok {
		panic(fmt.Sprintf("codec: name %q already registered", name))
	}
	r := &registration{
		kind:    kind,
		version: version,
		name:    name,
		enc:     func(e *Enc, v any) { app(e, v.(T)) },
		dec:     func(d *Dec) any { return dec(d) },
	}
	byKind[kind] = r
	byType[t] = r
	kindNames[name] = kind
}

// Registered reports whether v's dynamic type has a registration, and
// under which kind.
func Registered(v any) (Kind, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	r, ok := byType[reflect.TypeOf(v)]
	if !ok {
		return 0, false
	}
	return r.kind, true
}

// Encode frames v under its registered kind and version.
func Encode(v any) ([]byte, error) {
	return Append(nil, v)
}

// Append frames v onto b.
func Append(b []byte, v any) ([]byte, error) {
	regMu.RLock()
	r, ok := byType[reflect.TypeOf(v)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrUnregistered, v)
	}
	b = binary.AppendUvarint(b, uint64(r.kind))
	b = binary.AppendUvarint(b, r.version)
	e := &Enc{b: b}
	r.enc(e, v)
	return e.b, nil
}

// Decode parses one frame occupying all of b and returns the value
// under its registered concrete type. Trailing bytes, short payloads
// and field-level garbage all fail with ErrCorrupt.
func Decode(b []byte) (any, error) {
	d := &Dec{b: b}
	kind := d.U64()
	version := d.U64()
	if d.err != nil {
		return nil, fmt.Errorf("%w: frame header", ErrCorrupt)
	}
	if kind > math.MaxUint16 {
		// Reject before the Kind conversion: kind 65536+k must not
		// silently alias kind k.
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownKind, kind)
	}
	regMu.RLock()
	r, ok := byKind[Kind(kind)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownKind, kind)
	}
	if version != r.version {
		return nil, fmt.Errorf("%w: %s is v%d, frame is v%d", ErrVersionSkew, r.name, r.version, version)
	}
	v := r.dec(d)
	if d.err != nil {
		return nil, fmt.Errorf("%w: %s payload: %v", ErrCorrupt, r.name, d.err)
	}
	if d.pos != len(d.b) {
		return nil, fmt.Errorf("%w: %s payload has %d trailing bytes", ErrCorrupt, r.name, len(d.b)-d.pos)
	}
	return v, nil
}

// Enc appends primitive fields to a frame payload.
type Enc struct {
	b []byte
}

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// I64 appends a signed (zig-zag) varint.
func (e *Enc) I64(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Int appends an int as a signed varint.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// F64 appends a float64 as its 8 IEEE-754 bits, little-endian — exact
// round trip, no formatting loss.
func (e *Enc) F64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.U64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Dec reads primitive fields from a frame payload with a sticky error:
// after the first malformed field every further read returns zero
// values, so decoders can read unconditionally and check Err once.
type Dec struct {
	b   []byte
	pos int
	err error
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("bad %s at offset %d", what, d.pos)
	}
}

// U64 reads an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.pos += n
	return v
}

// I64 reads a signed varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.pos += n
	return v
}

// Int reads an int-sized signed varint.
func (d *Dec) Int() int { return int(d.I64()) }

// Bool reads one byte; anything but 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.b) {
		d.fail("bool")
		return false
	}
	v := d.b[d.pos]
	d.pos++
	if v > 1 {
		d.fail("bool value")
		return false
	}
	return v == 1
}

// F64 reads 8 little-endian IEEE-754 bits.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.pos:]))
	d.pos += 8
	return v
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("string length")
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }
