package taskpred

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// TestPerfectlyPeriodicSequence: a fixed round-robin of loop executions
// is learned exactly after one lap.
func TestPerfectlyPeriodicSequence(t *testing.T) {
	p := New(Config{HistoryLength: 2, TableBits: 8})
	// Executions cycle A, B, C, A, B, C, ...
	seq := []uint32{10, 20, 30}
	id := uint64(0)
	for lap := 0; lap < 40; lap++ {
		for _, target := range seq {
			id++
			p.ExecStart(&loopdet.Exec{ID: id, T: isaAddr(target), B: isaAddr(target + 5), Iters: 2})
		}
	}
	acc, n := p.Accuracy()
	if n == 0 {
		t.Fatal("no predictions scored")
	}
	// Everything after the first lap is predictable.
	if acc < 90 {
		t.Fatalf("accuracy = %.1f%% on a periodic sequence", acc)
	}
}

// TestRandomSequenceUnpredictable: independent random targets stay near
// chance level.
func TestRandomSequenceUnpredictable(t *testing.T) {
	p := New(Config{HistoryLength: 2, TableBits: 8})
	r := uint64(99)
	next := func() uint32 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return uint32(10 + (r % 32))
	}
	for i := uint64(1); i < 4000; i++ {
		tgt := next()
		p.ExecStart(&loopdet.Exec{ID: i, T: isaAddr(tgt), B: isaAddr(tgt + 3), Iters: 2})
	}
	acc, _ := p.Accuracy()
	if acc > 25 {
		t.Fatalf("accuracy = %.1f%% on random targets, want near 1/32", acc)
	}
}

// TestOnRealWorkloadShape: regular nests give high next-target accuracy,
// and the predictor wires into the detector pipeline.
func TestOnRealWorkloadShape(t *testing.T) {
	b := builder.New("periodic", 1)
	f := b.Func("kernel", func() {
		b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() { b.Work(3) })
		b.CountedLoop(builder.TripImm(5), builder.LoopOpt{}, func() { b.Work(3) })
		b.CountedLoop(builder.TripImm(6), builder.LoopOpt{}, func() { b.Work(3) })
	})
	for i := 0; i < 60; i++ {
		b.Call(f)
	}
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{})
	if _, err := harness.Run(u, harness.Config{}, p); err != nil {
		t.Fatal(err)
	}
	acc, n := p.Accuracy()
	if n < 100 {
		t.Fatalf("scored only %d predictions", n)
	}
	if acc < 95 {
		t.Fatalf("accuracy = %.1f%% on a strictly periodic kernel", acc)
	}
}

func isaAddr(v uint32) isa.Addr { return isa.Addr(v) }
