// Package taskpred implements a simplified next-task predictor in the
// style of Jacobson et al.'s "Control Flow Speculation in Multiscalar
// Processors" — the related work the paper contrasts itself against in
// §3: there, threads (tasks) are delimited by the compiler and a runtime
// history table predicts which task follows which.
//
// Our adaptation keeps the paper's hardware-only setting: the "tasks"
// are loop executions discovered by the CLS, and the predictor guesses,
// at each execution start, which loop will start its next execution —
// from a history table indexed by the recent execution-target sequence.
// Comparing its accuracy against the LET's iteration-count accuracy
// shows why the paper speculates *iterations of the current loop* rather
// than *which loop comes next*: the former is the easier question.
package taskpred

import (
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
)

// Config parametrises the predictor.
type Config struct {
	// HistoryLength is the number of recent execution targets hashed
	// into the table index (default 2, as in path-based next-task
	// prediction).
	HistoryLength int
	// TableBits sizes the history table at 2^TableBits entries
	// (default 12).
	TableBits uint
}

func (c *Config) setDefaults() {
	if c.HistoryLength == 0 {
		c.HistoryLength = 2
	}
	if c.TableBits == 0 {
		c.TableBits = 12
	}
}

// Predictor observes loop executions and scores next-execution-target
// predictions. Attach it as a detector observer (or bundle it into one
// pass of a fused multi-pass traversal with harness.NewObserverPass).
type Predictor struct {
	loopdet.NopObserver
	cfg     Config
	table   []isa.Addr
	valid   []bool
	mask    uint32
	history []isa.Addr

	predictions uint64
	hits        uint64
}

// New returns a predictor with the given configuration.
func New(cfg Config) *Predictor {
	cfg.setDefaults()
	n := 1 << cfg.TableBits
	return &Predictor{
		cfg:   cfg,
		table: make([]isa.Addr, n),
		valid: make([]bool, n),
		mask:  uint32(n - 1),
	}
}

// index hashes the recent-target history.
func (p *Predictor) index() uint32 {
	h := uint32(2166136261)
	for _, t := range p.history {
		h = (h ^ uint32(t)) * 16777619
	}
	return h & p.mask
}

// ExecStart implements loopdet.Observer: score the pending prediction
// against the execution that actually started, then train and predict
// the next one.
func (p *Predictor) ExecStart(x *loopdet.Exec) {
	if len(p.history) == p.cfg.HistoryLength {
		i := p.index()
		if p.valid[i] {
			p.predictions++
			if p.table[i] == x.T {
				p.hits++
			}
		}
		p.table[i] = x.T
		p.valid[i] = true
	}
	p.history = append(p.history, x.T)
	if len(p.history) > p.cfg.HistoryLength {
		p.history = p.history[1:]
	}
}

// Accuracy returns the next-execution-target prediction accuracy in
// percent, and the number of scored predictions.
func (p *Predictor) Accuracy() (float64, uint64) {
	if p.predictions == 0 {
		return 0, 0
	}
	return 100 * float64(p.hits) / float64(p.predictions), p.predictions
}
