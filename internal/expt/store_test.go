package expt

import (
	"context"
	"testing"

	"dynloop/internal/grid"
	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/store"
)

// storeRunner returns a fresh Runner backed by a store opened in dir.
func storeRunner(t *testing.T, dir string, workers int) *runner.Runner {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return runner.New(runner.Config{Workers: workers, Cache: store.NewCache(st)})
}

// TestWarmStoreAllZeroTraversals is the acceptance criterion for the
// persistent tier: a second `experiment all` against a warm store must
// execute ZERO interpreter traversals — every cell, including the
// oracle ablation's composite jobs, is served from disk — and render a
// byte-identical report.
func TestWarmStoreAllZeroTraversals(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	base := Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}

	cold := base
	cold.Runner = storeRunner(t, dir, 4)
	coldOut, err := All(ctx, cold)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Runner.Stats(); s.DiskPuts == 0 || s.DiskHits != 0 {
		t.Fatalf("cold run stats = %+v", s)
	}

	warm := base
	warm.Runner = storeRunner(t, dir, 4)
	before := harness.Traversals()
	warmOut, err := All(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	if tr := harness.Traversals() - before; tr != 0 {
		t.Fatalf("warm-store All ran %d traversals, want 0", tr)
	}
	if warmOut != coldOut {
		t.Fatalf("warm-store report differs from cold run:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	// Overlapping cells (Fig 7's STR column is Fig 6, its STR(3)/4TU
	// cells are Table 2's) hit the memory tier after the first disk
	// hit, so DiskHits + CacheHits covers every submission.
	s := warm.Runner.Stats()
	if s.Executed != 0 || s.DiskHits == 0 || s.DiskHits+s.CacheHits != s.Submitted {
		t.Fatalf("warm run stats = %+v", s)
	}
}

// TestWarmStoreSweepParallelInvariant: the store-backed path stays
// byte-identical across worker counts, warm or cold.
func TestWarmStoreSweepParallelInvariant(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	base := Config{Budget: 50_000, Benchmarks: []string{"swim", "compress"}}
	sw := SweepSpec{TUs: []int{2, 4}}

	ref := base
	ref.Parallel = 1
	refRows, err := Sweep(ctx, ref, sw)
	if err != nil {
		t.Fatal(err)
	}
	want := RenderSweep(refRows)

	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.Runner = storeRunner(t, dir, workers)
		rows, err := Sweep(ctx, cfg, sw)
		if err != nil {
			t.Fatal(err)
		}
		if got := RenderSweep(rows); got != want {
			t.Fatalf("store-backed sweep at %d workers differs:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestCellSchemaVersionInvalidatesStore: bumping the key schema version
// must miss every persisted result, forcing recomputation — persisted
// cells self-invalidate when cell semantics change.
func TestCellSchemaVersionInvalidatesStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	base := Config{Budget: 50_000, Benchmarks: []string{"swim"}}
	sw := SweepSpec{Policies: Fig7Policies()[:2], TUs: []int{2}}

	cold := base
	cold.Runner = storeRunner(t, dir, 2)
	if _, err := Sweep(ctx, cold, sw); err != nil {
		t.Fatal(err)
	}
	if s := cold.Runner.Stats(); s.DiskPuts == 0 {
		t.Fatalf("cold run persisted nothing: %+v", s)
	}

	// Same version: warm.
	warm := base
	warm.Runner = storeRunner(t, dir, 2)
	if _, err := Sweep(ctx, warm, sw); err != nil {
		t.Fatal(err)
	}
	if s := warm.Runner.Stats(); s.DiskHits == 0 || s.Executed != 0 {
		t.Fatalf("warm run stats = %+v", s)
	}

	// Bumped version: every cell misses and recomputes.
	grid.CellSchemaVersion++
	defer func() { grid.CellSchemaVersion-- }()
	bumped := base
	bumped.Runner = storeRunner(t, dir, 2)
	if _, err := Sweep(ctx, bumped, sw); err != nil {
		t.Fatal(err)
	}
	if s := bumped.Runner.Stats(); s.DiskHits != 0 || s.Executed == 0 {
		t.Fatalf("bumped-version run stats = %+v (want zero disk hits, all executed)", s)
	}
}

// The cell-key version-prefix pin lives with the key machinery in
// internal/grid (grid_test.go).
