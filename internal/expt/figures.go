package expt

import (
	"context"
	"strings"

	"dynloop/internal/datapred"
	"dynloop/internal/grid"
	"dynloop/internal/report"
	"dynloop/internal/spec"
)

// Fig4Point is the average LET/LIT hit ratio at one table size.
type Fig4Point struct {
	Entries int
	// LETPct and LITPct are unweighted averages over benchmarks, in
	// percent (the paper's "average hit" of Figure 4).
	LETPct, LITPct float64
}

// Fig4Sizes are the table sizes the paper sweeps.
var Fig4Sizes = []int{2, 4, 8, 16}

// Fig4 reproduces Figure 4: LET and LIT hit ratios for 2–16 entries,
// averaged over the suite (CLS fixed at 16 entries as in §2.3.1) — the
// registered "fig4" grid; all four table sizes of a benchmark fuse into
// one traversal.
func Fig4(ctx context.Context, cfg Config) ([]Fig4Point, error) {
	res, err := runNamed(ctx, cfg, "fig4", nil)
	if err != nil {
		return nil, err
	}
	return fig4FromResult(res)
}

func fig4FromResult(res *grid.Result) ([]Fig4Point, error) {
	bms, sizes := res.Spec.Benchmarks, res.Spec.TableSizes
	if err := shape(res, len(bms)*len(sizes), "fig4"); err != nil {
		return nil, err
	}
	n := float64(len(bms))
	points := make([]Fig4Point, 0, len(sizes))
	for si, size := range sizes {
		var letSum, litSum float64
		for bi := range bms {
			c := res.Values[bi*len(sizes)+si].(grid.Fig4Cell)
			letSum += c.LET
			litSum += c.LIT
		}
		points = append(points, Fig4Point{
			Entries: size,
			LETPct:  100 * letSum / n,
			LITPct:  100 * litSum / n,
		})
	}
	return points, nil
}

// RenderFig4 formats Figure 4. The paper's reference points: LIT(4) =
// 90.50%, LET(16) = 91.98%, LIT(2) = 85.00%, LET(8) = 72.44%.
func RenderFig4(points []Fig4Point) string {
	t := report.NewTable("Figure 4: LET and LIT average hit ratios vs table size",
		"entries", "LET hit %", "LIT hit %")
	for i := len(points) - 1; i >= 0; i-- {
		p := points[i]
		t.AddRow(p.Entries, p.LETPct, p.LITPct)
	}
	return t.String()
}

// Fig5Row is one benchmark's infinite-TU TPC for the full and reduced
// budgets.
type Fig5Row struct {
	Bench string
	// TPCFull is measured over the full budget, TPCReduced over a
	// quarter of it (the paper compares the whole run against the first
	// 10^9 instructions; the ratio plays the same role here).
	TPCFull, TPCReduced float64
}

// Fig5 reproduces Figure 5: TPC for a machine with unlimited thread
// units, full vs reduced instruction window — the registered "fig5"
// grid, whose budget-divisor axis [1, 4] puts two spec cells on each
// benchmark (the budget is part of the cell key, and of the fusion
// group: different budgets mean different streams, so these cells never
// fuse with each other).
func Fig5(ctx context.Context, cfg Config) ([]Fig5Row, error) {
	res, err := runNamed(ctx, cfg, "fig5", nil)
	if err != nil {
		return nil, err
	}
	return fig5FromResult(res)
}

func fig5FromResult(res *grid.Result) ([]Fig5Row, error) {
	bms := res.Spec.Benchmarks
	if err := shape(res, 2*len(bms), "fig5"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]Fig5Row, len(bms))
	for i, name := range bms {
		rows[i] = Fig5Row{
			Bench:      name,
			TPCFull:    ms[2*i].TPC(),
			TPCReduced: ms[2*i+1].TPC(),
		}
	}
	return rows, nil
}

// RenderFig5 formats Figure 5 as log-scale bars.
func RenderFig5(rows []Fig5Row) string {
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	var b strings.Builder
	for i, r := range rows {
		labels[i] = r.Bench
		values[i] = r.TPCFull
	}
	b.WriteString(report.BarsLog("Figure 5: TPC for infinite TUs (full budget)", 50, labels, values))
	for i, r := range rows {
		values[i] = r.TPCReduced
	}
	b.WriteString(report.BarsLog("Figure 5: TPC for infinite TUs (quarter budget)", 50, labels, values))
	return b.String()
}

// Fig6TUs are the machine sizes of Figures 6 and 7.
var Fig6TUs = []int{2, 4, 8, 16}

// Fig6Row is one benchmark's TPC under STR per machine size.
type Fig6Row struct {
	Bench string
	// TPC maps TU count to measured TPC.
	TPC map[int]float64
}

// Fig6 reproduces Figure 6: per-program TPC under the STR policy for
// 2–16 TUs — the registered "fig6" grid, all four machine sizes of a
// benchmark fused into one traversal.
func Fig6(ctx context.Context, cfg Config) ([]Fig6Row, error) {
	res, err := runNamed(ctx, cfg, "fig6", nil)
	if err != nil {
		return nil, err
	}
	return fig6FromResult(res)
}

func fig6FromResult(res *grid.Result) ([]Fig6Row, error) {
	bms, tus := res.Spec.Benchmarks, res.Spec.TUs
	if err := shape(res, len(bms)*len(tus), "fig6"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]Fig6Row, len(bms))
	for i, name := range bms {
		row := Fig6Row{Bench: name, TPC: make(map[int]float64, len(tus))}
		for j, k := range tus {
			row.TPC[k] = ms[i*len(tus)+j].TPC()
		}
		rows[i] = row
	}
	return rows, nil
}

// RenderFig6 formats Figure 6, including the per-size suite average (the
// paper reports 1.65 / 2.6 / 4 / 6.2 for 2 / 4 / 8 / 16 TUs).
func RenderFig6(rows []Fig6Row) string {
	t := report.NewTable("Figure 6: TPC per program under STR",
		"bench", "2 TUs", "4 TUs", "8 TUs", "16 TUs")
	avg := make(map[int]float64, len(Fig6TUs))
	for _, r := range rows {
		t.AddRow(r.Bench, r.TPC[2], r.TPC[4], r.TPC[8], r.TPC[16])
		for _, tus := range Fig6TUs {
			avg[tus] += r.TPC[tus]
		}
	}
	n := float64(len(rows))
	t.AddRow("AVG", avg[2]/n, avg[4]/n, avg[8]/n, avg[16]/n)
	// The paper's §3.2 reading aid: utilization = TPC / TUs ("as the
	// number of TUs increases, their utilization decreases but it is
	// still acceptable even for 16 TU").
	t.AddRow("AVG util %", 100*avg[2]/n/2, 100*avg[4]/n/4, 100*avg[8]/n/8, 100*avg[16]/n/16)
	return t.String()
}

// Fig7Policies are the policies Figure 7 compares.
func Fig7Policies() []spec.Policy {
	return []spec.Policy{spec.Idle(), spec.STR(), spec.STRn(1), spec.STRn(2), spec.STRn(3)}
}

// Fig7Cell is the suite-average TPC for one policy at one machine size.
type Fig7Cell struct {
	Policy string
	TUs    int
	AvgTPC float64
}

// Fig7 reproduces Figure 7: average TPC for IDLE, STR and STR(1..3)
// across 2–16 TUs — the registered "fig7" grid. Each benchmark's twenty
// cells fuse into a single traversal, and on a shared Runner its STR
// column deduplicates against Figure 6 and its STR(3)/4TU cells against
// Table 2.
func Fig7(ctx context.Context, cfg Config) ([]Fig7Cell, error) {
	res, err := runNamed(ctx, cfg, "fig7", nil)
	if err != nil {
		return nil, err
	}
	return fig7FromResult(res)
}

func fig7FromResult(res *grid.Result) ([]Fig7Cell, error) {
	bms, pols, tus := res.Spec.Benchmarks, res.Spec.Policies, res.Spec.TUs
	if err := shape(res, len(bms)*len(pols)*len(tus), "fig7"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	out := make([]Fig7Cell, 0, len(pols)*len(tus))
	for pi, pol := range pols {
		for ti, k := range tus {
			var sum float64
			for bi := range bms {
				sum += ms[(bi*len(pols)+pi)*len(tus)+ti].TPC()
			}
			out = append(out, Fig7Cell{Policy: pol, TUs: k, AvgTPC: sum / float64(len(bms))})
		}
	}
	return out, nil
}

// RenderFig7 formats Figure 7 as a policy × TUs matrix.
func RenderFig7(cells []Fig7Cell) string {
	byPolicy := map[string]map[int]float64{}
	var order []string
	for _, c := range cells {
		m, ok := byPolicy[c.Policy]
		if !ok {
			m = map[int]float64{}
			byPolicy[c.Policy] = m
			order = append(order, c.Policy)
		}
		m[c.TUs] = c.AvgTPC
	}
	t := report.NewTable("Figure 7: average TPC by policy",
		"policy", "2 TUs", "4 TUs", "8 TUs", "16 TUs")
	for _, p := range order {
		m := byPolicy[p]
		t.AddRow(p, m[2], m[4], m[8], m[16])
	}
	return t.String()
}

// Fig8 reproduces Figure 8: path regularity and live-in predictability
// (LIT/LET unbounded, as the paper assumes) — the registered "fig8"
// grid, one pass per benchmark, plus the suite-average row.
func Fig8(ctx context.Context, cfg Config) ([]Fig8Row, Fig8Row, error) {
	res, err := runNamed(ctx, cfg, "fig8", nil)
	if err != nil {
		return nil, Fig8Row{}, err
	}
	return fig8FromResult(res)
}

func fig8FromResult(res *grid.Result) ([]Fig8Row, Fig8Row, error) {
	rows, err := rowsAs[Fig8Row](res, "fig8")
	if err != nil {
		return nil, Fig8Row{}, err
	}
	var agg datapred.Summary
	for _, row := range rows {
		s := row.S
		agg.SamePathPct += s.SamePathPct
		agg.LrPredPct += s.LrPredPct
		agg.LmPredPct += s.LmPredPct
		agg.AllLrPct += s.AllLrPct
		agg.AllLmPct += s.AllLmPct
		agg.AllDataPct += s.AllDataPct
		agg.LrLastPct += s.LrLastPct
		agg.LmLastPct += s.LmLastPct
		agg.Iters += s.Iters
		agg.Loops += s.Loops
	}
	n := float64(len(rows))
	agg.SamePathPct /= n
	agg.LrPredPct /= n
	agg.LmPredPct /= n
	agg.AllLrPct /= n
	agg.AllLmPct /= n
	agg.AllDataPct /= n
	agg.LrLastPct /= n
	agg.LmLastPct /= n
	return rows, Fig8Row{Bench: "AVG", S: agg}, nil
}

// RenderFig8 formats Figure 8: the aggregate bars plus the per-benchmark
// detail table. The paper's headline: the most frequent path covers ~85%
// of iterations.
func RenderFig8(rows []Fig8Row, avg Fig8Row) string {
	var b strings.Builder
	labels := []string{"same path", "lr pred", "lm pred", "all lr", "all lm", "all data"}
	values := []float64{avg.S.SamePathPct, avg.S.LrPredPct, avg.S.LmPredPct,
		avg.S.AllLrPct, avg.S.AllLmPct, avg.S.AllDataPct}
	b.WriteString(report.Bars("Figure 8: data speculation statistics (suite average, %)", 50, labels, values))
	t := report.NewTable("Figure 8 detail per benchmark (%; lv = plain last-value predictor)",
		"bench", "same path", "lr pred", "lr lv", "lm pred", "lm lv", "all lr", "all lm", "all data")
	for _, r := range rows {
		t.AddRow(r.Bench, r.S.SamePathPct, r.S.LrPredPct, r.S.LrLastPct, r.S.LmPredPct,
			r.S.LmLastPct, r.S.AllLrPct, r.S.AllLmPct, r.S.AllDataPct)
	}
	b.WriteString(t.String())
	return b.String()
}
