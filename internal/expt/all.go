package expt

import (
	"context"
	"fmt"
	"strings"

	"dynloop/internal/report"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
)

// All regenerates every table, figure, baseline and ablation of the
// evaluation through one shared runner — so overlapping cells across
// drivers are computed once — and returns the rendered report in the
// paper's order. The sections match `dynloop experiment all`.
func All(ctx context.Context, cfg Config) (string, error) {
	if cfg.Runner == nil {
		cfg.Runner = runner.New(runner.Config{Workers: cfg.Parallel, OnEvent: cfg.OnEvent})
	}
	var b strings.Builder
	sections := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) {
			rows, err := Table1(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows), nil
		}},
		{"fig4", func() (string, error) {
			pts, err := Fig4(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderFig4(pts), nil
		}},
		{"fig5", func() (string, error) {
			rows, err := Fig5(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderFig5(rows), nil
		}},
		{"fig6", func() (string, error) {
			rows, err := Fig6(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderFig6(rows), nil
		}},
		{"fig7", func() (string, error) {
			cells, err := Fig7(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderFig7(cells), nil
		}},
		{"table2", func() (string, error) {
			rows, err := Table2(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderTable2(rows), nil
		}},
		{"fig8", func() (string, error) {
			rows, avg, err := Fig8(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderFig8(rows, avg), nil
		}},
		{"baseline", func() (string, error) {
			rows, err := BaselineBranchPred(ctx, cfg)
			if err != nil {
				return "", err
			}
			trows, err := BaselineTaskPred(ctx, cfg)
			if err != nil {
				return "", err
			}
			return RenderBaseline(rows) + "\n" + RenderTaskPred(trows), nil
		}},
		{"ablations", func() (string, error) {
			var s strings.Builder
			cls, err := AblationCLSSize(ctx, cfg, nil)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderCLSSize(cls))
			let, err := AblationLETCapacity(ctx, cfg, nil)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderLETCapacity(let))
			rep, err := AblationReplacement(ctx, cfg, nil)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderReplacement(rep))
			ones, err := AblationOneShots(ctx, cfg)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderOneShots(ones))
			nr, err := AblationNestRule(ctx, cfg, nil)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderNestRule(nr))
			ex, err := AblationExclusion(ctx, cfg, 0)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderExclusion(ex))
			or, err := AblationOracle(ctx, cfg)
			if err != nil {
				return "", err
			}
			s.WriteString(RenderOracle(or))
			return s.String(), nil
		}},
	}
	for _, sec := range sections {
		out, err := sec.run()
		if err != nil {
			return "", fmt.Errorf("expt: %s: %w", sec.name, err)
		}
		b.WriteString(out)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// SweepSpec selects the grid a Sweep runs: every configured benchmark ×
// policy × machine size.
type SweepSpec struct {
	// Policies to grid over; nil selects the paper's five (IDLE, STR,
	// STR(1..3)).
	Policies []spec.Policy
	// TUs are the machine sizes; nil selects the paper's 2–16.
	TUs []int
}

func (s SweepSpec) policies() []spec.Policy {
	if len(s.Policies) == 0 {
		return Fig7Policies()
	}
	return s.Policies
}

func (s SweepSpec) tus() []int {
	if len(s.TUs) == 0 {
		return Fig6TUs
	}
	return s.TUs
}

// SweepRow is one cell of a Sweep grid.
type SweepRow struct {
	Bench  string
	Policy string
	TUs    int
	M      spec.Metrics
}

// Sweep runs an arbitrary benchmark × policy × TUs grid through the
// runner and returns one row per cell, in benchmark-major order — each
// benchmark's whole policy × TUs column fused into one traversal. It is
// the workhorse behind `dynloop sweep` and the scale-out benchmark.
func Sweep(ctx context.Context, cfg Config, sw SweepSpec) ([]SweepRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	pols, tus := sw.policies(), sw.tus()
	cells := make([]passCell[spec.Metrics], 0, len(bms)*len(pols)*len(tus))
	for _, bm := range bms {
		for _, pol := range pols {
			for _, k := range tus {
				cells = append(cells, specCell(cfg, bm, spec.Config{TUs: k, Policy: pol}))
			}
		}
	}
	ms, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(ms))
	i := 0
	for _, bm := range bms {
		for _, pol := range pols {
			for _, k := range tus {
				rows[i] = SweepRow{Bench: bm.Name, Policy: pol.String(), TUs: k, M: ms[i]}
				i++
			}
		}
	}
	return rows, nil
}

// RenderSweep formats a sweep grid.
func RenderSweep(rows []SweepRow) string {
	t := report.NewTable("Sweep: benchmark × policy × TUs",
		"bench", "policy", "TUs", "TPC", "hit %", "#spec.", "threads/spec")
	for _, r := range rows {
		t.AddRow(r.Bench, r.Policy, r.TUs, r.M.TPC(), r.M.HitRatio(), r.M.SpecEvents, r.M.ThreadsPerSpec())
	}
	return t.String()
}

// SweepGridSize reports how many cells a spec expands to under cfg, for
// progress displays.
func SweepGridSize(cfg Config, sw SweepSpec) (int, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return 0, err
	}
	return len(bms) * len(sw.policies()) * len(sw.tus()), nil
}

// ParsePolicies turns CLI policy names (idle, str, strN) into policies.
func ParsePolicies(names []string) ([]spec.Policy, error) {
	out := make([]spec.Policy, 0, len(names))
	for _, name := range names {
		pol, err := workloadPolicy(name)
		if err != nil {
			return nil, err
		}
		out = append(out, pol)
	}
	return out, nil
}

func workloadPolicy(name string) (spec.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "idle":
		return spec.Idle(), nil
	case "str":
		return spec.STR(), nil
	case "str1":
		return spec.STRn(1), nil
	case "str2":
		return spec.STRn(2), nil
	case "str3":
		return spec.STRn(3), nil
	default:
		return spec.Policy{}, fmt.Errorf("unknown policy %q (idle|str|str1|str2|str3)", name)
	}
}
