package expt

import (
	"context"
	"fmt"
	"strings"

	"dynloop/internal/grid"
	"dynloop/internal/report"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
)

// The canonical grids: every table, figure, baseline and ablation of
// the paper's evaluation is one registered grid.Spec plus the section
// renderer that formats it the way the paper lays it out. The registry
// is what the serving layer lists on GET /v1/grids and executes on
// POST /v1/grid, and what `dynloop grid -name` runs — each section of
// the report is an addressable, remotely servable grid.
func init() {
	reg := func(s grid.Spec, render func(*grid.Result) (string, error)) {
		grid.Register(grid.Entry{Spec: s, Render: render})
	}
	reg(grid.Spec{Name: "table1", Title: "Table 1: loop statistics", Kind: "table1"},
		func(res *grid.Result) (string, error) {
			rows, err := table1FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderTable1(rows), nil
		})
	reg(grid.Spec{Name: "fig4", Title: "Figure 4: LET/LIT hit ratios vs table size",
		Kind: "fig4", TableSizes: Fig4Sizes},
		func(res *grid.Result) (string, error) {
			pts, err := fig4FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderFig4(pts), nil
		})
	reg(grid.Spec{Name: "fig5", Title: "Figure 5: TPC for infinite TUs",
		Kind: "spec", BudgetDivs: []int{1, 4}, Policies: []string{"idle"}, TUs: []int{0}},
		func(res *grid.Result) (string, error) {
			rows, err := fig5FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderFig5(rows), nil
		})
	reg(grid.Spec{Name: "fig6", Title: "Figure 6: TPC per program under STR",
		Kind: "spec", Policies: []string{"str"}, TUs: Fig6TUs},
		func(res *grid.Result) (string, error) {
			rows, err := fig6FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderFig6(rows), nil
		})
	reg(grid.Spec{Name: "fig7", Title: "Figure 7: average TPC by policy",
		Kind: "spec", Policies: policyNames(Fig7Policies()), TUs: Fig6TUs},
		func(res *grid.Result) (string, error) {
			cells, err := fig7FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderFig7(cells), nil
		})
	reg(grid.Spec{Name: "table2", Title: "Table 2: control speculation statistics",
		Kind: "spec", Policies: []string{"str3"}, TUs: []int{4}},
		func(res *grid.Result) (string, error) {
			rows, err := table2FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderTable2(rows), nil
		})
	reg(grid.Spec{Name: "fig8", Title: "Figure 8: data speculation statistics", Kind: "fig8"},
		func(res *grid.Result) (string, error) {
			rows, avg, err := fig8FromResult(res)
			if err != nil {
				return "", err
			}
			return RenderFig8(rows, avg), nil
		})
	reg(grid.Spec{Name: "baseline/branch", Title: "Baseline: conventional branch prediction",
		Kind: "branchpred"},
		func(res *grid.Result) (string, error) {
			rows, err := baselineRows(res)
			if err != nil {
				return "", err
			}
			return RenderBaseline(rows), nil
		})
	reg(grid.Spec{Name: "baseline/task", Title: "Baseline: next-task prediction",
		Kind: "taskpred"},
		func(res *grid.Result) (string, error) {
			rows, err := taskPredRows(res)
			if err != nil {
				return "", err
			}
			return RenderTaskPred(rows), nil
		})
	reg(grid.Spec{Name: "ablation/cls", Title: "Ablation: CLS capacity", Kind: "clssize"},
		func(res *grid.Result) (string, error) {
			rows, err := clsSizeFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderCLSSize(rows), nil
		})
	reg(grid.Spec{Name: "ablation/let", Title: "Ablation: speculation-engine LET capacity",
		Kind: "spec", Policies: []string{"str3"}, TUs: []int{4}, LETCaps: []int{2, 4, 8, 16, 0}},
		func(res *grid.Result) (string, error) {
			rows, err := letCapacityFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderLETCapacity(rows), nil
		})
	reg(grid.Spec{Name: "ablation/replacement", Title: "Ablation: LRU vs nesting-aware insertion",
		Kind: "replacement"},
		func(res *grid.Result) (string, error) {
			rows, err := replacementFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderReplacement(rows), nil
		})
	reg(grid.Spec{Name: "ablation/oneshots", Title: "Ablation: counting 1-iteration executions",
		Kind: "oneshots"},
		func(res *grid.Result) (string, error) {
			rows, err := oneShotsFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderOneShots(rows), nil
		})
	reg(grid.Spec{Name: "ablation/nestrule", Title: "Ablation: STR(i) interpretation",
		Kind: "spec", Policies: []string{"str1", "str3"}, TUs: []int{4, 8},
		NestRules: []string{"starvation", "static"}},
		func(res *grid.Result) (string, error) {
			rows, err := nestRuleFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderNestRule(rows), nil
		})
	reg(grid.Spec{Name: "ablation/exclusion", Title: "Ablation: §2.3.2 exclusion table",
		Kind: "spec", Policies: []string{"str3"}, TUs: []int{4},
		Exclusion: []grid.ExclusionSpec{{}, {Enabled: true, Threshold: 0.85}}},
		func(res *grid.Result) (string, error) {
			rows, err := exclusionFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderExclusion(rows), nil
		})
	reg(grid.Spec{Name: "ablation/oracle", Title: "Ablation: STR vs oracle iteration counts",
		Kind: "oracle"},
		func(res *grid.Result) (string, error) {
			rows, err := oracleFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderOracle(rows), nil
		})
	reg(grid.Spec{Name: "sweep", Title: "Sweep: benchmark × policy × TUs",
		Kind: "spec", Policies: policyNames(Fig7Policies()), TUs: Fig6TUs},
		func(res *grid.Result) (string, error) {
			rows, err := sweepFromResult(res)
			if err != nil {
				return "", err
			}
			return RenderSweep(rows), nil
		})
}

func baselineRows(res *grid.Result) ([]BaselineRow, error) {
	return rowsAs[BaselineRow](res, "baseline/branch")
}

func taskPredRows(res *grid.Result) ([]TaskPredRow, error) {
	return rowsAs[TaskPredRow](res, "baseline/task")
}

func policyNames(pols []spec.Policy) []string {
	out := make([]string, len(pols))
	for i, p := range pols {
		out[i] = p.String()
	}
	return out
}

// allSections is the paper-order section list of `experiment all`: each
// section names the registered grids it renders and how their outputs
// join.
var allSections = []struct {
	name    string
	entries []string
	sep     string
}{
	{"table1", []string{"table1"}, ""},
	{"fig4", []string{"fig4"}, ""},
	{"fig5", []string{"fig5"}, ""},
	{"fig6", []string{"fig6"}, ""},
	{"fig7", []string{"fig7"}, ""},
	{"table2", []string{"table2"}, ""},
	{"fig8", []string{"fig8"}, ""},
	{"baseline", []string{"baseline/branch", "baseline/task"}, "\n"},
	{"ablations", []string{
		"ablation/cls", "ablation/let", "ablation/replacement", "ablation/oneshots",
		"ablation/nestrule", "ablation/exclusion", "ablation/oracle"}, ""},
}

// All regenerates every table, figure, baseline and ablation of the
// evaluation — each one a registered grid spec — through one shared
// runner, so overlapping cells across grids are computed once, and
// returns the rendered report in the paper's order. The sections match
// `dynloop experiment all`. The runner is resolved exactly once here
// (see Config.Runner for the sharing contract).
func All(ctx context.Context, cfg Config) (string, error) {
	if cfg.Runner == nil {
		cfg.Runner = runner.New(runner.Config{Workers: cfg.Parallel, OnEvent: cfg.OnEvent})
	}
	var b strings.Builder
	for _, sec := range allSections {
		parts := make([]string, 0, len(sec.entries))
		for _, name := range sec.entries {
			e, ok := grid.Lookup(name)
			if !ok {
				return "", fmt.Errorf("expt: %s: grid %q not registered", sec.name, name)
			}
			res, err := grid.Run(ctx, cfg, e.Spec)
			if err != nil {
				return "", fmt.Errorf("expt: %s: %w", sec.name, err)
			}
			out, err := e.Render(res)
			if err != nil {
				return "", fmt.Errorf("expt: %s: %w", sec.name, err)
			}
			parts = append(parts, out)
		}
		b.WriteString(strings.Join(parts, sec.sep))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// SweepSpec selects the grid a Sweep runs: every configured benchmark ×
// policy × machine size.
type SweepSpec struct {
	// Policies to grid over; nil selects the paper's five (IDLE, STR,
	// STR(1..3)).
	Policies []spec.Policy
	// TUs are the machine sizes; nil selects the paper's 2–16.
	TUs []int
}

func (s SweepSpec) policies() []spec.Policy {
	if len(s.Policies) == 0 {
		return Fig7Policies()
	}
	return s.Policies
}

func (s SweepSpec) tus() []int {
	if len(s.TUs) == 0 {
		return Fig6TUs
	}
	return s.TUs
}

// gridSpec lowers the sweep selection onto the registered "sweep" grid.
func (s SweepSpec) gridSpec() grid.Spec {
	e, _ := grid.Lookup("sweep")
	gs := e.Spec
	gs.Policies = policyNames(s.policies())
	gs.TUs = s.tus()
	return gs
}

// SweepRow is one cell of a Sweep grid.
type SweepRow struct {
	Bench  string
	Policy string
	TUs    int
	M      spec.Metrics
}

// Sweep runs an arbitrary benchmark × policy × TUs grid through the
// runner and returns one row per cell, in benchmark-major order — each
// benchmark's whole policy × TUs column fused into one traversal. It is
// the workhorse behind `dynloop sweep` and the scale-out benchmark.
func Sweep(ctx context.Context, cfg Config, sw SweepSpec) ([]SweepRow, error) {
	res, err := grid.Run(ctx, cfg, sw.gridSpec())
	if err != nil {
		return nil, err
	}
	return sweepFromResult(res)
}

func sweepFromResult(res *grid.Result) ([]SweepRow, error) {
	bms, pols, tus := res.Spec.Benchmarks, res.Spec.Policies, res.Spec.TUs
	if err := shape(res, len(bms)*len(pols)*len(tus), "sweep"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]SweepRow, len(ms))
	i := 0
	for _, bm := range bms {
		for _, pol := range pols {
			for _, k := range tus {
				rows[i] = SweepRow{Bench: bm, Policy: pol, TUs: k, M: ms[i]}
				i++
			}
		}
	}
	return rows, nil
}

// RenderSweep formats a sweep grid.
func RenderSweep(rows []SweepRow) string {
	t := report.NewTable("Sweep: benchmark × policy × TUs",
		"bench", "policy", "TUs", "TPC", "hit %", "#spec.", "threads/spec")
	for _, r := range rows {
		t.AddRow(r.Bench, r.Policy, r.TUs, r.M.TPC(), r.M.HitRatio(), r.M.SpecEvents, r.M.ThreadsPerSpec())
	}
	return t.String()
}

// SweepGridSize reports how many cells a spec expands to under cfg, for
// progress displays.
func SweepGridSize(cfg Config, sw SweepSpec) (int, error) {
	return sw.gridSpec().Size(cfg)
}

// ParsePolicies turns CLI policy names (idle, str, strN — the canonical
// IDLE/STR/STR(N) forms work too) into policies.
func ParsePolicies(names []string) ([]spec.Policy, error) {
	return grid.ParsePolicies(names)
}
