package expt

import (
	"context"
	"strings"
	"testing"

	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
)

// The Config-default and cell-key tests live with the machinery in
// internal/grid now (grid_test.go); this file covers the drivers.

// TestFusionByteIdenticalAndFewerTraversals is the acceptance property
// of the fused pass pipeline: the full rendered report under fused
// multi-pass execution is byte-identical to the per-cell reference path
// (each cell traversing the stream alone), at 1 worker and at 8 — while
// using at least 3× fewer interpreter traversals.
func TestFusionByteIdenticalAndFewerTraversals(t *testing.T) {
	base := Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}
	render := func(parallel int, noFuse bool) (string, uint64) {
		cfg := base
		cfg.Parallel = parallel
		cfg.NoFuse = noFuse
		before := harness.Traversals()
		out, err := All(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallel=%d noFuse=%v: %v", parallel, noFuse, err)
		}
		return out, harness.Traversals() - before
	}
	ref, perCell := render(1, true)
	for _, parallel := range []int{1, 8} {
		fusedOut, fused := render(parallel, false)
		if fusedOut != ref {
			t.Fatalf("fused report (parallel=%d) differs from the per-cell reference:\n--- per-cell ---\n%s\n--- fused ---\n%s",
				parallel, ref, fusedOut)
		}
		if fused*3 > perCell {
			t.Errorf("parallel=%d: fused run used %d traversals, per-cell used %d — want >=3x fewer", parallel, fused, perCell)
		}
	}
}

// TestParallelEqualsSerial: a parallel Table1 run must equal a repeat of
// itself (each job owns its unit, so parallelism cannot leak).
func TestParallelEqualsSerial(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 60_000}
	a, err := Table1(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestAllDriversParallelDeterminism is the acceptance property of the
// orchestrator: the full rendered report — every table, figure, baseline
// and ablation — is byte-identical at 1 worker and at 8.
func TestAllDriversParallelDeterminism(t *testing.T) {
	base := Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}
	render := func(parallel int) string {
		cfg := base
		cfg.Parallel = parallel
		out, err := All(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return out
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Fatalf("report diverges between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "Table 1") || !strings.Contains(seq, "Figure 7") || !strings.Contains(seq, "oracle") {
		t.Fatalf("report is missing sections:\n%s", seq)
	}
}

// TestSharedRunnerDeduplicates: run Fig6 then Fig7 on one Runner — the
// STR column of Figure 7 is exactly Figure 6, so every one of those
// cells must come from the cache, and both figures must agree.
func TestSharedRunnerDeduplicates(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 50_000, Benchmarks: []string{"swim", "compress"}, Runner: runner.New(runner.Config{Workers: 4})}
	f6, err := Fig6(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after6 := cfg.Runner.Stats()
	f7, err := Fig7(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after7 := cfg.Runner.Stats()
	// Fig7 grid: 2 benches × 5 policies × 4 TUs = 40 cells, of which the
	// 8 STR cells already ran in Fig6.
	executedByFig7 := after7.Executed - after6.Executed
	if executedByFig7 != 32 {
		t.Fatalf("Fig7 executed %d cells, want 32 (8 STR cells cached)", executedByFig7)
	}
	hits := after7.CacheHits + after7.Coalesced - after6.CacheHits - after6.Coalesced
	if hits != 8 {
		t.Fatalf("Fig7 hit the cache %d times, want 8", hits)
	}
	// And the deduplicated numbers agree across the two figures.
	strAvg := map[int]float64{}
	for _, r := range f6 {
		for tus, tpc := range r.TPC {
			strAvg[tus] += tpc / float64(len(f6))
		}
	}
	for _, c := range f7 {
		if c.Policy != "STR" {
			continue
		}
		if got := strAvg[c.TUs]; got != c.AvgTPC {
			t.Fatalf("STR@%dTU: fig6 avg %v != fig7 avg %v", c.TUs, got, c.AvgTPC)
		}
	}
}

// TestDriverCancellation: a cancelled context aborts a driver with the
// context error.
func TestDriverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table1(ctx, Config{Budget: 50_000}); err == nil {
		t.Fatal("cancelled Table1 returned no error")
	}
	if _, err := All(ctx, Config{Budget: 50_000, Benchmarks: []string{"swim"}}); err == nil {
		t.Fatal("cancelled All returned no error")
	}
}

// TestSweepGrid covers the sweep driver: grid shape, defaults, render.
func TestSweepGrid(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 50_000, Benchmarks: []string{"swim", "li"}}
	rows, err := Sweep(ctx, cfg, SweepSpec{Policies: []spec.Policy{spec.STR(), spec.Idle()}, TUs: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*2 {
		t.Fatalf("grid size %d, want 8", len(rows))
	}
	if rows[0].Bench != "swim" || rows[0].Policy != "STR" || rows[0].TUs != 2 {
		t.Fatalf("unexpected first cell: %+v", rows[0])
	}
	for _, r := range rows {
		if r.M.TPC() < 1.0-1e-9 {
			t.Fatalf("cell %s/%s/%d has TPC %v < 1", r.Bench, r.Policy, r.TUs, r.M.TPC())
		}
	}
	if RenderSweep(rows) == "" {
		t.Fatal("empty sweep render")
	}
	n, err := SweepGridSize(cfg, SweepSpec{})
	if err != nil || n != 2*5*4 {
		t.Fatalf("default grid size = %d (%v), want 40", n, err)
	}
	if _, err := ParsePolicies([]string{"idle", "str3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePolicies([]string{"bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestDriversSmoke exercises every table/figure/ablation driver on a
// small subset so the drivers themselves are covered in-package (the
// root integration tests exercise them through the facade).
func TestDriversSmoke(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 80_000, Benchmarks: []string{"m88ksim", "perl"}}
	if rows, err := Table1(ctx, cfg); err != nil || len(rows) != 2 {
		t.Fatalf("table1: %v", err)
	} else if RenderTable1(rows) == "" {
		t.Fatal("empty render")
	}
	if rows, err := Table2(ctx, cfg); err != nil || len(rows) != 2 {
		t.Fatalf("table2: %v", err)
	} else if RenderTable2(rows) == "" {
		t.Fatal("empty render")
	}
	if pts, err := Fig4(ctx, cfg); err != nil || RenderFig4(pts) == "" {
		t.Fatalf("fig4: %v", err)
	}
	if rows, err := Fig5(ctx, cfg); err != nil || RenderFig5(rows) == "" {
		t.Fatalf("fig5: %v", err)
	}
	if rows, err := Fig6(ctx, cfg); err != nil || RenderFig6(rows) == "" {
		t.Fatalf("fig6: %v", err)
	}
	if cells, err := Fig7(ctx, cfg); err != nil || RenderFig7(cells) == "" {
		t.Fatalf("fig7: %v", err)
	}
	if rows, avg, err := Fig8(ctx, cfg); err != nil || RenderFig8(rows, avg) == "" {
		t.Fatalf("fig8: %v", err)
	}
	if rows, err := BaselineBranchPred(ctx, cfg); err != nil || RenderBaseline(rows) == "" {
		t.Fatalf("baseline: %v", err)
	}
	if rows, err := BaselineTaskPred(ctx, cfg); err != nil || RenderTaskPred(rows) == "" {
		t.Fatalf("taskpred: %v", err)
	}
	if rows, err := AblationCLSSize(ctx, cfg, []int{4}); err != nil || RenderCLSSize(rows) == "" {
		t.Fatalf("cls: %v", err)
	}
	if rows, err := AblationLETCapacity(ctx, cfg, []int{4}); err != nil || RenderLETCapacity(rows) == "" {
		t.Fatalf("let: %v", err)
	}
	if rows, err := AblationReplacement(ctx, cfg, []int{4}); err != nil || RenderReplacement(rows) == "" {
		t.Fatalf("replacement: %v", err)
	}
	if rows, err := AblationOneShots(ctx, cfg); err != nil || RenderOneShots(rows) == "" {
		t.Fatalf("oneshots: %v", err)
	}
	if rows, err := AblationNestRule(ctx, cfg, []int{4}); err != nil || RenderNestRule(rows) == "" {
		t.Fatalf("nestrule: %v", err)
	}
	if rows, err := AblationExclusion(ctx, cfg, 0.85); err != nil || RenderExclusion(rows) == "" {
		t.Fatalf("exclusion: %v", err)
	}
	if rows, err := AblationOracle(ctx, cfg); err != nil || RenderOracle(rows) == "" {
		t.Fatalf("oracle: %v", err)
	}
}

// TestOracleBeatsBlindSTR: the oracle ablation's defining property.
func TestOracleBeatsBlindSTR(t *testing.T) {
	rows, err := AblationOracle(context.Background(), Config{Budget: 150_000, Benchmarks: []string{"applu"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OracleHit < r.STRHit {
		t.Fatalf("oracle hit %.1f < STR hit %.1f", r.OracleHit, r.STRHit)
	}
	if r.OracleTPC+1e-9 < r.STRTPC {
		t.Fatalf("oracle TPC %.2f < STR TPC %.2f", r.OracleTPC, r.STRTPC)
	}
}
