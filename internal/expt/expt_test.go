package expt

import (
	"errors"
	"testing"

	"dynloop/internal/workload"
)

// TestConfigDefaults covers budget/seed defaulting and subset
// resolution.
func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.budget() != DefaultBudget || c.seed() != 1 {
		t.Fatalf("defaults: budget=%d seed=%d", c.budget(), c.seed())
	}
	c = Config{Budget: 5, Seed: 9}
	if c.budget() != 5 || c.seed() != 9 {
		t.Fatalf("overrides ignored")
	}
	bms, err := Config{}.benchmarks()
	if err != nil || len(bms) != 18 {
		t.Fatalf("all benchmarks: %d %v", len(bms), err)
	}
	bms, err = Config{Benchmarks: []string{"swim", "perl"}}.benchmarks()
	if err != nil || len(bms) != 2 || bms[0].Name != "swim" {
		t.Fatalf("subset: %v %v", bms, err)
	}
	if _, err := (Config{Benchmarks: []string{"nope"}}).benchmarks(); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestParMapOrderAndErrors: results keep benchmark order; any error
// surfaces.
func TestParMapOrderAndErrors(t *testing.T) {
	bms, err := Config{}.benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	names, err := parMap(bms, func(bm workload.Benchmark) (string, error) {
		return bm.Name, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bms {
		if names[i] != bms[i].Name {
			t.Fatalf("order broken at %d: %s vs %s", i, names[i], bms[i].Name)
		}
	}
	boom := errors.New("boom")
	_, err = parMap(bms, func(bm workload.Benchmark) (string, error) {
		if bm.Name == "li" {
			return "", boom
		}
		return bm.Name, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestParallelEqualsSerial: a parallel Table1 run must equal a repeat of
// itself (each goroutine owns its unit, so parallelism cannot leak).
func TestParallelEqualsSerial(t *testing.T) {
	cfg := Config{Budget: 60_000}
	a, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestDriversSmoke exercises every table/figure/ablation driver on a
// small subset so the drivers themselves are covered in-package (the
// root integration tests exercise them through the facade).
func TestDriversSmoke(t *testing.T) {
	cfg := Config{Budget: 80_000, Benchmarks: []string{"m88ksim", "perl"}}
	if rows, err := Table1(cfg); err != nil || len(rows) != 2 {
		t.Fatalf("table1: %v", err)
	} else if RenderTable1(rows) == "" {
		t.Fatal("empty render")
	}
	if rows, err := Table2(cfg); err != nil || len(rows) != 2 {
		t.Fatalf("table2: %v", err)
	} else if RenderTable2(rows) == "" {
		t.Fatal("empty render")
	}
	if pts, err := Fig4(cfg); err != nil || RenderFig4(pts) == "" {
		t.Fatalf("fig4: %v", err)
	}
	if rows, err := Fig5(cfg); err != nil || RenderFig5(rows) == "" {
		t.Fatalf("fig5: %v", err)
	}
	if rows, err := Fig6(cfg); err != nil || RenderFig6(rows) == "" {
		t.Fatalf("fig6: %v", err)
	}
	if cells, err := Fig7(cfg); err != nil || RenderFig7(cells) == "" {
		t.Fatalf("fig7: %v", err)
	}
	if rows, avg, err := Fig8(cfg); err != nil || RenderFig8(rows, avg) == "" {
		t.Fatalf("fig8: %v", err)
	}
	if rows, err := BaselineBranchPred(cfg); err != nil || RenderBaseline(rows) == "" {
		t.Fatalf("baseline: %v", err)
	}
	if rows, err := BaselineTaskPred(cfg); err != nil || RenderTaskPred(rows) == "" {
		t.Fatalf("taskpred: %v", err)
	}
	if rows, err := AblationCLSSize(cfg, []int{4}); err != nil || RenderCLSSize(rows) == "" {
		t.Fatalf("cls: %v", err)
	}
	if rows, err := AblationLETCapacity(cfg, []int{4}); err != nil || RenderLETCapacity(rows) == "" {
		t.Fatalf("let: %v", err)
	}
	if rows, err := AblationReplacement(cfg, []int{4}); err != nil || RenderReplacement(rows) == "" {
		t.Fatalf("replacement: %v", err)
	}
	if rows, err := AblationOneShots(cfg); err != nil || RenderOneShots(rows) == "" {
		t.Fatalf("oneshots: %v", err)
	}
	if rows, err := AblationNestRule(cfg, []int{4}); err != nil || RenderNestRule(rows) == "" {
		t.Fatalf("nestrule: %v", err)
	}
	if rows, err := AblationExclusion(cfg, 0.85); err != nil || RenderExclusion(rows) == "" {
		t.Fatalf("exclusion: %v", err)
	}
	if rows, err := AblationOracle(cfg); err != nil || RenderOracle(rows) == "" {
		t.Fatalf("oracle: %v", err)
	}
}

// TestOracleBeatsBlindSTR: the oracle ablation's defining property.
func TestOracleBeatsBlindSTR(t *testing.T) {
	rows, err := AblationOracle(Config{Budget: 150_000, Benchmarks: []string{"applu"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OracleHit < r.STRHit {
		t.Fatalf("oracle hit %.1f < STR hit %.1f", r.OracleHit, r.STRHit)
	}
	if r.OracleTPC+1e-9 < r.STRTPC {
		t.Fatalf("oracle TPC %.2f < STR TPC %.2f", r.OracleTPC, r.STRTPC)
	}
}
