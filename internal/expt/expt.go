// Package expt drives the experiments that regenerate every table and
// figure of the paper's evaluation, plus the ablations called out in
// DESIGN.md. The CLI (cmd/dynloop), the examples and the root benchmark
// harness all run experiments through this package.
package expt

import (
	"fmt"
	"runtime"
	"sync"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/loopdet"
	"dynloop/internal/workload"
)

// Config parametrises an experiment run.
type Config struct {
	// Budget is the per-benchmark dynamic instruction budget. 0 selects
	// DefaultBudget. (The paper ran the first 10^9 instructions; all our
	// statistics stabilise far below that on the synthetic workloads —
	// see DESIGN.md.)
	Budget uint64
	// Seed decorrelates workload input sequences; 0 selects 1.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all 18).
	Benchmarks []string
	// CLSCapacity overrides the CLS size (0 = the paper's 16).
	CLSCapacity int
}

// DefaultBudget is the per-benchmark instruction budget experiments use
// unless configured otherwise.
const DefaultBudget = 4_000_000

func (c Config) budget() uint64 {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// benchmarks resolves the configured subset.
func (c Config) benchmarks() ([]workload.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return workload.All(), nil
	}
	out := make([]workload.Benchmark, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// run builds one benchmark and executes it under the configured budget
// with the given observers attached.
func (c Config) run(bm workload.Benchmark, observers ...loopdet.Observer) error {
	u, err := bm.Build(c.seed())
	if err != nil {
		return fmt.Errorf("expt: build %s: %w", bm.Name, err)
	}
	return c.runUnit(u, observers...)
}

func (c Config) runUnit(u *builder.Unit, observers ...loopdet.Observer) error {
	_, err := runWithResult(c, u, observers...)
	return err
}

// runWithResult runs a built unit and exposes the harness result (used by
// ablations that need detector statistics).
func runWithResult(cfg Config, u *builder.Unit, observers ...loopdet.Observer) (harness.Result, error) {
	hc := harness.Config{Budget: cfg.budget(), CLSCapacity: cfg.CLSCapacity}
	return harness.Run(u, hc, observers...)
}

// parMap runs fn once per benchmark, concurrently (bounded by
// runtime.GOMAXPROCS), and returns the results in benchmark order.
// Every run builds its own unit and observers, so runs are independent;
// determinism is preserved because results are slotted by index.
func parMap[T any](bms []workload.Benchmark, fn func(bm workload.Benchmark) (T, error)) ([]T, error) {
	out := make([]T, len(bms))
	errs := make([]error, len(bms))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, bm := range bms {
		wg.Add(1)
		go func(i int, bm workload.Benchmark) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = fn(bm)
		}(i, bm)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
