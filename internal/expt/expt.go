// Package expt drives the experiments that regenerate every table and
// figure of the paper's evaluation, plus the ablations called out in
// DESIGN.md. The CLI (cmd/dynloop), the examples and the root benchmark
// harness all run experiments through this package.
//
// Every driver decomposes its table or figure into independent cells
// (benchmark × policy × table-capacity × ablation) and submits them as a
// job list to an internal/runner pool, so experiments parallelise across
// GOMAXPROCS while producing byte-identical output at any worker count.
// Share one Runner across drivers (as All and the CLI do) and
// overlapping cells — Figure 7's STR column is Figure 6, its STR(3)/4TU
// cells are Table 2's — are computed once.
package expt

import (
	"context"
	"fmt"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/loopdet"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// Config parametrises an experiment run.
type Config struct {
	// Budget is the per-benchmark dynamic instruction budget. 0 selects
	// DefaultBudget. (The paper ran the first 10^9 instructions; all our
	// statistics stabilise far below that on the synthetic workloads —
	// see DESIGN.md.)
	Budget uint64
	// Seed decorrelates workload input sequences; 0 selects 1.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all 18).
	Benchmarks []string
	// CLSCapacity overrides the CLS size (0 = the paper's 16).
	CLSCapacity int
	// BatchSize overrides the interpreter's event-batch size
	// (0 = interp.DefaultBatchSize). Results are byte-identical at any
	// setting; the determinism tests sweep it.
	BatchSize int
	// Parallel bounds the worker goroutines when the driver builds its
	// own runner (0 = GOMAXPROCS); 1 reproduces the sequential schedule.
	// Ignored when Runner is set.
	Parallel int
	// Runner, when non-nil, executes the driver's jobs. Share one across
	// drivers to deduplicate repeated cells and pool the worker bound;
	// leave nil and each driver call runs on a private runner.
	Runner *runner.Runner
	// OnEvent streams per-job progress when the driver builds its own
	// runner. Ignored when Runner is set (configure it there instead).
	OnEvent func(runner.Event)
}

// DefaultBudget is the per-benchmark instruction budget experiments use
// unless configured otherwise.
const DefaultBudget = 4_000_000

func (c Config) budget() uint64 {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// pool resolves the runner the driver submits its jobs to.
func (c Config) pool() *runner.Runner {
	if c.Runner != nil {
		return c.Runner
	}
	return runner.New(runner.Config{Workers: c.Parallel, OnEvent: c.OnEvent})
}

// benchmarks resolves the configured subset.
func (c Config) benchmarks() ([]workload.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return workload.All(), nil
	}
	out := make([]workload.Benchmark, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// cellKey builds a runner cache key: the Config fields every run depends
// on, then the cell's own coordinates. Keys must determine the result
// (and its Go type) completely — see runner.Job.
func (c Config) cellKey(parts ...any) string {
	key := fmt.Sprintf("b%d|s%d|cls%d|ba%d", c.budget(), c.seed(), c.CLSCapacity, c.BatchSize)
	for _, p := range parts {
		key += fmt.Sprintf("|%v", p)
	}
	return key
}

// run builds one benchmark and executes it under the configured budget
// with the given observers attached.
func (c Config) run(bm workload.Benchmark, observers ...loopdet.Observer) error {
	u, err := bm.Build(c.seed())
	if err != nil {
		return fmt.Errorf("expt: build %s: %w", bm.Name, err)
	}
	return c.runUnit(u, observers...)
}

func (c Config) runUnit(u *builder.Unit, observers ...loopdet.Observer) error {
	_, err := runWithResult(c, u, observers...)
	return err
}

// runWithResult runs a built unit and exposes the harness result (used by
// ablations that need detector statistics).
func runWithResult(cfg Config, u *builder.Unit, observers ...loopdet.Observer) (harness.Result, error) {
	hc := harness.Config{Budget: cfg.budget(), CLSCapacity: cfg.CLSCapacity, BatchSize: cfg.BatchSize}
	return harness.Run(u, hc, observers...)
}

// specJob is the shared benchmark × engine-configuration cell that
// Table 2, Figures 5–7, the sweep command and several ablations are all
// built from; the cache key covers every spec.Config field so distinct
// configurations never collide, while identical cells submitted by
// different drivers on a shared Runner are computed once. ec.OracleIters
// must be nil (a slice cannot be keyed); oracle runs use dedicated
// composite jobs instead.
func specJob(cfg Config, bm workload.Benchmark, ec spec.Config) runner.Job[spec.Metrics] {
	if ec.OracleIters != nil {
		panic("expt: specJob cannot key an oracle run")
	}
	return runner.Job[spec.Metrics]{
		Key: cfg.cellKey("spec", bm.Name, ec.TUs, ec.Policy, ec.LETCapacity, ec.NestRule,
			ec.Exclude, ec.ExcludeThreshold, ec.ExcludeMinResolved, ec.ExcludeCapacity),
		Label: fmt.Sprintf("%s %s/%d TUs", bm.Name, ec.Policy, ec.TUs),
		Run: func(ctx context.Context) (spec.Metrics, error) {
			e := spec.NewEngine(ec)
			if err := cfg.run(bm, e); err != nil {
				return spec.Metrics{}, err
			}
			return e.Metrics(), nil
		},
	}
}
