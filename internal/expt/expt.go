// Package expt drives the experiments that regenerate every table and
// figure of the paper's evaluation, plus the ablations called out in
// DESIGN.md. The CLI (cmd/dynloop), the examples and the root benchmark
// harness all run experiments through this package.
//
// Every driver is a thin layer over internal/grid: it names a canonical
// registered grid.Spec (Table 1 is the "table1" grid, Figure 7 the
// "fig7" grid, the CLS ablation "ablation/cls", ...), optionally
// overrides an axis from its parameters, executes the spec through
// grid.Run — which compiles the axes to versioned cells, serves cached
// cells from memory or the optional disk store, and fuses the missing
// cells of each (benchmark, budget, seed) group into one interpreter
// traversal — and aggregates the cell values into the section's rows.
// The renderers then format the rows exactly as the paper lays them
// out. Cells are cached and deduplicated individually: share one Runner
// across drivers (as All and the CLI do) and overlapping cells —
// Figure 7's STR column is Figure 6, its STR(3)/4TU cells are
// Table 2's — are computed once.
package expt

import (
	"context"
	"fmt"

	"dynloop/internal/grid"
	"dynloop/internal/spec"
)

// Config parametrises an experiment run; it is the grid layer's
// execution config (see grid.Config for the field semantics and the
// Runner sharing contract).
type Config = grid.Config

// DefaultBudget is the per-benchmark instruction budget experiments use
// unless configured otherwise.
const DefaultBudget = grid.DefaultBudget

// The cell result types live in internal/grid (they are the
// codec-registered values the store and the wire carry); the historical
// expt names remain as aliases.
type (
	// Table1Row is one benchmark's loop statistics next to the paper's.
	Table1Row = grid.Table1Row
	// Fig8Row is one benchmark's data-speculation statistics.
	Fig8Row = grid.Fig8Row
	// OneShotRow compares Table-1 statistics with and without counting
	// single-iteration executions.
	OneShotRow = grid.OneShotRow
	// BaselineRow is one benchmark's conventional branch-prediction
	// accuracies.
	BaselineRow = grid.BaselineRow
	// TaskPredRow compares next-task prediction against iteration-count
	// speculation on one benchmark.
	TaskPredRow = grid.TaskPredRow
	// OracleRow compares the STR policy against speculation with
	// perfect iteration-count knowledge.
	OracleRow = grid.OracleRow
)

// runNamed executes the named registered grid under cfg, with mod (when
// non-nil) applied to a copy of its canonical spec — how the drivers
// override one axis from their parameters.
func runNamed(ctx context.Context, cfg Config, name string, mod func(*grid.Spec)) (*grid.Result, error) {
	e, ok := grid.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("expt: grid %q not registered", name)
	}
	s := e.Spec
	if mod != nil {
		mod(&s)
	}
	return grid.Run(ctx, cfg, s)
}

// metrics reads the result's values as engine metrics (kind "spec"
// grids); grid.Run has already type-checked them.
func metrics(res *grid.Result) []spec.Metrics {
	out := make([]spec.Metrics, len(res.Values))
	for i, v := range res.Values {
		out[i] = v.(spec.Metrics)
	}
	return out
}

// shape guards a from-result conversion: the value count must match the
// aggregation's index arithmetic.
func shape(res *grid.Result, want int, what string) error {
	if len(res.Values) != want {
		return fmt.Errorf("expt: %s grid has %d cells, want %d", what, len(res.Values), want)
	}
	return nil
}

// rowsAs reads a one-cell-per-benchmark grid result as its row type —
// the common shape of Table 1, Figure 8, the baselines and the
// per-benchmark ablations.
func rowsAs[T any](res *grid.Result, what string) ([]T, error) {
	if err := shape(res, len(res.Spec.Benchmarks), what); err != nil {
		return nil, err
	}
	rows := make([]T, len(res.Values))
	for i, v := range res.Values {
		r, ok := v.(T)
		if !ok {
			return nil, fmt.Errorf("expt: %s cell %d holds %T, not the grid's row type", what, i, v)
		}
		rows[i] = r
	}
	return rows, nil
}
