// Package expt drives the experiments that regenerate every table and
// figure of the paper's evaluation, plus the ablations called out in
// DESIGN.md. The CLI (cmd/dynloop), the examples and the root benchmark
// harness all run experiments through this package.
//
// Every driver decomposes its table or figure into independent cells
// (benchmark × policy × table-capacity × ablation) and declares each
// cell as an analysis pass over its benchmark's instruction stream. The
// internal/runner pool coalesces the cells of each (benchmark, budget)
// group into one fused execution — a single interpreter traversal feeds
// every pass of the group through harness.MultiRun — so a whole sweep
// costs O(benchmarks) traversals instead of O(cells), parallelises
// across GOMAXPROCS, and still produces byte-identical output at any
// worker count. Cells are cached and deduplicated individually: share
// one Runner across drivers (as All and the CLI do) and overlapping
// cells — Figure 7's STR column is Figure 6, its STR(3)/4TU cells are
// Table 2's — are computed once.
package expt

import (
	"context"
	"fmt"
	"strings"

	"dynloop/internal/harness"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
	"dynloop/internal/workload"
)

// Config parametrises an experiment run.
type Config struct {
	// Budget is the per-benchmark dynamic instruction budget. 0 selects
	// DefaultBudget. (The paper ran the first 10^9 instructions; all our
	// statistics stabilise far below that on the synthetic workloads —
	// see DESIGN.md.)
	Budget uint64
	// Seed decorrelates workload input sequences; 0 selects 1.
	Seed uint64
	// Benchmarks restricts the run to a subset (nil = all 18).
	Benchmarks []string
	// CLSCapacity overrides the CLS size (0 = the paper's 16).
	CLSCapacity int
	// BatchSize overrides the interpreter's event-batch size
	// (0 = interp.DefaultBatchSize). Results are byte-identical at any
	// setting; the determinism tests sweep it.
	BatchSize int
	// Parallel bounds the worker goroutines when the driver builds its
	// own runner (0 = GOMAXPROCS); 1 reproduces the sequential schedule.
	// Ignored when Runner is set.
	Parallel int
	// Runner, when non-nil, executes the driver's jobs. Share one across
	// drivers to deduplicate repeated cells and pool the worker bound;
	// leave nil and each driver call runs on a private runner.
	Runner *runner.Runner
	// OnEvent streams per-job progress when the driver builds its own
	// runner. Ignored when Runner is set (configure it there instead).
	OnEvent func(runner.Event)
	// NoFuse disables traversal fusion: every cell runs its own private
	// interpreter traversal, as the pre-fusion drivers did. Results are
	// identical either way (each cell's pass owns its detector and
	// tables, so fusion shares only the read-only event stream); the
	// flag exists for the byte-identity regression tests and for A/B
	// benchmarking the fusion win.
	NoFuse bool
}

// DefaultBudget is the per-benchmark instruction budget experiments use
// unless configured otherwise.
const DefaultBudget = 4_000_000

func (c Config) budget() uint64 {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// pool resolves the runner the driver submits its jobs to.
func (c Config) pool() *runner.Runner {
	if c.Runner != nil {
		return c.Runner
	}
	return runner.New(runner.Config{Workers: c.Parallel, OnEvent: c.OnEvent})
}

// benchmarks resolves the configured subset.
func (c Config) benchmarks() ([]workload.Benchmark, error) {
	if len(c.Benchmarks) == 0 {
		return workload.All(), nil
	}
	out := make([]workload.Benchmark, 0, len(c.Benchmarks))
	for _, name := range c.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, bm)
	}
	return out, nil
}

// cellSchemaVersion stamps every cell key. Because keys address the
// persistent result store (and the serving layer's wire queries), a
// change to what a cell MEANS — detector semantics, metric definitions,
// workload generation — must bump this version: the new keys then miss
// every previously persisted result instead of serving stale ones.
// Purely additive changes (new cell types, new key parts) don't need a
// bump; the new keys cannot collide with old ones.
//
// It is a variable only so the self-invalidation regression test can
// bump it; treat it as a constant everywhere else.
var cellSchemaVersion = 1

// cellKey builds a runner cache key: the schema version, the Config
// fields every run depends on, then the cell's own coordinates. Keys
// must determine the result (and its Go type) completely — see
// runner.Job. Each part is length-prefixed so adjacent parts cannot
// blur into a colliding key ("a","bc" vs "ab","c", or a part containing
// the delimiter).
func (c Config) cellKey(parts ...any) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|b%d|s%d|cls%d|ba%d", cellSchemaVersion, c.budget(), c.seed(), c.CLSCapacity, c.BatchSize)
	for _, p := range parts {
		s := fmt.Sprint(p)
		fmt.Fprintf(&b, "|%d:%s", len(s), s)
	}
	return b.String()
}

// groupKey names a fusion group: everything that determines the
// instruction stream a cell's pass observes — the benchmark, the
// traversal budget, the input seed and the batch size. Cells of one
// driver call sharing a group key execute in one fused traversal; the
// per-pass knobs (policy, TU count, table capacities, even the CLS
// capacity) deliberately stay out.
func (c Config) groupKey(bench string, budget uint64) string {
	return fmt.Sprintf("g|%d:%s|b%d|s%d|ba%d", len(bench), bench, budget, c.seed(), c.BatchSize)
}

// passCell is one experiment cell declared as an analysis pass: mk
// constructs the pass that will observe the benchmark's stream plus a
// finish hook extracting the cell's result once the traversal is
// finalised. key/label follow runner.Job semantics. cfg is the cell's
// own Config — normally the driver's, but a driver may vary it per cell
// (Fig5 runs a reduced budget); the traversal is built from it, so
// whatever the cell's key recorded is what actually runs.
type passCell[T any] struct {
	key   string
	label string
	bench workload.Benchmark
	cfg   Config
	mk    func() (trace.Pass, func() (T, error))
}

// mapCells resolves every cell through the runner — cached cells are
// served individually, missing cells execute fused per (benchmark,
// budget) group: one unit build, one harness.MultiRun traversal feeding
// all of the group's passes, then each cell's finish hook. Results
// return in cell order, byte-identical at any worker count and with
// fusion on or off.
func mapCells[T any](ctx context.Context, cfg Config, cells []passCell[T]) ([]T, error) {
	jobs := make([]runner.GroupJob[T], len(cells))
	for i, c := range cells {
		group := c.cfg.groupKey(c.bench.Name, c.cfg.budget())
		if cfg.NoFuse {
			group = fmt.Sprintf("%s|cell%d", group, i)
		}
		jobs[i] = runner.GroupJob[T]{Key: c.key, Group: group, Label: c.label}
	}
	exec := func(ctx context.Context, group string, idx []int) ([]T, error) {
		lead := cells[idx[0]]
		u, err := lead.bench.Build(lead.cfg.seed())
		if err != nil {
			return nil, fmt.Errorf("expt: build %s: %w", lead.bench.Name, err)
		}
		passes := make([]trace.Pass, len(idx))
		finish := make([]func() (T, error), len(idx))
		for j, i := range idx {
			passes[j], finish[j] = cells[i].mk()
		}
		mc := harness.MultiConfig{Budget: lead.cfg.budget(), BatchSize: lead.cfg.BatchSize}
		if _, err := harness.MultiRun(u, mc, passes...); err != nil {
			return nil, err
		}
		out := make([]T, len(idx))
		for j, f := range finish {
			if out[j], err = f(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return runner.MapGroups(ctx, cfg.pool(), jobs, exec)
}

// specCell is the shared benchmark × engine-configuration cell that
// Table 2, Figures 5–7, the sweep command and several ablations are all
// built from; the cache key covers every spec.Config field so distinct
// configurations never collide, while identical cells submitted by
// different drivers on a shared Runner are computed once. ec.OracleIters
// must be nil (a slice cannot be keyed); oracle runs use dedicated
// composite jobs instead.
func specCell(cfg Config, bm workload.Benchmark, ec spec.Config) passCell[spec.Metrics] {
	if ec.OracleIters != nil {
		panic("expt: specCell cannot key an oracle run")
	}
	return passCell[spec.Metrics]{
		key: cfg.cellKey("spec", bm.Name, ec.TUs, ec.Policy, ec.LETCapacity, ec.NestRule,
			ec.Exclude, ec.ExcludeThreshold, ec.ExcludeMinResolved, ec.ExcludeCapacity),
		label: fmt.Sprintf("%s %s/%d TUs", bm.Name, ec.Policy, ec.TUs),
		bench: bm,
		cfg:   cfg,
		mk: func() (trace.Pass, func() (spec.Metrics, error)) {
			e := spec.NewEngine(ec)
			return harness.NewObserverPass(cfg.CLSCapacity, e),
				func() (spec.Metrics, error) { return e.Metrics(), nil }
		},
	}
}
