package expt

import (
	"context"

	"dynloop/internal/report"
)

// BaselineBranchPred measures the classic predictors on every workload —
// the registered "baseline/branch" grid, one pass per benchmark (the
// suite is a raw-stream pass and needs no loop detector, so it fuses
// with any other cell of the benchmark). The column to look at is the
// backward-branch accuracy: the paper's premise is that loop closing
// branches are highly predictable, which is exactly what the
// whole-iteration speculation exploits.
func BaselineBranchPred(ctx context.Context, cfg Config) ([]BaselineRow, error) {
	res, err := runNamed(ctx, cfg, "baseline/branch", nil)
	if err != nil {
		return nil, err
	}
	return baselineRows(res)
}

// RenderBaseline formats the branch-prediction baseline.
func RenderBaseline(rows []BaselineRow) string {
	t := report.NewTable("Baseline: conventional branch prediction (accuracy %; bwd = backward/loop-closing branches)",
		"bench", "BTFN", "BTFN bwd", "bimodal", "bimodal bwd", "gshare", "gshare bwd")
	var sums [6]float64
	for _, r := range rows {
		cells := make([]any, 0, 7)
		cells = append(cells, r.Bench)
		for i, res := range r.Results {
			cells = append(cells, res.Accuracy(), res.BackwardAccuracy())
			sums[2*i] += res.Accuracy()
			sums[2*i+1] += res.BackwardAccuracy()
		}
		t.AddRow(cells...)
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("AVG", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n, sums[5]/n)
	}
	return t.String()
}

// BaselineTaskPred measures the multiscalar-style next-task predictor
// (Jacobson et al., the paper's §3 comparator) against the paper's
// iteration-count speculation on every workload — the registered
// "baseline/task" grid. One composite pass per benchmark: both
// observers share a single detector.
func BaselineTaskPred(ctx context.Context, cfg Config) ([]TaskPredRow, error) {
	res, err := runNamed(ctx, cfg, "baseline/task", nil)
	if err != nil {
		return nil, err
	}
	return taskPredRows(res)
}

// RenderTaskPred formats the next-task baseline.
func RenderTaskPred(rows []TaskPredRow) string {
	t := report.NewTable("Baseline: next-task prediction (multiscalar-style) vs iteration-count speculation",
		"bench", "next-task %", "scored", "iteration hit %")
	var a, b float64
	for _, r := range rows {
		t.AddRow(r.Bench, r.NextTaskPct, r.Scored, r.IterHitPct)
		a += r.NextTaskPct
		b += r.IterHitPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		t.AddRow("AVG", a/n, "", b/n)
	}
	return t.String()
}
