package expt

import (
	"context"

	"dynloop/internal/branchpred"
	"dynloop/internal/harness"
	"dynloop/internal/report"
	"dynloop/internal/spec"
	"dynloop/internal/taskpred"
	"dynloop/internal/trace"
)

// BaselineRow is one benchmark's conventional branch-prediction
// accuracies — the intra-thread control-speculation baseline the paper
// positions itself against (§1).
type BaselineRow struct {
	Bench string
	// Results holds one entry per predictor (BTFN, bimodal, gshare).
	Results []branchpred.Result
}

// BaselineBranchPred measures the classic predictors on every workload,
// one pass per benchmark (the suite is a raw-stream pass and needs no
// loop detector, so it fuses with any other cell of the benchmark). The
// column to look at is the backward-branch accuracy: the paper's premise
// is that loop closing branches are highly predictable, which is exactly
// what the whole-iteration speculation exploits.
func BaselineBranchPred(ctx context.Context, cfg Config) ([]BaselineRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[BaselineRow], len(bms))
	for i, bm := range bms {
		cells[i] = passCell[BaselineRow]{
			key:   cfg.cellKey("branchpred", bm.Name),
			label: "branchpred " + bm.Name,
			bench: bm,
			cfg:   cfg,
			mk: func() (trace.Pass, func() (BaselineRow, error)) {
				suite := branchpred.DefaultSuite()
				return suite, func() (BaselineRow, error) {
					return BaselineRow{Bench: bm.Name, Results: suite.Results()}, nil
				}
			},
		}
	}
	return mapCells(ctx, cfg, cells)
}

// RenderBaseline formats the branch-prediction baseline.
func RenderBaseline(rows []BaselineRow) string {
	t := report.NewTable("Baseline: conventional branch prediction (accuracy %; bwd = backward/loop-closing branches)",
		"bench", "BTFN", "BTFN bwd", "bimodal", "bimodal bwd", "gshare", "gshare bwd")
	var sums [6]float64
	for _, r := range rows {
		cells := make([]any, 0, 7)
		cells = append(cells, r.Bench)
		for i, res := range r.Results {
			cells = append(cells, res.Accuracy(), res.BackwardAccuracy())
			sums[2*i] += res.Accuracy()
			sums[2*i+1] += res.BackwardAccuracy()
		}
		t.AddRow(cells...)
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("AVG", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n, sums[5]/n)
	}
	return t.String()
}

// TaskPredRow compares the two thread-selection questions on one
// benchmark: "which loop executes next?" (multiscalar-style next-task
// prediction, Jacobson et al., the paper's §3 comparator) vs "how many
// iterations will this loop run?" (the paper's LET, measured as the
// STR(3)/4TU speculation hit ratio).
type TaskPredRow struct {
	Bench string
	// NextTaskPct is the next-execution-target accuracy; Scored is the
	// number of predictions it is based on.
	NextTaskPct float64
	Scored      uint64
	// IterHitPct is the engine's speculation hit ratio on the same run
	// configuration (the paper's Table 2 quantity).
	IterHitPct float64
}

// BaselineTaskPred measures the multiscalar-style next-task predictor
// against the paper's iteration-count speculation on every workload. One
// composite pass per benchmark: both observers share a single detector.
func BaselineTaskPred(ctx context.Context, cfg Config) ([]TaskPredRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[TaskPredRow], len(bms))
	for i, bm := range bms {
		cells[i] = passCell[TaskPredRow]{
			key:   cfg.cellKey("taskpred", bm.Name),
			label: "taskpred " + bm.Name,
			bench: bm,
			cfg:   cfg,
			mk: func() (trace.Pass, func() (TaskPredRow, error)) {
				tp := taskpred.New(taskpred.Config{})
				e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
				return harness.NewObserverPass(cfg.CLSCapacity, tp, e),
					func() (TaskPredRow, error) {
						acc, n := tp.Accuracy()
						return TaskPredRow{
							Bench:       bm.Name,
							NextTaskPct: acc,
							Scored:      n,
							IterHitPct:  e.Metrics().HitRatio(),
						}, nil
					}
			},
		}
	}
	return mapCells(ctx, cfg, cells)
}

// RenderTaskPred formats the next-task baseline.
func RenderTaskPred(rows []TaskPredRow) string {
	t := report.NewTable("Baseline: next-task prediction (multiscalar-style) vs iteration-count speculation",
		"bench", "next-task %", "scored", "iteration hit %")
	var a, b float64
	for _, r := range rows {
		t.AddRow(r.Bench, r.NextTaskPct, r.Scored, r.IterHitPct)
		a += r.NextTaskPct
		b += r.IterHitPct
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		t.AddRow("AVG", a/n, "", b/n)
	}
	return t.String()
}
