package expt

import (
	"fmt"

	"dynloop/internal/loopstats"
	"dynloop/internal/report"
	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// Table1Row is one benchmark's loop statistics next to the paper's.
type Table1Row struct {
	Bench string
	S     loopstats.Summary
	Paper workload.PaperRow
}

// Table1 reproduces the paper's Table 1 (loop statistics per program).
func Table1(cfg Config) ([]Table1Row, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	return parMap(bms, func(bm workload.Benchmark) (Table1Row, error) {
		c := loopstats.NewCollector()
		if err := cfg.run(bm, c); err != nil {
			return Table1Row{}, err
		}
		return Table1Row{Bench: bm.Name, S: c.Summary(), Paper: bm.Paper}, nil
	})
}

// RenderTable1 formats Table 1 with the paper's values alongside.
func RenderTable1(rows []Table1Row) string {
	t := report.NewTable("Table 1: loop statistics (paper's value in parentheses)",
		"bench", "#instr", "#loops", "#iter/exec", "#instr/iter", "avg.nl", "max.nl")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.S.Instrs,
			fmt.Sprintf("%d (%d)", r.S.StaticLoops, r.Paper.Loops),
			fmt.Sprintf("%.2f (%.2f)", r.S.ItersPerExec, r.Paper.ItersPerExec),
			fmt.Sprintf("%.1f (%.1f)", r.S.InstrPerIter, r.Paper.InstrPerIter),
			fmt.Sprintf("%.2f (%.2f)", r.S.AvgNesting, r.Paper.AvgNL),
			fmt.Sprintf("%d (%d)", r.S.MaxNesting, r.Paper.MaxNL))
	}
	return t.String()
}

// Table2Row is one benchmark's STR(3)/4-TU speculation statistics.
type Table2Row struct {
	Bench string
	M     spec.Metrics
	Paper workload.PaperRow
}

// Table2 reproduces the paper's Table 2: control speculation statistics
// under STR(3) with 4 TUs.
func Table2(cfg Config) ([]Table2Row, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	return parMap(bms, func(bm workload.Benchmark) (Table2Row, error) {
		e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
		if err := cfg.run(bm, e); err != nil {
			return Table2Row{}, err
		}
		return Table2Row{Bench: bm.Name, M: e.Metrics(), Paper: bm.Paper}, nil
	})
}

// RenderTable2 formats Table 2 with the paper's TPC and hit ratio
// alongside.
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: control speculation statistics, STR(3), 4 TUs (paper in parentheses)",
		"bench", "#spec.", "#threads/spec.", "hit ratio(%)", "#instr.to verif", "TPC")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.M.SpecEvents,
			fmt.Sprintf("%.2f", r.M.ThreadsPerSpec()),
			fmt.Sprintf("%.2f (%.2f)", r.M.HitRatio(), r.Paper.HitRatio),
			fmt.Sprintf("%.0f", r.M.InstrToVerif()),
			fmt.Sprintf("%.2f (%.2f)", r.M.TPC(), r.Paper.TPC4))
	}
	return t.String()
}
