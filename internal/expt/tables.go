package expt

import (
	"context"
	"fmt"

	"dynloop/internal/grid"
	"dynloop/internal/report"
	"dynloop/internal/spec"
	"dynloop/internal/workload"
)

// Table1 reproduces the paper's Table 1 (loop statistics per program),
// one pass per benchmark — the registered "table1" grid.
func Table1(ctx context.Context, cfg Config) ([]Table1Row, error) {
	res, err := runNamed(ctx, cfg, "table1", nil)
	if err != nil {
		return nil, err
	}
	return table1FromResult(res)
}

func table1FromResult(res *grid.Result) ([]Table1Row, error) {
	return rowsAs[Table1Row](res, "table1")
}

// RenderTable1 formats Table 1 with the paper's values alongside.
func RenderTable1(rows []Table1Row) string {
	t := report.NewTable("Table 1: loop statistics (paper's value in parentheses)",
		"bench", "#instr", "#loops", "#iter/exec", "#instr/iter", "avg.nl", "max.nl")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.S.Instrs,
			fmt.Sprintf("%d (%d)", r.S.StaticLoops, r.Paper.Loops),
			fmt.Sprintf("%.2f (%.2f)", r.S.ItersPerExec, r.Paper.ItersPerExec),
			fmt.Sprintf("%.1f (%.1f)", r.S.InstrPerIter, r.Paper.InstrPerIter),
			fmt.Sprintf("%.2f (%.2f)", r.S.AvgNesting, r.Paper.AvgNL),
			fmt.Sprintf("%d (%d)", r.S.MaxNesting, r.Paper.MaxNL))
	}
	return t.String()
}

// Table2Row is one benchmark's STR(3)/4-TU speculation statistics.
type Table2Row struct {
	Bench string
	M     spec.Metrics
	Paper workload.PaperRow
}

// Table2 reproduces the paper's Table 2: control speculation statistics
// under STR(3) with 4 TUs — the registered "table2" grid, one spec cell
// per benchmark, shared with Figure 7's STR(3) column when the Runner
// is.
func Table2(ctx context.Context, cfg Config) ([]Table2Row, error) {
	res, err := runNamed(ctx, cfg, "table2", nil)
	if err != nil {
		return nil, err
	}
	return table2FromResult(res)
}

func table2FromResult(res *grid.Result) ([]Table2Row, error) {
	if err := shape(res, len(res.Spec.Benchmarks), "table2"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]Table2Row, len(ms))
	for i, name := range res.Spec.Benchmarks {
		bm, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		rows[i] = Table2Row{Bench: name, M: ms[i], Paper: bm.Paper}
	}
	return rows, nil
}

// RenderTable2 formats Table 2 with the paper's TPC and hit ratio
// alongside.
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: control speculation statistics, STR(3), 4 TUs (paper in parentheses)",
		"bench", "#spec.", "#threads/spec.", "hit ratio(%)", "#instr.to verif", "TPC")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.M.SpecEvents,
			fmt.Sprintf("%.2f", r.M.ThreadsPerSpec()),
			fmt.Sprintf("%.2f (%.2f)", r.M.HitRatio(), r.Paper.HitRatio),
			fmt.Sprintf("%.0f", r.M.InstrToVerif()),
			fmt.Sprintf("%.2f (%.2f)", r.M.TPC(), r.Paper.TPC4))
	}
	return t.String()
}
