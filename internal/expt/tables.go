package expt

import (
	"context"
	"fmt"

	"dynloop/internal/harness"
	"dynloop/internal/loopstats"
	"dynloop/internal/report"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
	"dynloop/internal/workload"
)

// Table1Row is one benchmark's loop statistics next to the paper's.
type Table1Row struct {
	Bench string
	S     loopstats.Summary
	Paper workload.PaperRow
}

// Table1 reproduces the paper's Table 1 (loop statistics per program),
// one pass per benchmark.
func Table1(ctx context.Context, cfg Config) ([]Table1Row, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[Table1Row], len(bms))
	for i, bm := range bms {
		cells[i] = passCell[Table1Row]{
			key:   cfg.cellKey("table1", bm.Name),
			label: "table1 " + bm.Name,
			bench: bm,
			cfg:   cfg,
			mk: func() (trace.Pass, func() (Table1Row, error)) {
				c := loopstats.NewCollector()
				return harness.NewObserverPass(cfg.CLSCapacity, c),
					func() (Table1Row, error) {
						return Table1Row{Bench: bm.Name, S: c.Summary(), Paper: bm.Paper}, nil
					}
			},
		}
	}
	return mapCells(ctx, cfg, cells)
}

// RenderTable1 formats Table 1 with the paper's values alongside.
func RenderTable1(rows []Table1Row) string {
	t := report.NewTable("Table 1: loop statistics (paper's value in parentheses)",
		"bench", "#instr", "#loops", "#iter/exec", "#instr/iter", "avg.nl", "max.nl")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.S.Instrs,
			fmt.Sprintf("%d (%d)", r.S.StaticLoops, r.Paper.Loops),
			fmt.Sprintf("%.2f (%.2f)", r.S.ItersPerExec, r.Paper.ItersPerExec),
			fmt.Sprintf("%.1f (%.1f)", r.S.InstrPerIter, r.Paper.InstrPerIter),
			fmt.Sprintf("%.2f (%.2f)", r.S.AvgNesting, r.Paper.AvgNL),
			fmt.Sprintf("%d (%d)", r.S.MaxNesting, r.Paper.MaxNL))
	}
	return t.String()
}

// Table2Row is one benchmark's STR(3)/4-TU speculation statistics.
type Table2Row struct {
	Bench string
	M     spec.Metrics
	Paper workload.PaperRow
}

// Table2 reproduces the paper's Table 2: control speculation statistics
// under STR(3) with 4 TUs — one spec cell per benchmark, shared with
// Figure 7's STR(3) column when the Runner is.
func Table2(ctx context.Context, cfg Config) ([]Table2Row, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[spec.Metrics], len(bms))
	for i, bm := range bms {
		cells[i] = specCell(cfg, bm, spec.Config{TUs: 4, Policy: spec.STRn(3)})
	}
	ms, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(bms))
	for i, bm := range bms {
		rows[i] = Table2Row{Bench: bm.Name, M: ms[i], Paper: bm.Paper}
	}
	return rows, nil
}

// RenderTable2 formats Table 2 with the paper's TPC and hit ratio
// alongside.
func RenderTable2(rows []Table2Row) string {
	t := report.NewTable("Table 2: control speculation statistics, STR(3), 4 TUs (paper in parentheses)",
		"bench", "#spec.", "#threads/spec.", "hit ratio(%)", "#instr.to verif", "TPC")
	for _, r := range rows {
		t.AddRow(r.Bench,
			r.M.SpecEvents,
			fmt.Sprintf("%.2f", r.M.ThreadsPerSpec()),
			fmt.Sprintf("%.2f (%.2f)", r.M.HitRatio(), r.Paper.HitRatio),
			fmt.Sprintf("%.0f", r.M.InstrToVerif()),
			fmt.Sprintf("%.2f (%.2f)", r.M.TPC(), r.Paper.TPC4))
	}
	return t.String()
}
