package expt

import (
	"context"

	"dynloop/internal/grid"
	"dynloop/internal/report"
)

// CLSSizeRow is one CLS-capacity point of the AblationCLSSize sweep.
type CLSSizeRow struct {
	Capacity int
	// Evictions is the total CLS overflow count across the suite.
	Evictions uint64
	// MaxDepthHits counts benchmarks whose observed nesting hit the cap.
	MaxDepthHits int
	// AvgTPC is the suite-average STR(3)/4-TU TPC at this capacity.
	AvgTPC float64
}

// AblationCLSSize sweeps the CLS capacity (the paper fixes 16 and argues
// it never overflows on SPEC95: "the maximum nesting level is lower than
// 16"). The sweep shows where detection starts degrading — the
// registered "ablation/cls" grid; because every cell's pass owns a
// private detector, all capacities of a benchmark still fuse into one
// traversal.
func AblationCLSSize(ctx context.Context, cfg Config, capacities []int) ([]CLSSizeRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/cls", func(s *grid.Spec) {
		if len(capacities) > 0 {
			s.CLS = capacities
		}
	})
	if err != nil {
		return nil, err
	}
	return clsSizeFromResult(res)
}

func clsSizeFromResult(res *grid.Result) ([]CLSSizeRow, error) {
	bms, caps := res.Spec.Benchmarks, res.Spec.CLS
	if err := shape(res, len(bms)*len(caps), "ablation/cls"); err != nil {
		return nil, err
	}
	rows := make([]CLSSizeRow, 0, len(caps))
	for ci, capEntries := range caps {
		row := CLSSizeRow{Capacity: capEntries}
		var tpcSum float64
		for bi := range bms {
			c := res.Values[bi*len(caps)+ci].(grid.CLSCell)
			row.Evictions += c.Evictions
			if c.AtCap {
				row.MaxDepthHits++
			}
			tpcSum += c.TPC
		}
		row.AvgTPC = tpcSum / float64(len(bms))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCLSSize formats the CLS-capacity ablation.
func RenderCLSSize(rows []CLSSizeRow) string {
	t := report.NewTable("Ablation: CLS capacity (paper uses 16; overflow drops the outermost entry)",
		"CLS entries", "evictions", "benchmarks at cap", "avg TPC (STR(3), 4 TUs)")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.Evictions, r.MaxDepthHits, r.AvgTPC)
	}
	return t.String()
}

// LETCapacityRow is one point of the engine-LET capacity sweep.
type LETCapacityRow struct {
	Capacity int // 0 = unbounded
	AvgTPC   float64
	AvgHit   float64
}

// AblationLETCapacity sweeps the speculation engine's iteration-count
// LET size (the paper leaves it open; the Figure 4 experiment suggests
// 16 entries suffice for history hits) — the registered "ablation/let"
// grid, capacity × benchmark spec cells fused per benchmark.
func AblationLETCapacity(ctx context.Context, cfg Config, capacities []int) ([]LETCapacityRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/let", func(s *grid.Spec) {
		if len(capacities) > 0 {
			s.LETCaps = capacities
		}
	})
	if err != nil {
		return nil, err
	}
	return letCapacityFromResult(res)
}

func letCapacityFromResult(res *grid.Result) ([]LETCapacityRow, error) {
	bms, caps := res.Spec.Benchmarks, res.Spec.LETCaps
	if err := shape(res, len(bms)*len(caps), "ablation/let"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]LETCapacityRow, 0, len(caps))
	for ci, capEntries := range caps {
		var tpcSum, hitSum float64
		for bi := range bms {
			m := ms[bi*len(caps)+ci]
			tpcSum += m.TPC()
			hitSum += m.HitRatio()
		}
		rows = append(rows, LETCapacityRow{
			Capacity: capEntries,
			AvgTPC:   tpcSum / float64(len(bms)),
			AvgHit:   hitSum / float64(len(bms)),
		})
	}
	return rows, nil
}

// RenderLETCapacity formats the engine-LET ablation.
func RenderLETCapacity(rows []LETCapacityRow) string {
	t := report.NewTable("Ablation: speculation-engine LET capacity (0 = unbounded)",
		"LET entries", "avg TPC", "avg hit %")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.AvgTPC, r.AvgHit)
	}
	return t.String()
}

// ReplacementRow compares LRU against the §2.3.2 nesting-aware insertion
// policy at one table size.
type ReplacementRow struct {
	Entries int
	// Hit ratios in percent, suite-averaged.
	LRULet, LRULit, NestLet, NestLit float64
	// Inhibited counts skipped insertions under the nesting-aware policy.
	Inhibited uint64
}

// AblationReplacement reproduces the paper's §2.3.2 finding: the
// nesting-aware insertion-inhibit policy improves on LRU only
// negligibly — the registered "ablation/replacement" grid (size ×
// benchmark × {LRU, nesting-aware}), fused per benchmark.
func AblationReplacement(ctx context.Context, cfg Config, sizes []int) ([]ReplacementRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/replacement", func(s *grid.Spec) {
		if len(sizes) > 0 {
			s.TableSizes = sizes
		}
	})
	if err != nil {
		return nil, err
	}
	return replacementFromResult(res)
}

func replacementFromResult(res *grid.Result) ([]ReplacementRow, error) {
	bms, sizes, modes := res.Spec.Benchmarks, res.Spec.TableSizes, res.Spec.Modes
	if err := shape(res, len(bms)*len(sizes)*len(modes), "ablation/replacement"); err != nil {
		return nil, err
	}
	rows := make([]ReplacementRow, 0, len(sizes))
	for si, size := range sizes {
		row := ReplacementRow{Entries: size}
		for bi := range bms {
			lru := res.Values[(bi*len(sizes)+si)*2].(grid.ReplCell)
			nest := res.Values[(bi*len(sizes)+si)*2+1].(grid.ReplCell)
			row.LRULet += lru.LET
			row.LRULit += lru.LIT
			row.NestLet += nest.LET
			row.NestLit += nest.LIT
			row.Inhibited += nest.Inhibited
		}
		n := float64(len(bms))
		row.LRULet = 100 * row.LRULet / n
		row.LRULit = 100 * row.LRULit / n
		row.NestLet = 100 * row.NestLet / n
		row.NestLit = 100 * row.NestLit / n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderReplacement formats the replacement-policy ablation.
func RenderReplacement(rows []ReplacementRow) string {
	t := report.NewTable("Ablation: LRU vs nesting-aware insertion (§2.3.2; paper: negligible difference)",
		"entries", "LRU LET%", "nest LET%", "LRU LIT%", "nest LIT%", "inhibited")
	for _, r := range rows {
		t.AddRow(r.Entries, r.LRULet, r.NestLet, r.LRULit, r.NestLit, r.Inhibited)
	}
	return t.String()
}

// AblationOneShots quantifies the effect of counting one-iteration
// executions in the Table 1 statistics (the paper's definition detects
// them but does not say whether they are included; we default to
// counting them) — the registered "ablation/oneshots" grid. One pass
// per benchmark; both collectors share a single detector.
func AblationOneShots(ctx context.Context, cfg Config) ([]OneShotRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/oneshots", nil)
	if err != nil {
		return nil, err
	}
	return oneShotsFromResult(res)
}

func oneShotsFromResult(res *grid.Result) ([]OneShotRow, error) {
	return rowsAs[OneShotRow](res, "ablation/oneshots")
}

// RenderOneShots formats the one-shot ablation.
func RenderOneShots(rows []OneShotRow) string {
	t := report.NewTable("Ablation: counting 1-iteration executions in Table 1",
		"bench", "iter/exec (with)", "iter/exec (without)", "execs (with)", "execs (without)")
	for _, r := range rows {
		t.AddRow(r.Bench, r.WithIPE, r.WithoutIPE, r.WithExecs, r.WithoutExec)
	}
	return t.String()
}

// NestRuleRow compares the two STR(i) interpretations at one machine
// size.
type NestRuleRow struct {
	Policy string
	TUs    int
	// Suite-average TPC under each interpretation.
	StarvationTPC, StaticTPC float64
}

// AblationNestRule compares the starvation-based STR(i) reading (our
// default; consistent with the paper's Table 2) against the literal
// structural reading (see spec.NestRule and DESIGN.md) — the registered
// "ablation/nestrule" grid (policy × machine size × benchmark × rule),
// in spec cells fused per benchmark.
func AblationNestRule(ctx context.Context, cfg Config, tus []int) ([]NestRuleRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/nestrule", func(s *grid.Spec) {
		if len(tus) > 0 {
			s.TUs = tus
		}
	})
	if err != nil {
		return nil, err
	}
	return nestRuleFromResult(res)
}

func nestRuleFromResult(res *grid.Result) ([]NestRuleRow, error) {
	bms, pols, tus, rules := res.Spec.Benchmarks, res.Spec.Policies, res.Spec.TUs, res.Spec.NestRules
	if err := shape(res, len(bms)*len(pols)*len(tus)*len(rules), "ablation/nestrule"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	var rows []NestRuleRow
	for pi, pol := range pols {
		for ti, k := range tus {
			row := NestRuleRow{Policy: pol, TUs: k}
			for bi := range bms {
				base := ((bi*len(pols)+pi)*len(tus) + ti) * len(rules)
				row.StarvationTPC += ms[base].TPC()
				row.StaticTPC += ms[base+1].TPC()
			}
			n := float64(len(bms))
			row.StarvationTPC /= n
			row.StaticTPC /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderNestRule formats the STR(i)-interpretation ablation.
func RenderNestRule(rows []NestRuleRow) string {
	t := report.NewTable("Ablation: STR(i) interpretation (starvation-based vs literal structural)",
		"policy", "TUs", "avg TPC (starvation)", "avg TPC (static)")
	for _, r := range rows {
		t.AddRow(r.Policy, r.TUs, r.StarvationTPC, r.StaticTPC)
	}
	return t.String()
}

// ExclusionRow compares speculation with and without the §2.3.2
// exclusion table on one benchmark.
type ExclusionRow struct {
	Bench         string
	OffHit, OnHit float64
	OffTPC, OnTPC float64
	Denied        uint64
	Excluded      int
}

// AblationExclusion measures the §2.3.2 exclusion table ("those loops
// with a poor prediction rate may be good candidates to store in this
// table"): loops whose predicted threads resolve below the threshold are
// denied further speculation — the registered "ablation/exclusion" grid,
// two spec cells per benchmark, fused; the exclusion-off cell is
// Table 2's and deduplicates against it on a shared Runner.
func AblationExclusion(ctx context.Context, cfg Config, threshold float64) ([]ExclusionRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/exclusion", func(s *grid.Spec) {
		if threshold != 0 {
			s.Exclusion = []grid.ExclusionSpec{{}, {Enabled: true, Threshold: threshold}}
		}
	})
	if err != nil {
		return nil, err
	}
	return exclusionFromResult(res)
}

func exclusionFromResult(res *grid.Result) ([]ExclusionRow, error) {
	bms := res.Spec.Benchmarks
	if err := shape(res, 2*len(bms), "ablation/exclusion"); err != nil {
		return nil, err
	}
	ms := metrics(res)
	rows := make([]ExclusionRow, 0, len(bms))
	for i, name := range bms {
		mOff, mOn := ms[2*i], ms[2*i+1]
		rows = append(rows, ExclusionRow{
			Bench:  name,
			OffHit: mOff.HitRatio(), OnHit: mOn.HitRatio(),
			OffTPC: mOff.TPC(), OnTPC: mOn.TPC(),
			Denied: mOn.DeniedSpawns, Excluded: mOn.ExcludedLoops,
		})
	}
	return rows, nil
}

// RenderExclusion formats the exclusion-table ablation.
func RenderExclusion(rows []ExclusionRow) string {
	t := report.NewTable("Ablation: §2.3.2 exclusion table (STR(3), 4 TUs)",
		"bench", "hit% off", "hit% on", "TPC off", "TPC on", "denied", "excluded loops")
	for _, r := range rows {
		t.AddRow(r.Bench, r.OffHit, r.OnHit, r.OffTPC, r.OnTPC, r.Denied, r.Excluded)
	}
	return t.String()
}

// AblationOracle bounds the cost of iteration-count misprediction: a
// first traversal records every execution's true count, a second
// speculates with it. The gap between the STR and oracle columns is all
// the TPC that better iteration-count prediction could ever recover —
// the registered "ablation/oracle" grid, whose cells are composite jobs
// owning two traversals each (the oracle run depends on the recorder
// pass, so it cannot fuse).
func AblationOracle(ctx context.Context, cfg Config) ([]OracleRow, error) {
	res, err := runNamed(ctx, cfg, "ablation/oracle", nil)
	if err != nil {
		return nil, err
	}
	return oracleFromResult(res)
}

func oracleFromResult(res *grid.Result) ([]OracleRow, error) {
	return rowsAs[OracleRow](res, "ablation/oracle")
}

// RenderOracle formats the oracle ablation.
func RenderOracle(rows []OracleRow) string {
	t := report.NewTable("Ablation: STR vs oracle iteration counts (4 TUs)",
		"bench", "STR TPC", "oracle TPC", "STR hit%", "oracle hit%")
	for _, r := range rows {
		t.AddRow(r.Bench, r.STRTPC, r.OracleTPC, r.STRHit, r.OracleHit)
	}
	return t.String()
}
