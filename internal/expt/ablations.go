package expt

import (
	"dynloop/internal/loopstats"
	"dynloop/internal/looptab"
	"dynloop/internal/report"
	"dynloop/internal/spec"
)

// CLSSizeRow is one CLS-capacity point of the AblationCLSSize sweep.
type CLSSizeRow struct {
	Capacity int
	// Evictions is the total CLS overflow count across the suite.
	Evictions uint64
	// MaxDepthHits counts benchmarks whose observed nesting hit the cap.
	MaxDepthHits int
	// AvgTPC is the suite-average STR(3)/4-TU TPC at this capacity.
	AvgTPC float64
}

// AblationCLSSize sweeps the CLS capacity (the paper fixes 16 and argues
// it never overflows on SPEC95: "the maximum nesting level is lower than
// 16"). The sweep shows where detection starts degrading.
func AblationCLSSize(cfg Config, capacities []int) ([]CLSSizeRow, error) {
	if len(capacities) == 0 {
		capacities = []int{2, 4, 8, 16}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]CLSSizeRow, 0, len(capacities))
	for _, capEntries := range capacities {
		row := CLSSizeRow{Capacity: capEntries}
		runCfg := cfg
		runCfg.CLSCapacity = capEntries
		var tpcSum float64
		for _, bm := range bms {
			ls := loopstats.NewCollector()
			e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
			u, err := bm.Build(runCfg.seed())
			if err != nil {
				return nil, err
			}
			res, err := runWithResult(runCfg, u, ls, e)
			if err != nil {
				return nil, err
			}
			row.Evictions += res.Detector.Stats().Evictions
			if res.Detector.Stats().MaxDepth >= capEntries {
				row.MaxDepthHits++
			}
			tpcSum += e.Metrics().TPC()
		}
		row.AvgTPC = tpcSum / float64(len(bms))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCLSSize formats the CLS-capacity ablation.
func RenderCLSSize(rows []CLSSizeRow) string {
	t := report.NewTable("Ablation: CLS capacity (paper uses 16; overflow drops the outermost entry)",
		"CLS entries", "evictions", "benchmarks at cap", "avg TPC (STR(3), 4 TUs)")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.Evictions, r.MaxDepthHits, r.AvgTPC)
	}
	return t.String()
}

// LETCapacityRow is one point of the engine-LET capacity sweep.
type LETCapacityRow struct {
	Capacity int // 0 = unbounded
	AvgTPC   float64
	AvgHit   float64
}

// AblationLETCapacity sweeps the speculation engine's iteration-count
// LET size (the paper leaves it open; the Figure 4 experiment suggests
// 16 entries suffice for history hits).
func AblationLETCapacity(cfg Config, capacities []int) ([]LETCapacityRow, error) {
	if len(capacities) == 0 {
		capacities = []int{2, 4, 8, 16, 0}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]LETCapacityRow, 0, len(capacities))
	for _, capEntries := range capacities {
		var tpcSum, hitSum float64
		for _, bm := range bms {
			e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3), LETCapacity: capEntries})
			if err := cfg.run(bm, e); err != nil {
				return nil, err
			}
			tpcSum += e.Metrics().TPC()
			hitSum += e.Metrics().HitRatio()
		}
		rows = append(rows, LETCapacityRow{
			Capacity: capEntries,
			AvgTPC:   tpcSum / float64(len(bms)),
			AvgHit:   hitSum / float64(len(bms)),
		})
	}
	return rows, nil
}

// RenderLETCapacity formats the engine-LET ablation.
func RenderLETCapacity(rows []LETCapacityRow) string {
	t := report.NewTable("Ablation: speculation-engine LET capacity (0 = unbounded)",
		"LET entries", "avg TPC", "avg hit %")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.AvgTPC, r.AvgHit)
	}
	return t.String()
}

// ReplacementRow compares LRU against the §2.3.2 nesting-aware insertion
// policy at one table size.
type ReplacementRow struct {
	Entries int
	// Hit ratios in percent, suite-averaged.
	LRULet, LRULit, NestLet, NestLit float64
	// Inhibited counts skipped insertions under the nesting-aware policy.
	Inhibited uint64
}

// AblationReplacement reproduces the paper's §2.3.2 finding: the
// nesting-aware insertion-inhibit policy improves on LRU only
// negligibly.
func AblationReplacement(cfg Config, sizes []int) ([]ReplacementRow, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]ReplacementRow, 0, len(sizes))
	for _, size := range sizes {
		row := ReplacementRow{Entries: size}
		for _, bm := range bms {
			lru := looptab.NewTracker(size, size)
			if err := cfg.run(bm, lru); err != nil {
				return nil, err
			}
			nest := looptab.NewTracker(size, size)
			nest.EnableNestingAware()
			if err := cfg.run(bm, nest); err != nil {
				return nil, err
			}
			let, _ := lru.LET.HitRatio()
			lit, _ := lru.LIT.HitRatio()
			nlet, _ := nest.LET.HitRatio()
			nlit, _ := nest.LIT.HitRatio()
			row.LRULet += let
			row.LRULit += lit
			row.NestLet += nlet
			row.NestLit += nlit
			row.Inhibited += nest.LET.Inhibited() + nest.LIT.Inhibited()
		}
		n := float64(len(bms))
		row.LRULet = 100 * row.LRULet / n
		row.LRULit = 100 * row.LRULit / n
		row.NestLet = 100 * row.NestLet / n
		row.NestLit = 100 * row.NestLit / n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderReplacement formats the replacement-policy ablation.
func RenderReplacement(rows []ReplacementRow) string {
	t := report.NewTable("Ablation: LRU vs nesting-aware insertion (§2.3.2; paper: negligible difference)",
		"entries", "LRU LET%", "nest LET%", "LRU LIT%", "nest LIT%", "inhibited")
	for _, r := range rows {
		t.AddRow(r.Entries, r.LRULet, r.NestLet, r.LRULit, r.NestLit, r.Inhibited)
	}
	return t.String()
}

// OneShotRow compares Table-1 statistics with and without counting
// single-iteration executions.
type OneShotRow struct {
	Bench                  string
	WithIPE, WithoutIPE    float64 // iterations per execution
	WithExecs, WithoutExec uint64
}

// AblationOneShots quantifies the effect of counting one-iteration
// executions in the Table 1 statistics (the paper's definition detects
// them but does not say whether they are included; we default to
// counting them).
func AblationOneShots(cfg Config) ([]OneShotRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]OneShotRow, 0, len(bms))
	for _, bm := range bms {
		with := loopstats.NewCollector()
		without := loopstats.NewCollector()
		without.CountOneShots = false
		if err := cfg.run(bm, with, without); err != nil {
			return nil, err
		}
		w, wo := with.Summary(), without.Summary()
		rows = append(rows, OneShotRow{
			Bench: bm.Name, WithIPE: w.ItersPerExec, WithoutIPE: wo.ItersPerExec,
			WithExecs: w.Execs, WithoutExec: wo.Execs,
		})
	}
	return rows, nil
}

// RenderOneShots formats the one-shot ablation.
func RenderOneShots(rows []OneShotRow) string {
	t := report.NewTable("Ablation: counting 1-iteration executions in Table 1",
		"bench", "iter/exec (with)", "iter/exec (without)", "execs (with)", "execs (without)")
	for _, r := range rows {
		t.AddRow(r.Bench, r.WithIPE, r.WithoutIPE, r.WithExecs, r.WithoutExec)
	}
	return t.String()
}

// NestRuleRow compares the two STR(i) interpretations at one machine
// size.
type NestRuleRow struct {
	Policy string
	TUs    int
	// Suite-average TPC under each interpretation.
	StarvationTPC, StaticTPC float64
}

// AblationNestRule compares the starvation-based STR(i) reading (our
// default; consistent with the paper's Table 2) against the literal
// structural reading (see spec.NestRule and DESIGN.md).
func AblationNestRule(cfg Config, tus []int) ([]NestRuleRow, error) {
	if len(tus) == 0 {
		tus = []int{4, 8}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	var rows []NestRuleRow
	for _, i := range []int{1, 3} {
		for _, k := range tus {
			row := NestRuleRow{Policy: spec.STRn(i).String(), TUs: k}
			for _, bm := range bms {
				starve := spec.NewEngine(spec.Config{TUs: k, Policy: spec.STRn(i)})
				if err := cfg.run(bm, starve); err != nil {
					return nil, err
				}
				static := spec.NewEngine(spec.Config{TUs: k, Policy: spec.STRn(i), NestRule: spec.NestRuleStatic})
				if err := cfg.run(bm, static); err != nil {
					return nil, err
				}
				row.StarvationTPC += starve.Metrics().TPC()
				row.StaticTPC += static.Metrics().TPC()
			}
			n := float64(len(bms))
			row.StarvationTPC /= n
			row.StaticTPC /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderNestRule formats the STR(i)-interpretation ablation.
func RenderNestRule(rows []NestRuleRow) string {
	t := report.NewTable("Ablation: STR(i) interpretation (starvation-based vs literal structural)",
		"policy", "TUs", "avg TPC (starvation)", "avg TPC (static)")
	for _, r := range rows {
		t.AddRow(r.Policy, r.TUs, r.StarvationTPC, r.StaticTPC)
	}
	return t.String()
}

// ExclusionRow compares speculation with and without the §2.3.2
// exclusion table on one benchmark.
type ExclusionRow struct {
	Bench         string
	OffHit, OnHit float64
	OffTPC, OnTPC float64
	Denied        uint64
	Excluded      int
}

// AblationExclusion measures the §2.3.2 exclusion table ("those loops
// with a poor prediction rate may be good candidates to store in this
// table"): loops whose predicted threads resolve below the threshold are
// denied further speculation.
func AblationExclusion(cfg Config, threshold float64) ([]ExclusionRow, error) {
	if threshold == 0 {
		threshold = 0.85
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]ExclusionRow, 0, len(bms))
	for _, bm := range bms {
		off := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
		if err := cfg.run(bm, off); err != nil {
			return nil, err
		}
		on := spec.NewEngine(spec.Config{
			TUs: 4, Policy: spec.STRn(3),
			Exclude: true, ExcludeThreshold: threshold,
		})
		if err := cfg.run(bm, on); err != nil {
			return nil, err
		}
		mOff, mOn := off.Metrics(), on.Metrics()
		rows = append(rows, ExclusionRow{
			Bench:  bm.Name,
			OffHit: mOff.HitRatio(), OnHit: mOn.HitRatio(),
			OffTPC: mOff.TPC(), OnTPC: mOn.TPC(),
			Denied: mOn.DeniedSpawns, Excluded: mOn.ExcludedLoops,
		})
	}
	return rows, nil
}

// RenderExclusion formats the exclusion-table ablation.
func RenderExclusion(rows []ExclusionRow) string {
	t := report.NewTable("Ablation: §2.3.2 exclusion table (STR(3), 4 TUs)",
		"bench", "hit% off", "hit% on", "TPC off", "TPC on", "denied", "excluded loops")
	for _, r := range rows {
		t.AddRow(r.Bench, r.OffHit, r.OnHit, r.OffTPC, r.OnTPC, r.Denied, r.Excluded)
	}
	return t.String()
}

// OracleRow compares the STR policy against speculation with perfect
// iteration-count knowledge.
type OracleRow struct {
	Bench             string
	STRTPC, OracleTPC float64
	STRHit, OracleHit float64
}

// AblationOracle bounds the cost of iteration-count misprediction: a
// first run records every execution's true count, a second run
// speculates with it. The gap between the STR and oracle columns is all
// the TPC that better iteration-count prediction could ever recover.
func AblationOracle(cfg Config) ([]OracleRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]OracleRow, 0, len(bms))
	for _, bm := range bms {
		rec := spec.NewOracleRecorder()
		if err := cfg.run(bm, rec); err != nil {
			return nil, err
		}
		str := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
		if err := cfg.run(bm, str); err != nil {
			return nil, err
		}
		oracle := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR(), OracleIters: rec.Counts()})
		if err := cfg.run(bm, oracle); err != nil {
			return nil, err
		}
		mS, mO := str.Metrics(), oracle.Metrics()
		rows = append(rows, OracleRow{
			Bench:  bm.Name,
			STRTPC: mS.TPC(), OracleTPC: mO.TPC(),
			STRHit: mS.HitRatio(), OracleHit: mO.HitRatio(),
		})
	}
	return rows, nil
}

// RenderOracle formats the oracle ablation.
func RenderOracle(rows []OracleRow) string {
	t := report.NewTable("Ablation: STR vs oracle iteration counts (4 TUs)",
		"bench", "STR TPC", "oracle TPC", "STR hit%", "oracle hit%")
	for _, r := range rows {
		t.AddRow(r.Bench, r.STRTPC, r.OracleTPC, r.STRHit, r.OracleHit)
	}
	return t.String()
}
