package expt

import (
	"context"
	"fmt"

	"dynloop/internal/harness"
	"dynloop/internal/loopstats"
	"dynloop/internal/looptab"
	"dynloop/internal/report"
	"dynloop/internal/runner"
	"dynloop/internal/spec"
	"dynloop/internal/trace"
	"dynloop/internal/workload"
)

// CLSSizeRow is one CLS-capacity point of the AblationCLSSize sweep.
type CLSSizeRow struct {
	Capacity int
	// Evictions is the total CLS overflow count across the suite.
	Evictions uint64
	// MaxDepthHits counts benchmarks whose observed nesting hit the cap.
	MaxDepthHits int
	// AvgTPC is the suite-average STR(3)/4-TU TPC at this capacity.
	AvgTPC float64
}

// clsCell is one benchmark's result at one CLS capacity.
type clsCell struct {
	Evictions uint64
	AtCap     bool
	TPC       float64
}

// AblationCLSSize sweeps the CLS capacity (the paper fixes 16 and argues
// it never overflows on SPEC95: "the maximum nesting level is lower than
// 16"). The sweep shows where detection starts degrading. The grid is
// one capacity × benchmark cell each — and because every cell's pass
// owns a private detector, all capacities of a benchmark still fuse into
// one traversal.
func AblationCLSSize(ctx context.Context, cfg Config, capacities []int) ([]CLSSizeRow, error) {
	if len(capacities) == 0 {
		capacities = []int{2, 4, 8, 16}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	var cells []passCell[clsCell]
	for _, capEntries := range capacities {
		runCfg := cfg
		runCfg.CLSCapacity = capEntries
		for _, bm := range bms {
			cells = append(cells, passCell[clsCell]{
				key:   runCfg.cellKey("clssize", bm.Name),
				label: fmt.Sprintf("cls %s/%d entries", bm.Name, capEntries),
				bench: bm,
				cfg:   runCfg,
				mk: func() (trace.Pass, func() (clsCell, error)) {
					ls := loopstats.NewCollector()
					e := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STRn(3)})
					det := harness.NewObserverPass(capEntries, ls, e)
					return det, func() (clsCell, error) {
						ds := det.Stats()
						return clsCell{
							Evictions: ds.Evictions,
							AtCap:     ds.MaxDepth >= capEntries,
							TPC:       e.Metrics().TPC(),
						}, nil
					}
				},
			})
		}
	}
	res, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]CLSSizeRow, 0, len(capacities))
	for ci, capEntries := range capacities {
		row := CLSSizeRow{Capacity: capEntries}
		var tpcSum float64
		for bi := range bms {
			c := res[ci*len(bms)+bi]
			row.Evictions += c.Evictions
			if c.AtCap {
				row.MaxDepthHits++
			}
			tpcSum += c.TPC
		}
		row.AvgTPC = tpcSum / float64(len(bms))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCLSSize formats the CLS-capacity ablation.
func RenderCLSSize(rows []CLSSizeRow) string {
	t := report.NewTable("Ablation: CLS capacity (paper uses 16; overflow drops the outermost entry)",
		"CLS entries", "evictions", "benchmarks at cap", "avg TPC (STR(3), 4 TUs)")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.Evictions, r.MaxDepthHits, r.AvgTPC)
	}
	return t.String()
}

// LETCapacityRow is one point of the engine-LET capacity sweep.
type LETCapacityRow struct {
	Capacity int // 0 = unbounded
	AvgTPC   float64
	AvgHit   float64
}

// AblationLETCapacity sweeps the speculation engine's iteration-count
// LET size (the paper leaves it open; the Figure 4 experiment suggests
// 16 entries suffice for history hits) — capacity × benchmark spec
// cells, fused per benchmark.
func AblationLETCapacity(ctx context.Context, cfg Config, capacities []int) ([]LETCapacityRow, error) {
	if len(capacities) == 0 {
		capacities = []int{2, 4, 8, 16, 0}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	var cells []passCell[spec.Metrics]
	for _, capEntries := range capacities {
		for _, bm := range bms {
			cells = append(cells, specCell(cfg, bm, spec.Config{TUs: 4, Policy: spec.STRn(3), LETCapacity: capEntries}))
		}
	}
	ms, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]LETCapacityRow, 0, len(capacities))
	for ci, capEntries := range capacities {
		var tpcSum, hitSum float64
		for bi := range bms {
			m := ms[ci*len(bms)+bi]
			tpcSum += m.TPC()
			hitSum += m.HitRatio()
		}
		rows = append(rows, LETCapacityRow{
			Capacity: capEntries,
			AvgTPC:   tpcSum / float64(len(bms)),
			AvgHit:   hitSum / float64(len(bms)),
		})
	}
	return rows, nil
}

// RenderLETCapacity formats the engine-LET ablation.
func RenderLETCapacity(rows []LETCapacityRow) string {
	t := report.NewTable("Ablation: speculation-engine LET capacity (0 = unbounded)",
		"LET entries", "avg TPC", "avg hit %")
	for _, r := range rows {
		t.AddRow(r.Capacity, r.AvgTPC, r.AvgHit)
	}
	return t.String()
}

// ReplacementRow compares LRU against the §2.3.2 nesting-aware insertion
// policy at one table size.
type ReplacementRow struct {
	Entries int
	// Hit ratios in percent, suite-averaged.
	LRULet, LRULit, NestLet, NestLit float64
	// Inhibited counts skipped insertions under the nesting-aware policy.
	Inhibited uint64
}

// replCell is one benchmark's tracker result under one replacement
// policy at one size.
type replCell struct {
	LET, LIT  float64
	Inhibited uint64
}

// replacementCell declares one LET/LIT tracker cell.
func replacementCell(cfg Config, bm workload.Benchmark, size int, nestingAware bool) passCell[replCell] {
	mode := "lru"
	if nestingAware {
		mode = "nest"
	}
	return passCell[replCell]{
		key:   cfg.cellKey("replacement", bm.Name, size, mode),
		label: fmt.Sprintf("replacement %s/%d/%s", bm.Name, size, mode),
		bench: bm,
		cfg:   cfg,
		mk: func() (trace.Pass, func() (replCell, error)) {
			tr := looptab.NewTracker(size, size)
			if nestingAware {
				tr.EnableNestingAware()
			}
			return harness.NewObserverPass(cfg.CLSCapacity, tr),
				func() (replCell, error) {
					let, _ := tr.LET.HitRatio()
					lit, _ := tr.LIT.HitRatio()
					return replCell{LET: let, LIT: lit, Inhibited: tr.LET.Inhibited() + tr.LIT.Inhibited()}, nil
				}
		},
	}
}

// AblationReplacement reproduces the paper's §2.3.2 finding: the
// nesting-aware insertion-inhibit policy improves on LRU only
// negligibly. The grid is size × benchmark × {LRU, nesting-aware}, fused
// per benchmark.
func AblationReplacement(ctx context.Context, cfg Config, sizes []int) ([]ReplacementRow, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	var cells []passCell[replCell]
	for _, size := range sizes {
		for _, bm := range bms {
			cells = append(cells, replacementCell(cfg, bm, size, false), replacementCell(cfg, bm, size, true))
		}
	}
	res, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]ReplacementRow, 0, len(sizes))
	for si, size := range sizes {
		row := ReplacementRow{Entries: size}
		for bi := range bms {
			lru := res[(si*len(bms)+bi)*2]
			nest := res[(si*len(bms)+bi)*2+1]
			row.LRULet += lru.LET
			row.LRULit += lru.LIT
			row.NestLet += nest.LET
			row.NestLit += nest.LIT
			row.Inhibited += nest.Inhibited
		}
		n := float64(len(bms))
		row.LRULet = 100 * row.LRULet / n
		row.LRULit = 100 * row.LRULit / n
		row.NestLet = 100 * row.NestLet / n
		row.NestLit = 100 * row.NestLit / n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderReplacement formats the replacement-policy ablation.
func RenderReplacement(rows []ReplacementRow) string {
	t := report.NewTable("Ablation: LRU vs nesting-aware insertion (§2.3.2; paper: negligible difference)",
		"entries", "LRU LET%", "nest LET%", "LRU LIT%", "nest LIT%", "inhibited")
	for _, r := range rows {
		t.AddRow(r.Entries, r.LRULet, r.NestLet, r.LRULit, r.NestLit, r.Inhibited)
	}
	return t.String()
}

// OneShotRow compares Table-1 statistics with and without counting
// single-iteration executions.
type OneShotRow struct {
	Bench                  string
	WithIPE, WithoutIPE    float64 // iterations per execution
	WithExecs, WithoutExec uint64
}

// AblationOneShots quantifies the effect of counting one-iteration
// executions in the Table 1 statistics (the paper's definition detects
// them but does not say whether they are included; we default to
// counting them). One pass per benchmark; both collectors share a single
// detector.
func AblationOneShots(ctx context.Context, cfg Config) ([]OneShotRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[OneShotRow], len(bms))
	for i, bm := range bms {
		cells[i] = passCell[OneShotRow]{
			key:   cfg.cellKey("oneshots", bm.Name),
			label: "oneshots " + bm.Name,
			bench: bm,
			cfg:   cfg,
			mk: func() (trace.Pass, func() (OneShotRow, error)) {
				with := loopstats.NewCollector()
				without := loopstats.NewCollector()
				without.CountOneShots = false
				return harness.NewObserverPass(cfg.CLSCapacity, with, without),
					func() (OneShotRow, error) {
						w, wo := with.Summary(), without.Summary()
						return OneShotRow{
							Bench: bm.Name, WithIPE: w.ItersPerExec, WithoutIPE: wo.ItersPerExec,
							WithExecs: w.Execs, WithoutExec: wo.Execs,
						}, nil
					}
			},
		}
	}
	return mapCells(ctx, cfg, cells)
}

// RenderOneShots formats the one-shot ablation.
func RenderOneShots(rows []OneShotRow) string {
	t := report.NewTable("Ablation: counting 1-iteration executions in Table 1",
		"bench", "iter/exec (with)", "iter/exec (without)", "execs (with)", "execs (without)")
	for _, r := range rows {
		t.AddRow(r.Bench, r.WithIPE, r.WithoutIPE, r.WithExecs, r.WithoutExec)
	}
	return t.String()
}

// NestRuleRow compares the two STR(i) interpretations at one machine
// size.
type NestRuleRow struct {
	Policy string
	TUs    int
	// Suite-average TPC under each interpretation.
	StarvationTPC, StaticTPC float64
}

// AblationNestRule compares the starvation-based STR(i) reading (our
// default; consistent with the paper's Table 2) against the literal
// structural reading (see spec.NestRule and DESIGN.md). The grid is
// policy × machine size × benchmark × rule, in spec cells fused per
// benchmark.
func AblationNestRule(ctx context.Context, cfg Config, tus []int) ([]NestRuleRow, error) {
	if len(tus) == 0 {
		tus = []int{4, 8}
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	nests := []int{1, 3}
	var cells []passCell[spec.Metrics]
	for _, i := range nests {
		for _, k := range tus {
			for _, bm := range bms {
				cells = append(cells,
					specCell(cfg, bm, spec.Config{TUs: k, Policy: spec.STRn(i)}),
					specCell(cfg, bm, spec.Config{TUs: k, Policy: spec.STRn(i), NestRule: spec.NestRuleStatic}))
			}
		}
	}
	ms, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	var rows []NestRuleRow
	idx := 0
	for _, i := range nests {
		for _, k := range tus {
			row := NestRuleRow{Policy: spec.STRn(i).String(), TUs: k}
			for range bms {
				row.StarvationTPC += ms[idx].TPC()
				row.StaticTPC += ms[idx+1].TPC()
				idx += 2
			}
			n := float64(len(bms))
			row.StarvationTPC /= n
			row.StaticTPC /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderNestRule formats the STR(i)-interpretation ablation.
func RenderNestRule(rows []NestRuleRow) string {
	t := report.NewTable("Ablation: STR(i) interpretation (starvation-based vs literal structural)",
		"policy", "TUs", "avg TPC (starvation)", "avg TPC (static)")
	for _, r := range rows {
		t.AddRow(r.Policy, r.TUs, r.StarvationTPC, r.StaticTPC)
	}
	return t.String()
}

// ExclusionRow compares speculation with and without the §2.3.2
// exclusion table on one benchmark.
type ExclusionRow struct {
	Bench         string
	OffHit, OnHit float64
	OffTPC, OnTPC float64
	Denied        uint64
	Excluded      int
}

// AblationExclusion measures the §2.3.2 exclusion table ("those loops
// with a poor prediction rate may be good candidates to store in this
// table"): loops whose predicted threads resolve below the threshold are
// denied further speculation. Two spec cells per benchmark, fused; the
// exclusion-off cell is Table 2's and deduplicates against it on a
// shared Runner.
func AblationExclusion(ctx context.Context, cfg Config, threshold float64) ([]ExclusionRow, error) {
	if threshold == 0 {
		threshold = 0.85
	}
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	cells := make([]passCell[spec.Metrics], 0, 2*len(bms))
	for _, bm := range bms {
		cells = append(cells,
			specCell(cfg, bm, spec.Config{TUs: 4, Policy: spec.STRn(3)}),
			specCell(cfg, bm, spec.Config{
				TUs: 4, Policy: spec.STRn(3),
				Exclude: true, ExcludeThreshold: threshold,
			}))
	}
	ms, err := mapCells(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]ExclusionRow, 0, len(bms))
	for i, bm := range bms {
		mOff, mOn := ms[2*i], ms[2*i+1]
		rows = append(rows, ExclusionRow{
			Bench:  bm.Name,
			OffHit: mOff.HitRatio(), OnHit: mOn.HitRatio(),
			OffTPC: mOff.TPC(), OnTPC: mOn.TPC(),
			Denied: mOn.DeniedSpawns, Excluded: mOn.ExcludedLoops,
		})
	}
	return rows, nil
}

// RenderExclusion formats the exclusion-table ablation.
func RenderExclusion(rows []ExclusionRow) string {
	t := report.NewTable("Ablation: §2.3.2 exclusion table (STR(3), 4 TUs)",
		"bench", "hit% off", "hit% on", "TPC off", "TPC on", "denied", "excluded loops")
	for _, r := range rows {
		t.AddRow(r.Bench, r.OffHit, r.OnHit, r.OffTPC, r.OnTPC, r.Denied, r.Excluded)
	}
	return t.String()
}

// OracleRow compares the STR policy against speculation with perfect
// iteration-count knowledge.
type OracleRow struct {
	Bench             string
	STRTPC, OracleTPC float64
	STRHit, OracleHit float64
}

// AblationOracle bounds the cost of iteration-count misprediction: a
// first traversal records every execution's true count, a second
// speculates with it. The gap between the STR and oracle columns is all
// the TPC that better iteration-count prediction could ever recover.
// Each benchmark is one composite job (the oracle run depends on the
// recorder pass, so it cannot be a flat cell): traversal one runs the
// recorder, traversal two runs the blind-STR and oracle engines fused.
func AblationOracle(ctx context.Context, cfg Config) ([]OracleRow, error) {
	bms, err := cfg.benchmarks()
	if err != nil {
		return nil, err
	}
	mc := harness.MultiConfig{Budget: cfg.budget(), BatchSize: cfg.BatchSize}
	jobs := make([]runner.Job[OracleRow], len(bms))
	for i, bm := range bms {
		jobs[i] = runner.Job[OracleRow]{
			Key:   cfg.cellKey("oracle", bm.Name),
			Label: "oracle " + bm.Name,
			Run: func(ctx context.Context) (OracleRow, error) {
				u, err := bm.Build(cfg.seed())
				if err != nil {
					return OracleRow{}, fmt.Errorf("expt: build %s: %w", bm.Name, err)
				}
				rec := spec.NewOracleRecorder()
				if _, err := harness.MultiRun(u, mc, harness.NewObserverPass(cfg.CLSCapacity, rec)); err != nil {
					return OracleRow{}, err
				}
				str := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR()})
				oracle := spec.NewEngine(spec.Config{TUs: 4, Policy: spec.STR(), OracleIters: rec.Counts()})
				if _, err := harness.MultiRun(u, mc,
					harness.NewObserverPass(cfg.CLSCapacity, str),
					harness.NewObserverPass(cfg.CLSCapacity, oracle)); err != nil {
					return OracleRow{}, err
				}
				mS, mO := str.Metrics(), oracle.Metrics()
				return OracleRow{
					Bench:  bm.Name,
					STRTPC: mS.TPC(), OracleTPC: mO.TPC(),
					STRHit: mS.HitRatio(), OracleHit: mO.HitRatio(),
				}, nil
			},
		}
	}
	return runner.Map(ctx, cfg.pool(), jobs)
}

// RenderOracle formats the oracle ablation.
func RenderOracle(rows []OracleRow) string {
	t := report.NewTable("Ablation: STR vs oracle iteration counts (4 TUs)",
		"bench", "STR TPC", "oracle TPC", "STR hit%", "oracle hit%")
	for _, r := range rows {
		t.AddRow(r.Bench, r.STRTPC, r.OracleTPC, r.STRHit, r.OracleHit)
	}
	return t.String()
}
