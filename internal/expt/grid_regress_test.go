package expt

import (
	"context"
	"strings"
	"testing"

	"dynloop/internal/grid"
	"dynloop/internal/runner"
)

// driverRender reproduces each section of the report through the public
// driver functions — the "legacy" surface the registry specs must match
// byte for byte.
func driverRender(t *testing.T, ctx context.Context, cfg Config, name string) string {
	t.Helper()
	fail := func(err error) string {
		if err != nil {
			t.Fatalf("%s driver: %v", name, err)
		}
		return ""
	}
	switch name {
	case "table1":
		rows, err := Table1(ctx, cfg)
		fail(err)
		return RenderTable1(rows)
	case "fig4":
		pts, err := Fig4(ctx, cfg)
		fail(err)
		return RenderFig4(pts)
	case "fig5":
		rows, err := Fig5(ctx, cfg)
		fail(err)
		return RenderFig5(rows)
	case "fig6":
		rows, err := Fig6(ctx, cfg)
		fail(err)
		return RenderFig6(rows)
	case "fig7":
		cells, err := Fig7(ctx, cfg)
		fail(err)
		return RenderFig7(cells)
	case "table2":
		rows, err := Table2(ctx, cfg)
		fail(err)
		return RenderTable2(rows)
	case "fig8":
		rows, avg, err := Fig8(ctx, cfg)
		fail(err)
		return RenderFig8(rows, avg)
	case "baseline/branch":
		rows, err := BaselineBranchPred(ctx, cfg)
		fail(err)
		return RenderBaseline(rows)
	case "baseline/task":
		rows, err := BaselineTaskPred(ctx, cfg)
		fail(err)
		return RenderTaskPred(rows)
	case "ablation/cls":
		rows, err := AblationCLSSize(ctx, cfg, nil)
		fail(err)
		return RenderCLSSize(rows)
	case "ablation/let":
		rows, err := AblationLETCapacity(ctx, cfg, nil)
		fail(err)
		return RenderLETCapacity(rows)
	case "ablation/replacement":
		rows, err := AblationReplacement(ctx, cfg, nil)
		fail(err)
		return RenderReplacement(rows)
	case "ablation/oneshots":
		rows, err := AblationOneShots(ctx, cfg)
		fail(err)
		return RenderOneShots(rows)
	case "ablation/nestrule":
		rows, err := AblationNestRule(ctx, cfg, nil)
		fail(err)
		return RenderNestRule(rows)
	case "ablation/exclusion":
		rows, err := AblationExclusion(ctx, cfg, 0)
		fail(err)
		return RenderExclusion(rows)
	case "ablation/oracle":
		rows, err := AblationOracle(ctx, cfg)
		fail(err)
		return RenderOracle(rows)
	case "sweep":
		rows, err := Sweep(ctx, cfg, SweepSpec{})
		fail(err)
		return RenderSweep(rows)
	default:
		t.Fatalf("no driver mapping for registered grid %q", name)
		return ""
	}
}

// TestRegistryMatchesDrivers is the refactor's acceptance regression:
// every registered grid spec, executed through the registry path
// (grid.Lookup → grid.Run → Entry.Render — exactly what All, the grid
// CLI and POST /v1/grid do), renders byte-identically to its driver
// function, at 1 worker and at 8.
func TestRegistryMatchesDrivers(t *testing.T) {
	ctx := context.Background()
	base := Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}
	for _, parallel := range []int{1, 8} {
		cfg := base
		cfg.Runner = runner.New(runner.Config{Workers: parallel})
		for _, name := range grid.Names() {
			e, ok := grid.Lookup(name)
			if !ok {
				t.Fatalf("grid %q vanished from the registry", name)
			}
			res, err := grid.Run(ctx, cfg, e.Spec)
			if err != nil {
				t.Fatalf("%s (parallel=%d): %v", name, parallel, err)
			}
			got, err := e.Render(res)
			if err != nil {
				t.Fatalf("%s render: %v", name, err)
			}
			want := driverRender(t, ctx, cfg, name)
			if got != want {
				t.Errorf("%s (parallel=%d): registry render differs from driver:\n--- registry ---\n%s\n--- driver ---\n%s",
					name, parallel, got, want)
			}
		}
	}
}

// TestAllComposedOfRegistrySections pins All's section structure: the
// full report is exactly the registered sections rendered in paper
// order with the historical separators, at 1 and 8 workers.
func TestAllComposedOfRegistrySections(t *testing.T) {
	ctx := context.Background()
	base := Config{Budget: 50_000, Benchmarks: []string{"m88ksim", "perl"}}
	sections := [][]string{
		{"table1"}, {"fig4"}, {"fig5"}, {"fig6"}, {"fig7"}, {"table2"}, {"fig8"},
		{"baseline/branch", "baseline/task"},
		{"ablation/cls", "ablation/let", "ablation/replacement", "ablation/oneshots",
			"ablation/nestrule", "ablation/exclusion", "ablation/oracle"},
	}
	for _, parallel := range []int{1, 8} {
		cfg := base
		cfg.Runner = runner.New(runner.Config{Workers: parallel})
		var want strings.Builder
		for _, sec := range sections {
			parts := make([]string, 0, len(sec))
			for _, name := range sec {
				parts = append(parts, driverRender(t, ctx, cfg, name))
			}
			sep := ""
			if len(sec) == 2 { // the baseline section joins with a blank line
				sep = "\n"
			}
			want.WriteString(strings.Join(parts, sep))
			want.WriteByte('\n')
		}
		got, err := All(ctx, cfg)
		if err != nil {
			t.Fatalf("All (parallel=%d): %v", parallel, err)
		}
		if got != want.String() {
			t.Errorf("All (parallel=%d) is not the concatenation of its registry sections:\n--- All ---\n%s\n--- sections ---\n%s",
				parallel, got, want.String())
		}
	}
}

// TestRegistryRoundTrip is the listing round trip: every name in the
// registry resolves, validates, sizes, executes and renders — and a
// spec fetched from the listing executes to the same bytes as the named
// path (what a client fetching GET /v1/grids and POSTing the spec back
// inline gets).
func TestRegistryRoundTrip(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Budget: 50_000, Benchmarks: []string{"swim"},
		Runner: runner.New(runner.Config{Workers: 4})}
	for _, name := range grid.Names() {
		e, _ := grid.Lookup(name)
		if err := e.Spec.Validate(); err != nil {
			t.Fatalf("%s: canonical spec invalid: %v", name, err)
		}
		if n, err := e.Spec.Size(cfg); err != nil || n <= 0 {
			t.Fatalf("%s: size %d, %v", name, n, err)
		}
		named, err := grid.Run(ctx, cfg, e.Spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nb, err := grid.RenderResult(named)
		if err != nil || nb == "" {
			t.Fatalf("%s: render: %v", name, err)
		}
		// Round trip: rebuild from the raw values (the wire path) and
		// render the fetched spec as an inline resubmission.
		re, err := grid.ResultFrom(cfg, e.Spec, named.Values)
		if err != nil {
			t.Fatalf("%s: ResultFrom: %v", name, err)
		}
		rb, err := grid.RenderResult(re)
		if err != nil || rb != nb {
			t.Fatalf("%s: round-trip render differs (%v):\n%s\nvs\n%s", name, err, rb, nb)
		}
	}
}

// TestRenderResultKindMismatch: an ad-hoc spec that reuses a registered
// name with a different kind must NOT be routed to the registered
// section renderer (whose row types would not match) — it renders
// through the generic layout instead of panicking.
func TestRenderResultKindMismatch(t *testing.T) {
	cfg := Config{Budget: 50_000, Parallel: 2}
	res, err := grid.Run(context.Background(), cfg, grid.Spec{
		Name:       "table1", // reuses a registered name...
		Kind:       "spec",   // ...with a different kind
		Benchmarks: []string{"swim"},
		TUs:        []int{4},
		Policies:   []string{"str"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := grid.RenderResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "paper's value in parentheses") {
		t.Fatalf("kind-mismatched spec rendered through the table1 section renderer:\n%s", out)
	}
	if !strings.Contains(out, "tpc") {
		t.Fatalf("expected the generic layout render:\n%s", out)
	}
}
