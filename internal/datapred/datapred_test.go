package datapred

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/harness"
	"dynloop/internal/isa"
)

// runPred executes a unit with a collector attached and returns the
// summary.
func runPred(t *testing.T, u *builder.Unit, cfg Config) Summary {
	t.Helper()
	c := NewCollector(cfg)
	res, err := harness.Run(u, harness.Config{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	return c.Summary()
}

// TestAffineLiveInsPredicted: a loop whose live-in register advances by a
// constant stride per iteration must be near-perfectly predictable.
func TestAffineLiveInsPredicted(t *testing.T) {
	b := builder.New("t", 1)
	b.MovI(12, 100)
	b.CountedLoop(builder.TripImm(200), builder.LoopOpt{}, func() {
		// Read r12 (live-in), then advance it by 3.
		b.Emit(isa.AddI(13, 12, 1))
		b.Advance(12, 3)
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.Loops != 1 {
		t.Fatalf("loops = %d", s.Loops)
	}
	if s.SamePathPct != 100 {
		t.Fatalf("same path = %v%%, want 100 (no branches in body)", s.SamePathPct)
	}
	if s.LrPredPct < 95 {
		t.Fatalf("lr pred = %.1f%%, want ~100 on affine live-ins", s.LrPredPct)
	}
	if s.AllDataPct < 90 {
		t.Fatalf("all data = %.1f%%, want high", s.AllDataPct)
	}
}

// TestChaoticLiveInsUnpredictable: live-ins drawn fresh from a random
// sequence every iteration defeat the stride predictor.
func TestChaoticLiveInsUnpredictable(t *testing.T) {
	b := builder.New("t", 2)
	noise := b.UniformSeq(0, 1<<30)
	b.CountedLoop(builder.TripImm(200), builder.LoopOpt{}, func() {
		b.Emit(isa.AddI(13, 23, 1)) // read r23: live-in, random each iteration
		b.SetSeq(23, noise)         // rewrite r23 with a fresh random draw
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.LrPredPct > 50 {
		t.Fatalf("lr pred = %.1f%%, want low on random live-ins", s.LrPredPct)
	}
	if s.AllDataPct > 50 {
		t.Fatalf("all data = %.1f%%, want low", s.AllDataPct)
	}
}

// TestMemoryLiveInStride: a memory cell advanced by a constant stride per
// iteration is a predictable live-in memory location.
func TestMemoryLiveInStride(t *testing.T) {
	b := builder.New("t", 3)
	b.MovI(24, builder.HeapBase)
	b.StoreAt(24, 0, 0) // mem[heap] = 0
	b.CountedLoop(builder.TripImm(150), builder.LoopOpt{}, func() {
		b.LoadAt(13, 24, 0) // live-in memory read
		b.Emit(isa.AddI(13, 13, 7))
		b.StoreAt(24, 0, 13) // cell grows by 7 per iteration
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.LmPredPct < 90 {
		t.Fatalf("lm pred = %.1f%%, want ~100 on strided memory cell", s.LmPredPct)
	}
}

// TestWrittenFirstIsNotLiveIn: a register written before being read in
// the iteration must not count as a live-in.
func TestWrittenFirstIsNotLiveIn(t *testing.T) {
	b := builder.New("t", 4)
	noise := b.UniformSeq(0, 1<<30)
	b.CountedLoop(builder.TripImm(100), builder.LoopOpt{}, func() {
		b.SetSeq(23, noise)         // write r23 FIRST (random)
		b.Emit(isa.AddI(13, 23, 1)) // then read it: not a live-in
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	// The only live-ins left are the loop bookkeeping (counter slot via
	// memory, which is stride-predictable), so prediction must stay high
	// even though r23 itself is random.
	if s.LrPredPct != 0 && s.LrPredPct < 90 {
		t.Fatalf("lr pred = %.1f%%: random written-first register leaked into live-ins", s.LrPredPct)
	}
}

// TestPathSplit: a body with a 50/50 branch has a most-frequent path
// around 50%, and iterations are bucketed by path.
func TestPathSplit(t *testing.T) {
	b := builder.New("t", 5)
	coin := b.BernoulliSeq(0.5)
	b.CountedLoop(builder.TripImm(400), builder.LoopOpt{}, func() {
		b.IfSeq(coin, func() { b.Work(4) }, func() { b.Work(9) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.SamePathPct < 35 || s.SamePathPct > 65 {
		t.Fatalf("same path = %.1f%%, want ~50", s.SamePathPct)
	}
}

// TestDominantPath: an 85/15 branch yields the paper's ~85% same-path
// coverage shape.
func TestDominantPath(t *testing.T) {
	b := builder.New("t", 6)
	coin := b.BernoulliSeq(0.85)
	b.CountedLoop(builder.TripImm(600), builder.LoopOpt{}, func() {
		b.IfSeq(coin, func() { b.Work(4) }, func() { b.Work(9) })
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.SamePathPct < 75 || s.SamePathPct > 95 {
		t.Fatalf("same path = %.1f%%, want ~85", s.SamePathPct)
	}
}

// TestNestedAttribution: instructions of an inner loop belong to the
// outer iteration too; the outer loop's live-in set must include
// registers read only inside the inner loop.
func TestNestedAttribution(t *testing.T) {
	b := builder.New("t", 7)
	b.MovI(12, 5)
	b.CountedLoop(builder.TripImm(50), builder.LoopOpt{}, func() {
		b.CountedLoop(builder.TripImm(4), builder.LoopOpt{}, func() {
			b.Emit(isa.AddI(13, 12, 0)) // reads r12
		})
		b.Advance(12, 2)
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{})
	if s.Loops != 2 {
		t.Fatalf("loops = %d, want 2", s.Loops)
	}
	// r12 is a stride-2 live-in of the outer iterations and a CONSTANT
	// live-in within one outer iteration for the inner executions. Both
	// are predictable except at execution boundaries, where the inner
	// predictor sees the jump between outer iterations and mispredicts
	// once per execution — the same boundary effect that keeps the
	// paper's aggregate "lr pred" near 85% rather than 100%.
	if s.LrPredPct < 65 || s.LrPredPct > 90 {
		t.Fatalf("lr pred = %.1f%%", s.LrPredPct)
	}
}

// TestMemCap: the per-loop memory cap drops excess locations and counts
// them.
func TestMemCap(t *testing.T) {
	b := builder.New("t", 8)
	b.MovI(24, builder.HeapBase)
	b.CountedLoop(builder.TripImm(50), builder.LoopOpt{}, func() {
		b.LoadAt(13, 24, 0)
		b.LoadAt(13, 24, 1)
		b.LoadAt(13, 24, 2)
		b.LoadAt(13, 24, 3)
		b.Advance(24, 4) // new addresses every iteration
	})
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := runPred(t, u, Config{MaxMemPerLoop: 8})
	if s.MemOverflow == 0 {
		t.Fatal("expected memory-cap overflow")
	}
}
