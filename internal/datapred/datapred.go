// Package datapred gathers the paper's §4 data-speculation statistics
// (Figure 8): how often iterations of a loop follow the loop's most
// frequent control path, and how often the live-in registers and memory
// locations of an iteration can be predicted from the previous iteration's
// value plus the last stride.
//
// A live-in of an iteration is a register or memory location read before
// it is written inside the iteration (including nested subroutines and
// inner loops, which belong to the iteration). Tables are unbounded here,
// as the paper assumes for Figure 8 ("LIT and LET tables have enough
// capacity to store all the loops"). The Collector is a detector
// observer: attach it with Detector.AddObserver, or bundle it into one
// pass of a fused multi-pass traversal with harness.NewObserverPass.
package datapred

import (
	"dynloop/internal/isa"
	"dynloop/internal/loopdet"
	"dynloop/internal/predict"
	"dynloop/internal/trace"
)

// Config tunes resource caps of the collector. The caps exist because our
// substrate is a simulator: the paper's hardware proposal stores a fixed
// number of live-ins per LIT entry anyway.
type Config struct {
	// MaxMemPerLoop caps the distinct memory locations tracked per loop
	// (default 4096). Further locations are ignored and counted in
	// Summary.MemOverflow.
	MaxMemPerLoop int
	// MaxPathsPerLoop caps distinct path signatures tracked per loop
	// (default 4096).
	MaxPathsPerLoop int
}

func (c *Config) setDefaults() {
	if c.MaxMemPerLoop == 0 {
		c.MaxMemPerLoop = 4096
	}
	if c.MaxPathsPerLoop == 0 {
		c.MaxPathsPerLoop = 4096
	}
}

// pathStat accumulates prediction outcomes for iterations of one control
// path of one loop.
type pathStat struct {
	iters     uint64
	lrAttempt uint64
	lrCorrect uint64
	lmAttempt uint64
	lmCorrect uint64
	// lrLast/lmLast count last-value (stride-less) prediction hits over
	// the same attempts, for the predictor-choice ablation: the paper's
	// LIT stores value+stride; these quantify what the stride buys.
	lrLast  uint64
	lmLast  uint64
	allLr   uint64
	allLm   uint64
	allData uint64
}

// loopAcc is the per-loop accumulated state: value predictors (shared
// across paths, fed by every iteration) and per-path outcome buckets.
type loopAcc struct {
	regPred  [isa.NumRegs]predict.Stride
	memPred  map[uint64]*predict.Stride
	paths    map[uint64]*pathStat
	iters    uint64
	overflow uint64
}

// frame tracks the current iteration of one active loop execution.
type frame struct {
	loop *loopAcc
	gen  uint32
	// regState is 0 (unseen this iteration), gen<<1 (read first) or
	// gen<<1|1 (written first).
	regState [isa.NumRegs]uint32
	regFirst [isa.NumRegs]int64
	regLive  []isa.Reg
	memFirst map[uint64]int64
	memSeen  map[uint64]bool // true = written before read
	// memOrder records first-touched addresses in stream order, so that
	// live-in evaluation (and, crucially, the MaxMemPerLoop cap
	// admission) is deterministic — iterating memSeen directly would let
	// Go's randomised map order pick which locations get predictors.
	memOrder []uint64
	pathHash uint64
	started  bool
}

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

func (f *frame) reset() {
	f.gen++
	f.regLive = f.regLive[:0]
	f.memOrder = f.memOrder[:0]
	clear(f.memFirst)
	clear(f.memSeen)
	f.pathHash = fnvOffset
	f.started = true
}

func (f *frame) noteRegRead(r isa.Reg, v int64) {
	if f.regState[r]>>1 == f.gen {
		return // already seen this iteration
	}
	f.regState[r] = f.gen << 1
	f.regFirst[r] = v
	f.regLive = append(f.regLive, r)
}

func (f *frame) noteRegWrite(r isa.Reg) {
	if f.regState[r]>>1 == f.gen {
		return
	}
	f.regState[r] = f.gen<<1 | 1
}

func (f *frame) noteMemRead(addr uint64, v int64) {
	if f.memSeen == nil {
		f.memSeen = make(map[uint64]bool)
		f.memFirst = make(map[uint64]int64)
	}
	if _, ok := f.memSeen[addr]; ok {
		return
	}
	f.memSeen[addr] = false
	f.memFirst[addr] = v
	f.memOrder = append(f.memOrder, addr)
}

func (f *frame) noteMemWrite(addr uint64) {
	if f.memSeen == nil {
		f.memSeen = make(map[uint64]bool)
		f.memFirst = make(map[uint64]int64)
	}
	if _, ok := f.memSeen[addr]; ok {
		return
	}
	f.memSeen[addr] = true
}

// Collector implements the Figure-8 measurement as a detector observer.
type Collector struct {
	cfg    Config
	shadow [isa.NumRegs]int64
	frames []*frame
	byID   map[uint64]*frame
	loops  map[isa.Addr]*loopAcc
	reads  []isa.Reg
}

// NewCollector returns a collector with the given configuration.
func NewCollector(cfg Config) *Collector {
	cfg.setDefaults()
	return &Collector{
		cfg:   cfg,
		byID:  make(map[uint64]*frame),
		loops: make(map[isa.Addr]*loopAcc),
	}
}

// Instr implements loopdet.StreamObserver: classify reads/writes into
// every active iteration frame and maintain the register shadow.
func (c *Collector) Instr(ev *trace.Event) {
	in := ev.Instr
	if len(c.frames) > 0 {
		c.reads = in.Reads(c.reads[:0])
		for _, fr := range c.frames {
			if !fr.started {
				continue
			}
			fr.pathHash = (fr.pathHash ^ uint64(ev.PC)) * fnvPrime
			for _, r := range c.reads {
				fr.noteRegRead(r, c.shadow[r])
			}
			switch in.Kind {
			case isa.KindLoad:
				fr.noteMemRead(ev.MemAddr, ev.MemVal)
			case isa.KindStore:
				fr.noteMemWrite(ev.MemAddr)
			}
			if ev.WroteReg {
				fr.noteRegWrite(ev.WrittenReg)
			}
		}
	}
	if ev.WroteReg {
		c.shadow[ev.WrittenReg] = ev.WrittenVal
	}
}

// InstrBatch implements loopdet.BatchStreamObserver. Outside any loop —
// the common case between executions — the run reduces to replaying
// register writes into the shadow file with no per-event dispatch;
// inside loops the per-event classification is inherently per
// instruction, but the method-call loop still beats one interface call
// per event.
func (c *Collector) InstrBatch(evs []trace.Event) {
	if len(c.frames) == 0 {
		for i := range evs {
			if ev := &evs[i]; ev.WroteReg {
				c.shadow[ev.WrittenReg] = ev.WrittenVal
			}
		}
		return
	}
	for i := range evs {
		c.Instr(&evs[i])
	}
}

// ExecStart implements loopdet.Observer.
func (c *Collector) ExecStart(x *loopdet.Exec) {
	la := c.loops[x.T]
	if la == nil {
		la = &loopAcc{
			memPred: make(map[uint64]*predict.Stride),
			paths:   make(map[uint64]*pathStat),
		}
		c.loops[x.T] = la
	}
	fr := &frame{loop: la}
	fr.reset()
	c.frames = append(c.frames, fr)
	c.byID[x.ID] = fr
}

// IterStart implements loopdet.Observer: the previous iteration is
// complete — evaluate and train the predictors — and a fresh one begins.
func (c *Collector) IterStart(x *loopdet.Exec, index uint64) {
	fr := c.byID[x.ID]
	if fr == nil {
		return
	}
	if x.Iters > 2 {
		c.finishIteration(fr)
	}
	fr.reset()
}

// ExecEnd implements loopdet.Observer.
func (c *Collector) ExecEnd(x *loopdet.Exec, reason loopdet.EndReason, index uint64) {
	fr := c.byID[x.ID]
	if fr == nil {
		return
	}
	switch reason {
	case loopdet.EndEvicted, loopdet.EndFlush:
		// Partial iteration; discard.
	default:
		c.finishIteration(fr)
	}
	delete(c.byID, x.ID)
	for i := len(c.frames) - 1; i >= 0; i-- {
		if c.frames[i] == fr {
			copy(c.frames[i:], c.frames[i+1:])
			c.frames = c.frames[:len(c.frames)-1]
			break
		}
	}
}

// OneShot implements loopdet.Observer; one-shot executions have no
// detected iterations.
func (c *Collector) OneShot(t, b isa.Addr, index uint64) {}

// finishIteration evaluates the just-completed iteration of fr against
// the loop's predictors, then trains them with the observed live-ins.
func (c *Collector) finishIteration(fr *frame) {
	la := fr.loop
	la.iters++
	ps := la.paths[fr.pathHash]
	if ps == nil {
		if len(la.paths) >= c.cfg.MaxPathsPerLoop {
			// Bucket overflow paths together; they are by construction
			// rare paths.
			ps = la.paths[0]
			if ps == nil {
				ps = &pathStat{}
				la.paths[0] = ps
			}
		} else {
			ps = &pathStat{}
			la.paths[fr.pathHash] = ps
		}
	}
	ps.iters++

	allReg, allMem := true, true
	for _, r := range fr.regLive {
		v := fr.regFirst[r]
		pr := &la.regPred[r]
		if pr.Samples() >= 2 {
			pred, _ := pr.Predict()
			ps.lrAttempt++
			if pred == v {
				ps.lrCorrect++
			} else {
				allReg = false
			}
			if last, ok := pr.HaveLast(); ok && last == v {
				ps.lrLast++
			}
		} else {
			allReg = false
		}
		pr.Observe(v)
	}
	// memOrder holds exactly the read-before-write addresses (write-first
	// locations never enter it), in first-read stream order.
	for _, addr := range fr.memOrder {
		v := fr.memFirst[addr]
		pr := la.memPred[addr]
		if pr == nil {
			if len(la.memPred) >= c.cfg.MaxMemPerLoop {
				la.overflow++
				allMem = false
				continue
			}
			pr = &predict.Stride{}
			la.memPred[addr] = pr
		}
		if pr.Samples() >= 2 {
			pred, _ := pr.Predict()
			ps.lmAttempt++
			if pred == v {
				ps.lmCorrect++
			} else {
				allMem = false
			}
			if last, ok := pr.HaveLast(); ok && last == v {
				ps.lmLast++
			}
		} else {
			allMem = false
		}
		pr.Observe(v)
	}
	if allReg {
		ps.allLr++
	}
	if allMem {
		ps.allLm++
	}
	if allReg && allMem {
		ps.allData++
	}
}

// Summary is the Figure-8 result set; all percentages except SamePathPct
// are measured over iterations of each loop's most frequent path, as in
// the paper.
type Summary struct {
	// Loops is the number of distinct loops with at least one evaluated
	// iteration.
	Loops int
	// Iters is the number of evaluated iterations.
	Iters uint64
	// SamePathPct is the percentage of iterations covered by their loop's
	// most frequent path.
	SamePathPct float64
	// LrPredPct is the percentage of live-in register reads predicted
	// correctly (last value + stride).
	LrPredPct float64
	// LmPredPct is the same for live-in memory locations.
	LmPredPct float64
	// AllLrPct is the percentage of iterations with every live-in
	// register predicted correctly.
	AllLrPct float64
	// AllLmPct is the same for live-in memory locations.
	AllLmPct float64
	// AllDataPct is the percentage of iterations with all live-in values
	// correct.
	AllDataPct float64
	// LrLastPct and LmLastPct are the same accuracies under a plain
	// last-value predictor (no stride), quantifying what the stride buys.
	LrLastPct, LmLastPct float64
	// MemOverflow counts live-in locations dropped by the per-loop cap.
	MemOverflow uint64
}

// Summary aggregates the per-loop, per-path buckets into the Figure-8
// metrics.
func (c *Collector) Summary() Summary {
	var s Summary
	var sameIters uint64
	var lrA, lrC, lmA, lmC, lrL, lmL, allLr, allLm, allData, mfpIters uint64
	for _, la := range c.loops {
		if la.iters == 0 {
			continue
		}
		s.Loops++
		s.Iters += la.iters
		s.MemOverflow += la.overflow
		// Most frequent path of this loop. Ties are broken on the lowest
		// path hash — without a deterministic tie-break, randomised map
		// order would pick the winner and the report would differ from
		// run to run.
		var best *pathStat
		var bestHash uint64
		for h, ps := range la.paths {
			if best == nil || ps.iters > best.iters || (ps.iters == best.iters && h < bestHash) {
				best, bestHash = ps, h
			}
		}
		if best == nil {
			continue
		}
		sameIters += best.iters
		mfpIters += best.iters
		lrA += best.lrAttempt
		lrC += best.lrCorrect
		lmA += best.lmAttempt
		lmC += best.lmCorrect
		lrL += best.lrLast
		lmL += best.lmLast
		allLr += best.allLr
		allLm += best.allLm
		allData += best.allData
	}
	if s.Iters > 0 {
		s.SamePathPct = 100 * float64(sameIters) / float64(s.Iters)
	}
	if lrA > 0 {
		s.LrPredPct = 100 * float64(lrC) / float64(lrA)
		s.LrLastPct = 100 * float64(lrL) / float64(lrA)
	}
	if lmA > 0 {
		s.LmPredPct = 100 * float64(lmC) / float64(lmA)
		s.LmLastPct = 100 * float64(lmL) / float64(lmA)
	}
	if mfpIters > 0 {
		s.AllLrPct = 100 * float64(allLr) / float64(mfpIters)
		s.AllLmPct = 100 * float64(allLm) / float64(mfpIters)
		s.AllDataPct = 100 * float64(allData) / float64(mfpIters)
	}
	return s
}
