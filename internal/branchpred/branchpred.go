// Package branchpred implements the classic branch predictors the paper
// positions itself against: "branch prediction is the most studied
// control speculation technique" (§1, citing Smith [8] and Yeh/Patt
// [13]). They are the intra-thread baseline: a superscalar machine
// speculates one branch at a time, while the paper's mechanism
// speculates whole future iterations. Measuring them on the same
// workloads grounds the paper's premise that "the closing branches of
// loops are highly predictable".
package branchpred

import (
	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

// Predictor guesses conditional-branch outcomes.
type Predictor interface {
	// Predict returns the predicted outcome for the branch at pc with
	// the given target.
	Predict(pc, target isa.Addr) bool
	// Update trains the predictor with the actual outcome.
	Update(pc, target isa.Addr, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// BTFN is the static backward-taken/forward-not-taken rule (Smith's
// baseline): it captures loop closing branches by construction.
type BTFN struct{}

// Predict returns taken for backward branches.
func (BTFN) Predict(pc, target isa.Addr) bool { return target <= pc }

// Update is a no-op: BTFN is static.
func (BTFN) Update(isa.Addr, isa.Addr, bool) {}

// Name returns "BTFN".
func (BTFN) Name() string { return "BTFN" }

// Bimodal is a table of 2-bit saturating counters indexed by PC (Smith's
// dynamic predictor).
type Bimodal struct {
	table []uint8
	mask  uint32
}

// NewBimodal returns a bimodal predictor with 2^bits counters,
// initialised weakly taken.
func NewBimodal(bits uint) *Bimodal {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint32(n - 1)}
}

// Predict reads the counter's direction bit.
func (b *Bimodal) Predict(pc, target isa.Addr) bool {
	return b.table[uint32(pc)&b.mask] >= 2
}

// Update saturates the counter toward the outcome.
func (b *Bimodal) Update(pc, target isa.Addr, taken bool) {
	i := uint32(pc) & b.mask
	c := b.table[i]
	if taken {
		if c < 3 {
			b.table[i] = c + 1
		}
	} else if c > 0 {
		b.table[i] = c - 1
	}
}

// Name returns "bimodal".
func (b *Bimodal) Name() string { return "bimodal" }

// GShare is the two-level predictor of Yeh/Patt lineage: global branch
// history XORed into the PC index.
type GShare struct {
	table   []uint8
	mask    uint32
	history uint32
	hmask   uint32
}

// NewGShare returns a gshare predictor with 2^bits counters and a
// history register of the same width.
func NewGShare(bits uint) *GShare {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: uint32(n - 1), hmask: uint32(n - 1)}
}

func (g *GShare) index(pc isa.Addr) uint32 {
	return (uint32(pc) ^ g.history) & g.mask
}

// Predict reads the indexed counter.
func (g *GShare) Predict(pc, target isa.Addr) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the history.
func (g *GShare) Update(pc, target isa.Addr, taken bool) {
	i := g.index(pc)
	c := g.table[i]
	if taken {
		if c < 3 {
			g.table[i] = c + 1
		}
	} else if c > 0 {
		g.table[i] = c - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.hmask
}

// Name returns "gshare".
func (g *GShare) Name() string { return "gshare" }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Result is one predictor's accuracy over a stream.
type Result struct {
	Name     string
	Branches uint64
	Hits     uint64
	// BackwardBranches/BackwardHits isolate the loop closing branches —
	// the population the paper's premise is about.
	BackwardBranches uint64
	BackwardHits     uint64
}

// Accuracy returns hits/branches in percent.
func (r Result) Accuracy() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(r.Branches)
}

// BackwardAccuracy returns the accuracy on backward branches only.
func (r Result) BackwardAccuracy() float64 {
	if r.BackwardBranches == 0 {
		return 0
	}
	return 100 * float64(r.BackwardHits) / float64(r.BackwardBranches)
}

// Collector measures any number of predictors over one stream. It
// implements trace.Consumer, trace.BatchConsumer and trace.Pass: attach
// it with harness.Config.PreDetector, or schedule it directly as one
// pass of a fused multi-pass traversal (it needs no loop detector).
type Collector struct {
	preds   []Predictor
	results []Result
}

// Init implements trace.Pass; a fresh collector needs no setup.
func (c *Collector) Init() {}

// Finalize implements trace.Pass; the results need no end-of-stream
// work.
func (c *Collector) Finalize() {}

// NewCollector returns a collector over the given predictors.
func NewCollector(preds ...Predictor) *Collector {
	c := &Collector{preds: preds, results: make([]Result, len(preds))}
	for i, p := range preds {
		c.results[i].Name = p.Name()
	}
	return c
}

// DefaultSuite returns the standard comparison: BTFN, 4K-entry bimodal,
// 4K-entry gshare.
func DefaultSuite() *Collector {
	return NewCollector(BTFN{}, NewBimodal(12), NewGShare(12))
}

// Consume implements trace.Consumer: score conditional branches.
func (c *Collector) Consume(ev *trace.Event) {
	if ev.Instr.Kind != isa.KindBranch {
		return
	}
	c.score(ev.PC, ev.Instr.Target, ev.Taken)
}

// ConsumeBatch implements trace.BatchConsumer: non-branches — the vast
// majority of the stream — cost one kind test each, with no interface
// dispatch.
func (c *Collector) ConsumeBatch(evs []trace.Event) {
	for i := range evs {
		if ev := &evs[i]; ev.Instr.Kind == isa.KindBranch {
			c.score(ev.PC, ev.Instr.Target, ev.Taken)
		}
	}
}

// ConsumeCtlBatch implements trace.CtlBatchConsumer: predictors read only
// the control facet, so the collector is control-only. Every conditional
// branch is a control-transfer event, so the producer's ctl indices let
// it skip straight-line runs without even the per-event kind test.
func (c *Collector) ConsumeCtlBatch(evs []trace.CtlEvent, ctl []int32) {
	for _, ci := range ctl {
		if ev := &evs[ci]; ev.Instr.Kind == isa.KindBranch {
			c.score(ev.PC, ev.Instr.Target, ev.Taken)
		}
	}
}

// score runs every predictor on one conditional branch.
func (c *Collector) score(pc, target isa.Addr, taken bool) {
	backward := target <= pc
	for i, p := range c.preds {
		r := &c.results[i]
		r.Branches++
		hit := p.Predict(pc, target) == taken
		if hit {
			r.Hits++
		}
		if backward {
			r.BackwardBranches++
			if hit {
				r.BackwardHits++
			}
		}
		p.Update(pc, target, taken)
	}
}

// Results returns a copy of the accumulated results.
func (c *Collector) Results() []Result {
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}
