package branchpred

import (
	"testing"

	"dynloop/internal/isa"
	"dynloop/internal/trace"
)

func branchEv(pc, target isa.Addr, taken bool) *trace.Event {
	in := isa.Branch(isa.CondNEZ, 1, target)
	ev := &trace.Event{PC: pc, Instr: &in, Taken: taken}
	if taken {
		ev.Target = target
	}
	return ev
}

// TestBTFN: backward predicted taken, forward not taken; never updated.
func TestBTFN(t *testing.T) {
	var p BTFN
	if !p.Predict(10, 5) {
		t.Fatal("backward branch must predict taken")
	}
	if p.Predict(10, 20) {
		t.Fatal("forward branch must predict not taken")
	}
}

// TestBimodalLearns: after two taken outcomes a cold (weakly-not-taken
// boundary) counter predicts taken and holds through one glitch.
func TestBimodalLearns(t *testing.T) {
	p := NewBimodal(4)
	pc, tgt := isa.Addr(7), isa.Addr(3)
	p.Update(pc, tgt, false)
	p.Update(pc, tgt, false)
	if p.Predict(pc, tgt) {
		t.Fatal("trained not-taken, predicts taken")
	}
	p.Update(pc, tgt, true)
	p.Update(pc, tgt, true)
	if !p.Predict(pc, tgt) {
		t.Fatal("retrained taken, predicts not-taken")
	}
	p.Update(pc, tgt, true) // saturate
	p.Update(pc, tgt, false)
	if !p.Predict(pc, tgt) {
		t.Fatal("one glitch flipped a saturated counter")
	}
}

// TestGShareUsesHistory: gshare separates a branch whose outcome depends
// on the previous branch — a bimodal cannot exceed ~50% on a strict
// alternation, gshare learns it perfectly.
func TestGShareUsesHistory(t *testing.T) {
	g := NewGShare(8)
	b := NewBimodal(8)
	pc, tgt := isa.Addr(9), isa.Addr(2)
	taken := false
	var gHits, bHits, n int
	for i := 0; i < 400; i++ {
		taken = !taken // strict alternation
		if g.Predict(pc, tgt) == taken {
			gHits++
		}
		if b.Predict(pc, tgt) == taken {
			bHits++
		}
		g.Update(pc, tgt, taken)
		b.Update(pc, tgt, taken)
		n++
	}
	if float64(gHits)/float64(n) < 0.9 {
		t.Fatalf("gshare on alternation: %d/%d", gHits, n)
	}
	if float64(bHits)/float64(n) > 0.6 {
		t.Fatalf("bimodal should not learn alternation: %d/%d", bHits, n)
	}
}

// TestCollectorScoresBackwardSeparately: the loop-closing-branch
// population is isolated.
func TestCollectorScoresBackwardSeparately(t *testing.T) {
	c := NewCollector(BTFN{})
	// 3 backward taken (loop iterations), 1 backward not-taken (exit),
	// 2 forward not-taken.
	for i := 0; i < 3; i++ {
		c.Consume(branchEv(10, 5, true))
	}
	c.Consume(branchEv(10, 5, false))
	c.Consume(branchEv(4, 20, false))
	c.Consume(branchEv(4, 20, false))
	r := c.Results()[0]
	if r.Branches != 6 || r.BackwardBranches != 4 {
		t.Fatalf("population: %+v", r)
	}
	// BTFN: hits = 3 backward taken + 2 forward not-taken = 5.
	if r.Hits != 5 || r.BackwardHits != 3 {
		t.Fatalf("scores: %+v", r)
	}
	if r.Accuracy() < 83 || r.Accuracy() > 84 {
		t.Fatalf("accuracy: %v", r.Accuracy())
	}
	if r.BackwardAccuracy() != 75 {
		t.Fatalf("backward accuracy: %v", r.BackwardAccuracy())
	}
}

// TestNonBranchesIgnored: only conditional branches are scored.
func TestNonBranchesIgnored(t *testing.T) {
	c := DefaultSuite()
	in := isa.Jump(3)
	c.Consume(&trace.Event{PC: 9, Instr: &in, Taken: true, Target: 3})
	for _, r := range c.Results() {
		if r.Branches != 0 {
			t.Fatalf("jump scored as branch: %+v", r)
		}
	}
}

// TestConsumeCtlBatchMatchesBatch: the collector is control-only, and a
// control-plane batch (walked via the producer's run-boundary indices)
// must score exactly like the full-Event path over the same stream.
func TestConsumeCtlBatchMatchesBatch(t *testing.T) {
	full := DefaultSuite()
	ctl := DefaultSuite()
	if got := trace.PlanesOf(ctl); got != trace.PlaneCtl {
		t.Fatalf("collector planes = %v", got)
	}
	br := isa.Branch(isa.CondNEZ, 1, 5)
	fwd := isa.Branch(isa.CondEQZ, 2, 40)
	jmp := isa.Jump(3)
	nop := isa.Nop()
	var evs []trace.Event
	for i := 0; i < 200; i++ {
		evs = append(evs,
			trace.Event{PC: 8, Instr: &nop},
			trace.Event{PC: 10, Instr: &br, Taken: i%3 != 0, Target: 5},
			trace.Event{PC: 20, Instr: &fwd, Taken: i%7 == 0, Target: 40},
			trace.Event{PC: 30, Instr: &jmp, Taken: true, Target: 3},
		)
	}
	cevs := make([]trace.CtlEvent, len(evs))
	var idx []int32
	for i, ev := range evs {
		cevs[i] = trace.CtlEvent{Index: ev.Index, PC: ev.PC, Instr: ev.Instr,
			Taken: ev.Taken, Target: ev.Target}
		switch ev.Instr.Kind {
		case isa.KindBranch, isa.KindJump, isa.KindRet:
			idx = append(idx, int32(i))
		}
	}
	full.ConsumeBatch(evs)
	ctl.ConsumeCtlBatch(cevs, idx)
	fr, cr := full.Results(), ctl.Results()
	if len(fr) != len(cr) {
		t.Fatalf("result counts differ: %d vs %d", len(fr), len(cr))
	}
	for i := range fr {
		if fr[i] != cr[i] {
			t.Fatalf("predictor %d diverged:\nfull %+v\nctl  %+v", i, fr[i], cr[i])
		}
	}
}
