// Package client is the Go client for the `dynloop serve` daemon
// (internal/server). It speaks the internal/wire protocol: sweep
// results come back as the same codec frames the daemon's store
// persists, so a remote sweep decodes to exactly the rows a local run
// computes — `dynloop sweep -remote URL` renders byte-identical output.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dynloop/internal/codec"
	"dynloop/internal/expt"
	"dynloop/internal/obs"
	"dynloop/internal/wire"
)

// ErrNotFound reports a cell query for a key the daemon has no result
// for.
var ErrNotFound = errors.New("client: no such cell")

// ErrShed reports a request the daemon refused under load-shedding
// (HTTP 422): the grid was too large or the inflight queue wait
// expired. RetryAfter carries the daemon's jittered Retry-After hint;
// honor it before resubmitting.
type ErrShed struct {
	RetryAfter time.Duration
	Message    string
}

func (e *ErrShed) Error() string {
	return fmt.Sprintf("client: shed by daemon (retry after %v): %s", e.RetryAfter, e.Message)
}

// Client talks to one daemon. Create one with New; the zero value is
// not usable.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:9090"). httpClient nil selects
// http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// apiError extracts the daemon's JSON error envelope. Shed responses
// (422) become typed *ErrShed carrying the Retry-After hint so callers
// can back off instead of pattern-matching status text.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusUnprocessableEntity {
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		return &ErrShed{RetryAfter: retry, Message: msg}
	}
	if msg != resp.Status {
		return fmt.Errorf("client: %s: %s", resp.Status, msg)
	}
	return fmt.Errorf("client: %s", resp.Status)
}

// Sweep submits a grid request and decodes the resulting rows — one
// per benchmark × policy × TUs cell, in benchmark-major order, exactly
// as expt.Sweep returns them locally.
func (c *Client) Sweep(ctx context.Context, req wire.SweepRequest) ([]expt.SweepRow, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	grid, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeGrid(grid)
}

// Grid submits a declarative grid request (a registered name or an
// inline spec) and decodes the resulting cell values, one per cell in
// the grid's canonical cell order — pair them with the deterministic
// spec expansion via grid.ResultFrom to render exactly what a local
// run renders.
func (c *Client) Grid(ctx context.Context, req wire.GridRequest) ([]any, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/grid", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeCells(payload)
}

// Grids lists the daemon's registered grids with their canonical specs.
func (c *Client) Grids(ctx context.Context) ([]wire.GridInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/grids", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out []wire.GridInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cell fetches one persisted cell result by its full configuration key
// and decodes it through the codec registry. The returned value's
// concrete type is whatever the key's cell produces (e.g.
// spec.Metrics). ErrNotFound reports an absent key.
func (c *Client) Cell(ctx context.Context, key string) (any, error) {
	u := c.base + "/v1/cell?key=" + url.QueryEscape(key)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	frame, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return codec.Decode(frame)
}

// Stats fetches the daemon's runner/store counters.
func (c *Client) Stats(ctx context.Context) (wire.Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return wire.Stats{}, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return wire.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wire.Stats{}, apiError(resp)
	}
	var st wire.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return wire.Stats{}, err
	}
	return st, nil
}

// Metrics scrapes the daemon's GET /metrics endpoint and returns the
// parsed series: full series name (labels included, as rendered) →
// value. Histograms arrive as their cumulative _bucket/_sum/_count
// series; derive quantiles with obs.BucketsOf and obs.Quantile.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseText(body)
}

// Health probes the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Events subscribes to the daemon's progress stream and calls fn for
// every event until ctx is cancelled, the daemon shuts down (returns
// nil), or the stream errors. Slow consumers see gaps, not stalls: the
// daemon drops events a subscriber cannot keep up with.
func (c *Client) Events(ctx context.Context, fn func(wire.Event)) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("client: bad event %q: %w", data, err)
		}
		fn(ev)
	}
	err = sc.Err()
	if err == nil || errors.Is(err, io.EOF) || ctx.Err() != nil {
		return nil
	}
	return err
}
