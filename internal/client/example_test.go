package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"dynloop/internal/client"
	"dynloop/internal/server"
	"dynloop/internal/wire"
)

// ExampleClient runs a small remote sweep against an in-process daemon.
// Against a real deployment, replace the httptest server with the
// daemon's address: client.New("http://127.0.0.1:9090", nil).
func ExampleClient() {
	srv := server.New(server.Config{Workers: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := client.New(hs.URL, hs.Client())
	rows, err := c.Sweep(context.Background(), wire.SweepRequest{
		Benchmarks: []string{"swim"},
		Policies:   []string{"str3"},
		TUs:        []int{4},
		Budget:     100_000,
	})
	if err != nil {
		fmt.Println("sweep:", err)
		return
	}
	for _, r := range rows {
		fmt.Printf("%s %s/%d TUs: TPC %.2f, hit %.1f%%\n",
			r.Bench, r.Policy, r.TUs, r.M.TPC(), r.M.HitRatio())
	}
	// Output:
	// swim STR(3)/4 TUs: TPC 3.50, hit 84.8%
}
