package program

import (
	"strings"
	"testing"

	"dynloop/internal/isa"
)

// TestValidateCatchesBadTargets covers every validation path.
func TestValidate(t *testing.T) {
	ok := &Program{Name: "ok", Code: []isa.Instr{isa.Jump(1), isa.Halt()}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	cases := map[string]*Program{
		"empty":        {Name: "e"},
		"entry-range":  {Name: "e", Code: []isa.Instr{isa.Halt()}, Entry: 5},
		"branch-range": {Name: "e", Code: []isa.Instr{isa.Branch(isa.CondEQZ, 0, 9)}},
		"jump-range":   {Name: "e", Code: []isa.Instr{isa.Jump(9)}},
		"call-range":   {Name: "e", Code: []isa.Instr{isa.Call(9)}},
		"bad-reg":      {Name: "e", Code: []isa.Instr{isa.MovI(isa.NumRegs, 0)}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid program accepted", name)
		}
	}
}

// TestAccessors covers Len/At/Symbol.
func TestAccessors(t *testing.T) {
	p := &Program{
		Name:    "t",
		Code:    []isa.Instr{isa.Nop(), isa.Halt()},
		Symbols: map[isa.Addr]string{1: "end"},
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.At(1).Kind != isa.KindHalt {
		t.Fatal("At(1) wrong")
	}
	if s, ok := p.Symbol(1); !ok || s != "end" {
		t.Fatal("symbol lookup failed")
	}
	if _, ok := p.Symbol(0); ok {
		t.Fatal("phantom symbol")
	}
}

// TestDisassembleFormat checks labels and instruction lines appear.
func TestDisassembleFormat(t *testing.T) {
	p := &Program{
		Name:    "demo",
		Code:    []isa.Instr{isa.MovI(1, 5), isa.Branch(isa.CondNEZ, 1, 0), isa.Halt()},
		Symbols: map[isa.Addr]string{0: "loop"},
	}
	d := p.Disassemble()
	for _, want := range []string{"loop:", "movi r1, 5", "br.nez r1, @0", "halt", `program "demo"`} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
	syms := p.SymbolList()
	if len(syms) != 1 || !strings.Contains(syms[0], "loop") {
		t.Errorf("symbol list: %v", syms)
	}
}
