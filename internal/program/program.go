// Package program holds static programs for the trace substrate: a flat
// instruction sequence plus an optional symbol table, with validation and
// disassembly helpers.
package program

import (
	"fmt"
	"sort"
	"strings"

	"dynloop/internal/isa"
)

// Program is an immutable-by-convention instruction sequence. Instruction i
// lives at address isa.Addr(i). Execution starts at Entry.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Code is the instruction sequence.
	Code []isa.Instr
	// Entry is the address execution starts at.
	Entry isa.Addr
	// Symbols optionally labels addresses (functions, loop heads) for
	// disassembly and debugging.
	Symbols map[isa.Addr]string
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at address a. It panics if a is out of range,
// mirroring a machine check; Validate catches ill-formed programs first.
func (p *Program) At(a isa.Addr) *isa.Instr { return &p.Code[a] }

// Validate checks static well-formedness: every control-transfer target is
// in range, the entry point is in range, and the program is non-empty.
// Returning an error (rather than panicking later) lets generators be
// checked in tests.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	if int(p.Entry) >= len(p.Code) {
		return fmt.Errorf("program %q: entry %d out of range (%d instructions)", p.Name, p.Entry, len(p.Code))
	}
	for i := range p.Code {
		in := &p.Code[i]
		switch in.Kind {
		case isa.KindBranch, isa.KindJump, isa.KindCall:
			if int(in.Target) >= len(p.Code) {
				return fmt.Errorf("program %q: instruction %d (%s) targets %d, out of range", p.Name, i, in, in.Target)
			}
		}
		if in.Kind == isa.KindALU || in.Kind == isa.KindLoad || in.Kind == isa.KindSeq {
			if in.Rd >= isa.NumRegs {
				return fmt.Errorf("program %q: instruction %d (%s) writes register %d >= %d", p.Name, i, in, in.Rd, isa.NumRegs)
			}
		}
	}
	return nil
}

// Symbol returns the label at address a, if any.
func (p *Program) Symbol(a isa.Addr) (string, bool) {
	s, ok := p.Symbols[a]
	return s, ok
}

// Disassemble renders the whole program as readable assembly with labels.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %q, %d instructions, entry @%d\n", p.Name, len(p.Code), p.Entry)
	for i := range p.Code {
		a := isa.Addr(i)
		if s, ok := p.Symbols[a]; ok {
			fmt.Fprintf(&b, "%s:\n", s)
		}
		fmt.Fprintf(&b, "  %4d  %s\n", i, p.Code[i].String())
	}
	return b.String()
}

// SymbolList returns the symbols sorted by address, for stable output.
func (p *Program) SymbolList() []string {
	addrs := make([]isa.Addr, 0, len(p.Symbols))
	for a := range p.Symbols {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = fmt.Sprintf("@%d %s", a, p.Symbols[a])
	}
	return out
}
