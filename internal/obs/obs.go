// Package obs is the dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms collected in a Registry
// that exposes itself in the Prometheus text format. Every hot-path
// operation — Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe — is a
// handful of atomic instructions with zero allocations, so the
// interpreter retire loop, the runner's job dispatch and the store's
// Put/Get can be instrumented without moving the ns/instr needle or
// breaking an AllocsPerRun=0 pin. Allocation is confined to metric
// registration (once, at package init) and to scraping (WriteTo), which
// runs on the cold /metrics path.
//
// Metric naming follows the Prometheus conventions the rest of the
// fleet tooling expects: `dynloop_` prefix, `_total` suffix on
// counters, base units (seconds, bytes) on histograms, and one
// `# HELP`/`# TYPE` pair per family with any number of labelled series
// under it. Labels are fixed at registration — there is no dynamic
// label materialization, which is what keeps observation allocation-
// free. See DESIGN.md ("Observability") for the metric catalogue.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is not
// registered; create one with NewCounter (or Registry.NewCounter).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with cumulative-at-scrape
// Prometheus semantics: an observation lands in the first bucket whose
// upper bound is >= the value (le semantics), overflow lands in the
// implicit +Inf bucket. Observe is wait-free on the bucket counters and
// lock-free on the float sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge // CAS-added float sum
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (<= ~20) and the common case
	// (latency near the median) exits early; a branchless binary search
	// measured no better at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns the observation count, value sum, and per-bucket
// (non-cumulative) counts; the final element of counts is the +Inf
// overflow bucket. The snapshot is not atomic across buckets — counts
// observed during concurrent Observe calls may be mid-update — which is
// the standard scrape contract.
func (h *Histogram) Snapshot() (count uint64, sum float64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.count.Load(), h.sum.Value(), counts
}

// Bounds returns the histogram's upper bounds (without the implicit
// +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// DefLatencyBuckets covers request latencies from 50µs to 10s, the
// span between a warm in-memory cell hit and a cold many-benchmark
// grid on a loaded daemon.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets covers payload sizes from 256 B to 64 MiB.
var DefSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// series is one labelled instance under a family; exactly one of
// c/g/h is non-nil, matching the family type.
type series struct {
	labels string // rendered `k="v",k2="v2"` form, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name with its help text, type and series.
type family struct {
	name, help, typ string
	series          []series
}

// Registry holds metric families and renders them in the Prometheus
// text format. Create one with NewRegistry, or use the package-level
// Default. Registration is synchronized; registered metrics are
// lock-free to update.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Default is the process-wide registry every package-level metric
// registers in; GET /metrics serves it.
var Default = NewRegistry()

// renderLabels turns alternating key, value pairs into the canonical
// `k="v"` label body. Values are escaped per the exposition format.
func renderLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelPairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds one series, creating or extending its family. It
// panics on a type conflict or duplicate (name, labels) — both are
// programming errors worth failing loudly at init.
func (r *Registry) register(name, help, typ, labels string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, typ, f.typ))
	}
	for _, prev := range f.series {
		if prev.labels == labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
		}
	}
	s.labels = labels
	f.series = append(f.series, s)
}

// NewCounter registers and returns a counter. labelPairs are
// alternating key, value strings fixed for the series' lifetime.
func (r *Registry) NewCounter(name, help string, labelPairs ...string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", renderLabels(labelPairs), series{c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labelPairs ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", renderLabels(labelPairs), series{g: g})
	return g
}

// NewHistogram registers and returns a histogram over the given
// ascending upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(name, help, "histogram", renderLabels(labelPairs), series{h: h})
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string, labelPairs ...string) *Counter {
	return Default.NewCounter(name, help, labelPairs...)
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string, labelPairs ...string) *Gauge {
	return Default.NewGauge(name, help, labelPairs...)
}

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64, labelPairs ...string) *Histogram {
	return Default.NewHistogram(name, help, bounds, labelPairs...)
}

// formatFloat renders a value the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders the registry in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	// Snapshot the family list under the lock; the metric values
	// themselves are atomics and read without it.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSeries(&b, f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
			case s.g != nil:
				writeSeries(&b, f.name, s.labels, formatFloat(s.g.Value()))
			case s.h != nil:
				count, sum, counts := s.h.Snapshot()
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += counts[i]
					writeSeries(&b, f.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(bound)+`"`),
						strconv.FormatUint(cum, 10))
				}
				cum += counts[len(counts)-1]
				writeSeries(&b, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`),
					strconv.FormatUint(cum, 10))
				writeSeries(&b, f.name+"_sum", s.labels, formatFloat(sum))
				writeSeries(&b, f.name+"_count", s.labels, strconv.FormatUint(count, 10))
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSeries(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// Handler serves the registry as a /metrics scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

// ParseText parses a Prometheus text exposition into a map from full
// series name (including the rendered label body, exactly as emitted)
// to value. Comment and blank lines are skipped. It is the inverse of
// WriteTo for the subset of the format WriteTo produces, and exists so
// soak drivers and smoke tests can reconcile a scrape against the
// daemon's own counters without a metrics client dependency.
func ParseText(data []byte) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: exposition line %d: no value separator: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %v", ln+1, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}

// BucketsOf extracts one histogram's buckets from a ParseText result:
// the series `family_bucket{...,le="X"}` whose label body contains
// labelSel (pass "" to match an unlabelled histogram). It returns the
// ascending finite upper bounds and the per-bucket (de-cumulated)
// counts, the final element being the +Inf overflow bucket — the exact
// shape Quantile consumes.
func BucketsOf(seriesVals map[string]float64, fam, labelSel string) (bounds []float64, counts []uint64, err error) {
	prefix := fam + "_bucket{"
	type bkt struct {
		le float64
		v  uint64
	}
	var bkts []bkt
	for name, v := range seriesVals {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, "}") {
			continue
		}
		body := name[len(prefix) : len(name)-1]
		if labelSel != "" && !strings.Contains(body, labelSel) {
			continue
		}
		le := body[strings.LastIndex(body, `le="`):]
		le = strings.TrimSuffix(strings.TrimPrefix(le, `le="`), `"`)
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
			return nil, nil, fmt.Errorf("obs: bad le %q in %s", le, name)
		}
		bkts = append(bkts, bkt{bound, uint64(v)})
	}
	if len(bkts) == 0 {
		return nil, nil, fmt.Errorf("obs: no buckets for %s{%s}", fam, labelSel)
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	counts = make([]uint64, len(bkts))
	prev := uint64(0)
	for i, b := range bkts {
		counts[i] = b.v - prev // de-cumulate
		prev = b.v
		if !math.IsInf(b.le, 1) {
			bounds = append(bounds, b.le)
		}
	}
	return bounds, counts, nil
}

// Quantile estimates the q-quantile (0 < q <= 1) of a histogram from
// its finite upper bounds and per-bucket counts (len(counts) ==
// len(bounds)+1, the final element the +Inf bucket), interpolating
// linearly inside the target bucket the way Prometheus'
// histogram_quantile does. Observations in the +Inf bucket clamp to the
// highest finite bound. Returns NaN for an empty histogram.
func Quantile(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(bounds) {
				// +Inf bucket: clamp to the highest finite bound.
				if len(bounds) == 0 {
					return math.NaN()
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			if c == 0 {
				return hi
			}
			inBucket := rank - float64(cum-c)
			return lo + (hi-lo)*(inBucket/float64(c))
		}
	}
	return bounds[len(bounds)-1]
}
