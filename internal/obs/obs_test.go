package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_counter_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.NewGauge("t_gauge", "help")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

// TestHistogramBucketEdges pins the le bucket semantics: a value equal
// to an upper bound lands in that bucket, zero lands in the first
// bucket, values beyond the last bound land in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_hist", "help", []float64{0, 1, 10})
	h.Observe(0)           // le="0" (v == bound stays)
	h.Observe(-5)          // le="0"
	h.Observe(1)           // le="1" exactly on the boundary
	h.Observe(1.0000001)   // le="10"
	h.Observe(10)          // le="10" max finite bound
	h.Observe(11)          // +Inf overflow
	h.Observe(math.Inf(1)) // +Inf
	count, sum, counts := h.Snapshot()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if !math.IsInf(sum, 1) {
		t.Fatalf("sum = %v, want +Inf", sum)
	}
	want := []uint64{2, 1, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_lat_seconds", "latency", []float64{0.1, 1}, "endpoint", "/x")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`# TYPE t_lat_seconds histogram`,
		`t_lat_seconds_bucket{endpoint="/x",le="0.1"} 1`,
		`t_lat_seconds_bucket{endpoint="/x",le="1"} 2`,
		`t_lat_seconds_bucket{endpoint="/x",le="+Inf"} 3`,
		`t_lat_seconds_count{endpoint="/x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Round trip through the parser.
	vals, err := ParseText([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if vals[`t_lat_seconds_bucket{endpoint="/x",le="+Inf"}`] != 3 {
		t.Fatalf("parsed values: %v", vals)
	}
	bounds, counts, err := BucketsOf(vals, "t_lat_seconds", `endpoint="/x"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 2 || bounds[0] != 0.1 || bounds[1] != 1 {
		t.Fatalf("bounds = %v", bounds)
	}
	wantCounts := []uint64{1, 1, 1}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Fatalf("de-cumulated counts = %v, want %v", counts, wantCounts)
		}
	}
}

func TestQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 obs <=1, 10 in (1,2], none in (2,4], 5 overflow.
	counts := []uint64{10, 10, 0, 5}
	if got := Quantile(0.5, bounds, counts); math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.25", got)
	}
	if got := Quantile(0.99, bounds, counts); got != 4 {
		t.Fatalf("p99 = %v, want clamp to 4", got)
	}
	if got := Quantile(0.2, bounds, counts); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p20 = %v, want 0.5", got)
	}
	if got := Quantile(0.5, nil, nil); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %v, want NaN", got)
	}
}

// TestConcurrentUse exercises parallel Inc/Observe against concurrent
// scrapes under -race, and checks nothing is lost.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_conc_total", "help")
	g := r.NewGauge("t_conc_gauge", "help")
	h := r.NewHistogram("t_conc_seconds", "help", DefLatencyBuckets)
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	// Scrape while the writers hammer.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var sb strings.Builder
			if _, err := r.WriteTo(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	count, _, counts := h.Snapshot()
	if count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", count, workers*perWorker)
	}
	var sum uint64
	for _, n := range counts {
		sum += n
	}
	if sum != count {
		t.Fatalf("bucket sum %d != count %d", sum, count)
	}
}

// TestHotPathZeroAllocs pins the instrumentation contract: observing
// a metric never allocates, so hot loops can be instrumented without
// breaking their own AllocsPerRun=0 pins.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_alloc_total", "help")
	g := r.NewGauge("t_alloc_gauge", "help")
	h := r.NewHistogram("t_alloc_seconds", "help", DefLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter hot path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(0.5) }); n != 0 {
		t.Fatalf("Gauge hot path allocates %v/op, want 0", n)
	}
	v := 0.0
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 0.001 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_handler_total", "help").Add(7)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_handler_total 7") {
		t.Fatalf("body: %s", rec.Body.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_dup_total", "help", "k", "v")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate series", func() { r.NewCounter("t_dup_total", "help", "k", "v") })
	mustPanic("type conflict", func() { r.NewGauge("t_dup_total", "help") })
	mustPanic("odd labels", func() { r.NewCounter("t_odd_total", "help", "k") })
	mustPanic("unsorted bounds", func() { r.NewHistogram("t_bounds", "help", []float64{2, 1}) })
}
