// Package harness wires the pipeline together: a built Unit executes on a
// fresh CPU, the instruction stream flows in batches through a loop
// Detector, and any number of observers (statistics collectors, tables,
// speculation engines) watch the loop events. Experiments, examples and
// tests all run through this package.
package harness

import (
	"dynloop/internal/builder"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

// DefaultCLSCapacity is the paper's CLS size (16 entries, §2.3.1).
const DefaultCLSCapacity = 16

// Config parametrises a run.
type Config struct {
	// Budget is the dynamic instruction limit (0 = run to halt).
	Budget uint64
	// CLSCapacity bounds the CLS; 0 selects DefaultCLSCapacity, negative
	// means unbounded.
	CLSCapacity int
	// BatchSize is the event-batch size the interpreter delivers the
	// stream in (0 selects interp.DefaultBatchSize). Results are
	// identical at any setting; 1 degenerates to per-instruction
	// delivery.
	BatchSize int
	// Extra trace consumers that should see the raw stream before the
	// detector (e.g. trace.Hash for determinism checks). Consumers that
	// implement trace.BatchConsumer are driven through their native
	// batch path.
	PreDetector []trace.Consumer
}

func (c Config) clsCapacity() int {
	switch {
	case c.CLSCapacity == 0:
		return DefaultCLSCapacity
	case c.CLSCapacity < 0:
		return 0
	default:
		return c.CLSCapacity
	}
}

// Result reports what a run did.
type Result struct {
	// Executed is the number of retired instructions.
	Executed uint64
	// Halted reports whether the program ran to completion (rather than
	// exhausting the budget).
	Halted bool
	// Detector is the detector used, for stats inspection.
	Detector *loopdet.Detector
}

// Run executes the unit under a fresh detector with the given observers
// attached, flushes the detector at the end, and returns the result.
func Run(u *builder.Unit, cfg Config, observers ...loopdet.Observer) (Result, error) {
	cpu := u.NewCPU()
	cpu.SetBatchSize(cfg.BatchSize)
	det := loopdet.New(loopdet.Config{Capacity: cfg.clsCapacity()})
	for _, o := range observers {
		det.AddObserver(o)
	}
	var sink trace.BatchConsumer = det
	if len(cfg.PreDetector) > 0 {
		tee := make(trace.BatchTee, 0, len(cfg.PreDetector)+1)
		for _, c := range cfg.PreDetector {
			tee = append(tee, trace.AsBatch(c))
		}
		tee = append(tee, det)
		sink = tee
	}
	n, err := cpu.Run(cfg.Budget, sink)
	if err != nil {
		return Result{Executed: n, Detector: det}, err
	}
	det.Flush()
	return Result{Executed: n, Halted: cpu.Halted(), Detector: det}, nil
}
