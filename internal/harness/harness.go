// Package harness wires the pipeline together: a built Unit executes on a
// fresh CPU and the instruction stream flows in batches to one or more
// analysis passes — each typically a loop Detector with observers
// (statistics collectors, tables, speculation engines) attached.
// Experiments, examples and tests all run through this package.
//
// Run is the single-pass entry point (one detector, N observers).
// MultiRun is the fused entry point: one traversal of the stream feeds
// any number of independent passes through a trace.Broadcast, so a whole
// column of experiment cells — different policies, table capacities,
// even different CLS capacities, each pass owning its own detector —
// costs one interpretation instead of one per cell.
package harness

import (
	"sync/atomic"

	"dynloop/internal/builder"
	"dynloop/internal/loopdet"
	"dynloop/internal/obs"
	"dynloop/internal/trace"
)

// DefaultCLSCapacity is the paper's CLS size (16 entries, §2.3.1).
const DefaultCLSCapacity = 16

// traversals counts interpreter traversals started by Run and MultiRun
// across the process, for efficiency assertions: fusing N cells into one
// MultiRun must show up as one traversal, not N. mTraversals mirrors it
// into the obs registry for /metrics.
var traversals atomic.Uint64

var mTraversals = obs.NewCounter("dynloop_traversals_total",
	"Interpreter traversals started by Run/MultiRun (replays excluded).")

// Traversals returns the process-lifetime count of stream traversals
// started by Run and MultiRun.
func Traversals() uint64 { return traversals.Load() }

// ResolveCLSCapacity maps the harness capacity convention to a
// loopdet.Config capacity: 0 selects DefaultCLSCapacity, negative means
// unbounded.
func ResolveCLSCapacity(c int) int {
	switch {
	case c == 0:
		return DefaultCLSCapacity
	case c < 0:
		return 0
	default:
		return c
	}
}

// Config parametrises a run.
type Config struct {
	// Budget is the dynamic instruction limit (0 = run to halt).
	Budget uint64
	// CLSCapacity bounds the CLS; 0 selects DefaultCLSCapacity, negative
	// means unbounded.
	CLSCapacity int
	// BatchSize is the event-batch size the interpreter delivers the
	// stream in (0 selects interp.DefaultBatchSize). Results are
	// identical at any setting; 1 degenerates to per-instruction
	// delivery.
	BatchSize int
	// Extra trace consumers that should see the raw stream before the
	// detector (e.g. trace.Hash for determinism checks). Consumers that
	// implement trace.BatchConsumer are driven through their native
	// batch path.
	PreDetector []trace.Consumer
}

// Result reports what a run did.
type Result struct {
	// Executed is the number of retired instructions.
	Executed uint64
	// Halted reports whether the program ran to completion (rather than
	// exhausting the budget).
	Halted bool
	// Detector is the detector used, for stats inspection.
	Detector *loopdet.Detector
}

// Run executes the unit under a fresh detector with the given observers
// attached, flushes the detector at the end, and returns the result. It
// is MultiRun with a single observer pass (plus any PreDetector
// consumers, which see the stream first).
func Run(u *builder.Unit, cfg Config, observers ...loopdet.Observer) (Result, error) {
	det := NewObserverPass(cfg.CLSCapacity, observers...)
	passes := make([]trace.Pass, 0, len(cfg.PreDetector)+1)
	for _, c := range cfg.PreDetector {
		passes = append(passes, trace.AsPass(trace.AsBatch(c)))
	}
	passes = append(passes, det)
	res, err := MultiRun(u, MultiConfig{Budget: cfg.Budget, BatchSize: cfg.BatchSize}, passes...)
	return Result{Executed: res.Executed, Halted: res.Halted, Detector: det}, err
}

// NewObserverPass bundles a fresh detector with the given observers into
// one schedulable pass (Finalize flushes the CLS). clsCapacity follows
// the Config.CLSCapacity convention: 0 selects DefaultCLSCapacity,
// negative means unbounded. Keep the returned detector to read its
// stats; keep the observers to read their results.
func NewObserverPass(clsCapacity int, observers ...loopdet.Observer) *loopdet.Detector {
	det := loopdet.New(loopdet.Config{Capacity: ResolveCLSCapacity(clsCapacity)})
	for _, o := range observers {
		det.AddObserver(o)
	}
	return det
}

// MultiConfig parametrises a fused multi-pass run.
type MultiConfig struct {
	// Budget is the dynamic instruction limit (0 = run to halt).
	Budget uint64
	// BatchSize is the event-batch size (0 selects
	// interp.DefaultBatchSize). Results are identical at any setting.
	BatchSize int
	// Shards spreads the passes across that many goroutines, with a
	// barrier per batch so the reusable buffer never escapes its epoch
	// (see trace.Broadcast). <= 1 runs the passes inline. Passes are
	// independent, so sharding changes wall-clock only, never results.
	Shards int
	// Reference selects the interpreter's reference path (two-level
	// switch, no predecode, no fusion; see interp.CPU.SetReference).
	// Streams and results are byte-identical to the default path; the
	// knob exists so experiments can pin that equivalence end to end.
	Reference bool
	// FullPlanes disables control-plane delivery: the producer fills
	// full trace.Events even when every pass is control-only (see
	// trace.PlanesOf). Results are byte-identical either way — the knob
	// exists so experiments can pin that equivalence end to end, like
	// Reference.
	FullPlanes bool
}

// sink wraps the broadcast per the config's facet knob.
func (cfg *MultiConfig) sink(b *trace.Broadcast) trace.BatchConsumer {
	if cfg.FullPlanes {
		return trace.ForceFullPlane(b)
	}
	return b
}

// MultiResult reports what a fused run did.
type MultiResult struct {
	// Executed is the number of retired instructions.
	Executed uint64
	// Halted reports whether the program ran to completion.
	Halted bool
	// Batches is the number of buffer epochs delivered.
	Batches uint64
}

// MultiRun executes the unit once, broadcasting every event batch to all
// passes: Init before the first batch (in pass order), ConsumeBatch per
// batch, Finalize after the last (in pass order, skipped on error). One
// traversal of the stream thus feeds N independent analyses; because
// every pass owns whatever detector or tables it needs, the results are
// identical to running each pass in its own traversal.
func MultiRun(u *builder.Unit, cfg MultiConfig, passes ...trace.Pass) (MultiResult, error) {
	traversals.Add(1)
	mTraversals.Inc()
	cpu := u.NewCPU()
	cpu.SetBatchSize(cfg.BatchSize)
	cpu.SetReference(cfg.Reference)
	b := trace.NewBroadcast(cfg.Shards, passes...)
	b.Init()
	n, err := cpu.Run(cfg.Budget, cfg.sink(b))
	if err != nil {
		b.Stop()
		return MultiResult{Executed: n, Batches: b.Epochs()}, err
	}
	b.Finalize()
	return MultiResult{Executed: n, Halted: cpu.Halted(), Batches: b.Epochs()}, nil
}
