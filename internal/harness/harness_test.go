package harness

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

func unit(t *testing.T) *builder.Unit {
	t.Helper()
	b := builder.New("h", 1)
	b.CountedLoop(builder.TripImm(5), builder.LoopOpt{}, func() { b.Work(4) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestRunToCompletion: default config runs to halt and flushes.
func TestRunToCompletion(t *testing.T) {
	res, err := Run(unit(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Executed == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Detector.Depth() != 0 {
		t.Fatal("detector not flushed")
	}
}

// TestBudgetStops: the budget truncates the run without error.
func TestBudgetStops(t *testing.T) {
	res, err := Run(unit(t), Config{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || res.Executed != 10 {
		t.Fatalf("res = %+v", res)
	}
}

// TestCLSCapacityMapping: 0 selects the paper's default, negative means
// unbounded.
func TestCLSCapacityMapping(t *testing.T) {
	if got := (Config{}).clsCapacity(); got != DefaultCLSCapacity {
		t.Fatalf("default capacity = %d", got)
	}
	if got := (Config{CLSCapacity: -1}).clsCapacity(); got != 0 {
		t.Fatalf("unbounded capacity = %d", got)
	}
	if got := (Config{CLSCapacity: 3}).clsCapacity(); got != 3 {
		t.Fatalf("explicit capacity = %d", got)
	}
}

// TestPreDetectorConsumers: extra consumers see the raw stream before the
// detector.
func TestPreDetectorConsumers(t *testing.T) {
	var counter trace.Counter
	res, err := Run(unit(t), Config{PreDetector: []trace.Consumer{&counter}})
	if err != nil {
		t.Fatal(err)
	}
	if counter.Total != res.Executed {
		t.Fatalf("pre-detector consumer saw %d of %d", counter.Total, res.Executed)
	}
}

// TestObserversAttached: loop events reach the observers.
func TestObserversAttached(t *testing.T) {
	var execs int
	obs := &execCounter{n: &execs}
	if _, err := Run(unit(t), Config{}, obs); err != nil {
		t.Fatal(err)
	}
	if execs != 1 {
		t.Fatalf("execs = %d, want 1", execs)
	}
}

type execCounter struct {
	loopdet.NopObserver
	n *int
}

func (e *execCounter) ExecStart(*loopdet.Exec) { *e.n++ }
