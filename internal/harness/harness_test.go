package harness

import (
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/loopdet"
	"dynloop/internal/trace"
)

func unit(t *testing.T) *builder.Unit {
	t.Helper()
	b := builder.New("h", 1)
	b.CountedLoop(builder.TripImm(5), builder.LoopOpt{}, func() { b.Work(4) })
	u, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestRunToCompletion: default config runs to halt and flushes.
func TestRunToCompletion(t *testing.T) {
	res, err := Run(unit(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Executed == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Detector.Depth() != 0 {
		t.Fatal("detector not flushed")
	}
}

// TestBudgetStops: the budget truncates the run without error.
func TestBudgetStops(t *testing.T) {
	res, err := Run(unit(t), Config{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || res.Executed != 10 {
		t.Fatalf("res = %+v", res)
	}
}

// TestCLSCapacityMapping: 0 selects the paper's default, negative means
// unbounded.
func TestCLSCapacityMapping(t *testing.T) {
	if got := ResolveCLSCapacity(0); got != DefaultCLSCapacity {
		t.Fatalf("default capacity = %d", got)
	}
	if got := ResolveCLSCapacity(-1); got != 0 {
		t.Fatalf("unbounded capacity = %d", got)
	}
	if got := ResolveCLSCapacity(3); got != 3 {
		t.Fatalf("explicit capacity = %d", got)
	}
}

// TestPreDetectorConsumers: extra consumers see the raw stream before the
// detector.
func TestPreDetectorConsumers(t *testing.T) {
	var counter trace.Counter
	res, err := Run(unit(t), Config{PreDetector: []trace.Consumer{&counter}})
	if err != nil {
		t.Fatal(err)
	}
	if counter.Total != res.Executed {
		t.Fatalf("pre-detector consumer saw %d of %d", counter.Total, res.Executed)
	}
}

// TestObserversAttached: loop events reach the observers.
func TestObserversAttached(t *testing.T) {
	var execs int
	obs := &execCounter{n: &execs}
	if _, err := Run(unit(t), Config{}, obs); err != nil {
		t.Fatal(err)
	}
	if execs != 1 {
		t.Fatalf("execs = %d, want 1", execs)
	}
}

type execCounter struct {
	loopdet.NopObserver
	n *int
}

func (e *execCounter) ExecStart(*loopdet.Exec) { *e.n++ }

// TestMultiRunMatchesSeparateRuns: N passes fused into one traversal
// produce exactly the results of N separate Run traversals — including
// passes with different CLS capacities — while the traversal counter
// shows a single traversal.
func TestMultiRunMatchesSeparateRuns(t *testing.T) {
	u := unit(t)
	// Reference: three separate traversals.
	var hashRef trace.Hash
	sep1, err := Run(u, Config{PreDetector: []trace.Consumer{&hashRef}})
	if err != nil {
		t.Fatal(err)
	}
	var e1 int
	sep2, err := Run(u, Config{}, &execCounter{n: &e1})
	if err != nil {
		t.Fatal(err)
	}
	sep3, err := Run(u, Config{CLSCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Fused: the same three analyses on one traversal.
	var hash trace.Hash
	var e2 int
	det := NewObserverPass(0, &execCounter{n: &e2})
	detUnbounded := NewObserverPass(-1)
	before := Traversals()
	res, err := MultiRun(u, MultiConfig{}, trace.AsPass(&hash), det, detUnbounded)
	if err != nil {
		t.Fatal(err)
	}
	if got := Traversals() - before; got != 1 {
		t.Fatalf("fused run used %d traversals, want 1", got)
	}
	if res.Executed != sep1.Executed || !res.Halted {
		t.Fatalf("res = %+v, want executed %d", res, sep1.Executed)
	}
	if hash.Sum != hashRef.Sum {
		t.Fatalf("stream hash diverged: %x vs %x", hash.Sum, hashRef.Sum)
	}
	if e2 != e1 {
		t.Fatalf("fused observer saw %d execs, separate saw %d", e2, e1)
	}
	if det.Stats() != sep2.Detector.Stats() {
		t.Fatalf("detector stats diverged:\nfused:    %+v\nseparate: %+v", det.Stats(), sep2.Detector.Stats())
	}
	if detUnbounded.Stats() != sep3.Detector.Stats() {
		t.Fatalf("unbounded detector stats diverged")
	}
	if res.Batches == 0 {
		t.Fatal("no batches reported")
	}
}

// TestMultiRunSharded: sharding the passes across goroutines changes
// nothing observable.
func TestMultiRunSharded(t *testing.T) {
	u := unit(t)
	run := func(shards int) (loopdet.Stats, loopdet.Stats) {
		a, b := NewObserverPass(0), NewObserverPass(-1)
		if _, err := MultiRun(u, MultiConfig{Shards: shards}, a, b); err != nil {
			t.Fatal(err)
		}
		return a.Stats(), b.Stats()
	}
	a1, b1 := run(0)
	a2, b2 := run(2)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("sharded stats diverged: %+v/%+v vs %+v/%+v", a1, b1, a2, b2)
	}
}
