package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"dynloop/internal/builder"
	"dynloop/internal/obs"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
)

// replays counts trace-archive replays started by Traces.MultiRun across
// the process; a replay deliberately does NOT count as an interpreter
// traversal (see Traversals), so "warm archive ⇒ zero traversals" is an
// assertable property.
var replays atomic.Uint64

var (
	mReplays = obs.NewCounter("dynloop_replays_total",
		"Trace-archive replays started by Traces.MultiRun.")
	mTraceFallbacks = obs.NewCounter("dynloop_trace_fallbacks_total",
		"Trace-tier runs that degraded to plain interpretation because the recorder could not start.")
)

// Replays returns the process-lifetime count of trace-archive replays.
func Replays() uint64 { return replays.Load() }

// Traces is the replay tier: a trace archive plus the record-or-replay
// orchestration that lets MultiRun-shaped work skip interpretation. The
// first run of a (benchmark, seed) records its stream into the archive
// while the live passes consume it; every later run whose budget the
// recording covers replays the file — a pure decode, no interpreter.
// Concurrent missers of one key serialize on a per-key lock so exactly
// one records and the rest replay the fresh recording.
type Traces struct {
	arch *tracefile.Archive
	// decoders pools replay buffers so the hot loop is allocation-free.
	decoders sync.Pool

	replayed  atomic.Uint64
	recorded  atomic.Uint64
	fallbacks atomic.Uint64
}

// NewTraces wraps an opened archive in the replay tier.
func NewTraces(a *tracefile.Archive) *Traces {
	return &Traces{arch: a}
}

// Archive returns the underlying trace archive.
func (t *Traces) Archive() *tracefile.Archive { return t.arch }

// TracesStats counts this tier's record/replay decisions.
type TracesStats struct {
	// Replays is the number of MultiRun calls served by decode-only
	// replay.
	Replays uint64
	// Records is the number of MultiRun calls that interpreted and
	// recorded the stream.
	Records uint64
	// Fallbacks is the number of MultiRun calls that degraded to plain
	// interpretation because the recorder could not start (e.g. the
	// archive directory became unwritable).
	Fallbacks uint64
}

// Stats returns a snapshot of the tier's counters.
func (t *Traces) Stats() TracesStats {
	return TracesStats{
		Replays:   t.replayed.Load(),
		Records:   t.recorded.Load(),
		Fallbacks: t.fallbacks.Load(),
	}
}

// MultiRun is the replay-backed analogue of the package-level MultiRun.
// If the archive holds a recording of (bench, seed) that covers
// cfg.Budget, the passes are fed by decoding it — build is never called
// and no interpreter traversal happens. Otherwise the unit is built and
// interpreted exactly as MultiRun would, with the stream additionally
// recorded into the archive for every later caller. The boolean result
// reports which path ran (true = replayed). Pass and render results are
// byte-identical either way; that equivalence is pinned by the
// replay-equivalence test suite.
func (t *Traces) MultiRun(ctx context.Context, bench string, seed uint64,
	build func() (*builder.Unit, error), cfg MultiConfig, passes ...trace.Pass) (MultiResult, bool, error) {

	if rec, ok := t.arch.Lookup(bench, seed); ok && rec.CanServe(cfg.Budget) {
		res, err := t.replay(rec, cfg, passes...)
		return res, true, err
	}
	unlock, err := t.arch.Lock(ctx, bench, seed)
	if err != nil {
		return MultiResult{}, false, err
	}
	defer unlock()
	// Re-check under the lock: a concurrent misser may have just
	// committed a recording that covers us.
	if rec, ok := t.arch.Lookup(bench, seed); ok && rec.CanServe(cfg.Budget) {
		res, err := t.replay(rec, cfg, passes...)
		return res, true, err
	}
	u, err := build()
	if err != nil {
		return MultiResult{}, false, err
	}
	rec, err := t.arch.BeginRecord(bench, seed, u.Prog)
	if err != nil {
		// The archive directory is unusable (e.g. disk full): degrade to
		// plain interpretation rather than failing the run.
		t.fallbacks.Add(1)
		mTraceFallbacks.Inc()
		res, err := MultiRun(u, cfg, passes...)
		return res, false, err
	}
	traversals.Add(1)
	mTraversals.Inc()
	cpu := u.NewCPU()
	cpu.SetBatchSize(cfg.BatchSize)
	cpu.SetReference(cfg.Reference)
	b := trace.NewBroadcast(cfg.Shards, passes...)
	b.Init()
	n, err := cpu.Run(cfg.Budget, trace.BatchTee{rec, b})
	if err != nil {
		b.Stop()
		rec.Abort()
		return MultiResult{Executed: n, Batches: b.Epochs()}, false, err
	}
	b.Finalize()
	t.recorded.Add(1)
	// A failed commit loses the recording but not the run: the passes
	// already saw the live stream.
	_ = rec.Commit(cpu.Halted())
	return MultiResult{Executed: n, Halted: cpu.Halted(), Batches: b.Epochs()}, false, nil
}

// replay feeds the passes from the recording, one batch per block.
func (t *Traces) replay(rec *tracefile.Recording, cfg MultiConfig, passes ...trace.Pass) (MultiResult, error) {
	replays.Add(1)
	mReplays.Inc()
	t.replayed.Add(1)
	d, _ := t.decoders.Get().(*tracefile.Decoder)
	if d == nil {
		d = &tracefile.Decoder{}
	}
	defer t.decoders.Put(d)
	b := trace.NewBroadcast(cfg.Shards, passes...)
	b.Init()
	n, halted, err := rec.Replay(cfg.Budget, d, cfg.sink(b))
	if err != nil {
		b.Stop()
		return MultiResult{Executed: n, Batches: b.Epochs()}, err
	}
	b.Finalize()
	return MultiResult{Executed: n, Halted: halted, Batches: b.Epochs()}, nil
}
