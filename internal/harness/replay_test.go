package harness

import (
	"context"
	"sync"
	"testing"

	"dynloop/internal/builder"
	"dynloop/internal/trace"
	"dynloop/internal/tracefile"
)

func newTestTraces(t *testing.T) *Traces {
	t.Helper()
	a, err := tracefile.OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewTraces(a)
}

func buildUnit(t *testing.T) func() (*builder.Unit, error) {
	t.Helper()
	return func() (*builder.Unit, error) {
		b := builder.New("h", 1)
		b.CountedLoop(builder.TripImm(5), builder.LoopOpt{}, func() { b.Work(4) })
		return b.Build()
	}
}

// TestTracesMultiRunMatchesPlain: the first Traces.MultiRun interprets
// (one traversal) and records; the second replays (zero traversals);
// both deliver the exact stream a plain MultiRun delivers.
func TestTracesMultiRunMatchesPlain(t *testing.T) {
	var refHash trace.Hash
	ref, err := MultiRun(unit(t), MultiConfig{}, trace.AsPass(&refHash))
	if err != nil {
		t.Fatal(err)
	}

	tr := newTestTraces(t)
	ctx := context.Background()
	before := Traversals()

	var h1 trace.Hash
	res1, replayed1, err := tr.MultiRun(ctx, "h", 1, buildUnit(t), MultiConfig{}, trace.AsPass(&h1))
	if err != nil {
		t.Fatal(err)
	}
	if replayed1 {
		t.Fatal("cold archive replayed")
	}
	if got := Traversals() - before; got != 1 {
		t.Fatalf("record path made %d traversals, want 1", got)
	}

	var h2 trace.Hash
	res2, replayed2, err := tr.MultiRun(ctx, "h", 1, buildUnit(t), MultiConfig{}, trace.AsPass(&h2))
	if err != nil {
		t.Fatal(err)
	}
	if !replayed2 {
		t.Fatal("warm archive did not replay")
	}
	if got := Traversals() - before; got != 1 {
		t.Fatalf("replay made an interpreter traversal (%d total)", got)
	}

	for i, got := range []struct {
		res  MultiResult
		hash uint64
	}{{res1, h1.Sum}, {res2, h2.Sum}} {
		if got.res.Executed != ref.Executed || got.res.Halted != ref.Halted {
			t.Fatalf("run %d: result %+v, want executed=%d halted=%v",
				i, got.res, ref.Executed, ref.Halted)
		}
		if got.hash != refHash.Sum {
			t.Fatalf("run %d: hash %x != reference %x", i, got.hash, refHash.Sum)
		}
	}
	if st := tr.Stats(); st.Records != 1 || st.Replays != 1 {
		t.Fatalf("stats = %+v, want 1 record + 1 replay", st)
	}
}

// TestTracesConcurrentRecordOnce: two goroutines miss the same
// (bench, seed) at once; the per-key lock makes exactly one record and
// the other replay the fresh recording, with identical streams. Runs
// under `go test -race` in CI.
func TestTracesConcurrentRecordOnce(t *testing.T) {
	tr := newTestTraces(t)
	build := buildUnit(t)
	ctx := context.Background()

	const workers = 2
	start := make(chan struct{})
	var wg sync.WaitGroup
	hashes := make([]uint64, workers)
	execs := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			var h trace.Hash
			res, _, err := tr.MultiRun(ctx, "h", 1, build, MultiConfig{}, trace.AsPass(&h))
			if err != nil {
				t.Error(err)
				return
			}
			hashes[i] = h.Sum
			execs[i] = res.Executed
		}(i)
	}
	close(start)
	wg.Wait()

	if st := tr.Stats(); st.Records != 1 || st.Replays != 1 {
		t.Fatalf("stats = %+v, want exactly 1 record and 1 replay", st)
	}
	if st := tr.Archive().Stats(); st.Records != 1 || st.Recordings != 1 {
		t.Fatalf("archive stats = %+v, want 1 commit, 1 recording", st)
	}
	if hashes[0] != hashes[1] || execs[0] != execs[1] {
		t.Fatalf("concurrent runs diverged: hashes %x/%x, executed %d/%d",
			hashes[0], hashes[1], execs[0], execs[1])
	}
}

// TestTracesLongerBudgetReRecords: a budget-truncated recording cannot
// serve a longer request — the tier re-interprets, re-records, and the
// halted recording then serves every budget.
func TestTracesLongerBudgetReRecords(t *testing.T) {
	ref, err := MultiRun(unit(t), MultiConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Halted || ref.Executed < 4 {
		t.Fatalf("reference run too small: %+v", ref)
	}
	half := ref.Executed / 2

	tr := newTestTraces(t)
	build := buildUnit(t)
	ctx := context.Background()

	res, replayed, err := tr.MultiRun(ctx, "h", 1, build, MultiConfig{Budget: half})
	if err != nil {
		t.Fatal(err)
	}
	if replayed || res.Executed != half || res.Halted {
		t.Fatalf("truncated record run: %+v (replayed=%v)", res, replayed)
	}

	// Run-to-halt is NOT covered by the truncated recording.
	var h trace.Hash
	res, replayed, err = tr.MultiRun(ctx, "h", 1, build, MultiConfig{}, trace.AsPass(&h))
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("truncated recording served a longer budget")
	}
	if res.Executed != ref.Executed || !res.Halted {
		t.Fatalf("re-record run: %+v, want %+v", res, ref)
	}
	if st := tr.Stats(); st.Records != 2 {
		t.Fatalf("stats = %+v, want 2 records", st)
	}

	// The halted re-recording now covers the original half budget too.
	res, replayed, err = tr.MultiRun(ctx, "h", 1, build, MultiConfig{Budget: half})
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || res.Executed != half || res.Halted {
		t.Fatalf("prefix replay after re-record: %+v (replayed=%v)", res, replayed)
	}
}
