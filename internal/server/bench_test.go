package server

import (
	"context"
	"net/http/httptest"
	"testing"

	"dynloop/internal/client"
	"dynloop/internal/store"
	"dynloop/internal/wire"
)

// BenchmarkHotSweep measures the daemon's hot path: a sweep whose every
// cell sits in the runner's memory tier — the millionth identical
// query. Cost = HTTP round trip + grid encode/decode; no traversal, no
// disk.
func BenchmarkHotSweep(b *testing.B) {
	benchHotSweep(b, Config{Workers: 4})
}

// BenchmarkHotSweepDiskTier is the same query against a daemon whose
// memory tier is cold but whose store is warm (a freshly restarted
// daemon): cost adds one store read + codec decode per cell, first
// iteration only.
func BenchmarkHotSweepDiskTier(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	benchHotSweep(b, Config{Workers: 4, Store: st})
}

func benchHotSweep(b *testing.B, cfg Config) {
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()
	req := wire.SweepRequest{
		Benchmarks: []string{"swim", "compress"},
		Policies:   []string{"str", "str3"},
		TUs:        []int{2, 4},
		Budget:     200_000,
	}
	// Warm every tier before timing.
	rows, err := c.Sweep(ctx, req)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(rows)), "cells/req")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Sweep(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellQuery measures a single-cell store lookup end to end.
func BenchmarkCellQuery(b *testing.B) {
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Workers: 2, Store: st})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL, hs.Client())
	ctx := context.Background()
	if _, err := c.Sweep(ctx, wire.SweepRequest{
		Benchmarks: []string{"swim"}, Policies: []string{"str3"}, TUs: []int{4}, Budget: 100_000,
	}); err != nil {
		b.Fatal(err)
	}
	keys := st.Keys()
	if len(keys) == 0 {
		b.Fatal("no persisted cells")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Cell(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
