// The grid warmer: an off-peak background goroutine that precomputes
// registered grid specs through the daemon's shared runner, so the
// store (and memory cache) are already hot when clients ask. Warming
// rides the exact production path — grid.Run over the shared Runner,
// results landing in the store tier — so a warmed cell is
// byte-identical to a demanded one, and a later request for it costs a
// cache hit instead of a traversal.
//
// The warmer is deliberately polite: work is split into single-spec,
// single-benchmark units, and before each unit it waits until the
// daemon has zero foreground requests in flight. A warm unit that is
// already running when load arrives still contends only through the
// runner's worker semaphore, which foreground cells share fairly.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dynloop/internal/grid"
	"dynloop/internal/workload"
)

// warmPollInterval is how often a paused warmer re-checks the
// foreground in-flight gauge.
const warmPollInterval = 100 * time.Millisecond

// WarmerStats is a snapshot of the background warmer's progress.
type WarmerStats struct {
	// Units is the total number of warm units (spec × benchmark)
	// scheduled; UnitsDone counts completed ones (failed units count as
	// done — they are not retried).
	Units     int
	UnitsDone int
	// Cells counts grid cells warmed through the runner (cache hits
	// included: a warm pass over an already-hot store is cheap, not
	// wasted).
	Cells uint64
	// Pauses counts the times the warmer yielded to foreground load.
	Pauses uint64
	// Errors counts failed units; LastError describes the most recent.
	Errors    uint64
	LastError string
	// Running reports whether the warmer goroutine is still working.
	Running bool
}

// warmUnit is one polite slice of warming work: one registered spec,
// optionally narrowed to a single benchmark.
type warmUnit struct {
	spec  string
	bench string // "" = the spec's own benchmark axis
}

// warmer runs warm units on the server's runner whenever the daemon is
// otherwise idle.
type warmer struct {
	srv   *Server
	units []warmUnit

	unitsDone atomic.Uint64
	cells     atomic.Uint64
	pauses    atomic.Uint64
	errs      atomic.Uint64
	lastErr   atomic.Value // string
	running   atomic.Bool
}

// newWarmer resolves the configured spec names ("all" = every
// registered grid) into the unit list. Unknown names fail here, at
// daemon startup, not hours later in the background.
func newWarmer(s *Server, specs, benches []string) (*warmer, error) {
	if len(specs) == 1 && specs[0] == "all" {
		specs = grid.Names()
	}
	sort.Strings(specs)
	if len(benches) == 0 {
		benches = workload.Names()
	}
	w := &warmer{srv: s}
	for _, name := range specs {
		e, ok := grid.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("warm: no registered grid %q", name)
		}
		if len(e.Spec.Benchmarks) > 0 {
			// The spec pins its own benchmarks; warm it as one unit.
			w.units = append(w.units, warmUnit{spec: name})
			continue
		}
		for _, b := range benches {
			w.units = append(w.units, warmUnit{spec: name, bench: b})
		}
	}
	return w, nil
}

// run executes every unit, yielding to foreground load between units,
// until done or ctx is cancelled.
func (w *warmer) run(ctx context.Context) {
	w.running.Store(true)
	defer w.running.Store(false)
	for _, u := range w.units {
		if !w.waitIdle(ctx) {
			return
		}
		e, ok := grid.Lookup(u.spec)
		if !ok {
			continue // validated at startup; racing unregistration is a test artifact
		}
		cfg := grid.Config{Runner: w.srv.runner, Traces: w.srv.cfg.Traces}
		if u.bench != "" {
			cfg.Benchmarks = []string{u.bench}
		}
		res, err := grid.Run(ctx, cfg, e.Spec)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.errs.Add(1)
			w.lastErr.Store(fmt.Sprintf("%s (bench %q): %v", u.spec, u.bench, err))
		} else {
			w.cells.Add(uint64(len(res.Values)))
			mWarmerCells.Add(uint64(len(res.Values)))
		}
		w.unitsDone.Add(1)
	}
}

// waitIdle blocks until the daemon has no foreground request in flight
// (or ctx ends, returning false). One yield episode counts one pause,
// however long it lasts.
func (w *warmer) waitIdle(ctx context.Context) bool {
	if w.srv.inflightNow() == 0 {
		return ctx.Err() == nil
	}
	w.pauses.Add(1)
	mWarmerPauses.Inc()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(warmPollInterval):
		}
		if w.srv.inflightNow() == 0 {
			return true
		}
	}
}

// stats snapshots the warmer's counters.
func (w *warmer) stats() WarmerStats {
	st := WarmerStats{
		Units:     len(w.units),
		UnitsDone: int(w.unitsDone.Load()),
		Cells:     w.cells.Load(),
		Pauses:    w.pauses.Load(),
		Errors:    w.errs.Load(),
		Running:   w.running.Load(),
	}
	if e, ok := w.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}
