package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dynloop/internal/client"
	"dynloop/internal/grid"
	"dynloop/internal/store"
	"dynloop/internal/wire"
)

// warmTestGrid registers a tiny single-cell grid once per process for
// the warmer tests. It pins its own benchmark axis, so the warmer
// schedules it as exactly one unit.
var warmTestGrid = sync.OnceValue(func() string {
	grid.Register(grid.Entry{Spec: grid.Spec{
		Name:       "warm-test",
		Kind:       "spec",
		Benchmarks: []string{"swim"},
		Budgets:    []uint64{50_000},
		Policies:   []string{"str"},
		TUs:        []int{2},
	}})
	return "warm-test"
})

// waitWarmed polls until the warmer has finished every unit.
func waitWarmed(t *testing.T, s *Server) WarmerStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ws, ok := s.WarmerStats()
		if !ok {
			t.Fatal("no warmer running")
		}
		if ws.UnitsDone == ws.Units {
			return ws
		}
		if time.Now().After(deadline) {
			t.Fatalf("warmer did not finish: %+v", ws)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWarmerWarmsStore: the background warmer precomputes a registered
// grid into the store, so a later client request for the same grid is
// served entirely from cache — zero new executions.
func TestWarmerWarmsStore(t *testing.T) {
	name := warmTestGrid()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	s, c := newTestDaemon(t, Config{Workers: 2, Store: st, Warm: []string{name}})
	cellsBefore := mWarmerCells.Value()
	if err := s.StartWarmer(ctx); err != nil {
		t.Fatal(err)
	}
	ws := waitWarmed(t, s)
	if ws.Cells == 0 {
		t.Fatalf("warmer finished with zero cells: %+v", ws)
	}
	if ws.Errors != 0 {
		t.Fatalf("warmer errored: %+v", ws)
	}
	if got := mWarmerCells.Value() - cellsBefore; got != ws.Cells {
		t.Fatalf("warmer_cells_total advanced by %d, stats say %d", got, ws.Cells)
	}
	if st.Stats().Puts == 0 {
		t.Fatal("warmer computed cells but the store saw no puts")
	}

	// The warmed grid must now be free: no new engine executions.
	executed := s.Runner().Stats().Executed
	if _, err := c.Grid(ctx, wire.GridRequest{Name: name}); err != nil {
		t.Fatal(err)
	}
	if after := s.Runner().Stats().Executed; after != executed {
		t.Fatalf("warmed grid still executed %d cells", after-executed)
	}

	// /v1/stats surfaces the warmer section.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warmer == nil {
		t.Fatal("stats has no warmer section")
	}
	if stats.Warmer.Cells != ws.Cells || stats.Warmer.UnitsDone != ws.UnitsDone {
		t.Fatalf("stats warmer %+v does not match %+v", stats.Warmer, ws)
	}
}

// TestWarmerYieldsToForeground: while a foreground request holds an
// inflight slot, the warmer pauses instead of competing; releasing the
// slot lets it finish.
func TestWarmerYieldsToForeground(t *testing.T) {
	name := warmTestGrid()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s, _ := newTestDaemon(t, Config{Workers: 2, Warm: []string{name}})
	s.inflight <- struct{}{} // foreground load, as the handlers would take it
	if err := s.StartWarmer(ctx); err != nil {
		t.Fatal(err)
	}

	// Give the warmer several poll intervals to (incorrectly) start.
	time.Sleep(4 * warmPollInterval)
	ws, _ := s.WarmerStats()
	if ws.UnitsDone != 0 || ws.Cells != 0 {
		t.Fatalf("warmer worked under foreground load: %+v", ws)
	}
	if ws.Pauses == 0 {
		t.Fatalf("warmer never recorded a pause: %+v", ws)
	}

	<-s.inflight // foreground done
	ws = waitWarmed(t, s)
	if ws.Cells == 0 {
		t.Fatalf("warmer finished with zero cells after release: %+v", ws)
	}
}

// TestWarmerRejectsUnknownSpec: bad -warm names fail at startup, not
// silently in the background.
func TestWarmerRejectsUnknownSpec(t *testing.T) {
	s := New(Config{Workers: 1, Warm: []string{"no-such-grid"}})
	if err := s.StartWarmer(context.Background()); err == nil {
		t.Fatal("StartWarmer accepted an unknown grid name")
	}
}

// TestShedTypedError: both shed paths — oversized grids and expired
// queue waits — surface to the client as *client.ErrShed carrying the
// daemon's jittered Retry-After hint.
func TestShedTypedError(t *testing.T) {
	ctx := context.Background()

	// Oversized grid.
	_, c := newTestDaemon(t, Config{Workers: 1, MaxCells: 4})
	_, err := c.Sweep(ctx, wire.SweepRequest{Budget: 1000})
	var shed *client.ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("oversized sweep returned %v, want *client.ErrShed", err)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > 4*time.Second {
		t.Fatalf("Retry-After %v outside the 1-4s jitter window", shed.RetryAfter)
	}

	// Queue-wait timeout: one slot, held by a phantom foreground request.
	s2, c2 := newTestDaemon(t, Config{Workers: 1, MaxInflight: 1, QueueWait: 20 * time.Millisecond})
	s2.inflight <- struct{}{}
	_, err = c2.Sweep(ctx, testReq)
	shed = nil
	if !errors.As(err, &shed) {
		t.Fatalf("queued-out sweep returned %v, want *client.ErrShed", err)
	}
	<-s2.inflight
}
