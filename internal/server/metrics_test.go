package server

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricDelta reads one series from two scrapes and returns its change.
func metricDelta(before, after map[string]float64, series string) float64 {
	return after[series] - before[series]
}

// TestMetricsReconcileWithRunnerStats: the obs mirrors are process-
// global while runner stats are per-instance, so the contract is
// delta equality — a sweep must move the scraped runner counters by
// exactly what the runner's own stats moved.
func TestMetricsReconcileWithRunnerStats(t *testing.T) {
	ctx := context.Background()
	s, c := newTestDaemon(t, Config{Workers: 4})

	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rsBefore := s.Runner().Stats()

	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}

	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rsAfter := s.Runner().Stats()

	checks := []struct {
		series string
		want   uint64
	}{
		{"dynloop_runner_jobs_submitted_total", rsAfter.Submitted - rsBefore.Submitted},
		{"dynloop_runner_jobs_executed_total", rsAfter.Executed - rsBefore.Executed},
		{"dynloop_runner_cache_hits_total", rsAfter.CacheHits - rsBefore.CacheHits},
		{"dynloop_runner_group_runs_total", rsAfter.GroupRuns - rsBefore.GroupRuns},
	}
	for _, ck := range checks {
		if got := metricDelta(before, after, ck.series); got != float64(ck.want) {
			t.Errorf("%s moved by %v, runner stats moved by %d", ck.series, got, ck.want)
		}
	}
	if d := metricDelta(before, after, `dynloop_http_requests_total{endpoint="/v1/sweep"}`); d != 1 {
		t.Errorf("sweep request counter moved by %v, want 1", d)
	}
	if d := metricDelta(before, after, `dynloop_http_request_seconds_count{endpoint="/v1/sweep"}`); d != 1 {
		t.Errorf("sweep latency histogram count moved by %v, want 1", d)
	}
	if d := metricDelta(before, after, "dynloop_interp_instructions_total"); d <= 0 {
		t.Errorf("interp instruction counter did not move (delta %v)", d)
	}
}

// TestStatsEndpointExtended: /v1/stats carries the plane-negotiation
// and HTTP-layer counters and they agree with a /metrics scrape.
func TestStatsEndpointExtended(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, Config{Workers: 2})
	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Requests == 0 {
		t.Fatalf("stats report zero HTTP requests after a sweep: %+v", st.Server)
	}
	if st.Planes.InterpCtl+st.Planes.InterpFull == 0 {
		t.Fatalf("stats report zero interpreter runs after a sweep: %+v", st.Planes)
	}
	vals, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Global mirrors can only be >= this instance's view (other tests in
	// the process may run concurrently), never behind it.
	ctl := vals[`dynloop_interp_runs_total{plane="ctl"}`]
	full := vals[`dynloop_interp_runs_total{plane="full"}`]
	if ctl < float64(st.Planes.InterpCtl) || full < float64(st.Planes.InterpFull) {
		t.Errorf("scrape (ctl=%v full=%v) behind stats (%+v)", ctl, full, st.Planes)
	}
}

// TestShedCounter: an oversized grid is rejected with 422 and counted
// as shed load.
func TestShedCounter(t *testing.T) {
	ctx := context.Background()
	_, c := newTestDaemon(t, Config{Workers: 1, MaxCells: 2})
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sweep(ctx, testReq); err == nil {
		t.Fatal("oversized sweep unexpectedly succeeded")
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := metricDelta(before, after, "dynloop_http_shed_total"); d != 1 {
		t.Errorf("shed counter moved by %v, want 1", d)
	}
}

// syncBuffer is a mutex-guarded log sink: the middleware logs after
// the response body is complete, so the record may land just after the
// client call returns.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogging: a configured logger receives one structured
// record per request with the endpoint and cell count attached.
func TestRequestLogging(t *testing.T) {
	ctx := context.Background()
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, c := newTestDaemon(t, Config{Workers: 2, Logger: logger})
	if _, err := c.Sweep(ctx, testReq); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, `"endpoint":"/v1/sweep"`) {
			if !strings.Contains(out, `"cells":"8"`) {
				t.Fatalf("sweep log record missing cell count in:\n%s", out)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no sweep request log record in:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
