// Package server is the grid-serving daemon behind `dynloop serve`: a
// long-lived HTTP front end over one shared Runner and one persistent
// result store. Every client sweep fans into the same bounded worker
// semaphore and the same memory→disk cache hierarchy, so concurrent
// clients asking overlapping questions — the normal shape of a shared
// configuration grid — cost one execution per distinct cell, and a
// fully warm cell costs one store lookup with no traversal at all.
//
// Endpoints:
//
//	POST /v1/sweep   JSON wire.SweepRequest → binary wire grid
//	POST /v1/grid    JSON wire.GridRequest (named or inline grid.Spec)
//	                 → binary wire cells payload, in canonical cell order
//	GET  /v1/grids   JSON listing of the registered grid specs
//	GET  /v1/cell    ?key= → the cell's stored codec frame (octet-stream)
//	GET  /v1/events  Server-Sent Events stream of runner progress
//	GET  /v1/stats   JSON wire.Stats (runner, store, traversal counters)
//	GET  /healthz    liveness probe
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"dynloop/internal/expt"
	"dynloop/internal/grid"
	"dynloop/internal/harness"
	"dynloop/internal/interp"
	"dynloop/internal/obs"
	"dynloop/internal/runner"
	"dynloop/internal/store"
	"dynloop/internal/tracefile"
	"dynloop/internal/wire"
)

// Config parametrises a Server.
type Config struct {
	// Workers bounds the shared Runner's concurrently executing cells;
	// 0 selects GOMAXPROCS.
	Workers int
	// Store, when non-nil, is the persistent result tier. The server
	// does not close it.
	Store *store.Store
	// MaxInflight bounds concurrently computed sweep requests (each may
	// expand to many cells; the cells themselves additionally ride the
	// worker semaphore). 0 selects 2×workers. Excess requests queue
	// until a slot frees or the client gives up.
	MaxInflight int
	// MaxCells rejects sweep requests expanding to more cells than
	// this, protecting the daemon from accidental mega-grids.
	// 0 selects DefaultMaxCells.
	MaxCells int
	// OnEvent, when non-nil, additionally receives every runner
	// progress event in-process (SSE subscribers get them regardless).
	OnEvent func(runner.Event)
	// Traces, when non-nil, is the replay tier: cells that miss both
	// the memory cache and the store replay the archived trace of their
	// (benchmark, seed) group instead of interpreting, recording it on
	// first contact. The server does not close it.
	Traces *harness.Traces
	// Logger, when non-nil, receives one structured log record per
	// request (id, endpoint, status, duration, cells, tier deltas).
	Logger *slog.Logger
	// Warm lists registered grid specs for the background warmer; the
	// single entry "all" selects every registered grid. The warmer
	// precomputes each spec through the shared runner (and so into the
	// store tier) whenever no foreground request is in flight. Empty
	// disables warming.
	Warm []string
	// WarmBenchmarks narrows warming to these workloads for specs that
	// do not pin their own benchmark axis (nil = all).
	WarmBenchmarks []string
	// QueueWait bounds how long a request may queue for an inflight
	// slot before the daemon sheds it with 422 + Retry-After rather
	// than letting the queue grow unboundedly. 0 selects
	// DefaultQueueWait; negative waits forever (the pre-timeout
	// behavior).
	QueueWait time.Duration
}

// DefaultMaxCells bounds the grid size of one sweep request.
const DefaultMaxCells = 100_000

// DefaultQueueWait bounds how long a request queues for an inflight
// slot before being shed.
const DefaultQueueWait = 30 * time.Second

// Server owns the shared Runner, the optional store and the progress
// fan-out. Create one with New.
type Server struct {
	cfg       Config
	runner    *runner.Runner
	inflight  chan struct{}
	maxCells  int
	queueWait time.Duration
	warm      *warmer // nil when warming is off

	hub *hub
}

// New builds a Server and its shared Runner (wired to the store tier
// and the progress hub).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, hub: newHub()}
	onEvent := s.hub.publish
	if cfg.OnEvent != nil {
		onEvent = func(ev runner.Event) {
			s.hub.publish(ev)
			cfg.OnEvent(ev)
		}
	}
	rc := runner.Config{Workers: cfg.Workers, OnEvent: onEvent}
	if cfg.Store != nil {
		rc.Cache = store.NewCache(cfg.Store)
	}
	s.runner = runner.New(rc)
	inflight := cfg.MaxInflight
	if inflight <= 0 {
		inflight = 2 * s.runner.Workers()
	}
	s.inflight = make(chan struct{}, inflight)
	s.maxCells = cfg.MaxCells
	if s.maxCells <= 0 {
		s.maxCells = DefaultMaxCells
	}
	s.queueWait = cfg.QueueWait
	if s.queueWait == 0 {
		s.queueWait = DefaultQueueWait
	}
	return s
}

// StartWarmer resolves Config.Warm and launches the background grid
// warmer; it runs until every unit is done or ctx ends.
// ListenAndServe calls this when warming is configured; tests may call
// it directly. Unknown spec names error out before anything runs.
func (s *Server) StartWarmer(ctx context.Context) error {
	w, err := newWarmer(s, s.cfg.Warm, s.cfg.WarmBenchmarks)
	if err != nil {
		return err
	}
	s.warm = w
	go w.run(ctx)
	return nil
}

// WarmerStats snapshots the warmer's progress; ok=false when no warmer
// is configured.
func (s *Server) WarmerStats() (WarmerStats, bool) {
	if s.warm == nil {
		return WarmerStats{}, false
	}
	return s.warm.stats(), true
}

// inflightNow is the number of foreground requests holding (or
// occupying) inflight slots; the warmer yields while it is non-zero.
func (s *Server) inflightNow() int { return len(s.inflight) }

// Runner exposes the shared runner (for stats lines and tests).
func (s *Server) Runner() *runner.Runner { return s.runner }

// Handler returns the daemon's routes, each wrapped in the metrics
// (and, when configured, request-logging) middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/grid", s.instrument("/v1/grid", s.handleGrid))
	mux.HandleFunc("GET /v1/grids", s.instrument("/v1/grids", s.handleGrids))
	mux.HandleFunc("GET /v1/cell", s.instrument("/v1/cell", s.handleCell))
	mux.HandleFunc("GET /v1/events", s.instrument("/v1/events", s.handleEvents))
	mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", obs.Handler().ServeHTTP))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	return mux
}

// ListenAndServe runs the daemon until ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get grace
// to finish, and the progress hub's event streams end (so SSE clients
// see EOF rather than a hang). ready, when non-nil, receives the bound
// address once the listener is up (useful with ":0") and is closed.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready chan<- string, grace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
		close(ready)
	}
	if grace <= 0 {
		grace = 10 * time.Second
	}
	// Requests outlive the serve ctx through the grace window: they are
	// cancelled only after Shutdown has had its chance to drain them,
	// so a SIGINT lets in-flight sweeps finish (and their cells land in
	// the store) instead of wasting the work already done.
	reqCtx, cancelReqs := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelReqs()
	if len(s.cfg.Warm) > 0 {
		// The warmer dies with the serve ctx: shutdown stops background
		// work immediately, only foreground requests get grace.
		if err := s.StartWarmer(ctx); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		s.hub.close()
		return err
	case <-ctx.Done():
	}
	// The SSE streams must end first — Shutdown waits for active
	// handlers, and an open event stream is an active handler.
	s.hub.close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	// Grace expired (or Shutdown failed): hard-cancel whatever is left.
	cancelReqs()
	if serveErr := <-done; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed rejects a request with 422 plus a jittered Retry-After, so a
// fleet of retrying clients spreads out instead of stampeding back in
// lockstep. The metrics middleware counts the 422 as shed load.
func shed(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", fmt.Sprint(1+rand.IntN(4)))
	httpError(w, http.StatusUnprocessableEntity, format, args...)
}

// errQueueFull reports an acquire that timed out waiting for an
// inflight slot; the handler sheds the request.
var errQueueFull = errors.New("server: inflight queue wait exceeded")

// acquire takes one inflight slot, queueing up to the configured wait.
// A timed-out wait returns errQueueFull for the handler to shed; an
// abandoned wait (client hung up) counts as shed load directly, since
// no response status will ever be written.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.inflight <- struct{}{}:
		return nil
	default:
	}
	var timeout <-chan time.Time
	if s.queueWait > 0 {
		t := time.NewTimer(s.queueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.inflight <- struct{}{}:
		return nil
	case <-timeout:
		return errQueueFull
	case <-ctx.Done():
		mHTTPShed.Inc()
		return ctx.Err()
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	// Sweep requests are tiny; cap the body so no client can balloon
	// the long-lived daemon's memory before validation runs.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req wire.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cfg := expt.Config{
		Budget:     req.Budget,
		Seed:       req.Seed,
		Benchmarks: req.Benchmarks,
		BatchSize:  req.BatchSize,
		Runner:     s.runner,
		Traces:     s.cfg.Traces,
	}
	var sw expt.SweepSpec
	if len(req.Policies) > 0 {
		pols, err := expt.ParsePolicies(req.Policies)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		sw.Policies = pols
	}
	sw.TUs = req.TUs
	for _, k := range req.TUs {
		if k < 0 {
			httpError(w, http.StatusBadRequest, "negative TU count %d", k)
			return
		}
	}
	cells, err := expt.SweepGridSize(cfg, sw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cells > s.maxCells {
		shed(w, "grid of %d cells exceeds the daemon's limit of %d", cells, s.maxCells)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			shed(w, "daemon at max inflight for %v; retry shortly", s.queueWait)
		}
		return // otherwise the client went away while queued
	}
	defer func() { <-s.inflight }()
	rows, err := expt.Sweep(r.Context(), cfg, sw)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Daemon shutdown past its grace window (or the client hung
			// up — then nobody reads this). An explicit status beats an
			// empty 200 the client would misread as a corrupt grid.
			httpError(w, http.StatusServiceUnavailable, "sweep canceled: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "sweep failed: %v", err)
		return
	}
	body, err := wire.AppendGrid(nil, rows)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding grid: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Dynloop-Cells", fmt.Sprint(len(rows)))
	w.Write(body)
}

// handleGrid executes one declarative grid — a registered spec by name
// or an inline ad-hoc spec — on the shared runner and streams the cell
// values back as codec frames in canonical cell order. The client
// rebuilds the cells from the same deterministic spec expansion, so a
// remote grid renders byte-identically to a local run.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var req wire.GridRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var gs grid.Spec
	switch {
	case req.Name != "":
		e, ok := grid.Lookup(req.Name)
		if !ok {
			httpError(w, http.StatusNotFound, "no registered grid %q (see GET /v1/grids)", req.Name)
			return
		}
		gs = e.Spec
	case req.Spec != nil:
		gs = *req.Spec
	default:
		httpError(w, http.StatusBadRequest, "grid request needs a name or an inline spec")
		return
	}
	cfg := expt.Config{
		Budget:     req.Budget,
		Seed:       req.Seed,
		Benchmarks: req.Benchmarks,
		BatchSize:  req.BatchSize,
		Runner:     s.runner,
		Traces:     s.cfg.Traces,
	}
	if err := gs.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cells, err := gs.Size(cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cells > s.maxCells {
		shed(w, "grid of %d cells exceeds the daemon's limit of %d", cells, s.maxCells)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		if errors.Is(err, errQueueFull) {
			shed(w, "daemon at max inflight for %v; retry shortly", s.queueWait)
		}
		return // otherwise the client went away while queued
	}
	defer func() { <-s.inflight }()
	res, err := grid.Run(r.Context(), cfg, gs)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusServiceUnavailable, "grid canceled: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "grid failed: %v", err)
		return
	}
	body, err := wire.AppendCells(nil, res.Values)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding cells: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Dynloop-Cells", fmt.Sprint(len(res.Values)))
	w.Write(body)
}

// handleGrids lists the registered grids with their canonical specs, so
// clients can discover, fetch, tweak and resubmit them.
func (s *Server) handleGrids(w http.ResponseWriter, r *http.Request) {
	names := grid.Names()
	out := make([]wire.GridInfo, 0, len(names))
	for _, name := range names {
		e, ok := grid.Lookup(name)
		if !ok {
			continue
		}
		cells, err := e.Spec.Size(expt.Config{})
		if err != nil {
			cells = 0
		}
		out = append(out, wire.GridInfo{
			Name:  name,
			Title: e.Spec.Title,
			Kind:  e.Spec.Kind,
			Cells: cells,
			Spec:  e.Spec,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusServiceUnavailable, "daemon runs without a persistent store")
		return
	}
	key, err := url.QueryUnescape(r.URL.Query().Get("key"))
	if err != nil || key == "" {
		httpError(w, http.StatusBadRequest, "missing or malformed ?key=")
		return
	}
	frame, ok, err := s.cfg.Store.Get(key)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "store: %v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no result for key %q", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.runner.Stats()
	ictl, ifull := interp.PlaneRuns()
	rctl, rfull := tracefile.ReplayPlaneRuns()
	reqs, shed, inflight := HTTPTotals()
	st := wire.Stats{
		Workers:    uint64(s.runner.Workers()),
		Traversals: harness.Traversals(),
		Replays:    harness.Replays(),
		Planes: wire.PlaneStats{
			InterpCtl:  ictl,
			InterpFull: ifull,
			ReplayCtl:  rctl,
			ReplayFull: rfull,
		},
		Server: wire.ServerStats{Requests: reqs, Shed: shed, InFlight: inflight},
		Runner: wire.RunnerStats{
			Submitted:  rs.Submitted,
			Executed:   rs.Executed,
			CacheHits:  rs.CacheHits,
			Coalesced:  rs.Coalesced,
			Failures:   rs.Failures,
			GroupRuns:  rs.GroupRuns,
			DiskHits:   rs.DiskHits,
			DiskPuts:   rs.DiskPuts,
			TierErrors: rs.TierErrors,
			ReplayRuns: rs.ReplayRuns,
			RecordRuns: rs.RecordRuns,
		},
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &wire.StoreStats{
			Records:          ss.Records,
			Segments:         ss.Segments,
			Bytes:            ss.Bytes,
			DeadBytes:        ss.DeadBytes,
			Puts:             ss.Puts,
			Gets:             ss.Gets,
			Hits:             ss.Hits,
			TruncatedTail:    ss.TruncatedTail,
			SidecarHits:      ss.SidecarHits,
			SidecarRebuilds:  ss.SidecarRebuilds,
			Compactions:      ss.Compactions,
			ReclaimedBytes:   ss.ReclaimedBytes,
			LastCompactError: ss.LastCompactError,
		}
	}
	if ws, ok := s.WarmerStats(); ok {
		st.Warmer = &wire.WarmerStats{
			Units:     ws.Units,
			UnitsDone: ws.UnitsDone,
			Cells:     ws.Cells,
			Pauses:    ws.Pauses,
			Errors:    ws.Errors,
			LastError: ws.LastError,
			Running:   ws.Running,
		}
	}
	if s.cfg.Traces != nil {
		ts := s.cfg.Traces.Stats()
		st.Traces = &wire.TraceStats{
			Replays:   ts.Replays,
			Records:   ts.Records,
			Fallbacks: ts.Fallbacks,
		}
		as := s.cfg.Traces.Archive().Stats()
		st.Archive = &wire.ArchiveStats{
			Recordings:    as.Recordings,
			Records:       as.Records,
			Invalidated:   as.Invalidated,
			SchemaSkips:   as.SchemaSkips,
			TruncatedTail: as.TruncatedTail,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ch, cancel := s.hub.subscribe()
	defer cancel()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // hub closed: daemon shutting down
			}
			fmt.Fprint(w, "data: ")
			if err := enc.Encode(ev); err != nil {
				return
			}
			fmt.Fprint(w, "\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// hub fans runner progress events out to any number of SSE
// subscribers. Slow subscribers drop events rather than stall the
// workers: progress is advisory, results are not.
type hub struct {
	mu     sync.Mutex
	subs   map[int]chan wire.Event
	next   int
	closed bool
}

func newHub() *hub { return &hub{subs: map[int]chan wire.Event{}} }

func (h *hub) publish(ev runner.Event) {
	wev := wire.Event{
		Kind:      ev.Kind.String(),
		Key:       ev.Key,
		Label:     ev.Label,
		ElapsedMS: ev.Elapsed.Milliseconds(),
		Completed: ev.Completed,
	}
	if ev.Err != nil {
		wev.Err = ev.Err.Error()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		select {
		case ch <- wev:
		default:
		}
	}
}

func (h *hub) subscribe() (<-chan wire.Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	ch := make(chan wire.Event, 256)
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	h.subs[id] = ch
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
		}
	}
}

func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		close(ch)
		delete(h.subs, id)
	}
}
